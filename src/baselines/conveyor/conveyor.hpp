// Conveyors — multi-hop aggregation (paper Sec. II, Maley & DeVinney
// IA3'19): items route src -> (row hop) -> dst over a sqrt(P) x sqrt(P)
// logical grid, so each PE keeps buffers for O(sqrt(P)) neighbours instead
// of P, reducing memory footprint and increasing per-buffer fill — the
// properties the paper credits for Conveyors' flat scaling.
//
// Implementation: two ChannelGroups (one per hop) with two-stage
// termination: stage-1 finals when the local PE stops originating; a PE
// announces stage-2 finals once every stage-1 producer that routes through
// it has drained.
#pragma once

#include <cmath>
#include <deque>
#include <functional>
#include <optional>

#include "baselines/shmem_channel.hpp"

namespace lamellar::baselines {

template <typename Item>
class Conveyor {
  struct Routed {
    std::uint32_t final_dst;
    std::uint32_t origin;  ///< pop() reports the originating PE, not the hop
    Item item;
  };

 public:
  Conveyor(World& world, std::size_t buf_items)
      : world_(world),
        npes_(world.num_pes()),
        cols_(static_cast<std::size_t>(std::ceil(std::sqrt(
            static_cast<double>(npes_))))),
        hop1_(world, buf_items),
        hop2_(world, buf_items),
        hop1_bufs_(npes_),
        hop2_bufs_(npes_) {}

  void push(pe_id dst, const Item& item) {
    const pe_id mid = hop1_target(dst);
    auto& buf = hop1_bufs_[mid];
    buf.push_back(Routed{static_cast<std::uint32_t>(dst),
                         static_cast<std::uint32_t>(world_.my_pe()), item});
    if (buf.size() >= hop1_.buf_items()) flush1(mid);
  }

  void done() { done_called_ = true; }

  /// Drain arrivals (forwarding hop-1 traffic without blocking).
  void pump() { drain(); }

  void set_progress_hook(std::function<void()> hook) {
    hook_ = std::move(hook);
  }

  bool proceed() {
    drain();
    if (done_called_ && !stage1_announced_) {
      flush_all(hop1_bufs_, hop1_, true);
      hop1_.announce_done();
      stage1_announced_ = true;
    }
    drain();
    if (stage1_announced_ && !stage2_announced_ && hop1_.drained()) {
      flush_all(hop2_bufs_, hop2_, false);
      hop2_.announce_done();
      stage2_announced_ = true;
    }
    drain();
    return !(stage2_announced_ && hop2_.drained() && inbox_.empty());
  }

  std::optional<std::pair<pe_id, Item>> pop() {
    if (inbox_.empty()) return std::nullopt;
    auto v = inbox_.front();
    inbox_.pop_front();
    return v;
  }

 private:
  /// Row hop: stay in my row, move to the column of the final destination.
  [[nodiscard]] pe_id hop1_target(pe_id dst) const {
    const pe_id mid = (world_.my_pe() / cols_) * cols_ + (dst % cols_);
    return mid < npes_ ? mid : dst;  // ragged grid edge: go direct
  }

  void flush1(pe_id mid) {
    auto& buf = hop1_bufs_[mid];
    while (!buf.empty()) {
      if (hop1_.try_send(mid, buf)) {
        buf.clear();
        return;
      }
      drain();
      if (hook_) hook_();
    }
  }

  void flush2(pe_id dst) {
    auto& buf = hop2_bufs_[dst];
    while (!buf.empty()) {
      if (try_flush2_slices(dst)) return;
      drain_hop2_only();
      if (hook_) hook_();
    }
  }

  /// Ship as many full slices of dst's hop-2 buffer as the ring accepts.
  /// Returns true when the buffer is empty.  Never blocks.
  bool try_flush2_slices(pe_id dst) {
    auto& buf = hop2_bufs_[dst];
    while (!buf.empty()) {
      const std::size_t n = std::min(buf.size(), hop2_.buf_items());
      if (!hop2_.try_send(dst, std::span<const Routed>(buf.data(), n))) {
        return false;
      }
      buf.erase(buf.begin(), buf.begin() + n);
    }
    return true;
  }

  /// Drain only hop-2 arrivals (terminal deliveries; generates no sends, so
  /// it is re-entrancy safe inside flush2's backpressure loop).
  void drain_hop2_only() {
    while (auto msg = hop2_.try_recv()) {
      for (const auto& r : msg->second) {
        inbox_.emplace_back(r.origin, r.item);
      }
    }
  }

  void flush_all(std::vector<std::vector<Routed>>& bufs,
                 ChannelGroup<Routed>&, bool first_hop) {
    for (pe_id p = 0; p < bufs.size(); ++p) {
      if (bufs[p].empty()) continue;
      if (first_hop) {
        flush1(p);
      } else {
        flush2(p);
      }
    }
  }

  void drain() {
    // Hop-1 arrivals: forward to the final destination (column hop) unless
    // it is us.  Forwarding is non-blocking: an overfull hop-2 buffer is
    // kept locally and retried on the next drain/proceed.
    while (auto msg = hop1_.try_recv()) {
      for (const auto& r : msg->second) {
        const pe_id dst = r.final_dst;
        if (dst == world_.my_pe()) {
          inbox_.emplace_back(r.origin, r.item);
          continue;
        }
        auto& buf = hop2_bufs_[dst];
        buf.push_back(r);
        if (buf.size() >= hop2_.buf_items()) try_flush2_slices(dst);
      }
    }
    drain_hop2_only();
  }

  World& world_;
  std::size_t npes_;
  std::size_t cols_;
  ChannelGroup<Routed> hop1_;
  ChannelGroup<Routed> hop2_;
  std::vector<std::vector<Routed>> hop1_bufs_;
  std::vector<std::vector<Routed>> hop2_bufs_;
  std::deque<std::pair<pe_id, Item>> inbox_;
  std::function<void()> hook_;
  bool done_called_ = false;
  bool stage1_announced_ = false;
  bool stage2_announced_ = false;
};

}  // namespace lamellar::baselines
