// Exstack — the BALE suite's bulk-synchronous aggregation library
// (paper Sec. II / IV-B), reimplemented over the lamellar fabric the way the
// original sits on OpenSHMEM.
//
// Each PE owns, for every other PE, a fixed-capacity send buffer and a
// symmetric receive slot.  The protocol "resembles Bulk Synchronous
// Programming": PEs push items until some buffer fills, then everyone enters
// a collective exchange (RDMA puts of whole buffers + barrier), processes
// what arrived, and repeats.  `proceed(im_done)` returns false once every PE
// has declared itself done and all buffers have drained.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "core/memregion/shared_region.hpp"
#include "core/world/world.hpp"

namespace lamellar::baselines {

template <typename Item>
class Exstack {
  static_assert(std::is_trivially_copyable_v<Item>);

 public:
  /// Collective.  `buf_items`: per-destination buffer capacity (BALE uses
  /// the same knob; the paper's experiments cap aggregation at 10,000).
  Exstack(World& world, std::size_t buf_items)
      : world_(world),
        npes_(world.num_pes()),
        cap_(buf_items),
        send_bufs_(npes_),
        // Receive matrix: npes slots of cap items each, plus one count per
        // source, all in symmetric memory so exchanges are pure RDMA puts.
        recv_items_(SharedMemoryRegion<Item>::create(world, npes_ * buf_items)),
        recv_counts_(
            SharedMemoryRegion<std::uint64_t>::create(world, npes_ + 3)) {
    for (auto& b : send_bufs_) b.reserve(cap_);
    auto counts = recv_counts_.unsafe_local_slice();
    std::fill(counts.begin(), counts.end(), 0);
    world.barrier();
  }

  /// Try to queue an item for `dst`.  Returns false when dst's buffer is
  /// full — the caller must run proceed() (the BSP exchange) and retry.
  bool push(pe_id dst, const Item& item) {
    auto& buf = send_bufs_[dst];
    if (buf.size() >= cap_) return false;
    buf.push_back(item);
    return true;
  }

  /// Collective exchange; `im_done` declares this PE will push no more.
  /// Returns true while the computation must continue (items may still
  /// arrive); false once all PEs are done and everything drained.
  bool proceed(bool im_done) {
    // Publish buffers: put each send buffer into our slot on the receiver.
    for (pe_id dst = 0; dst < npes_; ++dst) {
      auto& buf = send_bufs_[dst];
      const std::uint64_t n = buf.size();
      if (n > 0) {
        recv_items_.unsafe_put(dst, world_.my_pe() * cap_,
                               std::span<const Item>(buf.data(), n));
      }
      std::uint64_t cnt = n;
      recv_counts_.unsafe_put(dst, world_.my_pe(),
                              std::span<const std::uint64_t>(&cnt, 1));
      buf.clear();
    }
    // Publish the done flag in the extra count slot (sum over PEs).
    const std::uint64_t done = im_done ? 1 : 0;
    for (pe_id dst = 0; dst < npes_; ++dst) {
      if (done) {
        world_.lamellae().atomic_fetch_add_u64(
            dst,
            recv_counts_.arena_offset() + npes_ * sizeof(std::uint64_t),
            announced_done_ ? 0 : 1);
      }
    }
    announced_done_ = announced_done_ || im_done;
    world_.barrier();

    // Harvest received items into the pop queue.
    auto counts = recv_counts_.unsafe_local_slice();
    auto items = recv_items_.unsafe_local_slice();
    bool any = false;
    for (pe_id src = 0; src < npes_; ++src) {
      const std::uint64_t n = counts[src];
      for (std::uint64_t j = 0; j < n; ++j) {
        inbox_.emplace_back(src, items[src * cap_ + j]);
      }
      any = any || n > 0;
      counts[src] = 0;
    }
    const bool all_done = counts[npes_] == npes_;
    const bool local_continue = !(all_done && !any && inbox_.empty());

    // The continue/stop decision must be *collective* (every PE must keep
    // calling proceed in lockstep — it barriers).  Vote on a parity slot.
    const std::size_t vote_slot = npes_ + 1 + (round_ % 2);
    if (local_continue) {
      for (pe_id dst = 0; dst < npes_; ++dst) {
        world_.lamellae().atomic_fetch_add_u64(
            dst, recv_counts_.arena_offset() + vote_slot * sizeof(std::uint64_t),
            1);
      }
    }
    world_.barrier();
    const bool cont = counts[vote_slot] > 0;
    counts[vote_slot] = 0;  // reused two rounds from now; safe to clear here
    ++round_;
    return cont;
  }

  /// Pop one received (source, item) pair.
  std::optional<std::pair<pe_id, Item>> pop() {
    if (inbox_.empty()) return std::nullopt;
    auto v = inbox_.front();
    inbox_.pop_front();
    return v;
  }

  [[nodiscard]] std::size_t capacity() const { return cap_; }

 private:
  World& world_;
  std::size_t npes_;
  std::size_t cap_;
  std::vector<std::vector<Item>> send_bufs_;
  SharedMemoryRegion<Item> recv_items_;
  SharedMemoryRegion<std::uint64_t> recv_counts_;
  std::deque<std::pair<pe_id, Item>> inbox_;
  bool announced_done_ = false;
  std::uint64_t round_ = 0;
};

}  // namespace lamellar::baselines
