// Exstack2 — the asynchronous variant of Exstack (paper Sec. II): buffers
// flush to the network as soon as they fill, receivers poll continuously,
// and termination is detected with per-pair final counts instead of global
// barriers per round.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "baselines/shmem_channel.hpp"

namespace lamellar::baselines {

template <typename Item>
class Exstack2 {
 public:
  Exstack2(World& world, std::size_t buf_items)
      : world_(world),
        channel_(world, buf_items),
        send_bufs_(world.num_pes()) {
    for (auto& b : send_bufs_) b.reserve(buf_items);
  }

  /// Queue an item for `dst`, flushing the buffer when it fills.  Always
  /// succeeds (flush loops drain our own inbox under backpressure).
  void push(pe_id dst, const Item& item) {
    auto& buf = send_bufs_[dst];
    buf.push_back(item);
    if (buf.size() >= channel_.buf_items()) flush(dst);
  }

  /// Non-collective progress: drain arrivals into the pop queue.  Call
  /// `done()` once after the last push; proceed() returns false once all
  /// PEs' announced traffic has fully arrived and been popped.
  bool proceed() {
    drain();
    if (!done_called_) return true;
    flush_all();
    channel_.announce_done();
    drain();
    return !(channel_.drained() && inbox_.empty());
  }

  void done() { done_called_ = true; }

  /// Drain arrivals without flushing (safe to call from another library's
  /// backpressure loop).
  void pump() { drain(); }

  /// Invoked inside flush backpressure loops; wire it to pump() of any
  /// sibling channel sharing the PEs to avoid cross-instance deadlock.
  void set_progress_hook(std::function<void()> hook) {
    hook_ = std::move(hook);
  }

  std::optional<std::pair<pe_id, Item>> pop() {
    if (inbox_.empty()) return std::nullopt;
    auto v = inbox_.front();
    inbox_.pop_front();
    return v;
  }

 private:
  void flush(pe_id dst) {
    auto& buf = send_bufs_[dst];
    while (!buf.empty()) {
      if (channel_.try_send(dst, buf)) {
        buf.clear();
        return;
      }
      drain();  // backpressure: free remote slots by consuming our own
      if (hook_) hook_();
    }
  }

  void flush_all() {
    for (pe_id dst = 0; dst < send_bufs_.size(); ++dst) {
      if (!send_bufs_[dst].empty()) flush(dst);
    }
  }

  void drain() {
    while (auto msg = channel_.try_recv()) {
      for (const auto& item : msg->second) {
        inbox_.emplace_back(msg->first, item);
      }
    }
  }

  World& world_;
  ChannelGroup<Item> channel_;
  std::vector<std::vector<Item>> send_bufs_;
  std::deque<std::pair<pe_id, Item>> inbox_;
  bool done_called_ = false;
  std::function<void()> hook_;
};

}  // namespace lamellar::baselines
