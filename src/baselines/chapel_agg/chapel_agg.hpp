// Chapel-style automatic aggregation (paper Sec. II / IV-B).
//
// Chapel's compiler wraps remote assignments in aggregators.  Two are
// modeled here after the Arkouda/Chapel CopyAggregator family the paper's
// IndexGather discussion cites:
//
//  * DstAggregator<T>  — destination-buffered updates ("x[i] op= v"):
//    buffers (index, value) pairs per destination locale and applies them
//    remotely in bulk, like our Exstack2 path but with Chapel's per-locale
//    buffer sizing.
//  * SrcAggregator<T>  — the CopyAggregator specialization for simple
//    assignment gathers ("dst[j] = src[i]"): buffers *indices* per source
//    locale and resolves them with direct bulk RDMA GETs — no reply
//    messages, which is why Chapel wins IndexGather at scale in Fig. 4.
#pragma once

#include <functional>

#include "baselines/shmem_channel.hpp"

namespace lamellar::baselines {

template <typename T>
class DstAggregator {
  struct Update {
    std::uint64_t index;
    T value;
  };

 public:
  using Apply = std::function<void(std::uint64_t local_index, T value)>;

  DstAggregator(World& world, std::size_t buf_items, Apply apply)
      : world_(world),
        channel_(world, buf_items),
        send_bufs_(world.num_pes()),
        apply_(std::move(apply)) {}

  void update(pe_id dst, std::uint64_t local_index, T value) {
    auto& buf = send_bufs_[dst];
    buf.push_back(Update{local_index, value});
    if (buf.size() >= channel_.buf_items()) flush(dst);
  }

  void done() { done_called_ = true; }

  bool proceed() {
    drain();
    if (done_called_) {
      for (pe_id p = 0; p < send_bufs_.size(); ++p) {
        if (!send_bufs_[p].empty()) flush(p);
      }
      channel_.announce_done();
      drain();
      return !channel_.drained();
    }
    return true;
  }

 private:
  void flush(pe_id dst) {
    auto& buf = send_bufs_[dst];
    while (!buf.empty()) {
      if (channel_.try_send(dst, buf)) {
        buf.clear();
        return;
      }
      drain();
    }
  }

  void drain() {
    while (auto msg = channel_.try_recv()) {
      for (const auto& u : msg->second) apply_(u.index, u.value);
    }
  }

  World& world_;
  ChannelGroup<Update> channel_;
  std::vector<std::vector<Update>> send_bufs_;
  Apply apply_;
  bool done_called_ = false;
};

/// Gather aggregation with direct RDMA: indices are buffered per source PE;
/// a full buffer is resolved by bulk fabric GETs from the source's slab.
/// `src_region_offset` is the symmetric arena offset of the table slab.
template <typename T>
class SrcAggregator {
  struct Pending {
    std::uint64_t src_local;   ///< element index within the source's slab
    std::uint64_t dst_index;   ///< where the caller wants the value
  };

 public:
  SrcAggregator(World& world, std::size_t buf_items,
                std::size_t src_region_offset, std::span<T> out)
      : world_(world),
        buf_items_(buf_items),
        region_offset_(src_region_offset),
        out_(out),
        pending_(world.num_pes()) {}

  /// Request out[dst_index] = table[src_pe][src_local].
  void gather(pe_id src_pe, std::uint64_t src_local,
              std::uint64_t dst_index) {
    auto& buf = pending_[src_pe];
    buf.push_back(Pending{src_local, dst_index});
    if (buf.size() >= buf_items_) flush(src_pe);
  }

  /// Resolve all outstanding requests (one-sided: no remote cooperation).
  void flush_all() {
    for (pe_id p = 0; p < pending_.size(); ++p) {
      if (!pending_[p].empty()) flush(p);
    }
  }

 private:
  void flush(pe_id src_pe) {
    auto& buf = pending_[src_pe];
    // Chapel's CopyAggregator keeps the read pipeline full: element GETs
    // are posted back-to-back, so each one costs the pipelined rate rather
    // than a full round trip.
    for (const auto& p : buf) {
      T value{};
      world_.lamellae().get_pipelined(
          src_pe, region_offset_ + p.src_local * sizeof(T),
          std::as_writable_bytes(std::span<T>(&value, 1)));
      out_[p.dst_index] = value;
    }
    buf.clear();
  }

  World& world_;
  std::size_t buf_items_;
  std::size_t region_offset_;
  std::span<T> out_;
  std::vector<std::vector<Pending>> pending_;
};

}  // namespace lamellar::baselines
