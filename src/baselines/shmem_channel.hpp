// SPSC buffer rings over symmetric memory — the transport the asynchronous
// BALE libraries (Exstack2, Conveyors, Selectors) sit on, playing the role
// OpenSHMEM puts/atomics play for the originals.
//
// For every directed pair (src -> dst) the destination hosts a ring of
// fixed-size slots plus head/tail words in its symmetric region.  The
// producer RDMA-puts a buffer of items into the next slot and releases it
// with a remote atomic store of the tail; the consumer polls its local tail,
// drains slots, and advances the head (which producers read remotely to
// detect free space).  Termination detection uses per-pair final-count
// words: a producer that is done publishes exactly how many items it sent;
// the consumer is done once every producer's final count matches what it
// received.
#pragma once

#include <optional>
#include <vector>

#include "core/memregion/shared_region.hpp"
#include "core/world/world.hpp"

namespace lamellar::baselines {

inline constexpr std::uint64_t kNoFinalCount = ~0ULL;

template <typename Item>
class ChannelGroup {
  static_assert(std::is_trivially_copyable_v<Item>);
  static_assert(alignof(Item) <= 8);

 public:
  /// Collective.  `buf_items` items per slot, `slots` slots per directed
  /// pair.
  ChannelGroup(World& world, std::size_t buf_items, std::size_t slots = 4)
      : world_(world),
        npes_(world.num_pes()),
        buf_items_(buf_items),
        slots_(slots),
        slot_bytes_(align_up(8 + buf_items * sizeof(Item), 8)),
        lane_bytes_(16 + 8 + slots_ * slot_bytes_),
        region_(SharedMemoryRegion<std::byte>::create(world,
                                                      npes_ * lane_bytes_)),
        send_tail_(npes_, 0),
        recv_head_(npes_, 0),
        received_(npes_, 0),
        sent_(npes_, 0) {
    auto local = region_.unsafe_local_slice();
    std::fill(local.begin(), local.end(), std::byte{0});
    // Final-count words start as "unknown".
    for (pe_id src = 0; src < npes_; ++src) {
      store_local_u64(final_off(src), kNoFinalCount);
    }
    world.barrier();
  }

  /// Try to ship a buffer of at most buf_items items to `dst`.  Returns
  /// false when the ring is full (caller should drain its own inbox).
  bool try_send(pe_id dst, std::span<const Item> items) {
    if (items.size() > buf_items_) throw Error("ChannelGroup: buffer too big");
    auto& lam = world_.lamellae();
    const std::uint64_t tail = send_tail_[dst];
    // Free space check: read the consumer-advanced head remotely.
    const std::uint64_t head =
        lam.atomic_load_u64(dst, region_.arena_offset() + head_off(my_pe()));
    if (tail - head >= slots_) return false;
    const std::size_t slot = tail % slots_;
    const std::size_t base = slot_off(my_pe(), slot);
    const std::uint64_t n = items.size();
    // Payload first, then count, then the releasing tail store.
    region_.unsafe_put(dst, base + 8, std::as_bytes(items).size_bytes() == 0
                                          ? std::span<const std::byte>{}
                                          : std::as_bytes(items));
    region_.unsafe_put(dst, base,
                       std::span<const std::byte>(
                           reinterpret_cast<const std::byte*>(&n), 8));
    lam.atomic_store_u64(dst, region_.arena_offset() + tail_off(my_pe()),
                         tail + 1);
    send_tail_[dst] = tail + 1;
    sent_[dst] += n;
    return true;
  }

  /// Drain one pending buffer, if any.  Returns the source PE and items.
  std::optional<std::pair<pe_id, std::vector<Item>>> try_recv() {
    auto& lam = world_.lamellae();
    auto local = region_.unsafe_local_slice();
    for (std::size_t k = 0; k < npes_; ++k) {
      const pe_id src = (recv_scan_ + k) % npes_;
      const std::uint64_t tail =
          lam.atomic_load_u64(my_pe(), region_.arena_offset() + tail_off(src));
      const std::uint64_t head = recv_head_[src];
      if (tail == head) continue;
      const std::size_t base = slot_off(src, head % slots_);
      std::uint64_t n = 0;
      std::memcpy(&n, local.data() + base, 8);
      std::vector<Item> items(n);
      std::memcpy(items.data(), local.data() + base + 8, n * sizeof(Item));
      recv_head_[src] = head + 1;
      // Publish the new head so the producer sees the freed slot.
      lam.atomic_store_u64(my_pe(), region_.arena_offset() + head_off(src),
                           head + 1);
      received_[src] += n;
      recv_scan_ = src + 1;
      return std::make_pair(src, std::move(items));
    }
    return std::nullopt;
  }

  /// Publish final per-destination send counts (call once, after flushing
  /// everything this PE will ever send on this channel).
  void announce_done() {
    if (announced_) return;
    announced_ = true;
    for (pe_id dst = 0; dst < npes_; ++dst) {
      world_.lamellae().atomic_store_u64(
          dst, region_.arena_offset() + final_off(my_pe()), sent_[dst]);
    }
  }

  /// True when every producer announced and all announced items arrived.
  [[nodiscard]] bool drained() {
    auto& lam = world_.lamellae();
    for (pe_id src = 0; src < npes_; ++src) {
      const std::uint64_t fin =
          lam.atomic_load_u64(my_pe(), region_.arena_offset() + final_off(src));
      if (fin == kNoFinalCount || received_[src] < fin) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t buf_items() const { return buf_items_; }
  [[nodiscard]] pe_id my_pe() const { return world_.my_pe(); }
  [[nodiscard]] std::size_t num_pes() const { return npes_; }
  World& world() { return world_; }

 private:
  // Per-lane layout inside the local region, one lane per source PE:
  //   [tail u64][head u64][final u64][slots...]
  [[nodiscard]] std::size_t lane_off(pe_id src) const {
    return src * lane_bytes_;
  }
  [[nodiscard]] std::size_t tail_off(pe_id src) const { return lane_off(src); }
  [[nodiscard]] std::size_t head_off(pe_id src) const {
    return lane_off(src) + 8;
  }
  [[nodiscard]] std::size_t final_off(pe_id src) const {
    return lane_off(src) + 16;
  }
  [[nodiscard]] std::size_t slot_off(pe_id src, std::size_t slot) const {
    return lane_off(src) + 24 + slot * slot_bytes_;
  }

  void store_local_u64(std::size_t off, std::uint64_t v) {
    std::memcpy(region_.unsafe_local_slice().data() + off, &v, 8);
  }

  World& world_;
  std::size_t npes_;
  std::size_t buf_items_;
  std::size_t slots_;
  std::size_t slot_bytes_;
  std::size_t lane_bytes_;
  SharedMemoryRegion<std::byte> region_;
  std::vector<std::uint64_t> send_tail_;
  std::vector<std::uint64_t> recv_head_;
  std::vector<std::uint64_t> received_;
  std::vector<std::uint64_t> sent_;
  std::size_t recv_scan_ = 0;
  bool announced_ = false;
};

}  // namespace lamellar::baselines
