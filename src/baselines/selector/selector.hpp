// Selectors — the HClib actor API for fine-grained asynchronous
// bulk-synchronous PGAS programs (paper Sec. II, Paul et al. JoCS'23).
//
// A Selector owns a small set of mailboxes; `send(mb, pe, msg)` delivers a
// fine-grained message to the selector instance on `pe`, where the mailbox's
// process callback runs it.  The library hides aggregation and termination
// detection behind the actor interface — here both are provided by the
// ChannelGroup transport (per-destination buffers, final-count draining),
// mirroring how HClib layers Selectors over Conveyors/OpenSHMEM.
#pragma once

#include <array>
#include <functional>

#include "baselines/shmem_channel.hpp"

namespace lamellar::baselines {

template <typename Msg, std::size_t kMailboxes = 2>
class Selector {
  struct Tagged {
    std::uint32_t mailbox;
    Msg msg;
  };

 public:
  using Handler = std::function<void(Msg, pe_id src)>;

  Selector(World& world, std::size_t buf_items)
      : world_(world), channel_(world, buf_items), send_bufs_(world.num_pes()) {}

  /// Install the process callback for one mailbox (before any send).
  void on_message(std::size_t mailbox, Handler handler) {
    handlers_.at(mailbox) = std::move(handler);
  }

  /// Send `msg` to mailbox `mailbox` of the selector on `pe`.
  void send(std::size_t mailbox, pe_id pe, const Msg& msg) {
    auto& buf = send_bufs_[pe];
    buf.push_back(Tagged{static_cast<std::uint32_t>(mailbox), msg});
    if (buf.size() >= channel_.buf_items()) flush(pe);
  }

  /// Declare that this PE will send no more messages.
  void done() { done_called_ = true; }

  /// Drive the actor: process arrivals; returns false once globally done.
  bool proceed() {
    drain();
    if (done_called_) {
      for (pe_id p = 0; p < send_bufs_.size(); ++p) {
        if (!send_bufs_[p].empty()) flush(p);
      }
      channel_.announce_done();
      drain();
      return !channel_.drained();
    }
    return true;
  }

  /// Convenience: run to completion (call after done()).
  void run_to_completion() {
    while (proceed()) {
    }
  }

 private:
  void flush(pe_id dst) {
    auto& buf = send_bufs_[dst];
    while (!buf.empty()) {
      if (channel_.try_send(dst, buf)) {
        buf.clear();
        return;
      }
      drain();
    }
  }

  void drain() {
    while (auto msg = channel_.try_recv()) {
      for (const auto& t : msg->second) {
        handlers_[t.mailbox](t.msg, msg->first);
      }
    }
  }

  World& world_;
  ChannelGroup<Tagged> channel_;
  std::vector<std::vector<Tagged>> send_bufs_;
  std::array<Handler, kMailboxes> handlers_;
  bool done_called_ = false;
};

}  // namespace lamellar::baselines
