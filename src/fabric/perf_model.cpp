#include "fabric/perf_model.hpp"

namespace lamellar {

double bandwidth_mb_s(std::size_t bytes, double per_msg_ns) {
  if (per_msg_ns <= 0.0) return 0.0;
  // bytes/ns == GB/s (decimal); scale to MB/s.
  return (static_cast<double>(bytes) / per_msg_ns) * 1000.0;
}

PerfParams paper_perf_params() { return PerfParams{}; }

}  // namespace lamellar
