// Per-PE virtual clocks.
//
// Each PE accumulates virtual nanoseconds as the performance model charges
// its fabric operations.  Clocks are monotone; collectives (barriers)
// synchronize participants to the maximum.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/types.hpp"

namespace lamellar {

class VirtualClock {
 public:
  [[nodiscard]] sim_nanos now() const {
    return ns_.load(std::memory_order_relaxed);
  }

  void advance(double ns) {
    if (ns <= 0.0) return;
    ns_.fetch_add(static_cast<sim_nanos>(ns), std::memory_order_relaxed);
  }

  /// Move the clock forward to at least `t` (used at synchronization points).
  void raise_to(sim_nanos t) {
    sim_nanos cur = ns_.load(std::memory_order_relaxed);
    while (cur < t &&
           !ns_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

  void reset() { ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<sim_nanos> ns_{0};
};

}  // namespace lamellar
