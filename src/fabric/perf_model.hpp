// LogGP-style network/host cost model.
//
// The fabric executes every transfer for real (memcpy between PE arenas) and
// charges *virtual nanoseconds* to per-PE clocks according to this model.
// Benchmarks read virtual time, so the reproduced curves reflect the paper's
// InfiniBand fabric rather than this machine's memory system.
//
// Calibration targets (paper Fig. 2 and Sec. IV-A):
//  * theoretical peak 12.5 GB/s; raw paths reach ~ peak by 32 KB transfers;
//  * a bandwidth drop between 128 B and 256 B caused by the libfabric verbs
//    provider switching from fi_inject_write to fi_write;
//  * measurable per-message runtime overhead for safe abstractions
//    (copy into Vec, atomic stores, lock acquisition, AM dispatch);
//  * runtime aggregation below the 100 KB threshold.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "fabric/topology.hpp"

namespace lamellar {

struct PerfParams {
  // ---- wire / NIC ----
  double wire_latency_ns = 1'000.0;   ///< one-way latency, small message
  double inject_overhead_ns = 480.0;  ///< host post cost, fi_inject_write path
  double post_overhead_ns = 1'350.0;  ///< host post cost, fi_write path
  std::size_t inject_threshold_bytes = 192;  ///< verbs inject switch point
  double link_bytes_per_ns = 12.5;           ///< 100 Gb/s HDR-100
  double achievable_fraction = 0.965;        ///< protocol efficiency at peak

  // ---- host-side costs charged by runtime layers ----
  double memcpy_bytes_per_ns = 14.0;   ///< single-core copy rate
  double atomic_store_ns = 2.1;        ///< per element (NativeAtomic path)
  double generic_mutex_ns = 7.5;       ///< per element 1-byte mutex path
  double rwlock_acquire_ns = 140.0;    ///< LocalLockArray per message
  double serialize_byte_ns = 0.055;    ///< serde cost per byte
  double am_dispatch_ns = 420.0;       ///< spawn+deserialize+complete one AM
  double am_header_bytes = 32.0;       ///< per-AM envelope on the wire
  double agg_flush_overhead_ns = 700;  ///< close+hand off one agg buffer
  double task_spawn_ns = 95.0;         ///< enqueue on the work-stealing pool
  double barrier_ns = 4'000.0;         ///< world barrier (2 PEs)

  // ---- runtime policy mirrored here for cost purposes ----
  std::size_t agg_threshold_bytes = 100 * 1024;

  /// Per-message host overhead for an RDMA post of `bytes`.
  [[nodiscard]] double rdma_overhead_ns(std::size_t bytes) const {
    return bytes <= inject_threshold_bytes ? inject_overhead_ns
                                           : post_overhead_ns;
  }

  /// Time on the wire for `bytes` (serialization onto the link).
  [[nodiscard]] double wire_time_ns(std::size_t bytes) const {
    return static_cast<double>(bytes) /
           (link_bytes_per_ns * achievable_fraction);
  }

  /// Full cost of one remote put/get of `bytes`: host post overhead plus
  /// link serialization plus propagation.
  [[nodiscard]] double rdma_cost_ns(std::size_t bytes) const {
    return rdma_overhead_ns(bytes) + wire_time_ns(bytes) + wire_latency_ns;
  }

  /// Per-message cost under back-to-back pipelining (bandwidth tests):
  /// propagation latency overlaps with the next message, so throughput is
  /// governed by post overhead + link serialization.  This is what makes
  /// the Fig. 2 inject-threshold drop visible.
  [[nodiscard]] double pipelined_cost_ns(std::size_t bytes) const {
    return rdma_overhead_ns(bytes) + wire_time_ns(bytes);
  }

  /// Host memcpy cost.
  [[nodiscard]] double memcpy_ns(std::size_t bytes) const {
    return static_cast<double>(bytes) / memcpy_bytes_per_ns;
  }

  [[nodiscard]] double serialize_ns(std::size_t bytes) const {
    return static_cast<double>(bytes) * serialize_byte_ns;
  }
};

/// Steady-state bandwidth (MB/s, decimal) for back-to-back transfers of
/// `bytes` each costing `per_msg_ns`.
double bandwidth_mb_s(std::size_t bytes, double per_msg_ns);

/// Default parameters calibrated against the paper's Fig. 2.
PerfParams paper_perf_params();

}  // namespace lamellar
