// Cluster topology description.
//
// The paper's evaluation platform (Sec. IV): 48-node cluster (32 usable),
// dual-socket AMD EPYC 7543 (64 cores, 16 NUMA domains per node), 256 GB
// DDR4-3200, Mellanox ConnectX-6 HDR-100 (100 Gb/s = 12.5 GB/s), full fat
// tree of 4 racks x 12 nodes with 3 spine switches.  The simulator and the
// fabric performance model both consume this description.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace lamellar {

struct ClusterSpec {
  std::size_t nodes = 32;
  std::size_t cores_per_node = 64;
  std::size_t numa_per_node = 16;
  std::size_t nodes_per_rack = 12;
  std::size_t racks = 4;

  /// NIC injection bandwidth per node, bytes per nanosecond (12.5 GB/s).
  double nic_bytes_per_ns = 12.5;

  /// Rack uplink capacity toward the spines, bytes/ns.  Each leaf has 8
  /// connections to each of 3 spines (24 x 100 Gb/s = 300 GB/s up), shared
  /// by 12 nodes; expressed per node-equivalent below via contention.
  double uplink_bytes_per_ns = 24 * 12.5;

  /// One-way wire latency within a rack / across racks (ns).
  double intra_rack_latency_ns = 1'000;
  double inter_rack_latency_ns = 1'600;

  /// Intra-node (shared-memory) transfer rate, bytes/ns.
  double intranode_bytes_per_ns = 16.0;

  [[nodiscard]] std::size_t total_cores() const {
    return nodes * cores_per_node;
  }

  [[nodiscard]] std::size_t node_of_core(std::size_t core) const {
    return core / cores_per_node;
  }

  [[nodiscard]] std::size_t rack_of_node(std::size_t node) const {
    return node / nodes_per_rack;
  }
};

/// The cluster used in the paper's evaluation.
ClusterSpec paper_cluster();

/// How PEs are mapped onto the cluster for the fabric model: `pes_per_node`
/// PEs placed round-robin-contiguously across nodes.
struct PeMapping {
  std::size_t pes_per_node = 1;

  [[nodiscard]] std::size_t node_of_pe(pe_id pe) const {
    return pe / pes_per_node;
  }
  [[nodiscard]] bool same_node(pe_id a, pe_id b) const {
    return node_of_pe(a) == node_of_pe(b);
  }
};

}  // namespace lamellar
