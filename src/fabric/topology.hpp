// Cluster topology description.
//
// The paper's evaluation platform (Sec. IV): 48-node cluster (32 usable),
// dual-socket AMD EPYC 7543 (64 cores, 16 NUMA domains per node), 256 GB
// DDR4-3200, Mellanox ConnectX-6 HDR-100 (100 Gb/s = 12.5 GB/s), full fat
// tree of 4 racks x 12 nodes with 3 spine switches.  The simulator, the
// fabric performance model, and the 2-hop routing grid all consume this
// description.
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "common/types.hpp"

namespace lamellar {

struct ClusterSpec {
  /// Physical nodes in the fabric (racks * nodes_per_rack; simulations pass
  /// the *usable* node count — 32 in the paper — separately).
  std::size_t nodes = 48;
  std::size_t cores_per_node = 64;
  std::size_t numa_per_node = 16;
  std::size_t nodes_per_rack = 12;
  std::size_t racks = 4;

  /// NIC injection bandwidth per node, bytes per nanosecond (12.5 GB/s).
  double nic_bytes_per_ns = 12.5;

  /// Rack uplink capacity toward the spines, bytes/ns.  Each leaf has 8
  /// connections to each of 3 spines (24 x 100 Gb/s = 300 GB/s up), shared
  /// by 12 nodes; expressed per node-equivalent below via contention.
  double uplink_bytes_per_ns = 24 * 12.5;

  /// One-way wire latency within a rack / across racks (ns).
  double intra_rack_latency_ns = 1'000;
  double inter_rack_latency_ns = 1'600;

  /// Intra-node (shared-memory) transfer rate, bytes/ns.
  double intranode_bytes_per_ns = 16.0;

  /// Every construction asserts the defaults' consistency — editing the
  /// platform constants above into an inconsistent state fails at the first
  /// ClusterSpec{} instead of skewing model output.
  ClusterSpec() { validate(); }

  /// Structural consistency check: the rack decomposition must cover the
  /// fabric exactly and every modeled rate/latency must be positive.  Throws
  /// Error on violation.  paper_cluster() validates before returning, so a
  /// drifting default or a hand-edited spec fails loudly instead of feeding
  /// the performance model divide-by-zero rates.
  void validate() const {
    if (nodes == 0 || cores_per_node == 0 || numa_per_node == 0 ||
        nodes_per_rack == 0 || racks == 0) {
      throw Error("ClusterSpec: all shape fields must be nonzero");
    }
    if (racks * nodes_per_rack != nodes) {
      throw Error("ClusterSpec: racks * nodes_per_rack != nodes");
    }
    if (nic_bytes_per_ns <= 0 || uplink_bytes_per_ns <= 0 ||
        intranode_bytes_per_ns <= 0) {
      throw Error("ClusterSpec: transfer rates must be positive");
    }
    if (intra_rack_latency_ns <= 0 || inter_rack_latency_ns <= 0) {
      throw Error("ClusterSpec: latencies must be positive");
    }
  }

  [[nodiscard]] std::size_t total_cores() const {
    return nodes * cores_per_node;
  }

  [[nodiscard]] std::size_t node_of_core(std::size_t core) const {
    return core / cores_per_node;
  }

  [[nodiscard]] std::size_t rack_of_node(std::size_t node) const {
    return node / nodes_per_rack;
  }
};

/// The cluster used in the paper's evaluation (validated).
ClusterSpec paper_cluster();

/// How PEs are mapped onto the cluster for the fabric model: `pes_per_node`
/// PEs placed round-robin-contiguously across nodes.
struct PeMapping {
  std::size_t pes_per_node = 1;

  PeMapping() = default;
  explicit PeMapping(std::size_t pes_per_node_in)
      : pes_per_node(pes_per_node_in) {
    if (pes_per_node == 0) {
      throw Error("PeMapping: pes_per_node must be nonzero");
    }
  }

  [[nodiscard]] std::size_t node_of_pe(pe_id pe) const {
    return pe / pes_per_node;
  }
  [[nodiscard]] bool same_node(pe_id a, pe_id b) const {
    return node_of_pe(a) == node_of_pe(b);
  }
};

/// 2-hop routing grid (the Conveyors/exstack2 idiom promoted into the
/// runtime's aggregation layer): PEs are arranged row-major in a
/// `rows x cols` grid.  A small record from `src` to `dst` first hops to
/// the relay PE in src's *row* and dst's *column*; the relay re-aggregates
/// records per destination column and forwards them.  Each PE then keeps
/// live aggregation lanes only toward its own row and its own column —
/// O(sqrt P) lanes instead of O(P).
struct RouteGrid {
  std::size_t num_pes = 0;
  std::size_t cols = 1;

  [[nodiscard]] std::size_t rows() const {
    return cols == 0 ? 0 : (num_pes + cols - 1) / cols;
  }
  [[nodiscard]] std::size_t row_of(pe_id pe) const { return pe / cols; }
  [[nodiscard]] std::size_t col_of(pe_id pe) const { return pe % cols; }

  /// First hop for src -> dst: the PE in src's row and dst's column.
  /// Returns `dst` itself whenever relaying cannot help — same row (the
  /// relay would be dst), same column (the relay would be src), or a ragged
  /// last row where the grid position does not exist.  Callers treat
  /// `relay(src, dst) == dst` as "send direct".
  [[nodiscard]] pe_id relay(pe_id src, pe_id dst) const {
    const pe_id mid = static_cast<pe_id>(row_of(src) * cols + col_of(dst));
    if (mid == src || mid == dst || mid >= num_pes) return dst;
    return mid;
  }

  /// Build the grid for `num_pes`.  Topology-aware rule: when the node
  /// width (`mapping.pes_per_node`) yields a usable near-square grid, a row
  /// is one node and the first hop stays intra-node (cheap shared-memory
  /// transfer in the fabric model); otherwise fall back to ceil(sqrt(P))
  /// columns, which minimizes the row+column lane count.
  static RouteGrid make(std::size_t num_pes, const PeMapping& mapping);
};

}  // namespace lamellar
