#include "fabric/shmem_fabric.hpp"

#include <cstring>

#include "common/error.hpp"

namespace lamellar {

ShmemFabric::ShmemFabric(std::size_t num_pes, std::size_t arena_bytes,
                         PerfParams params, PeMapping mapping,
                         bool virtual_time, bool metrics_enabled)
    : arena_bytes_(arena_bytes),
      params_(params),
      mapping_(mapping),
      virtual_time_(virtual_time),
      clocks_(num_pes),
      world_barrier_(num_pes) {
  arenas_.reserve(num_pes);
  inboxes_.reserve(num_pes);
  fab_metrics_.reserve(num_pes);
  for (std::size_t i = 0; i < num_pes; ++i) {
    // Value-initialize so freshly allocated regions read as zero, matching
    // the registered-region behaviour higher layers rely on for flags.
    arenas_.push_back(std::make_unique<std::byte[]>(arena_bytes));
    inboxes_.push_back(std::make_unique<Inbox>());
    registries_.emplace_back(metrics_enabled);
    obs::MetricsRegistry& reg = registries_.back();
    fab_metrics_.push_back(FabricCounters{
        &reg.counter("fabric.puts"),
        &reg.counter("fabric.gets"),
        &reg.counter("fabric.atomics"),
        &reg.counter("fabric.bytes_put"),
        &reg.counter("fabric.bytes_get"),
        &reg.counter("fabric.msgs_sent"),
        &reg.counter("fabric.msgs_polled"),
        &reg.counter("fabric.bytes_sent"),
        &reg.counter("fabric.barriers"),
        &reg.counter("fabric.vtime_charged_ns"),
    });
  }
}

void ShmemFabric::check_bounds(pe_id pe, std::size_t offset,
                               std::size_t len) const {
  if (pe >= arenas_.size()) {
    throw BoundsError("fabric: PE id out of range");
  }
  if (offset + len > arena_bytes_ || offset + len < offset) {
    throw_bounds("fabric arena access", offset + len, arena_bytes_);
  }
}

double ShmemFabric::transfer_cost_ns(pe_id a, pe_id b,
                                     std::size_t bytes) const {
  if (a == b) {
    return params_.memcpy_ns(bytes);
  }
  if (mapping_.same_node(a, b)) {
    // Shared-memory path: copy through the node's memory system.
    return 120.0 + static_cast<double>(bytes) / params_.memcpy_bytes_per_ns;
  }
  return params_.rdma_cost_ns(bytes);
}

void ShmemFabric::put(pe_id src, pe_id dst, std::size_t dst_offset,
                      std::span<const std::byte> data) {
  check_bounds(dst, dst_offset, data.size());
  std::memcpy(arenas_[dst].get() + dst_offset, data.data(), data.size());
  charge(src, transfer_cost_ns(src, dst, data.size()));
  fab_metrics_[src].puts->inc();
  fab_metrics_[src].bytes_put->inc(data.size());
}

void ShmemFabric::get(pe_id dst, pe_id src_remote, std::size_t remote_offset,
                      std::span<std::byte> out) {
  check_bounds(src_remote, remote_offset, out.size());
  std::memcpy(out.data(), arenas_[src_remote].get() + remote_offset,
              out.size());
  charge(dst, transfer_cost_ns(dst, src_remote, out.size()));
  fab_metrics_[dst].gets->inc();
  fab_metrics_[dst].bytes_get->inc(out.size());
}

void ShmemFabric::get_pipelined(pe_id dst, pe_id src_remote,
                                std::size_t remote_offset,
                                std::span<std::byte> out) {
  check_bounds(src_remote, remote_offset, out.size());
  std::memcpy(out.data(), arenas_[src_remote].get() + remote_offset,
              out.size());
  if (dst == src_remote || mapping_.same_node(dst, src_remote)) {
    charge(dst, params_.memcpy_ns(out.size()));
  } else {
    charge(dst, params_.pipelined_cost_ns(out.size()));
  }
  fab_metrics_[dst].gets->inc();
  fab_metrics_[dst].bytes_get->inc(out.size());
}

namespace {
// Arena words used for atomics are 8-byte aligned by the allocators.
std::atomic_ref<std::uint64_t> word_at(std::byte* base, std::size_t offset) {
  return std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(base + offset));
}
}  // namespace

std::uint64_t ShmemFabric::atomic_fetch_add_u64(pe_id src, pe_id dst,
                                                std::size_t offset,
                                                std::uint64_t v) {
  check_bounds(dst, offset, sizeof(std::uint64_t));
  charge(src, src == dst ? params_.atomic_store_ns
                         : transfer_cost_ns(src, dst, sizeof(std::uint64_t)));
  fab_metrics_[src].atomics->inc();
  return word_at(arenas_[dst].get(), offset)
      .fetch_add(v, std::memory_order_acq_rel);
}

std::uint64_t ShmemFabric::atomic_load_u64(pe_id src, pe_id dst,
                                           std::size_t offset) {
  check_bounds(dst, offset, sizeof(std::uint64_t));
  charge(src, src == dst ? params_.atomic_store_ns
                         : transfer_cost_ns(src, dst, sizeof(std::uint64_t)));
  fab_metrics_[src].atomics->inc();
  return word_at(arenas_[dst].get(), offset).load(std::memory_order_acquire);
}

void ShmemFabric::atomic_store_u64(pe_id src, pe_id dst, std::size_t offset,
                                   std::uint64_t v) {
  check_bounds(dst, offset, sizeof(std::uint64_t));
  charge(src, src == dst ? params_.atomic_store_ns
                         : transfer_cost_ns(src, dst, sizeof(std::uint64_t)));
  fab_metrics_[src].atomics->inc();
  word_at(arenas_[dst].get(), offset).store(v, std::memory_order_release);
}

bool ShmemFabric::atomic_cas_u64(pe_id src, pe_id dst, std::size_t offset,
                                 std::uint64_t& expected,
                                 std::uint64_t desired) {
  check_bounds(dst, offset, sizeof(std::uint64_t));
  charge(src, src == dst ? params_.atomic_store_ns
                         : transfer_cost_ns(src, dst, sizeof(std::uint64_t)));
  fab_metrics_[src].atomics->inc();
  return word_at(arenas_[dst].get(), offset)
      .compare_exchange_strong(expected, desired, std::memory_order_acq_rel);
}

bool ShmemFabric::try_send(pe_id src, pe_id dst, ByteBuffer& payload) {
  if (dst >= inboxes_.size()) throw BoundsError("fabric: send to bad PE");
  const std::size_t bytes = payload.size();
  Inbox& inbox = *inboxes_[dst];
  std::lock_guard lock(inbox.mu);
  if (inbox.messages.size() >= inbox_capacity_) return false;
  charge(src, transfer_cost_ns(src, dst, bytes));
  fab_metrics_[src].msgs_sent->inc();
  fab_metrics_[src].bytes_sent->inc(bytes);
  FabricMessage msg;
  msg.src = src;
  msg.arrival_time = virtual_time_ ? clocks_[src].now() : 0;
  msg.payload = std::move(payload);
  inbox.messages.push_back(std::move(msg));
  return true;
}

bool ShmemFabric::poll(pe_id pe, FabricMessage& out) {
  Inbox& inbox = *inboxes_[pe];
  std::lock_guard lock(inbox.mu);
  if (inbox.messages.empty()) return false;
  out = std::move(inbox.messages.front());
  inbox.messages.pop_front();
  if (virtual_time_) clocks_[pe].raise_to(out.arrival_time);
  fab_metrics_[pe].msgs_polled->inc();
  return true;
}

bool ShmemFabric::inbox_empty(pe_id pe) const {
  Inbox& inbox = *inboxes_[pe];
  std::lock_guard lock(inbox.mu);
  return inbox.messages.empty();
}

void ShmemFabric::barrier(pe_id pe) {
  fab_metrics_[pe].barriers->inc();
  world_barrier_.arrive_and_wait(pe, virtual_time_ ? &clocks_[pe] : nullptr,
                                 params_.barrier_ns);
}

}  // namespace lamellar
