// Sense-reversing barrier for SPMD participant threads, with virtual-time
// synchronization: on release, every participant's clock is raised to the
// maximum arrival time plus the modeled barrier cost.
//
// Concurrency invariants (audited under TSan with mixed clocked/clock-less
// participants; see tests/test_concurrency_regressions.cpp):
//  * Every field (arrived_, generation_, max_arrival_, release_time_) is
//    guarded by mu_; participants publish state to each other exclusively
//    through the mutex, so there are no data races by construction and no
//    ordering is delegated to atomics.
//  * generation_ is the wait predicate.  A round-g waiter that woke still
//    holds the lock when it reads release_time_, and release_time_ cannot
//    be overwritten by round g+1 before then: round g+1 releases only after
//    *all* participants arrive again, which includes every round-g waiter —
//    each of which reads release_time_ (and returns) before it can re-enter
//    arrive_and_wait.  The releaser likewise reads release_time_ under the
//    same critical section in which it wrote it.
//  * Mixed clocked/clock-less participants: max_arrival_ aggregates only
//    clocked arrivals, so an all-clock-less round releases at cost_ns alone
//    and clock-less participants never contribute a phantom arrival time.
//    max_arrival_ is reset by the releaser before anyone can arrive for the
//    next round (the releaser still holds mu_ when it resets).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/types.hpp"
#include "fabric/virtual_clock.hpp"

namespace lamellar {

class SenseBarrier {
 public:
  explicit SenseBarrier(std::size_t participants)
      : participants_(participants) {}

  /// Block until all participants arrive.  `clock` may be null (no virtual
  /// time accounting).  `cost_ns` is the modeled latency of the barrier.
  void arrive_and_wait(VirtualClock* clock = nullptr, double cost_ns = 0.0) {
    std::unique_lock lock(mu_);
    const std::size_t gen = generation_;
    if (clock != nullptr) {
      // Single read: the clock may advance concurrently (other threads of
      // this PE charge it); a second read could record a later arrival
      // than the one compared against.
      const sim_nanos arrival = clock->now();
      if (arrival > max_arrival_) max_arrival_ = arrival;
    }
    if (++arrived_ == participants_) {
      arrived_ = 0;
      release_time_ = max_arrival_ + static_cast<sim_nanos>(cost_ns);
      max_arrival_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
    if (clock != nullptr) clock->raise_to(release_time_);
  }

  [[nodiscard]] std::size_t participants() const { return participants_; }

 private:
  const std::size_t participants_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  sim_nanos max_arrival_ = 0;
  sim_nanos release_time_ = 0;
};

}  // namespace lamellar
