// Sense-reversing barrier for SPMD participant threads, with virtual-time
// synchronization: on release, every participant's clock is raised to the
// maximum arrival time plus the modeled barrier cost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/types.hpp"
#include "fabric/virtual_clock.hpp"

namespace lamellar {

class SenseBarrier {
 public:
  explicit SenseBarrier(std::size_t participants)
      : participants_(participants) {}

  /// Block until all participants arrive.  `clock` may be null (no virtual
  /// time accounting).  `cost_ns` is the modeled latency of the barrier.
  void arrive_and_wait(VirtualClock* clock = nullptr, double cost_ns = 0.0) {
    std::unique_lock lock(mu_);
    const std::size_t gen = generation_;
    if (clock != nullptr && clock->now() > max_arrival_) {
      max_arrival_ = clock->now();
    }
    if (++arrived_ == participants_) {
      arrived_ = 0;
      release_time_ = max_arrival_ + static_cast<sim_nanos>(cost_ns);
      max_arrival_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
    if (clock != nullptr) clock->raise_to(release_time_);
  }

  [[nodiscard]] std::size_t participants() const { return participants_; }

 private:
  const std::size_t participants_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  sim_nanos max_arrival_ = 0;
  sim_nanos release_time_ = 0;
};

}  // namespace lamellar
