// Sense-reversing tree barrier for SPMD participant threads, with
// virtual-time synchronization: on release, every participant's clock is
// raised to the maximum arrival time plus the modeled barrier cost.
//
// Participants combine in fixed groups of kFanIn at the leaves; the last
// arrival of each group carries the group's max arrival time one level up,
// so a P-participant barrier costs O(log P) lock hand-offs on the critical
// path instead of P serialized acquisitions of one global mutex — the
// difference between usable and unusable at the paper-scale PE counts
// (DESIGN.md §12).
//
// Concurrency invariants (audited under TSan with mixed clocked/clock-less
// participants; see tests/test_concurrency_regressions.cpp):
//  * Every node's fields are guarded by its own mutex; participants publish
//    state to each other exclusively through those mutexes.
//  * Membership of every node is FIXED across rounds: participant `who`
//    always arrives at leaf `who / kFanIn`, and level k+1 receives exactly
//    one arrival per child node per round (the child's releaser).  A member
//    cannot re-arrive for round g+1 until it returned from round g — waiters
//    return only after the releaser bumps the node generation, and the
//    releaser returns only after its recursive parent arrival completed — so
//    round g+1 arrivals can never be counted into round g, and release_time
//    cannot be overwritten before every round-g waiter has read it.  (An
//    anonymous free-running scheme does NOT have this property: arrivals of
//    round g+1 could fill a node whose round-g waiters haven't woken.)
//  * Mixed clocked/clock-less participants: clock-less arrivals contribute
//    arrival time 0, which never raises a node's max (sim_nanos is
//    non-negative), so an all-clock-less round releases at cost_ns alone.
//    Each node's max_arrival is reset by its releaser before any member can
//    arrive for the next round.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "fabric/virtual_clock.hpp"

namespace lamellar {

class SenseBarrier {
 public:
  /// Combining-tree fan-in.  8 keeps the tree two levels deep up to 64
  /// participants and four deep at 4096.
  static constexpr std::size_t kFanIn = 8;

  explicit SenseBarrier(std::size_t participants)
      : participants_(participants == 0 ? 1 : participants) {
    // Build levels bottom-up: level 0 groups participants, each further
    // level groups the nodes below it, until one root remains.
    std::size_t width = participants_;
    for (;;) {
      level_base_.push_back(nodes_.size());
      const std::size_t count = (width + kFanIn - 1) / kFanIn;
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t lo = i * kFanIn;
        nodes_.emplace_back(std::min(kFanIn, width - lo));
      }
      if (count == 1) break;
      width = count;
    }
  }

  /// Block until all participants arrive.  `who` is this participant's
  /// stable identity in [0, participants) — world PE id or team rank — and
  /// determines its leaf group.  `clock` may be null (no virtual time
  /// accounting).  `cost_ns` is the modeled latency of the barrier.
  void arrive_and_wait(std::size_t who, VirtualClock* clock = nullptr,
                       double cost_ns = 0.0) {
    if (who >= participants_) {
      throw Error("SenseBarrier: participant id out of range");
    }
    const sim_nanos arrival = clock != nullptr ? clock->now() : 0;
    const sim_nanos release =
        arrive_node(0, who / kFanIn, arrival, cost_ns);
    if (clock != nullptr) clock->raise_to(release);
  }

  /// Anonymous arrival, valid only when the tree is a single node (i.e.
  /// participants <= kFanIn): with one flat group, arrival order alone is
  /// safe.  Larger trees need stable identities for fixed leaf membership.
  void arrive_and_wait(VirtualClock* clock = nullptr, double cost_ns = 0.0) {
    if (level_base_.size() != 1) {
      throw Error(
          "SenseBarrier: anonymous arrival requires <= kFanIn participants");
    }
    const sim_nanos arrival = clock != nullptr ? clock->now() : 0;
    const sim_nanos release = arrive_node(0, 0, arrival, cost_ns);
    if (clock != nullptr) clock->raise_to(release);
  }

  [[nodiscard]] std::size_t participants() const { return participants_; }

 private:
  struct Node {
    explicit Node(std::size_t expected_in) : expected(expected_in) {}
    std::mutex mu;
    std::condition_variable cv;
    const std::size_t expected;
    std::size_t arrived = 0;
    std::size_t generation = 0;
    sim_nanos max_arrival = 0;
    sim_nanos release_time = 0;
  };

  Node& node_at(std::size_t level, std::size_t idx) {
    return nodes_[level_base_[level] + idx];
  }

  /// Arrive at one node with the (group-)max arrival time gathered below.
  /// The last arrival resets the node, carries the max upward (or computes
  /// the release at the root), then publishes the release time and wakes
  /// the node's waiters.  Returns the barrier's release time.
  sim_nanos arrive_node(std::size_t level, std::size_t idx, sim_nanos arrival,
                        double cost_ns) {
    Node& node = node_at(level, idx);
    std::unique_lock lock(node.mu);
    const std::size_t gen = node.generation;
    if (arrival > node.max_arrival) node.max_arrival = arrival;
    if (++node.arrived < node.expected) {
      node.cv.wait(lock, [&] { return node.generation != gen; });
      return node.release_time;
    }
    const sim_nanos group_max = node.max_arrival;
    node.arrived = 0;
    node.max_arrival = 0;
    sim_nanos release;
    if (level + 1 == level_base_.size()) {
      release = group_max + static_cast<sim_nanos>(cost_ns);
    } else {
      // Recurse to the parent without holding this node's lock: the node is
      // quiescent (all members counted, none can re-arrive until the
      // generation bump below).
      lock.unlock();
      release = arrive_node(level + 1, idx / kFanIn, group_max, cost_ns);
      lock.lock();
    }
    node.release_time = release;
    ++node.generation;
    node.cv.notify_all();
    return release;
  }

  const std::size_t participants_;
  /// All tree nodes, levels concatenated bottom-up; level_base_[k] is the
  /// index of level k's first node.  deque: nodes hold mutexes (immovable).
  std::deque<Node> nodes_;
  std::vector<std::size_t> level_base_;
};

}  // namespace lamellar
