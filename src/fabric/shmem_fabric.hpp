// The in-process shared-memory fabric — this repo's substitute for
// ROFI/libfabric (paper Sec. III-A).
//
// Every PE owns a byte arena playing the role of its registered RDMA memory
// region.  put/get are real memcpys between arenas; remote atomics use
// std::atomic_ref on arena words; message buffers travel through bounded
// per-destination inboxes (the command-queue transport).  Every operation is
// charged to the initiating PE's virtual clock via the PerfParams model, and
// message arrival times propagate causality to receivers, so benchmark
// numbers reflect the modeled InfiniBand fabric.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "fabric/barrier.hpp"
#include "fabric/perf_model.hpp"
#include "fabric/topology.hpp"
#include "fabric/virtual_clock.hpp"
#include "obs/metrics.hpp"

namespace lamellar {

/// A serialized message in flight between two PEs.
struct FabricMessage {
  pe_id src = 0;
  sim_nanos arrival_time = 0;
  ByteBuffer payload;
};

class ShmemFabric {
 public:
  /// `metrics_enabled=false` makes every per-PE registry inert
  /// (LAMELLAR_METRICS=off): lookups return shared dummy slots and
  /// snapshots are empty.
  ShmemFabric(std::size_t num_pes, std::size_t arena_bytes,
              PerfParams params = paper_perf_params(),
              PeMapping mapping = PeMapping{}, bool virtual_time = true,
              bool metrics_enabled = true);

  [[nodiscard]] std::size_t num_pes() const { return clocks_.size(); }
  [[nodiscard]] std::size_t arena_bytes() const { return arena_bytes_; }
  [[nodiscard]] std::byte* arena(pe_id pe) { return arenas_[pe].get(); }
  [[nodiscard]] const PerfParams& params() const { return params_; }
  [[nodiscard]] const PeMapping& mapping() const { return mapping_; }

  // ---- RDMA ----

  /// Write `data` into `dst`'s arena at `dst_offset` (initiated by `src`).
  void put(pe_id src, pe_id dst, std::size_t dst_offset,
           std::span<const std::byte> data);

  /// Read from `src_remote`'s arena at `remote_offset` into `out`
  /// (initiated by `dst`).
  void get(pe_id dst, pe_id src_remote, std::size_t remote_offset,
           std::span<std::byte> out);

  /// Same data movement as get(), but charged at the *pipelined* rate: the
  /// cost of one of many back-to-back posted descriptors (used by
  /// aggregators that keep the read pipeline full, e.g. Chapel's
  /// CopyAggregator).
  void get_pipelined(pe_id dst, pe_id src_remote, std::size_t remote_offset,
                     std::span<std::byte> out);

  // ---- remote atomics on 64-bit arena words ----
  std::uint64_t atomic_fetch_add_u64(pe_id src, pe_id dst, std::size_t offset,
                                     std::uint64_t v);
  std::uint64_t atomic_load_u64(pe_id src, pe_id dst, std::size_t offset);
  void atomic_store_u64(pe_id src, pe_id dst, std::size_t offset,
                        std::uint64_t v);
  bool atomic_cas_u64(pe_id src, pe_id dst, std::size_t offset,
                      std::uint64_t& expected, std::uint64_t desired);

  // ---- messaging (command-queue transport) ----

  /// Attempt to enqueue a serialized buffer for `dst`.  Returns false when
  /// the destination inbox is full (caller should make progress and retry).
  bool try_send(pe_id src, pe_id dst, ByteBuffer& payload);

  /// Pop one pending message for `pe`.  Raises the PE clock to the message
  /// arrival time.  Returns false when the inbox is empty.
  bool poll(pe_id pe, FabricMessage& out);

  [[nodiscard]] bool inbox_empty(pe_id pe) const;

  // ---- synchronization ----
  void barrier(pe_id pe);

  VirtualClock& clock(pe_id pe) { return clocks_[pe]; }

  /// The per-PE metrics registry (the canonical home of every runtime
  /// counter on that PE; higher layers register their own metrics here).
  obs::MetricsRegistry& metrics(pe_id pe) { return registries_[pe]; }

  /// Charge local host-side work to a PE clock (used by higher layers).
  void charge(pe_id pe, double ns) {
    if (virtual_time_) clocks_[pe].advance(ns);
    fab_metrics_[pe].vtime_charged_ns->inc(static_cast<std::uint64_t>(ns));
  }

  [[nodiscard]] bool virtual_time_enabled() const { return virtual_time_; }

  /// Cost of one put/get between these PEs (intra-node transfers bypass the
  /// NIC and are charged at memory-copy rates).
  [[nodiscard]] double transfer_cost_ns(pe_id a, pe_id b,
                                        std::size_t bytes) const;

 private:
  struct Inbox {
    mutable std::mutex mu;
    std::deque<FabricMessage> messages;
  };

  // Handles resolved once per PE at construction; ops update them with
  // relaxed atomics (no name lookups on the data path).
  struct FabricCounters {
    obs::Counter* puts;
    obs::Counter* gets;
    obs::Counter* atomics;
    obs::Counter* bytes_put;
    obs::Counter* bytes_get;
    obs::Counter* msgs_sent;
    obs::Counter* msgs_polled;
    obs::Counter* bytes_sent;
    obs::Counter* barriers;
    obs::Counter* vtime_charged_ns;
  };

  void check_bounds(pe_id pe, std::size_t offset, std::size_t len) const;

  std::size_t arena_bytes_;
  PerfParams params_;
  PeMapping mapping_;
  bool virtual_time_;
  std::vector<std::unique_ptr<std::byte[]>> arenas_;
  std::vector<VirtualClock> clocks_;
  std::deque<obs::MetricsRegistry> registries_;  // deque: non-movable elems
  std::vector<FabricCounters> fab_metrics_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::size_t inbox_capacity_ = 4096;
  SenseBarrier world_barrier_;
};

}  // namespace lamellar
