#include "fabric/topology.hpp"

namespace lamellar {

ClusterSpec paper_cluster() { return ClusterSpec{}; }

}  // namespace lamellar
