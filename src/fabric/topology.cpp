#include "fabric/topology.hpp"

namespace lamellar {

ClusterSpec paper_cluster() {
  // The defaults *are* the paper's platform (4 racks x 12 nodes, 64-core
  // EPYC nodes, HDR-100); validate so any future drift in the defaults
  // fails here rather than deep inside the performance model.
  ClusterSpec spec;
  spec.validate();
  return spec;
}

RouteGrid RouteGrid::make(std::size_t num_pes, const PeMapping& mapping) {
  RouteGrid g;
  g.num_pes = num_pes;
  if (num_pes <= 1) {
    g.cols = 1;
    return g;
  }
  // ceil(sqrt(num_pes)) without floating point.
  std::size_t root = 1;
  while (root * root < num_pes) ++root;
  std::size_t cols = root;
  const std::size_t node_w = mapping.pes_per_node;
  // Topology-aware column width: one row per node keeps the first hop
  // intra-node.  Only worthwhile when it still yields >= 2 rows and stays
  // within a factor of two of square (lane count is rows + cols, minimized
  // at the square grid).
  if (node_w >= 2 && node_w <= 2 * root && 2 * node_w >= root &&
      num_pes > node_w) {
    cols = node_w;
  }
  g.cols = cols;
  return g;
}

}  // namespace lamellar
