#include "common/config.hpp"

#include <cstdlib>
#include <stdexcept>

namespace lamellar {

namespace {

// Parse a size with optional K/M/G suffix (binary multiples).
std::size_t parse_size(const std::string& s) {
  std::size_t pos = 0;
  unsigned long long v = std::stoull(s, &pos);
  std::size_t mult = 1;
  if (pos < s.size()) {
    switch (s[pos]) {
      case 'k':
      case 'K':
        mult = 1024;
        break;
      case 'm':
      case 'M':
        mult = 1024 * 1024;
        break;
      case 'g':
      case 'G':
        mult = 1024ULL * 1024 * 1024;
        break;
      default:
        throw std::invalid_argument("bad size suffix: " + s);
    }
  }
  return static_cast<std::size_t>(v) * mult;
}

}  // namespace

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return parse_size(v);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::stoull(v);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

MetricsMode parse_metrics_mode(const std::string& s) {
  if (s == "off") return MetricsMode::kOff;
  if (s == "quiet") return MetricsMode::kQuiet;
  if (s == "summary") return MetricsMode::kSummary;
  if (s == "json") return MetricsMode::kJson;
  throw std::invalid_argument(
      "LAMELLAR_METRICS must be off|quiet|summary|json, got: " + s);
}

RouteMode parse_route_mode(const std::string& s) {
  if (s == "direct") return RouteMode::kDirect;
  if (s == "2hop") return RouteMode::k2Hop;
  throw std::invalid_argument("LAMELLAR_ROUTE must be direct|2hop, got: " + s);
}

BackendKind parse_backend_kind(const std::string& s) {
  if (s == "shmem") return BackendKind::kShmem;
  if (s == "mmap") return BackendKind::kMmap;
  throw std::invalid_argument("LAMELLAR_BACKEND must be shmem|mmap, got: " +
                              s);
}

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig cfg;
  cfg.threads_per_pe = env_size("LAMELLAR_THREADS", cfg.threads_per_pe);
  cfg.agg_threshold_bytes =
      env_size("LAMELLAR_AGG_THRESHOLD", cfg.agg_threshold_bytes);
  cfg.batch_op_limit = env_size("LAMELLAR_BATCH_OP_LIMIT", cfg.batch_op_limit);
  cfg.symmetric_heap_bytes =
      env_size("LAMELLAR_SYM_HEAP", cfg.symmetric_heap_bytes);
  cfg.onesided_heap_bytes =
      env_size("LAMELLAR_ONESIDED_HEAP", cfg.onesided_heap_bytes);
  cfg.cmd_queue_depth = env_size("LAMELLAR_CMDQ_DEPTH", cfg.cmd_queue_depth);
  cfg.seed = env_u64("LAMELLAR_SEED", cfg.seed);
  cfg.enable_virtual_time =
      env_u64("LAMELLAR_VIRTUAL_TIME", cfg.enable_virtual_time ? 1 : 0) != 0;
  cfg.metrics_mode = parse_metrics_mode(env_str("LAMELLAR_METRICS", "quiet"));
  cfg.trace_file = env_str("LAMELLAR_TRACE_FILE", cfg.trace_file);
  cfg.trace_ring_capacity =
      env_size("LAMELLAR_TRACE_CAPACITY", cfg.trace_ring_capacity);
  cfg.trace_sample = env_u64("LAMELLAR_TRACE_SAMPLE", cfg.trace_sample);
  cfg.trace_per_pe =
      env_u64("LAMELLAR_TRACE_PER_PE", cfg.trace_per_pe ? 1 : 0) != 0;
  cfg.metrics_interval_ms =
      env_u64("LAMELLAR_METRICS_INTERVAL_MS", cfg.metrics_interval_ms);
  cfg.metrics_file = env_str("LAMELLAR_METRICS_FILE", cfg.metrics_file);
  cfg.route = parse_route_mode(env_str("LAMELLAR_ROUTE", "direct"));
  cfg.route_direct_cutoff_bytes =
      env_size("LAMELLAR_ROUTE_CUTOFF", cfg.route_direct_cutoff_bytes);
  cfg.internal_heap_bytes =
      env_size("LAMELLAR_INTERNAL_HEAP", cfg.internal_heap_bytes);
  cfg.park_timeout_us = env_u64("LAMELLAR_PARK_US", cfg.park_timeout_us);
  cfg.backend = parse_backend_kind(env_str("LAMELLAR_BACKEND", "shmem"));
  cfg.mp_ring_bytes = env_size("LAMELLAR_MP_RING", cfg.mp_ring_bytes);
  cfg.mp_barrier_timeout_ms =
      env_u64("LAMELLAR_MP_BARRIER_TIMEOUT_MS", cfg.mp_barrier_timeout_ms);
  cfg.mp_wait_timeout_ms =
      env_u64("LAMELLAR_MP_TIMEOUT_MS", cfg.mp_wait_timeout_ms);
  return cfg;
}

}  // namespace lamellar
