#include "common/config.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

extern char** environ;

namespace lamellar {

namespace {

// Every LAMELLAR_-prefixed name any binary in this repo reads: runtime knobs
// (README "Environment variables" table), bench/test sweep parameters, and
// CI switches.  unknown_lamellar_env_vars() flags anything outside this set
// so a typo'd knob warns instead of silently reverting to the default.
constexpr const char* kKnownEnvVars[] = {
    // Runtime knobs (RuntimeConfig::from_env).
    "LAMELLAR_ADAPT",
    "LAMELLAR_ADAPT_AGE_US",
    "LAMELLAR_ADAPT_INTERVAL_US",
    "LAMELLAR_ADAPT_MAX",
    "LAMELLAR_ADAPT_MIN",
    "LAMELLAR_ADMIT_WINDOW",
    "LAMELLAR_AGG_THRESHOLD",
    "LAMELLAR_BACKEND",
    "LAMELLAR_BATCH_OP_LIMIT",
    "LAMELLAR_CMDQ_DEPTH",
    "LAMELLAR_INTERNAL_HEAP",
    "LAMELLAR_METRICS",
    "LAMELLAR_METRICS_FILE",
    "LAMELLAR_METRICS_INTERVAL_MS",
    "LAMELLAR_MP_BARRIER_TIMEOUT_MS",
    "LAMELLAR_MP_RING",
    "LAMELLAR_MP_TIMEOUT_MS",
    "LAMELLAR_ONESIDED_HEAP",
    "LAMELLAR_PARK_US",
    "LAMELLAR_ROUTE",
    "LAMELLAR_ROUTE_CUTOFF",
    "LAMELLAR_SEED",
    "LAMELLAR_SYM_HEAP",
    "LAMELLAR_THREADS",
    "LAMELLAR_TRACE_CAPACITY",
    "LAMELLAR_TRACE_FILE",
    "LAMELLAR_TRACE_PER_PE",
    "LAMELLAR_TRACE_SAMPLE",
    "LAMELLAR_VIRTUAL_TIME",
    // Bench / example / test parameters.
    "LAMELLAR_FIG2_FULL",
    "LAMELLAR_FIG3_UPDATES",
    "LAMELLAR_FIG4_REQUESTS",
    "LAMELLAR_FIG5_PERM",
    "LAMELLAR_FIG_IMPL",
    "LAMELLAR_FUSION_ITERS",
    "LAMELLAR_FUSION_OPS",
    "LAMELLAR_SANITIZE",
    "LAMELLAR_SCALE_AGG",
    "LAMELLAR_SCALE_KERNELS",
    "LAMELLAR_SCALE_OPS",
    "LAMELLAR_SCALE_PARK_US",
    "LAMELLAR_SCALE_PES",
    "LAMELLAR_SCALE_ROUTES",
    "LAMELLAR_SERVE_PES",
    "LAMELLAR_SERVE_SECONDS",
    "LAMELLAR_SERVE_SHAPES",
    "LAMELLAR_TEST_FIG3_UPDATES",
    "LAMELLAR_TEST_SIZE",
};

// Parse a size with optional K/M/G suffix (binary multiples).
std::size_t parse_size(const std::string& s) {
  std::size_t pos = 0;
  unsigned long long v = std::stoull(s, &pos);
  std::size_t mult = 1;
  if (pos < s.size()) {
    switch (s[pos]) {
      case 'k':
      case 'K':
        mult = 1024;
        break;
      case 'm':
      case 'M':
        mult = 1024 * 1024;
        break;
      case 'g':
      case 'G':
        mult = 1024ULL * 1024 * 1024;
        break;
      default:
        throw std::invalid_argument("bad size suffix: " + s);
    }
  }
  return static_cast<std::size_t>(v) * mult;
}

}  // namespace

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return parse_size(v);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::stoull(v);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

MetricsMode parse_metrics_mode(const std::string& s) {
  if (s == "off") return MetricsMode::kOff;
  if (s == "quiet") return MetricsMode::kQuiet;
  if (s == "summary") return MetricsMode::kSummary;
  if (s == "json") return MetricsMode::kJson;
  throw std::invalid_argument(
      "LAMELLAR_METRICS must be off|quiet|summary|json, got: " + s);
}

RouteMode parse_route_mode(const std::string& s) {
  if (s == "direct") return RouteMode::kDirect;
  if (s == "2hop") return RouteMode::k2Hop;
  throw std::invalid_argument("LAMELLAR_ROUTE must be direct|2hop, got: " + s);
}

BackendKind parse_backend_kind(const std::string& s) {
  if (s == "shmem") return BackendKind::kShmem;
  if (s == "mmap") return BackendKind::kMmap;
  throw std::invalid_argument("LAMELLAR_BACKEND must be shmem|mmap, got: " +
                              s);
}

AdaptMode parse_adapt_mode(const std::string& s) {
  if (s == "off") return AdaptMode::kOff;
  if (s == "agg") return AdaptMode::kAgg;
  if (s == "full") return AdaptMode::kFull;
  throw std::invalid_argument("LAMELLAR_ADAPT must be off|agg|full, got: " +
                              s);
}

std::vector<std::string> unknown_lamellar_env_vars() {
  std::vector<std::string> unknown;
  if (environ == nullptr) return unknown;
  for (char** e = environ; *e != nullptr; ++e) {
    const char* entry = *e;
    if (std::strncmp(entry, "LAMELLAR_", 9) != 0) continue;
    const char* eq = std::strchr(entry, '=');
    std::string name = eq != nullptr ? std::string(entry, eq) : entry;
    bool known = false;
    for (const char* k : kKnownEnvVars) {
      if (name == k) {
        known = true;
        break;
      }
    }
    if (!known) unknown.push_back(std::move(name));
  }
  std::sort(unknown.begin(), unknown.end());
  unknown.erase(std::unique(unknown.begin(), unknown.end()), unknown.end());
  return unknown;
}

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig cfg;
  cfg.threads_per_pe = env_size("LAMELLAR_THREADS", cfg.threads_per_pe);
  cfg.agg_threshold_bytes =
      env_size("LAMELLAR_AGG_THRESHOLD", cfg.agg_threshold_bytes);
  cfg.batch_op_limit = env_size("LAMELLAR_BATCH_OP_LIMIT", cfg.batch_op_limit);
  cfg.symmetric_heap_bytes =
      env_size("LAMELLAR_SYM_HEAP", cfg.symmetric_heap_bytes);
  cfg.onesided_heap_bytes =
      env_size("LAMELLAR_ONESIDED_HEAP", cfg.onesided_heap_bytes);
  cfg.cmd_queue_depth = env_size("LAMELLAR_CMDQ_DEPTH", cfg.cmd_queue_depth);
  cfg.seed = env_u64("LAMELLAR_SEED", cfg.seed);
  cfg.enable_virtual_time =
      env_u64("LAMELLAR_VIRTUAL_TIME", cfg.enable_virtual_time ? 1 : 0) != 0;
  cfg.metrics_mode = parse_metrics_mode(env_str("LAMELLAR_METRICS", "quiet"));
  cfg.trace_file = env_str("LAMELLAR_TRACE_FILE", cfg.trace_file);
  cfg.trace_ring_capacity =
      env_size("LAMELLAR_TRACE_CAPACITY", cfg.trace_ring_capacity);
  cfg.trace_sample = env_u64("LAMELLAR_TRACE_SAMPLE", cfg.trace_sample);
  cfg.trace_per_pe =
      env_u64("LAMELLAR_TRACE_PER_PE", cfg.trace_per_pe ? 1 : 0) != 0;
  cfg.metrics_interval_ms =
      env_u64("LAMELLAR_METRICS_INTERVAL_MS", cfg.metrics_interval_ms);
  cfg.metrics_file = env_str("LAMELLAR_METRICS_FILE", cfg.metrics_file);
  cfg.route = parse_route_mode(env_str("LAMELLAR_ROUTE", "direct"));
  cfg.route_direct_cutoff_bytes =
      env_size("LAMELLAR_ROUTE_CUTOFF", cfg.route_direct_cutoff_bytes);
  cfg.internal_heap_bytes =
      env_size("LAMELLAR_INTERNAL_HEAP", cfg.internal_heap_bytes);
  cfg.park_timeout_us = env_u64("LAMELLAR_PARK_US", cfg.park_timeout_us);
  cfg.backend = parse_backend_kind(env_str("LAMELLAR_BACKEND", "shmem"));
  cfg.mp_ring_bytes = env_size("LAMELLAR_MP_RING", cfg.mp_ring_bytes);
  cfg.mp_barrier_timeout_ms =
      env_u64("LAMELLAR_MP_BARRIER_TIMEOUT_MS", cfg.mp_barrier_timeout_ms);
  cfg.mp_wait_timeout_ms =
      env_u64("LAMELLAR_MP_TIMEOUT_MS", cfg.mp_wait_timeout_ms);
  cfg.adapt = parse_adapt_mode(env_str("LAMELLAR_ADAPT", "off"));
  cfg.adapt_min_bytes = env_size("LAMELLAR_ADAPT_MIN", cfg.adapt_min_bytes);
  cfg.adapt_max_bytes = env_size("LAMELLAR_ADAPT_MAX", cfg.adapt_max_bytes);
  cfg.adapt_interval_us =
      env_u64("LAMELLAR_ADAPT_INTERVAL_US", cfg.adapt_interval_us);
  cfg.adapt_age_budget_us =
      env_u64("LAMELLAR_ADAPT_AGE_US", cfg.adapt_age_budget_us);
  cfg.admit_window = env_u64("LAMELLAR_ADMIT_WINDOW", cfg.admit_window);

  // Typo detection: warn once per process about LAMELLAR_ vars nothing
  // reads, rather than silently falling back to defaults.
  static std::once_flag warn_once;
  std::call_once(warn_once, [] {
    for (const auto& name : unknown_lamellar_env_vars()) {
      std::fprintf(stderr,
                   "lamellar: warning: unknown environment variable %s "
                   "(see README \"Environment variables\"); ignored\n",
                   name.c_str());
    }
  });
  return cfg;
}

}  // namespace lamellar
