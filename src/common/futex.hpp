// Thin wrappers over the Linux futex syscall for cross-PROCESS
// synchronization on words living in shared (mmap'd) memory.
//
// std::atomic wait/notify cannot be used here: libstdc++ routes small-type
// waits through a process-local table of proxy futexes, so a notify in one
// process never wakes a waiter in another.  These helpers issue the raw
// syscall on the shared word itself and deliberately omit
// FUTEX_PRIVATE_FLAG, making wake-ups visible across address spaces.
//
// Every waiter in this codebase is bounded: callers pass a timeout slice and
// re-check higher-level liveness state (peer pids, abort flags) between
// slices, so a crashed peer can never strand a waiter forever — the property
// the MmapLamellae barrier is built on (DESIGN.md §13).
#pragma once

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdint>
#include <ctime>

namespace lamellar {

/// Outcome of one bounded futex wait.
enum class FutexWait {
  kWoken,     ///< woken by futex_wake (or a spurious wake — re-check)
  kChanged,   ///< *addr != expected at syscall entry; no sleep happened
  kTimedOut,  ///< the timeout slice elapsed
};

/// Sleep while `*addr == expected`, for at most `timeout_ns` (<= 0 waits
/// indefinitely — every caller in this codebase passes a bound).
/// The atomic must be lock-free and address-free (static_asserted: this is
/// what makes it usable from multiple processes mapping the same page).
inline FutexWait futex_wait(const std::atomic<std::uint32_t>* addr,
                            std::uint32_t expected, std::int64_t timeout_ns) {
  static_assert(std::atomic<std::uint32_t>::is_always_lock_free);
  static_assert(sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t));
  timespec ts{};
  ts.tv_sec = timeout_ns / 1'000'000'000;
  ts.tv_nsec = timeout_ns % 1'000'000'000;
  const long rc =
      syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(addr),
              FUTEX_WAIT, expected, timeout_ns > 0 ? &ts : nullptr, nullptr, 0);
  if (rc == 0) return FutexWait::kWoken;
  switch (errno) {
    case EAGAIN:
      return FutexWait::kChanged;
    case ETIMEDOUT:
      return FutexWait::kTimedOut;
    default:  // EINTR and friends: treat as a wake and let the caller re-check
      return FutexWait::kWoken;
  }
}

/// Wake up to `n` waiters sleeping on `addr` (INT_MAX = all).  Returns the
/// number of waiters woken.
inline int futex_wake(std::atomic<std::uint32_t>* addr, int n = INT_MAX) {
  const long rc = syscall(
      SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAKE, n,
      nullptr, nullptr, 0);
  return rc < 0 ? 0 : static_cast<int>(rc);
}

}  // namespace lamellar
