// Runtime configuration, mirroring the environment-variable knobs the paper's
// runtime exposes (aggregation threshold, batch-op limit, heap sizes, worker
// threads).  Values are read once from the environment with documented
// defaults; every knob can also be set programmatically on WorldBuilder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lamellar {

/// What the metrics registry does with collected counters at end of run.
/// Collection itself is on in every mode except kOff (relaxed atomics on
/// padded cache lines — cheap enough to leave on), so tests and benches can
/// always read `world.metrics_snapshot()`.
enum class MetricsMode {
  kOff,      ///< registries disabled: zero entries, zero hot-path cost
  kQuiet,    ///< collect, but print nothing (default)
  kSummary,  ///< collect + per-PE summary table on stderr at teardown
  kJson,     ///< collect + JSON dump on stderr at teardown
};

/// How small AM records are routed between PEs (env: LAMELLAR_ROUTE=
/// direct|2hop).  kDirect aggregates per final destination — O(P) live
/// lanes per PE.  k2Hop routes small records through a same-row relay on
/// the RouteGrid (fabric/topology.hpp) that re-aggregates per destination
/// column — O(sqrt P) live lanes per PE, at the price of one extra copy per
/// relayed record.
enum class RouteMode {
  kDirect,
  k2Hop,
};

/// Which Lamellae implementation run_world builds (env: LAMELLAR_BACKEND=
/// shmem|mmap).  kShmem simulates PEs as threads in one address space;
/// kMmap forks one OS process per PE over a shared /dev/shm segment
/// (DESIGN.md §13).
enum class BackendKind {
  kShmem,
  kMmap,
};

/// Online adaptation level (env: LAMELLAR_ADAPT=off|agg|full; DESIGN.md
/// §14).  kOff pins the aggregation knobs at their startup values.  kAgg
/// runs the per-PE control loop: the flush threshold hill-climbs within
/// [adapt_min_bytes, adapt_max_bytes] and lanes older than the age budget
/// are partially flushed.  kFull additionally enables admission control — a
/// bounded pending-AM window per PE where senders cooperatively run
/// scheduler work instead of ballooning queues.
enum class AdaptMode {
  kOff,
  kAgg,
  kFull,
};

struct RuntimeConfig {
  /// Worker threads per PE (paper: best results with 4 threads per PE, one
  /// PE per NUMA node).  Default is small because tests run many PEs within
  /// one process.
  std::size_t threads_per_pe = 1;

  /// Aggregation threshold in bytes: AMs smaller than this are batched into
  /// shared buffers before transfer (paper Sec. IV-A: 100 KB default, with
  /// 512 KB - 1 MB noted as better on their fabric).
  std::size_t agg_threshold_bytes = 100 * 1024;

  /// Maximum operations per array batch sub-message (paper: 10,000).
  std::size_t batch_op_limit = 10'000;

  /// Symmetric heap size per PE in bytes.
  std::size_t symmetric_heap_bytes = std::size_t{64} * 1024 * 1024;

  /// One-sided heap size per PE in bytes.
  std::size_t onesided_heap_bytes = std::size_t{32} * 1024 * 1024;

  /// Command-queue capacity (messages in flight per PE pair direction).
  std::size_t cmd_queue_depth = 1024;

  /// Seed for all deterministic randomness.
  std::uint64_t seed = 42;

  /// Whether fabric operations charge virtual time to per-PE clocks.
  bool enable_virtual_time = true;

  /// Metrics collection/reporting mode (env: LAMELLAR_METRICS=
  /// off|quiet|summary|json; default quiet — collect, print nothing).
  MetricsMode metrics_mode = MetricsMode::kQuiet;

  /// When non-empty, export a Chrome trace_event JSON file here at end of
  /// run (env: LAMELLAR_TRACE_FILE=<path>; default off).  Load the file in
  /// chrome://tracing or https://ui.perfetto.dev.
  std::string trace_file;

  /// Per-thread trace ring capacity in events, rounded up to a power of
  /// two; the ring overwrites its oldest events once full
  /// (env: LAMELLAR_TRACE_CAPACITY; default 65536).
  std::size_t trace_ring_capacity = 1 << 16;

  /// Causal AM tracing sample rate: 0 disables (default); N samples one in
  /// every N remote request ids.  Sampled requests carry a 16-byte trace
  /// extension on the wire, populate the am.stage_* latency histograms, and
  /// emit Chrome flow events when the trace collector is on
  /// (env: LAMELLAR_TRACE_SAMPLE).
  std::uint64_t trace_sample = 0;

  /// When true and a trace file is configured, write one trace file per PE
  /// ("trace.json" -> "trace.pe0.json", ...) instead of one combined file;
  /// tools/trace_stitch.py merges and verifies them
  /// (env: LAMELLAR_TRACE_PER_PE=1; default off).
  bool trace_per_pe = false;

  /// Background telemetry sampling interval in milliseconds: 0 disables
  /// (default); otherwise a low-rate sampler thread appends one JSONL line
  /// per PE per tick — counter deltas plus gauge levels — giving a
  /// time-series view of steady-state behaviour
  /// (env: LAMELLAR_METRICS_INTERVAL_MS).
  std::uint64_t metrics_interval_ms = 0;

  /// Destination for telemetry JSONL lines; empty means stderr
  /// (env: LAMELLAR_METRICS_FILE).
  std::string metrics_file;

  /// Small-record routing policy (env: LAMELLAR_ROUTE=direct|2hop; default
  /// direct).  See RouteMode.
  RouteMode route = RouteMode::kDirect;

  /// 2-hop only: serialized records at or above this many bytes skip the
  /// relay and go direct (the relay copy would dominate).  0 means auto:
  /// agg_threshold_bytes / 8 (env: LAMELLAR_ROUTE_CUTOFF).
  std::size_t route_direct_cutoff_bytes = 0;

  /// Runtime-reserved region at the base of each PE's arena (env:
  /// LAMELLAR_INTERNAL_HEAP).  Shrink together with the heaps so
  /// thousand-PE worlds fit in CI memory.
  std::size_t internal_heap_bytes = std::size_t{1} * 1024 * 1024;

  /// Worker park timeout in microseconds (env: LAMELLAR_PARK_US; default
  /// 200).  Idle workers wake this often to run the progress hook; raise it
  /// for massively oversubscribed scale runs (thousands of PEs on a few
  /// cores) so parked workers do not thrash the scheduler.
  std::uint64_t park_timeout_us = 200;

  /// Lamellae backend selection (env: LAMELLAR_BACKEND=shmem|mmap; default
  /// shmem).  See BackendKind.
  BackendKind backend = BackendKind::kShmem;

  /// mmap backend: capacity in bytes of each (dst, src) cross-process ring
  /// (env: LAMELLAR_MP_RING; default 1 MB).  Clamped up at segment creation
  /// so a full aggregation buffer always fits.
  std::size_t mp_ring_bytes = std::size_t{1} * 1024 * 1024;

  /// mmap backend: bounded-wait barrier timeout in milliseconds before
  /// aborting with a diagnostic naming the straggler PEs
  /// (env: LAMELLAR_MP_BARRIER_TIMEOUT_MS; default 10000).
  std::uint64_t mp_barrier_timeout_ms = 10'000;

  /// mmap backend: parent-side join timeout in milliseconds; children still
  /// alive after this are SIGKILLed and reported
  /// (env: LAMELLAR_MP_TIMEOUT_MS; default 120000).
  std::uint64_t mp_wait_timeout_ms = 120'000;

  /// Online adaptation level (env: LAMELLAR_ADAPT=off|agg|full; default
  /// off).  See AdaptMode and DESIGN.md §14.
  AdaptMode adapt = AdaptMode::kOff;

  /// Lower bound for the adaptive flush threshold in bytes
  /// (env: LAMELLAR_ADAPT_MIN; default 4K).
  std::size_t adapt_min_bytes = 4 * 1024;

  /// Upper bound for the adaptive flush threshold in bytes
  /// (env: LAMELLAR_ADAPT_MAX; default 1M).
  std::size_t adapt_max_bytes = std::size_t{1024} * 1024;

  /// Controller tick interval in microseconds: how often the control loop
  /// re-reads its sensors and may adjust the threshold
  /// (env: LAMELLAR_ADAPT_INTERVAL_US; default 500).
  std::uint64_t adapt_interval_us = 500;

  /// Lane age budget in microseconds: staged records older than this are
  /// flushed below threshold so trickle traffic does not wait for a full
  /// buffer; also the latency set-point the threshold hill-climbs against
  /// (env: LAMELLAR_ADAPT_AGE_US; default 2000).
  std::uint64_t adapt_age_budget_us = 2'000;

  /// Admission-control window: max pending (launched - completed) request
  /// AMs per PE before senders cooperatively run scheduler work instead of
  /// queueing more.  0 means auto: 8192 when adapt=full, disabled otherwise
  /// (env: LAMELLAR_ADMIT_WINDOW).
  std::uint64_t admit_window = 0;

  /// Load overrides from LAMELLAR_* environment variables.
  static RuntimeConfig from_env();
};

/// Parse helpers (exposed for tests).
std::size_t env_size(const char* name, std::size_t fallback);
std::uint64_t env_u64(const char* name, std::uint64_t fallback);
std::string env_str(const char* name, const std::string& fallback);
MetricsMode parse_metrics_mode(const std::string& s);
RouteMode parse_route_mode(const std::string& s);
BackendKind parse_backend_kind(const std::string& s);
AdaptMode parse_adapt_mode(const std::string& s);

/// Names of LAMELLAR_-prefixed variables present in the environment that no
/// runtime, bench, or test knob recognises — typo detection for the table
/// in README.md.  from_env() warns about each on stderr (once per name per
/// process); exposed separately so tests can exercise the scan directly.
std::vector<std::string> unknown_lamellar_env_vars();

}  // namespace lamellar
