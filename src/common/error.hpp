// Error types for the lamellar runtime.
//
// The runtime follows the C++ Core Guidelines error philosophy: exceptional
// conditions (misuse of collective calls, allocation exhaustion, protocol
// violations) raise exceptions derived from `lamellar::Error`; expected
// conditions are encoded in return values.
#pragma once

#include <stdexcept>
#include <string>

namespace lamellar {

/// Root of the lamellar exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A symmetric-heap or one-sided-heap allocation could not be satisfied.
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// A collective operation was invoked inconsistently across PEs.
class CollectiveMismatchError : public Error {
 public:
  explicit CollectiveMismatchError(const std::string& what) : Error(what) {}
};

/// An array conversion was attempted while other references exist.
class ConversionError : public Error {
 public:
  explicit ConversionError(const std::string& what) : Error(what) {}
};

/// An index was outside the bounds of an array or memory region.
class BoundsError : public Error {
 public:
  explicit BoundsError(const std::string& what) : Error(what) {}
};

/// Serialized data could not be decoded (corrupt or mismatched schema).
class DeserializeError : public Error {
 public:
  explicit DeserializeError(const std::string& what) : Error(what) {}
};

[[noreturn]] void throw_bounds(const char* what, std::size_t index,
                               std::size_t len);

}  // namespace lamellar
