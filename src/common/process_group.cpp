#include "common/process_group.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>

#include "common/error.hpp"

namespace lamellar {

namespace {

void set_nonblock(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Append whatever is currently readable; returns false once the writer end
/// is closed (EOF).
bool drain(int fd, std::string& into) {
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof buf);
    if (n > 0) {
      into.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // EOF
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
}

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string ProcessGroup::Child::describe() const {
  if (killed_on_timeout) return "killed by the parent after timeout";
  if (exited) return "exited with code " + std::to_string(code);
  std::string s = "killed by signal " + std::to_string(signal);
  if (const char* name = strsignal(signal)) s += std::string(" (") + name + ")";
  return s;
}

ProcessGroup::~ProcessGroup() {
  // Never leave orphans: kill and reap anything not yet collected.
  for (auto& t : children_) {
    if (t.child.reaped || t.child.pid <= 0) continue;
    kill(t.child.pid, SIGKILL);
    waitpid(t.child.pid, nullptr, 0);
    if (t.out_fd >= 0) close(t.out_fd);
    if (t.err_fd >= 0) close(t.err_fd);
  }
}

std::size_t ProcessGroup::spawn(const std::function<int()>& body) {
  if (waited_) throw Error("ProcessGroup: spawn after wait_all");
  int out_pipe[2];
  int err_pipe[2];
  if (pipe(out_pipe) != 0 || pipe(err_pipe) != 0) {
    throw Error("ProcessGroup: pipe failed: " +
                std::string(std::strerror(errno)));
  }
  // Flush before forking so buffered parent output is not duplicated into
  // the child's copy of the stdio buffers.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid < 0) {
    throw Error("ProcessGroup: fork failed: " +
                std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    // Child: route stdout/stderr into the pipes, run the body, _exit.
    close(out_pipe[0]);
    close(err_pipe[0]);
    dup2(out_pipe[1], STDOUT_FILENO);
    dup2(err_pipe[1], STDERR_FILENO);
    close(out_pipe[1]);
    close(err_pipe[1]);
    int code = 1;
    try {
      code = body();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "uncaught exception: %s\n", e.what());
    } catch (...) {
      std::fprintf(stderr, "uncaught non-standard exception\n");
    }
    std::fflush(stdout);
    std::fflush(stderr);
    _exit(code);
  }
  close(out_pipe[1]);
  close(err_pipe[1]);
  set_nonblock(out_pipe[0]);
  set_nonblock(err_pipe[0]);
  Tracked t;
  t.child.pid = pid;
  t.child.index = children_.size();
  t.out_fd = out_pipe[0];
  t.err_fd = err_pipe[0];
  children_.push_back(std::move(t));
  return children_.back().child.index;
}

std::vector<ProcessGroup::Child> ProcessGroup::wait_all(
    std::uint64_t timeout_ms,
    const std::function<void(const Child&)>& on_reaped) {
  waited_ = true;
  const std::uint64_t start = now_ms();
  bool killed_for_timeout = false;
  std::size_t remaining = 0;
  for (const auto& t : children_) {
    if (!t.child.reaped) ++remaining;
  }
  while (remaining > 0) {
    // Drain pipes first: a child blocked on a full pipe must make progress
    // before it can exit.
    std::vector<pollfd> fds;
    for (auto& t : children_) {
      if (t.out_fd >= 0) fds.push_back({t.out_fd, POLLIN, 0});
      if (t.err_fd >= 0) fds.push_back({t.err_fd, POLLIN, 0});
    }
    if (!fds.empty()) poll(fds.data(), fds.size(), 20);
    for (auto& t : children_) {
      if (t.out_fd >= 0 && !drain(t.out_fd, t.child.out)) {
        close(t.out_fd);
        t.out_fd = -1;
      }
      if (t.err_fd >= 0 && !drain(t.err_fd, t.child.err)) {
        close(t.err_fd);
        t.err_fd = -1;
      }
    }
    for (auto& t : children_) {
      if (t.child.reaped) continue;
      int status = 0;
      const pid_t r = waitpid(t.child.pid, &status, WNOHANG);
      if (r != t.child.pid) continue;
      t.child.reaped = true;
      if (WIFEXITED(status)) {
        t.child.exited = true;
        t.child.code = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        t.child.signal = WTERMSIG(status);
      }
      t.child.killed_on_timeout =
          killed_for_timeout && !t.child.ok() && t.child.signal == SIGKILL;
      --remaining;
      if (on_reaped) on_reaped(t.child);
    }
    if (remaining > 0 && !killed_for_timeout && timeout_ms > 0 &&
        now_ms() - start > timeout_ms) {
      killed_for_timeout = true;
      for (auto& t : children_) {
        if (!t.child.reaped) kill(t.child.pid, SIGKILL);
      }
    }
  }
  // Final pipe sweep: bytes written just before exit.
  for (auto& t : children_) {
    if (t.out_fd >= 0) {
      drain(t.out_fd, t.child.out);
      close(t.out_fd);
      t.out_fd = -1;
    }
    if (t.err_fd >= 0) {
      drain(t.err_fd, t.child.err);
      close(t.err_fd);
      t.err_fd = -1;
    }
  }
  std::vector<Child> out;
  out.reserve(children_.size());
  for (auto& t : children_) out.push_back(t.child);
  return out;
}

bool ProcessGroup::alive(pid_t pid) {
  return pid > 0 && (kill(pid, 0) == 0 || errno != ESRCH);
}

}  // namespace lamellar
