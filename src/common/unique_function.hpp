// A move-only type-erased callable, used for runtime tasks.
//
// std::function requires copyability, which forbids capturing move-only
// state (promises, buffers).  UniqueFunction is the minimal move-only
// equivalent with small-buffer optimization.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace lamellar {

template <typename Sig>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
  static constexpr std::size_t kSboSize = 48;
  static constexpr std::size_t kSboAlign = alignof(std::max_align_t);

  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*move_to)(void*, void*);  // move-construct dst from src, destroy src
    void (*destroy)(void*);
  };

  template <typename F>
  static constexpr bool fits_sbo =
      sizeof(F) <= kSboSize && alignof(F) <= kSboAlign &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<F*>(p))(std::forward<Args>(args)...);
    }
    static void move_to(void* dst, void* src) {
      ::new (dst) F(std::move(*static_cast<F*>(src)));
      static_cast<F*>(src)->~F();
    }
    static void destroy(void* p) { static_cast<F*>(p)->~F(); }
    static constexpr VTable vtable{&invoke, &move_to, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static R invoke(void* p, Args&&... args) {
      return (**static_cast<F**>(p))(std::forward<Args>(args)...);
    }
    static void move_to(void* dst, void* src) {
      *static_cast<F**>(dst) = *static_cast<F**>(src);
      *static_cast<F**>(src) = nullptr;
    }
    static void destroy(void* p) { delete *static_cast<F**>(p); }
    static constexpr VTable vtable{&invoke, &move_to, &destroy};
  };

 public:
  UniqueFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_sbo<D>) {
      ::new (storage()) D(std::forward<F>(f));
      vtable_ = &InlineOps<D>::vtable;
    } else {
      *static_cast<D**>(storage()) = new D(std::forward<F>(f));
      vtable_ = &HeapOps<D>::vtable;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  R operator()(Args... args) {
    return vtable_->invoke(storage(), std::forward<Args>(args)...);
  }

  explicit operator bool() const { return vtable_ != nullptr; }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage());
      vtable_ = nullptr;
    }
  }

 private:
  void move_from(UniqueFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->move_to(storage(), other.storage());
      other.vtable_ = nullptr;
    }
  }

  void* storage() { return &storage_; }

  alignas(kSboAlign) std::byte storage_[kSboSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace lamellar
