#include "common/error.hpp"

namespace lamellar {

void throw_bounds(const char* what, std::size_t index, std::size_t len) {
  throw BoundsError(std::string(what) + ": index " + std::to_string(index) +
                    " out of bounds for length " + std::to_string(len));
}

}  // namespace lamellar
