// Per-thread bump arena for transient planning/staging buffers
// (batched-op memory discipline, DESIGN.md §9).
//
// The batched array-op pipeline plans chunks, stages strided operand
// slices, and collects owner-side fetch results in memory that lives only
// for the duration of one dispatch (or one AM execution).  Backing those
// with std::vector costs a heap round-trip per call; the arena instead
// retains its high-water allocation per thread, so after warm-up a
// steady-state loop performs zero heap allocations — `grow_events()` counts
// the block allocations that did happen and feeds the `array.plan_allocs`
// counter that proves the claim.
//
// Usage is strictly scoped: open an ArenaFrame, allocate freely, and let
// the frame's destructor rewind the arena.  Frames nest (an AM executed
// while a dispatch is mid-flight allocates above the dispatch's watermark),
// and blocks above the current position never hold live data, so advancing
// into a previously grown block is always safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace lamellar {

class ScratchArena {
 public:
  static constexpr std::size_t kInitialBlockBytes = 64 * 1024;

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Raw allocation, aligned to `align` (a power of two).  The bytes are
  /// uninitialized and valid until the enclosing frame rewinds past them.
  void* alloc_bytes(std::size_t n, std::size_t align) {
    if (blocks_.empty()) grow(n + align);
    for (;;) {
      Block& b = blocks_[cur_];
      const std::size_t base =
          reinterpret_cast<std::size_t>(b.data.get()) + b.used;
      const std::size_t pad = (align - (base & (align - 1))) & (align - 1);
      if (b.used + pad + n <= b.cap) {
        void* p = b.data.get() + b.used + pad;
        b.used += pad + n;
        return p;
      }
      if (cur_ + 1 < blocks_.size()) {
        // Blocks above the bump position never hold live data (frames only
        // ever rewind below it), so re-entering one is a plain reset.
        ++cur_;
        blocks_[cur_].used = 0;
        continue;
      }
      grow(n + align);
      ++cur_;
      blocks_[cur_].used = 0;
    }
  }

  /// Typed span of `n` default-uninitialized elements.
  template <typename T>
  std::span<T> alloc_span(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    if (n == 0) return {};
    return {static_cast<T*>(alloc_bytes(n * sizeof(T), alignof(T))), n};
  }

  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };

  [[nodiscard]] Mark mark() const {
    if (blocks_.empty()) return {};
    return {cur_, blocks_[cur_].used};
  }

  void rewind(Mark m) {
    if (blocks_.empty()) return;
    cur_ = m.block;
    blocks_[cur_].used = m.offset;
  }

  /// Number of heap block allocations performed so far (monotone).  A flat
  /// value across a loop proves the loop ran allocation-free.
  [[nodiscard]] std::uint64_t grow_events() const { return grow_events_; }

  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.cap;
    return total;
  }

  /// The calling thread's arena.  Shared by every runtime component on the
  /// thread; safe because all use is frame-scoped and frames nest.
  static ScratchArena& local() {
    static thread_local ScratchArena arena;
    return arena;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  void grow(std::size_t need) {
    std::size_t cap = blocks_.empty() ? kInitialBlockBytes
                                      : blocks_.back().cap * 2;
    if (cap < need) cap = need;
    Block b;
    b.data = std::make_unique<std::byte[]>(cap);
    b.cap = cap;
    blocks_.push_back(std::move(b));
    ++grow_events_;
    if (blocks_.size() == 1) cur_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;
  std::uint64_t grow_events_ = 0;
};

/// RAII frame: everything allocated after construction is reclaimed (made
/// reusable, not freed) on destruction.
class ArenaFrame {
 public:
  explicit ArenaFrame(ScratchArena& arena = ScratchArena::local())
      : arena_(arena), mark_(arena.mark()) {}
  ~ArenaFrame() { arena_.rewind(mark_); }
  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

  [[nodiscard]] ScratchArena& arena() { return arena_; }

 private:
  ScratchArena& arena_;
  ScratchArena::Mark mark_;
};

}  // namespace lamellar
