// Fork-based process lifecycle for the process-separated lamellae: spawn one
// OS process per PE, capture its stdout/stderr through pipes, join with a
// bounded wait, and reap with crash classification (exit code vs. signal).
//
// The children this runs are real address-space-separated PEs — the whole
// point of the MmapLamellae backend — so the parent must stay robust to a
// child dying at any instant: wait_all() drains pipes while reaping (a child
// blocked on a full pipe is indistinguishable from a hung one otherwise),
// kills stragglers after the deadline, and reports per-child outcomes
// instead of hanging on the first casualty.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lamellar {

class ProcessGroup {
 public:
  /// Outcome of one child, filled in by wait_all().
  struct Child {
    pid_t pid = -1;
    std::size_t index = 0;   ///< spawn order (the PE id for lamellae use)
    bool reaped = false;
    bool exited = false;     ///< terminated via exit(); `code` is valid
    int code = -1;           ///< exit code when `exited`
    int signal = 0;          ///< terminating signal when !exited (0 if none)
    bool killed_on_timeout = false;
    std::string out;         ///< captured stdout bytes
    std::string err;         ///< captured stderr bytes

    [[nodiscard]] bool ok() const { return exited && code == 0; }
    /// "exited with code 1" / "killed by signal 9 (SIGKILL)" ...
    [[nodiscard]] std::string describe() const;
  };

  ProcessGroup() = default;
  ~ProcessGroup();
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  /// Fork a child that runs `body` and _exit()s with its return value.  An
  /// exception escaping `body` prints to the child's stderr and exits 1.
  /// _exit (not exit) keeps the forked copy of the parent's state — gtest,
  /// atexit hooks, static destructors — from running twice.  stdout/stderr
  /// are redirected into pipes the parent drains during wait_all().
  /// Returns the spawn index.
  std::size_t spawn(const std::function<int()>& body);

  /// Reap every child, draining output pipes while waiting.  Children still
  /// alive after `timeout_ms` (0 = wait forever) are SIGKILLed and marked
  /// `killed_on_timeout`.  `on_reaped`, when set, runs in the parent right
  /// after each child is reaped (used to mark dead PEs in the shared
  /// segment so surviving PEs' barriers diagnose them promptly).
  std::vector<Child> wait_all(
      std::uint64_t timeout_ms = 0,
      const std::function<void(const Child&)>& on_reaped = nullptr);

  [[nodiscard]] std::size_t size() const { return children_.size(); }
  [[nodiscard]] pid_t pid_of(std::size_t index) const {
    return children_[index].child.pid;
  }

  /// True when the process exists (zombies count as existing until reaped).
  static bool alive(pid_t pid);

 private:
  struct Tracked {
    Child child;
    int out_fd = -1;
    int err_fd = -1;
  };
  std::vector<Tracked> children_;
  bool waited_ = false;
};

}  // namespace lamellar
