// Deterministic pseudo-random number generation.
//
// All randomness in the runtime, kernels, and simulator flows through these
// generators so every test, example, and benchmark is reproducible.  The
// generators are SplitMix64 (seeding) and xoshiro256** (bulk generation),
// matching common practice in HPC benchmark suites.
#pragma once

#include <cstdint>

namespace lamellar {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n) using Lemire's multiply-shift reduction.
  std::uint64_t uniform(std::uint64_t n) {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Stable per-(seed, pe) stream so SPMD ranks draw independent sequences.
inline Xoshiro256 pe_rng(std::uint64_t seed, std::size_t pe) {
  SplitMix64 sm(seed ^ (0x51a7c0de00000000ULL + pe * 0x9e3779b97f4a7c15ULL));
  return Xoshiro256(sm.next());
}

}  // namespace lamellar
