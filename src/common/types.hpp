// Basic shared type aliases used across the lamellar runtime.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lamellar {

/// Identifier of a processing element (PE) within a world or team.
using pe_id = std::size_t;

/// A global element index into a distributed array.
using global_index = std::size_t;

/// Virtual-time nanoseconds used by the fabric performance model.
using sim_nanos = std::uint64_t;

/// Identifier of a registered active-message handler.
using am_type_id = std::uint32_t;

/// Identifier of an outstanding request awaiting a reply.
using request_id = std::uint64_t;

/// Identifier of a distributed object (Darc) within a world.
using darc_id = std::uint64_t;

inline constexpr std::size_t kCacheLine = 64;

/// Integer ceiling division; `b` must be nonzero.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Round `v` up to a multiple of `align` (power of two).
constexpr std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace lamellar
