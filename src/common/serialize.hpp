// Binary serialization used by the active-message layer.
//
// This is the C++ stand-in for the serde/bincode machinery the paper's Rust
// runtime uses.  The format is deterministic little-endian (we assume a
// little-endian host, as the paper's cluster is x86): scalars are raw bytes,
// containers are a u64 length followed by elements, user types implement
//
//   template <class Archive> void serialize(Archive& ar) { ar(a, b, c); }
//
// which is invoked symmetrically for writing and reading — the analogue of
// the `#[AmData]` derive in the paper (Sec. III-C).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/scratch_arena.hpp"

namespace lamellar {

class Serializer;
class Deserializer;

namespace detail {

template <typename T, typename Ar>
concept HasSerializeMember = requires(T& t, Ar& ar) { t.serialize(ar); };

template <typename T>
struct is_std_vector : std::false_type {};
template <typename T, typename A>
struct is_std_vector<std::vector<T, A>> : std::true_type {};

template <typename T>
struct is_std_array : std::false_type {};
template <typename T, std::size_t N>
struct is_std_array<std::array<T, N>> : std::true_type {};

template <typename T>
struct is_std_pair : std::false_type {};
template <typename A, typename B>
struct is_std_pair<std::pair<A, B>> : std::true_type {};

template <typename T>
struct is_std_tuple : std::false_type {};
template <typename... Ts>
struct is_std_tuple<std::tuple<Ts...>> : std::true_type {};

template <typename T>
struct is_std_optional : std::false_type {};
template <typename T>
struct is_std_optional<std::optional<T>> : std::true_type {};

}  // namespace detail

/// Writes values into a ByteBuffer.
class Serializer {
 public:
  explicit Serializer(ByteBuffer& buf) : buf_(buf) {}

  static constexpr bool is_writing = true;

  template <typename... Ts>
  void operator()(const Ts&... vs) {
    (put(vs), ...);
  }

  template <typename T>
  void put(const T& v) {
    if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
      buf_.write_pod(v);
    } else if constexpr (std::is_same_v<T, std::string>) {
      put_len(v.size());
      buf_.write(v.data(), v.size());
    } else if constexpr (detail::is_std_vector<T>::value) {
      using E = typename T::value_type;
      put_len(v.size());
      if constexpr (std::is_trivially_copyable_v<E>) {
        buf_.write(v.data(), v.size() * sizeof(E));
      } else {
        for (const auto& e : v) put(e);
      }
    } else if constexpr (detail::is_std_array<T>::value) {
      for (const auto& e : v) put(e);
    } else if constexpr (detail::is_std_pair<T>::value) {
      put(v.first);
      put(v.second);
    } else if constexpr (detail::is_std_tuple<T>::value) {
      std::apply([this](const auto&... es) { (put(es), ...); }, v);
    } else if constexpr (detail::is_std_optional<T>::value) {
      put(static_cast<std::uint8_t>(v.has_value()));
      if (v.has_value()) put(*v);
    } else if constexpr (detail::HasSerializeMember<T, Serializer>) {
      // serialize() is symmetric; writing never mutates, but the member is
      // declared non-const so one definition serves both directions.
      const_cast<T&>(v).serialize(*this);
    } else {
      static_assert(detail::HasSerializeMember<T, Serializer>,
                    "type is not serializable: add a serialize(Archive&) "
                    "member or use a supported container/scalar");
    }
  }

  /// Span-of-elements wire form: u64 count, u8 pad length, pad zeros, then
  /// the raw element bytes.  The pad places the first element at an
  /// alignof(T)-aligned offset within the buffer, so a reader over a
  /// 16-aligned buffer base can borrow the bytes as a `span<const T>`
  /// without copying (see Deserializer::get_elems).
  template <typename T>
  void put_elems(std::span<const T> elems) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_len(elems.size());
    put_align_pad<T>();
    buf_.write(elems.data(), elems.size() * sizeof(T));
  }

  /// Same wire form as put_elems, but elements are produced one at a time by
  /// `fn(j)` — used to write strided/gathered operand slices straight into
  /// the transport buffer without staging a contiguous copy first.
  template <typename T, typename Fn>
  void put_elems_gather(std::size_t n, Fn&& fn) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_len(n);
    put_align_pad<T>();
    for (std::size_t j = 0; j < n; ++j) {
      const T v = fn(j);
      buf_.write_pod(v);
    }
  }

  ByteBuffer& buffer() { return buf_; }

 private:
  template <typename T>
  void put_align_pad() {
    constexpr std::size_t a = alignof(T);
    static_assert(a <= 16, "put_elems: element alignment exceeds the "
                           "buffer base alignment guarantee");
    // First data byte lands at buf_.size() + 1 (after the pad-length byte).
    const std::size_t off = buf_.size() + 1;
    const auto pad = static_cast<std::uint8_t>((a - (off % a)) % a);
    buf_.write_pod(pad);
    static constexpr std::byte kZeros[16]{};
    buf_.write(kZeros, pad);
  }

  void put_len(std::size_t n) { buf_.write_pod(static_cast<std::uint64_t>(n)); }
  ByteBuffer& buf_;
};

/// Reads values in the order they were written.
///
/// Operates over a borrowed span with its own cursor, so receive-side
/// dispatch deserializes straight out of an aggregated inbox buffer with no
/// intermediate copy; the span must outlive the Deserializer.  A ByteBuffer
/// can also be read (starting at its read cursor) without being consumed.
class Deserializer {
 public:
  explicit Deserializer(std::span<const std::byte> data) : data_(data) {}
  explicit Deserializer(const ByteBuffer& buf)
      : data_(buf.as_span().subspan(buf.read_pos())) {}

  static constexpr bool is_writing = false;

  template <typename... Ts>
  void operator()(Ts&... vs) {
    (get(vs), ...);
  }

  template <typename T>
  void get(T& v) {
    if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
      v = read_pod<T>();
    } else if constexpr (std::is_same_v<T, std::string>) {
      const std::size_t n = get_len();
      v.resize(n);
      read(v.data(), n);
    } else if constexpr (detail::is_std_vector<T>::value) {
      using E = typename T::value_type;
      const std::size_t n = get_len();
      v.resize(n);
      if constexpr (std::is_trivially_copyable_v<E>) {
        read(v.data(), n * sizeof(E));
      } else {
        for (auto& e : v) get(e);
      }
    } else if constexpr (detail::is_std_array<T>::value) {
      for (auto& e : v) get(e);
    } else if constexpr (detail::is_std_pair<T>::value) {
      get(v.first);
      get(v.second);
    } else if constexpr (detail::is_std_tuple<T>::value) {
      std::apply([this](auto&... es) { (get(es), ...); }, v);
    } else if constexpr (detail::is_std_optional<T>::value) {
      std::uint8_t has = 0;
      get(has);
      if (has) {
        typename T::value_type inner{};
        get(inner);
        v = std::move(inner);
      } else {
        v.reset();
      }
    } else if constexpr (detail::HasSerializeMember<T, Deserializer>) {
      v.serialize(*this);
    } else {
      static_assert(detail::HasSerializeMember<T, Deserializer>,
                    "type is not deserializable");
    }
  }

  template <typename T>
  T take() {
    T v{};
    get(v);
    return v;
  }

  /// Borrow a span of elements written by Serializer::put_elems /
  /// put_elems_gather.  The returned span aliases the input buffer (which
  /// must outlive it — the AM layer holds the inbox buffer across deferred
  /// execution for exactly this reason).  If the buffer base is not aligned
  /// (possible for views not rooted at a heap vector base), the elements are
  /// copied into the calling thread's ScratchArena instead; the copy lives
  /// until the enclosing ArenaFrame rewinds.
  template <typename T>
  std::span<const T> get_elems() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t n = get_len();
    const auto pad = read_pod<std::uint8_t>();
    if (pos_ + pad > data_.size()) {
      throw DeserializeError("Deserializer: pad past end of input");
    }
    pos_ += pad;
    if (n == 0) return {};
    const std::size_t bytes = n * sizeof(T);
    if (pos_ + bytes > data_.size()) {
      throw DeserializeError("Deserializer: elems past end of input");
    }
    const std::byte* p = data_.data() + pos_;
    pos_ += bytes;
    if (reinterpret_cast<std::uintptr_t>(p) % alignof(T) != 0) {
      auto staged = ScratchArena::local().alloc_span<T>(n);
      std::memcpy(staged.data(), p, bytes);
      return staged;
    }
    return {reinterpret_cast<const T*>(p), n};
  }

  /// Copy `n` raw bytes at the cursor into `dst`, advancing the cursor.
  void read(void* dst, std::size_t n) {
    if (n == 0) return;  // dst may be null (e.g. empty vector's data())
    if (pos_ + n > data_.size()) {
      throw DeserializeError("Deserializer: read past end of input");
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read(&v, sizeof(T));
    return v;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::size_t get_len() {
    return static_cast<std::size_t>(read_pod<std::uint64_t>());
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Serialize a single value into a fresh buffer.
template <typename T>
ByteBuffer serialize_to_buffer(const T& v) {
  ByteBuffer buf;
  Serializer ser(buf);
  ser.put(v);
  return buf;
}

/// Deserialize a single value that fills the whole buffer.
template <typename T>
T deserialize_from_buffer(ByteBuffer& buf) {
  Deserializer de(buf);
  return de.take<T>();
}

/// True when T can round-trip through the archives (best-effort check).
template <typename T>
concept Serializable =
    std::is_arithmetic_v<T> || std::is_enum_v<T> ||
    detail::HasSerializeMember<T, Serializer> ||
    std::is_same_v<T, std::string> || detail::is_std_vector<T>::value ||
    detail::is_std_array<T>::value || detail::is_std_pair<T>::value ||
    detail::is_std_tuple<T>::value || detail::is_std_optional<T>::value;

}  // namespace lamellar
