// A per-PE free list of ByteBuffers (hot-path memory discipline).
//
// Swapped-out aggregation lane buffers and drained inbox buffers are
// returned here instead of being destroyed, so steady-state AM traffic
// performs no std::vector growth: every acquire() after warm-up hands back
// a previously grown allocation.  The pool is bounded by buffer count so an
// imbalanced phase (e.g. all-to-one) cannot pin unbounded memory.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"

namespace lamellar {

class BufferPool {
 public:
  /// `max_buffers` bounds how many recycled buffers are retained; releases
  /// beyond the bound free their storage normally.
  explicit BufferPool(std::size_t max_buffers = 64)
      : max_buffers_(max_buffers) {}

  /// Pop a recycled buffer (reset, capacity intact), or a fresh one with
  /// `reserve_hint` bytes reserved on pool miss.  Returns true in `*hit`
  /// (when non-null) iff the buffer came from the free list.
  ByteBuffer acquire(std::size_t reserve_hint, bool* hit = nullptr) {
    {
      std::lock_guard lock(mu_);
      if (!free_.empty()) {
        ByteBuffer buf = std::move(free_.back());
        free_.pop_back();
        if (hit != nullptr) *hit = true;
        return buf;
      }
    }
    if (hit != nullptr) *hit = false;
    return ByteBuffer{reserve_hint};
  }

  /// Return a drained buffer for reuse.  Returns false when the pool is
  /// full and the buffer was dropped instead.
  bool release(ByteBuffer buf) {
    buf.reset();
    std::lock_guard lock(mu_);
    if (free_.size() >= max_buffers_) return false;
    free_.push_back(std::move(buf));
    return true;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return free_.size();
  }

  /// Retention bound: size() never exceeds this (pool-accounting invariant
  /// checked by the stress harness).
  [[nodiscard]] std::size_t max_buffers() const { return max_buffers_; }

 private:
  std::size_t max_buffers_;
  mutable std::mutex mu_;
  std::vector<ByteBuffer> free_;
};

}  // namespace lamellar
