// A simple mutex-guarded multi-producer multi-consumer queue.
//
// Used for scheduler injection queues and command-queue staging.  A lock-free
// design is unnecessary here: contention is bounded by PE/thread counts and
// the critical sections are a few pointer moves.
//
// Concurrency invariant (audited under TSan): every access to items_ holds
// mu_, so push/try_pop/drain_into/empty/size are linearizable and items are
// handed between threads with full mutex ordering — a consumer that pops a
// pointer observes every write the producer made before push().  Note that
// empty()/size() answers are stale the moment the lock is released; callers
// must not treat them as claims.
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lamellar {

template <typename T>
class MpmcQueue {
 public:
  void push(T v) {
    std::lock_guard lock(mu_);
    items_.push_back(std::move(v));
  }

  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  /// Drain everything currently queued into `out` (appended).  Returns the
  /// number of items drained.
  template <typename Container>
  std::size_t drain_into(Container& out) {
    std::lock_guard lock(mu_);
    const std::size_t n = items_.size();
    for (auto& v : items_) out.push_back(std::move(v));
    items_.clear();
    return n;
  }

  [[nodiscard]] bool empty() const {
    std::lock_guard lock(mu_);
    return items_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace lamellar
