// A growable byte buffer with explicit read/write cursors.
//
// ByteBuffer is the unit of exchange between the serialization layer, the
// active-message aggregation buffers, and the lamellae command queues.  It is
// deliberately simple: contiguous storage, append-only writes, sequential
// reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace lamellar {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::size_t reserve) { data_.reserve(reserve); }
  explicit ByteBuffer(std::vector<std::byte> bytes) : data_(std::move(bytes)) {}

  /// Append raw bytes to the end of the buffer.
  void write(const void* src, std::size_t n) {
    if (n == 0) return;  // src may be null (e.g. empty vector's data())
    const auto* p = static_cast<const std::byte*>(src);
    data_.insert(data_.end(), p, p + n);
  }

  /// Append a trivially-copyable value.
  template <typename T>
  void write_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(&v, sizeof(T));
  }

  /// Overwrite sizeof(T) bytes at absolute offset `pos` (which must already
  /// be written).  Used to patch record headers after in-place serialization.
  template <typename T>
  void patch_pod(std::size_t pos, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos + sizeof(T) > data_.size()) {
      throw DeserializeError("ByteBuffer::patch_pod past end of buffer");
    }
    std::memcpy(data_.data() + pos, &v, sizeof(T));
  }

  /// Copy `n` bytes from the read cursor into `dst`, advancing the cursor.
  void read(void* dst, std::size_t n) {
    if (n == 0) return;  // dst may be null (e.g. empty vector's data())
    if (read_pos_ + n > data_.size()) {
      throw DeserializeError("ByteBuffer::read past end of buffer");
    }
    std::memcpy(dst, data_.data() + read_pos_, n);
    read_pos_ += n;
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read(&v, sizeof(T));
    return v;
  }

  /// A view of `n` bytes at the read cursor, advancing the cursor.  The view
  /// is invalidated by any subsequent write.
  std::span<const std::byte> read_view(std::size_t n) {
    if (read_pos_ + n > data_.size()) {
      throw DeserializeError("ByteBuffer::read_view past end of buffer");
    }
    std::span<const std::byte> v{data_.data() + read_pos_, n};
    read_pos_ += n;
    return v;
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - read_pos_;
  }
  [[nodiscard]] std::size_t read_pos() const { return read_pos_; }
  void seek(std::size_t pos) {
    if (pos > data_.size()) throw DeserializeError("ByteBuffer::seek past end");
    read_pos_ = pos;
  }

  [[nodiscard]] const std::byte* data() const { return data_.data(); }
  [[nodiscard]] std::byte* data() { return data_.data(); }
  [[nodiscard]] std::span<const std::byte> as_span() const { return data_; }

  void clear() {
    data_.clear();
    read_pos_ = 0;
  }

  /// Reset-and-reuse: drop contents and cursors but keep the allocation, so
  /// a pooled buffer can be refilled without touching the heap.
  void reset() { clear(); }

  /// Shrink to `n` bytes (rolls back a partially written record).
  void truncate(std::size_t n) {
    if (n > data_.size()) throw DeserializeError("ByteBuffer::truncate grows");
    data_.resize(n);
    if (read_pos_ > n) read_pos_ = n;
  }

  void reserve(std::size_t n) { data_.reserve(n); }
  [[nodiscard]] std::size_t capacity() const { return data_.capacity(); }

  std::vector<std::byte> take() {
    read_pos_ = 0;
    return std::move(data_);
  }

 private:
  std::vector<std::byte> data_;
  std::size_t read_pos_ = 0;
};

}  // namespace lamellar
