// The BALE Randperm kernel (paper Sec. IV-B3): build a distributed array
// holding a random permutation of 0..N-1 with the "dart throwing" algorithm
// (Gibbons/Matias/Ramachandran): darts (the values) are thrown at random
// slots of a 2N target array; a dart sticks in an empty slot (compare-
// exchange) and is rethrown otherwise; the permutation is the target read in
// order, skipping empties.
//
// Variants (paper Fig. 5):
//  * kArrayDarts — AtomicArray + batch_compare_exchange + collect;
//  * kAmDart     — manual AM aggregation of darts and of throw results;
//  * kAmDartOpt  — failed darts retry on the owner PE (less communication;
//                  relaxes exact uniformity, as the paper notes);
//  * kAmPush     — locally shuffled darts pushed to the end of a random
//                  PE's segment (throws never fail; minimal communication);
//  * kExstack    — the BALE bulk-synchronous baseline.
#pragma once

#include "bale/common.hpp"

namespace lamellar::bale {

enum class RandpermImpl {
  kArrayDarts,
  kAmDart,
  kAmDartOpt,
  kAmPush,
  kExstack,
};

const char* randperm_impl_name(RandpermImpl impl);

struct RandpermParams {
  std::size_t perm_per_pe = 10'000;  ///< paper: 1M per core (scaled)
  double target_factor = 2.0;       ///< paper: target 2x the permutation
  std::size_t agg_limit = 10'000;
  std::uint64_t seed = 44;
};

KernelResult randperm_kernel(World& world, RandpermImpl impl,
                             const RandpermParams& params);

}  // namespace lamellar::bale
