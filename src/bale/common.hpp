// Shared plumbing for the BALE kernel implementations (paper Sec. IV-B):
// backend selection, timing in virtual nanoseconds, and small collectives
// used for verification.
#pragma once

#include <cstdint>
#include <string>

#include "core/memregion/shared_region.hpp"
#include "core/world/world.hpp"

namespace lamellar::bale {

/// Aggregation backend used by a kernel run — one per curve in Figs. 3-5.
enum class Backend {
  kLamellarAm,     ///< hand-aggregated lamellar Active Messages
  kLamellarArray,  ///< LamellarArray batch operations (Atomic/ReadOnly)
  kExstack,        ///< BALE Exstack (bulk-synchronous)
  kExstack2,       ///< BALE Exstack2 (asynchronous)
  kConveyor,       ///< BALE Conveyors (two-hop)
  kSelector,       ///< HClib Selectors (actors)
  kChapel,         ///< Chapel automatic aggregation
};

const char* backend_name(Backend b);

struct KernelResult {
  std::uint64_t ops = 0;          ///< operations this PE issued
  sim_nanos elapsed_ns = 0;       ///< virtual time of the timed section
  bool verified = false;          ///< invariant check result (on PE 0)
  double rate_mops = 0.0;         ///< ops/us aggregate, filled by callers
};

/// Sum one u64 per PE (via remote atomics on a symmetric slot + barrier);
/// every PE returns the total.  Collective.
std::uint64_t global_sum_u64(World& world, std::uint64_t local);

}  // namespace lamellar::bale
