// The BALE IndexGather kernel (paper Sec. IV-B2): every PE reads
// `requests_per_pe` uniformly random elements of a distributed table into a
// local target array — harder than Histogram because the runtime must both
// carry the requests and return the values.
// Verification: target[i] == table[rand_idx[i]] for all i (table holds its
// global index).
#pragma once

#include "bale/common.hpp"

namespace lamellar::bale {

struct IndexGatherParams {
  std::size_t table_per_pe = 1'000;
  std::size_t requests_per_pe = 100'000;
  std::size_t agg_limit = 10'000;
  std::uint64_t seed = 43;
};

KernelResult indexgather_kernel(World& world, Backend backend,
                                const IndexGatherParams& params);

}  // namespace lamellar::bale
