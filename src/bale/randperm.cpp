#include "bale/randperm.hpp"

#include <mutex>

#include "baselines/exstack/exstack.hpp"
#include "common/rng.hpp"
#include "core/array/arrays.hpp"

namespace lamellar::bale {

inline constexpr std::uint64_t kEmptySlot = ~0ULL;

namespace {

/// Throw a batch of darts at given local slots; returns the values that
/// bounced (slot occupied).
struct ThrowAm {
  Darc<ArrayState<std::uint64_t>> target;
  std::vector<std::uint64_t> slots;   ///< local slot per dart
  std::vector<std::uint64_t> values;  ///< dart values

  template <class Ar>
  void serialize(Ar& ar) {
    ar(target, slots, values);
  }

  std::vector<std::uint64_t> exec(AmContext&) {
    auto slab = target->local_slab();
    std::vector<std::uint64_t> failed;
    for (std::size_t j = 0; j < slots.size(); ++j) {
      std::atomic_ref<std::uint64_t> ref(slab[slots[j]]);
      std::uint64_t expected = kEmptySlot;
      if (!ref.compare_exchange_strong(expected, values[j],
                                       std::memory_order_acq_rel)) {
        failed.push_back(values[j]);
      }
    }
    target->world->lamellae().charge(
        target->world->lamellae().params().atomic_store_ns *
        static_cast<double>(slots.size()));
    return failed;
  }
};

/// AmDartOpt: bounced darts retry at random slots *on this PE* before
/// reporting failure (paper: "randomly select a new location on the current
/// PE (unless all locations on this PE are filled)").
struct ThrowOptAm {
  Darc<ArrayState<std::uint64_t>> target;
  std::vector<std::uint64_t> slots;
  std::vector<std::uint64_t> values;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(target, slots, values);
  }

  std::vector<std::uint64_t> exec(AmContext&) {
    ArrayState<std::uint64_t>& st = *target;
    auto slab = st.local_slab();
    const std::size_t local_len = st.map.local_len(st.my_rank());
    std::vector<std::uint64_t> failed;
    for (std::size_t j = 0; j < slots.size(); ++j) {
      if (try_stick(slab, slots[j], values[j])) continue;
      // Local retries, seeded by the dart for determinism.
      SplitMix64 sm(values[j] * 0x9e3779b97f4a7c15ULL + 1);
      bool stuck = false;
      for (int attempt = 0; attempt < 32 && !stuck; ++attempt) {
        stuck = try_stick(slab, sm.next() % local_len, values[j]);
      }
      if (stuck) continue;
      // Linear sweep: stick anywhere local, or report failure (PE full).
      for (std::size_t s = 0; s < local_len && !stuck; ++s) {
        stuck = try_stick(slab, s, values[j]);
      }
      if (!stuck) failed.push_back(values[j]);
    }
    st.world->lamellae().charge(
        st.world->lamellae().params().atomic_store_ns *
        static_cast<double>(slots.size()));
    return failed;
  }

  static bool try_stick(std::span<std::uint64_t> slab, std::uint64_t slot,
                        std::uint64_t value) {
    std::atomic_ref<std::uint64_t> ref(slab[slot]);
    std::uint64_t expected = kEmptySlot;
    return ref.compare_exchange_strong(expected, value,
                                       std::memory_order_acq_rel);
  }
};

/// AmPush target: a growable per-PE segment appended under a mutex.
struct PushBox {
  std::mutex mu;
  std::vector<std::uint64_t> values;
  PushBox() = default;
  PushBox(PushBox&& o) noexcept : values(std::move(o.values)) {}
};

struct PushAm {
  Darc<PushBox> box;
  std::vector<std::uint64_t> values;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(box, values);
  }

  void exec(AmContext& ctx) {
    ctx.world().lamellae().charge(2.0 *
                                  static_cast<double>(values.size()));
    std::lock_guard lock(box->mu);
    box->values.insert(box->values.end(), values.begin(), values.end());
  }
};

}  // namespace
}  // namespace lamellar::bale

LAMELLAR_REGISTER_AM(lamellar::bale::ThrowAm);
LAMELLAR_REGISTER_AM(lamellar::bale::ThrowOptAm);
LAMELLAR_REGISTER_AM(lamellar::bale::PushAm);

namespace lamellar::bale {
namespace {

/// Verify a permutation of 0..N-1 distributed as per-PE chunks: mark each
/// value once and check every mark is exactly 1.
bool verify_permutation(World& world, std::span<const std::uint64_t> my_part,
                        std::uint64_t n_total) {
  auto marks =
      AtomicArray<std::uint64_t>::create(world, n_total, Distribution::kBlock);
  marks.fill(0);
  std::vector<global_index> idxs(my_part.begin(), my_part.end());
  world.block_on(marks.batch_add(idxs, 1));
  world.barrier();
  const auto total = world.block_on(marks.sum());
  const auto mx = world.block_on(marks.max());
  const auto mn = world.block_on(marks.min());
  world.barrier();
  return total == n_total && mx == 1 && mn == 1;
}

/// Exclusive prefix sum of per-PE counts (returns this PE's offset and the
/// grand total).  Collective.
std::pair<std::uint64_t, std::uint64_t> exclusive_scan(World& world,
                                                       std::uint64_t count) {
  auto region =
      SharedMemoryRegion<std::uint64_t>::create(world, world.num_pes());
  for (pe_id pe = 0; pe < world.num_pes(); ++pe) {
    region.unsafe_put(pe, world.my_pe(),
                      std::span<const std::uint64_t>(&count, 1));
  }
  world.barrier();
  auto counts = region.unsafe_local_slice();
  std::uint64_t before = 0, total = 0;
  for (pe_id pe = 0; pe < world.num_pes(); ++pe) {
    if (pe < world.my_pe()) before += counts[pe];
    total += counts[pe];
  }
  world.barrier();
  return {before, total};
}

struct DartPlan {
  std::vector<std::vector<std::uint64_t>> slots;   // per dst rank
  std::vector<std::vector<std::uint64_t>> values;  // per dst rank
};

/// Generic AM dart loop shared by kAmDart / kAmDartOpt.
template <typename Am>
std::vector<std::uint64_t> am_dart_loop(World& world,
                                        AtomicArray<std::uint64_t>& target,
                                        const RandpermParams& p,
                                        std::uint64_t target_len,
                                        std::uint64_t per_pe_cap) {
  auto state = target.state_darc();
  const std::uint64_t base = world.my_pe() * p.perm_per_pe;
  std::vector<std::uint64_t> pending(p.perm_per_pe);
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = base + i;

  auto rng = pe_rng(p.seed, world.my_pe());
  std::mutex requeue_mu;
  std::vector<std::uint64_t> requeue;
  std::atomic<std::uint64_t> stuck{0};

  while (stuck.load(std::memory_order_acquire) < p.perm_per_pe) {
    if (pending.empty()) {
      {
        std::lock_guard lock(requeue_mu);
        pending.swap(requeue);
      }
      if (pending.empty()) {
        if (!world.pool().try_run_one()) world.engine().poll_inbox();
        continue;
      }
    }
    DartPlan plan;
    plan.slots.resize(world.num_pes());
    plan.values.resize(world.num_pes());
    for (auto value : pending) {
      const std::uint64_t slot = rng.uniform(target_len);
      const pe_id dst = slot / per_pe_cap;
      plan.slots[dst].push_back(slot % per_pe_cap);
      plan.values[dst].push_back(value);
    }
    pending.clear();
    for (pe_id dst = 0; dst < world.num_pes(); ++dst) {
      auto& slots = plan.slots[dst];
      auto& values = plan.values[dst];
      for (std::size_t off = 0; off < slots.size(); off += p.agg_limit) {
        const std::size_t n = std::min(p.agg_limit, slots.size() - off);
        Am am;
        am.target = state;
        am.slots.assign(slots.begin() + off, slots.begin() + off + n);
        am.values.assign(values.begin() + off, values.begin() + off + n);
        world.engine().send_cb(
            dst, std::move(am),
            [&stuck, &requeue_mu, &requeue,
             n](std::vector<std::uint64_t> failed) {
              stuck.fetch_add(n - failed.size(), std::memory_order_acq_rel);
              if (!failed.empty()) {
                std::lock_guard lock(requeue_mu);
                requeue.insert(requeue.end(), failed.begin(), failed.end());
              }
            });
      }
    }
  }
  world.wait_all();
  world.barrier();

  // Collect: my permutation chunk = my target slots in order, non-empty.
  std::vector<std::uint64_t> mine;
  {
    auto slab = target.state_darc()->local_slab();
    const std::size_t local_len =
        target.state_darc()->map.local_len(world.my_pe());
    for (std::size_t i = 0; i < local_len; ++i) {
      if (slab[i] != kEmptySlot) mine.push_back(slab[i]);
    }
  }
  return mine;
}

KernelResult randperm_array_darts(World& world, const RandpermParams& p) {
  const std::uint64_t n_total = p.perm_per_pe * world.num_pes();
  const auto target_len = static_cast<std::uint64_t>(
      static_cast<double>(n_total) * p.target_factor);
  auto target =
      AtomicArray<std::uint64_t>::create(world, target_len,
                                         Distribution::kBlock);
  target.fill(kEmptySlot);
  auto rng = pe_rng(p.seed, world.my_pe());

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  const std::uint64_t base = world.my_pe() * p.perm_per_pe;
  std::vector<std::uint64_t> pending(p.perm_per_pe);
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = base + i;

  while (!pending.empty()) {
    std::vector<global_index> slots(pending.size());
    for (auto& s : slots) s = rng.uniform(target_len);
    // Paper: "throws darts with batch_compare_exchange".
    auto results = world.block_on(
        target.batch_compare_exchange(slots, kEmptySlot, pending));
    std::vector<std::uint64_t> next;
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (!results[j].success) next.push_back(pending[j]);
    }
    pending = std::move(next);
  }
  world.wait_all();
  world.barrier();

  // Paper: "moves results to the final permutation with the Collect
  // iterator": filter local non-empty slots, scan, write into a fresh array.
  auto mine = target.local_iter()
                  .filter([](std::uint64_t v) { return v != kEmptySlot; })
                  .collect_vec_local();
  auto [offset, total] = exclusive_scan(world, mine.size());
  auto perm = UnsafeArray<std::uint64_t>::create(world, n_total,
                                                 Distribution::kBlock);
  world.block_on(perm.put(offset, mine));
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  KernelResult r;
  r.ops = p.perm_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = total == n_total && verify_permutation(world, mine, n_total);
  return r;
}

template <typename Am>
KernelResult randperm_am(World& world, const RandpermParams& p) {
  const std::uint64_t n_total = p.perm_per_pe * world.num_pes();
  const auto target_len = static_cast<std::uint64_t>(
      static_cast<double>(n_total) * p.target_factor);
  auto target =
      AtomicArray<std::uint64_t>::create(world, target_len,
                                         Distribution::kBlock);
  target.fill(kEmptySlot);
  const std::uint64_t per_pe_cap = target.state_darc()->map.per_rank_capacity();

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  auto mine = am_dart_loop<Am>(world, target, p, target_len, per_pe_cap);
  const sim_nanos t1 = world.time_ns();

  KernelResult r;
  r.ops = p.perm_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = verify_permutation(world, mine, n_total);
  return r;
}

KernelResult randperm_am_push(World& world, const RandpermParams& p) {
  const std::uint64_t n_total = p.perm_per_pe * world.num_pes();
  auto box = world.new_darc(PushBox{});
  auto rng = pe_rng(p.seed, world.my_pe());

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  // Shuffle local darts (Fisher-Yates), then push each to a random PE.
  const std::uint64_t base = world.my_pe() * p.perm_per_pe;
  std::vector<std::uint64_t> darts(p.perm_per_pe);
  for (std::size_t i = 0; i < darts.size(); ++i) darts[i] = base + i;
  for (std::size_t i = darts.size(); i > 1; --i) {
    std::swap(darts[i - 1], darts[rng.uniform(i)]);
  }
  std::vector<std::vector<std::uint64_t>> bufs(world.num_pes());
  for (auto value : darts) {
    const pe_id dst = rng.uniform(world.num_pes());
    auto& buf = bufs[dst];
    buf.push_back(value);
    if (buf.size() >= p.agg_limit) {
      world.engine().send_cb(dst, PushAm{box, std::move(buf)}, [](Unit) {});
      buf = {};
    }
  }
  for (pe_id dst = 0; dst < world.num_pes(); ++dst) {
    if (!bufs[dst].empty()) {
      world.engine().send_cb(dst, PushAm{box, std::move(bufs[dst])},
                             [](Unit) {});
    }
  }
  world.wait_all();
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  std::vector<std::uint64_t> mine;
  {
    std::lock_guard lock(box->mu);
    mine = box->values;
  }
  KernelResult r;
  r.ops = p.perm_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = verify_permutation(world, mine, n_total);
  return r;
}

KernelResult randperm_exstack(World& world, const RandpermParams& p) {
  const std::uint64_t n_total = p.perm_per_pe * world.num_pes();
  const auto target_len = static_cast<std::uint64_t>(
      static_cast<double>(n_total) * p.target_factor);
  const std::uint64_t per_pe_cap = ceil_div(target_len, world.num_pes());
  std::vector<std::uint64_t> local_target(per_pe_cap, kEmptySlot);
  auto rng = pe_rng(p.seed, world.my_pe());

  // Item: kind 0 = throw {slot, value}; kind 1 = bounce {value}.
  struct Msg {
    std::uint64_t kind;
    std::uint64_t slot;
    std::uint64_t value;
  };
  baselines::Exstack<Msg> ex(world, p.agg_limit);

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  const std::uint64_t base = world.my_pe() * p.perm_per_pe;
  std::vector<std::uint64_t> pending(p.perm_per_pe);
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = base + i;

  bool more = true;
  while (more) {
    // Throw what we can.
    while (!pending.empty()) {
      const std::uint64_t value = pending.back();
      const std::uint64_t slot = rng.uniform(target_len);
      const pe_id dst = slot / per_pe_cap;
      if (!ex.push(dst, Msg{0, slot % per_pe_cap, value})) break;
      pending.pop_back();
      world.lamellae().charge(3.0);
    }
    more = ex.proceed(pending.empty());
    while (auto msg = ex.pop()) {
      const auto [src, m] = *msg;
      if (m.kind == 0) {
        if (local_target[m.slot] == kEmptySlot) {
          local_target[m.slot] = m.value;
        } else if (!ex.push(src, Msg{1, 0, m.value})) {
          // Bounce buffer full: hold it locally for the next round.
          pending.push_back(m.value);  // we re-throw on the thrower's behalf
        }
      } else {
        pending.push_back(m.value);
      }
    }
  }
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  std::vector<std::uint64_t> mine;
  for (auto v : local_target) {
    if (v != kEmptySlot) mine.push_back(v);
  }
  KernelResult r;
  r.ops = p.perm_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = verify_permutation(world, mine, n_total);
  return r;
}

}  // namespace

const char* randperm_impl_name(RandpermImpl impl) {
  switch (impl) {
    case RandpermImpl::kArrayDarts:
      return "Array Darts";
    case RandpermImpl::kAmDart:
      return "AM Dart";
    case RandpermImpl::kAmDartOpt:
      return "AM Dart Opt";
    case RandpermImpl::kAmPush:
      return "AM Push";
    case RandpermImpl::kExstack:
      return "Exstack";
  }
  return "?";
}

KernelResult randperm_kernel(World& world, RandpermImpl impl,
                             const RandpermParams& p) {
  switch (impl) {
    case RandpermImpl::kArrayDarts:
      return randperm_array_darts(world, p);
    case RandpermImpl::kAmDart:
      return randperm_am<ThrowAm>(world, p);
    case RandpermImpl::kAmDartOpt:
      return randperm_am<ThrowOptAm>(world, p);
    case RandpermImpl::kAmPush:
      return randperm_am_push(world, p);
    case RandpermImpl::kExstack:
      return randperm_exstack(world, p);
  }
  throw Error("unknown randperm impl");
}

}  // namespace lamellar::bale
