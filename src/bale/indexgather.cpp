#include "bale/indexgather.hpp"

#include "baselines/chapel_agg/chapel_agg.hpp"
#include "baselines/conveyor/conveyor.hpp"
#include "baselines/exstack/exstack.hpp"
#include "baselines/exstack2/exstack2.hpp"
#include "baselines/selector/selector.hpp"
#include "common/rng.hpp"
#include "core/array/arrays.hpp"

namespace lamellar::bale {
namespace {

/// Request: "send me table[slot], tag the answer with pos".
struct IgReq {
  std::uint64_t slot;
  std::uint64_t pos;
};

/// Response: "the value for your request tagged pos".
struct IgRsp {
  std::uint64_t pos;
  std::uint64_t value;
};

/// Manual lamellar-AM gather: a batch of local slots is read owner-side and
/// the values return as the AM's result (paper's hand-aggregated variant).
struct IgGatherAm {
  Darc<ArrayState<std::uint64_t>> table;
  std::vector<std::uint64_t> locals;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(table, locals);
  }

  std::vector<std::uint64_t> exec(AmContext&) {
    auto slab = table->local_slab();
    std::vector<std::uint64_t> out;
    out.reserve(locals.size());
    for (auto idx : locals) out.push_back(slab[idx]);
    return out;
  }
};

}  // namespace
}  // namespace lamellar::bale

LAMELLAR_REGISTER_AM(lamellar::bale::IgGatherAm);

namespace lamellar::bale {
namespace {

std::vector<global_index> make_requests(World& world,
                                        const IndexGatherParams& p) {
  auto rng = pe_rng(p.seed, world.my_pe());
  const std::uint64_t table_len = p.table_per_pe * world.num_pes();
  std::vector<global_index> idxs(p.requests_per_pe);
  for (auto& i : idxs) i = rng.uniform(table_len);
  return idxs;
}

bool verify_gather(World& world, const std::vector<global_index>& idxs,
                   const std::vector<std::uint64_t>& target) {
  // table[i] == i, so target[k] must equal idxs[k].
  for (std::size_t k = 0; k < idxs.size(); ++k) {
    if (target[k] != idxs[k]) return false;
  }
  const std::uint64_t ok = global_sum_u64(world, 1);
  return ok == world.num_pes();
}

/// Local slab of the distributed identity table (table[i] = i).
std::vector<std::uint64_t> make_local_table(World& world,
                                            std::size_t table_per_pe) {
  std::vector<std::uint64_t> t(table_per_pe);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = world.my_pe() * table_per_pe + i;
  }
  return t;
}

KernelResult ig_lamellar_array(World& world, const IndexGatherParams& p) {
  auto tmp = UnsafeArray<std::uint64_t>::create(
      world, p.table_per_pe * world.num_pes(), Distribution::kBlock);
  {
    auto local = tmp.unsafe_local_slice();
    const std::uint64_t base = world.my_pe() * p.table_per_pe;
    for (std::size_t i = 0; i < local.size(); ++i) local[i] = base + i;
  }
  world.barrier();
  auto table = std::move(tmp).into_read_only();
  auto idxs = make_requests(world, p);

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  // Paper: target = world.block_on(table.batch_load(rnd_idxs));
  auto target = world.block_on(table.batch_load(idxs));
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  KernelResult r;
  r.ops = p.requests_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = verify_gather(world, idxs, target);
  return r;
}

KernelResult ig_lamellar_am(World& world, const IndexGatherParams& p) {
  auto table = UnsafeArray<std::uint64_t>::create(
      world, p.table_per_pe * world.num_pes(), Distribution::kBlock);
  {
    auto local = table.unsafe_local_slice();
    const std::uint64_t base = world.my_pe() * p.table_per_pe;
    for (std::size_t i = 0; i < local.size(); ++i) local[i] = base + i;
  }
  world.barrier();
  auto state = table.state_darc();
  auto idxs = make_requests(world, p);
  std::vector<std::uint64_t> target(idxs.size(), ~0ULL);

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  std::vector<std::vector<std::uint64_t>> locals(world.num_pes());
  std::vector<std::vector<std::size_t>> positions(world.num_pes());
  auto send_chunk = [&](pe_id dst) {
    world.engine().send_cb(
        dst, IgGatherAm{state, std::move(locals[dst])},
        [&target, pos = std::move(positions[dst])](
            std::vector<std::uint64_t> vals) {
          for (std::size_t j = 0; j < vals.size(); ++j) {
            target[pos[j]] = vals[j];
          }
        });
    locals[dst] = {};
    positions[dst] = {};
  };
  for (std::size_t k = 0; k < idxs.size(); ++k) {
    const pe_id dst = idxs[k] / p.table_per_pe;
    locals[dst].push_back(idxs[k] % p.table_per_pe);
    positions[dst].push_back(k);
    if (locals[dst].size() >= p.agg_limit) send_chunk(dst);
  }
  for (pe_id dst = 0; dst < world.num_pes(); ++dst) {
    if (!locals[dst].empty()) send_chunk(dst);
  }
  world.wait_all();
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  KernelResult r;
  r.ops = p.requests_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = verify_gather(world, idxs, target);
  return r;
}

KernelResult ig_chapel(World& world, const IndexGatherParams& p) {
  auto local_table = make_local_table(world, p.table_per_pe);
  // The table must be RDMA-readable: place it in a symmetric region.
  auto region =
      SharedMemoryRegion<std::uint64_t>::create(world, p.table_per_pe);
  std::copy(local_table.begin(), local_table.end(),
            region.unsafe_local_slice().begin());
  world.barrier();

  auto idxs = make_requests(world, p);
  std::vector<std::uint64_t> target(idxs.size(), ~0ULL);
  baselines::SrcAggregator<std::uint64_t> agg(world, p.agg_limit,
                                              region.arena_offset(), target);

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  for (std::size_t k = 0; k < idxs.size(); ++k) {
    agg.gather(idxs[k] / p.table_per_pe, idxs[k] % p.table_per_pe, k);
    world.lamellae().charge(2.0);
  }
  agg.flush_all();
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  KernelResult r;
  r.ops = p.requests_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = verify_gather(world, idxs, target);
  return r;
}

/// Generic request/reply driver over the asynchronous push libraries: one
/// instance carries requests, a second carries responses; the response side
/// declares done once the request side has fully drained.
template <typename ReqLib, typename RspLib>
KernelResult ig_request_reply(World& world, const IndexGatherParams& p,
                              ReqLib& req_lib, RspLib& rsp_lib,
                              double per_op_cost) {
  auto local_table = make_local_table(world, p.table_per_pe);
  auto idxs = make_requests(world, p);
  std::vector<std::uint64_t> target(idxs.size(), ~0ULL);
  std::uint64_t answered = 0;
  bool rsp_done = false;

  auto serve = [&] {
    while (auto msg = req_lib.pop()) {
      const auto [src, rq] = *msg;
      rsp_lib.push(src, IgRsp{rq.pos, local_table[rq.slot]});
    }
    while (auto msg = rsp_lib.pop()) {
      target[msg->second.pos] = msg->second.value;
      ++answered;
    }
  };

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  for (std::size_t k = 0; k < idxs.size(); ++k) {
    req_lib.push(idxs[k] / p.table_per_pe,
                 IgReq{idxs[k] % p.table_per_pe, k});
    world.lamellae().charge(per_op_cost);
    serve();
  }
  req_lib.done();
  bool req_active = true;
  while (req_active || answered < idxs.size()) {
    req_active = req_lib.proceed();
    serve();
    if (!req_active && !rsp_done) {
      rsp_lib.done();
      rsp_done = true;
    }
    rsp_lib.proceed();
    serve();
  }
  // Drain the response channel termination handshake.
  rsp_lib.done();
  while (rsp_lib.proceed()) serve();
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  KernelResult r;
  r.ops = p.requests_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = verify_gather(world, idxs, target);
  return r;
}

KernelResult ig_exstack(World& world, const IndexGatherParams& p) {
  auto local_table = make_local_table(world, p.table_per_pe);
  auto idxs = make_requests(world, p);
  std::vector<std::uint64_t> target(idxs.size(), ~0ULL);
  baselines::Exstack<IgReq> req(world, p.agg_limit);
  baselines::Exstack<IgRsp> rsp(world, p.agg_limit);
  std::uint64_t answered = 0;
  std::vector<std::pair<pe_id, IgReq>> stash;

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  std::size_t next = 0;
  bool req_more = true;
  bool rsp_more = true;
  while (req_more || rsp_more) {
    while (next < idxs.size() &&
           req.push(idxs[next] / p.table_per_pe,
                    IgReq{idxs[next] % p.table_per_pe, next})) {
      world.lamellae().charge(3.0);
      ++next;
    }
    if (req_more) {
      req_more = req.proceed(next == idxs.size());
    }
    bool rsp_full = false;
    while (auto msg = req.pop()) {
      const auto [src, rq] = *msg;
      if (!rsp.push(src, IgRsp{rq.pos, local_table[rq.slot]})) {
        // Response buffer full: put the request back conceptually by
        // serving after the exchange; simplest is to stash it.
        stash.push_back({src, rq});
        rsp_full = true;
        break;
      }
    }
    rsp_more = rsp.proceed(!req_more && stash.empty() && !rsp_full);
    // Retry stashed requests now that response buffers drained.
    auto pending = std::move(stash);
    stash.clear();
    for (const auto& [src, rq] : pending) {
      if (!rsp.push(src, IgRsp{rq.pos, local_table[rq.slot]})) {
        stash.push_back({src, rq});
      }
    }
    while (auto msg = rsp.pop()) {
      target[msg->second.pos] = msg->second.value;
      ++answered;
    }
  }
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  KernelResult r;
  r.ops = p.requests_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = answered == idxs.size() && verify_gather(world, idxs, target);
  return r;
}

}  // namespace

KernelResult indexgather_kernel(World& world, Backend backend,
                                const IndexGatherParams& p) {
  switch (backend) {
    case Backend::kLamellarArray:
      return ig_lamellar_array(world, p);
    case Backend::kLamellarAm:
      return ig_lamellar_am(world, p);
    case Backend::kChapel:
      return ig_chapel(world, p);
    case Backend::kExstack:
      return ig_exstack(world, p);
    case Backend::kExstack2: {
      baselines::Exstack2<IgReq> req(world, p.agg_limit);
      baselines::Exstack2<IgRsp> rsp(world, p.agg_limit);
      req.set_progress_hook([&rsp] { rsp.pump(); });
      rsp.set_progress_hook([&req] { req.pump(); });
      return ig_request_reply(world, p, req, rsp, 3.0);
    }
    case Backend::kConveyor: {
      baselines::Conveyor<IgReq> req(world, p.agg_limit);
      baselines::Conveyor<IgRsp> rsp(world, p.agg_limit);
      req.set_progress_hook([&rsp] { rsp.pump(); });
      rsp.set_progress_hook([&req] { req.pump(); });
      return ig_request_reply(world, p, req, rsp, 3.0);
    }
    case Backend::kSelector: {
      baselines::Exstack2<IgReq> req(world, p.agg_limit);
      baselines::Exstack2<IgRsp> rsp(world, p.agg_limit);
      req.set_progress_hook([&rsp] { rsp.pump(); });
      rsp.set_progress_hook([&req] { req.pump(); });
      // Selectors layer actor mailboxes over the same async transport; the
      // extra envelope cost is charged per op.
      return ig_request_reply(world, p, req, rsp, 4.0);
    }
  }
  throw Error("unknown indexgather backend");
}

}  // namespace lamellar::bale
