// The BALE Histogram kernel (paper Sec. IV-B1): every PE issues
// `updates_per_pe` increments to uniformly random slots of a distributed
// table — the GUPS-style small-message all-to-all pattern — through a chosen
// aggregation backend.  Verification: sum(table) == total updates.
#pragma once

#include "bale/common.hpp"

namespace lamellar::bale {

struct HistogramParams {
  std::size_t table_per_pe = 1'000;      ///< paper: 1000 elements per core
  std::size_t updates_per_pe = 100'000;  ///< paper: 10M per core (scaled)
  std::size_t agg_limit = 10'000;        ///< paper: 10k ops per buffer
  std::uint64_t seed = 42;
};

/// Run histogram on the calling PE (collective: all PEs call).
KernelResult histogram_kernel(World& world, Backend backend,
                              const HistogramParams& params);

}  // namespace lamellar::bale
