#include "bale/histogram.hpp"

#include "baselines/chapel_agg/chapel_agg.hpp"
#include "baselines/conveyor/conveyor.hpp"
#include "baselines/exstack/exstack.hpp"
#include "baselines/exstack2/exstack2.hpp"
#include "baselines/selector/selector.hpp"
#include "common/rng.hpp"
#include "core/array/arrays.hpp"

namespace lamellar::bale {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kLamellarAm:
      return "Lamellar AM";
    case Backend::kLamellarArray:
      return "Lamellar Array";
    case Backend::kExstack:
      return "Exstack";
    case Backend::kExstack2:
      return "Exstack2";
    case Backend::kConveyor:
      return "Conveyors";
    case Backend::kSelector:
      return "Selectors";
    case Backend::kChapel:
      return "Chapel";
  }
  return "?";
}

std::uint64_t global_sum_u64(World& world, std::uint64_t local) {
  auto slot = SharedMemoryRegion<std::uint64_t>::create(world, 1);
  slot.unsafe_local_slice()[0] = 0;
  world.barrier();
  for (pe_id pe = 0; pe < world.num_pes(); ++pe) {
    world.lamellae().atomic_fetch_add_u64(pe, slot.arena_offset(), local);
  }
  world.barrier();
  const std::uint64_t total = slot.unsafe_local_slice()[0];
  world.barrier();
  return total;
}

namespace {

/// The hand-aggregated AM (paper: "uses AMs to manually aggregate indices
/// (into a Vec) by destination PE ... the AM iterates through the Vec of
/// indices and atomically updates the corresponding entries").
struct HistoUpdateAm {
  Darc<ArrayState<std::uint64_t>> table;
  std::vector<std::uint64_t> locals;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(table, locals);
  }

  void exec(AmContext&) {
    ArrayState<std::uint64_t>& st = *table;
    auto slab = st.local_slab();
    st.world->lamellae().charge(st.world->lamellae().params().atomic_store_ns *
                                static_cast<double>(locals.size()));
    for (auto idx : locals) {
      std::atomic_ref<std::uint64_t> ref(slab[idx]);
      ref.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

}  // namespace
}  // namespace lamellar::bale

LAMELLAR_REGISTER_AM(lamellar::bale::HistoUpdateAm);

namespace lamellar::bale {
namespace {

std::vector<global_index> make_indices(World& world,
                                       const HistogramParams& p) {
  auto rng = pe_rng(p.seed, world.my_pe());
  const std::uint64_t table_len = p.table_per_pe * world.num_pes();
  std::vector<global_index> idxs(p.updates_per_pe);
  for (auto& i : idxs) i = rng.uniform(table_len);
  return idxs;
}

/// Generic driver for the push-style baseline libraries (Exstack2-like API:
/// push / done / proceed / pop).
template <typename Lib>
KernelResult histogram_push_lib(World& world, const HistogramParams& p,
                                Lib& lib) {
  auto idxs = make_indices(world, p);
  std::vector<std::uint64_t> local_table(p.table_per_pe, 0);
  const std::size_t n = world.num_pes();

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  for (auto gi : idxs) {
    lib.push(gi / p.table_per_pe, static_cast<std::uint64_t>(
                                      gi % p.table_per_pe));
    while (auto item = lib.pop()) local_table[item->second] += 1;
    // Charge the per-op packing cost the C libraries pay.
    world.lamellae().charge(3.0);
  }
  lib.done();
  while (lib.proceed()) {
    while (auto item = lib.pop()) local_table[item->second] += 1;
  }
  while (auto item = lib.pop()) local_table[item->second] += 1;
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  std::uint64_t local_sum = 0;
  for (auto v : local_table) local_sum += v;
  const std::uint64_t total = global_sum_u64(world, local_sum);

  KernelResult r;
  r.ops = p.updates_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = total == p.updates_per_pe * n;
  return r;
}

KernelResult histogram_lamellar_array(World& world,
                                      const HistogramParams& p) {
  auto table = AtomicArray<std::uint64_t>::create(
      world, p.table_per_pe * world.num_pes(), Distribution::kBlock);
  table.fill(0);
  auto idxs = make_indices(world, p);

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  // Listing 2: world.block_on(table.batch_add(rnd_i, 1)); the runtime
  // splits into sub-batches of agg_limit per destination.
  world.block_on(table.batch_add(idxs, 1));
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  const auto sum = world.block_on(table.sum());
  world.barrier();

  KernelResult r;
  r.ops = p.updates_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = sum == p.updates_per_pe * world.num_pes();
  return r;
}

KernelResult histogram_lamellar_am(World& world, const HistogramParams& p) {
  auto table = AtomicArray<std::uint64_t>::create(
      world, p.table_per_pe * world.num_pes(), Distribution::kBlock);
  table.fill(0);
  auto idxs = make_indices(world, p);
  // Reach under the safe wrapper for the state darc the AMs carry; the AM
  // itself only uses safe atomic accesses (the paper's AM variant is all
  // safe code).
  auto state = table.state_darc();

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  std::vector<std::vector<std::uint64_t>> bufs(world.num_pes());
  for (auto& b : bufs) b.reserve(p.agg_limit);
  for (auto gi : idxs) {
    const pe_id dst = gi / p.table_per_pe;
    auto& buf = bufs[dst];
    buf.push_back(gi % p.table_per_pe);
    if (buf.size() >= p.agg_limit) {
      world.engine().send_cb(dst, HistoUpdateAm{state, std::move(buf)},
                             [](Unit) {});
      buf = {};
      buf.reserve(p.agg_limit);
    }
  }
  for (pe_id dst = 0; dst < world.num_pes(); ++dst) {
    if (!bufs[dst].empty()) {
      world.engine().send_cb(dst, HistoUpdateAm{state, std::move(bufs[dst])},
                             [](Unit) {});
    }
  }
  world.wait_all();
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  const auto sum = world.block_on(table.sum());
  world.barrier();

  KernelResult r;
  r.ops = p.updates_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = sum == p.updates_per_pe * world.num_pes();
  return r;
}

KernelResult histogram_exstack(World& world, const HistogramParams& p) {
  auto idxs = make_indices(world, p);
  std::vector<std::uint64_t> local_table(p.table_per_pe, 0);
  baselines::Exstack<std::uint64_t> ex(world, p.agg_limit);

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  std::size_t next = 0;
  bool more = true;
  while (more) {
    while (next < idxs.size() &&
           ex.push(idxs[next] / p.table_per_pe,
                   idxs[next] % p.table_per_pe)) {
      ++next;
      world.lamellae().charge(3.0);
    }
    more = ex.proceed(next == idxs.size());
    while (auto item = ex.pop()) local_table[item->second] += 1;
  }
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  std::uint64_t local_sum = 0;
  for (auto v : local_table) local_sum += v;
  const std::uint64_t total = global_sum_u64(world, local_sum);

  KernelResult r;
  r.ops = p.updates_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = total == p.updates_per_pe * world.num_pes();
  return r;
}

KernelResult histogram_chapel(World& world, const HistogramParams& p) {
  auto idxs = make_indices(world, p);
  std::vector<std::uint64_t> local_table(p.table_per_pe, 0);
  // Chapel's DstAggregator applies "table[i] += 1" on the owning locale.
  baselines::DstAggregator<std::uint64_t> agg(
      world, p.agg_limit,
      [&local_table](std::uint64_t local, std::uint64_t v) {
        local_table[local] += v;
      });

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  for (auto gi : idxs) {
    agg.update(gi / p.table_per_pe, gi % p.table_per_pe, 1);
    world.lamellae().charge(2.5);
  }
  agg.done();
  while (agg.proceed()) {
  }
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  std::uint64_t local_sum = 0;
  for (auto v : local_table) local_sum += v;
  const std::uint64_t total = global_sum_u64(world, local_sum);

  KernelResult r;
  r.ops = p.updates_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = total == p.updates_per_pe * world.num_pes();
  return r;
}

KernelResult histogram_selector(World& world, const HistogramParams& p) {
  auto idxs = make_indices(world, p);
  std::vector<std::uint64_t> local_table(p.table_per_pe, 0);
  baselines::Selector<std::uint64_t, 1> sel(world, p.agg_limit);
  sel.on_message(0, [&local_table](std::uint64_t local, pe_id) {
    local_table[local] += 1;
  });

  world.barrier();
  const sim_nanos t0 = world.time_ns();
  for (auto gi : idxs) {
    sel.send(0, gi / p.table_per_pe, gi % p.table_per_pe);
    world.lamellae().charge(3.5);  // actor envelope handling
    sel.proceed();
  }
  sel.done();
  sel.run_to_completion();
  world.barrier();
  const sim_nanos t1 = world.time_ns();

  std::uint64_t local_sum = 0;
  for (auto v : local_table) local_sum += v;
  const std::uint64_t total = global_sum_u64(world, local_sum);

  KernelResult r;
  r.ops = p.updates_per_pe;
  r.elapsed_ns = t1 - t0;
  r.verified = total == p.updates_per_pe * world.num_pes();
  return r;
}

}  // namespace

KernelResult histogram_kernel(World& world, Backend backend,
                              const HistogramParams& p) {
  switch (backend) {
    case Backend::kLamellarArray:
      return histogram_lamellar_array(world, p);
    case Backend::kLamellarAm:
      return histogram_lamellar_am(world, p);
    case Backend::kExstack:
      return histogram_exstack(world, p);
    case Backend::kExstack2: {
      baselines::Exstack2<std::uint64_t> lib(world, p.agg_limit);
      return histogram_push_lib(world, p, lib);
    }
    case Backend::kConveyor: {
      baselines::Conveyor<std::uint64_t> lib(world, p.agg_limit);
      return histogram_push_lib(world, p, lib);
    }
    case Backend::kSelector:
      return histogram_selector(world, p);
    case Backend::kChapel:
      return histogram_chapel(world, p);
  }
  throw Error("unknown histogram backend");
}

}  // namespace lamellar::bale
