#include "sim/netmodel.hpp"

#include <algorithm>
#include <cmath>

namespace lamellar::sim {

double cross_rack_fraction(const ClusterSpec& cluster, std::size_t nodes) {
  if (nodes <= cluster.nodes_per_rack) return 0.0;
  const double racks = std::ceil(static_cast<double>(nodes) /
                                 static_cast<double>(cluster.nodes_per_rack));
  // Uniform destinations: traffic to nodes outside my rack.
  return 1.0 - 1.0 / racks;
}

NodeResult simulate_node(const ClusterSpec& cluster, std::size_t nodes,
                         const NodeTraffic& t) {
  Simulator simulator;
  Resource cpu;       // aggregate origin-side compute (normalized per core)
  Resource nic_out;   // node injection port
  Resource nic_in;    // node reception port
  Resource handler;   // aggregate target-side compute
  Resource uplink;    // this node's share of the rack uplink

  const double nbuffers =
      std::max(1.0, t.ops_per_node / std::max(1.0, t.buffer_ops));
  // Event count control: replay up to 4096 representative buffers and scale.
  const double replay = std::min(nbuffers, 4096.0);
  const double scale = nbuffers / replay;

  const double ops_per_buffer = t.ops_per_node / nbuffers;
  const double buffer_bytes =
      ops_per_buffer * t.bytes_per_op * t.wire_amplification;
  const double reply_bytes = ops_per_buffer * t.reply_bytes_per_op;
  const double cross = cross_rack_fraction(cluster, nodes);

  // Per-node share of the rack uplink capacity.
  const double uplink_rate =
      cluster.uplink_bytes_per_ns /
      static_cast<double>(std::min(nodes, cluster.nodes_per_rack));

  // CPU times are normalized by the cores available: the resource serves
  // the node's aggregate work at cores_for_cpu-way parallelism.
  const double gen_time =
      (ops_per_buffer * t.cpu_per_op_ns) / std::max(1.0, t.cores_for_cpu);
  const double handle_time =
      (ops_per_buffer * t.handler_per_op_ns + t.recv_overhead_ns) /
      std::max(1.0, t.cores_for_cpu);
  // Per-buffer posting overhead occupies the injection pipeline — this is
  // what separates the runtimes once shrinking buffers stop amortizing it.
  // A single node exchanges through shared memory instead of the NIC.
  const bool single_node = nodes <= 1;
  const double wire_rate = single_node ? cluster.intranode_bytes_per_ns
                                       : cluster.nic_bytes_per_ns;
  const double post_overhead =
      single_node ? 0.3 * t.send_overhead_ns : t.send_overhead_ns;
  const double inject_time =
      (buffer_bytes + reply_bytes) / wire_rate + post_overhead;
  const double uplink_time =
      cross * (buffer_bytes + reply_bytes) / uplink_rate;

  double last_done = 0;
  for (double b = 0; b < replay; ++b) {
    simulator.after(0, [&, b] {
      // Pipeline: generate -> inject -> (uplink) -> receive handler.  The
      // symmetric node receives as much as it sends.
      const sim_time g = cpu.serve(simulator.now(), gen_time);
      const sim_time sent = nic_out.serve(g, inject_time);
      const sim_time crossed =
          cross > 0 ? uplink.serve(sent, uplink_time) : sent;
      const sim_time arrived =
          nic_in.serve(crossed + cluster.intra_rack_latency_ns, inject_time);
      const sim_time handled = handler.serve(arrived, handle_time);
      last_done = std::max(last_done, handled);
    });
  }
  simulator.run();

  double makespan = last_done * scale;
  if (t.rounds > 0) {
    makespan += t.rounds * t.barrier_per_round_ns;
  }

  NodeResult r;
  r.makespan_ns = makespan;
  r.nic_utilization =
      std::min(1.0, nic_out.busy_time() / std::max(1.0, last_done));
  r.cpu_utilization =
      std::min(1.0, cpu.busy_time() / std::max(1.0, last_done));
  return r;
}

}  // namespace lamellar::sim
