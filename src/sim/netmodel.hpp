// Flow-level cluster network model for the scaling studies (Figs. 3-5).
//
// The workloads are symmetric uniform all-to-alls, so one representative
// node's pipeline — per-PE buffer production (CPU), NIC injection (shared by
// the node's PEs), rack uplinks (shared by the rack's nodes when traffic
// crosses racks), and receive-side handler cores — determines the makespan.
// The buffer stream is replayed through the discrete-event engine's serial
// resources so queueing/ramp effects are captured, and the per-op costs come
// from the same PerfParams the live fabric charges.
#pragma once

#include "fabric/perf_model.hpp"
#include "fabric/topology.hpp"
#include "sim/engine.hpp"

namespace lamellar::sim {

/// One implementation's traffic as seen by a single node.
struct NodeTraffic {
  double ops_per_node = 0;         ///< kernel operations issued per node
  double bytes_per_op = 8;         ///< payload bytes per op on the wire
  double cpu_per_op_ns = 4;        ///< origin-side per-op CPU
  double handler_per_op_ns = 3;    ///< target-side per-op CPU
  double buffer_ops = 10'000;      ///< ops per aggregated message
  double send_overhead_ns = 1500;  ///< per-buffer origin cost (alloc/post)
  double recv_overhead_ns = 800;   ///< per-buffer target cost (dispatch)
  double cores_for_cpu = 64;       ///< cores available to generate/handle
  double wire_amplification = 1.0; ///< >1 for multi-hop routing
  double reply_bytes_per_op = 0;   ///< response traffic (IndexGather)
  double barrier_per_round_ns = 0; ///< BSP synchronization per buffer round
  double rounds = 0;               ///< BSP rounds (0 = asynchronous)
};

struct NodeResult {
  double makespan_ns = 0;
  double nic_utilization = 0;
  double cpu_utilization = 0;
};

/// Simulate one node's steady-state execution of `traffic` on `cluster`
/// with `nodes` participating nodes; returns the makespan.
NodeResult simulate_node(const ClusterSpec& cluster, std::size_t nodes,
                         const NodeTraffic& traffic);

/// Fraction of uniform all-to-all traffic that crosses rack boundaries.
double cross_rack_fraction(const ClusterSpec& cluster, std::size_t nodes);

}  // namespace lamellar::sim
