// Minimal discrete-event engine used by the cluster model.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/unique_function.hpp"

namespace lamellar::sim {

using sim_time = double;  ///< nanoseconds

class Simulator {
 public:
  /// Schedule `fn` at absolute time `t` (>= now).
  void at(sim_time t, UniqueFunction<void()> fn);

  /// Schedule `fn` after `dt`.
  void after(sim_time dt, UniqueFunction<void()> fn) { at(now_ + dt, std::move(fn)); }

  /// Run until the event queue empties; returns the final time.
  sim_time run();

  [[nodiscard]] sim_time now() const { return now_; }
  [[nodiscard]] std::size_t executed() const { return executed_; }

 private:
  struct Event {
    sim_time t;
    std::uint64_t seq;
    UniqueFunction<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  sim_time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

/// A serially reusable resource (NIC port, core, uplink): serves requests
/// one at a time in arrival order; `serve` returns the completion time.
class Resource {
 public:
  /// Request service of `duration` starting no earlier than `t`.
  sim_time serve(sim_time t, sim_time duration) {
    const sim_time start = t > busy_until_ ? t : busy_until_;
    busy_until_ = start + duration;
    busy_time_ += duration;
    return busy_until_;
  }

  [[nodiscard]] sim_time busy_until() const { return busy_until_; }
  [[nodiscard]] sim_time busy_time() const { return busy_time_; }
  void reset() {
    busy_until_ = 0;
    busy_time_ = 0;
  }

 private:
  sim_time busy_until_ = 0;
  sim_time busy_time_ = 0;
};

}  // namespace lamellar::sim
