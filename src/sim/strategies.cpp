#include "sim/strategies.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lamellar::sim {

ImplProfile profile_for(bale::Backend backend) {
  ImplProfile p;
  switch (backend) {
    case bale::Backend::kLamellarAm:
      // Hand-aggregated AMs: 16 PEs/node, lean per-buffer path, but the
      // origin thread manages its own buffers (reduced duplex overlap).
      p.pes_per_node = 16;
      p.send_overhead_ns = 1'600;
      p.recv_overhead_ns = 900;
      p.cpu_per_op_ns = 4.5;
      p.handler_per_op_ns = 2.5;
      p.duplex_cores_frac = 0.45;
      p.rack_penalty = 0.04;
      return p;
    case bale::Backend::kLamellarArray:
      // Runtime batching: sub-batch creation, multi-threaded dispatch and
      // internal AM machinery add per-buffer overhead that grows relative
      // as buffers shrink with PE count (paper Sec. IV-B1 discussion).
      p.pes_per_node = 16;
      p.send_overhead_ns = 7'500;
      p.recv_overhead_ns = 2'600;
      p.cpu_per_op_ns = 5.5;
      p.handler_per_op_ns = 3.0;
      p.duplex_cores_frac = 1.0;
      p.rack_penalty = 0.04;
      return p;
    case bale::Backend::kExstack:
      p.pes_per_node = 64;
      p.send_overhead_ns = 2'000;
      p.recv_overhead_ns = 900;
      p.cpu_per_op_ns = 4.0;
      p.handler_per_op_ns = 2.5;
      p.bulk_synchronous = true;
      p.rack_penalty = 0.55;
      return p;
    case bale::Backend::kExstack2:
      p.pes_per_node = 64;
      p.send_overhead_ns = 2'300;
      p.recv_overhead_ns = 1'000;
      p.cpu_per_op_ns = 4.2;
      p.handler_per_op_ns = 2.6;
      p.rack_penalty = 0.55;
      return p;
    case bale::Backend::kConveyor:
      // Two hops double the wire traffic but buffers stay large (partners
      // = 2*sqrt(P)) and the footprint small: flat scaling.
      p.pes_per_node = 64;
      p.two_hop = true;
      p.send_overhead_ns = 1'900;
      p.recv_overhead_ns = 950;
      p.cpu_per_op_ns = 4.5;
      p.handler_per_op_ns = 3.2;  // includes forwarding work
      p.bytes_per_op = 16;        // routed envelope
      p.wire_amplification = 1.6; // second hop partially intra-node
      p.rack_penalty = 0.12;
      return p;
    case bale::Backend::kSelector:
      p.pes_per_node = 64;
      p.send_overhead_ns = 3'000;
      p.recv_overhead_ns = 1'400;
      p.cpu_per_op_ns = 5.5;   // actor envelope
      p.handler_per_op_ns = 4.0;
      p.bytes_per_op = 16;
      p.rack_penalty = 0.50;
      return p;
    case bale::Backend::kChapel:
      p.pes_per_node = 4;  // locales (paper: best of 1-8)
      p.send_overhead_ns = 2'400;
      p.recv_overhead_ns = 1'100;
      p.cpu_per_op_ns = 5.0;
      p.handler_per_op_ns = 3.0;
      p.rack_penalty = 0.08;
      return p;
  }
  throw Error("unknown backend profile");
}

ImplProfile profile_for(bale::RandpermImpl impl) {
  switch (impl) {
    case bale::RandpermImpl::kArrayDarts: {
      auto p = profile_for(bale::Backend::kLamellarArray);
      p.bytes_per_op = 16;  // slot + value
      return p;
    }
    case bale::RandpermImpl::kAmDart: {
      auto p = profile_for(bale::Backend::kLamellarAm);
      p.bytes_per_op = 16;
      return p;
    }
    case bale::RandpermImpl::kAmDartOpt: {
      auto p = profile_for(bale::Backend::kLamellarAm);
      p.bytes_per_op = 16;
      p.handler_per_op_ns = 4.0;  // owner-side local retries
      return p;
    }
    case bale::RandpermImpl::kAmPush: {
      auto p = profile_for(bale::Backend::kLamellarAm);
      p.bytes_per_op = 8;         // value only; throws never fail
      p.handler_per_op_ns = 2.0;  // append
      return p;
    }
    case bale::RandpermImpl::kExstack: {
      auto p = profile_for(bale::Backend::kExstack);
      p.bytes_per_op = 24;  // kind + slot + value
      return p;
    }
  }
  throw Error("unknown randperm profile");
}

double randperm_throws_per_element(bale::RandpermImpl impl) {
  switch (impl) {
    case bale::RandpermImpl::kAmPush:
      return 1.0;  // pushes never fail
    case bale::RandpermImpl::kAmDartOpt:
      return 1.08;  // remote retry only when a PE fills (rare)
    default:
      // Dart throwing into a 2x target: expected total throws
      // sum_k N_k with N_{k+1} = N_k * (occupied fraction) -> ~2 ln 2.
      return 2.0 * std::log(2.0);
  }
}

}  // namespace lamellar::sim
