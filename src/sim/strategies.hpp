// Per-implementation protocol structure for the scaling models (Figs. 3-5).
//
// Each implementation is described by how it actually moves data — PEs per
// node, aggregation partners (which fixes the achievable buffer fill when
// each PE's operations spread over more destinations), per-buffer and
// per-op costs, BSP rounds, duplex parallelism — and the model derives node
// traffic from those structures.  Values are calibrated so the 2-PE live
// measurements and the paper's reported orderings are reproduced; the
// *shape* of every curve comes from the structure, not from per-point
// tuning.
#pragma once

#include <cstddef>

#include "bale/common.hpp"
#include "bale/randperm.hpp"
#include "fabric/topology.hpp"

namespace lamellar::sim {

struct ImplProfile {
  /// PEs (processes) per node: OpenSHMEM-class runs one per core (64);
  /// Lamellar one per NUMA domain (16, paper Sec. IV-B); Chapel a handful
  /// of locales (paper: 1-8; 4 is used here).
  double pes_per_node = 64;

  /// Aggregation partners per PE as a function of total PEs P: P for
  /// direct aggregation, 2*sqrt(P) for Conveyors' two hops.
  bool two_hop = false;

  /// Per-buffer origin cost (allocation, descriptor posting, runtime
  /// batching machinery) and target cost (dispatch, task spawn), ns.
  double send_overhead_ns = 2'000;
  double recv_overhead_ns = 1'000;

  /// Per-op CPU costs, ns (single thread).
  double cpu_per_op_ns = 5;
  double handler_per_op_ns = 3;

  /// Wire bytes per op (item encoding).
  double bytes_per_op = 8;
  double wire_amplification = 1.0;  ///< conveyors traverse two hops

  /// Fraction of node cores usable for origin/target processing (duplex
  /// parallelism: runtime-managed thread pools overlap send and receive;
  /// hand-rolled single-threaded loops do not).
  double duplex_cores_frac = 1.0;

  /// Endpoint/connection-state pressure: per-buffer overhead multiplier per
  /// additional rack in use (the effect behind the paper's observation that
  /// the OpenSHMEM implementations degrade at 2048 cores / 4 racks).
  double rack_penalty = 0.0;

  /// Bulk-synchronous: barrier cost charged per exchange round.
  bool bulk_synchronous = false;

  /// Effective partner multiplier: >1 when the implementation must split
  /// its buffer budget (e.g. the hand-rolled AM IndexGather keeps request
  /// and response buffers per destination, halving the fill each achieves).
  double partner_multiplier = 1.0;

  /// IndexGather: responses produced by remote handler (0 for Chapel's
  /// one-sided RDMA gather).
  bool handler_produces_reply = true;
};

/// Profile for one Fig. 3/4 backend.
ImplProfile profile_for(bale::Backend backend);

/// Profile for one Fig. 5 Randperm implementation.
ImplProfile profile_for(bale::RandpermImpl impl);

/// Number of dart throws per permutation element for a Randperm variant
/// (retries included; target array is 2N).
double randperm_throws_per_element(bale::RandpermImpl impl);

}  // namespace lamellar::sim
