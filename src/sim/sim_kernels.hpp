// Cluster-scale kernel models: regenerate the paper's Figs. 3-5 series at
// 64-2048 cores by combining each implementation's protocol structure
// (sim/strategies) with the node pipeline model (sim/netmodel) over the
// paper's cluster (fabric/topology).
#pragma once

#include <vector>

#include "sim/strategies.hpp"

namespace lamellar::sim {

struct ScalingPoint {
  std::size_t cores = 0;
  double value = 0;  ///< MUPS for Figs. 3-4; seconds for Fig. 5
};

struct ScalingParams {
  std::size_t updates_per_core = 10'000'000;  ///< paper: 10M (Figs. 3-4)
  std::size_t perm_per_core = 1'000'000;      ///< paper: 1M (Fig. 5)
  std::size_t agg_limit = 10'000;
  ClusterSpec cluster = paper_cluster();
};

/// Fig. 3: aggregate MUPS (higher is better) per core count.
std::vector<ScalingPoint> model_histogram(bale::Backend backend,
                                          const std::vector<std::size_t>& cores,
                                          const ScalingParams& params = {});

/// Fig. 4: aggregate MUPS for IndexGather.
std::vector<ScalingPoint> model_indexgather(
    bale::Backend backend, const std::vector<std::size_t>& cores,
    const ScalingParams& params = {});

/// Fig. 5: running time in seconds (lower is better).
std::vector<ScalingPoint> model_randperm(
    bale::RandpermImpl impl, const std::vector<std::size_t>& cores,
    const ScalingParams& params = {});

/// The core counts used in the paper's scaling figures.
std::vector<std::size_t> paper_core_counts();

}  // namespace lamellar::sim
