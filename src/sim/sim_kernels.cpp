#include "sim/sim_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/types.hpp"
#include "sim/netmodel.hpp"

namespace lamellar::sim {

std::vector<std::size_t> paper_core_counts() {
  return {64, 128, 256, 512, 1024, 2048};
}

namespace {

/// Build the node traffic for a kernel phase: `ops_per_core` operations per
/// core, uniformly addressed, carried by the implementation's protocol.
NodeTraffic build_traffic(const ImplProfile& prof, const ClusterSpec& cluster,
                          std::size_t cores, std::size_t ops_per_core,
                          std::size_t agg_limit, double reply_bytes,
                          bool reply_handled) {
  const double nodes = std::max<double>(
      1.0, static_cast<double>(cores) / cluster.cores_per_node);
  const double total_pes = prof.pes_per_node * nodes;
  const double ops_per_pe =
      static_cast<double>(ops_per_core) * cluster.cores_per_node /
      prof.pes_per_node;

  // Aggregation partners per PE: everyone, or 2*sqrt(P) for two-hop.
  const double partners =
      (prof.two_hop ? std::max(2.0, 2.0 * std::sqrt(total_pes))
                    : std::max(1.0, total_pes - 1)) *
      prof.partner_multiplier;
  const double fill = ops_per_pe / partners;
  const double buffer_ops =
      std::clamp(fill, 1.0, static_cast<double>(agg_limit));

  // Endpoint pressure once traffic spans multiple racks.
  const double racks =
      std::ceil(nodes / static_cast<double>(cluster.nodes_per_rack));
  const double rack_mult =
      1.0 + prof.rack_penalty * std::max(0.0, racks - 1.0);

  NodeTraffic t;
  t.ops_per_node =
      static_cast<double>(ops_per_core) * cluster.cores_per_node;
  t.bytes_per_op = prof.bytes_per_op;
  t.wire_amplification = prof.wire_amplification;
  t.reply_bytes_per_op = reply_bytes;
  t.cpu_per_op_ns = prof.cpu_per_op_ns;
  t.handler_per_op_ns =
      prof.handler_per_op_ns + (reply_handled ? reply_bytes * 0.25 : 0.0);
  t.buffer_ops = buffer_ops;
  t.send_overhead_ns = prof.send_overhead_ns * rack_mult;
  t.recv_overhead_ns = prof.recv_overhead_ns * rack_mult;
  t.cores_for_cpu =
      static_cast<double>(cluster.cores_per_node) * prof.duplex_cores_frac;

  if (prof.bulk_synchronous) {
    // An exchange round fires when one per-partner buffer fills, i.e. every
    // buffer_ops * partners pushes; each round pays two barriers whose cost
    // grows with log2(P).
    t.rounds = std::max(1.0, ops_per_pe / (buffer_ops * partners));
    t.barrier_per_round_ns =
        2.0 * (1'000.0 * std::log2(std::max(2.0, total_pes)) + 2'000.0);
  }
  return t;
}

double mups(double total_ops, double makespan_ns) {
  return total_ops / makespan_ns * 1000.0;
}

}  // namespace

std::vector<ScalingPoint> model_histogram(
    bale::Backend backend, const std::vector<std::size_t>& cores,
    const ScalingParams& params) {
  const ImplProfile prof = profile_for(backend);
  std::vector<ScalingPoint> out;
  for (auto c : cores) {
    const std::size_t nodes =
        std::max<std::size_t>(1, c / params.cluster.cores_per_node);
    auto traffic = build_traffic(prof, params.cluster, c,
                                 params.updates_per_core, params.agg_limit,
                                 /*reply_bytes=*/0.0, false);
    auto r = simulate_node(params.cluster, nodes, traffic);
    const double total_ops =
        static_cast<double>(params.updates_per_core) * static_cast<double>(c);
    out.push_back({c, mups(total_ops, r.makespan_ns)});
  }
  return out;
}

std::vector<ScalingPoint> model_indexgather(
    bale::Backend backend, const std::vector<std::size_t>& cores,
    const ScalingParams& params) {
  ImplProfile prof = profile_for(backend);
  double reply_bytes = 8.0;
  bool reply_handled = true;
  if (backend == bale::Backend::kChapel) {
    // CopyAggregator resolves gathers with one-sided RDMA: no remote
    // handler work and no software reply path (paper Sec. IV-B2).
    reply_handled = false;
    prof.handler_per_op_ns = 0.4;
    prof.send_overhead_ns *= 0.6;
  }
  // Requests carry index+tag.
  prof.bytes_per_op = std::max(prof.bytes_per_op, 16.0);

  std::vector<ScalingPoint> out;
  for (auto c : cores) {
    const std::size_t nodes =
        std::max<std::size_t>(1, c / params.cluster.cores_per_node);
    ImplProfile point_prof = prof;
    if (backend == bale::Backend::kLamellarAm && nodes > 1) {
      // The hand-rolled AM gather cannot overlap its request stream with
      // the returned-value stream on the NIC the way the runtime's array
      // path does ("the runtime based aggregation is better able to
      // balance both sending and receiving data simultaneously",
      // Sec. IV-B2) — the Fig. 4 reversal vs Fig. 3.
      point_prof.wire_amplification = 1.5;
    }
    auto traffic = build_traffic(point_prof, params.cluster, c,
                                 params.updates_per_core, params.agg_limit,
                                 reply_bytes, reply_handled);
    auto r = simulate_node(params.cluster, nodes, traffic);
    const double total_ops =
        static_cast<double>(params.updates_per_core) * static_cast<double>(c);
    out.push_back({c, mups(total_ops, r.makespan_ns)});
  }
  return out;
}

std::vector<ScalingPoint> model_randperm(
    bale::RandpermImpl impl, const std::vector<std::size_t>& cores,
    const ScalingParams& params) {
  const ImplProfile prof = profile_for(impl);
  const double throws = randperm_throws_per_element(impl);
  std::vector<ScalingPoint> out;
  for (auto c : cores) {
    const std::size_t nodes =
        std::max<std::size_t>(1, c / params.cluster.cores_per_node);
    const auto ops_per_core = static_cast<std::size_t>(
        static_cast<double>(params.perm_per_core) * throws);
    auto traffic = build_traffic(prof, params.cluster, c, ops_per_core,
                                 params.agg_limit, /*reply_bytes=*/0.0, false);
    // Dart retries add round-trip latency chains: ~log2 rounds of shrinking
    // batches, each paying a network round trip.
    const double retry_rounds =
        impl == bale::RandpermImpl::kAmPush ? 0.0 : 5.0;
    auto r = simulate_node(params.cluster, nodes, traffic);
    const double seconds =
        (r.makespan_ns +
         retry_rounds * 2.0 * params.cluster.intra_rack_latency_ns) /
        1e9;
    out.push_back({c, seconds});
  }
  return out;
}

}  // namespace lamellar::sim
