#include "sim/engine.hpp"

#include "common/error.hpp"

namespace lamellar::sim {

void Simulator::at(sim_time t, UniqueFunction<void()> fn) {
  if (t < now_) throw Error("Simulator: event scheduled in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

sim_time Simulator::run() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the event must be moved out.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++executed_;
    ev.fn();
  }
  return now_;
}

}  // namespace lamellar::sim
