// Background time-series telemetry (observability, ISSUE 6).
//
// A low-rate sampler thread that wakes every `interval_ms`, snapshots every
// PE's metrics registry, and appends one JSONL line per PE per tick —
// counter *deltas* since the previous tick (so steady-state rates read
// directly off the lines) plus instantaneous gauge levels and high-water
// marks.  The runtime's hot paths are untouched: the sampler only reads the
// same relaxed atomics the end-of-run reporters read.
//
// Enabled by LAMELLAR_METRICS_INTERVAL_MS (0 = off); lines go to
// LAMELLAR_METRICS_FILE, or stderr when unset.  stop() emits one final tick
// so short runs still produce a sample, then joins the thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace lamellar::obs {

class TelemetrySampler {
 public:
  /// Returns one snapshot per PE.  Called from the sampler thread; must be
  /// safe to invoke concurrently with the runtime (registry snapshots are).
  using SnapshotFn = std::function<std::vector<MetricsSnapshot>()>;

  /// `path` empty means stderr.  The sampler is inert until start().
  TelemetrySampler(std::uint64_t interval_ms, std::string path,
                   SnapshotFn snapshot_fn);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Launch the sampler thread (no-op when interval is 0 or already
  /// started).
  void start();

  /// Emit a final tick, then join.  Idempotent; also run by the destructor.
  void stop();

  /// Ticks emitted so far (including the final one after stop()).
  [[nodiscard]] std::uint64_t ticks() const;

  /// Format one PE's sample as a single JSON object (exposed for tests).
  /// `prev` may be null for the first tick — deltas then equal the values.
  [[nodiscard]] static std::string format_line(
      std::uint64_t tick, std::uint64_t elapsed_ms,
      const MetricsSnapshot& cur, const MetricsSnapshot* prev);

 private:
  void run();
  void emit_tick();

  std::uint64_t interval_ms_;
  std::string path_;
  SnapshotFn snapshot_fn_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;

  std::vector<MetricsSnapshot> prev_;  // sampler thread only
  std::atomic<std::uint64_t> tick_count_{0};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace lamellar::obs
