#include "obs/telemetry.hpp"

#include <cinttypes>
#include <cstdio>

namespace lamellar::obs {

namespace {

// Append `"name":` with minimal JSON string escaping (metric names are
// ASCII identifiers, but don't trust that at a file boundary).
void append_key(std::string& out, const std::string& name) {
  out += '"';
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\":";
}

}  // namespace

TelemetrySampler::TelemetrySampler(std::uint64_t interval_ms, std::string path,
                                   SnapshotFn snapshot_fn)
    : interval_ms_(interval_ms),
      path_(std::move(path)),
      snapshot_fn_(std::move(snapshot_fn)) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  if (interval_ms_ == 0 || started_) return;
  started_ = true;
  stopping_ = false;
  start_time_ = std::chrono::steady_clock::now();
  prev_.clear();
  thread_ = std::thread([this] { run(); });
}

void TelemetrySampler::stop() {
  if (!started_) return;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

std::uint64_t TelemetrySampler::ticks() const {
  return tick_count_.load(std::memory_order_relaxed);
}

void TelemetrySampler::run() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    emit_tick();
    lock.lock();
  }
  lock.unlock();
  // Final tick so runs shorter than one interval still produce a sample
  // and the last partial interval is not lost.
  emit_tick();
}

std::string TelemetrySampler::format_line(std::uint64_t tick,
                                          std::uint64_t elapsed_ms,
                                          const MetricsSnapshot& cur,
                                          const MetricsSnapshot* prev) {
  char buf[128];
  std::string out;
  out.reserve(512);
  std::snprintf(buf, sizeof(buf),
                "{\"telemetry\":\"lamellar\",\"tick\":%" PRIu64
                ",\"elapsed_ms\":%" PRIu64 ",\"pe\":%zu,\"counters\":{",
                tick, elapsed_ms, cur.pe);
  out += buf;
  bool first = true;
  for (const auto& [name, value] : cur.counters) {
    std::uint64_t delta = value;
    if (prev != nullptr) delta = value - prev->counter(name);
    if (delta == 0) continue;  // steady-state lines stay short
    if (!first) out += ',';
    append_key(out, name);
    std::snprintf(buf, sizeof(buf), "%" PRIu64, delta);
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, vh] : cur.gauges) {
    if (!first) out += ',';
    append_key(out, name);
    std::snprintf(buf, sizeof(buf), "[%" PRId64 ",%" PRId64 "]", vh.first,
                  vh.second);
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

void TelemetrySampler::emit_tick() {
  std::vector<MetricsSnapshot> cur = snapshot_fn_();
  const auto elapsed_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
  const std::uint64_t tick = tick_count_.fetch_add(1) + 1;

  std::FILE* f = stderr;
  const bool own = !path_.empty();
  if (own) {
    f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) return;  // telemetry must never take the run down
  }
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const MetricsSnapshot* prev =
        i < prev_.size() ? &prev_[i] : nullptr;
    const std::string line = format_line(tick, elapsed_ms, cur[i], prev);
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
  }
  if (own) {
    std::fclose(f);
  } else {
    std::fflush(f);
  }
  prev_ = std::move(cur);
}

}  // namespace lamellar::obs
