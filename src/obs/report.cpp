#include "obs/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <map>

namespace lamellar::obs {

void print_summary(std::FILE* out,
                   const std::vector<MetricsSnapshot>& snaps) {
  if (snaps.empty()) return;
  // Union of names across PEs, so the table stays rectangular even when a
  // PE never touched a metric.
  std::map<std::string, std::vector<std::uint64_t>> counter_rows;
  std::map<std::string, std::vector<std::int64_t>> gauge_rows;
  std::map<std::string, std::vector<const HistogramSnapshot*>> hist_rows;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    for (const auto& [n, v] : snaps[i].counters) {
      auto& row = counter_rows[n];
      row.resize(snaps.size(), 0);
      row[i] = v;
    }
    for (const auto& [n, vm] : snaps[i].gauges) {
      auto& row = gauge_rows[n];
      row.resize(snaps.size(), 0);
      row[i] = vm.second;  // high-water mark
    }
    for (const auto& h : snaps[i].histograms) {
      auto& row = hist_rows[h.name];
      row.resize(snaps.size(), nullptr);
      row[i] = &h;
    }
  }

  std::fprintf(out, "\n# lamellar metrics (per PE)\n");
  std::fprintf(out, "%-28s", "metric");
  for (const auto& s : snaps) {
    std::fprintf(out, " %14s", ("pe" + std::to_string(s.pe)).c_str());
  }
  std::fprintf(out, "\n");
  for (const auto& [name, row] : counter_rows) {
    std::fprintf(out, "%-28s", name.c_str());
    for (auto v : row) std::fprintf(out, " %14" PRIu64, v);
    std::fprintf(out, "\n");
  }
  for (const auto& [name, row] : gauge_rows) {
    std::fprintf(out, "%-28s", (name + " (max)").c_str());
    for (auto v : row) std::fprintf(out, " %14" PRId64, v);
    std::fprintf(out, "\n");
  }
  for (const auto& [name, row] : hist_rows) {
    std::fprintf(out, "%-28s", (name + " (count)").c_str());
    for (const auto* h : row) {
      std::fprintf(out, " %14" PRIu64, h != nullptr ? h->count : 0);
    }
    std::fprintf(out, "\n%-28s", (name + " (mean)").c_str());
    for (const auto* h : row) {
      std::fprintf(out, " %14.1f", h != nullptr ? h->mean() : 0.0);
    }
    std::fprintf(out, "\n%-28s", (name + " (p50)").c_str());
    for (const auto* h : row) {
      std::fprintf(out, " %14" PRIu64, h != nullptr ? h->percentile(0.50) : 0);
    }
    std::fprintf(out, "\n%-28s", (name + " (p99)").c_str());
    for (const auto* h : row) {
      std::fprintf(out, " %14" PRIu64, h != nullptr ? h->percentile(0.99) : 0);
    }
    std::fprintf(out, "\n");
  }
}

void print_json(std::FILE* out, const std::vector<MetricsSnapshot>& snaps) {
  std::fprintf(out, "[");
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    std::fprintf(out, "%s%s", i == 0 ? "" : ",", snaps[i].to_json().c_str());
  }
  std::fprintf(out, "]\n");
}

std::string bench_json_line(const std::string& bench, const std::string& impl,
                            const MetricsSnapshot& snap) {
  return "{\"bench\":\"" + bench + "\",\"impl\":\"" + impl +
         "\",\"metrics\":" + snap.to_json() + "}";
}

std::string per_pe_path(const std::string& base, std::size_t pe) {
  const std::size_t dot = base.rfind('.');
  const std::size_t slash = base.rfind('/');
  const std::string tag = ".pe" + std::to_string(pe);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + tag;
  }
  return base.substr(0, dot) + tag + base.substr(dot);
}

}  // namespace lamellar::obs
