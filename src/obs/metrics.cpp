#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace lamellar::obs {

std::uint64_t HistogramSnapshot::quantile_bound(double p) const {
  if (count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > target) {
      return i == 0 ? 0 : (i >= 64 ? ~0ULL : (1ULL << i) - 1);
    }
  }
  return max;
}

std::uint64_t HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // 1-based target rank of the p-quantile sample.
  std::uint64_t rank = static_cast<std::uint64_t>(
      p * static_cast<double>(count) + 0.9999999999);
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    // Rank falls in bucket i, which covers [2^(i-1), 2^i) (bucket 0 holds
    // exactly the value 0; the top bucket also absorbs clamped overflow).
    if (i == 0) return 0;
    const double lo = static_cast<double>(1ULL << (i - 1));
    double hi = lo * 2.0;
    // The top bucket also absorbs clamped overflow (bucket_of >= 64), so
    // its true range extends past 2^63 up to the observed max.
    const double dmax = static_cast<double>(max);
    if (i == buckets.size() - 1 && dmax > hi) hi = dmax;
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(buckets[i]);
    const double v = lo + frac * (hi - lo);
    // Never report beyond the observed maximum: keeps the single-sample
    // case exact and the open-ended top bucket honest.  Compare in double
    // before narrowing — dmax can round up to 2^64, where a u64 cast of
    // `v` would be undefined.
    if (v >= dmax) return max;
    return static_cast<std::uint64_t>(v);
  }
  return max;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  MetricsSnapshot out = after;
  for (auto& [name, v] : out.counters) {
    const std::uint64_t prev = before.counter(name);
    v = v >= prev ? v - prev : 0;
  }
  for (auto& h : out.histograms) {
    const HistogramSnapshot* prev = before.histogram(h.name);
    if (prev == nullptr) continue;
    h.count = h.count >= prev->count ? h.count - prev->count : 0;
    h.sum = h.sum >= prev->sum ? h.sum - prev->sum : 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] = h.buckets[i] >= prev->buckets[i]
                         ? h.buckets[i] - prev->buckets[i]
                         : 0;
    }
    // max is a high-water mark, not subtractable: keep the overall max,
    // which upper-bounds the interval's.
  }
  return out;
}

void snapshot_accumulate(MetricsSnapshot& into, const MetricsSnapshot& delta) {
  if (into.empty()) {
    const pe_id pe = into.pe;
    into = delta;
    into.pe = pe == 0 ? delta.pe : pe;
    return;
  }
  for (const auto& [name, v] : delta.counters) {
    bool found = false;
    for (auto& [n, acc] : into.counters) {
      if (n == name) {
        acc += v;
        found = true;
        break;
      }
    }
    if (!found) into.counters.emplace_back(name, v);
  }
  for (const auto& [name, vm] : delta.gauges) {
    bool found = false;
    for (auto& [n, acc] : into.gauges) {
      if (n == name) {
        acc = vm;  // instantaneous level: latest wins
        found = true;
        break;
      }
    }
    if (!found) into.gauges.emplace_back(name, vm);
  }
  for (const auto& h : delta.histograms) {
    HistogramSnapshot* acc = nullptr;
    for (auto& cand : into.histograms) {
      if (cand.name == h.name) {
        acc = &cand;
        break;
      }
    }
    if (acc == nullptr) {
      into.histograms.push_back(h);
      continue;
    }
    acc->count += h.count;
    acc->sum += h.sum;
    acc->max = std::max(acc->max, h.max);
    for (std::size_t i = 0; i < acc->buckets.size(); ++i) {
      acc->buckets[i] += h.buckets[i];
    }
  }
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  char buf[320];
  out += "{\"pe\":" + std::to_string(pe) + ",\"counters\":{";
  bool first = true;
  for (const auto& [n, v] : counters) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",",
                  n.c_str(), v);
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [n, vm] : gauges) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"value\":%" PRId64 ",\"max\":%" PRId64 "}",
                  first ? "" : ",", n.c_str(), vm.first, vm.second);
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    const auto pct = h.percentiles();
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"max\":%" PRIu64 ",\"mean\":%.1f,\"p50\":%" PRIu64
                  ",\"p90\":%" PRIu64 ",\"p99\":%" PRIu64 "}",
                  first ? "" : ",", h.name.c_str(), h.count, h.sum, h.max,
                  h.mean(), pct.p50, pct.p90, pct.p99);
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (!enabled_) return inert_counter_;
  std::lock_guard lock(mu_);
  std::string key(name);
  auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return *it->second;
  counters_.emplace_back();
  counters_.back().name = key;
  Counter* slot = &counters_.back().slot;
  counter_index_.emplace(std::move(key), slot);
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (!enabled_) return inert_gauge_;
  std::lock_guard lock(mu_);
  std::string key(name);
  auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back();
  gauges_.back().name = key;
  Gauge* slot = &gauges_.back().slot;
  gauge_index_.emplace(std::move(key), slot);
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  if (!enabled_) return inert_histogram_;
  std::lock_guard lock(mu_);
  std::string key(name);
  auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) return *it->second;
  histograms_.emplace_back();
  histograms_.back().name = key;
  Histogram* slot = &histograms_.back().slot;
  histogram_index_.emplace(std::move(key), slot);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot(pe_id pe) const {
  MetricsSnapshot snap;
  snap.pe = pe;
  std::lock_guard lock(mu_);
  for (const auto& e : counters_) {
    snap.counters.emplace_back(e.name, e.slot.get());
  }
  for (const auto& e : gauges_) {
    snap.gauges.emplace_back(e.name, std::make_pair(e.slot.get(),
                                                    e.slot.max()));
  }
  for (const auto& e : histograms_) {
    HistogramSnapshot h;
    h.name = e.name;
    h.count = e.slot.count.load(std::memory_order_relaxed);
    h.sum = e.slot.sum.load(std::memory_order_relaxed);
    h.max = e.slot.max_value.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      h.buckets[i] = e.slot.buckets[i].load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(h));
  }
  // Deterministic ordering for tables and tests.
  std::sort(snap.counters.begin(), snap.counters.end());
  std::sort(snap.gauges.begin(), snap.gauges.end());
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

MetricsRegistry& MetricsRegistry::disabled_instance() {
  static MetricsRegistry inert(false);
  return inert;
}

}  // namespace lamellar::obs
