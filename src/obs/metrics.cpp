#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace lamellar::obs {

std::uint64_t HistogramSnapshot::quantile_bound(double p) const {
  if (count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > target) {
      return i == 0 ? 0 : (i >= 64 ? ~0ULL : (1ULL << i) - 1);
    }
  }
  return max;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  char buf[160];
  out += "{\"pe\":" + std::to_string(pe) + ",\"counters\":{";
  bool first = true;
  for (const auto& [n, v] : counters) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",",
                  n.c_str(), v);
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [n, vm] : gauges) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"value\":%" PRId64 ",\"max\":%" PRId64 "}",
                  first ? "" : ",", n.c_str(), vm.first, vm.second);
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"max\":%" PRIu64 ",\"mean\":%.1f}",
                  first ? "" : ",", h.name.c_str(), h.count, h.sum, h.max,
                  h.mean());
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (!enabled_) return inert_counter_;
  std::lock_guard lock(mu_);
  std::string key(name);
  auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return *it->second;
  counters_.emplace_back();
  counters_.back().name = key;
  Counter* slot = &counters_.back().slot;
  counter_index_.emplace(std::move(key), slot);
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (!enabled_) return inert_gauge_;
  std::lock_guard lock(mu_);
  std::string key(name);
  auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back();
  gauges_.back().name = key;
  Gauge* slot = &gauges_.back().slot;
  gauge_index_.emplace(std::move(key), slot);
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  if (!enabled_) return inert_histogram_;
  std::lock_guard lock(mu_);
  std::string key(name);
  auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) return *it->second;
  histograms_.emplace_back();
  histograms_.back().name = key;
  Histogram* slot = &histograms_.back().slot;
  histogram_index_.emplace(std::move(key), slot);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot(pe_id pe) const {
  MetricsSnapshot snap;
  snap.pe = pe;
  std::lock_guard lock(mu_);
  for (const auto& e : counters_) {
    snap.counters.emplace_back(e.name, e.slot.get());
  }
  for (const auto& e : gauges_) {
    snap.gauges.emplace_back(e.name, std::make_pair(e.slot.get(),
                                                    e.slot.max()));
  }
  for (const auto& e : histograms_) {
    HistogramSnapshot h;
    h.name = e.name;
    h.count = e.slot.count.load(std::memory_order_relaxed);
    h.sum = e.slot.sum.load(std::memory_order_relaxed);
    h.max = e.slot.max_value.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      h.buckets[i] = e.slot.buckets[i].load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(h));
  }
  // Deterministic ordering for tables and tests.
  std::sort(snap.counters.begin(), snap.counters.end());
  std::sort(snap.gauges.begin(), snap.gauges.end());
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

MetricsRegistry& MetricsRegistry::disabled_instance() {
  static MetricsRegistry inert(false);
  return inert;
}

}  // namespace lamellar::obs
