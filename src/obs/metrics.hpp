// Per-PE metrics registry (observability layer, ISSUE 1).
//
// Counters, gauges, and log2-bucketed latency histograms, registered by
// name.  Instrument sites resolve their handles once (a mutex-protected
// name lookup at construction time) and then update them with relaxed
// atomics — the hot path is a single uncontended fetch_add on a
// cache-line-padded word, cheap enough to stay on even in benchmark runs.
//
// A registry can be constructed disabled (LAMELLAR_METRICS=off): lookups
// then hand back shared inert slots that are not recorded as entries, so
// snapshots are empty and the instrument sites stay branch-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace lamellar::obs {

/// Monotone event counter.  Padded so independent counters never share a
/// cache line (the registry hands out one slot per name per PE).
struct alignas(kCacheLine) Counter {
  std::atomic<std::uint64_t> value{0};

  void inc(std::uint64_t n = 1) {
    value.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const {
    return value.load(std::memory_order_relaxed);
  }
};

/// Instantaneous level (queue depth, live objects) with a high-water mark.
///
/// Two update idioms, both safe under concurrency:
///   * set(v)   — an absolute level the caller derives from its own source
///                of truth (e.g. a size it just computed under a lock);
///   * add(d) / sub(d) — delta updates where the gauge itself is the source
///                of truth.  These are a single fetch_add, so concurrent
///                deltas never lose updates (the old `set(get()±1)` idiom
///                was a racy read-modify-write, and its stale reads could
///                also publish a too-low level that a concurrent set()
///                would then miss in the high-water race).
struct alignas(kCacheLine) Gauge {
  std::atomic<std::int64_t> value{0};
  std::atomic<std::int64_t> high_water{0};

  void set(std::int64_t v) {
    value.store(v, std::memory_order_relaxed);
    raise_high_water(v);
  }
  void add(std::int64_t d) {
    const std::int64_t v = value.fetch_add(d, std::memory_order_relaxed) + d;
    if (d > 0) raise_high_water(v);
  }
  void sub(std::int64_t d) { add(-d); }
  [[nodiscard]] std::int64_t get() const {
    return value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const {
    return high_water.load(std::memory_order_relaxed);
  }

 private:
  void raise_high_water(std::int64_t v) {
    std::int64_t hw = high_water.load(std::memory_order_relaxed);
    while (v > hw && !high_water.compare_exchange_weak(
                         hw, v, std::memory_order_relaxed)) {
    }
  }
};

/// Log2-bucketed value histogram: bucket i counts values whose bit width is
/// i, i.e. [2^(i-1), 2^i), with 0 landing in bucket 0.  64 buckets cover
/// the full u64 range, so latencies in nanoseconds never saturate.
struct alignas(kCacheLine) Histogram {
  static constexpr std::size_t kBuckets = 64;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> max_value{0};

  static std::size_t bucket_of(std::uint64_t v) {
    return v == 0 ? 0 : static_cast<std::size_t>(64 - __builtin_clzll(v));
  }

  void record(std::uint64_t v) {
    buckets[bucket_of(v) < kBuckets ? bucket_of(v) : kBuckets - 1].fetch_add(
        1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t m = max_value.load(std::memory_order_relaxed);
    while (v > m && !max_value.compare_exchange_weak(
                        m, v, std::memory_order_relaxed)) {
    }
  }
};

/// Point-in-time copy of one histogram, usable without atomics.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of the bucket holding the p-quantile (p in [0,1]).
  [[nodiscard]] std::uint64_t quantile_bound(double p) const;

  /// Interpolated p-quantile (p in [0,1]): locate the log2 bucket holding
  /// the target rank and interpolate linearly within its value range
  /// [2^(i-1), 2^i).  Results are clamped to the observed max, so a
  /// single-sample histogram returns that sample exactly and the open-ended
  /// top bucket never reports beyond what was recorded.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  /// The standard latency triple, in recording units.
  struct Percentiles {
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
  };
  [[nodiscard]] Percentiles percentiles() const {
    return {percentile(0.50), percentile(0.90), percentile(0.99)};
  }
};

/// Plain-struct snapshot of a whole registry: what tests and the bench
/// drivers consume, and what the end-of-run reporters format.
struct MetricsSnapshot {
  pe_id pe = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// name -> (value, high-water mark)
  std::vector<std::pair<std::string, std::pair<std::int64_t, std::int64_t>>>
      gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name; 0 when the counter was never registered.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const;
  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Compact single-object JSON (histograms as
  /// {count,sum,max,mean,p50,p90,p99}).
  [[nodiscard]] std::string to_json() const;
};

/// Per-name counter and histogram deltas between two snapshots of the same
/// registry (`after` taken later than `before`).  Used by bench drivers to
/// attribute metrics to one phase of a multi-phase run: counters subtract,
/// histogram counts/sums/buckets subtract (percentiles then describe only
/// the interval), gauges keep their `after` state.  Names present only in
/// `after` pass through unchanged.
MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

/// Accumulate `delta` (typically a snapshot_delta result) into `into`:
/// counters and histogram counts/sums/buckets add, histogram max takes the
/// larger, gauges take `delta`'s (latest) state.  Names absent from `into`
/// are appended.  Used by bench drivers whose per-impl phases interleave,
/// so one impl's intervals must be summed across the run.
void snapshot_accumulate(MetricsSnapshot& into, const MetricsSnapshot& delta);

/// One registry per PE.  Registration (name lookup) takes a mutex and is
/// meant for construction time; the returned references stay valid for the
/// registry's lifetime (entries live in deques and never move).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot(pe_id pe = 0) const;

  /// Process-wide inert registry: layers constructed without a real
  /// registry resolve their handles here, so instrument sites never need a
  /// null check.
  static MetricsRegistry& disabled_instance();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    T slot;
  };

  bool enabled_;
  mutable std::mutex mu_;
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;

  // Shared inert slots handed out when disabled.
  Counter inert_counter_;
  Gauge inert_gauge_;
  Histogram inert_histogram_;
};

}  // namespace lamellar::obs
