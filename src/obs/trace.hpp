// Trace-event layer (observability, ISSUE 1).
//
// Fixed-capacity per-thread ring buffers of spans and instants stamped with
// the owning PE's *virtual* clock, exported as Chrome trace_event JSON
// (loadable in chrome://tracing or Perfetto).  Each ring is written only by
// its owning thread; export happens after the worker threads are joined, so
// the rings need no atomics.  When the ring wraps, the oldest events are
// overwritten — a bounded-memory flight recorder, not a lossless log.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace lamellar::obs {

struct TraceEvent {
  const char* name = "";  // must point to a string literal / static storage
  const char* category = "";
  pe_id pe = 0;
  sim_nanos ts = 0;   // virtual-clock nanoseconds
  sim_nanos dur = 0;  // span duration (0 for instants)
  char phase = 'X';   // 'X' complete span, 'i' instant, 's'/'t'/'f' flow
  std::uint64_t arg = 0;
  /// Flow-binding id for phases 's' (start), 't' (step), 'f' (end): events
  /// sharing a flow id render as one causal arrow chain in Perfetto and are
  /// stitched across per-PE trace files by tools/trace_stitch.py.  Ignored
  /// for other phases.
  std::uint64_t flow = 0;
};

/// Single-writer ring of trace events.  Capacity is rounded up to a power
/// of two; once full, new events overwrite the oldest.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity, std::uint32_t tid);

  void record(const TraceEvent& e) {
    events_[head_ & mask_] = e;
    ++head_;
  }

  [[nodiscard]] std::uint32_t tid() const { return tid_; }
  [[nodiscard]] std::size_t capacity() const { return events_.size(); }
  [[nodiscard]] std::uint64_t recorded() const { return head_; }

  /// Events currently held, oldest first (at most capacity()).
  [[nodiscard]] std::vector<TraceEvent> drain_ordered() const;

 private:
  std::vector<TraceEvent> events_;
  std::size_t mask_;
  std::uint64_t head_ = 0;
  std::uint32_t tid_;
};

/// Owns one ring per participating thread.  Thread->ring resolution is a
/// thread_local cache keyed by a process-unique collector id, so the lookup
/// on the hot path is two loads and a compare.
class TraceCollector {
 public:
  explicit TraceCollector(bool enabled, std::size_t ring_capacity = 1 << 16);

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// The calling thread's ring (registered on first use).
  TraceRing& ring();

  void record(const TraceEvent& e) {
    if (enabled_) ring().record(e);
  }

  [[nodiscard]] std::size_t num_rings() const;

  /// Serialize all rings as a Chrome trace_event JSON object.  Call only
  /// when writer threads are quiescent (joined or barriered).  When
  /// `pe_filter` is non-negative, only events stamped with that PE are
  /// emitted — the per-PE export mode behind LAMELLAR_TRACE_PER_PE.
  [[nodiscard]] std::string to_chrome_json(std::int64_t pe_filter = -1) const;

  /// Write to_chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path,
                         std::int64_t pe_filter = -1) const;

 private:
  TraceRing* register_ring();

  bool enabled_;
  std::size_t ring_capacity_;
  std::uint64_t id_;
  mutable std::mutex mu_;
  std::deque<std::unique_ptr<TraceRing>> rings_;
  std::map<std::thread::id, TraceRing*> by_thread_;
};

/// RAII span: stamps start on construction, records on destruction.
/// Inert (no ring lookup) when the collector is null or disabled.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, const char* name, const char* category,
            pe_id pe, sim_nanos now)
      : collector_(collector != nullptr && collector->enabled() ? collector
                                                                : nullptr),
        name_(name),
        category_(category),
        pe_(pe),
        start_(now) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Close the span at virtual time `now`.
  void finish(sim_nanos now, std::uint64_t arg = 0) {
    if (collector_ == nullptr) return;
    collector_->record({name_, category_, pe_, start_,
                        now >= start_ ? now - start_ : 0, 'X', arg});
    collector_ = nullptr;
  }

 private:
  TraceCollector* collector_;
  const char* name_;
  const char* category_;
  pe_id pe_;
  sim_nanos start_;
};

}  // namespace lamellar::obs
