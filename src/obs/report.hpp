// End-of-run metrics reporting: the human-readable per-PE summary table
// (LAMELLAR_METRICS=summary) and machine-readable JSON (LAMELLAR_METRICS=
// json), plus the one-line snapshot the bench drivers append to their
// timing output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace lamellar::obs {

/// Per-PE table: one row per metric, one column per PE.  Gauges show their
/// high-water mark; histograms show count and mean.
void print_summary(std::FILE* out, const std::vector<MetricsSnapshot>& snaps);

/// One JSON array with one object per PE.
void print_json(std::FILE* out, const std::vector<MetricsSnapshot>& snaps);

/// Compact one-line JSON record for bench output files:
/// {"bench":...,"impl":...,"metrics":{...}}.
std::string bench_json_line(const std::string& bench, const std::string& impl,
                            const MetricsSnapshot& snap);

/// Tag an output path with a PE id before its extension:
/// "trace.json" -> "trace.pe3.json"; no extension -> "trace.pe3".  Used for
/// per-PE trace files and for per-process metrics/telemetry files under the
/// process-separated backend, so concurrent writers never share a file.
std::string per_pe_path(const std::string& base, std::size_t pe);

}  // namespace lamellar::obs
