#include "obs/trace.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>

namespace lamellar::obs {

namespace {

std::size_t round_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t next_collector_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity, std::uint32_t tid)
    : events_(round_pow2(capacity == 0 ? 1 : capacity)),
      mask_(events_.size() - 1),
      tid_(tid) {}

std::vector<TraceEvent> TraceRing::drain_ordered() const {
  const std::uint64_t held =
      head_ < events_.size() ? head_ : events_.size();
  std::vector<TraceEvent> out;
  out.reserve(held);
  for (std::uint64_t i = head_ - held; i < head_; ++i) {
    out.push_back(events_[i & mask_]);
  }
  return out;
}

TraceCollector::TraceCollector(bool enabled, std::size_t ring_capacity)
    : enabled_(enabled),
      ring_capacity_(ring_capacity),
      id_(next_collector_id()) {}

TraceRing& TraceCollector::ring() {
  struct Cache {
    std::uint64_t collector_id = 0;
    TraceRing* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.collector_id != id_) {
    cache.ring = register_ring();
    cache.collector_id = id_;
  }
  return *cache.ring;
}

TraceRing* TraceCollector::register_ring() {
  std::lock_guard lock(mu_);
  auto it = by_thread_.find(std::this_thread::get_id());
  if (it != by_thread_.end()) return it->second;
  rings_.push_back(std::make_unique<TraceRing>(
      ring_capacity_, static_cast<std::uint32_t>(rings_.size() + 1)));
  TraceRing* r = rings_.back().get();
  by_thread_.emplace(std::this_thread::get_id(), r);
  return r;
}

std::size_t TraceCollector::num_rings() const {
  std::lock_guard lock(mu_);
  return rings_.size();
}

std::string TraceCollector::to_chrome_json(std::int64_t pe_filter) const {
  std::lock_guard lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const auto& ring : rings_) {
    for (const auto& e : ring->drain_ordered()) {
      if (pe_filter >= 0 && static_cast<std::int64_t>(e.pe) != pe_filter) {
        continue;
      }
      // Chrome trace timestamps are microseconds; keep ns precision with a
      // fractional part.
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":%zu,"
          "\"tid\":%u,\"ts\":%.3f",
          first ? "" : ",", e.name, e.category, e.phase, e.pe, ring->tid(),
          static_cast<double>(e.ts) / 1000.0);
      out += buf;
      if (e.phase == 'X') {
        std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                      static_cast<double>(e.dur) / 1000.0);
        out += buf;
      }
      if (e.phase == 'i') out += ",\"s\":\"t\"";
      if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
        // Flow events: the id chains them; bind to the enclosing slice so
        // Perfetto draws the arrows at the stage spans.
        std::snprintf(buf, sizeof(buf), ",\"id\":%" PRIu64 ",\"bp\":\"e\"",
                      e.flow);
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"v\":%" PRIu64 "}}",
                    e.arg);
      out += buf;
      first = false;
    }
  }
  out += "]}";
  return out;
}

bool TraceCollector::write_chrome_json(const std::string& path,
                                       std::int64_t pe_filter) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json(pe_filter);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace lamellar::obs
