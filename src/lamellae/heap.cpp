#include "lamellae/heap.hpp"

#include <string>

namespace lamellar {

// Internal bookkeeping is BASE-RELATIVE: free_/live_ keys are offsets from
// base_, never base-absolute values.  The arena-absolute offsets the public
// API trades in are formed/stripped only at the boundary.  This matters for
// the process-separated backend: heap replicas in different processes (and
// a heap whose arena is mapped at several addresses, see the MAP_FIXED
// regression test) must carry state whose meaning is independent of where —
// or at what base — the arena lives.

OffsetHeap::OffsetHeap(std::size_t base, std::size_t size)
    : base_(base), size_(size) {
  if (size > 0) free_.emplace(0, size);
}

std::size_t OffsetHeap::alloc(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (!is_pow2(align)) throw Error("OffsetHeap: alignment must be power of 2");
  std::lock_guard lock(mu_);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const std::size_t start = it->first;
    const std::size_t len = it->second;
    // Alignment is a property of the absolute offset the caller sees, so
    // align in absolute space and convert back.
    const std::size_t aligned = align_up(base_ + start, align) - base_;
    const std::size_t pad = aligned - start;
    if (pad + bytes > len) continue;

    const std::size_t total = pad + bytes;
    const std::size_t rest = len - total;
    free_.erase(it);
    if (rest > 0) free_.emplace(start + total, rest);
    live_.emplace(aligned, Block{start, total});
    used_ += total;
    return base_ + aligned;
  }
  throw OutOfMemoryError("OffsetHeap: cannot allocate " +
                         std::to_string(bytes) + " bytes (" +
                         std::to_string(size_ - used_) + " free, fragmented)");
}

void OffsetHeap::free(std::size_t offset) {
  std::lock_guard lock(mu_);
  if (offset < base_) {
    throw Error("OffsetHeap: free of offset " + std::to_string(offset) +
                " below the heap base");
  }
  auto it = live_.find(offset - base_);
  if (it == live_.end()) {
    throw Error("OffsetHeap: free of unknown offset " + std::to_string(offset));
  }
  Block blk = it->second;
  live_.erase(it);
  used_ -= blk.len;

  // Coalesce with successor.
  auto next = free_.lower_bound(blk.start);
  if (next != free_.end() && blk.start + blk.len == next->first) {
    blk.len += next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor.
  auto prev = free_.lower_bound(blk.start);
  if (prev != free_.begin()) {
    --prev;
    if (prev->first + prev->second == blk.start) {
      prev->second += blk.len;
      return;
    }
  }
  free_.emplace(blk.start, blk.len);
}

std::size_t OffsetHeap::bytes_free() const {
  std::lock_guard lock(mu_);
  return size_ - used_;
}

std::size_t OffsetHeap::bytes_used() const {
  std::lock_guard lock(mu_);
  return used_;
}

std::size_t OffsetHeap::live_allocations() const {
  std::lock_guard lock(mu_);
  return live_.size();
}

std::size_t OffsetHeap::debug_validate() const {
  std::lock_guard lock(mu_);
  std::size_t free_total = 0;
  std::size_t prev_end = 0;
  bool first = true;
  for (const auto& [start, len] : free_) {
    if (len == 0) throw Error("OffsetHeap: zero-length free block");
    if (start + len > size_ || start + len < start) {
      throw Error("OffsetHeap: free block out of range");
    }
    if (!first && start <= prev_end) {
      throw Error(start < prev_end
                      ? "OffsetHeap: overlapping free blocks"
                      : "OffsetHeap: adjacent free blocks not coalesced");
    }
    prev_end = start + len;
    first = false;
    free_total += len;
  }
  std::size_t live_total = 0;
  for (const auto& [offset, blk] : live_) {
    if (blk.start + blk.len > size_) {
      throw Error("OffsetHeap: live block out of range");
    }
    if (offset < blk.start || offset >= blk.start + blk.len) {
      throw Error("OffsetHeap: live offset outside its block");
    }
    auto overlap = free_.lower_bound(blk.start + blk.len);
    if (overlap != free_.begin()) {
      --overlap;
      if (overlap->first + overlap->second > blk.start) {
        throw Error("OffsetHeap: live block overlaps a free block");
      }
    }
    live_total += blk.len;
  }
  if (live_total != used_) {
    throw Error("OffsetHeap: live block sum disagrees with bytes_used");
  }
  if (free_total + used_ != size_) {
    throw Error("OffsetHeap: bytes_used + bytes_free != size");
  }
  return free_.size();
}

}  // namespace lamellar
