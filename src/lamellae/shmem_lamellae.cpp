#include "lamellae/shmem_lamellae.hpp"

namespace lamellar {

ShmemLamellaeGroup::ShmemLamellaeGroup(std::size_t num_pes, Layout layout,
                                       PerfParams params, PeMapping mapping,
                                       bool virtual_time, bool metrics_enabled)
    : layout_(layout),
      fabric_(num_pes, layout.total(), params, mapping, virtual_time,
              metrics_enabled),
      symmetric_heap_(layout.internal_bytes, layout.symmetric_bytes),
      alloc_seq_(num_pes) {
  const std::size_t onesided_base =
      layout.internal_bytes + layout.symmetric_bytes;
  onesided_heaps_.reserve(num_pes);
  for (std::size_t i = 0; i < num_pes; ++i) {
    onesided_heaps_.push_back(
        std::make_unique<OffsetHeap>(onesided_base, layout.onesided_bytes));
  }
}

std::unique_ptr<ShmemLamellae> ShmemLamellaeGroup::endpoint(pe_id pe) {
  return std::make_unique<ShmemLamellae>(*this, pe);
}

void ShmemLamellaeGroup::collective_free(std::size_t offset,
                                         std::size_t participants) {
  CollectiveShard& shard = free_shard(offset);
  std::unique_lock lock(shard.mu);
  auto [it, inserted] = shard.pending_frees.try_emplace(offset);
  it->second.participants = participants;
  if (++it->second.calls == participants) {
    shard.pending_frees.erase(it);
    symmetric_heap_.free(offset);
  }
}

std::size_t ShmemLamellae::alloc_symmetric(std::size_t bytes,
                                           std::size_t align) {
  // World-wide collectives use a per-PE sequence number in a reserved key
  // space; team collectives pass their own keys via the _group variant.
  // The sequence must match across PEs, so the key carries no PE bits.
  const std::uint64_t key =
      (1ULL << 63) |
      group_.alloc_seq_[pe_].fetch_add(1, std::memory_order_relaxed);
  return alloc_symmetric_group(key, num_pes(), bytes, align);
}

std::size_t ShmemLamellae::alloc_symmetric_group(std::uint64_t key,
                                                 std::size_t participants,
                                                 std::size_t bytes,
                                                 std::size_t align) {
  ShmemLamellaeGroup::CollectiveShard& shard = group_.alloc_shard(key);
  std::unique_lock lock(shard.mu);
  auto it = shard.pending_allocs.find(key);
  if (it == shard.pending_allocs.end()) {
    const std::size_t offset = group_.symmetric_heap_.alloc(bytes, align);
    if (participants > 1) {
      shard.pending_allocs.emplace(
          key, ShmemLamellaeGroup::PendingAlloc{offset, participants - 1});
    }
    return offset;
  }
  const std::size_t offset = it->second.offset;
  if (--it->second.remaining == 0) shard.pending_allocs.erase(it);
  return offset;
}

void ShmemLamellae::free_symmetric(std::size_t offset) {
  group_.collective_free(offset, num_pes());
}

void ShmemLamellae::free_symmetric_group(std::size_t offset,
                                         std::size_t participants) {
  group_.collective_free(offset, participants);
}

std::size_t ShmemLamellae::alloc_onesided(std::size_t bytes,
                                          std::size_t align) {
  return group_.onesided_heaps_[pe_]->alloc(bytes, align);
}

void ShmemLamellae::free_onesided(std::size_t offset) {
  group_.onesided_heaps_[pe_]->free(offset);
}

}  // namespace lamellar
