// The Lamellae interface (paper Sec. III-A): the boundary between the
// runtime and a network backend.
//
// Exactly as in the paper, a Lamellae knows how to (de)initialize, report PE
// identity, (de)allocate RDMA memory regions, perform remote put/get
// transfers, run barriers, and move serialized message buffers between PEs.
// Implementations here: ShmemLamellae (many PEs, in-process arenas over
// ShmemFabric — models both the paper's ROFI and Shmem lamellae, with a
// PeMapping deciding which transfers are "inter-node") and SmpLamellae
// (single PE, pure local).
#pragma once

#include <chrono>
#include <cstdint>
#include <span>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "fabric/perf_model.hpp"
#include "fabric/shmem_fabric.hpp"
#include "fabric/virtual_clock.hpp"

namespace lamellar {

class Lamellae {
 public:
  virtual ~Lamellae() = default;

  [[nodiscard]] virtual pe_id my_pe() const = 0;
  [[nodiscard]] virtual std::size_t num_pes() const = 0;

  /// Base of this PE's registered memory arena.
  virtual std::byte* base() = 0;

  // ---- RDMA memory-region management ----

  /// Collective: every PE must call with identical arguments and in the same
  /// order; the same offset is returned on all PEs.  Blocks only the calling
  /// thread (paper Sec. III-A1).
  virtual std::size_t alloc_symmetric(std::size_t bytes,
                                      std::size_t align) = 0;

  /// Collective release; storage is reclaimed when the last PE calls.
  virtual void free_symmetric(std::size_t offset) = 0;

  /// Team-scoped collective allocation: `key` identifies the collective
  /// instance (identical on all participants, unique per call) and
  /// `participants` how many PEs take part.  Same offset returned to all.
  virtual std::size_t alloc_symmetric_group(std::uint64_t key,
                                            std::size_t participants,
                                            std::size_t bytes,
                                            std::size_t align) = 0;

  /// Team-scoped collective release.
  virtual void free_symmetric_group(std::size_t offset,
                                    std::size_t participants) = 0;

  /// One-sided allocation from this PE's dynamic heap.
  virtual std::size_t alloc_onesided(std::size_t bytes, std::size_t align) = 0;
  virtual void free_onesided(std::size_t offset) = 0;

  // ---- RDMA transfers (unsafe tier: no access control) ----
  virtual void put(pe_id dst, std::size_t dst_offset,
                   std::span<const std::byte> data) = 0;
  virtual void get(pe_id src, std::size_t remote_offset,
                   std::span<std::byte> out) = 0;

  /// get() charged at the pipelined (back-to-back descriptor) rate.
  virtual void get_pipelined(pe_id src, std::size_t remote_offset,
                             std::span<std::byte> out) = 0;

  // ---- remote atomics on 64-bit words in the arena ----
  virtual std::uint64_t atomic_fetch_add_u64(pe_id dst, std::size_t offset,
                                             std::uint64_t v) = 0;
  virtual std::uint64_t atomic_load_u64(pe_id dst, std::size_t offset) = 0;
  virtual void atomic_store_u64(pe_id dst, std::size_t offset,
                                std::uint64_t v) = 0;
  virtual bool atomic_cas_u64(pe_id dst, std::size_t offset,
                              std::uint64_t& expected,
                              std::uint64_t desired) = 0;

  // ---- serialized message transport ----

  /// Attempt to hand a finished buffer to the fabric.  On success the
  /// buffer is consumed (moved from); false means the destination is
  /// backpressured and the buffer is untouched — the caller should make
  /// progress (drain its own inbox) and retry.
  virtual bool try_send(pe_id dst, ByteBuffer& buf) = 0;

  /// Pop one incoming message buffer, if any.
  virtual bool poll(FabricMessage& out) = 0;

  [[nodiscard]] virtual bool inbox_empty() const = 0;

  // ---- synchronization / accounting ----
  virtual void barrier() = 0;
  virtual VirtualClock& clock() = 0;

  /// Monotonic nanoseconds for age/deadline decisions (lane age stamps,
  /// controller tick cadence).  Distinct from clock(): the virtual clock
  /// only advances when perf-model charging is enabled, so backends where
  /// it would sit at zero (virtual time off, or the mmap backend's real
  /// processes) must report real steady-clock time instead.
  [[nodiscard]] virtual sim_nanos mono_now() const { return real_now_ns(); }

 protected:
  [[nodiscard]] static sim_nanos real_now_ns() {
    return static_cast<sim_nanos>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 public:

  /// This PE's metrics registry (observability layer).  Always valid; an
  /// inert registry is returned when metrics are disabled.
  virtual obs::MetricsRegistry& metrics() = 0;

  [[nodiscard]] virtual const PerfParams& params() const = 0;

  /// Charge modeled host-side time to this PE.
  virtual void charge(double ns) = 0;

  /// True when src->dst crosses a modeled node boundary.
  [[nodiscard]] virtual bool remote_to(pe_id dst) const = 0;

  /// PEs co-located per modeled node (the RouteGrid uses this to align
  /// 2-hop relay rows with nodes).  Backends without a node concept report 1.
  [[nodiscard]] virtual std::size_t pes_per_node() const { return 1; }
};

}  // namespace lamellar
