// SmpLamellae: single-PE backend (paper Sec. III-A3).
//
// Targets single-process multi-threaded applications: exactly one PE, no
// remote transfers, barriers are no-ops over one participant, and message
// "sends" loop back into the local inbox.  Implemented as a thin owner of a
// one-PE ShmemLamellaeGroup so the code path matches the distributed
// backends exactly (the paper highlights this transparency goal for its
// Shmem lamellae; we extend it to SMP).  The AM engine's local-execution
// bypass means no serialization actually occurs for local AMs, matching the
// paper's description of the SMP lamellae.
#pragma once

#include <memory>

#include "lamellae/shmem_lamellae.hpp"

namespace lamellar {

class SmpLamellae final : public Lamellae {
 public:
  explicit SmpLamellae(ShmemLamellaeGroup::Layout layout = {},
                       bool virtual_time = false);

  [[nodiscard]] pe_id my_pe() const override { return 0; }
  [[nodiscard]] std::size_t num_pes() const override { return 1; }
  std::byte* base() override { return inner_->base(); }

  std::size_t alloc_symmetric(std::size_t bytes, std::size_t align) override {
    return inner_->alloc_symmetric(bytes, align);
  }
  void free_symmetric(std::size_t offset) override {
    inner_->free_symmetric(offset);
  }
  std::size_t alloc_symmetric_group(std::uint64_t key,
                                    std::size_t participants,
                                    std::size_t bytes,
                                    std::size_t align) override {
    return inner_->alloc_symmetric_group(key, participants, bytes, align);
  }
  void free_symmetric_group(std::size_t offset,
                            std::size_t participants) override {
    inner_->free_symmetric_group(offset, participants);
  }
  std::size_t alloc_onesided(std::size_t bytes, std::size_t align) override {
    return inner_->alloc_onesided(bytes, align);
  }
  void free_onesided(std::size_t offset) override {
    inner_->free_onesided(offset);
  }

  void put(pe_id dst, std::size_t dst_offset,
           std::span<const std::byte> data) override {
    inner_->put(dst, dst_offset, data);
  }
  void get(pe_id src, std::size_t remote_offset,
           std::span<std::byte> out) override {
    inner_->get(src, remote_offset, out);
  }
  void get_pipelined(pe_id src, std::size_t remote_offset,
                     std::span<std::byte> out) override {
    inner_->get_pipelined(src, remote_offset, out);
  }

  std::uint64_t atomic_fetch_add_u64(pe_id dst, std::size_t offset,
                                     std::uint64_t v) override {
    return inner_->atomic_fetch_add_u64(dst, offset, v);
  }
  std::uint64_t atomic_load_u64(pe_id dst, std::size_t offset) override {
    return inner_->atomic_load_u64(dst, offset);
  }
  void atomic_store_u64(pe_id dst, std::size_t offset,
                        std::uint64_t v) override {
    inner_->atomic_store_u64(dst, offset, v);
  }
  bool atomic_cas_u64(pe_id dst, std::size_t offset, std::uint64_t& expected,
                      std::uint64_t desired) override {
    return inner_->atomic_cas_u64(dst, offset, expected, desired);
  }

  bool try_send(pe_id dst, ByteBuffer& buf) override {
    return inner_->try_send(dst, buf);
  }
  bool poll(FabricMessage& out) override { return inner_->poll(out); }
  [[nodiscard]] bool inbox_empty() const override {
    return inner_->inbox_empty();
  }

  void barrier() override { inner_->barrier(); }
  VirtualClock& clock() override { return inner_->clock(); }
  [[nodiscard]] sim_nanos mono_now() const override {
    return inner_->mono_now();
  }
  obs::MetricsRegistry& metrics() override { return inner_->metrics(); }
  [[nodiscard]] const PerfParams& params() const override {
    return inner_->params();
  }
  void charge(double ns) override { inner_->charge(ns); }
  [[nodiscard]] bool remote_to(pe_id) const override { return false; }

 private:
  std::unique_ptr<ShmemLamellaeGroup> group_;
  std::unique_ptr<ShmemLamellae> inner_;
};

}  // namespace lamellar
