// ShmemLamellae: the in-process, multi-PE Lamellae.
//
// Plays the role of both the paper's ROFI Lamellae (when given a PeMapping
// that spreads PEs across modeled nodes) and its Shmem Lamellae (all PEs on
// one node).  All PEs share one ShmemFabric; each PE's arena is split into
// [internal | symmetric heap | one-sided heap], mirroring the paper's
// layout: a runtime-reserved region plus a dynamic heap.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lamellae/heap.hpp"
#include "lamellae/lamellae.hpp"

namespace lamellar {

class ShmemLamellae;

/// World-wide state shared by the per-PE ShmemLamellae endpoints.
class ShmemLamellaeGroup {
 public:
  struct Layout {
    std::size_t internal_bytes = 1 * 1024 * 1024;
    std::size_t symmetric_bytes = 64 * 1024 * 1024;
    std::size_t onesided_bytes = 32 * 1024 * 1024;
    [[nodiscard]] std::size_t total() const {
      return internal_bytes + symmetric_bytes + onesided_bytes;
    }
  };

  ShmemLamellaeGroup(std::size_t num_pes, Layout layout,
                     PerfParams params = paper_perf_params(),
                     PeMapping mapping = PeMapping{},
                     bool virtual_time = true, bool metrics_enabled = true);

  /// Build the endpoint for one PE.  Endpoints borrow the group; the group
  /// must outlive them.
  std::unique_ptr<ShmemLamellae> endpoint(pe_id pe);

  ShmemFabric& fabric() { return fabric_; }
  [[nodiscard]] const Layout& layout() const { return layout_; }

  /// Introspection for tests and the stress harness: the per-PE one-sided
  /// heap (invariant checks at quiesce points) and the shared symmetric
  /// heap.  The heaps are internally locked; callers get no allocation
  /// authority they did not already have via alloc/free.
  OffsetHeap& onesided_heap(pe_id pe) { return *onesided_heaps_[pe]; }
  OffsetHeap& symmetric_heap() { return symmetric_heap_; }

 private:
  friend class ShmemLamellae;

  // Collective symmetric allocation bookkeeping: all PEs perform the same
  // sequence of collective calls (standard SPMD requirement); the first
  // arrival allocates, the rest pick up the result, the last erases it.
  void collective_free(std::size_t offset, std::size_t participants);

  Layout layout_;
  ShmemFabric fabric_;
  OffsetHeap symmetric_heap_;
  std::vector<std::unique_ptr<OffsetHeap>> onesided_heaps_;

  struct PendingAlloc {
    std::size_t offset = 0;
    std::size_t remaining = 0;
  };
  struct PendingFree {
    std::size_t calls = 0;
    std::size_t participants = 0;
  };
  // Rendezvous state sharded by collective key / freed offset so that at
  // high PE counts unrelated collectives do not serialize on one global
  // mutex (the heap itself is internally locked).  Padded to a cache line
  // each to keep shard locks from false-sharing.
  static constexpr std::size_t kCollectiveShards = 16;
  struct alignas(64) CollectiveShard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, PendingAlloc> pending_allocs;
    std::unordered_map<std::size_t, PendingFree> pending_frees;
  };
  CollectiveShard& alloc_shard(std::uint64_t key) {
    return collective_shards_[key % kCollectiveShards];
  }
  CollectiveShard& free_shard(std::size_t offset) {
    return collective_shards_[std::hash<std::size_t>{}(offset) %
                              kCollectiveShards];
  }
  std::array<CollectiveShard, kCollectiveShards> collective_shards_;
  /// Per-PE collective sequence numbers, lock-free: the n-th world-wide
  /// collective call on every PE derives the same key with no shared lock.
  std::vector<std::atomic<std::uint64_t>> alloc_seq_;
};

class ShmemLamellae final : public Lamellae {
 public:
  ShmemLamellae(ShmemLamellaeGroup& group, pe_id pe)
      : group_(group), pe_(pe) {}

  [[nodiscard]] pe_id my_pe() const override { return pe_; }
  [[nodiscard]] std::size_t num_pes() const override {
    return group_.fabric_.num_pes();
  }
  std::byte* base() override { return group_.fabric_.arena(pe_); }

  std::size_t alloc_symmetric(std::size_t bytes, std::size_t align) override;
  void free_symmetric(std::size_t offset) override;
  std::size_t alloc_symmetric_group(std::uint64_t key,
                                    std::size_t participants,
                                    std::size_t bytes,
                                    std::size_t align) override;
  void free_symmetric_group(std::size_t offset,
                            std::size_t participants) override;
  std::size_t alloc_onesided(std::size_t bytes, std::size_t align) override;
  void free_onesided(std::size_t offset) override;

  void put(pe_id dst, std::size_t dst_offset,
           std::span<const std::byte> data) override {
    group_.fabric_.put(pe_, dst, dst_offset, data);
  }
  void get(pe_id src, std::size_t remote_offset,
           std::span<std::byte> out) override {
    group_.fabric_.get(pe_, src, remote_offset, out);
  }
  void get_pipelined(pe_id src, std::size_t remote_offset,
                     std::span<std::byte> out) override {
    group_.fabric_.get_pipelined(pe_, src, remote_offset, out);
  }

  std::uint64_t atomic_fetch_add_u64(pe_id dst, std::size_t offset,
                                     std::uint64_t v) override {
    return group_.fabric_.atomic_fetch_add_u64(pe_, dst, offset, v);
  }
  std::uint64_t atomic_load_u64(pe_id dst, std::size_t offset) override {
    return group_.fabric_.atomic_load_u64(pe_, dst, offset);
  }
  void atomic_store_u64(pe_id dst, std::size_t offset,
                        std::uint64_t v) override {
    group_.fabric_.atomic_store_u64(pe_, dst, offset, v);
  }
  bool atomic_cas_u64(pe_id dst, std::size_t offset, std::uint64_t& expected,
                      std::uint64_t desired) override {
    return group_.fabric_.atomic_cas_u64(pe_, dst, offset, expected, desired);
  }

  bool try_send(pe_id dst, ByteBuffer& buf) override {
    return group_.fabric_.try_send(pe_, dst, buf);
  }
  bool poll(FabricMessage& out) override { return group_.fabric_.poll(pe_, out); }
  [[nodiscard]] bool inbox_empty() const override {
    return group_.fabric_.inbox_empty(pe_);
  }

  /// This PE's one-sided heap (tests / stress-harness invariant checks).
  OffsetHeap& onesided_heap() { return group_.onesided_heap(pe_); }

  void barrier() override { group_.fabric_.barrier(pe_); }
  VirtualClock& clock() override { return group_.fabric_.clock(pe_); }
  /// Virtual-time runs pace age decisions off the modeled clock; with
  /// virtual time off that clock stays at zero, so fall back to real time.
  [[nodiscard]] sim_nanos mono_now() const override {
    return group_.fabric_.virtual_time_enabled()
               ? group_.fabric_.clock(pe_).now()
               : real_now_ns();
  }
  obs::MetricsRegistry& metrics() override {
    return group_.fabric_.metrics(pe_);
  }
  [[nodiscard]] const PerfParams& params() const override {
    return group_.fabric_.params();
  }
  void charge(double ns) override { group_.fabric_.charge(pe_, ns); }
  [[nodiscard]] bool remote_to(pe_id dst) const override {
    return !group_.fabric_.mapping().same_node(pe_, dst);
  }
  [[nodiscard]] std::size_t pes_per_node() const override {
    return group_.fabric_.mapping().pes_per_node;
  }

 private:
  ShmemLamellaeGroup& group_;
  pe_id pe_;
};

}  // namespace lamellar
