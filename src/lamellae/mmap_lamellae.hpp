// MmapLamellae: the process-separated Lamellae (DESIGN.md §13).
//
// PEs are forked OS processes sharing one mmap'd /dev/shm segment.  The
// segment holds, in order: a control page (barrier + lifecycle + quiesce
// state), one SPSC byte ring per (dst, src) PE pair (the cross-process
// command-queue transport, with futex-based backpressure wakeup), and one
// RDMA arena per PE.  Every process maps the whole segment, so put/get are
// memcpys into a peer's arena and remote atomics are std::atomic_ref on
// mapped peer words — the same operations ShmemLamellae performs in-process,
// now across genuine address-space boundaries.  Everything above the
// Lamellae interface (AM engine, aggregation lanes, arrays, Darc) runs
// unmodified.
//
// Because this is the first backend where a peer can die independently,
// teardown is defensive: the barrier is a bounded futex wait that checks
// peer liveness every slice and aborts with a diagnostic naming the dead or
// straggling PE instead of hanging; the parent marks reaped casualties in
// the control page and wakes waiters; segments embed their creator's pid so
// orphans from a crashed parent are unlinked at the next startup.
//
// Addressing discipline: nothing stored in the segment is an absolute
// pointer.  Arenas, rings, and heap bookkeeping all use base-relative
// offsets, so the segment may map at a different address in every process
// (see the two-view MAP_FIXED regression test).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "lamellae/heap.hpp"
#include "lamellae/lamellae.hpp"

namespace lamellar {

namespace mpshm {

inline constexpr std::uint64_t kMagic = 0x4c414d4d50534831ull;  // "LAMMPSH1"
inline constexpr std::uint32_t kVersion = 1;

/// Per-PE lifecycle states in MpPeSlot::state.
enum PeState : std::uint32_t {
  kEmpty = 0,   ///< never attached
  kJoined = 1,  ///< process attached and running
  kExited = 2,  ///< detached cleanly
  kDead = 3,    ///< parent reaped a crash/nonzero exit before clean detach
};

struct alignas(64) MpPeSlot {
  std::atomic<std::int32_t> pid{0};
  std::atomic<std::uint32_t> state{kEmpty};
  /// Barrier generation this PE last arrived at (gen + 1); waiters use it to
  /// name stragglers in timeout diagnostics.
  std::atomic<std::uint32_t> bar_seen{0};
  /// Published local outstanding-work count for the quiesce protocol.
  std::atomic<std::uint64_t> outstanding{0};
};

/// One SPSC byte ring: a single producer process (src) appends
/// length-prefixed records, a single consumer process (dst) pops them.
/// head/tail are free-running byte counts; head_seq mirrors the low 32 bits
/// of head as the futex word a backpressured producer sleeps on.
struct alignas(64) MpRingHdr {
  alignas(64) std::atomic<std::uint64_t> head{0};          // consumer-owned
  std::atomic<std::uint32_t> head_seq{0};
  std::atomic<std::uint32_t> producer_waiting{0};
  alignas(64) std::atomic<std::uint64_t> tail{0};          // producer-owned
};

struct MpControl {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t num_pes = 0;
  std::int32_t creator_pid = 0;
  std::uint32_t pad0 = 0;
  // Segment geometry (byte offsets from the mapping base; never pointers).
  std::uint64_t slots_off = 0;
  std::uint64_t rings_off = 0;
  std::uint64_t ring_data_off = 0;
  std::uint64_t ring_bytes = 0;
  std::uint64_t arenas_off = 0;
  std::uint64_t arena_stride = 0;
  std::uint64_t arena_bytes = 0;
  std::uint64_t total_bytes = 0;
  // Heap split within each arena (mirrors ShmemLamellaeGroup::Layout).
  std::uint64_t internal_bytes = 0;
  std::uint64_t symmetric_bytes = 0;
  std::uint64_t onesided_bytes = 0;
  // Central barrier: bar_word packs (generation << 32) | arrived; bar_gen
  // mirrors the generation as the futex word waiters sleep on.
  alignas(64) std::atomic<std::uint64_t> bar_word{0};
  alignas(64) std::atomic<std::uint32_t> bar_gen{0};
  std::atomic<std::uint32_t> bar_abort{0};
  std::atomic<std::uint32_t> bar_abort_pe{0};
  /// Quiesce decision word written by PE 0 between barrier rounds.
  alignas(64) std::atomic<std::uint32_t> quiesce_decision{0};
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "cross-process rings need address-free 64-bit atomics");

}  // namespace mpshm

/// Parent-side handle on a created segment: owns the name (unlink-on-
/// destruction unless released), keeps a mapping so the parent can mark
/// reaped casualties for surviving PEs, and provides startup orphan
/// collection.
class MmapSegment {
 public:
  /// Create a fresh segment sized for `num_pes` PEs from the config's heap
  /// layout and mp knobs.  Also sweeps orphaned segments whose creator died.
  static MmapSegment create(std::size_t num_pes, const RuntimeConfig& cfg);

  ~MmapSegment();
  MmapSegment(MmapSegment&& o) noexcept;
  MmapSegment& operator=(MmapSegment&&) = delete;
  MmapSegment(const MmapSegment&) = delete;
  MmapSegment& operator=(const MmapSegment&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Mark `pe` dead (crash or nonzero exit reaped before clean detach) and
  /// wake any barrier waiters so they diagnose it immediately.
  void mark_pe_dead(pe_id pe);

  /// Unlink the segment name now (mappings stay valid until unmapped).
  void unlink();

  /// Unlink segments whose embedded creator pid no longer exists.  Returns
  /// the number swept.  Safe to call concurrently with live runs: live
  /// creators keep their segments.
  static int cleanup_orphans();

  /// Segment names under /dev/shm created by pid `creator` that still
  /// exist — the leak check used by the mp test fixtures.
  static std::vector<std::string> segments_of(std::int32_t creator);

 private:
  MmapSegment(std::string name, void* map, std::size_t bytes);

  std::string name_;
  void* map_ = nullptr;
  std::size_t bytes_ = 0;
  bool unlinked_ = false;
};

/// Child-side endpoint: one per forked PE process.
class MmapLamellae final : public Lamellae {
 public:
  MmapLamellae(const std::string& segment_name, pe_id pe,
               const RuntimeConfig& cfg);
  ~MmapLamellae() override;

  [[nodiscard]] pe_id my_pe() const override { return pe_; }
  [[nodiscard]] std::size_t num_pes() const override { return num_pes_; }
  std::byte* base() override { return arena(pe_); }

  std::size_t alloc_symmetric(std::size_t bytes, std::size_t align) override;
  void free_symmetric(std::size_t offset) override;
  std::size_t alloc_symmetric_group(std::uint64_t key,
                                    std::size_t participants,
                                    std::size_t bytes,
                                    std::size_t align) override;
  void free_symmetric_group(std::size_t offset,
                            std::size_t participants) override;
  std::size_t alloc_onesided(std::size_t bytes, std::size_t align) override;
  void free_onesided(std::size_t offset) override;

  void put(pe_id dst, std::size_t dst_offset,
           std::span<const std::byte> data) override;
  void get(pe_id src, std::size_t remote_offset,
           std::span<std::byte> out) override;
  void get_pipelined(pe_id src, std::size_t remote_offset,
                     std::span<std::byte> out) override;

  std::uint64_t atomic_fetch_add_u64(pe_id dst, std::size_t offset,
                                     std::uint64_t v) override;
  std::uint64_t atomic_load_u64(pe_id dst, std::size_t offset) override;
  void atomic_store_u64(pe_id dst, std::size_t offset,
                        std::uint64_t v) override;
  bool atomic_cas_u64(pe_id dst, std::size_t offset, std::uint64_t& expected,
                      std::uint64_t desired) override;

  bool try_send(pe_id dst, ByteBuffer& buf) override;
  bool poll(FabricMessage& out) override;
  [[nodiscard]] bool inbox_empty() const override;

  void barrier() override;
  VirtualClock& clock() override { return clock_; }
  /// Real processes, real time: charge() never advances clock_, so age and
  /// tick decisions must come from the steady clock (the base default).
  [[nodiscard]] sim_nanos mono_now() const override { return real_now_ns(); }
  obs::MetricsRegistry& metrics() override { return registry_; }
  [[nodiscard]] const PerfParams& params() const override { return params_; }
  void charge(double ns) override;
  [[nodiscard]] bool remote_to(pe_id) const override { return false; }
  [[nodiscard]] std::size_t pes_per_node() const override { return num_pes_; }

  // ---- quiesce protocol plumbing (MpProcessRuntime) ----
  std::atomic<std::uint64_t>& quiesce_slot(pe_id pe) {
    return slot(pe).outstanding;
  }
  std::atomic<std::uint32_t>& quiesce_decision() {
    return ctl_->quiesce_decision;
  }

  /// Clean detach: publish kExited so peers stop expecting this PE.
  void mark_exited();

  OffsetHeap& symmetric_heap() { return *symmetric_heap_; }
  OffsetHeap& onesided_heap() { return *onesided_heap_; }
  [[nodiscard]] const std::string& segment_name() const { return name_; }

 private:
  std::byte* arena(pe_id pe) {
    return map_ + ctl_->arenas_off + pe * ctl_->arena_stride;
  }
  mpshm::MpPeSlot& slot(pe_id pe) const {
    return *reinterpret_cast<mpshm::MpPeSlot*>(map_ + ctl_->slots_off + pe * sizeof(mpshm::MpPeSlot));
  }
  mpshm::MpRingHdr& ring_hdr(pe_id dst, pe_id src) const {
    return *reinterpret_cast<mpshm::MpRingHdr*>(
        map_ + ctl_->rings_off +
        (dst * num_pes_ + src) * sizeof(mpshm::MpRingHdr));
  }
  std::byte* ring_data(pe_id dst, pe_id src) const {
    return map_ + ctl_->ring_data_off +
           (dst * num_pes_ + src) * ctl_->ring_bytes;
  }
  void check_bounds(std::size_t offset, std::size_t len) const;
  std::uint64_t* word_at(pe_id pe, std::size_t offset);
  [[noreturn]] void abort_barrier(pe_id culprit, const std::string& why);
  [[noreturn]] void rethrow_barrier_abort() const;

  std::string name_;
  pe_id pe_ = 0;
  std::size_t num_pes_ = 0;
  int fd_ = -1;
  std::byte* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  mpshm::MpControl* ctl_ = nullptr;
  std::uint64_t barrier_timeout_ms_ = 10'000;

  // Symmetric heap: a deterministic per-process REPLICA.  World collectives
  // call alloc/free with identical arguments in identical order on every PE
  // (the SPMD contract the paper's runtime also relies on), so each
  // process's replica computes the same offsets with zero communication.
  std::unique_ptr<OffsetHeap> symmetric_heap_;
  std::unique_ptr<OffsetHeap> onesided_heap_;

  VirtualClock clock_;
  PerfParams params_;
  obs::MetricsRegistry registry_;

  // Process-local producer/consumer locks: cross-process safety comes from
  // the ring head/tail protocol; these only serialize threads of THIS
  // process on the same ring.
  std::vector<std::unique_ptr<std::mutex>> send_mu_;  // one per destination
  mutable std::mutex poll_mu_;
  pe_id poll_cursor_ = 0;

  // Resolved metric handles (fab.* names shared with ShmemFabric so bench
  // lines merge across backends; mp.* for backend-specific events).
  obs::Counter* puts_;
  obs::Counter* gets_;
  obs::Counter* atomics_;
  obs::Counter* bytes_put_;
  obs::Counter* bytes_get_;
  obs::Counter* msgs_sent_;
  obs::Counter* msgs_polled_;
  obs::Counter* bytes_sent_;
  obs::Counter* barriers_;
  obs::Counter* vtime_charged_ns_;
  obs::Counter* backpressure_waits_;
  obs::Counter* ring_wakes_;
  obs::Counter* barrier_futex_waits_;
};

}  // namespace lamellar
