// The Lamellae interface is pure-virtual; this translation unit anchors its
// vtable/key function emission.
#include "lamellae/lamellae.hpp"
