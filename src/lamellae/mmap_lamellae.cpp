#include "lamellae/mmap_lamellae.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>
#include <random>

#include "common/error.hpp"
#include "common/futex.hpp"
#include "common/process_group.hpp"

namespace lamellar {

namespace {

// /dev/shm entry prefix (no leading slash); shm_open names add the slash.
constexpr const char* kPrefix = "lamellar_mp.";

constexpr std::size_t kPage = 4096;

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Ring records are [u64 length][payload] rounded up to 8 bytes, so the
/// length word itself never wraps (ring capacity is a multiple of 8 and the
/// write cursor always lands on an 8-byte boundary).
std::size_t record_bytes(std::size_t payload) {
  return align_up(sizeof(std::uint64_t) + payload, 8);
}

/// Parse the creator pid embedded in "lamellar_mp.<pid>.<seq>.<rand>".
/// Returns -1 when the entry does not match the naming scheme.
pid_t creator_pid_of(const std::string& entry) {
  const std::size_t plen = std::strlen(kPrefix);
  if (entry.rfind(kPrefix, 0) != 0) return -1;
  const std::size_t dot = entry.find('.', plen);
  if (dot == std::string::npos) return -1;
  try {
    return static_cast<pid_t>(std::stol(entry.substr(plen, dot - plen)));
  } catch (...) {
    return -1;
  }
}

std::vector<std::string> shm_entries_with_prefix(const std::string& prefix) {
  std::vector<std::string> out;
  DIR* d = opendir("/dev/shm");
  if (d == nullptr) return out;
  while (dirent* e = readdir(d)) {
    if (std::string(e->d_name).rfind(prefix, 0) == 0) out.emplace_back(e->d_name);
  }
  closedir(d);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// MmapSegment (parent side)
// ---------------------------------------------------------------------------

MmapSegment::MmapSegment(std::string name, void* map, std::size_t bytes)
    : name_(std::move(name)), map_(map), bytes_(bytes) {}

MmapSegment::MmapSegment(MmapSegment&& o) noexcept
    : name_(std::move(o.name_)),
      map_(o.map_),
      bytes_(o.bytes_),
      unlinked_(o.unlinked_) {
  o.map_ = nullptr;
  o.unlinked_ = true;
}

MmapSegment::~MmapSegment() {
  if (map_ != nullptr) munmap(map_, bytes_);
  unlink();
}

void MmapSegment::unlink() {
  if (unlinked_ || name_.empty()) return;
  shm_unlink(name_.c_str());
  unlinked_ = true;
}

MmapSegment MmapSegment::create(std::size_t num_pes,
                                const RuntimeConfig& cfg) {
  if (num_pes == 0) throw Error("MmapSegment: num_pes must be > 0");
  cleanup_orphans();

  // Geometry.  Rings must hold at least one full aggregation buffer plus
  // headroom, or a flushed lane could never be sent even on an idle ring.
  const std::size_t ring_bytes = align_up(
      std::max(cfg.mp_ring_bytes, 2 * cfg.agg_threshold_bytes + kPage), kPage);
  const std::size_t arena_bytes = cfg.internal_heap_bytes +
                                  cfg.symmetric_heap_bytes +
                                  cfg.onesided_heap_bytes;
  const std::size_t arena_stride = align_up(arena_bytes, kPage);
  const std::size_t slots_off = align_up(sizeof(mpshm::MpControl), 64);
  const std::size_t rings_off =
      align_up(slots_off + num_pes * sizeof(mpshm::MpPeSlot), 64);
  const std::size_t ring_data_off = align_up(
      rings_off + num_pes * num_pes * sizeof(mpshm::MpRingHdr), kPage);
  const std::size_t arenas_off =
      align_up(ring_data_off + num_pes * num_pes * ring_bytes, kPage);
  const std::size_t total = arenas_off + num_pes * arena_stride;

  // Pick an unused name: creator pid (for orphan sweeps), a process-local
  // sequence number, and a random disambiguator against pid reuse.
  static std::atomic<std::uint64_t> seq{0};
  std::random_device rd;
  std::string name;
  int fd = -1;
  for (int attempt = 0; attempt < 16; ++attempt) {
    name = "/" + std::string(kPrefix) + std::to_string(getpid()) + "." +
           std::to_string(seq.fetch_add(1)) + "." + std::to_string(rd() & 0xFFFFFF);
    fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd >= 0) break;
    if (errno != EEXIST) {
      throw Error("MmapSegment: shm_open(" + name +
                  ") failed: " + std::strerror(errno));
    }
  }
  if (fd < 0) throw Error("MmapSegment: could not find a free segment name");

  if (ftruncate(fd, static_cast<off_t>(total)) != 0) {
    const std::string why = std::strerror(errno);
    close(fd);
    shm_unlink(name.c_str());
    throw Error("MmapSegment: ftruncate to " + std::to_string(total) +
                " bytes failed: " + why + " (shrink LAMELLAR_SYM_HEAP / "
                "LAMELLAR_ONESIDED_HEAP or raise /dev/shm)");
  }
  void* map = mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (map == MAP_FAILED) {
    shm_unlink(name.c_str());
    throw Error("MmapSegment: mmap failed: " + std::string(std::strerror(errno)));
  }

  auto* base = static_cast<std::byte*>(map);
  auto* ctl = new (base) mpshm::MpControl{};
  ctl->version = mpshm::kVersion;
  ctl->num_pes = static_cast<std::uint32_t>(num_pes);
  ctl->creator_pid = getpid();
  ctl->slots_off = slots_off;
  ctl->rings_off = rings_off;
  ctl->ring_data_off = ring_data_off;
  ctl->ring_bytes = ring_bytes;
  ctl->arenas_off = arenas_off;
  ctl->arena_stride = arena_stride;
  ctl->arena_bytes = arena_bytes;
  ctl->total_bytes = total;
  ctl->internal_bytes = cfg.internal_heap_bytes;
  ctl->symmetric_bytes = cfg.symmetric_heap_bytes;
  ctl->onesided_bytes = cfg.onesided_heap_bytes;
  for (std::size_t p = 0; p < num_pes; ++p) {
    new (base + slots_off + p * sizeof(mpshm::MpPeSlot)) mpshm::MpPeSlot{};
  }
  for (std::size_t r = 0; r < num_pes * num_pes; ++r) {
    new (base + rings_off + r * sizeof(mpshm::MpRingHdr)) mpshm::MpRingHdr{};
  }
  // Publish the magic last: attachers validate it before trusting geometry.
  ctl->magic = mpshm::kMagic;
  return MmapSegment(std::move(name), map, total);
}

void MmapSegment::mark_pe_dead(pe_id pe) {
  if (map_ == nullptr) return;
  auto* base = static_cast<std::byte*>(map_);
  auto* ctl = reinterpret_cast<mpshm::MpControl*>(base);
  if (pe >= ctl->num_pes) return;
  auto* slot = reinterpret_cast<mpshm::MpPeSlot*>(
      base + ctl->slots_off + pe * sizeof(mpshm::MpPeSlot));
  std::uint32_t expected = mpshm::kJoined;
  if (!slot->state.compare_exchange_strong(expected, mpshm::kDead,
                                           std::memory_order_acq_rel)) {
    if (expected == mpshm::kEmpty) {
      slot->state.store(mpshm::kDead, std::memory_order_release);
    }
  }
  // Wake barrier waiters WITHOUT changing the generation: they re-check
  // liveness and diagnose the casualty instead of sleeping out the slice.
  futex_wake(&ctl->bar_gen);
}

int MmapSegment::cleanup_orphans() {
  int swept = 0;
  for (const auto& entry : shm_entries_with_prefix(kPrefix)) {
    const pid_t creator = creator_pid_of(entry);
    if (creator <= 0) continue;
    if (ProcessGroup::alive(creator)) continue;
    if (shm_unlink(("/" + entry).c_str()) == 0) ++swept;
  }
  return swept;
}

std::vector<std::string> MmapSegment::segments_of(std::int32_t creator) {
  std::vector<std::string> out;
  const std::string want = std::string(kPrefix) + std::to_string(creator) + ".";
  for (const auto& entry : shm_entries_with_prefix(want)) {
    out.push_back("/" + entry);
  }
  return out;
}

// ---------------------------------------------------------------------------
// MmapLamellae (child side)
// ---------------------------------------------------------------------------

MmapLamellae::MmapLamellae(const std::string& segment_name, pe_id pe,
                           const RuntimeConfig& cfg)
    : name_(segment_name),
      pe_(pe),
      barrier_timeout_ms_(cfg.mp_barrier_timeout_ms),
      params_(paper_perf_params()),
      registry_(cfg.metrics_mode != MetricsMode::kOff) {
  const int fd = shm_open(name_.c_str(), O_RDWR, 0);
  if (fd < 0) {
    throw Error("MmapLamellae: shm_open(" + name_ +
                ") failed: " + std::strerror(errno));
  }
  struct stat st{};
  if (fstat(fd, &st) != 0) {
    close(fd);
    throw Error("MmapLamellae: fstat failed: " +
                std::string(std::strerror(errno)));
  }
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  void* map = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd, 0);
  close(fd);
  if (map == MAP_FAILED) {
    throw Error("MmapLamellae: mmap failed: " +
                std::string(std::strerror(errno)));
  }
  map_ = static_cast<std::byte*>(map);
  ctl_ = reinterpret_cast<mpshm::MpControl*>(map_);
  if (ctl_->magic != mpshm::kMagic || ctl_->version != mpshm::kVersion) {
    munmap(map_, map_bytes_);
    throw Error("MmapLamellae: " + name_ + " is not a valid segment");
  }
  num_pes_ = ctl_->num_pes;
  if (pe_ >= num_pes_) {
    munmap(map_, map_bytes_);
    throw Error("MmapLamellae: pe " + std::to_string(pe_) + " out of range");
  }

  // Heap replicas over this PE's arena: [internal | symmetric | onesided].
  symmetric_heap_ = std::make_unique<OffsetHeap>(ctl_->internal_bytes,
                                                 ctl_->symmetric_bytes);
  onesided_heap_ = std::make_unique<OffsetHeap>(
      ctl_->internal_bytes + ctl_->symmetric_bytes, ctl_->onesided_bytes);

  send_mu_.reserve(num_pes_);
  for (std::size_t i = 0; i < num_pes_; ++i) {
    send_mu_.push_back(std::make_unique<std::mutex>());
  }

  puts_ = &registry_.counter("fab.puts");
  gets_ = &registry_.counter("fab.gets");
  atomics_ = &registry_.counter("fab.atomics");
  bytes_put_ = &registry_.counter("fab.bytes_put");
  bytes_get_ = &registry_.counter("fab.bytes_get");
  msgs_sent_ = &registry_.counter("fab.msgs_sent");
  msgs_polled_ = &registry_.counter("fab.msgs_polled");
  bytes_sent_ = &registry_.counter("fab.bytes_sent");
  barriers_ = &registry_.counter("fab.barriers");
  vtime_charged_ns_ = &registry_.counter("fab.vtime_charged_ns");
  backpressure_waits_ = &registry_.counter("mp.backpressure_waits");
  ring_wakes_ = &registry_.counter("mp.ring_wakes");
  barrier_futex_waits_ = &registry_.counter("mp.barrier_futex_waits");

  auto& me = slot(pe_);
  me.pid.store(getpid(), std::memory_order_relaxed);
  me.state.store(mpshm::kJoined, std::memory_order_release);
}

MmapLamellae::~MmapLamellae() {
  mark_exited();
  if (map_ != nullptr) munmap(map_, map_bytes_);
}

void MmapLamellae::mark_exited() {
  if (ctl_ == nullptr) return;
  auto& me = slot(pe_);
  std::uint32_t expected = mpshm::kJoined;
  if (me.state.compare_exchange_strong(expected, mpshm::kExited,
                                       std::memory_order_acq_rel)) {
    // A peer parked in a barrier must notice: a cleanly-exited PE that never
    // arrives is as fatal to the collective as a crashed one.
    futex_wake(&ctl_->bar_gen);
  }
}

// ---- heaps ----------------------------------------------------------------

std::size_t MmapLamellae::alloc_symmetric(std::size_t bytes,
                                          std::size_t align) {
  // No communication: every PE's replica performs the identical sequence of
  // collective alloc/free calls (the SPMD contract in lamellae.hpp), so each
  // computes the same offset locally.
  return symmetric_heap_->alloc(bytes, align);
}

void MmapLamellae::free_symmetric(std::size_t offset) {
  symmetric_heap_->free(offset);
}

std::size_t MmapLamellae::alloc_symmetric_group(std::uint64_t /*key*/,
                                                std::size_t participants,
                                                std::size_t bytes,
                                                std::size_t align) {
  if (participants != num_pes_) {
    throw Error(
        "MmapLamellae: team-scoped symmetric allocation needs the full world "
        "(replicated-heap determinism breaks when only " +
        std::to_string(participants) + " of " + std::to_string(num_pes_) +
        " PEs allocate); split teams are unsupported under "
        "LAMELLAR_BACKEND=mmap");
  }
  return alloc_symmetric(bytes, align);
}

void MmapLamellae::free_symmetric_group(std::size_t offset,
                                        std::size_t participants) {
  if (participants != num_pes_) {
    throw Error("MmapLamellae: team-scoped symmetric free is unsupported");
  }
  free_symmetric(offset);
}

std::size_t MmapLamellae::alloc_onesided(std::size_t bytes,
                                         std::size_t align) {
  return onesided_heap_->alloc(bytes, align);
}

void MmapLamellae::free_onesided(std::size_t offset) {
  onesided_heap_->free(offset);
}

// ---- RDMA transfers -------------------------------------------------------

void MmapLamellae::check_bounds(std::size_t offset, std::size_t len) const {
  if (offset + len > ctl_->arena_bytes || offset + len < offset) {
    throw Error("MmapLamellae: transfer [" + std::to_string(offset) + ", " +
                std::to_string(offset + len) + ") outside the " +
                std::to_string(ctl_->arena_bytes) + "-byte arena");
  }
}

void MmapLamellae::put(pe_id dst, std::size_t dst_offset,
                       std::span<const std::byte> data) {
  check_bounds(dst_offset, data.size());
  std::memcpy(arena(dst) + dst_offset, data.data(), data.size());
  puts_->inc();
  bytes_put_->inc(data.size());
}

void MmapLamellae::get(pe_id src, std::size_t remote_offset,
                       std::span<std::byte> out) {
  check_bounds(remote_offset, out.size());
  std::memcpy(out.data(), arena(src) + remote_offset, out.size());
  gets_->inc();
  bytes_get_->inc(out.size());
}

void MmapLamellae::get_pipelined(pe_id src, std::size_t remote_offset,
                                 std::span<std::byte> out) {
  get(src, remote_offset, out);
}

// ---- remote atomics -------------------------------------------------------

std::uint64_t* MmapLamellae::word_at(pe_id pe, std::size_t offset) {
  check_bounds(offset, sizeof(std::uint64_t));
  if ((offset & 7) != 0) {
    throw Error("MmapLamellae: atomic offset " + std::to_string(offset) +
                " is not 8-byte aligned");
  }
  return reinterpret_cast<std::uint64_t*>(arena(pe) + offset);
}

// atomic_ref on mapped peer words IS the remote atomic: x86/aarch64 atomics
// are address-free, so the same physical word reached through different
// per-process mappings still serializes correctly.
static_assert(std::atomic_ref<std::uint64_t>::is_always_lock_free,
              "cross-process remote atomics need lock-free atomic_ref");

std::uint64_t MmapLamellae::atomic_fetch_add_u64(pe_id dst,
                                                 std::size_t offset,
                                                 std::uint64_t v) {
  atomics_->inc();
  return std::atomic_ref<std::uint64_t>(*word_at(dst, offset))
      .fetch_add(v, std::memory_order_acq_rel);
}

std::uint64_t MmapLamellae::atomic_load_u64(pe_id dst, std::size_t offset) {
  atomics_->inc();
  return std::atomic_ref<std::uint64_t>(*word_at(dst, offset))
      .load(std::memory_order_acquire);
}

void MmapLamellae::atomic_store_u64(pe_id dst, std::size_t offset,
                                    std::uint64_t v) {
  atomics_->inc();
  std::atomic_ref<std::uint64_t>(*word_at(dst, offset))
      .store(v, std::memory_order_release);
}

bool MmapLamellae::atomic_cas_u64(pe_id dst, std::size_t offset,
                                  std::uint64_t& expected,
                                  std::uint64_t desired) {
  atomics_->inc();
  return std::atomic_ref<std::uint64_t>(*word_at(dst, offset))
      .compare_exchange_strong(expected, desired, std::memory_order_acq_rel,
                               std::memory_order_acquire);
}

// ---- message transport ----------------------------------------------------

bool MmapLamellae::try_send(pe_id dst, ByteBuffer& buf) {
  const std::size_t n = buf.size();
  const std::size_t need = record_bytes(n);
  const std::size_t cap = ctl_->ring_bytes;
  if (need > cap) {
    throw Error("MmapLamellae: " + std::to_string(n) +
                "-byte message exceeds the " + std::to_string(cap) +
                "-byte ring; raise LAMELLAR_MP_RING");
  }
  std::lock_guard lk(*send_mu_[dst]);
  auto& hdr = ring_hdr(dst, pe_);
  const std::uint64_t tail = hdr.tail.load(std::memory_order_relaxed);
  std::uint64_t head = hdr.head.load(std::memory_order_acquire);
  if (tail + need - head > cap) {
    // Backpressured: nap briefly on the consumer's progress word rather
    // than spinning — the standard set-flag / re-check / wait sequence so a
    // concurrent consumer either sees the flag or already moved head.
    backpressure_waits_->inc();
    hdr.producer_waiting.store(1, std::memory_order_seq_cst);
    const std::uint32_t seen = hdr.head_seq.load(std::memory_order_acquire);
    if (hdr.head.load(std::memory_order_seq_cst) == head) {
      futex_wait(&hdr.head_seq, seen, 200'000);  // 200 us slice
    }
    hdr.producer_waiting.store(0, std::memory_order_relaxed);
    head = hdr.head.load(std::memory_order_acquire);
    if (tail + need - head > cap) return false;  // caller makes progress
  }
  std::byte* data = ring_data(dst, pe_);
  const std::size_t pos = tail % cap;
  const std::uint64_t len = n;
  std::memcpy(data + pos, &len, sizeof(len));  // never wraps (8-aligned)
  const std::size_t body = (pos + sizeof(len)) % cap;
  const std::size_t first = std::min(n, cap - body);
  if (first > 0) std::memcpy(data + body, buf.data(), first);
  if (n > first) std::memcpy(data, buf.data() + first, n - first);
  hdr.tail.store(tail + need, std::memory_order_release);
  buf.clear();
  msgs_sent_->inc();
  bytes_sent_->inc(n);
  return true;
}

bool MmapLamellae::poll(FabricMessage& out) {
  std::lock_guard lk(poll_mu_);
  const std::size_t cap = ctl_->ring_bytes;
  for (std::size_t i = 0; i < num_pes_; ++i) {
    const pe_id src = (poll_cursor_ + i) % num_pes_;
    auto& hdr = ring_hdr(pe_, src);
    const std::uint64_t head = hdr.head.load(std::memory_order_relaxed);
    const std::uint64_t tail = hdr.tail.load(std::memory_order_acquire);
    if (head == tail) continue;
    const std::byte* data = ring_data(pe_, src);
    const std::size_t pos = head % cap;
    std::uint64_t len = 0;
    std::memcpy(&len, data + pos, sizeof(len));
    const std::size_t need = record_bytes(len);
    std::vector<std::byte> payload(len);
    const std::size_t body = (pos + sizeof(len)) % cap;
    const std::size_t first = std::min<std::size_t>(len, cap - body);
    if (first > 0) std::memcpy(payload.data(), data + body, first);
    if (len > first) std::memcpy(payload.data() + first, data, len - first);
    hdr.head.store(head + need, std::memory_order_release);
    hdr.head_seq.store(static_cast<std::uint32_t>(head + need),
                       std::memory_order_seq_cst);
    if (hdr.producer_waiting.exchange(0, std::memory_order_acq_rel) != 0) {
      futex_wake(&hdr.head_seq);
      ring_wakes_->inc();
    }
    out.src = src;
    out.arrival_time = clock_.now();
    out.payload = ByteBuffer(std::move(payload));
    poll_cursor_ = (src + 1) % num_pes_;
    msgs_polled_->inc();
    return true;
  }
  return false;
}

bool MmapLamellae::inbox_empty() const {
  for (std::size_t src = 0; src < num_pes_; ++src) {
    const auto& hdr = ring_hdr(pe_, src);
    if (hdr.head.load(std::memory_order_acquire) !=
        hdr.tail.load(std::memory_order_acquire)) {
      return false;
    }
  }
  return true;
}

// ---- barrier --------------------------------------------------------------

void MmapLamellae::rethrow_barrier_abort() const {
  throw Error("MmapLamellae: barrier aborted (PE " +
              std::to_string(
                  ctl_->bar_abort_pe.load(std::memory_order_relaxed)) +
              " reported dead or stalled)");
}

void MmapLamellae::abort_barrier(pe_id culprit, const std::string& why) {
  ctl_->bar_abort_pe.store(static_cast<std::uint32_t>(culprit),
                           std::memory_order_relaxed);
  ctl_->bar_abort.store(1, std::memory_order_release);
  futex_wake(&ctl_->bar_gen);
  throw Error("MmapLamellae: barrier aborted: " + why);
}

void MmapLamellae::barrier() {
  if (ctl_->bar_abort.load(std::memory_order_acquire) != 0) {
    rethrow_barrier_abort();
  }
  barriers_->inc();
  // bar_word packs (generation << 32) | arrived in one word, so the count
  // reset and the generation bump are a single atomic store — a fast peer
  // re-entering the next barrier can never race a half-reset round.
  const std::uint64_t prev =
      ctl_->bar_word.fetch_add(1, std::memory_order_acq_rel);
  const std::uint32_t gen = static_cast<std::uint32_t>(prev >> 32);
  const std::uint32_t arrived = static_cast<std::uint32_t>(prev) + 1;
  slot(pe_).bar_seen.store(gen + 1, std::memory_order_release);
  if (arrived == ctl_->num_pes) {
    ctl_->bar_word.store(static_cast<std::uint64_t>(gen + 1) << 32,
                         std::memory_order_release);
    ctl_->bar_gen.store(gen + 1, std::memory_order_release);
    futex_wake(&ctl_->bar_gen);
    return;
  }
  constexpr std::int64_t kSliceNs = 50'000'000;  // 50 ms liveness slices
  const std::uint64_t deadline = now_ms() + barrier_timeout_ms_;
  while (ctl_->bar_gen.load(std::memory_order_acquire) == gen) {
    if (ctl_->bar_abort.load(std::memory_order_acquire) != 0) {
      rethrow_barrier_abort();
    }
    barrier_futex_waits_->inc();
    futex_wait(&ctl_->bar_gen, gen, kSliceNs);
    if (ctl_->bar_gen.load(std::memory_order_acquire) != gen) return;
    // Liveness sweep: a peer that died (or cleanly exited) without arriving
    // will never arrive — abort with its name instead of hanging.
    for (pe_id p = 0; p < num_pes_; ++p) {
      if (p == pe_) continue;
      const auto& s = slot(p);
      if (s.bar_seen.load(std::memory_order_acquire) > gen) continue;
      const std::uint32_t st = s.state.load(std::memory_order_acquire);
      const pid_t pid = s.pid.load(std::memory_order_relaxed);
      const bool dead =
          st == mpshm::kDead || st == mpshm::kExited ||
          (st == mpshm::kJoined && pid > 0 && !ProcessGroup::alive(pid));
      if (dead) {
        abort_barrier(
            p, "PE " + std::to_string(p) +
                   (st == mpshm::kExited ? " exited without arriving"
                                         : " died") +
                   " during barrier generation " + std::to_string(gen));
      }
    }
    if (now_ms() > deadline) {
      std::string stragglers;
      pe_id first = pe_;
      for (pe_id p = 0; p < num_pes_; ++p) {
        if (p == pe_ || slot(p).bar_seen.load(std::memory_order_acquire) > gen)
          continue;
        if (first == pe_) first = p;
        stragglers += (stragglers.empty() ? "" : ", ") + std::to_string(p);
      }
      abort_barrier(first, "timed out after " +
                               std::to_string(barrier_timeout_ms_) +
                               " ms waiting for PE(s) " +
                               (stragglers.empty() ? "?" : stragglers));
    }
  }
}

void MmapLamellae::charge(double ns) {
  // Real processes run on real time; virtual-time simulation stays with the
  // in-process backends.  Keep the accounting counter so bench lines merge.
  if (ns > 0) vtime_charged_ns_->inc(static_cast<std::uint64_t>(ns));
}

}  // namespace lamellar
