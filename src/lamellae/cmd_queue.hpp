// Outgoing command queues: per-destination double-buffered staging of
// serialized records (paper Sec. III-A1, "double buffering message queue").
//
// Small records are appended to a per-destination active buffer; when the
// buffer reaches the aggregation threshold it is swapped out (the second
// buffer of the pair becomes active) and handed to the Lamellae while workers
// keep filling.  Records larger than the threshold bypass aggregation and
// are sent directly — the behaviour the paper describes around the 100 KB
// default threshold.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "lamellae/lamellae.hpp"
#include "obs/metrics.hpp"

namespace lamellar {

class OutgoingQueues {
 public:
  /// `progress` is invoked while the fabric is backpressured; it must drain
  /// the caller's own inbox (and may execute tasks) to guarantee progress.
  using ProgressFn = std::function<void()>;

  OutgoingQueues(Lamellae& lamellae, std::size_t flush_threshold);

  /// Append one serialized record destined for `dst`.  May flush.
  void push(pe_id dst, std::span<const std::byte> record,
            const ProgressFn& progress);

  /// Move a whole prebuilt buffer out for `dst` without copying (used for
  /// records at or above the threshold).
  void send_now(pe_id dst, ByteBuffer buf, const ProgressFn& progress);

  /// Flush any partially filled buffer for `dst`.
  void flush(pe_id dst, const ProgressFn& progress);

  /// Flush every destination.
  void flush_all(const ProgressFn& progress);

  [[nodiscard]] bool has_pending() const;
  [[nodiscard]] std::size_t flush_threshold() const { return threshold_; }

 private:
  struct Lane {
    mutable std::mutex mu;
    ByteBuffer active;
  };

  // Resolved once from the PE's metrics registry ("cmdq.*" namespace):
  // buffers/bytes handed to the fabric, flushes split by cause, and
  // full-inbox stalls observed while transmitting.
  struct CmdQueueCounters {
    obs::Counter* buffers_sent;
    obs::Counter* bytes_sent;
    obs::Counter* flush_threshold;
    obs::Counter* flush_explicit;
    obs::Counter* bypass_large;
    obs::Counter* backpressure_stalls;
  };

  void transmit(pe_id dst, ByteBuffer buf, const ProgressFn& progress);

  Lamellae& lamellae_;
  std::size_t threshold_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  CmdQueueCounters metrics_;
};

}  // namespace lamellar
