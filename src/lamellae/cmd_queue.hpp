// Outgoing command queues: per-destination double-buffered staging of
// serialized records (paper Sec. III-A1, "double buffering message queue").
//
// The hot path is zero-copy: callers open an in-place record on the
// destination lane (`begin_record`), serialize header + payload directly
// into the active buffer while holding the lane lock, and `commit_record`
// decides whether the buffer leaves.  Buffers that fill to the aggregation
// threshold are swapped out (the second half of the double buffer becomes
// active immediately) and handed to the Lamellae; a record that is itself
// at or above the threshold leaves on its own — the large-record bypass the
// paper describes around the 100 KB default.  Swapped-out buffers are
// replaced from a per-PE BufferPool, and receivers recycle drained inbox
// buffers back into it, so steady-state traffic performs no heap growth.
//
// Memory discipline at high PE counts (DESIGN.md §12): lanes are created
// lazily on first use and acquire only a small initial buffer that grows
// organically toward the threshold; whenever a lane is left empty (swap,
// flush, rollback) its storage returns to the pool.  A PE therefore pays
// for the lanes it actually talks through — O(sqrt P) under 2-hop routing —
// not for all P destinations.  The `cmdq.live_lanes` gauge tracks lanes
// currently holding storage.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "lamellae/lamellae.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lamellar {

class OutgoingQueues {
 public:
  /// `progress` is invoked while the fabric is backpressured; it must drain
  /// the caller's own inbox (and may execute tasks) to guarantee progress.
  using ProgressFn = std::function<void()>;

  OutgoingQueues(Lamellae& lamellae, std::size_t flush_threshold,
                 obs::TraceCollector* tracer = nullptr);
  ~OutgoingQueues();

 private:
  /// One trace-sampled record staged in a lane's active buffer, awaiting
  /// its departure timestamp.
  struct TracedRecord {
    std::uint64_t span = 0;
    std::size_t ts_offset = 0;   // of the wire trace-ext ts field
    sim_nanos staged_at = 0;     // lane-residency start (inject time)
  };

  struct Lane {
    mutable std::mutex mu;
    ByteBuffer active;
    /// Sampled records currently staged in `active` (almost always empty;
    /// moved out together with the buffer when it departs).
    std::vector<TracedRecord> traced;
    /// mono_now() stamp of the empty->nonempty transition, written under
    /// `mu`: the age of the oldest staged record, read by flush_aged() and
    /// recorded into cmdq.lane_age_ns at every buffer departure.
    sim_nanos first_staged = 0;
    /// Relaxed occupancy hint, written only under `mu`: lets flush_all skip
    /// provably-empty lanes without acquiring their locks (O(live) instead
    /// of O(P) mutex round-trips per quiesce).
    std::atomic<bool> occupied{false};
  };

 public:
  /// An open in-place record on one destination lane.  Holds the lane lock
  /// from begin_record() until commit_record() (or destruction, which rolls
  /// an uncommitted record back), so the caller may serialize directly into
  /// buffer() without another writer interleaving bytes.
  class RecordWriter {
   public:
    RecordWriter(const RecordWriter&) = delete;
    RecordWriter& operator=(const RecordWriter&) = delete;
    ~RecordWriter();

    /// The lane's active buffer; append the record at the current end.
    [[nodiscard]] ByteBuffer& buffer() { return lane_->active; }
    /// Offset in buffer() where this record starts.
    [[nodiscard]] std::size_t record_start() const { return start_; }

    /// Register the open record as trace-sampled: when the buffer departs
    /// the lane, the u64 at `ts_offset` is patched with the departure time
    /// (so the receiver can compute flight latency), the lane-residency
    /// stage latency is recorded, and a flow step is traced.  Must be
    /// called between begin_record() and commit_record().
    void note_trace(std::uint64_t span, std::size_t ts_offset);

   private:
    friend class OutgoingQueues;
    RecordWriter(OutgoingQueues& q, pe_id dst, Lane& lane, std::size_t start,
                 std::unique_lock<std::mutex> lock)
        : q_(&q), dst_(dst), lane_(&lane), start_(start),
          lock_(std::move(lock)) {}

    OutgoingQueues* q_;
    pe_id dst_;
    Lane* lane_;
    std::size_t start_;
    std::unique_lock<std::mutex> lock_;
    bool committed_ = false;
  };

  /// Open an in-place record destined for `dst`.
  RecordWriter begin_record(pe_id dst);

  /// Close the record opened by `w`: update lane occupancy, swap the buffer
  /// out if it reached the threshold, and transmit outside the lane lock.
  void commit_record(RecordWriter& w, const ProgressFn& progress);

  /// Append one pre-serialized record destined for `dst` (copying path kept
  /// for callers that already own a buffer).  May flush.
  void push(pe_id dst, std::span<const std::byte> record,
            const ProgressFn& progress);

  /// Move a whole prebuilt buffer out for `dst` without copying (used for
  /// records at or above the threshold).
  void send_now(pe_id dst, ByteBuffer buf, const ProgressFn& progress);

  /// Flush any partially filled buffer for `dst`.
  void flush(pe_id dst, const ProgressFn& progress);

  /// Flush every destination with staged bytes.  Lanes that were never
  /// created or are provably empty are skipped without taking their locks.
  void flush_all(const ProgressFn& progress);

  /// Age-triggered partial flush (DESIGN.md §14): flush only lanes whose
  /// oldest staged record is older than `max_age` at time `now` (both in
  /// mono_now() nanoseconds), so trickle traffic does not wait for a full
  /// threshold's worth of bytes.  Skips empty lanes without their locks,
  /// like flush_all.  Counted under cmdq.flush_age.
  void flush_aged(sim_nanos now, sim_nanos max_age, const ProgressFn& progress);

  /// Return a drained buffer (swapped-out lane or inbox payload) to the
  /// per-PE pool for reuse.
  void recycle(ByteBuffer buf);

  /// Relaxed count of non-empty lanes — safe to call in tight wait loops
  /// without touching any lane lock.
  [[nodiscard]] bool has_pending() const {
    return nonempty_lanes_.load(std::memory_order_relaxed) != 0;
  }
  [[nodiscard]] std::size_t flush_threshold() const {
    return threshold_.load(std::memory_order_relaxed);
  }

  /// Runtime-adjust the aggregation flush threshold (adaptive controller,
  /// World::set_agg_threshold).  Relaxed store: writers racing with a
  /// commit_record see either the old or the new value, both of which are
  /// valid flush points; already-staged lanes keep filling toward whichever
  /// value their next commit observes.  Clamped to >= 1 so every nonempty
  /// commit can still depart.
  void set_flush_threshold(std::size_t bytes);

  [[nodiscard]] BufferPool& pool() { return pool_; }

 private:
  // Resolved once from the PE's metrics registry ("cmdq.*" namespace):
  // buffers/bytes handed to the fabric, flushes split by cause, pool
  // traffic, full-inbox stalls observed while transmitting, and the gauge
  // of lanes currently holding buffer storage.
  struct CmdQueueCounters {
    obs::Counter* buffers_sent;
    obs::Counter* bytes_sent;
    obs::Counter* flush_threshold;
    obs::Counter* flush_explicit;
    obs::Counter* flush_age;
    obs::Counter* bypass_large;
    obs::Counter* backpressure_stalls;
    obs::Counter* buffers_recycled;
    obs::Counter* buffers_allocated;
    obs::Histogram* stage_inject_flush;  // am.stage_inject_flush_ns
    obs::Histogram* lane_age;            // cmdq.lane_age_ns
    obs::Gauge* nonempty_lanes;          // cmdq.nonempty_lanes
    obs::Gauge* live_lanes;              // cmdq.live_lanes
  };

  /// Get-or-create the lane for `dst` (lanes are materialized on first
  /// use, so a PE that never talks to `dst` pays one pointer).
  Lane& lane(pe_id dst);

  /// Ensure `lane.active` has pooled backing storage (called under lock).
  void prime(Lane& lane);

  /// Return an empty lane's backing storage to the pool (called under the
  /// lane lock with `lane.active` empty): idle lanes hold no memory.
  void release_storage_locked(Lane& lane);

  void transmit(pe_id dst, ByteBuffer buf, const ProgressFn& progress);

  /// Move a nonempty lane's buffer out under its lock: clears occupancy,
  /// maintains the nonempty/live gauges, and records the lane age (now -
  /// first_staged) into cmdq.lane_age_ns.  Returns the departing buffer's
  /// traced records through `traced`.
  ByteBuffer extract_locked(Lane& lane, std::vector<TracedRecord>& traced,
                            sim_nanos now);

  /// Stamp the departure time into every traced record of a departing
  /// buffer, record the lane-residency latency, and emit flow steps.
  /// Called outside the lane lock, before the buffer is transmitted.
  void seal_traced(ByteBuffer& buf, std::vector<TracedRecord>& traced);

  Lamellae& lamellae_;
  obs::TraceCollector* tracer_;
  /// Aggregation flush threshold in bytes.  Relaxed atomic so the adaptive
  /// controller can retune it mid-run without a lock on the commit path.
  std::atomic<std::size_t> threshold_;
  /// Lazily created lanes: a slot is null until the first record for that
  /// destination.  Readers load acquire; creation is serialized by
  /// lanes_mu_ and published with a release store.
  std::vector<std::atomic<Lane*>> lanes_;
  std::mutex lanes_mu_;
  BufferPool pool_;
  std::atomic<std::size_t> nonempty_lanes_{0};
  CmdQueueCounters metrics_;
};

}  // namespace lamellar
