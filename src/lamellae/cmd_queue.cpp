#include "lamellae/cmd_queue.hpp"

#include <algorithm>

namespace lamellar {

namespace {
// Extra reserve beyond the flush threshold so the record that tips a buffer
// over the threshold normally fits without reallocating.
constexpr std::size_t kRecordSlack = 4096;
// First-touch reserve for a lane: small, so a lane that only ever carries a
// few records never pins a threshold-sized allocation (the buffer grows
// organically, and pooled buffers arrive with whatever capacity they earned).
constexpr std::size_t kLaneInitialBytes = 4096;
}  // namespace

OutgoingQueues::OutgoingQueues(Lamellae& lamellae, std::size_t flush_threshold,
                               obs::TraceCollector* tracer)
    : lamellae_(lamellae),
      tracer_(tracer),
      threshold_(flush_threshold),
      lanes_(lamellae.num_pes()),
      pool_(std::max<std::size_t>(16, 2 * lamellae.num_pes())) {
  obs::MetricsRegistry& reg = lamellae.metrics();
  metrics_ = CmdQueueCounters{
      &reg.counter("cmdq.buffers_sent"),
      &reg.counter("cmdq.bytes_sent"),
      &reg.counter("cmdq.flush_threshold"),
      &reg.counter("cmdq.flush_explicit"),
      &reg.counter("cmdq.flush_age"),
      &reg.counter("cmdq.bypass_large"),
      &reg.counter("cmdq.backpressure_stalls"),
      &reg.counter("cmdq.buffers_recycled"),
      &reg.counter("cmdq.buffers_allocated"),
      &reg.histogram("am.stage_inject_flush_ns"),
      &reg.histogram("cmdq.lane_age_ns"),
      &reg.gauge("cmdq.nonempty_lanes"),
      &reg.gauge("cmdq.live_lanes"),
  };
}

void OutgoingQueues::set_flush_threshold(std::size_t bytes) {
  threshold_.store(std::max<std::size_t>(1, bytes),
                   std::memory_order_relaxed);
}

OutgoingQueues::~OutgoingQueues() {
  for (auto& slot : lanes_) delete slot.load(std::memory_order_acquire);
}

OutgoingQueues::Lane& OutgoingQueues::lane(pe_id dst) {
  Lane* l = lanes_[dst].load(std::memory_order_acquire);
  if (l != nullptr) return *l;
  std::lock_guard lock(lanes_mu_);
  l = lanes_[dst].load(std::memory_order_relaxed);
  if (l == nullptr) {
    l = new Lane();
    lanes_[dst].store(l, std::memory_order_release);
  }
  return *l;
}

void OutgoingQueues::RecordWriter::note_trace(std::uint64_t span,
                                              std::size_t ts_offset) {
  lane_->traced.push_back({span, ts_offset, q_->lamellae_.clock().now()});
}

void OutgoingQueues::seal_traced(ByteBuffer& buf,
                                 std::vector<TracedRecord>& traced) {
  const sim_nanos now = lamellae_.clock().now();
  for (const TracedRecord& t : traced) {
    // Patch the wire trace-ext ts with the departure time so the receiver
    // can compute flight latency from its own arrival clock.
    buf.patch_pod<std::uint64_t>(t.ts_offset,
                                 static_cast<std::uint64_t>(now));
    const sim_nanos dur = now >= t.staged_at ? now - t.staged_at : 0;
    metrics_.stage_inject_flush->record(static_cast<std::uint64_t>(dur));
    if (tracer_ != nullptr && tracer_->enabled()) {
      const pe_id pe = lamellae_.my_pe();
      tracer_->record({"am_lane", "am", pe, t.staged_at, dur, 'X',
                       static_cast<std::uint64_t>(dur)});
      tracer_->record({"am_flush", "am", pe, now, 0, 't',
                       static_cast<std::uint64_t>(dur), t.span});
    }
  }
  traced.clear();
}

OutgoingQueues::RecordWriter::~RecordWriter() {
  // An uncommitted record (serialization threw) must not leak half-written
  // bytes into the lane: roll the buffer back to where the record began.
  if (q_ == nullptr || committed_) return;
  lane_->active.truncate(start_);
  if (start_ == 0) q_->release_storage_locked(*lane_);
}

void OutgoingQueues::prime(Lane& lane) {
  if (lane.active.capacity() != 0) return;
  bool hit = false;
  lane.active = pool_.acquire(
      std::min(kLaneInitialBytes, flush_threshold() + kRecordSlack), &hit);
  if (!hit) metrics_.buffers_allocated->inc();
  metrics_.live_lanes->add(1);
}

void OutgoingQueues::release_storage_locked(Lane& lane) {
  if (lane.active.capacity() == 0) return;
  recycle(std::move(lane.active));
  lane.active = ByteBuffer{};
  metrics_.live_lanes->sub(1);
}

OutgoingQueues::RecordWriter OutgoingQueues::begin_record(pe_id dst) {
  Lane& l = lane(dst);
  std::unique_lock lock(l.mu);
  prime(l);
  return RecordWriter(*this, dst, l, l.active.size(), std::move(lock));
}

ByteBuffer OutgoingQueues::extract_locked(Lane& lane,
                                          std::vector<TracedRecord>& traced,
                                          sim_nanos now) {
  ByteBuffer out = std::move(lane.active);
  lane.active = ByteBuffer{};
  traced = std::move(lane.traced);
  lane.traced.clear();
  metrics_.live_lanes->sub(1);
  if (lane.occupied.load(std::memory_order_relaxed)) {
    lane.occupied.store(false, std::memory_order_release);
    nonempty_lanes_.fetch_sub(1, std::memory_order_relaxed);
    metrics_.nonempty_lanes->sub(1);
    metrics_.lane_age->record(
        now >= lane.first_staged ? now - lane.first_staged : 0);
  } else {
    // A lone record filled the buffer in one commit: zero lane residency.
    metrics_.lane_age->record(0);
  }
  return out;
}

void OutgoingQueues::commit_record(RecordWriter& w, const ProgressFn& progress) {
  Lane& lane = *w.lane_;
  const bool was_counted = w.start_ > 0;
  const std::size_t record_bytes = lane.active.size() - w.start_;
  const std::size_t threshold = threshold_.load(std::memory_order_relaxed);
  w.committed_ = true;
  ByteBuffer to_send;
  std::vector<TracedRecord> traced;
  if (lane.active.size() >= threshold) {
    // Swap the filled buffer out; the lane goes back to empty immediately
    // (the second half of the double buffer) so other writers continue.
    to_send = extract_locked(lane, traced, lamellae_.mono_now());
    (record_bytes >= threshold ? metrics_.bypass_large
                               : metrics_.flush_threshold)
        ->inc();
  } else if (!was_counted && record_bytes > 0) {
    lane.first_staged = lamellae_.mono_now();
    lane.occupied.store(true, std::memory_order_release);
    nonempty_lanes_.fetch_add(1, std::memory_order_relaxed);
    metrics_.nonempty_lanes->add(1);
  } else if (record_bytes == 0 && lane.active.empty()) {
    // Zero-byte commit on an empty lane (e.g. a routed record that was
    // pulled back out for the direct path): do not leave primed storage
    // pinned on a lane that carries nothing.
    release_storage_locked(lane);
  }
  w.lock_.unlock();
  if (!to_send.empty()) {
    if (!traced.empty()) seal_traced(to_send, traced);
    lamellae_.charge(lamellae_.params().agg_flush_overhead_ns);
    transmit(w.dst_, std::move(to_send), progress);
  }
}

void OutgoingQueues::push(pe_id dst, std::span<const std::byte> record,
                          const ProgressFn& progress) {
  auto w = begin_record(dst);
  w.buffer().write(record.data(), record.size());
  commit_record(w, progress);
}

void OutgoingQueues::send_now(pe_id dst, ByteBuffer buf,
                              const ProgressFn& progress) {
  // Preserve record ordering per destination: anything staged must leave
  // before the direct buffer.
  flush(dst, progress);
  metrics_.bypass_large->inc();
  transmit(dst, std::move(buf), progress);
}

void OutgoingQueues::flush(pe_id dst, const ProgressFn& progress) {
  Lane* lp = lanes_[dst].load(std::memory_order_acquire);
  if (lp == nullptr) return;
  Lane& lane = *lp;
  ByteBuffer to_send;
  std::vector<TracedRecord> traced;
  {
    std::lock_guard lock(lane.mu);
    if (lane.active.empty()) {
      // Primed-but-empty (rolled back, or drained by a concurrent swap):
      // leave nothing pinned.
      release_storage_locked(lane);
      return;
    }
    to_send = extract_locked(lane, traced, lamellae_.mono_now());
  }
  if (!traced.empty()) seal_traced(to_send, traced);
  metrics_.flush_explicit->inc();
  lamellae_.charge(lamellae_.params().agg_flush_overhead_ns);
  transmit(dst, std::move(to_send), progress);
}

void OutgoingQueues::flush_aged(sim_nanos now, sim_nanos max_age,
                                const ProgressFn& progress) {
  const std::size_t n = lanes_.size();
  for (pe_id dst = 0; dst < n; ++dst) {
    Lane* lp = lanes_[dst].load(std::memory_order_acquire);
    if (lp == nullptr || !lp->occupied.load(std::memory_order_acquire)) {
      continue;
    }
    Lane& lane = *lp;
    ByteBuffer to_send;
    std::vector<TracedRecord> traced;
    {
      std::lock_guard lock(lane.mu);
      if (lane.active.empty()) continue;
      if (now < lane.first_staged ||
          now - lane.first_staged < max_age) {
        continue;
      }
      to_send = extract_locked(lane, traced, now);
    }
    if (!traced.empty()) seal_traced(to_send, traced);
    metrics_.flush_age->inc();
    lamellae_.charge(lamellae_.params().agg_flush_overhead_ns);
    transmit(dst, std::move(to_send), progress);
  }
}

void OutgoingQueues::flush_all(const ProgressFn& progress) {
  const std::size_t n = lanes_.size();
  for (pe_id dst = 0; dst < n; ++dst) {
    // Skip never-created and provably-empty lanes without their locks; the
    // occupancy hint is maintained under the lane lock, and any commit that
    // races past this check is a record staged after flush_all began —
    // outside this flush's obligations (has_pending() still reports it).
    Lane* lane = lanes_[dst].load(std::memory_order_acquire);
    if (lane == nullptr || !lane->occupied.load(std::memory_order_acquire)) {
      continue;
    }
    flush(dst, progress);
  }
}

void OutgoingQueues::recycle(ByteBuffer buf) {
  if (buf.capacity() == 0) return;
  if (pool_.release(std::move(buf))) metrics_.buffers_recycled->inc();
}

void OutgoingQueues::transmit(pe_id dst, ByteBuffer buf,
                              const ProgressFn& progress) {
  metrics_.buffers_sent->inc();
  metrics_.bytes_sent->inc(buf.size());
  // try_send consumes the buffer only on success; on backpressure, make
  // progress on our own inbox (which can unblock the destination) and retry.
  while (!lamellae_.try_send(dst, buf)) {
    metrics_.backpressure_stalls->inc();
    progress();
  }
}

}  // namespace lamellar
