#include "lamellae/cmd_queue.hpp"

namespace lamellar {

OutgoingQueues::OutgoingQueues(Lamellae& lamellae, std::size_t flush_threshold)
    : lamellae_(lamellae), threshold_(flush_threshold) {
  lanes_.reserve(lamellae.num_pes());
  for (std::size_t i = 0; i < lamellae.num_pes(); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  obs::MetricsRegistry& reg = lamellae.metrics();
  metrics_ = CmdQueueCounters{
      &reg.counter("cmdq.buffers_sent"),
      &reg.counter("cmdq.bytes_sent"),
      &reg.counter("cmdq.flush_threshold"),
      &reg.counter("cmdq.flush_explicit"),
      &reg.counter("cmdq.bypass_large"),
      &reg.counter("cmdq.backpressure_stalls"),
  };
}

void OutgoingQueues::push(pe_id dst, std::span<const std::byte> record,
                          const ProgressFn& progress) {
  Lane& lane = *lanes_[dst];
  ByteBuffer to_send;
  {
    std::lock_guard lock(lane.mu);
    lane.active.write(record.data(), record.size());
    if (lane.active.size() >= threshold_) {
      // Swap the filled buffer out; a fresh one becomes active immediately
      // (the second half of the double buffer) so other workers continue.
      to_send = std::move(lane.active);
      lane.active = ByteBuffer{};
    }
  }
  if (!to_send.empty()) {
    metrics_.flush_threshold->inc();
    lamellae_.charge(lamellae_.params().agg_flush_overhead_ns);
    transmit(dst, std::move(to_send), progress);
  }
}

void OutgoingQueues::send_now(pe_id dst, ByteBuffer buf,
                              const ProgressFn& progress) {
  // Preserve record ordering per destination: anything staged must leave
  // before the direct buffer.
  flush(dst, progress);
  metrics_.bypass_large->inc();
  transmit(dst, std::move(buf), progress);
}

void OutgoingQueues::flush(pe_id dst, const ProgressFn& progress) {
  Lane& lane = *lanes_[dst];
  ByteBuffer to_send;
  {
    std::lock_guard lock(lane.mu);
    if (lane.active.empty()) return;
    to_send = std::move(lane.active);
    lane.active = ByteBuffer{};
  }
  metrics_.flush_explicit->inc();
  lamellae_.charge(lamellae_.params().agg_flush_overhead_ns);
  transmit(dst, std::move(to_send), progress);
}

void OutgoingQueues::flush_all(const ProgressFn& progress) {
  for (pe_id dst = 0; dst < lanes_.size(); ++dst) flush(dst, progress);
}

bool OutgoingQueues::has_pending() const {
  for (const auto& lane : lanes_) {
    std::lock_guard lock(lane->mu);
    if (!lane->active.empty()) return true;
  }
  return false;
}

void OutgoingQueues::transmit(pe_id dst, ByteBuffer buf,
                              const ProgressFn& progress) {
  metrics_.buffers_sent->inc();
  metrics_.bytes_sent->inc(buf.size());
  // try_send consumes the buffer only on success; on backpressure, make
  // progress on our own inbox (which can unblock the destination) and retry.
  while (!lamellae_.try_send(dst, buf)) {
    metrics_.backpressure_stalls->inc();
    progress();
  }
}

}  // namespace lamellar
