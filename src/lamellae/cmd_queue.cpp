#include "lamellae/cmd_queue.hpp"

#include <algorithm>

namespace lamellar {

namespace {
// Extra reserve beyond the flush threshold so the record that tips a buffer
// over the threshold normally fits without reallocating.
constexpr std::size_t kRecordSlack = 4096;
}  // namespace

OutgoingQueues::OutgoingQueues(Lamellae& lamellae, std::size_t flush_threshold,
                               obs::TraceCollector* tracer)
    : lamellae_(lamellae),
      tracer_(tracer),
      threshold_(flush_threshold),
      pool_(std::max<std::size_t>(16, 2 * lamellae.num_pes())) {
  lanes_.reserve(lamellae.num_pes());
  for (std::size_t i = 0; i < lamellae.num_pes(); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  obs::MetricsRegistry& reg = lamellae.metrics();
  metrics_ = CmdQueueCounters{
      &reg.counter("cmdq.buffers_sent"),
      &reg.counter("cmdq.bytes_sent"),
      &reg.counter("cmdq.flush_threshold"),
      &reg.counter("cmdq.flush_explicit"),
      &reg.counter("cmdq.bypass_large"),
      &reg.counter("cmdq.backpressure_stalls"),
      &reg.counter("cmdq.buffers_recycled"),
      &reg.counter("cmdq.buffers_allocated"),
      &reg.histogram("am.stage_inject_flush_ns"),
      &reg.gauge("cmdq.nonempty_lanes"),
  };
}

void OutgoingQueues::RecordWriter::note_trace(std::uint64_t span,
                                              std::size_t ts_offset) {
  q_->lanes_[dst_]->traced.push_back(
      {span, ts_offset, q_->lamellae_.clock().now()});
}

void OutgoingQueues::seal_traced(ByteBuffer& buf,
                                 std::vector<TracedRecord>& traced) {
  const sim_nanos now = lamellae_.clock().now();
  for (const TracedRecord& t : traced) {
    // Patch the wire trace-ext ts with the departure time so the receiver
    // can compute flight latency from its own arrival clock.
    buf.patch_pod<std::uint64_t>(t.ts_offset,
                                 static_cast<std::uint64_t>(now));
    const sim_nanos dur = now >= t.staged_at ? now - t.staged_at : 0;
    metrics_.stage_inject_flush->record(static_cast<std::uint64_t>(dur));
    if (tracer_ != nullptr && tracer_->enabled()) {
      const pe_id pe = lamellae_.my_pe();
      tracer_->record({"am_lane", "am", pe, t.staged_at, dur, 'X',
                       static_cast<std::uint64_t>(dur)});
      tracer_->record({"am_flush", "am", pe, now, 0, 't',
                       static_cast<std::uint64_t>(dur), t.span});
    }
  }
  traced.clear();
}

OutgoingQueues::RecordWriter::~RecordWriter() {
  // An uncommitted record (serialization threw) must not leak half-written
  // bytes into the lane: roll the buffer back to where the record began.
  if (q_ != nullptr && !committed_) buf_->truncate(start_);
}

void OutgoingQueues::prime(Lane& lane) {
  if (lane.active.capacity() != 0) return;
  bool hit = false;
  lane.active = pool_.acquire(threshold_ + kRecordSlack, &hit);
  if (!hit) metrics_.buffers_allocated->inc();
}

OutgoingQueues::RecordWriter OutgoingQueues::begin_record(pe_id dst) {
  Lane& lane = *lanes_[dst];
  std::unique_lock lock(lane.mu);
  prime(lane);
  return RecordWriter(*this, dst, lane.active, lane.active.size(),
                      std::move(lock));
}

void OutgoingQueues::commit_record(RecordWriter& w, const ProgressFn& progress) {
  Lane& lane = *lanes_[w.dst_];
  const bool was_counted = w.start_ > 0;
  const std::size_t record_bytes = lane.active.size() - w.start_;
  w.committed_ = true;
  ByteBuffer to_send;
  std::vector<TracedRecord> traced;
  if (lane.active.size() >= threshold_) {
    // Swap the filled buffer out; the lane goes back to empty immediately
    // (the second half of the double buffer) so other writers continue.
    to_send = std::move(lane.active);
    lane.active = ByteBuffer{};
    traced = std::move(lane.traced);
    lane.traced.clear();
    if (was_counted) {
      nonempty_lanes_.fetch_sub(1, std::memory_order_relaxed);
      metrics_.nonempty_lanes->sub(1);
    }
    (record_bytes >= threshold_ ? metrics_.bypass_large
                                : metrics_.flush_threshold)
        ->inc();
  } else if (!was_counted && record_bytes > 0) {
    nonempty_lanes_.fetch_add(1, std::memory_order_relaxed);
    metrics_.nonempty_lanes->add(1);
  }
  w.lock_.unlock();
  if (!to_send.empty()) {
    if (!traced.empty()) seal_traced(to_send, traced);
    lamellae_.charge(lamellae_.params().agg_flush_overhead_ns);
    transmit(w.dst_, std::move(to_send), progress);
  }
}

void OutgoingQueues::push(pe_id dst, std::span<const std::byte> record,
                          const ProgressFn& progress) {
  auto w = begin_record(dst);
  w.buffer().write(record.data(), record.size());
  commit_record(w, progress);
}

void OutgoingQueues::send_now(pe_id dst, ByteBuffer buf,
                              const ProgressFn& progress) {
  // Preserve record ordering per destination: anything staged must leave
  // before the direct buffer.
  flush(dst, progress);
  metrics_.bypass_large->inc();
  transmit(dst, std::move(buf), progress);
}

void OutgoingQueues::flush(pe_id dst, const ProgressFn& progress) {
  Lane& lane = *lanes_[dst];
  ByteBuffer to_send;
  std::vector<TracedRecord> traced;
  {
    std::lock_guard lock(lane.mu);
    if (lane.active.empty()) return;
    to_send = std::move(lane.active);
    lane.active = ByteBuffer{};
    traced = std::move(lane.traced);
    lane.traced.clear();
    nonempty_lanes_.fetch_sub(1, std::memory_order_relaxed);
    metrics_.nonempty_lanes->sub(1);
  }
  if (!traced.empty()) seal_traced(to_send, traced);
  metrics_.flush_explicit->inc();
  lamellae_.charge(lamellae_.params().agg_flush_overhead_ns);
  transmit(dst, std::move(to_send), progress);
}

void OutgoingQueues::flush_all(const ProgressFn& progress) {
  for (pe_id dst = 0; dst < lanes_.size(); ++dst) flush(dst, progress);
}

void OutgoingQueues::recycle(ByteBuffer buf) {
  if (buf.capacity() == 0) return;
  if (pool_.release(std::move(buf))) metrics_.buffers_recycled->inc();
}

void OutgoingQueues::transmit(pe_id dst, ByteBuffer buf,
                              const ProgressFn& progress) {
  metrics_.buffers_sent->inc();
  metrics_.bytes_sent->inc(buf.size());
  // try_send consumes the buffer only on success; on backpressure, make
  // progress on our own inbox (which can unblock the destination) and retry.
  while (!lamellae_.try_send(dst, buf)) {
    metrics_.backpressure_stalls->inc();
    progress();
  }
}

}  // namespace lamellar
