#include "lamellae/smp_lamellae.hpp"

namespace lamellar {

SmpLamellae::SmpLamellae(ShmemLamellaeGroup::Layout layout, bool virtual_time)
    : group_(std::make_unique<ShmemLamellaeGroup>(
          1, layout, paper_perf_params(), PeMapping{1}, virtual_time)),
      inner_(group_->endpoint(0)) {}

}  // namespace lamellar
