// Offset-based heap allocator for RDMA memory regions.
//
// The Lamellae reserves a large arena per PE at startup (paper Sec. III-A1):
// part is runtime-internal, the rest serves as a dynamic heap for user-level
// distributed structures.  This allocator manages offsets within that arena
// with a first-fit free list and boundary coalescing.  Offsets (not pointers)
// are the currency so the same value is meaningful on every PE for symmetric
// allocations.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>

#include "common/error.hpp"
#include "common/types.hpp"

namespace lamellar {

class OffsetHeap {
 public:
  /// Manage the range [base, base + size).
  OffsetHeap(std::size_t base, std::size_t size);

  /// Allocate `bytes` with the given power-of-two alignment.  Returns the
  /// offset of the allocation.  Throws OutOfMemoryError when exhausted.
  std::size_t alloc(std::size_t bytes, std::size_t align = 16);

  /// Release an allocation previously returned by alloc().
  void free(std::size_t offset);

  [[nodiscard]] std::size_t bytes_free() const;
  [[nodiscard]] std::size_t bytes_used() const;
  [[nodiscard]] std::size_t base() const { return base_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t live_allocations() const;

  /// Check every structural invariant under the lock and return the number
  /// of free blocks.  Throws Error on violation.  Invariants: free blocks
  /// are sorted, in-range, disjoint and fully coalesced (no two adjacent);
  /// live blocks are in-range and disjoint from every free block; and
  /// bytes_used + bytes_free == size.  Safe to call concurrently with
  /// alloc/free — used by the stress harness at quiesce points.
  std::size_t debug_validate() const;

 private:
  // All internal bookkeeping is base-RELATIVE (offsets from base_), so heap
  // state never encodes where the arena sits; base_ is applied only at the
  // public API boundary.  See the conversion note in heap.cpp.
  struct Block {
    std::size_t start;  ///< block start including alignment padding (relative)
    std::size_t len;    ///< total block length including padding
  };

  const std::size_t base_;
  const std::size_t size_;
  mutable std::mutex mu_;
  std::map<std::size_t, std::size_t> free_;  ///< relative start -> length
  std::map<std::size_t, Block> live_;        ///< relative user offset -> block
  std::size_t used_ = 0;
};

}  // namespace lamellar
