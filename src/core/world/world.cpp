#include "core/world/world.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/world/mp_runtime.hpp"
#include "obs/report.hpp"

namespace lamellar {

// ---- AmContext accessors that need World's definition ----

pe_id AmContext::current_pe() const { return world_.my_pe(); }
std::size_t AmContext::num_pes() const { return world_.num_pes(); }

// ---- Darc deserialization context ----

DarcManager& current_darc_manager() {
  World* w = current_world();
  if (w == nullptr) {
    throw Error("Darc deserialized outside a runtime context");
  }
  return w->darc_manager();
}

// ---- Team ----

std::size_t Team::my_rank() const {
  auto r = rank_of(world_->my_pe());
  if (!r) throw Error("Team::my_rank: calling PE is not a member");
  return *r;
}

void Team::barrier() {
  // Flush so AMs staged before the barrier are in flight, then rendezvous.
  // The team rank is the participant's stable identity in the tree barrier.
  world_->engine().flush();
  if (world_->cross_process()) {
    // Sibling PEs are other processes, so the in-process SenseBarrier can't
    // reach them; the full-world team routes through the lamellae barrier.
    // Sub-teams would need a team barrier in the shared segment — rejected
    // at creation time by the mp rendezvous, so this cannot be one.
    if (size() != world_->num_pes()) {
      throw Error("Team::barrier: sub-team barrier under a process-separated "
                  "backend");
    }
    world_->lamellae().barrier();
    return;
  }
  shared_->barrier.arrive_and_wait(my_rank(), &world_->lamellae().clock(),
                                   world_->lamellae().params().barrier_ns);
}

// ---- OneSidedRegistry ----

std::uint64_t OneSidedRegistry::install_weighted(std::size_t offset,
                                                 std::uint64_t weight) {
  std::lock_guard lock(mu_);
  const std::uint64_t key = next_key_++;
  entries_.emplace(key, Entry{offset, weight});
  return key;
}

void OneSidedRegistry::return_weight(std::uint64_t key, std::uint64_t weight,
                                     Lamellae& lamellae) {
  std::size_t offset = 0;
  bool free_now = false;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      throw Error("OneSidedRegistry: weight returned to unknown region");
    }
    if (weight > it->second.weight) {
      throw Error("OneSidedRegistry: weight overflow on return");
    }
    it->second.weight -= weight;
    if (it->second.weight == 0) {
      offset = it->second.offset;
      free_now = true;
      entries_.erase(it);
    }
  }
  if (free_now) lamellae.free_onesided(offset);
}

std::size_t OneSidedRegistry::live() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

// ---- World ----

World::World(WorldBackend& backend, std::unique_ptr<Lamellae> lamellae,
             pe_id pe, WorldGroup* group)
    : backend_(backend), group_(group), lamellae_(std::move(lamellae)) {
  // The pool's idle hook needs the engine, which needs the pool: break the
  // cycle with a deferred indirection.  The slot is atomic because workers
  // start polling it before the engine exists; the release store below
  // publishes the fully constructed engine to their acquire loads.
  auto engine_slot = std::make_shared<std::atomic<AmEngine*>>(nullptr);
  pool_ = std::make_unique<ThreadPool>(
      backend.config().threads_per_pe,
      [engine_slot] {
        if (AmEngine* eng = engine_slot->load(std::memory_order_acquire)) {
          eng->progress();
        }
      },
      SchedulerObs{&lamellae_->metrics(), &backend.tracer(),
                   &lamellae_->clock(), pe},
      std::chrono::microseconds(backend.config().park_timeout_us));
  engine_ = std::make_unique<AmEngine>(*lamellae_, *pool_, backend.config(),
                                       &backend.tracer());
  engine_slot->store(engine_.get(), std::memory_order_release);
  engine_->bind_world(this);
  darcs_ = std::make_unique<DarcManager>(*engine_);
  onesided_ = std::make_unique<OneSidedRegistry>(*engine_);
}

const RuntimeConfig& World::config() const { return backend_.config(); }

void World::set_agg_threshold(std::size_t bytes) {
  engine_->outgoing().set_flush_threshold(bytes);
}

WorldGroup& World::group() {
  if (group_ == nullptr) {
    throw Error("World::group: no in-process WorldGroup under a "
                "process-separated backend");
  }
  return *group_;
}

void World::barrier() {
  engine_->flush();
  obs::TraceCollector& tracer = backend_.tracer();
  if (tracer.enabled()) {
    tracer.record({"barrier", "sync", my_pe(), lamellae_->clock().now(), 0,
                   'i', 0});
  }
  lamellae_->barrier();
}

Team World::create_team(std::vector<pe_id> members) {
  std::sort(members.begin(), members.end());
  const bool member =
      std::binary_search(members.begin(), members.end(), my_pe());
  Team result{};
  if (member) {
    auto shared = backend_.rendezvous_team(my_pe(), std::move(members));
    result = Team(this, shared);
  }
  barrier();  // collective over the world
  return result;
}

Team World::split_block(std::size_t block) {
  if (block == 0) throw Error("split_block: block must be positive");
  std::vector<pe_id> mine;
  const pe_id first = (my_pe() / block) * block;
  for (pe_id p = first; p < std::min<pe_id>(first + block, num_pes()); ++p) {
    mine.push_back(p);
  }
  // Every PE calls rendezvous with its own block; blocks rendezvous
  // independently keyed by their member sets via per-PE sequencing.
  auto shared = backend_.rendezvous_team(my_pe(), std::move(mine));
  barrier();
  return Team(this, shared);
}

void World::finalize() {
  while (!backend_.quiesce_round(*this)) {
  }
  barrier();
}

// ---- WorldGroup ----

namespace {
ShmemLamellaeGroup::Layout layout_from(const RuntimeConfig& cfg) {
  ShmemLamellaeGroup::Layout layout;
  layout.internal_bytes = cfg.internal_heap_bytes;
  layout.symmetric_bytes = cfg.symmetric_heap_bytes;
  layout.onesided_bytes = cfg.onesided_heap_bytes;
  return layout;
}
}  // namespace

WorldGroup::WorldGroup(std::size_t num_pes, RuntimeConfig cfg,
                       PerfParams params, PeMapping mapping, bool virtual_time)
    : cfg_(cfg),
      tracer_(!cfg.trace_file.empty(), cfg.trace_ring_capacity),
      lamellae_group_(num_pes, layout_from(cfg), params, mapping, virtual_time,
                      cfg.metrics_mode != MetricsMode::kOff),
      team_seq_(num_pes, 0) {
  worlds_.reserve(num_pes);
  for (pe_id pe = 0; pe < num_pes; ++pe) {
    worlds_.push_back(std::make_unique<World>(
        *this, lamellae_group_.endpoint(pe), pe, this));
  }
  // Each world starts with the all-PEs team.
  std::vector<pe_id> all(num_pes);
  for (pe_id pe = 0; pe < num_pes; ++pe) all[pe] = pe;
  auto shared = std::make_shared<TeamShared>(0, all, num_pes);
  for (pe_id pe = 0; pe < num_pes; ++pe) {
    worlds_[pe]->world_team_ = Team(worlds_[pe].get(), shared);
  }
  if (cfg_.metrics_interval_ms > 0) {
    telemetry_ = std::make_unique<obs::TelemetrySampler>(
        cfg_.metrics_interval_ms, cfg_.metrics_file,
        [this] { return metrics_snapshots(); });
    telemetry_->start();
  }
}

WorldGroup::~WorldGroup() {
  for (auto& w : worlds_) w->pool_->shutdown();
  emit_reports();
}

std::vector<obs::MetricsSnapshot> WorldGroup::metrics_snapshots() const {
  std::vector<obs::MetricsSnapshot> snaps;
  snaps.reserve(worlds_.size());
  for (const auto& w : worlds_) snaps.push_back(w->metrics_snapshot());
  return snaps;
}

void WorldGroup::emit_reports() {
  if (reports_emitted_) return;
  reports_emitted_ = true;
  if (telemetry_) telemetry_->stop();  // final tick before the reports
  if (cfg_.metrics_mode == MetricsMode::kSummary) {
    obs::print_summary(stderr, metrics_snapshots());
  } else if (cfg_.metrics_mode == MetricsMode::kJson) {
    obs::print_json(stderr, metrics_snapshots());
  }
  if (!cfg_.trace_file.empty()) {
    if (cfg_.trace_per_pe) {
      for (pe_id pe = 0; pe < worlds_.size(); ++pe) {
        const std::string path = obs::per_pe_path(cfg_.trace_file, pe);
        if (!tracer_.write_chrome_json(path, static_cast<std::int64_t>(pe))) {
          std::fprintf(stderr, "lamellar: failed to write trace file %s\n",
                       path.c_str());
        }
      }
    } else if (!tracer_.write_chrome_json(cfg_.trace_file)) {
      std::fprintf(stderr, "lamellar: failed to write trace file %s\n",
                   cfg_.trace_file.c_str());
    }
  }
}

std::uint64_t WorldGroup::total_outstanding() const {
  std::uint64_t sum = 0;
  for (const auto& w : worlds_) {
    sum += w->engine_->outstanding();
    if (w->engine_->outgoing().has_pending()) ++sum;
    if (!w->lamellae_->inbox_empty()) ++sum;
    sum += w->pool_->pending();
  }
  return sum;
}

bool WorldGroup::quiesce_round(pe_id pe) {
  World& w = *worlds_[pe];
  w.engine_->wait_all();
  w.barrier();
  if (pe == 0) {
    quiesce_decision_.store(total_outstanding() == 0,
                            std::memory_order_release);
  }
  w.barrier();
  return quiesce_decision_.load(std::memory_order_acquire);
}

bool WorldGroup::quiesce_round(World& world) {
  return quiesce_round(world.my_pe());
}

std::shared_ptr<TeamShared> WorldGroup::rendezvous_team(
    pe_id pe, std::vector<pe_id> members) {
  std::lock_guard lock(team_mu_);
  // Collective sequencing: the n-th team-creating call on each member PE
  // refers to the same team.  Key pending teams by (min member, per-PE seq).
  const std::uint64_t seq = team_seq_[pe]++;
  const std::uint64_t key = (members.front() << 32) | seq;
  auto it = pending_teams_.find(key);
  if (it == pending_teams_.end()) {
    auto shared = std::make_shared<TeamShared>(next_team_uid_++,
                                               std::move(members),
                                               worlds_.size());
    if (shared->members.size() > 1) {
      pending_teams_.emplace(key,
                             PendingTeam{shared, shared->members.size() - 1});
    }
    return shared;
  }
  auto shared = it->second.shared;
  if (--it->second.remaining == 0) pending_teams_.erase(it);
  return shared;
}

// ---- run_world ----

void run_world(std::size_t npes, const std::function<void(World&)>& body,
               RuntimeConfig cfg, PerfParams params, PeMapping mapping,
               bool virtual_time) {
  if (cfg.backend == BackendKind::kMmap) {
    run_world_mmap(npes, body, cfg);
    return;
  }
  WorldGroup group(npes, cfg, params, mapping, virtual_time);
  std::vector<std::thread> mains;
  std::vector<std::exception_ptr> errors(npes);
  mains.reserve(npes);
  for (pe_id pe = 0; pe < npes; ++pe) {
    mains.emplace_back([&, pe] {
      World& world = group.world(pe);
      try {
        body(world);
      } catch (...) {
        errors[pe] = std::current_exception();
      }
      // Implicit finalization (Listing 1 discussion): the PE stays alive,
      // processing AMs, until every PE is ready to deinitialize.
      if (errors[pe] == nullptr) world.finalize();
    });
  }
  for (auto& t : mains) t.join();
  for (auto& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

}  // namespace lamellar
