// Teams: subsets of the world's PEs (paper Sec. III nomenclature).
//
// A team maps team ranks to world PE ids, provides team-scoped barriers, and
// owns the id space for distributed objects (Darcs, arrays, regions) created
// on it.  Team creation is collective; sub-teams are supported by splitting
// an existing team's members.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "fabric/barrier.hpp"

namespace lamellar {

class World;

/// State shared by every PE's handle to the same team.
struct TeamShared {
  TeamShared(std::uint64_t uid_in, std::vector<pe_id> members_in,
             std::size_t world_pes)
      : uid(uid_in),
        members(std::move(members_in)),
        barrier(members.size()),
        darc_seq(world_pes) {
    for (auto& c : darc_seq) c.store(0);
  }

  std::uint64_t uid;
  std::vector<pe_id> members;  ///< world PE ids, sorted ascending
  SenseBarrier barrier;
  /// Per-world-PE sequence counters for collective object ids; members
  /// advance in lockstep because collective creation is SPMD-ordered.
  std::vector<std::atomic<std::uint64_t>> darc_seq;
};

class Team {
 public:
  Team() = default;
  Team(World* world, std::shared_ptr<TeamShared> shared)
      : world_(world), shared_(std::move(shared)) {}

  [[nodiscard]] bool valid() const { return shared_ != nullptr; }
  [[nodiscard]] std::size_t size() const { return shared_->members.size(); }
  [[nodiscard]] std::uint64_t uid() const { return shared_->uid; }
  [[nodiscard]] const std::vector<pe_id>& members() const {
    return shared_->members;
  }

  /// World PE id of team rank `rank`.
  [[nodiscard]] pe_id world_pe(std::size_t rank) const {
    if (rank >= shared_->members.size()) {
      throw_bounds("Team::world_pe", rank, shared_->members.size());
    }
    return shared_->members[rank];
  }

  /// Team rank of a world PE, if a member.
  [[nodiscard]] std::optional<std::size_t> rank_of(pe_id world_pe) const {
    const auto& m = shared_->members;
    auto it = std::lower_bound(m.begin(), m.end(), world_pe);
    if (it == m.end() || *it != world_pe) return std::nullopt;
    return static_cast<std::size_t>(it - m.begin());
  }

  [[nodiscard]] bool contains(pe_id world_pe) const {
    return rank_of(world_pe).has_value();
  }

  /// The calling PE's rank on this team (throws if not a member).
  [[nodiscard]] std::size_t my_rank() const;

  /// Root (lowest world PE) of the team — owner of Darc lifetime tracking.
  [[nodiscard]] pe_id root_pe() const { return shared_->members.front(); }

  /// Team-scoped barrier: blocks the calling thread until all members
  /// arrive (collective, member PEs only).
  void barrier();

  /// Allocate the next collective object id, consistent across members.
  [[nodiscard]] darc_id next_object_id(pe_id my_world_pe) const {
    const std::uint64_t seq = shared_->darc_seq[my_world_pe].fetch_add(1);
    return (shared_->uid << 24) | (seq & 0xFFFFFF);
  }

  [[nodiscard]] World& world() const { return *world_; }

 private:
  World* world_ = nullptr;
  std::shared_ptr<TeamShared> shared_;
};

}  // namespace lamellar
