#include "core/world/mp_runtime.hpp"

#include <cstdio>
#include <numeric>

#include "common/process_group.hpp"
#include "obs/report.hpp"

namespace lamellar {

MpProcessRuntime::MpProcessRuntime(const std::string& segment_name, pe_id pe,
                                   RuntimeConfig cfg)
    : cfg_(std::move(cfg)),
      tracer_(!cfg_.trace_file.empty(), cfg_.trace_ring_capacity) {
  // Each process writes its own files: siblings are separate processes, so
  // unlike the in-process group there is no shared collector to merge into.
  if (!cfg_.trace_file.empty()) {
    cfg_.trace_file = obs::per_pe_path(cfg_.trace_file, pe);
    cfg_.trace_per_pe = false;
  }
  if (!cfg_.metrics_file.empty()) {
    cfg_.metrics_file = obs::per_pe_path(cfg_.metrics_file, pe);
  }

  auto lam = std::make_unique<MmapLamellae>(segment_name, pe, cfg_);
  lamellae_ = lam.get();
  world_ = std::make_unique<World>(*this, std::move(lam), pe);

  std::vector<pe_id> all(world_->num_pes());
  std::iota(all.begin(), all.end(), 0);
  auto shared =
      std::make_shared<TeamShared>(0, std::move(all), world_->num_pes());
  world_->world_team_ = Team(world_.get(), std::move(shared));

  if (cfg_.metrics_interval_ms > 0) {
    telemetry_ = std::make_unique<obs::TelemetrySampler>(
        cfg_.metrics_interval_ms, cfg_.metrics_file,
        [this] {
          return std::vector<obs::MetricsSnapshot>{
              world_->metrics_snapshot()};
        });
    telemetry_->start();
  }
}

MpProcessRuntime::~MpProcessRuntime() {
  try {
    finish();
  } catch (...) {
    // Teardown on the error path must not mask the original exception.
  }
  world_.reset();
}

void MpProcessRuntime::finish() {
  if (finished_) return;
  finished_ = true;
  if (telemetry_) telemetry_->stop();
  const std::vector<obs::MetricsSnapshot> snaps{world_->metrics_snapshot()};
  if (cfg_.metrics_mode == MetricsMode::kSummary) {
    obs::print_summary(stderr, snaps);
  } else if (cfg_.metrics_mode == MetricsMode::kJson) {
    obs::print_json(stderr, snaps);
  }
  if (!cfg_.trace_file.empty() &&
      !tracer_.write_chrome_json(cfg_.trace_file)) {
    std::fprintf(stderr, "lamellar: failed to write trace file %s\n",
                 cfg_.trace_file.c_str());
  }
  // Workers poll the engine through the idle hook; they must be joined
  // before World's members destruct (same ordering WorldGroup's destructor
  // enforces for the in-process backend).
  world_->pool().shutdown();
  lamellae_->mark_exited();
}

bool MpProcessRuntime::quiesce_round(World& world) {
  // Cross-process mirror of WorldGroup::quiesce_round: drain local work,
  // publish this PE's outstanding count into its control-segment slot, let
  // PE 0 sum all slots into the shared decision word, read it back.  The
  // three barriers keep publish/decide/read in distinct epochs.
  const pe_id me = world.my_pe();
  world.engine().wait_all();
  world.barrier();
  std::uint64_t mine = world.engine().outstanding() + world.pool().pending();
  if (world.engine().outgoing().has_pending()) ++mine;
  if (!world.lamellae().inbox_empty()) ++mine;
  lamellae_->quiesce_slot(me).store(mine, std::memory_order_release);
  world.barrier();
  if (me == 0) {
    std::uint64_t sum = 0;
    for (pe_id p = 0; p < world.num_pes(); ++p) {
      sum += lamellae_->quiesce_slot(p).load(std::memory_order_acquire);
    }
    lamellae_->quiesce_decision().store(sum == 0 ? 1 : 0,
                                        std::memory_order_release);
  }
  world.barrier();
  return lamellae_->quiesce_decision().load(std::memory_order_acquire) == 1;
}

std::shared_ptr<TeamShared> MpProcessRuntime::rendezvous_team(
    pe_id /*pe*/, std::vector<pe_id> members) {
  if (members.size() != world_->num_pes()) {
    throw Error(
        "create_team: sub-world teams are unsupported under "
        "LAMELLAR_BACKEND=mmap (got " +
        std::to_string(members.size()) + " of " +
        std::to_string(world_->num_pes()) +
        " PEs); replicated team state and the replicated symmetric heap "
        "both require full-world collectives");
  }
  // Full-world teams need no cross-process rendezvous: every process runs
  // the identical SPMD sequence of create_team calls, so per-process
  // replicas with a lockstep uid counter agree on team identity (and hence
  // on the Darc/object id space derived from it).
  return std::make_shared<TeamShared>(next_team_uid_++, std::move(members),
                                      world_->num_pes());
}

// ---------------------------------------------------------------------------
// run_world_mmap (parent side)
// ---------------------------------------------------------------------------

void run_world_mmap(std::size_t npes,
                    const std::function<void(World&)>& body,
                    const RuntimeConfig& cfg) {
  MmapSegment segment = MmapSegment::create(npes, cfg);
  ProcessGroup procs;
  for (pe_id pe = 0; pe < npes; ++pe) {
    procs.spawn([&, pe]() -> int {
      try {
        MpProcessRuntime runtime(segment.name(), pe, cfg);
        body(runtime.world());
        // Implicit finalization, exactly as in-process: the PE keeps
        // serving AMs until the whole world quiesces.
        runtime.world().finalize();
        runtime.finish();
        return 0;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "lamellar[mp pe %zu]: %s\n", pe, e.what());
        return 1;
      }
    });
  }
  const auto results = procs.wait_all(
      cfg.mp_wait_timeout_ms, [&segment](const ProcessGroup::Child& child) {
        // Mark casualties immediately so survivors' barriers diagnose the
        // dead PE instead of sleeping out their timeout.
        if (!child.ok()) segment.mark_pe_dead(child.index);
      });
  segment.unlink();
  for (const auto& child : results) {
    if (!child.out.empty()) {
      std::fwrite(child.out.data(), 1, child.out.size(), stdout);
    }
    if (!child.err.empty()) {
      std::fwrite(child.err.data(), 1, child.err.size(), stderr);
    }
  }
  std::fflush(stdout);
  std::fflush(stderr);
  // Report the root cause: a signal-killed child over one that exited with
  // an error code (survivors exit 1 *because* of the casualty).
  const ProcessGroup::Child* culprit = nullptr;
  for (const auto& child : results) {
    if (child.ok()) continue;
    if (culprit == nullptr || (child.signal != 0 && culprit->signal == 0)) {
      culprit = &child;
    }
  }
  if (culprit != nullptr) {
    std::string msg = "run_world(mmap): PE " + std::to_string(culprit->index) +
                      " " + culprit->describe();
    const std::size_t nl = culprit->err.find('\n');
    if (!culprit->err.empty()) {
      msg += ": " + culprit->err.substr(0, nl);
    }
    throw Error(msg);
  }
}

}  // namespace lamellar
