// LamellarWorld: the top-level per-PE runtime handle (paper Sec. III,
// Listing 1).
//
// A WorldGroup owns the whole in-process "cluster": the shared fabric, one
// Lamellae endpoint + work-stealing pool + AM engine + Darc manager per PE.
// `run_world(npes, fn)` launches one SPMD "main" thread per PE — the
// in-process equivalent of the paper's slurm-launched processes — and tears
// everything down with the paper's implicit-finalization semantics: each
// PE's world stays responsive (its pool keeps executing AMs) until every PE
// is ready to deinitialize.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "core/am/am_engine.hpp"
#include "core/darc/darc.hpp"
#include "core/scheduler/thread_pool.hpp"
#include "core/world/team.hpp"
#include "lamellae/shmem_lamellae.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace lamellar {

class World;
class WorldGroup;
template <typename T>
class OneSidedMemoryRegion;

/// What a World needs from its launcher, independent of whether sibling PEs
/// are threads in this process (WorldGroup) or forked processes over a
/// shared segment (MpProcessRuntime, DESIGN.md §13).  Everything else a
/// World does goes through its own Lamellae endpoint.
class WorldBackend {
 public:
  virtual ~WorldBackend() = default;

  [[nodiscard]] virtual const RuntimeConfig& config() const = 0;
  virtual obs::TraceCollector& tracer() = 0;

  /// One round of the termination-detection loop run by World::finalize;
  /// true when the whole world reached quiescence.
  virtual bool quiesce_round(World& world) = 0;

  /// Collective team-creation rendezvous (see WorldGroup::rendezvous_team).
  virtual std::shared_ptr<TeamShared> rendezvous_team(
      pe_id pe, std::vector<pe_id> members) = 0;

  /// True when sibling PEs live in other OS processes: team barriers must
  /// then go through the lamellae instead of in-process structures.
  [[nodiscard]] virtual bool cross_process() const { return false; }
};

/// One-sided memory-region lifetime registry: the origin PE tracks the
/// total reference *weight*; see core/memregion/onesided_region.hpp for the
/// weighted-counting protocol description.
class OneSidedRegistry {
 public:
  explicit OneSidedRegistry(AmEngine& engine) : engine_(engine) {}

  /// Register a region whose initial proxy holds `weight`.
  std::uint64_t install_weighted(std::size_t offset, std::uint64_t weight);

  /// Return `weight` to the registry; frees the allocation at zero.
  void return_weight(std::uint64_t key, std::uint64_t weight,
                     Lamellae& lamellae);

  [[nodiscard]] std::size_t live() const;

  AmEngine& engine() { return engine_; }

 private:
  struct Entry {
    std::size_t offset = 0;
    std::uint64_t weight = 0;
  };
  AmEngine& engine_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t next_key_ = 1;
};

class World {
 public:
  /// `group` may be null: it is the in-process WorldGroup when the backend
  /// is one (kept for group-wide helpers like stress harness quiescing),
  /// and null under process-separated backends.
  World(WorldBackend& backend, std::unique_ptr<Lamellae> lamellae, pe_id pe,
        WorldGroup* group = nullptr);
  ~World() = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // ---- identity ----
  [[nodiscard]] pe_id my_pe() const { return lamellae_->my_pe(); }
  [[nodiscard]] std::size_t num_pes() const { return lamellae_->num_pes(); }

  // ---- active messages (Listing 1 API) ----

  /// Launch `am` on PE `pe`; returns a future for exec()'s result.
  template <ActiveMessageType Am>
  Future<am_return_t<Am>> exec_am_pe(pe_id pe, Am am) {
    return engine_->send(pe, std::move(am));
  }

  /// Launch a copy of `am` on every PE (including this one).
  template <ActiveMessageType Am>
  Future<std::vector<am_return_t<Am>>> exec_am_all(const Am& am) {
    return engine_->send_all(am);
  }

  /// Block (helping: this thread executes runtime tasks while waiting)
  /// until `f` completes.  Only blocks the local PE.
  template <typename T>
  T block_on(Future<T> f) {
    return engine_->block_on(std::move(f));
  }

  /// Block until every AM launched by this PE has completed.
  void wait_all() { engine_->wait_all(); }

  /// Global synchronization across all PEs in the world.
  void barrier();

  // ---- distributed objects ----

  /// Collectively create a Darc; every PE supplies its own instance.
  template <typename T>
  Darc<T> new_darc(T item) {
    return new_darc_on(world_team_, std::move(item));
  }

  /// Collectively create a Darc on a team (member PEs only).
  template <typename T>
  Darc<T> new_darc_on(const Team& team, T item) {
    const darc_id id = team.next_object_id(my_pe());
    auto sp = std::make_shared<T>(std::move(item));
    T* raw = sp.get();
    darcs_->install(id, std::move(sp), team.root_pe());
    if (my_pe() == team.root_pe()) darcs_->install_root(id, team.members());
    const_cast<Team&>(team).barrier();
    return Darc<T>(darcs_.get(), id, raw);
  }

  // ---- teams ----

  /// The team containing every PE.
  [[nodiscard]] const Team& team() const { return world_team_; }

  /// Collectively (over the *world*) create a team from `members` (sorted
  /// world PE ids).  Every world PE must call; non-members receive an
  /// invalid Team handle.
  Team create_team(std::vector<pe_id> members);

  /// Split the world into contiguous teams of `block` PEs each.
  Team split_block(std::size_t block);

  // ---- accessors for runtime layers ----
  AmEngine& engine() { return *engine_; }
  Lamellae& lamellae() { return *lamellae_; }
  DarcManager& darc_manager() { return *darcs_; }
  OneSidedRegistry& onesided_registry() { return *onesided_; }
  ThreadPool& pool() { return *pool_; }
  [[nodiscard]] const RuntimeConfig& config() const;
  WorldBackend& backend() { return backend_; }

  /// The in-process WorldGroup, when this world was launched by one.
  /// Throws under process-separated backends (use backend() there).
  WorldGroup& group();

  /// True when sibling PEs are other OS processes (LAMELLAR_BACKEND=mmap).
  [[nodiscard]] bool cross_process() const {
    return backend_.cross_process();
  }

  /// Virtual time on this PE's clock (ns).
  [[nodiscard]] sim_nanos time_ns() { return lamellae_->clock().now(); }

  /// Runtime-adjust this PE's aggregation flush threshold (bytes).  Local
  /// to the calling PE; records already staged depart at whichever value
  /// their next commit observes.  Lets ablations sweep thresholds within
  /// one world instead of restarting, and note the adaptive controller
  /// retunes the same value — combining both in one run makes the sweep
  /// fight the controller.
  void set_agg_threshold(std::size_t bytes);

  // ---- observability ----

  /// This PE's metrics registry (live handles; register your own via
  /// counter()/gauge()/histogram()).  Inert when LAMELLAR_METRICS=off.
  obs::MetricsRegistry& metrics() { return lamellae_->metrics(); }

  /// Point-in-time plain-struct copy of every metric on this PE.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const {
    return lamellae_->metrics().snapshot(lamellae_->my_pe());
  }

  /// Paper-style implicit finalization: drain outstanding work and reach
  /// global quiescence.  Called by run_world after the SPMD body returns.
  void finalize();

 private:
  friend class WorldGroup;
  friend class MpProcessRuntime;

  WorldBackend& backend_;
  WorldGroup* group_ = nullptr;
  std::unique_ptr<Lamellae> lamellae_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<AmEngine> engine_;
  std::unique_ptr<DarcManager> darcs_;
  std::unique_ptr<OneSidedRegistry> onesided_;
  Team world_team_;
};

/// The in-process "cluster": shared state plus one World per PE.
class WorldGroup : public WorldBackend {
 public:
  explicit WorldGroup(std::size_t num_pes,
                      RuntimeConfig cfg = RuntimeConfig::from_env(),
                      PerfParams params = paper_perf_params(),
                      PeMapping mapping = PeMapping{},
                      bool virtual_time = true);
  ~WorldGroup() override;

  WorldGroup(const WorldGroup&) = delete;
  WorldGroup& operator=(const WorldGroup&) = delete;

  [[nodiscard]] std::size_t num_pes() const { return worlds_.size(); }
  World& world(pe_id pe) { return *worlds_[pe]; }
  ShmemLamellaeGroup& lamellae_group() { return lamellae_group_; }
  [[nodiscard]] const RuntimeConfig& config() const override { return cfg_; }

  /// Group-wide trace collector; null object pattern not used — may be
  /// consulted but is disabled unless LAMELLAR_TRACE_FILE is set.
  obs::TraceCollector& tracer() override { return tracer_; }

  /// Metrics snapshots for every PE (pe-indexed).
  [[nodiscard]] std::vector<obs::MetricsSnapshot> metrics_snapshots() const;

  /// Emit the end-of-run reports now (summary/JSON per metrics_mode, trace
  /// file per trace_file).  Runs automatically at destruction; calling it
  /// early disables the automatic emission.
  void emit_reports();

  /// Sum of outstanding AM requests over all PEs plus any queued buffers —
  /// zero only at global quiescence (valid while all mains are between
  /// barriers).
  [[nodiscard]] std::uint64_t total_outstanding() const;

  /// One round of the termination-detection loop run by World::finalize.
  /// Returns true when the group reached quiescence.
  bool quiesce_round(pe_id pe);
  bool quiesce_round(World& world) override;

  /// Shared team registry: collective team creation rendezvous.
  std::shared_ptr<TeamShared> rendezvous_team(
      pe_id pe, std::vector<pe_id> members) override;

 private:
  RuntimeConfig cfg_;
  obs::TraceCollector tracer_;  // before lamellae_group_: outlives workers
  ShmemLamellaeGroup lamellae_group_;
  std::vector<std::unique_ptr<World>> worlds_;
  /// Background time-series sampler (LAMELLAR_METRICS_INTERVAL_MS); null
  /// when disabled.  Declared after worlds_: its thread snapshots them, so
  /// it must stop (emit_reports) / destruct first.
  std::unique_ptr<obs::TelemetrySampler> telemetry_;
  bool reports_emitted_ = false;

  std::mutex team_mu_;
  std::uint64_t next_team_uid_ = 1;
  struct PendingTeam {
    std::shared_ptr<TeamShared> shared;
    std::size_t remaining = 0;
  };
  std::unordered_map<std::uint64_t, PendingTeam> pending_teams_;
  std::vector<std::uint64_t> team_seq_;  // per-PE collective team counter

  std::atomic<bool> quiesce_decision_{false};
};

/// Run an SPMD function on `npes` in-process PEs: the equivalent of
/// launching the paper's binary under slurm with `npes` processes.
void run_world(std::size_t npes, const std::function<void(World&)>& body,
               RuntimeConfig cfg = RuntimeConfig::from_env(),
               PerfParams params = paper_perf_params(),
               PeMapping mapping = PeMapping{}, bool virtual_time = true);

}  // namespace lamellar
