// Per-process World bring-up/teardown for the process-separated backend
// (DESIGN.md §13).
//
// Under LAMELLAR_BACKEND=mmap, run_world forks one OS process per PE over a
// shared MmapSegment.  Inside each child, an MpProcessRuntime is the
// WorldBackend: it owns that process's single World (over an MmapLamellae
// endpoint), reroutes the quiesce protocol through control words in the
// shared segment, restricts team rendezvous to full-world replicas, and
// retargets observability output (metrics summary/JSON, telemetry JSONL,
// trace files) to per-process paths so concurrent children never share a
// file and bench lines still merge.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "core/world/world.hpp"
#include "lamellae/mmap_lamellae.hpp"

namespace lamellar {

class MpProcessRuntime final : public WorldBackend {
 public:
  /// Attach to `segment_name` as PE `pe` and bring up this process's World.
  MpProcessRuntime(const std::string& segment_name, pe_id pe,
                   RuntimeConfig cfg);
  ~MpProcessRuntime() override;
  MpProcessRuntime(const MpProcessRuntime&) = delete;
  MpProcessRuntime& operator=(const MpProcessRuntime&) = delete;

  World& world() { return *world_; }

  [[nodiscard]] const RuntimeConfig& config() const override { return cfg_; }
  obs::TraceCollector& tracer() override { return tracer_; }
  bool quiesce_round(World& world) override;
  std::shared_ptr<TeamShared> rendezvous_team(
      pe_id pe, std::vector<pe_id> members) override;
  [[nodiscard]] bool cross_process() const override { return true; }

  /// Orderly teardown: stop telemetry, emit this process's reports, shut
  /// the pool down (workers must stop polling the engine before World's
  /// members destruct), and publish clean detach to peers.  Runs from the
  /// destructor too, so the error path cannot skip it.
  void finish();

 private:
  RuntimeConfig cfg_;
  obs::TraceCollector tracer_;
  std::unique_ptr<World> world_;
  MmapLamellae* lamellae_ = nullptr;  // owned by world_
  std::unique_ptr<obs::TelemetrySampler> telemetry_;
  std::uint64_t next_team_uid_ = 1;
  bool finished_ = false;
};

/// Fork `npes` PE processes over a fresh shared segment, run the SPMD body
/// in each, join with crash detection, and propagate the first failure as
/// an Error naming the casualty (its captured stderr included).  Called by
/// run_world when cfg.backend == BackendKind::kMmap.
void run_world_mmap(std::size_t npes,
                    const std::function<void(World&)>& body,
                    const RuntimeConfig& cfg);

}  // namespace lamellar
