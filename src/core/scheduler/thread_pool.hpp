// The per-PE work-stealing thread pool (paper Sec. III-B).
//
// Each PE owns one pool.  Workers run tasks from their own Chase–Lev deque,
// fall back to the shared injection queue, steal from siblings, and — when
// idle — invoke a progress hook that drains the PE's Lamellae inbox (this is
// how communication tasks interleave with computation, mirroring the paper's
// description of the thread pool executing both AMs and Lamellae-produced
// communication tasks).
//
// External threads (the PE "main" thread, or another PE delivering work) can
// also execute tasks cooperatively via try_run_one(): blocking operations
// (`block_on`, `wait_all`) *help* instead of parking, so a configuration
// with a single worker thread cannot deadlock.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"
#include "common/types.hpp"
#include "core/scheduler/deque.hpp"
#include "core/scheduler/task.hpp"
#include "fabric/virtual_clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lamellar {

/// Observability hookup for a pool: where to register the scheduler
/// counters and (optionally) record task spans.  All fields may be null —
/// the pool then resolves its handles against the inert registry, keeping
/// the hot path branch-light in uninstrumented/standalone uses.
struct SchedulerObs {
  obs::MetricsRegistry* registry = nullptr;
  obs::TraceCollector* tracer = nullptr;
  VirtualClock* clock = nullptr;  // virtual-time source for trace spans
  pe_id pe = 0;
};

class ThreadPool {
 public:
  using ProgressHook = std::function<void()>;

  /// Start `num_workers` threads.  `progress` (may be empty) is invoked by
  /// idle workers and by try_run_one when no task is available.
  /// `park_timeout` bounds how long an idle worker sleeps between progress
  /// polls; wakes for new work are notification-driven and do not wait for
  /// the timeout.
  explicit ThreadPool(
      std::size_t num_workers, ProgressHook progress = {},
      SchedulerObs obs = {},
      std::chrono::microseconds park_timeout = std::chrono::microseconds(200));

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submit a task from any thread.  Worker threads push to their own deque;
  /// external threads use the injection queue.
  void spawn(Task task);

  /// Submit a whole batch of tasks with a single pending_ update and a
  /// single wake, instead of per-task spawn/notify.  Used by receive-side
  /// dispatch to inject every AM of an aggregated buffer at once.
  void spawn_batch(std::vector<Task> tasks);

  /// Execute one pending task on the calling thread if available.  Returns
  /// true when a task ran.  Used by helping waits.
  bool try_run_one();

  /// Backpressure yield (DESIGN.md §14): run one pending task if there is
  /// one, else fall through to the progress hook and an OS yield so a gated
  /// sender never spins the core dry.  Counted under sched.coop_yields.
  /// Returns true when a task ran.
  bool cooperative_yield();

  /// Number of tasks submitted but not yet finished executing.
  [[nodiscard]] std::size_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

  /// Number of tasks queued (in a deque or the injection queue) but not yet
  /// claimed by any thread.  This is the park predicate: a worker never
  /// sleeps while it is non-zero, which closes the lost-wakeup window
  /// between a failed task search and the condition-variable wait.
  [[nodiscard]] std::size_t unclaimed() const {
    return unclaimed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

  /// Stop all workers after draining pending work.
  void shutdown();

 private:
  struct Worker {
    WorkStealingDeque<Task> deque;
    std::thread thread;
  };

  void worker_loop(std::size_t index);
  Task* find_task(std::size_t self_index);
  void run(Task* task);
  void notify_one();

  // Index of the calling worker in workers_, or npos for external threads.
  static thread_local ThreadPool* tl_pool;
  static thread_local std::size_t tl_worker_index;

  std::vector<std::unique_ptr<Worker>> workers_;
  MpmcQueue<Task*> injection_;
  ProgressHook progress_;
  std::chrono::microseconds park_timeout_;
  std::atomic<std::size_t> pending_{0};
  // Queued-but-unclaimed task count.  Incremented *before* a task becomes
  // visible in any queue, decremented by the claimant after a successful
  // find_task(), so it never underflows and a non-zero value is guaranteed
  // visible to a parking worker (the producer's notify path and the wait
  // predicate are both under sleep_mu_).
  std::atomic<std::size_t> unclaimed_{0};
  std::atomic<bool> stopping_{false};

  // Scheduler metrics ("sched.*"): always-valid handles (inert when no
  // registry was supplied), updated with relaxed atomics.
  obs::Counter* tasks_spawned_;
  obs::Counter* tasks_executed_;
  obs::Counter* tasks_stolen_;
  obs::Counter* steal_failures_;
  obs::Counter* coop_yields_;
  obs::Gauge* queue_depth_;
  obs::TraceCollector* tracer_;
  VirtualClock* trace_clock_;
  pe_id trace_pe_;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
};

}  // namespace lamellar
