#include "core/scheduler/thread_pool.hpp"

#include <chrono>

namespace lamellar {

thread_local ThreadPool* ThreadPool::tl_pool = nullptr;
thread_local std::size_t ThreadPool::tl_worker_index = 0;

ThreadPool::ThreadPool(std::size_t num_workers, ProgressHook progress,
                       SchedulerObs obs, std::chrono::microseconds park_timeout)
    : progress_(std::move(progress)), park_timeout_(park_timeout) {
  obs::MetricsRegistry& reg = obs.registry != nullptr
                                  ? *obs.registry
                                  : obs::MetricsRegistry::disabled_instance();
  tasks_spawned_ = &reg.counter("sched.tasks_spawned");
  tasks_executed_ = &reg.counter("sched.tasks_executed");
  tasks_stolen_ = &reg.counter("sched.tasks_stolen");
  steal_failures_ = &reg.counter("sched.steal_failures");
  coop_yields_ = &reg.counter("sched.coop_yields");
  queue_depth_ = &reg.gauge("sched.queue_depth");
  tracer_ = obs.tracer;
  trace_clock_ = obs.clock;
  trace_pe_ = obs.pe;
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::spawn(Task task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  unclaimed_.fetch_add(1, std::memory_order_release);
  tasks_spawned_->inc();
  // Delta update: set(pending+1) here raced with concurrent spawns/retires
  // and could publish a stale (lower) level over a newer one.
  queue_depth_->add(1);
  auto* heap_task = new Task(std::move(task));
  if (tl_pool == this) {
    workers_[tl_worker_index]->deque.push(heap_task);
  } else {
    injection_.push(heap_task);
  }
  notify_one();
}

void ThreadPool::spawn_batch(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  const std::size_t n = tasks.size();
  pending_.fetch_add(n, std::memory_order_acq_rel);
  unclaimed_.fetch_add(n, std::memory_order_release);
  tasks_spawned_->inc(n);
  queue_depth_->add(static_cast<std::int64_t>(n));
  for (Task& task : tasks) {
    auto* heap_task = new Task(std::move(task));
    if (tl_pool == this) {
      workers_[tl_worker_index]->deque.push(heap_task);
    } else {
      injection_.push(heap_task);
    }
  }
  // One wake for the whole batch; waking everyone lets idle workers start
  // stealing the freshly injected records immediately.
  std::lock_guard lock(sleep_mu_);
  if (n > 1) {
    sleep_cv_.notify_all();
  } else {
    sleep_cv_.notify_one();
  }
}

void ThreadPool::notify_one() {
  std::lock_guard lock(sleep_mu_);
  sleep_cv_.notify_one();
}

Task* ThreadPool::find_task(std::size_t self_index) {
  // 1. Own deque (LIFO for locality).
  if (self_index != static_cast<std::size_t>(-1)) {
    if (Task* t = workers_[self_index]->deque.pop()) {
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      return t;
    }
  }
  // 2. Injection queue.
  if (auto t = injection_.try_pop()) {
    unclaimed_.fetch_sub(1, std::memory_order_relaxed);
    return *t;
  }
  // 3. Steal (FIFO) from siblings.
  const std::size_t n = workers_.size();
  const std::size_t start = self_index == static_cast<std::size_t>(-1)
                                ? 0
                                : (self_index + 1) % n;
  bool attempted_steal = false;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == self_index) continue;
    attempted_steal = true;
    if (Task* t = workers_[victim]->deque.steal()) {
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      tasks_stolen_->inc();
      return t;
    }
  }
  if (attempted_steal) steal_failures_->inc();
  return nullptr;
}

void ThreadPool::run(Task* task) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    const sim_nanos t0 = trace_clock_ != nullptr ? trace_clock_->now() : 0;
    (*task)();
    const sim_nanos t1 = trace_clock_ != nullptr ? trace_clock_->now() : 0;
    tracer_->record({"task", "sched", trace_pe_, t0,
                     t1 >= t0 ? t1 - t0 : 0, 'X', 0});
  } else {
    (*task)();
  }
  delete task;
  tasks_executed_->inc();
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  queue_depth_->sub(1);
}

bool ThreadPool::try_run_one() {
  const std::size_t self =
      tl_pool == this ? tl_worker_index : static_cast<std::size_t>(-1);
  if (Task* t = find_task(self)) {
    run(t);
    return true;
  }
  if (progress_) progress_();
  return false;
}

bool ThreadPool::cooperative_yield() {
  coop_yields_->inc();
  if (try_run_one()) return true;
  // No runnable task and the progress hook has already polled: give the
  // core away so the threads that hold our completions can run.
  std::this_thread::yield();
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker_index = index;
  std::size_t idle_spins = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (Task* t = find_task(index)) {
      run(t);
      idle_spins = 0;
      continue;
    }
    if (progress_) progress_();
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    // Park with a timeout so the progress hook keeps polling the inbox.
    // The predicate re-checks queued work and shutdown under sleep_mu_:
    // a spawn that raced the pre-park task search has incremented
    // unclaimed_ before its notify, so either the predicate sees it here
    // (and the wait returns immediately) or the notify arrives while we
    // wait — a wakeup can no longer fall into the gap between the last
    // find_task() and the wait.
    std::unique_lock lock(sleep_mu_);
    sleep_cv_.wait_for(lock, park_timeout_, [&] {
      return stopping_.load(std::memory_order_relaxed) ||
             unclaimed_.load(std::memory_order_relaxed) != 0;
    });
    idle_spins = 0;
  }
  tl_pool = nullptr;
}

void ThreadPool::shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard lock(sleep_mu_);
    sleep_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Drain anything left in the injection queue (tasks in deques are freed by
  // the deque destructor).
  while (auto t = injection_.try_pop()) {
    delete *t;
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    unclaimed_.fetch_sub(1, std::memory_order_relaxed);
    queue_depth_->sub(1);
  }
}

}  // namespace lamellar
