// Futures are header-only templates; this file anchors the target.
#include "core/scheduler/future.hpp"
