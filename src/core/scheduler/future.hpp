// Futures and promises for asynchronous runtime operations.
//
// The C++ analogue of the Rust futures the paper's APIs return: every AM
// launch, array operation, and iterator drive yields a Future<T>.  Futures
// are completed by runtime tasks (often on another PE's behalf) through the
// paired Promise.  Blocking waits should go through World::block_on /
// wait_all, which *help* execute pool tasks — Future::wait() itself is a
// plain condition-variable wait for use on external threads.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace lamellar {

/// Result type for operations that complete without a value.
struct Unit {
  template <class Archive>
  void serialize(Archive&) {}
};

namespace detail {

template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;
  bool ready = false;
};

}  // namespace detail

template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  void set_value(T v) {
    {
      std::lock_guard lock(state_->mu);
      if (state_->ready) throw Error("Promise: value set twice");
      state_->value.emplace(std::move(v));
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  [[nodiscard]] Future<T> future() const { return Future<T>(state_); }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
class Future {
 public:
  Future() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  [[nodiscard]] bool ready() const {
    std::lock_guard lock(state_->mu);
    return state_->ready;
  }

  /// Blocking wait (condition variable).  Prefer World::block_on inside
  /// runtime threads; this is safe only where the completer is guaranteed
  /// to run on another thread.
  void wait() const {
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->ready; });
  }

  /// Take the value (wait() first if necessary).  One-shot.
  T get() {
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->ready; });
    T v = std::move(*state_->value);
    state_->value.reset();
    return v;
  }

  /// Non-blocking: take the value if ready.
  std::optional<T> try_take() {
    std::lock_guard lock(state_->mu);
    if (!state_->ready || !state_->value.has_value()) return std::nullopt;
    std::optional<T> v = std::move(state_->value);
    state_->value.reset();
    return v;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Make an already-completed future (local fast paths).
template <typename T>
Future<T> ready_future(T v) {
  Promise<T> p;
  p.set_value(std::move(v));
  return p.future();
}

}  // namespace lamellar
