// A runtime task: a move-only unit of work executed by the thread pool.
#pragma once

#include "common/unique_function.hpp"

namespace lamellar {

using Task = UniqueFunction<void()>;

}  // namespace lamellar
