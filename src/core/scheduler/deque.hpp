// Chase–Lev work-stealing deque (dynamic circular array variant).
//
// The owner thread pushes/pops at the bottom; thieves steal from the top.
// This is the classic algorithm from "Dynamic Circular Work-Stealing Deque"
// (Chase & Lev, SPAA'05) with the C11 memory-ordering treatment of
// Lê et al. (PPoPP'13).  Items are raw pointers; the pool stores heap-
// allocated tasks and retains ownership semantics around the deque.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace lamellar {

template <typename T>
class WorkStealingDeque {
  struct RingArray {
    explicit RingArray(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T*>[cap]) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;

    T* get(std::size_t i) const {
      return slots[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::size_t i, T* v) {
      slots[i & mask].store(v, std::memory_order_relaxed);
    }
  };

 public:
  explicit WorkStealingDeque(std::size_t initial_capacity = 256)
      : array_(new RingArray(initial_capacity)) {}

  ~WorkStealingDeque() {
    // Drain remaining items (owner context at destruction time).
    T* item = nullptr;
    while ((item = pop()) != nullptr) delete item;
    delete array_.load(std::memory_order_relaxed);
    for (auto* a : retired_) delete a;
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: push a (heap-allocated) item.
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    RingArray* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(static_cast<std::size_t>(b), item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: pop the most recently pushed item (LIFO), or nullptr.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    RingArray* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = a->get(static_cast<std::size_t>(b));
    if (t == b) {
      // Last element: race against thieves.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // lost to a thief
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal the oldest item (FIFO), or nullptr.
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    RingArray* a = array_.load(std::memory_order_consume);
    T* item = a->get(static_cast<std::size_t>(t));
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return item;
  }

  [[nodiscard]] bool empty() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b <= t;
  }

  [[nodiscard]] std::size_t size_hint() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  RingArray* grow(RingArray* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new RingArray(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->put(static_cast<std::size_t>(i),
                  old->get(static_cast<std::size_t>(i)));
    }
    array_.store(bigger, std::memory_order_release);
    // Old arrays are retired, not freed: thieves may still hold a pointer.
    retired_.push_back(old);
    return bigger;
  }

  alignas(kCacheLine) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLine) std::atomic<std::int64_t> bottom_{0};
  alignas(kCacheLine) std::atomic<RingArray*> array_;
  std::vector<RingArray*> retired_;  // owner-only mutation (inside push)
};

}  // namespace lamellar
