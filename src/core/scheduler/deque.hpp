// Chase–Lev work-stealing deque (dynamic circular array variant).
//
// The owner thread pushes/pops at the bottom; thieves steal from the top.
// This is the classic algorithm from "Dynamic Circular Work-Stealing Deque"
// (Chase & Lev, SPAA'05) with the C11 memory-ordering treatment of
// Lê et al. (PPoPP'13).  Items are raw pointers; the pool stores heap-
// allocated tasks and retains ownership semantics around the deque.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace lamellar {

template <typename T>
class WorkStealingDeque {
  struct RingArray {
    explicit RingArray(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T*>[cap]) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;

    T* get(std::size_t i) const {
      return slots[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::size_t i, T* v) {
      slots[i & mask].store(v, std::memory_order_relaxed);
    }
  };

 public:
  explicit WorkStealingDeque(std::size_t initial_capacity = 256)
      : array_(new RingArray(initial_capacity)) {}

  ~WorkStealingDeque() {
    // Drain remaining items (owner context at destruction time).
    T* item = nullptr;
    while ((item = pop()) != nullptr) delete item;
    delete array_.load(std::memory_order_relaxed);
    for (auto* a : retired_) delete a;
  }

  /// Owner only: number of grown-and-replaced ring arrays not yet freed.
  [[nodiscard]] std::size_t retired_count() const { return retired_.size(); }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: push a (heap-allocated) item.
  //
  // Orderings are the fence-free variant of Lê et al.: the release store
  // to bottom_ publishes the slot write (and the item it points to) to any
  // thief whose bottom_ load observes it.  Fences are avoided throughout
  // the deque because ThreadSanitizer does not model atomic_thread_fence —
  // the fence formulation is correct but unverifiable; this one is both.
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    RingArray* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(static_cast<std::size_t>(b), item);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop the most recently pushed item (LIFO), or nullptr.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    RingArray* a = array_.load(std::memory_order_relaxed);
    // seq_cst store/load pair replaces the classic store;fence;load: the
    // total order forbids reordering the bottom_ announcement after the
    // top_ read, which is what keeps pop and steal from both taking the
    // last element.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      // Empty deque is the reclamation quiesce point: without it, retired
      // arrays accumulate until destruction, leaking memory proportional
      // to the peak depth of every long-lived worker.
      reclaim_retired();
      return nullptr;
    }
    T* item = a->get(static_cast<std::size_t>(b));
    if (t == b) {
      // Last element: race against thieves.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // lost to a thief
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal the oldest item (FIFO), or nullptr.
  T* steal() {
    // Announce the steal before touching any ring array.  Both counter RMWs
    // and the array_ load are seq_cst: together with the owner's seq_cst
    // check in reclaim_retired() this guarantees a thief either appears in
    // the counter before the owner reads it, or — ordered after the owner's
    // read in the seq_cst total order — can only load the *current* array,
    // never one retired before the reclamation check (see reclaim_retired).
    in_flight_steals_.fetch_add(1, std::memory_order_seq_cst);
    T* item = nullptr;
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t < b) {
      RingArray* a = array_.load(std::memory_order_seq_cst);
      item = a->get(static_cast<std::size_t>(t));
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // lost the race
      }
    }
    in_flight_steals_.fetch_sub(1, std::memory_order_seq_cst);
    return item;
  }

  [[nodiscard]] bool empty() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b <= t;
  }

  [[nodiscard]] std::size_t size_hint() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  RingArray* grow(RingArray* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new RingArray(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->put(static_cast<std::size_t>(i),
                  old->get(static_cast<std::size_t>(i)));
    }
    // seq_cst so a thief's (seq_cst) array_ load ordered after the owner's
    // reclamation check cannot observe a pointer retired before this store.
    array_.store(bigger, std::memory_order_seq_cst);
    // Old arrays are retired, not freed: thieves may still hold a pointer.
    retired_.push_back(old);
    return bigger;
  }

  /// Owner only, called with the deque observed empty.  Retired arrays are
  /// freed once no steal is in flight.  Safety: a thief inside steal() at
  /// the time of the counter read is visible in in_flight_steals_ (its
  /// seq_cst increment precedes the owner's seq_cst load in the total
  /// order, and its decrement follows its last array access); a thief that
  /// enters afterwards loads array_ with seq_cst and therefore sees the
  /// replacement stored by grow() — which precedes this check in the
  /// owner's program order — never a retired array.
  void reclaim_retired() {
    if (retired_.empty()) return;
    if (in_flight_steals_.load(std::memory_order_seq_cst) != 0) return;
    for (auto* a : retired_) delete a;
    retired_.clear();
  }

  alignas(kCacheLine) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLine) std::atomic<std::int64_t> bottom_{0};
  alignas(kCacheLine) std::atomic<RingArray*> array_;
  alignas(kCacheLine) std::atomic<std::int64_t> in_flight_steals_{0};
  std::vector<RingArray*> retired_;  // owner-only mutation (inside push)
};

}  // namespace lamellar
