// Instantiates and registers the array AM family for the standard numeric
// element types (the analogue of the impls the Rust runtime derives).
// Additional trivially-copyable element types can be registered from user
// code with LAMELLAR_REGISTER_ARRAY_ELEMENT(T).
#include "core/array/arrays.hpp"

LAMELLAR_REGISTER_ARRAY_ELEMENT(std::uint8_t);
LAMELLAR_REGISTER_ARRAY_ELEMENT(std::int32_t);
LAMELLAR_REGISTER_ARRAY_ELEMENT(std::uint32_t);
LAMELLAR_REGISTER_ARRAY_ELEMENT(std::int64_t);
LAMELLAR_REGISTER_ARRAY_ELEMENT(std::uint64_t);
LAMELLAR_REGISTER_ARRAY_ELEMENT(float);
LAMELLAR_REGISTER_ARRAY_ELEMENT(double);
