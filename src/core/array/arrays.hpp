// LamellarArray types (paper Sec. III-F): the safe PGAS abstraction.
//
//   UnsafeArray    — no safety guarantees; direct RDMA allowed ("intended
//                    for internal use, but exposed and marked unsafe").
//   ReadOnlyArray  — immutable; loads only; direct RDMA get is safe.
//   AtomicArray    — element-wise atomicity: native atomics when the
//                    element type supports them (NativeAtomicArray),
//                    otherwise a 1-byte mutex per element
//                    (GenericAtomicArray).
//   LocalLockArray — a PE-wide readers-writer lock guards each local slab.
//
// All four share one Darc-owned ArrayState; conversions (into_atomic, ...)
// are collective, succeed only when exactly one reference exists per PE,
// and re-tag the state in place.  0-based global indexing with Block or
// Cyclic layout; element/batch operations execute owner-side per the type's
// regime; iterators and reductions are provided via the shared base.
#pragma once

#include <span>
#include <vector>

#include "core/array/array_ams.hpp"
#include "core/array/batch.hpp"
#include "core/array/expr.hpp"
#include "core/array/iterators.hpp"

namespace lamellar {

template <typename T>
class UnsafeArray;
template <typename T>
class ReadOnlyArray;
template <typename T>
class AtomicArray;
template <typename T>
class LocalLockArray;

namespace array_detail {

/// Build the shared state for a fresh array (collective on `team`).
template <typename T>
Darc<ArrayState<T>> create_state(World& world, const Team& team,
                                 global_index len, Distribution dist,
                                 ArrayMode mode) {
  ArrayState<T> st;
  st.world = &world;
  st.team = team;
  st.map = DistributionMap(dist, len, team.size());
  st.data = SharedMemoryRegion<T>::create_on(world, team,
                                             st.map.per_rank_capacity());
  st.mode = mode;
  if (mode == ArrayMode::kAtomicGeneric) st.ensure_elem_locks();
  if (mode == ArrayMode::kLocalLock) st.ensure_local_lock();
  obs::MetricsRegistry& reg = world.metrics();
  st.ops_batched = &reg.counter("array.ops_batched");
  st.chunk_bytes_inline = &reg.counter("array.chunk_bytes_inline");
  st.plan_allocs = &reg.counter("array.plan_allocs");
  st.fused_ams_saved = &reg.counter("array.fused_ams_saved");
  st.fused_chain_len = &reg.histogram("array.fused_chain_len");
  // The symmetric heap may recycle memory: zero the slab before publishing.
  auto slab = st.data.unsafe_local_slice();
  std::fill(slab.begin(), slab.end(), T{});
  return world.new_darc_on(team, std::move(st));
}

}  // namespace array_detail

/// Functionality shared by every array type.  `Derived` is the concrete
/// wrapper (CRTP) so sub_array and conversions return the right type.
template <typename Derived, typename T>
class ArrayBase {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "LamellarArray elements must be trivially copyable");

  ArrayBase() = default;

  [[nodiscard]] bool valid() const { return state_.valid(); }
  [[nodiscard]] global_index len() const { return view_len_; }
  [[nodiscard]] const Team& team() const { return state_->team; }
  [[nodiscard]] World& world() const { return *state_->world; }
  [[nodiscard]] Distribution dist() const { return state_->map.dist(); }
  [[nodiscard]] ArrayMode mode() const { return state_->mode; }
  [[nodiscard]] bool is_sub_array() const {
    return view_start_ != 0 || view_len_ != state_->map.global_len();
  }

  /// Runtime-internal escape hatch: the Darc owning the shared state.
  /// Used by hand-optimized AMs (e.g. the paper's manually aggregated
  /// Histogram variant) that carry the array inside a custom AM.
  [[nodiscard]] Darc<ArrayState<T>> state_darc() const { return state_; }

  /// Number of elements of this view resident on the calling PE.
  [[nodiscard]] std::size_t local_len() const {
    auto [lo, hi] = state_->local_view_range(view_start_, view_len_);
    return hi - lo;
  }

  /// Owner placement of view-relative index `i`.
  [[nodiscard]] Placement place(global_index i) const {
    return state_->map.place(view_start_ + i);
  }

  /// A view restricted to [start, start+len) of this view.
  [[nodiscard]] Derived sub_array(global_index start, std::size_t len) const {
    if (start + len > view_len_) {
      throw_bounds("sub_array", start + len, view_len_);
    }
    Derived out;
    out.state_ = state_;
    out.view_start_ = view_start_ + start;
    out.view_len_ = len;
    return out;
  }

  // ---- RDMA-like bulk transfers (AM-mediated, safe per type) ----

  /// Write `data` at global (view) index `start`, owner-side, respecting the
  /// array type's safety regime.  ReadOnlyArray deletes this (no put).
  Future<Unit> put(global_index start, std::span<const T> data) {
    check_range(start, data.size());
    // Paper Sec. IV-A: above the aggregation threshold the UnsafeArray
    // switches from Vec-carrying AMs to direct RDMA (no safety regime to
    // preserve); the other types keep owner-side application.
    if (state_->mode == ArrayMode::kUnsafe &&
        data.size_bytes() >= state_->world->config().agg_threshold_bytes) {
      auto ranges = array_detail::plan_ranges(*state_, view_start_ + start,
                                              data.size());
      ArrayState<T>& st = *state_;
      const std::size_t region = st.data.arena_offset();
      ArenaFrame frame;
      for (auto& r : ranges) {
        st.world->lamellae().put(
            st.team.world_pe(r.rank), region + r.local_start * sizeof(T),
            std::as_bytes(array_detail::contiguous_slice(frame.arena(), data,
                                                         r)));
      }
      return ready_future(Unit{});
    }
    auto ranges =
        array_detail::plan_ranges(*state_, view_start_ + start, data.size());
    auto gather = std::make_shared<array_detail::UnitGather>();
    gather->remaining = ranges.size();
    if (ranges.empty()) {
      gather->promise.set_value(Unit{});
      return gather->promise.future();
    }
    auto fut = gather->promise.future();
    ArrayState<T>& st = *state_;
    const std::size_t my_rank = st.my_rank();
    for (auto& r : ranges) {
      ArrayPutAm<T> am;
      am.state = state_;
      am.local_start = r.local_start;
      if (r.rank == my_rank) {
        // Owner == caller: apply directly; strided runs stage a contiguous
        // slice in the arena for the duration of the call.
        ArenaFrame frame;
        am.data = array_detail::contiguous_slice(frame.arena(), data, r);
        AmContext ctx(*st.world, st.world->my_pe());
        am.exec(ctx);
        array_detail::finish_unit(gather);
        continue;
      }
      // Remote: elements serialize straight from the caller's buffer (the
      // AM walks src with src_stride), no staging copy at all.
      am.src = data.data() + r.caller_offset;
      am.count = r.len;
      am.src_stride = r.caller_stride;
      st.world->engine().send_cb(
          st.team.world_pe(r.rank), std::move(am),
          [gather](Unit) { array_detail::finish_unit(gather); });
    }
    return fut;
  }

  /// Read `len` elements starting at (view) index `start`.
  Future<std::vector<T>> get(global_index start, std::size_t len) {
    check_range(start, len);
    auto ranges =
        array_detail::plan_ranges(*state_, view_start_ + start, len);
    // Lock-free gather: each range scatters into its own disjoint caller
    // positions; the release fetch_sub publishes the writes to whoever
    // observes zero and completes the promise.
    struct GetGather {
      std::vector<T> out;
      std::atomic<std::size_t> remaining{0};
      Promise<std::vector<T>> promise;
    };
    auto gather = std::make_shared<GetGather>();
    gather->out.resize(len);
    gather->remaining.store(ranges.size(), std::memory_order_relaxed);
    if (ranges.empty()) {
      gather->promise.set_value({});
      return gather->promise.future();
    }
    auto fut = gather->promise.future();
    ArrayState<T>& st = *state_;
    const std::size_t my_rank = st.my_rank();
    auto absorb = [gather](const array_detail::OwnedRange& r,
                           std::span<const T> piece) {
      array_detail::scatter_range(gather->out.data(), r, piece);
      if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        gather->promise.set_value(std::move(gather->out));
      }
    };
    for (auto& r : ranges) {
      ArrayGetAm<T> am{state_, r.local_start, r.len};
      if (r.rank == my_rank) {
        AmContext ctx(*st.world, st.world->my_pe());
        // The reply view may be arena-staged (guarded modes); scatter it
        // before the frame rewinds.
        ArenaFrame frame;
        absorb(r, am.exec(ctx).view);
        continue;
      }
      st.world->engine().send_cb(st.team.world_pe(r.rank), std::move(am),
                                 [absorb, r](ValSpan<T> piece) {
                                   absorb(r, piece.view);
                                 });
    }
    return fut;
  }

  /// Collective fill of the whole view with `value` (all members call).
  void fill(T value) {
    ArrayState<T>& st = *state_;
    auto [lo, hi] = st.local_view_range(view_start_, view_len_);
    // Direct writes under the PE-wide lock (apply_one would re-lock it).
    std::optional<std::unique_lock<std::shared_mutex>> lock;
    if (st.mode == ArrayMode::kLocalLock) lock.emplace(*st.local_lock);
    auto slab = st.local_slab();
    for (std::size_t i = lo; i < hi; ++i) {
      if (st.mode == ArrayMode::kAtomicNative ||
          st.mode == ArrayMode::kAtomicGeneric) {
        array_detail::apply_one<T>(st, i, OpCode::kStore, value);
      } else {
        slab[i] = value;
      }
    }
    lock.reset();
    const_cast<Team&>(st.team).barrier();
  }

  // ---- iterators (paper Sec. III-F4) ----

  /// One-sided parallel iteration over the calling PE's local elements.
  [[nodiscard]] auto local_iter() const {
    return LocalIter<T>(state_, view_start_, view_len_, /*distributed=*/false,
                        array_detail::IdentityPipe{}, {}, nullptr);
  }

  /// Collective parallel iteration: every member PE iterates its own data.
  [[nodiscard]] auto dist_iter() const {
    return LocalIter<T>(state_, view_start_, view_len_, /*distributed=*/true,
                        array_detail::IdentityPipe{}, {}, nullptr);
  }

  /// Serial iteration over the entire (view of the) array from this PE.
  [[nodiscard]] OneSidedIter<T> onesided_iter(
      std::size_t buffer_elems = 4096) const {
    return OneSidedIter<T>(state_, view_start_, view_len_, buffer_elems);
  }

  // ---- lazy expression chains (DESIGN.md §11) ----

  /// A recording handle: element ops on it build a fused pipeline instead
  /// of dispatching; materialize()/gather()/reduce() lower each recorded
  /// group into one plan pass and one AM per destination lane.
  [[nodiscard]] LazyChain<T> lazy() const {
    return LazyChain<T>(state_, view_start_, view_len_);
  }

  // ---- reductions ----

  /// Reduce over the view via an asynchronous binomial combining tree
  /// rooted at the calling PE.  The root arms its own fold node, then fans
  /// a start AM out to every PE in one wave (each node's tree position is
  /// implied by its relative rank); owner-side partials fold up the tree
  /// as ReducePartialAm messages, so no task ever blocks on a child and no
  /// single hot root absorbs size-1 partials under a mutex
  /// (ReduceStartAm::exec).
  Future<T> reduce(ReduceOp op) const {
    Promise<T> promise;
    auto fut = promise.future();
    array_detail::start_tree_reduce<T>(state_, view_start_, view_len_, op,
                                      std::move(promise));
    return fut;
  }

  Future<T> sum() const { return reduce(ReduceOp::kSum); }
  Future<T> prod() const { return reduce(ReduceOp::kProd); }
  Future<T> min() const { return reduce(ReduceOp::kMin); }
  Future<T> max() const { return reduce(ReduceOp::kMax); }

  // ---- conversions (collective; exactly one reference per PE) ----

  UnsafeArray<T> into_unsafe() &&;
  ReadOnlyArray<T> into_read_only() &&;
  AtomicArray<T> into_atomic() &&;
  LocalLockArray<T> into_local_lock() &&;

 protected:
  template <typename, typename>
  friend class ArrayBase;

  void adopt(Darc<ArrayState<T>> state) {
    state_ = std::move(state);
    view_start_ = 0;
    view_len_ = state_->map.global_len();
  }

  void check_range(global_index start, std::size_t n) const {
    if (start + n > view_len_) throw_bounds("array range", start + n, view_len_);
  }

  /// Single-element non-fetch op.
  Future<Unit> single_op(OpCode op, global_index i, T v) {
    check_range(i, 1);
    ArrayState<T>& st = *state_;
    const Placement p = place(i);
    if (p.rank == st.my_rank()) {
      array_detail::apply_one<T>(st, p.local_index, op, v);
      return ready_future(Unit{});
    }
    Promise<Unit> promise;
    // Stack-backed spans: send_cb serializes synchronously, so the storage
    // only needs to outlive this call.
    const std::uint64_t one_local[1] = {p.local_index};
    const T one_val[1] = {v};
    ArrayOpAm<T> am;
    am.state = state_;
    am.op = op;
    am.fetch = 0;
    am.pair = PairMode::kOneToOne;
    am.locals = std::span<const std::uint64_t>{one_local, 1};
    am.vals = std::span<const T>{one_val, 1};
    st.world->engine().send_cb(
        st.team.world_pe(p.rank), std::move(am),
        [promise](ValSpan<T>) mutable { promise.set_value(Unit{}); });
    return promise.future();
  }

  /// Single-element fetch op (returns the previous value).
  Future<T> single_fetch(OpCode op, global_index i, T v) {
    check_range(i, 1);
    ArrayState<T>& st = *state_;
    const Placement p = place(i);
    if (p.rank == st.my_rank()) {
      return ready_future(
          array_detail::apply_one<T>(st, p.local_index, op, v));
    }
    Promise<T> promise;
    const std::uint64_t one_local[1] = {p.local_index};
    const T one_val[1] = {v};
    ArrayOpAm<T> am;
    am.state = state_;
    am.op = op;
    am.fetch = 1;
    am.pair = PairMode::kOneToOne;
    am.locals = std::span<const std::uint64_t>{one_local, 1};
    am.vals = std::span<const T>{one_val, 1};
    st.world->engine().send_cb(
        st.team.world_pe(p.rank), std::move(am),
        [promise](ValSpan<T> r) mutable {
          promise.set_value(r.view.empty() ? T{} : r.view[0]);
        });
    return promise.future();
  }

  Future<std::vector<T>> batch(OpCode op, bool fetch,
                               std::span<const global_index> idxs, T v) {
    for (auto i : idxs) check_range(i, 1);
    const T vals[1] = {v};
    return array_detail::dispatch_op<T>(state_, view_start_, op, fetch, idxs,
                                        std::span<const T>(vals, 1));
  }

  Future<std::vector<T>> batch(OpCode op, bool fetch,
                               std::span<const global_index> idxs,
                               std::span<const T> vals) {
    if (idxs.size() != vals.size()) {
      throw Error("batch op: indices and values must pair one-to-one");
    }
    for (auto i : idxs) check_range(i, 1);
    return array_detail::dispatch_op<T>(state_, view_start_, op, fetch, idxs,
                                        vals);
  }

  Future<std::vector<T>> batch_one_idx(OpCode op, bool fetch, global_index i,
                                       std::span<const T> vals) {
    check_range(i, 1);
    return array_detail::dispatch_op_one_idx<T>(state_, view_start_, op,
                                                fetch, i, vals);
  }

  void convert_precheck(const char* what) const {
    if (!state_.valid()) throw ConversionError("conversion of empty array");
    if (is_sub_array()) {
      throw ConversionError(std::string(what) + " on a sub-array view");
    }
    // Paper semantics: conversion *blocks* until precisely one reference
    // exists per PE — the one performing the conversion (outstanding
    // operations hold transient references; footnote 2 notes the deadlock
    // hazard when user handles never drop).  We help the runtime while
    // waiting, and diagnose the user-held-handle case: if the runtime is
    // fully quiescent and extra references persist, no amount of waiting
    // can release them.
    World& world = *state_->world;
    std::size_t idle_probes = 0;
    while (true) {
      const auto refs = world.darc_manager().local_refs(state_.id());
      if (refs == 1) return;
      const bool ran = world.pool().try_run_one();
      world.engine().poll_inbox();
      if (!ran && world.engine().outstanding() == 0 &&
          world.pool().pending() == 0) {
        if (++idle_probes > 10'000) {
          throw ConversionError(
              std::string(what) + ": " + std::to_string(refs) +
              " references exist on this PE and the runtime is idle — "
              "another handle (e.g. a sub-array) is still alive");
        }
      } else {
        idle_probes = 0;
      }
    }
  }

  template <typename D2>
  D2 convert_to(ArrayMode mode, const char* what) {
    convert_precheck(what);
    ArrayState<T>& st = *state_;
    const_cast<Team&>(st.team).barrier();
    st.mode = mode;
    if (mode == ArrayMode::kAtomicGeneric) st.ensure_elem_locks();
    if (mode == ArrayMode::kLocalLock) st.ensure_local_lock();
    const_cast<Team&>(st.team).barrier();
    D2 out;
    out.adopt(std::move(state_));
    view_start_ = 0;
    view_len_ = 0;
    return out;
  }

  Darc<ArrayState<T>> state_;
  std::size_t view_start_ = 0;
  std::size_t view_len_ = 0;
};

/// The element-operation surface shared by writable array types
/// (paper Sec. III-F3): arithmetic, bit-wise, shift, store/swap — each as a
/// single op, a fetch variant, and the three batch forms.
#define LAMELLAR_DEFINE_ELEMENT_OP(NAME, CODE)                                \
  Future<Unit> NAME(global_index i, T v) {                                    \
    return this->single_op(CODE, i, v);                                       \
  }                                                                           \
  Future<T> fetch_##NAME(global_index i, T v) {                               \
    return this->single_fetch(CODE, i, v);                                    \
  }                                                                           \
  Future<std::vector<T>> batch_##NAME(std::span<const global_index> idxs,     \
                                      T v) {                                  \
    return this->batch(CODE, false, idxs, v);                                 \
  }                                                                           \
  Future<std::vector<T>> batch_##NAME(std::span<const global_index> idxs,     \
                                      std::span<const T> vals) {              \
    return this->batch(CODE, false, idxs, vals);                              \
  }                                                                           \
  Future<std::vector<T>> batch_##NAME(global_index i,                         \
                                      std::span<const T> vals) {              \
    return this->batch_one_idx(CODE, false, i, vals);                         \
  }                                                                           \
  Future<std::vector<T>> batch_fetch_##NAME(                                  \
      std::span<const global_index> idxs, T v) {                              \
    return this->batch(CODE, true, idxs, v);                                  \
  }                                                                           \
  Future<std::vector<T>> batch_fetch_##NAME(                                  \
      std::span<const global_index> idxs, std::span<const T> vals) {          \
    return this->batch(CODE, true, idxs, vals);                               \
  }                                                                           \
  Future<std::vector<T>> batch_fetch_##NAME(global_index i,                   \
                                            std::span<const T> vals) {        \
    return this->batch_one_idx(CODE, true, i, vals);                          \
  }

#define LAMELLAR_DEFINE_ALL_ELEMENT_OPS()                                     \
  LAMELLAR_DEFINE_ELEMENT_OP(add, OpCode::kAdd)                               \
  LAMELLAR_DEFINE_ELEMENT_OP(sub, OpCode::kSub)                               \
  LAMELLAR_DEFINE_ELEMENT_OP(mul, OpCode::kMul)                               \
  LAMELLAR_DEFINE_ELEMENT_OP(div, OpCode::kDiv)                               \
  LAMELLAR_DEFINE_ELEMENT_OP(rem, OpCode::kRem)                               \
  LAMELLAR_DEFINE_ELEMENT_OP(bit_and, OpCode::kAnd)                           \
  LAMELLAR_DEFINE_ELEMENT_OP(bit_or, OpCode::kOr)                             \
  LAMELLAR_DEFINE_ELEMENT_OP(bit_xor, OpCode::kXor)                           \
  LAMELLAR_DEFINE_ELEMENT_OP(shl, OpCode::kShl)                               \
  LAMELLAR_DEFINE_ELEMENT_OP(shr, OpCode::kShr)                               \
  LAMELLAR_DEFINE_ELEMENT_OP(store, OpCode::kStore)                           \
  LAMELLAR_DEFINE_ELEMENT_OP(swap, OpCode::kSwap)                             \
                                                                              \
  Future<T> load(global_index i) {                                            \
    return this->single_fetch(OpCode::kLoad, i, T{});                         \
  }                                                                           \
  Future<std::vector<T>> batch_load(std::span<const global_index> idxs) {     \
    return this->batch(OpCode::kLoad, true, idxs, T{});                       \
  }                                                                           \
  Future<CexResult<T>> compare_exchange(global_index i, T expected,           \
                                        T desired) {                          \
    this->check_range(i, 1);                                                  \
    ArrayState<T>& st = *this->state_;                                        \
    const Placement p = this->place(i);                                       \
    if (p.rank == st.my_rank()) {                                             \
      return ready_future(array_detail::apply_cex<T>(st, p.local_index,       \
                                                     expected, desired));     \
    }                                                                         \
    Promise<CexResult<T>> promise;                                            \
    const std::uint64_t one_local[1] = {p.local_index};                       \
    const T one_desired[1] = {desired};                                       \
    ArrayCexAm<T> am;                                                         \
    am.state = this->state_;                                                  \
    am.locals = std::span<const std::uint64_t>{one_local, 1};                 \
    am.expected = expected;                                                   \
    am.desired = std::span<const T>{one_desired, 1};                          \
    st.world->engine().send_cb(                                               \
        st.team.world_pe(p.rank), std::move(am),                              \
        [promise](ValSpan<CexResult<T>> r) mutable {                          \
          promise.set_value(r.view.empty() ? CexResult<T>{} : r.view[0]);     \
        });                                                                   \
    return promise.future();                                                  \
  }                                                                           \
  Future<std::vector<CexResult<T>>> batch_compare_exchange(                   \
      std::span<const global_index> idxs, T expected,                         \
      std::span<const T> desired) {                                           \
    for (auto i : idxs) this->check_range(i, 1);                              \
    return array_detail::dispatch_cex<T>(this->state_, this->view_start_,     \
                                         expected, idxs, desired);            \
  }                                                                           \
  Future<std::vector<CexResult<T>>> batch_compare_exchange(                   \
      std::span<const global_index> idxs, T expected, T desired) {            \
    for (auto i : idxs) this->check_range(i, 1);                              \
    const T des[1] = {desired};                                               \
    return array_detail::dispatch_cex<T>(this->state_, this->view_start_,     \
                                         expected, idxs,                      \
                                         std::span<const T>(des, 1));         \
  }

/// UnsafeArray: every operation available, including direct RDMA that
/// bypasses owner-side management entirely ("unchecked" paths in Fig. 2).
template <typename T>
class UnsafeArray : public ArrayBase<UnsafeArray<T>, T> {
 public:
  UnsafeArray() = default;

  static UnsafeArray create(World& world, global_index len, Distribution dist,
                            const Team* team = nullptr) {
    const Team& t = team != nullptr ? *team : world.team();
    UnsafeArray out;
    out.adopt(array_detail::create_state<T>(world, t, len, dist,
                                            ArrayMode::kUnsafe));
    return out;
  }

  LAMELLAR_DEFINE_ALL_ELEMENT_OPS()

  /// Raw local slab access.  UNSAFE: remote PEs may write concurrently.
  [[nodiscard]] std::span<T> unsafe_local_slice() {
    auto [lo, hi] =
        this->state_->local_view_range(this->view_start_, this->view_len_);
    return this->state_->local_slab().subspan(lo, hi - lo);
  }

  /// Direct RDMA put into remote slabs, no owner-side management
  /// ("unchecked").  UNSAFE.
  void unsafe_put_direct(global_index start, std::span<const T> data) {
    this->check_range(start, data.size());
    auto ranges = array_detail::plan_ranges(
        *this->state_, this->view_start_ + start, data.size());
    ArrayState<T>& st = *this->state_;
    const std::size_t region = st.data.arena_offset();
    ArenaFrame frame;
    for (auto& r : ranges) {
      st.world->lamellae().put(
          st.team.world_pe(r.rank), region + r.local_start * sizeof(T),
          std::as_bytes(
              array_detail::contiguous_slice(frame.arena(), data, r)));
    }
  }

  /// Direct RDMA get from remote slabs.  UNSAFE.
  std::vector<T> unsafe_get_direct(global_index start, std::size_t len) {
    this->check_range(start, len);
    auto ranges = array_detail::plan_ranges(*this->state_,
                                            this->view_start_ + start, len);
    ArrayState<T>& st = *this->state_;
    const std::size_t region = st.data.arena_offset();
    std::vector<T> out(len);
    ArenaFrame frame;
    for (auto& r : ranges) {
      // Strided runs land in an arena staging span, then scatter out.
      std::span<T> dst{out.data() + r.caller_offset, r.len};
      if (r.caller_stride > 1) dst = frame.arena().alloc_span<T>(r.len);
      st.world->lamellae().get(st.team.world_pe(r.rank),
                               region + r.local_start * sizeof(T),
                               std::as_writable_bytes(dst));
      if (r.caller_stride > 1) {
        array_detail::scatter_range(out.data(), r, std::span<const T>(dst));
      }
    }
    return out;
  }
};

/// ReadOnlyArray: loads only; direct RDMA get is safe because the data
/// cannot change (paper Sec. III-F2); put does not exist.
template <typename T>
class ReadOnlyArray : public ArrayBase<ReadOnlyArray<T>, T> {
 public:
  ReadOnlyArray() = default;

  Future<Unit> put(global_index, std::span<const T>) = delete;
  void fill(T) = delete;

  Future<T> load(global_index i) {
    return this->single_fetch(OpCode::kLoad, i, T{});
  }

  Future<std::vector<T>> batch_load(std::span<const global_index> idxs) {
    return this->batch(OpCode::kLoad, true, idxs, T{});
  }

  /// Direct RDMA get — safe: the underlying data is immutable.
  std::vector<T> get_direct(global_index start, std::size_t len) {
    this->check_range(start, len);
    auto ranges = array_detail::plan_ranges(*this->state_,
                                            this->view_start_ + start, len);
    ArrayState<T>& st = *this->state_;
    const std::size_t region = st.data.arena_offset();
    std::vector<T> out(len);
    ArenaFrame frame;
    for (auto& r : ranges) {
      std::span<T> dst{out.data() + r.caller_offset, r.len};
      if (r.caller_stride > 1) dst = frame.arena().alloc_span<T>(r.len);
      st.world->lamellae().get(st.team.world_pe(r.rank),
                               region + r.local_start * sizeof(T),
                               std::as_writable_bytes(dst));
      if (r.caller_stride > 1) {
        array_detail::scatter_range(out.data(), r, std::span<const T>(dst));
      }
    }
    return out;
  }

  [[nodiscard]] std::span<const T> read_local_slice() const {
    auto [lo, hi] =
        this->state_->local_view_range(this->view_start_, this->view_len_);
    return std::span<const T>(this->state_->local_slab())
        .subspan(lo, hi - lo);
  }
};

/// AtomicArray: every element access is atomic — natively when T supports
/// lock-free atomics (NativeAtomicArray), otherwise through a 1-byte mutex
/// per element (GenericAtomicArray).
template <typename T>
class AtomicArray : public ArrayBase<AtomicArray<T>, T> {
 public:
  AtomicArray() = default;

  static AtomicArray create(World& world, global_index len, Distribution dist,
                            const Team* team = nullptr) {
    const Team& t = team != nullptr ? *team : world.team();
    AtomicArray out;
    out.adopt(array_detail::create_state<T>(world, t, len, dist,
                                            kNativeAtomicCapable<T>
                                                ? ArrayMode::kAtomicNative
                                                : ArrayMode::kAtomicGeneric));
    return out;
  }

  /// True when element atomicity is provided by hardware atomics.
  [[nodiscard]] bool is_native() const {
    return this->state_->mode == ArrayMode::kAtomicNative;
  }

  LAMELLAR_DEFINE_ALL_ELEMENT_OPS()

  /// Atomic load of a local element (no raw slab access on AtomicArray).
  [[nodiscard]] T load_local(std::size_t local_index) const {
    return array_detail::read_one<T>(*this->state_, local_index);
  }
};

/// LocalLockArray: each PE's slab is guarded by one readers-writer lock.
template <typename T>
class LocalLockArray : public ArrayBase<LocalLockArray<T>, T> {
 public:
  LocalLockArray() = default;

  static LocalLockArray create(World& world, global_index len,
                               Distribution dist,
                               const Team* team = nullptr) {
    const Team& t = team != nullptr ? *team : world.team();
    LocalLockArray out;
    out.adopt(array_detail::create_state<T>(world, t, len, dist,
                                            ArrayMode::kLocalLock));
    return out;
  }

  LAMELLAR_DEFINE_ALL_ELEMENT_OPS()

  /// RAII shared (read) access to the local slab.
  class ReadGuard {
   public:
    ReadGuard(std::shared_mutex& mu, std::span<const T> data)
        : lock_(mu), data_(data) {}
    [[nodiscard]] std::span<const T> data() const { return data_; }

   private:
    std::shared_lock<std::shared_mutex> lock_;
    std::span<const T> data_;
  };

  /// RAII exclusive (write) access to the local slab.
  class WriteGuard {
   public:
    WriteGuard(std::shared_mutex& mu, std::span<T> data)
        : lock_(mu), data_(data) {}
    [[nodiscard]] std::span<T> data() const { return data_; }

   private:
    std::unique_lock<std::shared_mutex> lock_;
    std::span<T> data_;
  };

  [[nodiscard]] ReadGuard read_local_data() const {
    auto [lo, hi] =
        this->state_->local_view_range(this->view_start_, this->view_len_);
    return ReadGuard(*this->state_->local_lock,
                     std::span<const T>(this->state_->local_slab())
                         .subspan(lo, hi - lo));
  }

  [[nodiscard]] WriteGuard write_local_data() {
    auto [lo, hi] =
        this->state_->local_view_range(this->view_start_, this->view_len_);
    return WriteGuard(*this->state_->local_lock,
                      this->state_->local_slab().subspan(lo, hi - lo));
  }
};

#undef LAMELLAR_DEFINE_ALL_ELEMENT_OPS
#undef LAMELLAR_DEFINE_ELEMENT_OP

// ---- conversions ------------------------------------------------------------

template <typename Derived, typename T>
UnsafeArray<T> ArrayBase<Derived, T>::into_unsafe() && {
  return convert_to<UnsafeArray<T>>(ArrayMode::kUnsafe, "into_unsafe");
}

template <typename Derived, typename T>
ReadOnlyArray<T> ArrayBase<Derived, T>::into_read_only() && {
  return convert_to<ReadOnlyArray<T>>(ArrayMode::kReadOnly, "into_read_only");
}

template <typename Derived, typename T>
AtomicArray<T> ArrayBase<Derived, T>::into_atomic() && {
  return convert_to<AtomicArray<T>>(kNativeAtomicCapable<T>
                                        ? ArrayMode::kAtomicNative
                                        : ArrayMode::kAtomicGeneric,
                                    "into_atomic");
}

template <typename Derived, typename T>
LocalLockArray<T> ArrayBase<Derived, T>::into_local_lock() && {
  return convert_to<LocalLockArray<T>>(ArrayMode::kLocalLock,
                                       "into_local_lock");
}

}  // namespace lamellar
