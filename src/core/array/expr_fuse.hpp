// Fused lowering for lazy expression chains (DESIGN.md §11).
//
// A flushed chain group — one index span plus the stage chain recorded
// against it — lowers through exactly ONE plan_chunks pass and ONE
// serialized AM per destination lane, no matter how many stages the chain
// holds: the stage table and the concatenated operand regions ride in a
// single ArrayFusedAm per chunk, written straight into the aggregation
// lane with the zero-copy record writer (operand gathers happen during
// that single write), and the owner applies the composed kernel in one
// load-fold-store pass per element.  Planning and local staging live in
// the calling thread's ScratchArena and rewind when the flush frame ends,
// so fused dispatch inherits the eager path's steady-state zero-alloc
// budget (array.plan_allocs).
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "common/unique_function.hpp"
#include "core/array/batch.hpp"

namespace lamellar {
namespace array_detail {

/// Completion state shared by every chunk of every group a lazy chain
/// dispatches.  `remaining` starts at 1 — the recorder's hold — so a group
/// that completes while later groups are still being recorded can never
/// fire the terminal early; the terminal stores `on_complete` and then
/// releases the hold.  The fetch terminal's output and (for multi-chunk
/// fetch groups) caller positions live here because chunk completions can
/// outlive the dispatch frame.
template <typename T>
struct FusedRun {
  std::atomic<std::size_t> remaining{1};
  std::vector<T> out;
  std::vector<std::size_t> positions;
  UniqueFunction<void()> on_complete;

  void complete_one() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // The caller of the final complete_one holds a shared_ptr, so `this`
      // outlives the callback.
      on_complete();
    }
  }
};

/// Lower one fused group: a single plan pass over `idxs`, then per chunk
/// either a local composed-kernel application or one ArrayFusedAm.  When
/// `fetch` is set, post-chain element values scatter into run->out in
/// caller order (the run's positions table serves multi-chunk scatter).
/// Each dispatched chunk adds one count to run->remaining before any
/// completion can observe it.
template <typename T>
void fuse_dispatch(const Darc<ArrayState<T>>& state, std::size_t view_start,
                   std::span<const global_index> idxs,
                   std::span<const FusedStageRec<T>> recs, bool fetch,
                   const std::shared_ptr<FusedRun<T>>& run) {
  ArrayState<T>& st = *state;
  const std::size_t n = idxs.size();
  const std::size_t k = recs.size();
  if (n == 0) return;

  bool any_per_elem = false;
  for (const FusedStageRec<T>& r : recs) any_per_elem |= r.per_elem;

  ScratchArena& arena = ScratchArena::local();
  const std::uint64_t grows_before = arena.grow_events();
  ArenaFrame frame(arena);
  const bool need_pos = fetch || any_per_elem;
  auto plan = plan_chunks(arena, st, idxs, view_start,
                          st.world->config().batch_op_limit, need_pos);
  // The chain applies k element ops per index in one pass (a pure gather
  // is one load); account for all of them.
  st.ops_batched->inc(n * std::max<std::size_t>(k, 1));
  st.fused_chain_len->record(k + (fetch ? 1 : 0));

  if (plan.chunks.empty()) {
    st.plan_allocs->inc(arena.grow_events() - grows_before);
    return;
  }

  // The wire stage table, shared by every chunk of this group.
  auto hdrs = arena.alloc_span<FusedStage>(k);
  std::size_t wire_vals_per_idx = 0;  // per-element operand count
  std::size_t wire_shared_vals = 0;
  for (std::size_t s = 0; s < k; ++s) {
    hdrs[s] = FusedStage{recs[s].op,
                         static_cast<std::uint8_t>(recs[s].per_elem ? 1 : 0)};
    if (recs[s].per_elem) {
      ++wire_vals_per_idx;
    } else {
      ++wire_shared_vals;
    }
  }

  const bool multi = plan.chunks.size() > 1;
  if (fetch) {
    run->out.resize(n);
    if (multi) {
      run->positions.assign(plan.pos_flat.begin(), plan.pos_flat.end());
    }
  }
  const std::size_t my_rank = st.my_rank();
  std::size_t remote_chunks = 0;
  for (const ChunkRef& chunk : plan.chunks) {
    const std::span<const std::uint64_t> locals =
        plan.locals_flat.subspan(chunk.offset, chunk.len);
    const std::span<const std::size_t> pos =
        need_pos ? plan.pos_flat.subspan(chunk.offset, chunk.len)
                 : std::span<const std::size_t>{};
    run->remaining.fetch_add(1, std::memory_order_relaxed);
    if (chunk.rank == my_rank) {
      // Owner == caller: stage this chunk's concatenated operand region in
      // the arena (per-element operands permuted into chunk order, shared
      // scalars once) and run the same composed kernel the remote side
      // runs, sinking fetch results straight into the run's output for
      // single-chunk groups.
      auto ops = arena.alloc_span<T>(chunk.len * wire_vals_per_idx +
                                     wire_shared_vals);
      std::size_t ob = 0;
      for (std::size_t s = 0; s < k; ++s) {
        if (recs[s].per_elem) {
          for (std::size_t j = 0; j < chunk.len; ++j) {
            ops[ob + j] = recs[s].vals[pos[j]];
          }
          ob += chunk.len;
        } else {
          ops[ob++] = recs[s].scalar;
        }
      }
      T* sink = nullptr;
      std::span<T> staged;
      if (fetch) {
        if (multi) {
          staged = arena.alloc_span<T>(chunk.len);
          sink = staged.data();
        } else {
          sink = run->out.data();
        }
      }
      apply_fused_sink<T>(st, hdrs, ops, locals, sink);
      if (fetch && multi) {
        for (std::size_t j = 0; j < chunk.len; ++j) {
          run->out[pos[j]] = staged[j];
        }
      }
      run->complete_one();
      continue;
    }
    ++remote_chunks;
    ArrayFusedAm<T> am;
    am.state = state;
    am.fetch = fetch ? 1 : 0;
    am.locals = locals;
    am.stages = hdrs;
    am.recs = recs.data();
    am.gather_pos = pos;
    st.chunk_bytes_inline->inc(locals.size_bytes() + hdrs.size_bytes() +
                               (chunk.len * wire_vals_per_idx +
                                wire_shared_vals) *
                                   sizeof(T));
    st.world->engine().send_cb(
        st.team.world_pe(chunk.rank), std::move(am),
        [run, fetch,
         pos_offset = multi ? chunk.offset : kIdentityScatter](ValSpan<T> r) {
          if (fetch) {
            if (pos_offset == kIdentityScatter) {
              for (std::size_t j = 0; j < r.view.size(); ++j) {
                run->out[j] = r.view[j];
              }
            } else {
              for (std::size_t j = 0; j < r.view.size(); ++j) {
                run->out[run->positions[pos_offset + j]] = r.view[j];
              }
            }
          }
          run->complete_one();
        });
  }
  // Each remote chunk would have cost one AM per eager stage (plus one for
  // the gather); the fused pass sends exactly one.
  const std::size_t eager_ams = k + (fetch ? 1 : 0);
  if (eager_ams > 1) {
    st.fused_ams_saved->inc(remote_chunks * (eager_ams - 1));
  }
  st.plan_allocs->inc(arena.grow_events() - grows_before);
}

}  // namespace array_detail
}  // namespace lamellar
