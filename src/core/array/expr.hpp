// Lazy expression chains over LamellarArray (DESIGN.md §11).
//
// `arr.lazy()` returns a LazyChain: element-op calls on it RECORD stages
// instead of dispatching.  Consecutive stages against the same index span
// fuse into one group; when the index span changes (or the terminal runs)
// the open group flushes through fuse_dispatch — one plan pass, one AM per
// destination lane, the whole stage chain applied in a single owner-side
// load-fold-store pass per element.  Terminals:
//
//   materialize()  -> Future<Unit>            all groups applied
//   gather(idxs)   -> Future<std::vector<T>>  post-chain values of `idxs`
//                                             (fuses with the open group
//                                             when the spans match)
//   reduce(op)     -> Future<T>               all groups applied, then the
//                                             PR-5 combining-tree reduce
//                                             over the view as the chain's
//                                             terminal stage
//
// Lifetime rules (fusion legality in DESIGN.md §11): index and per-element
// operand spans are borrowed and must outlive the group's flush (the next
// record call with a different span, the terminal, or the chain's
// destruction — all inside the caller's frame).  Groups of one chain are
// unordered with respect to each other, exactly like un-awaited eager
// batches; stages *within* a group fold in program order, atomically per
// element.  Destroying a chain without a terminal dispatches any open
// group fire-and-forget (use world.wait_all() to drain).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "core/array/expr_fuse.hpp"

namespace lamellar {

template <typename T>
class LazyChain {
 public:
  /// Stages recorded against one index span before the group auto-flushes;
  /// longer chains split into multiple groups transparently.
  static constexpr std::size_t kMaxStages = 16;

  LazyChain(Darc<ArrayState<T>> state, std::size_t view_start,
            std::size_t view_len)
      : state_(std::move(state)),
        view_start_(view_start),
        view_len_(view_len) {}

  LazyChain(const LazyChain&) = delete;
  LazyChain& operator=(const LazyChain&) = delete;
  LazyChain(LazyChain&& other) noexcept
      : state_(std::move(other.state_)),
        view_start_(other.view_start_),
        view_len_(other.view_len_),
        run_(std::move(other.run_)),
        open_idxs_(other.open_idxs_),
        stages_(other.stages_),
        nstages_(other.nstages_),
        groups_(other.groups_),
        open_(other.open_),
        released_(other.released_) {
    other.open_ = false;
    other.released_ = true;  // the moved-from shell owns nothing to flush
  }

  ~LazyChain() {
    if (!released_) {
      flush_open(/*fetch=*/false);
      release(UniqueFunction<void()>{[] {}});
    }
  }

  // ---- recording: scatter-combine stages ----

  LazyChain& add(std::span<const global_index> idxs, T v) {
    return record(OpCode::kAdd, idxs, v);
  }
  LazyChain& add(std::span<const global_index> idxs, std::span<const T> vals) {
    return record(OpCode::kAdd, idxs, vals);
  }
  LazyChain& sub(std::span<const global_index> idxs, T v) {
    return record(OpCode::kSub, idxs, v);
  }
  LazyChain& sub(std::span<const global_index> idxs, std::span<const T> vals) {
    return record(OpCode::kSub, idxs, vals);
  }
  LazyChain& mul(std::span<const global_index> idxs, T v) {
    return record(OpCode::kMul, idxs, v);
  }
  LazyChain& mul(std::span<const global_index> idxs, std::span<const T> vals) {
    return record(OpCode::kMul, idxs, vals);
  }
  LazyChain& div(std::span<const global_index> idxs, T v) {
    return record(OpCode::kDiv, idxs, v);
  }
  LazyChain& rem(std::span<const global_index> idxs, T v) {
    return record(OpCode::kRem, idxs, v);
  }
  LazyChain& bit_and(std::span<const global_index> idxs, T v) {
    return record(OpCode::kAnd, idxs, v);
  }
  LazyChain& bit_or(std::span<const global_index> idxs, T v) {
    return record(OpCode::kOr, idxs, v);
  }
  LazyChain& bit_xor(std::span<const global_index> idxs, T v) {
    return record(OpCode::kXor, idxs, v);
  }
  LazyChain& shl(std::span<const global_index> idxs, T v) {
    return record(OpCode::kShl, idxs, v);
  }
  LazyChain& shr(std::span<const global_index> idxs, T v) {
    return record(OpCode::kShr, idxs, v);
  }
  LazyChain& store(std::span<const global_index> idxs, T v) {
    return record(OpCode::kStore, idxs, v);
  }
  LazyChain& store(std::span<const global_index> idxs,
                   std::span<const T> vals) {
    return record(OpCode::kStore, idxs, vals);
  }

  /// Number of groups flushed so far plus the open one (diagnostics).
  [[nodiscard]] std::size_t groups() const {
    return groups_ + (open_ ? 1 : 0);
  }

  // ---- terminals ----

  /// Flush everything; the future completes when every group's every chunk
  /// has been applied on its owner.
  Future<Unit> materialize() {
    check_terminal("materialize");
    flush_open(/*fetch=*/false);
    if (!run_) {
      released_ = true;
      return ready_future(Unit{});
    }
    Promise<Unit> promise;
    auto fut = promise.future();
    release(UniqueFunction<void()>{
        [promise]() mutable { promise.set_value(Unit{}); }});
    return fut;
  }

  /// Post-chain values of `idxs`, in caller order.  When `idxs` is the open
  /// group's span the fetch fuses into that group's single AM pass; a pure
  /// gather (no recorded stages) is an empty chain with fetch — the fused
  /// batch_load.
  Future<std::vector<T>> gather(std::span<const global_index> idxs) {
    check_terminal("gather");
    for (auto i : idxs) check_range(i);
    if (open_ && same_idxs(idxs)) {
      flush_open(/*fetch=*/true);
    } else {
      flush_open(/*fetch=*/false);
      open_ = true;
      open_idxs_ = idxs;
      nstages_ = 0;
      flush_open(/*fetch=*/true);
    }
    Promise<std::vector<T>> promise;
    auto fut = promise.future();
    array_detail::FusedRun<T>* self = run_.get();
    release(UniqueFunction<void()>{[promise, self]() mutable {
      promise.set_value(std::move(self->out));
    }});
    return fut;
  }

  /// Flush everything, then run the combining-tree reduction over the whole
  /// view as the chain's terminal stage: the tree launches from whatever
  /// context observes the last chunk completion, so no caller ever blocks
  /// between the chain and its reduction.
  Future<T> reduce(ReduceOp op) {
    check_terminal("reduce");
    flush_open(/*fetch=*/false);
    Promise<T> promise;
    auto fut = promise.future();
    if (!run_) {
      released_ = true;
      array_detail::start_tree_reduce<T>(state_, view_start_, view_len_, op,
                                         std::move(promise));
      return fut;
    }
    release(UniqueFunction<void()>{
        [state = state_, vs = view_start_, vl = view_len_, op,
         promise]() mutable {
          array_detail::start_tree_reduce<T>(state, vs, vl, op,
                                             std::move(promise));
        }});
    return fut;
  }

  Future<T> sum() { return reduce(ReduceOp::kSum); }
  Future<T> prod() { return reduce(ReduceOp::kProd); }
  Future<T> min() { return reduce(ReduceOp::kMin); }
  Future<T> max() { return reduce(ReduceOp::kMax); }

 private:
  using StageRec = FusedStageRec<T>;

  void check_range(global_index i) const {
    if (i >= view_len_) {
      throw Error("lazy chain index " + std::to_string(i) +
                  " out of bounds (len " + std::to_string(view_len_) + ")");
    }
  }

  void check_terminal(const char* what) const {
    if (released_) {
      throw Error(std::string("lazy chain ") + what +
                  " after the chain was already terminated");
    }
  }

  [[nodiscard]] bool same_idxs(std::span<const global_index> idxs) const {
    if (open_idxs_.size() != idxs.size()) return false;
    if (open_idxs_.data() == idxs.data()) return true;
    return std::equal(idxs.begin(), idxs.end(), open_idxs_.begin());
  }

  LazyChain& record(OpCode op, std::span<const global_index> idxs, T v) {
    StageRec rec;
    rec.op = op;
    rec.per_elem = false;
    rec.scalar = v;
    return push(idxs, rec);
  }

  LazyChain& record(OpCode op, std::span<const global_index> idxs,
                    std::span<const T> vals) {
    if (vals.size() != idxs.size()) {
      throw Error("lazy chain op: indices and values must pair one-to-one");
    }
    StageRec rec;
    rec.op = op;
    rec.per_elem = true;
    rec.vals = vals.data();
    return push(idxs, rec);
  }

  LazyChain& push(std::span<const global_index> idxs, const StageRec& rec) {
    check_terminal("record");
    if (state_->mode == ArrayMode::kReadOnly && rec.op != OpCode::kLoad) {
      throw Error("lazy chain: mutating stage recorded on a read-only array");
    }
    for (auto i : idxs) check_range(i);
    if (open_ && (!same_idxs(idxs) || nstages_ == kMaxStages)) {
      flush_open(/*fetch=*/false);
    }
    if (!open_) {
      open_ = true;
      open_idxs_ = idxs;
      nstages_ = 0;
    }
    stages_[nstages_++] = rec;
    return *this;
  }

  void flush_open(bool fetch) {
    if (!open_ && !fetch) return;
    if (!run_) run_ = std::make_shared<array_detail::FusedRun<T>>();
    array_detail::fuse_dispatch<T>(
        state_, view_start_, open_idxs_,
        std::span<const StageRec>(stages_.data(), nstages_), fetch, run_);
    ++groups_;
    open_ = false;
    nstages_ = 0;
    open_idxs_ = {};
  }

  /// Store the terminal action and drop the recorder's hold; if every chunk
  /// already completed this invokes the action inline.  A chain that never
  /// dispatched (e.g. a record threw before the first flush) has no run —
  /// the action fires immediately.
  void release(UniqueFunction<void()> action) {
    released_ = true;
    if (!run_) {
      action();
      return;
    }
    run_->on_complete = std::move(action);
    run_->complete_one();
  }

  Darc<ArrayState<T>> state_;
  std::size_t view_start_;
  std::size_t view_len_;
  std::shared_ptr<array_detail::FusedRun<T>> run_;
  std::span<const global_index> open_idxs_{};
  std::array<StageRec, kMaxStages> stages_{};
  std::size_t nstages_ = 0;
  std::size_t groups_ = 0;
  bool open_ = false;
  bool released_ = false;
};

}  // namespace lamellar
