// LamellarArray iterators (paper Sec. III-F4).
//
// * LocalIterator — one-sided *parallel* iteration over the calling PE's
//   local data: chunks are executed as tasks on the PE's work-stealing
//   pool; the returned future completes when every chunk has run.
// * DistributedIterator — the collective flavour: every member PE iterates
//   its own data in parallel (call it on all PEs); collect() materializes
//   results across PEs in global order.
// * OneSidedIterator — *serial* iteration over the whole array from one PE,
//   pulling remote slabs chunk-wise through the runtime.
//
// Adapters: map / filter / enumerate compose into the value pipeline;
// skip / step_by / take are position selectors applied to the source index
// space (they must be applied before filter/map consume the indexing, as
// with Rust's indexed parallel iterators — misuse throws).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/array/array_ams.hpp"
#include "core/array/batch.hpp"

namespace lamellar {
namespace array_detail {

/// Read element `local` under the array's safety regime.
template <typename T>
T read_one(ArrayState<T>& st, std::size_t local) {
  return apply_one<T>(st, local, OpCode::kLoad, T{});
}

/// Identity pipeline stage: emit(value).
struct IdentityPipe {
  template <typename V, typename Emit>
  void feed(global_index, V&& v, Emit&& emit) const {
    emit(std::forward<V>(v));
  }
};

template <typename P, typename F>
struct MapPipe {
  P parent;
  F fn;
  template <typename V, typename Emit>
  void feed(global_index gi, V&& v, Emit&& emit) const {
    parent.feed(gi, std::forward<V>(v), [&](auto&& u) {
      emit(fn(std::forward<decltype(u)>(u)));
    });
  }
};

template <typename P, typename F>
struct FilterPipe {
  P parent;
  F pred;
  template <typename V, typename Emit>
  void feed(global_index gi, V&& v, Emit&& emit) const {
    parent.feed(gi, std::forward<V>(v), [&](auto&& u) {
      if (pred(u)) emit(std::forward<decltype(u)>(u));
    });
  }
};

/// Emits (global_index, value) pairs.
template <typename P>
struct EnumeratePipe {
  P parent;
  template <typename V, typename Emit>
  void feed(global_index gi, V&& v, Emit&& emit) const {
    parent.feed(gi, std::forward<V>(v), [&](auto&& u) {
      emit(std::make_pair(gi, std::forward<decltype(u)>(u)));
    });
  }
};

/// The source positions an iterator visits: local slots selected by
/// skip/step_by/take over this PE's local length.
struct Selection {
  std::size_t skip = 0;
  std::size_t step = 1;
  std::size_t take = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t count(std::size_t local_len) const {
    if (skip >= local_len) return 0;
    const std::size_t avail = (local_len - skip + step - 1) / step;
    return std::min(avail, take);
  }
  [[nodiscard]] std::size_t position(std::size_t k) const {
    return skip + k * step;
  }
};

/// Parallel driver: run `body(first,last)` over [0,n) in pool chunks;
/// returns a future completing when all chunks ran.
inline Future<Unit> parallel_chunks(
    World& world, std::size_t n,
    std::function<void(std::size_t, std::size_t)> body,
    std::size_t min_chunk) {
  auto gather = std::make_shared<UnitGather>();
  if (n == 0) {
    gather->promise.set_value(Unit{});
    return gather->promise.future();
  }
  const std::size_t workers = std::max<std::size_t>(world.pool().num_workers(), 1);
  const std::size_t chunk =
      std::max(min_chunk, ceil_div(n, workers * 4));
  const std::size_t nchunks = ceil_div(n, chunk);
  gather->remaining = nchunks;
  auto future = gather->promise.future();
  auto shared_body =
      std::make_shared<std::function<void(std::size_t, std::size_t)>>(
          std::move(body));
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t first = c * chunk;
    const std::size_t last = std::min(n, first + chunk);
    world.pool().spawn([gather, shared_body, first, last] {
      (*shared_body)(first, last);
      finish_unit(gather);
    });
  }
  return future;
}

inline Future<Unit> parallel_chunks(
    World& world, std::size_t n,
    std::function<void(std::size_t, std::size_t)> body) {
  return parallel_chunks(world, n, std::move(body), 1024);
}

}  // namespace array_detail

/// Parallel iterator over the calling PE's local elements (LocalIterator),
/// or — when constructed via dist_iter() — the per-PE piece of a collective
/// distributed iteration (DistributedIterator).  `Pipe` is the composed
/// value pipeline.
template <typename T, typename Pipe = array_detail::IdentityPipe>
class LocalIter {
 public:
  LocalIter(Darc<ArrayState<T>> state, std::size_t view_start,
            std::size_t view_len, bool distributed, Pipe pipe,
            array_detail::Selection sel, const char* impure_adapter)
      : state_(std::move(state)),
        view_start_(view_start),
        view_len_(view_len),
        distributed_(distributed),
        pipe_(std::move(pipe)),
        sel_(sel),
        impure_adapter_(impure_adapter) {}

  /// Transform each element.
  template <typename F>
  auto map(F fn) && {
    using NewPipe = array_detail::MapPipe<Pipe, F>;
    return LocalIter<T, NewPipe>(std::move(state_), view_start_, view_len_,
                                 distributed_,
                                 NewPipe{std::move(pipe_), std::move(fn)},
                                 sel_, first_impure("map"));
  }

  /// Keep elements satisfying `pred`.
  template <typename F>
  auto filter(F pred) && {
    using NewPipe = array_detail::FilterPipe<Pipe, F>;
    return LocalIter<T, NewPipe>(std::move(state_), view_start_, view_len_,
                                 distributed_,
                                 NewPipe{std::move(pipe_), std::move(pred)},
                                 sel_, first_impure("filter"));
  }

  /// Pair each element with its *global* index.
  auto enumerate() && {
    using NewPipe = array_detail::EnumeratePipe<Pipe>;
    return LocalIter<T, NewPipe>(std::move(state_), view_start_, view_len_,
                                 distributed_, NewPipe{std::move(pipe_)},
                                 sel_, first_impure("enumerate"));
  }

  LocalIter skip(std::size_t n) && {
    require_positions("skip");
    sel_.skip += n * sel_.step;
    return std::move(*this);
  }

  LocalIter step_by(std::size_t k) && {
    require_positions("step_by");
    if (k == 0) throw Error("step_by(0)");
    sel_.step *= k;
    return std::move(*this);
  }

  LocalIter take(std::size_t n) && {
    require_positions("take");
    sel_.take = std::min(sel_.take, n);
    return std::move(*this);
  }

  /// Run `fn` on every (piped) element, in parallel chunks on the pool.
  /// Await the future to ensure completion (paper Sec. III-F4).
  template <typename F>
  Future<Unit> for_each(F fn) && {
    ArrayState<T>& st = *state_;
    const std::size_t n = sel_.count(local_len());
    auto state = state_;  // keep alive inside tasks
    auto pipe = pipe_;
    auto sel = sel_;
    const std::size_t base = local_base();
    return array_detail::parallel_chunks(
        *st.world, n,
        [state, pipe, sel, base, fn = std::move(fn)](std::size_t first,
                                                     std::size_t last) {
          ArrayState<T>& s = *state;
          for (std::size_t k = first; k < last; ++k) {
            const std::size_t local = base + sel.position(k);
            const global_index gi = s.map.global_of(s.my_rank(), local);
            pipe.feed(gi, array_detail::read_one<T>(s, local),
                      [&](auto&& v) { fn(std::forward<decltype(v)>(v)); });
          }
        });
  }

  /// Collect the piped elements of the *local* portion into a vector,
  /// in local order.
  template <typename U = T>
  std::vector<U> collect_vec_local() && {
    ArrayState<T>& st = *state_;
    const std::size_t n = sel_.count(local_len());
    const std::size_t base = local_base();
    std::vector<U> out;
    out.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t local = base + sel_.position(k);
      const global_index gi = st.map.global_of(st.my_rank(), local);
      pipe_.feed(gi, array_detail::read_one<T>(st, local),
                 [&](auto&& v) { out.push_back(std::forward<decltype(v)>(v)); });
    }
    return out;
  }

  /// Sequential local fold over the piped elements.
  template <typename U, typename F>
  U fold_local(U init, F op) && {
    ArrayState<T>& st = *state_;
    const std::size_t n = sel_.count(local_len());
    const std::size_t base = local_base();
    U acc = std::move(init);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t local = base + sel_.position(k);
      const global_index gi = st.map.global_of(st.my_rank(), local);
      pipe_.feed(gi, array_detail::read_one<T>(st, local),
                 [&](auto&& v) { acc = op(std::move(acc), v); });
    }
    return acc;
  }

  /// Reduce the piped elements with `op`.  A plain `dist_iter().reduce(...)`
  /// (identity pipeline, whole view) folds each PE's slab through the same
  /// hoisted-dispatch scan the tree reduce uses; adapted pipelines fold
  /// serially through the pipe.  Distributed iterators combine the per-PE
  /// partials through ONE collective binomial tree (every member rendezvous
  /// on a team-ordered id and the root broadcasts the result back), so the
  /// whole combinator costs one tree instead of size() independent ones.
  Future<T> reduce(ReduceOp op) && {
    ArrayState<T>& st = *state_;
    T partial;
    bool fast = false;
    if constexpr (std::is_same_v<Pipe, array_detail::IdentityPipe>) {
      if (sel_.skip == 0 && sel_.step == 1 &&
          sel_.take == static_cast<std::size_t>(-1)) {
        auto [lo, hi] = st.local_view_range(view_start_, view_len_);
        partial = array_detail::local_reduce_scan<T>(st, op, lo, hi);
        fast = true;
      }
    }
    if (!fast) {
      T acc = reduce_identity<T>(op);
      const std::size_t n = sel_.count(local_len());
      const std::size_t base = local_base();
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t local = base + sel_.position(k);
        const global_index gi = st.map.global_of(st.my_rank(), local);
        pipe_.feed(gi, array_detail::read_one<T>(st, local), [&](auto&& v) {
          acc = reduce_fold<T>(op, acc, static_cast<T>(v));
        });
      }
      partial = acc;
    }
    if (!distributed_) return ready_future(partial);
    return array_detail::collective_combine<T>(state_, op, partial);
  }

  Future<T> sum() && { return std::move(*this).reduce(ReduceOp::kSum); }
  Future<T> prod() && { return std::move(*this).reduce(ReduceOp::kProd); }
  Future<T> min() && { return std::move(*this).reduce(ReduceOp::kMin); }
  Future<T> max() && { return std::move(*this).reduce(ReduceOp::kMax); }

  [[nodiscard]] bool is_distributed() const { return distributed_; }

 private:
  // Selectors act on source positions, so they are illegal once the value
  // pipeline has consumed the indexing; name the FIRST offending adapter so
  // the diagnosis points at the composition site, not the dispatch site.
  void require_positions(const char* what) const {
    if (impure_adapter_ != nullptr) {
      throw Error(std::string(what) + " must precede " + impure_adapter_ +
                  " on parallel iterators (position selectors apply to the "
                  "source index space; move ." +
                  what + "(...) before ." + impure_adapter_ + "(...))");
    }
  }

  [[nodiscard]] const char* first_impure(const char* self) const {
    return impure_adapter_ != nullptr ? impure_adapter_ : self;
  }

  // The contiguous portion of the local slab covered by the view.
  [[nodiscard]] std::size_t local_base() const {
    return state_->local_view_range(view_start_, view_len_).first;
  }
  [[nodiscard]] std::size_t local_len() const {
    auto [lo, hi] = state_->local_view_range(view_start_, view_len_);
    return hi - lo;
  }

  Darc<ArrayState<T>> state_;
  std::size_t view_start_;
  std::size_t view_len_;
  bool distributed_;
  Pipe pipe_;
  array_detail::Selection sel_;
  const char* impure_adapter_;  // nullptr while the index space is intact
};

/// Serial one-sided iterator over the *entire* array from the calling PE,
/// pulling remote data chunk-wise (paper: OneSidedIterator).
template <typename T>
class OneSidedIter {
 public:
  OneSidedIter(Darc<ArrayState<T>> state, std::size_t view_start,
               std::size_t view_len, std::size_t buffer_elems)
      : state_(std::move(state)),
        view_start_(view_start),
        view_len_(view_len),
        buffer_elems_(std::max<std::size_t>(buffer_elems, 1)) {}

  OneSidedIter& skip(std::size_t n) {
    cursor_ = std::min(view_len_, cursor_ + n * step_);
    buffer_.clear();
    buffer_pos_ = 0;
    return *this;
  }

  OneSidedIter& step_by(std::size_t k) {
    if (k == 0) throw Error("step_by(0)");
    step_ *= k;
    buffer_.clear();
    buffer_pos_ = 0;
    return *this;
  }

  /// Next element, or nullopt at the end.
  std::optional<T> next() {
    if (buffer_pos_ >= buffer_.size()) {
      if (!refill()) return std::nullopt;
    }
    return buffer_[buffer_pos_++];
  }

  /// Next `n` elements (fewer at the end).
  std::vector<T> next_chunk(std::size_t n) {
    std::vector<T> out;
    out.reserve(n);
    while (out.size() < n) {
      auto v = next();
      if (!v) break;
      out.push_back(*v);
    }
    return out;
  }

  /// Drain the remainder into a vector.
  std::vector<T> collect_vec() {
    std::vector<T> out;
    while (auto v = next()) out.push_back(*v);
    return out;
  }

 private:
  bool refill();

  Darc<ArrayState<T>> state_;
  std::size_t view_start_;
  std::size_t view_len_;
  std::size_t buffer_elems_;
  std::size_t cursor_ = 0;
  std::size_t step_ = 1;
  std::vector<T> buffer_;
  std::size_t buffer_pos_ = 0;
};

template <typename T>
bool OneSidedIter<T>::refill() {
  if (cursor_ >= view_len_) return false;
  ArrayState<T>& st = *state_;
  // Fetch the next contiguous window and subsample by step locally: the
  // runtime manages the transfer (paper), the iterator stays serial.
  const std::size_t window =
      std::min(buffer_elems_ * step_, view_len_ - cursor_);
  std::vector<global_index> idxs;
  idxs.reserve(ceil_div(window, step_));
  for (std::size_t off = 0; off < window; off += step_) {
    idxs.push_back(cursor_ + off);
  }
  auto fut = array_detail::dispatch_op<T>(
      Darc<ArrayState<T>>(state_), view_start_, OpCode::kLoad, true, idxs,
      std::span<const T>{});
  buffer_ = st.world->block_on(std::move(fut));
  buffer_pos_ = 0;
  cursor_ += window;
  return !buffer_.empty();
}

}  // namespace lamellar
