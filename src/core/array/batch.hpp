// Batch dispatch for array element operations (paper Sec. III-F3).
//
// The runtime "calculates the correct PEs and offsets for each array index,
// batching operations by destination PE within a single message", splitting
// batches at the configured op limit (default 10,000, the value the paper's
// experiments use).  Fetch results are scattered back into caller order.
// Local chunks are applied directly (owner == caller), remote chunks travel
// as ArrayOpAm / ArrayCexAm.
//
// Memory discipline (DESIGN.md §9): planning is backed by the calling
// thread's ScratchArena — flat index/position arrays bucketed by rank, a
// chunk table of views into them — and rewound when the dispatch frame
// ends, so a steady-state loop of batch calls performs no planner heap
// allocation (array.plan_allocs counts arena growth; flat after warm-up).
// Remote chunks serialize their index spans and operand gathers straight
// into the aggregation lane; completions scatter into disjoint caller
// positions and count down an atomic — no gather mutex anywhere.
#pragma once

#include <atomic>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/scratch_arena.hpp"
#include "core/array/array_ams.hpp"

namespace lamellar {
namespace array_detail {

/// One destination-bound chunk: a view into the plan's flat arrays.
struct ChunkRef {
  std::size_t rank = 0;
  std::size_t offset = 0;  ///< start within locals_flat / pos_flat
  std::size_t len = 0;
};

/// Arena-backed batch plan: local indices and caller positions bucketed by
/// owner rank (caller order preserved within each bucket), split into
/// chunks at the batch limit.  Valid until the planning frame rewinds.
struct BatchPlan {
  std::span<std::uint64_t> locals_flat;
  std::span<std::size_t> pos_flat;
  std::span<ChunkRef> chunks;
};

/// Group indices by owner and split at the batch limit — two passes over
/// the indices (place + count, then stable bucket scatter), all staging in
/// the arena.  `want_positions` = false skips the caller-position table
/// entirely (non-fetch many-one batches never read it).
template <typename T>
BatchPlan plan_chunks(ScratchArena& arena, const ArrayState<T>& st,
                      std::span<const global_index> idxs,
                      std::size_t view_start, std::size_t batch_limit,
                      bool want_positions) {
  BatchPlan plan;
  const std::size_t n = idxs.size();
  if (n == 0) return plan;
  const std::size_t nranks = st.map.num_ranks();

  auto ranks = arena.alloc_span<std::uint32_t>(n);
  auto locals = arena.alloc_span<std::uint64_t>(n);
  auto starts = arena.alloc_span<std::size_t>(nranks + 1);
  std::memset(starts.data(), 0, starts.size_bytes());
  for (std::size_t i = 0; i < n; ++i) {
    const Placement p = st.map.place(view_start + idxs[i]);
    ranks[i] = static_cast<std::uint32_t>(p.rank);
    locals[i] = p.local_index;
    ++starts[p.rank];
  }

  // Counts -> bucket start offsets (exclusive prefix sum) + chunk count.
  std::size_t nchunks = 0;
  std::size_t run = 0;
  for (std::size_t r = 0; r < nranks; ++r) {
    const std::size_t c = starts[r];
    starts[r] = run;
    run += c;
    nchunks += ceil_div(c, batch_limit);
  }
  starts[nranks] = run;

  plan.locals_flat = arena.alloc_span<std::uint64_t>(n);
  if (want_positions) plan.pos_flat = arena.alloc_span<std::size_t>(n);
  plan.chunks = arena.alloc_span<ChunkRef>(nchunks);

  std::size_t ci = 0;
  for (std::size_t r = 0; r < nranks; ++r) {
    const std::size_t end = starts[r + 1];
    for (std::size_t off = starts[r]; off < end; off += batch_limit) {
      plan.chunks[ci++] = ChunkRef{r, off, std::min(batch_limit, end - off)};
    }
  }

  // Stable scatter: ascending caller position within each bucket, so fetch
  // results come back in caller order per chunk.
  auto cursor = arena.alloc_span<std::size_t>(nranks);
  std::memcpy(cursor.data(), starts.data(), cursor.size_bytes());
  if (want_positions) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = cursor[ranks[i]]++;
      plan.locals_flat[at] = locals[i];
      plan.pos_flat[at] = i;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      plan.locals_flat[cursor[ranks[i]]++] = locals[i];
    }
  }
  return plan;
}

/// Sentinel chunk offset: results map back 1:1 (single-chunk batches keep
/// caller order by construction, so no position table is needed).
inline constexpr std::size_t kIdentityScatter =
    static_cast<std::size_t>(-1);

/// Completion state shared by a batch's chunks.  Concurrent completions
/// scatter into disjoint elements of `out` (each caller position belongs to
/// exactly one chunk) and count down `remaining` — no lock; the release
/// fetch_sub publishes every scatter to whoever observes zero.
template <typename R>
struct BatchGather {
  std::vector<R> out;
  /// Caller positions, chunk-major (plan order); only populated for
  /// multi-chunk fetch batches — the plan's own arrays die with the
  /// dispatch frame, completions can outlive it.
  std::vector<std::size_t> positions;
  std::atomic<std::size_t> remaining{0};
  Promise<std::vector<R>> promise;
};

template <typename R>
void complete_one(const std::shared_ptr<BatchGather<R>>& gather) {
  if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    gather->promise.set_value(std::move(gather->out));
  }
}

/// Completion-only gather (no results): counts chunks into a Future<Unit>.
struct UnitGather {
  std::atomic<std::size_t> remaining{0};
  Promise<Unit> promise;
};

inline void finish_unit(const std::shared_ptr<UnitGather>& gather) {
  if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    gather->promise.set_value(Unit{});
  }
}

/// Scatter one chunk's results (borrowed reply view) into the gather.
/// `pos_offset` indexes gather->positions, or kIdentityScatter for 1:1.
template <typename R>
void scatter_chunk(const std::shared_ptr<BatchGather<R>>& gather,
                   std::size_t pos_offset, std::span<const R> results) {
  if (pos_offset == kIdentityScatter) {
    for (std::size_t j = 0; j < results.size(); ++j) {
      gather->out[j] = results[j];
    }
  } else {
    for (std::size_t j = 0; j < results.size(); ++j) {
      gather->out[gather->positions[pos_offset + j]] = results[j];
    }
  }
}

/// Dispatch an element-op batch.  `vals` has size idxs.size() (one-to-one)
/// or 1 (many-indices-one-value).  Returns fetch results in caller order
/// (empty vector for non-fetch ops, completing when all chunks applied).
template <typename T>
Future<std::vector<T>> dispatch_op(const Darc<ArrayState<T>>& state,
                                   std::size_t view_start, OpCode op,
                                   bool fetch,
                                   std::span<const global_index> idxs,
                                   std::span<const T> vals) {
  ArrayState<T>& st = *state;
  const PairMode pair = vals.size() <= 1 && idxs.size() != 1
                            ? PairMode::kManyIdxOneVal
                            : PairMode::kOneToOne;
  ScratchArena& arena = ScratchArena::local();
  const std::uint64_t grows_before = arena.grow_events();
  ArenaFrame frame(arena);
  // Positions drive fetch-result scatter and one-to-one operand gather;
  // a non-fetch many-one batch (the histogram hot path) needs neither.
  const bool need_pos = fetch || pair == PairMode::kOneToOne;
  auto plan = plan_chunks(arena, st, idxs, view_start,
                          st.world->config().batch_op_limit, need_pos);
  st.ops_batched->inc(idxs.size());

  auto gather = std::make_shared<BatchGather<T>>();
  gather->remaining.store(plan.chunks.size(), std::memory_order_relaxed);
  if (plan.chunks.empty()) {
    st.plan_allocs->inc(arena.grow_events() - grows_before);
    gather->promise.set_value({});
    return gather->promise.future();
  }
  if (fetch) gather->out.resize(idxs.size());
  const bool multi = plan.chunks.size() > 1;
  if (fetch && multi) {
    // Completions may outlive this frame; park the position table on the
    // gather before any send can trigger a progress-loop completion.
    gather->positions.assign(plan.pos_flat.begin(), plan.pos_flat.end());
  }
  auto future = gather->promise.future();

  const std::size_t my_rank = st.my_rank();
  for (const ChunkRef& chunk : plan.chunks) {
    const std::span<const std::uint64_t> locals =
        plan.locals_flat.subspan(chunk.offset, chunk.len);
    const std::span<const std::size_t> pos =
        need_pos ? plan.pos_flat.subspan(chunk.offset, chunk.len)
                 : std::span<const std::size_t>{};
    if (chunk.rank == my_rank) {
      // Owner == caller: apply in place.  Single-chunk batches sink fetch
      // results straight into the output (identity scatter); multi-chunk
      // ones stage in the arena and scatter by caller position.
      T* sink = nullptr;
      std::span<T> staged;
      if (fetch) {
        if (multi) {
          staged = arena.alloc_span<T>(chunk.len);
          sink = staged.data();
        } else {
          sink = gather->out.data();
        }
      }
      if (pair == PairMode::kOneToOne && multi) {
        auto ops = arena.alloc_span<T>(chunk.len);
        for (std::size_t j = 0; j < chunk.len; ++j) ops[j] = vals[pos[j]];
        apply_batch_sink<T>(st, op, fetch, pair, locals, ops, sink);
      } else {
        // Single chunk => pos is the identity, so one-to-one operands are
        // already aligned with locals; many-one operands are shared.
        apply_batch_sink<T>(st, op, fetch, pair, locals, vals, sink);
      }
      if (fetch && multi) {
        for (std::size_t j = 0; j < chunk.len; ++j) {
          gather->out[pos[j]] = staged[j];
        }
      }
      complete_one(gather);
      continue;
    }
    ArrayOpAm<T> am;
    am.state = state;
    am.op = op;
    am.fetch = fetch ? 1 : 0;
    am.pair = pair;
    am.locals = locals;
    if (pair == PairMode::kOneToOne) {
      am.vals_base = vals.data();
      am.gather_pos = pos;
    } else {
      am.vals = vals;
    }
    const std::size_t val_count =
        pair == PairMode::kOneToOne ? chunk.len : vals.size();
    st.chunk_bytes_inline->inc(locals.size_bytes() + val_count * sizeof(T));
    st.world->engine().send_cb(
        st.team.world_pe(chunk.rank), std::move(am),
        [gather, fetch,
         pos_offset = multi ? chunk.offset : kIdentityScatter](ValSpan<T> r) {
          if (fetch) scatter_chunk(gather, pos_offset, r.view);
          complete_one(gather);
        });
  }
  st.plan_allocs->inc(arena.grow_events() - grows_before);
  return future;
}

/// Dispatch the One Index - Many Values form: every operand applies (in
/// order) to the single element at `idx`.  Chunks are contiguous slices of
/// the caller's operand buffer, so no planner or staging is needed at all —
/// operands serialize straight from the caller's memory and fetch results
/// sink at a fixed offset.
template <typename T>
Future<std::vector<T>> dispatch_op_one_idx(const Darc<ArrayState<T>>& state,
                                           std::size_t view_start, OpCode op,
                                           bool fetch, global_index idx,
                                           std::span<const T> vals) {
  ArrayState<T>& st = *state;
  const Placement p = st.map.place(view_start + idx);
  const std::size_t limit = st.world->config().batch_op_limit;
  auto gather = std::make_shared<BatchGather<T>>();
  gather->remaining.store(ceil_div(std::max<std::size_t>(vals.size(), 1),
                                   limit),
                          std::memory_order_relaxed);
  if (vals.empty()) {
    gather->promise.set_value({});
    return gather->promise.future();
  }
  if (fetch) gather->out.resize(vals.size());
  auto future = gather->promise.future();
  st.ops_batched->inc(vals.size());
  const std::size_t my_rank = st.my_rank();
  const std::uint64_t one_local[1] = {p.local_index};
  for (std::size_t off = 0; off < vals.size(); off += limit) {
    const std::size_t n = std::min(limit, vals.size() - off);
    const std::span<const T> chunk_vals = vals.subspan(off, n);
    if (p.rank == my_rank) {
      apply_batch_sink<T>(st, op, fetch, PairMode::kOneIdxManyVals,
                          std::span<const std::uint64_t>{one_local, 1},
                          chunk_vals,
                          fetch ? gather->out.data() + off : nullptr);
      complete_one(gather);
      continue;
    }
    ArrayOpAm<T> am;
    am.state = state;
    am.op = op;
    am.fetch = fetch ? 1 : 0;
    am.pair = PairMode::kOneIdxManyVals;
    am.locals = std::span<const std::uint64_t>{one_local, 1};
    am.vals = chunk_vals;
    st.chunk_bytes_inline->inc(sizeof(one_local) + chunk_vals.size_bytes());
    st.world->engine().send_cb(
        st.team.world_pe(p.rank), std::move(am),
        [gather, off, fetch](ValSpan<T> r) {
          if (fetch) {
            for (std::size_t j = 0; j < r.view.size(); ++j) {
              gather->out[off + j] = r.view[j];
            }
          }
          complete_one(gather);
        });
  }
  return future;
}

/// Dispatch a compare-exchange batch (one shared `expected`, per-index
/// `desired` or one shared desired value).  Shares the arena planner with
/// dispatch_op; results always come back (cex is inherently fetching).
template <typename T>
Future<std::vector<CexResult<T>>> dispatch_cex(
    const Darc<ArrayState<T>>& state, std::size_t view_start, T expected,
    std::span<const global_index> idxs, std::span<const T> desired) {
  ArrayState<T>& st = *state;
  ScratchArena& arena = ScratchArena::local();
  const std::uint64_t grows_before = arena.grow_events();
  ArenaFrame frame(arena);
  auto plan = plan_chunks(arena, st, idxs, view_start,
                          st.world->config().batch_op_limit,
                          /*want_positions=*/true);
  st.ops_batched->inc(idxs.size());

  auto gather = std::make_shared<BatchGather<CexResult<T>>>();
  gather->remaining.store(plan.chunks.size(), std::memory_order_relaxed);
  if (plan.chunks.empty()) {
    st.plan_allocs->inc(arena.grow_events() - grows_before);
    gather->promise.set_value({});
    return gather->promise.future();
  }
  gather->out.resize(idxs.size());
  const bool multi = plan.chunks.size() > 1;
  if (multi) {
    gather->positions.assign(plan.pos_flat.begin(), plan.pos_flat.end());
  }
  auto future = gather->promise.future();

  const bool shared_desired = desired.size() == 1 && idxs.size() != 1;
  const std::size_t my_rank = st.my_rank();
  for (const ChunkRef& chunk : plan.chunks) {
    const std::span<const std::uint64_t> locals =
        plan.locals_flat.subspan(chunk.offset, chunk.len);
    const std::span<const std::size_t> pos =
        plan.pos_flat.subspan(chunk.offset, chunk.len);
    if (chunk.rank == my_rank) {
      for (std::size_t j = 0; j < chunk.len; ++j) {
        const T want = shared_desired ? desired[0] : desired[pos[j]];
        gather->out[multi ? pos[j] : j] =
            apply_cex<T>(st, locals[j], expected, want);
      }
      complete_one(gather);
      continue;
    }
    ArrayCexAm<T> am;
    am.state = state;
    am.expected = expected;
    am.locals = locals;
    if (shared_desired) {
      am.desired = desired;
    } else {
      am.desired_base = desired.data();
      am.gather_pos = pos;
    }
    const std::size_t want_count = shared_desired ? 1 : chunk.len;
    st.chunk_bytes_inline->inc(locals.size_bytes() + want_count * sizeof(T));
    st.world->engine().send_cb(
        st.team.world_pe(chunk.rank), std::move(am),
        [gather, pos_offset = multi ? chunk.offset : kIdentityScatter](
            ValSpan<CexResult<T>> r) {
          scatter_chunk(gather, pos_offset, r.view);
          complete_one(gather);
        });
  }
  st.plan_allocs->inc(arena.grow_events() - grows_before);
  return future;
}

/// Contiguous owner ranges of the global span [start, start+len), in order.
/// For cyclic distributions a "range" is a strided run: local indices are
/// consecutive on the owner while caller offsets advance by caller_stride.
struct OwnedRange {
  std::size_t rank;
  std::uint64_t local_start;
  std::size_t len;
  std::size_t caller_offset;   ///< offset within the caller's buffer
  std::size_t caller_stride;   ///< 1 for block; num_ranks for cyclic
};

template <typename T>
std::vector<OwnedRange> plan_ranges(const ArrayState<T>& st,
                                    global_index start, std::size_t len) {
  std::vector<OwnedRange> ranges;
  if (len == 0) return ranges;
  if (st.map.dist() == Distribution::kBlock) {
    std::size_t off = 0;
    while (off < len) {
      const Placement p = st.map.place(start + off);
      const std::size_t owner_room =
          st.map.local_len(p.rank) - p.local_index;
      const std::size_t n = std::min(owner_room, len - off);
      ranges.push_back(OwnedRange{p.rank, p.local_index, n, off, 1});
      off += n;
    }
    return ranges;
  }
  // Cyclic: rank place(start + k).rank owns caller offsets k, k + n,
  // k + 2n, ... — consecutive local slots on the owner — so the whole span
  // coalesces into at most num_ranks strided runs, one per starting offset.
  const std::size_t n = st.map.num_ranks();
  for (std::size_t k = 0; k < n && k < len; ++k) {
    const Placement p = st.map.place(start + k);
    const std::size_t count = 1 + (len - 1 - k) / n;
    ranges.push_back(OwnedRange{p.rank, p.local_index, count, k, n});
  }
  return ranges;
}

/// A contiguous view of the caller elements a range covers: the buffer
/// slice itself for unit-stride runs, an arena-staged gather otherwise
/// (valid until the enclosing frame rewinds).
template <typename T>
std::span<const T> contiguous_slice(ScratchArena& arena,
                                    std::span<const T> data,
                                    const OwnedRange& r) {
  if (r.caller_stride <= 1) return data.subspan(r.caller_offset, r.len);
  auto staged = arena.alloc_span<T>(r.len);
  for (std::size_t j = 0; j < r.len; ++j) {
    staged[j] = data[r.caller_offset + j * r.caller_stride];
  }
  return staged;
}

/// Scatter a range's elements back into the caller's buffer.
template <typename T>
void scatter_range(T* out, const OwnedRange& r, std::span<const T> piece) {
  for (std::size_t j = 0; j < piece.size(); ++j) {
    out[r.caller_offset + j * r.caller_stride] = piece[j];
  }
}

}  // namespace array_detail
}  // namespace lamellar
