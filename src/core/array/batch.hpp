// Batch dispatch for array element operations (paper Sec. III-F3).
//
// The runtime "calculates the correct PEs and offsets for each array index,
// batching operations by destination PE within a single message", splitting
// batches at the configured op limit (default 10,000, the value the paper's
// experiments use).  Fetch results are scattered back into caller order.
// Local chunks are applied directly (owner == caller), remote chunks travel
// as ArrayOpAm / ArrayCexAm.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/array/array_ams.hpp"

namespace lamellar {
namespace array_detail {

/// One destination-bound chunk: local indices + operand slice + original
/// caller positions (for fetch scatter).
struct ChunkPlan {
  std::size_t rank = 0;
  std::vector<std::uint64_t> locals;
  std::vector<std::size_t> positions;
};

/// Group indices by owner and split at the batch limit.
template <typename T>
std::vector<ChunkPlan> plan_chunks(const ArrayState<T>& st,
                                   std::span<const global_index> idxs,
                                   std::size_t view_start,
                                   std::size_t batch_limit) {
  std::vector<std::vector<std::uint64_t>> locals_by_rank(st.map.num_ranks());
  std::vector<std::vector<std::size_t>> pos_by_rank(st.map.num_ranks());
  for (std::size_t i = 0; i < idxs.size(); ++i) {
    const Placement p = st.map.place(view_start + idxs[i]);
    locals_by_rank[p.rank].push_back(p.local_index);
    pos_by_rank[p.rank].push_back(i);
  }
  std::vector<ChunkPlan> chunks;
  for (std::size_t r = 0; r < locals_by_rank.size(); ++r) {
    auto& locals = locals_by_rank[r];
    auto& positions = pos_by_rank[r];
    for (std::size_t off = 0; off < locals.size(); off += batch_limit) {
      const std::size_t n = std::min(batch_limit, locals.size() - off);
      ChunkPlan chunk;
      chunk.rank = r;
      chunk.locals.assign(locals.begin() + off, locals.begin() + off + n);
      chunk.positions.assign(positions.begin() + off,
                             positions.begin() + off + n);
      chunks.push_back(std::move(chunk));
    }
  }
  return chunks;
}

template <typename R>
struct BatchGather {
  std::mutex mu;
  std::vector<R> out;
  std::size_t remaining = 0;
  Promise<std::vector<R>> promise;
};

/// Completion-only gather (no results): counts chunks into a Future<Unit>.
struct UnitGather {
  std::mutex mu;
  std::size_t remaining = 0;
  Promise<Unit> promise;
};

inline void finish_unit(const std::shared_ptr<UnitGather>& gather) {
  std::unique_lock lock(gather->mu);
  if (--gather->remaining == 0) {
    lock.unlock();
    gather->promise.set_value(Unit{});
  }
}

/// Scatter one chunk's results into the gather at the chunk's positions and
/// complete the promise on the last chunk.
template <typename R>
void absorb_chunk(const std::shared_ptr<BatchGather<R>>& gather,
                  const std::vector<std::size_t>& positions,
                  std::vector<R>&& results, bool fetch) {
  std::unique_lock lock(gather->mu);
  if (fetch) {
    for (std::size_t j = 0; j < positions.size(); ++j) {
      gather->out[positions[j]] = std::move(results[j]);
    }
  }
  if (--gather->remaining == 0) {
    auto out = std::move(gather->out);
    lock.unlock();
    gather->promise.set_value(std::move(out));
  }
}

/// Dispatch an element-op batch.  `vals` has size idxs.size() (one-to-one)
/// or 1 (many-indices-one-value).  Returns fetch results in caller order
/// (empty vector for non-fetch ops, completing when all chunks applied).
template <typename T>
Future<std::vector<T>> dispatch_op(const Darc<ArrayState<T>>& state,
                                   std::size_t view_start, OpCode op,
                                   bool fetch,
                                   std::span<const global_index> idxs,
                                   std::span<const T> vals) {
  ArrayState<T>& st = *state;
  const PairMode pair = vals.size() <= 1 && idxs.size() != 1
                            ? PairMode::kManyIdxOneVal
                            : PairMode::kOneToOne;
  auto chunks =
      plan_chunks(st, idxs, view_start, st.world->config().batch_op_limit);
  auto gather = std::make_shared<BatchGather<T>>();
  gather->remaining = chunks.size();
  if (fetch) gather->out.resize(idxs.size());
  if (chunks.empty()) {
    gather->promise.set_value({});
    return gather->promise.future();
  }
  auto future = gather->promise.future();

  const std::size_t my_rank = st.my_rank();
  for (auto& chunk : chunks) {
    std::vector<T> chunk_vals;
    if (pair == PairMode::kManyIdxOneVal) {
      if (!vals.empty()) chunk_vals.push_back(vals[0]);
    } else {
      chunk_vals.reserve(chunk.positions.size());
      for (auto p : chunk.positions) chunk_vals.push_back(vals[p]);
    }
    if (chunk.rank == my_rank) {
      auto results = apply_batch<T>(st, op, fetch, pair, chunk.locals,
                                    chunk_vals);
      absorb_chunk(gather, chunk.positions, std::move(results), fetch);
      continue;
    }
    ArrayOpAm<T> am;
    am.state = state;
    am.op = op;
    am.fetch = fetch ? 1 : 0;
    am.pair = pair;
    am.locals = std::move(chunk.locals);
    am.vals = std::move(chunk_vals);
    st.world->engine().send_cb(
        st.team.world_pe(chunk.rank), std::move(am),
        [gather, positions = std::move(chunk.positions),
         fetch](std::vector<T> results) mutable {
          absorb_chunk(gather, positions, std::move(results), fetch);
        });
  }
  return future;
}

/// Dispatch the One Index - Many Values form: every operand applies (in
/// order) to the single element at `idx`.
template <typename T>
Future<std::vector<T>> dispatch_op_one_idx(const Darc<ArrayState<T>>& state,
                                           std::size_t view_start, OpCode op,
                                           bool fetch, global_index idx,
                                           std::span<const T> vals) {
  ArrayState<T>& st = *state;
  const Placement p = st.map.place(view_start + idx);
  const std::size_t limit = st.world->config().batch_op_limit;
  auto gather = std::make_shared<BatchGather<T>>();
  gather->remaining = ceil_div(std::max<std::size_t>(vals.size(), 1), limit);
  if (fetch) gather->out.resize(vals.size());
  if (vals.empty()) {
    gather->promise.set_value({});
    return gather->promise.future();
  }
  auto future = gather->promise.future();
  const std::size_t my_rank = st.my_rank();
  std::vector<std::uint64_t> one_local{p.local_index};
  for (std::size_t off = 0; off < vals.size(); off += limit) {
    const std::size_t n = std::min(limit, vals.size() - off);
    std::vector<std::size_t> positions(n);
    for (std::size_t j = 0; j < n; ++j) positions[j] = off + j;
    std::vector<T> chunk_vals(vals.begin() + off, vals.begin() + off + n);
    if (p.rank == my_rank) {
      auto results = apply_batch<T>(st, op, fetch, PairMode::kOneIdxManyVals,
                                    one_local, chunk_vals);
      absorb_chunk(gather, positions, std::move(results), fetch);
      continue;
    }
    ArrayOpAm<T> am;
    am.state = state;
    am.op = op;
    am.fetch = fetch ? 1 : 0;
    am.pair = PairMode::kOneIdxManyVals;
    am.locals = one_local;
    am.vals = std::move(chunk_vals);
    st.world->engine().send_cb(
        st.team.world_pe(p.rank), std::move(am),
        [gather, positions = std::move(positions),
         fetch](std::vector<T> results) mutable {
          absorb_chunk(gather, positions, std::move(results), fetch);
        });
  }
  return future;
}

/// Dispatch a compare-exchange batch (one shared `expected`, per-index
/// `desired` or one shared desired value).
template <typename T>
Future<std::vector<CexResult<T>>> dispatch_cex(
    const Darc<ArrayState<T>>& state, std::size_t view_start, T expected,
    std::span<const global_index> idxs, std::span<const T> desired) {
  ArrayState<T>& st = *state;
  auto chunks =
      plan_chunks(st, idxs, view_start, st.world->config().batch_op_limit);
  auto gather = std::make_shared<BatchGather<CexResult<T>>>();
  gather->remaining = chunks.size();
  gather->out.resize(idxs.size());
  if (chunks.empty()) {
    gather->promise.set_value({});
    return gather->promise.future();
  }
  auto future = gather->promise.future();

  const bool shared_desired = desired.size() == 1 && idxs.size() != 1;
  const std::size_t my_rank = st.my_rank();
  for (auto& chunk : chunks) {
    std::vector<T> chunk_desired;
    if (shared_desired) {
      chunk_desired.push_back(desired[0]);
    } else {
      chunk_desired.reserve(chunk.positions.size());
      for (auto p : chunk.positions) chunk_desired.push_back(desired[p]);
    }
    if (chunk.rank == my_rank) {
      std::vector<CexResult<T>> results;
      results.reserve(chunk.locals.size());
      for (std::size_t j = 0; j < chunk.locals.size(); ++j) {
        const T want = shared_desired ? chunk_desired[0] : chunk_desired[j];
        results.push_back(apply_cex<T>(st, chunk.locals[j], expected, want));
      }
      absorb_chunk(gather, chunk.positions, std::move(results), true);
      continue;
    }
    ArrayCexAm<T> am;
    am.state = state;
    am.locals = std::move(chunk.locals);
    am.expected = expected;
    am.desired = std::move(chunk_desired);
    st.world->engine().send_cb(
        st.team.world_pe(chunk.rank), std::move(am),
        [gather, positions = std::move(chunk.positions)](
            std::vector<CexResult<T>> results) mutable {
          absorb_chunk(gather, positions, std::move(results), true);
        });
  }
  return future;
}

/// Contiguous owner ranges of the global span [start, start+len), in order.
struct OwnedRange {
  std::size_t rank;
  std::uint64_t local_start;
  std::size_t len;
  std::size_t caller_offset;  ///< offset within the caller's buffer
};

template <typename T>
std::vector<OwnedRange> plan_ranges(const ArrayState<T>& st,
                                    global_index start, std::size_t len) {
  std::vector<OwnedRange> ranges;
  if (len == 0) return ranges;
  if (st.map.dist() == Distribution::kBlock) {
    std::size_t off = 0;
    while (off < len) {
      const Placement p = st.map.place(start + off);
      const std::size_t owner_room =
          st.map.local_len(p.rank) - p.local_index;
      const std::size_t n = std::min(owner_room, len - off);
      ranges.push_back(OwnedRange{p.rank, p.local_index, n, off});
      off += n;
    }
    return ranges;
  }
  // Cyclic: each owner's elements are strided; emit per-element ranges
  // grouped by owner (ascending caller offset within each group).
  std::vector<std::vector<std::pair<std::uint64_t, std::size_t>>> by_rank(
      st.map.num_ranks());
  for (std::size_t off = 0; off < len; ++off) {
    const Placement p = st.map.place(start + off);
    by_rank[p.rank].emplace_back(p.local_index, off);
  }
  for (std::size_t r = 0; r < by_rank.size(); ++r) {
    for (auto& [local, off] : by_rank[r]) {
      ranges.push_back(OwnedRange{r, local, 1, off});
    }
  }
  return ranges;
}

}  // namespace array_detail
}  // namespace lamellar
