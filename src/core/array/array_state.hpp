// Shared state behind every LamellarArray type, plus the owner-side
// element-operation machinery (paper Sec. III-F).
//
// All five array types (Unsafe, ReadOnly, Atomic{Native,Generic}, LocalLock)
// are views over one ArrayState, owned by a Darc, so conversions between
// types are O(1) once the uniqueness check passes.  Element and batch
// operations execute *on the owner PE* — that PE applies the op under its
// type's safety regime (direct / atomic / per-element mutex / PE-wide
// rwlock), which is exactly how the paper's safe arrays emulate RDMA.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/array/distribution.hpp"
#include "core/memregion/shared_region.hpp"
#include "core/scheduler/future.hpp"
#include "core/world/world.hpp"
#include "obs/metrics.hpp"

namespace lamellar {

/// Safety regime currently owning the underlying data.
enum class ArrayMode : std::uint8_t {
  kUnsafe,
  kReadOnly,
  kAtomicNative,
  kAtomicGeneric,
  kLocalLock,
};

/// Element operations (paper Sec. III-F3): arithmetic, bit-wise, shifts,
/// store/load/swap and compare-exchange, each with an optional fetch form.
enum class OpCode : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kStore,
  kLoad,
  kSwap,
  kCompareExchange,
};

/// How indices pair with values in a batch (paper: Many Indices - One Value,
/// One Index - Many Values, Many - Many one-to-one).
enum class PairMode : std::uint8_t {
  kManyIdxOneVal,
  kOneIdxManyVals,
  kOneToOne,
};

/// Result of a compare-exchange: the value observed and whether it swapped.
template <typename T>
struct CexResult {
  T current{};
  std::uint8_t success = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(current, success);
  }
};

template <typename T>
constexpr bool kNativeAtomicCapable =
    std::is_integral_v<T> && sizeof(T) <= 8 && sizeof(T) >= 1;

enum class ReduceOp : std::uint8_t { kSum, kProd, kMin, kMax };

/// One stage of a fused element-op chain as it travels on the wire: the op
/// plus whether its operand region carries one value per element or a single
/// shared value.  POD (2 bytes, alignment 1) so a chain's stage table
/// serializes as a plain element span.
struct FusedStage {
  OpCode op = OpCode::kAdd;
  std::uint8_t per_elem = 0;
};
static_assert(std::is_trivially_copyable_v<FusedStage> &&
              sizeof(FusedStage) == 2);

/// One recorded stage of a lazy chain on the caller side: the op plus its
/// operand source — a shared scalar, or a borrowed pointer into the
/// caller's per-element value buffer (which must stay alive until the
/// chain group flushes; see DESIGN.md §11).
template <typename T>
struct FusedStageRec {
  OpCode op = OpCode::kAdd;
  bool per_elem = false;
  T scalar{};               ///< shared operand when !per_elem
  const T* vals = nullptr;  ///< caller operand buffer when per_elem
};

/// Collective reductions (iterator reduce) allocate their tree ids in a
/// dedicated space so they can never collide with one-sided reduce ids
/// ((root << 40) | seq): PEs number in 32 bits, so bit 62 is unreachable.
inline constexpr std::uint64_t kCollectiveReduceId = 1ull << 62;

template <typename T>
struct ArrayState {
  World* world = nullptr;
  Team team;
  SharedMemoryRegion<T> data;
  DistributionMap map;
  ArrayMode mode = ArrayMode::kUnsafe;

  /// LocalLockArray: one PE-wide readers-writer lock.
  std::unique_ptr<std::shared_mutex> local_lock;

  /// GenericAtomicArray: a 1-byte mutex per local element.
  std::unique_ptr<std::atomic<std::uint8_t>[]> elem_locks;
  std::size_t elem_locks_len = 0;

  // Batched-op pipeline metrics ("array.*"), resolved once in create_state
  // from this PE's registry (inert slots when metrics are disabled).
  obs::Counter* ops_batched = nullptr;
  obs::Counter* chunk_bytes_inline = nullptr;
  obs::Counter* plan_allocs = nullptr;
  // Lazy-chain fusion metrics: chain length per flushed group, and the
  // number of eager AM passes each fused dispatch avoided.
  obs::Counter* fused_ams_saved = nullptr;
  obs::Histogram* fused_chain_len = nullptr;

  /// One in-flight node of an async combining-tree reduction on this PE.
  /// The root fans every ReduceStartAm out directly, so a fast child's
  /// partial can arrive before this node's own start — contributions
  /// therefore fold order-tolerantly (`touched`/`remaining` go negative
  /// until `init` adds the expected count).  The final contribution either
  /// completes the root promise or forwards the folded value to
  /// `parent_rank`.
  struct ReduceNode {
    T acc{};
    ReduceOp op = ReduceOp::kSum;
    std::int64_t remaining = 0;  ///< outstanding contributions once `init`
    std::uint32_t parent_rank = 0;
    bool init = false;     ///< start arrived: remaining/parent/root valid
    bool touched = false;  ///< acc holds at least one folded value
    bool root = false;
    bool bcast = false;  ///< root of a collective: fan result to the team
    Promise<T> promise;  ///< meaningful only when `root`
  };
  struct ReduceCoord {
    std::mutex mu;
    std::unordered_map<std::uint64_t, ReduceNode> nodes;
    std::uint64_t next_seq = 0;
    /// Collective (iterator) reductions: every PE draws the same id from
    /// its own ordered counter and non-roots park their result promise
    /// here until the root's ReduceResultAm broadcast lands.
    std::uint64_t next_collective = 0;
    std::unordered_map<std::uint64_t, Promise<T>> pending_results;
  };
  std::unique_ptr<ReduceCoord> reduce_coord =
      std::make_unique<ReduceCoord>();

  ArrayState() = default;
  ArrayState(ArrayState&&) noexcept = default;
  ArrayState(const ArrayState&) = delete;
  ArrayState& operator=(const ArrayState&) = delete;

  [[nodiscard]] std::span<T> local_slab() { return data.unsafe_local_slice(); }

  [[nodiscard]] std::size_t my_rank() const { return team.my_rank(); }

  void ensure_elem_locks() {
    if (elem_locks) return;
    elem_locks_len = map.per_rank_capacity();
    elem_locks.reset(new std::atomic<std::uint8_t>[elem_locks_len]);
    for (std::size_t i = 0; i < elem_locks_len; ++i) elem_locks[i].store(0);
  }

  void ensure_local_lock() {
    if (!local_lock) local_lock = std::make_unique<std::shared_mutex>();
  }

  /// The contiguous range of *local* slots whose global indices fall inside
  /// the view [view_start, view_start + view_len).  Contiguity holds for
  /// both distributions: block views clip the slab; cyclic views stride
  /// uniformly, which is contiguous in local-slot space.
  [[nodiscard]] std::pair<std::size_t, std::size_t> local_view_range(
      global_index view_start, std::size_t view_len) const {
    const std::size_t rank = team.my_rank();
    const std::size_t llen = map.local_len(rank);
    if (view_len == 0 || llen == 0) return {0, 0};
    const global_index s = view_start;
    const global_index e = view_start + view_len;  // exclusive
    if (map.dist() == Distribution::kBlock) {
      const global_index base = rank * map.per_rank_capacity();
      const std::size_t lo =
          s > base ? std::min<std::size_t>(s - base, llen) : 0;
      const std::size_t hi =
          e > base ? std::min<std::size_t>(e - base, llen) : 0;
      return {lo, hi};
    }
    const std::size_t n = map.num_ranks();
    const std::size_t lo =
        s > rank ? std::min<std::size_t>(ceil_div(s - rank, n), llen) : 0;
    const std::size_t hi =
        e > rank ? std::min<std::size_t>(ceil_div(e - rank, n), llen) : 0;
    return {lo, hi};
  }

  // The state never travels by value; its Darc id does.
  template <class Ar>
  void serialize(Ar&) {
    throw Error("ArrayState is transferred via its Darc id only");
  }
};

namespace array_detail {

/// Spin on a 1-byte mutex (the paper's GenericAtomicArray element guard).
class ByteLockGuard {
 public:
  explicit ByteLockGuard(std::atomic<std::uint8_t>& b) : b_(b) {
    std::uint8_t expected = 0;
    while (!b_.compare_exchange_weak(expected, 1,
                                     std::memory_order_acquire)) {
      expected = 0;
    }
  }
  ~ByteLockGuard() { b_.store(0, std::memory_order_release); }
  ByteLockGuard(const ByteLockGuard&) = delete;
  ByteLockGuard& operator=(const ByteLockGuard&) = delete;

 private:
  std::atomic<std::uint8_t>& b_;
};

/// Pure value-level semantics of an op (no concurrency).
template <typename T>
T combine(OpCode op, T cur, T operand) {
  switch (op) {
    case OpCode::kAdd:
      return cur + operand;
    case OpCode::kSub:
      return cur - operand;
    case OpCode::kMul:
      return cur * operand;
    case OpCode::kDiv:
      return cur / operand;
    case OpCode::kRem:
      if constexpr (std::is_integral_v<T>) {
        return cur % operand;
      } else {
        throw Error("rem on non-integral element type");
      }
    case OpCode::kAnd:
      if constexpr (std::is_integral_v<T>) {
        return cur & operand;
      } else {
        throw Error("bit-op on non-integral element type");
      }
    case OpCode::kOr:
      if constexpr (std::is_integral_v<T>) {
        return cur | operand;
      } else {
        throw Error("bit-op on non-integral element type");
      }
    case OpCode::kXor:
      if constexpr (std::is_integral_v<T>) {
        return cur ^ operand;
      } else {
        throw Error("bit-op on non-integral element type");
      }
    case OpCode::kShl:
      if constexpr (std::is_integral_v<T>) {
        return cur << operand;
      } else {
        throw Error("shift on non-integral element type");
      }
    case OpCode::kShr:
      if constexpr (std::is_integral_v<T>) {
        return cur >> operand;
      } else {
        throw Error("shift on non-integral element type");
      }
    case OpCode::kStore:
    case OpCode::kSwap:
      return operand;
    case OpCode::kLoad:
      return cur;
    case OpCode::kCompareExchange:
      throw Error("compare_exchange handled separately");
  }
  throw Error("unknown op code");
}

/// Apply one op to `slot` under this array mode's safety regime; returns the
/// previous value.
template <typename T>
T apply_one(ArrayState<T>& st, std::size_t local, OpCode op, T operand) {
  T* slot = st.local_slab().data() + local;
  switch (st.mode) {
    case ArrayMode::kUnsafe:
    case ArrayMode::kReadOnly: {
      // ReadOnly permits only loads (enforced by the wrapper API).
      // UnsafeArray promises no read-modify-write atomicity: racing updates
      // may lose increments, exactly as the paper specifies.  The individual
      // load and store still go through a relaxed atomic_ref so a racing
      // access is tear-free and not a C++ data race (plain accesses here
      // would be UB and drown TSan in by-design reports).
      if constexpr (kNativeAtomicCapable<T>) {
        std::atomic_ref<T> ref(*slot);
        const T prev = ref.load(std::memory_order_relaxed);
        if (op != OpCode::kLoad)
          ref.store(combine(op, prev, operand), std::memory_order_relaxed);
        return prev;
      } else {
        const T prev = *slot;
        if (op != OpCode::kLoad) *slot = combine(op, prev, operand);
        return prev;
      }
    }
    case ArrayMode::kAtomicNative: {
      if constexpr (kNativeAtomicCapable<T>) {
        std::atomic_ref<T> ref(*slot);
        switch (op) {
          case OpCode::kAdd:
            return ref.fetch_add(operand, std::memory_order_acq_rel);
          case OpCode::kSub:
            return ref.fetch_sub(operand, std::memory_order_acq_rel);
          case OpCode::kAnd:
            return ref.fetch_and(operand, std::memory_order_acq_rel);
          case OpCode::kOr:
            return ref.fetch_or(operand, std::memory_order_acq_rel);
          case OpCode::kXor:
            return ref.fetch_xor(operand, std::memory_order_acq_rel);
          case OpCode::kLoad:
            return ref.load(std::memory_order_acquire);
          case OpCode::kStore:
          case OpCode::kSwap:
            return ref.exchange(operand, std::memory_order_acq_rel);
          default: {
            // mul/div/rem/shifts: CAS loop.
            T cur = ref.load(std::memory_order_acquire);
            while (!ref.compare_exchange_weak(cur, combine(op, cur, operand),
                                              std::memory_order_acq_rel)) {
            }
            return cur;
          }
        }
      }
      throw Error("native atomic mode on incompatible element type");
    }
    case ArrayMode::kAtomicGeneric: {
      ByteLockGuard guard(st.elem_locks[local]);
      const T prev = *slot;
      if (op != OpCode::kLoad) *slot = combine(op, prev, operand);
      return prev;
    }
    case ArrayMode::kLocalLock: {
      // Callers batch under the PE-wide lock; this path takes it per-op.
      std::unique_lock lock(*st.local_lock);
      const T prev = *slot;
      if (op != OpCode::kLoad) *slot = combine(op, prev, operand);
      return prev;
    }
  }
  throw Error("unknown array mode");
}

/// Compare-exchange under the mode's regime.
template <typename T>
CexResult<T> apply_cex(ArrayState<T>& st, std::size_t local, T expected,
                       T desired) {
  T* slot = st.local_slab().data() + local;
  switch (st.mode) {
    case ArrayMode::kAtomicNative:
      if constexpr (kNativeAtomicCapable<T>) {
        std::atomic_ref<T> ref(*slot);
        T exp = expected;
        const bool ok =
            ref.compare_exchange_strong(exp, desired,
                                        std::memory_order_acq_rel);
        return {exp, static_cast<std::uint8_t>(ok)};
      }
      throw Error("native atomic mode on incompatible element type");
    case ArrayMode::kAtomicGeneric: {
      ByteLockGuard guard(st.elem_locks[local]);
      if (*slot == expected) {
        *slot = desired;
        return {expected, 1};
      }
      return {*slot, 0};
    }
    case ArrayMode::kLocalLock: {
      std::unique_lock lock(*st.local_lock);
      if (*slot == expected) {
        *slot = desired;
        return {expected, 1};
      }
      return {*slot, 0};
    }
    case ArrayMode::kUnsafe: {
      // Non-atomic check-then-store (see apply_one): relaxed accesses keep
      // the by-design race tear-free without adding a synchronization
      // guarantee UnsafeArray does not offer.
      if constexpr (kNativeAtomicCapable<T>) {
        std::atomic_ref<T> ref(*slot);
        const T cur = ref.load(std::memory_order_relaxed);
        if (cur == expected) {
          ref.store(desired, std::memory_order_relaxed);
          return {expected, 1};
        }
        return {cur, 0};
      } else {
        if (*slot == expected) {
          *slot = desired;
          return {expected, 1};
        }
        return {*slot, 0};
      }
    }
    case ArrayMode::kReadOnly:
      throw Error("compare_exchange on ReadOnlyArray");
  }
  throw Error("unknown array mode");
}

/// Apply a whole batch (already translated to local indices), writing fetch
/// results into the caller-provided sink — dispatchers point `results` at
/// the gather's output slots (or an arena span) so the owner side allocates
/// nothing.  `results` may be null when `fetch` is false.  Charges
/// per-element safety costs to the PE clock so Fig. 2/3 reflect the paper's
/// observed overhead ordering.
template <typename T>
void apply_batch_sink(ArrayState<T>& st, OpCode op, bool fetch, PairMode pair,
                      std::span<const std::uint64_t> locals,
                      std::span<const T> vals, T* results) {
  const std::size_t n =
      pair == PairMode::kOneIdxManyVals ? vals.size() : locals.size();

  auto& lamellae = st.world->lamellae();
  const auto& params = lamellae.params();
  double cost = 0.0;
  switch (st.mode) {
    case ArrayMode::kAtomicNative:
      cost = params.atomic_store_ns * static_cast<double>(n);
      break;
    case ArrayMode::kAtomicGeneric:
      cost = params.generic_mutex_ns * static_cast<double>(n);
      break;
    case ArrayMode::kLocalLock:
      cost = params.rwlock_acquire_ns +
             static_cast<double>(n * sizeof(T)) / params.memcpy_bytes_per_ns;
      break;
    default:
      cost = static_cast<double>(n * sizeof(T)) / params.memcpy_bytes_per_ns;
      break;
  }
  lamellae.charge(cost);

  if (st.mode == ArrayMode::kLocalLock && n > 1) {
    // Whole-batch exclusive lock, then direct application.
    std::unique_lock lock(*st.local_lock);
    const ArrayMode saved = st.mode;
    st.mode = ArrayMode::kUnsafe;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t local = pair == PairMode::kOneIdxManyVals
                                    ? locals[0]
                                    : locals[j];
      const T operand = vals.empty()
                            ? T{}
                            : (pair == PairMode::kManyIdxOneVal ? vals[0]
                                                                : vals[j]);
      const T prev = apply_one(st, local, op, operand);
      if (fetch) results[j] = prev;
    }
    st.mode = saved;
    return;
  }

  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t local =
        pair == PairMode::kOneIdxManyVals ? locals[0] : locals[j];
    const T operand =
        vals.empty() ? T{}
                     : (pair == PairMode::kManyIdxOneVal ? vals[0] : vals[j]);
    const T prev = apply_one(st, local, op, operand);
    if (fetch) results[j] = prev;
  }
}

/// Apply a fused op chain to a batch of local slots: per element, one load,
/// a fold of every stage through `combine`, one store — regardless of chain
/// length.  `ops` is the concatenated operand region (per-element stages
/// contribute locals.size() values, shared stages one).  When `results` is
/// non-null, results[j] receives the *post-chain* value of element j (the
/// chain's gather terminal observes what it just wrote; a pure gather is an
/// empty chain).  Safety regimes match the mode: kAtomicNative folds the
/// whole chain in a single CAS loop (the chain is element-atomic — stronger
/// than k separate atomic ops), kAtomicGeneric holds the element byte lock
/// across the fold, kLocalLock takes the PE-wide lock once for the batch,
/// kUnsafe/kReadOnly use relaxed tear-free accesses like apply_one.
template <typename T>
void apply_fused_sink(ArrayState<T>& st, std::span<const FusedStage> stages,
                      std::span<const T> ops,
                      std::span<const std::uint64_t> locals, T* results) {
  const std::size_t n = locals.size();
  if (n == 0) return;
  const bool mutates = !stages.empty();
  if (st.mode == ArrayMode::kReadOnly && mutates) {
    throw Error("fused chain with mutating stages on ReadOnlyArray");
  }

  // One batch's worth of per-element safety cost, charged once: the fused
  // pass performs a single guarded read-modify-write per element no matter
  // how many stages fold into it.
  auto& lamellae = st.world->lamellae();
  const auto& params = lamellae.params();
  double cost = 0.0;
  switch (st.mode) {
    case ArrayMode::kAtomicNative:
      cost = params.atomic_store_ns * static_cast<double>(n);
      break;
    case ArrayMode::kAtomicGeneric:
      cost = params.generic_mutex_ns * static_cast<double>(n);
      break;
    case ArrayMode::kLocalLock:
      cost = params.rwlock_acquire_ns +
             static_cast<double>(n * sizeof(T)) / params.memcpy_bytes_per_ns;
      break;
    default:
      cost = static_cast<double>(n * sizeof(T)) / params.memcpy_bytes_per_ns;
      break;
  }
  lamellae.charge(cost);

  auto fold = [&](std::size_t j, T cur) {
    std::size_t ob = 0;
    for (const FusedStage& s : stages) {
      cur = combine(s.op, cur, s.per_elem != 0 ? ops[ob + j] : ops[ob]);
      ob += s.per_elem != 0 ? n : 1;
    }
    return cur;
  };

  T* slab = st.local_slab().data();
  switch (st.mode) {
    case ArrayMode::kUnsafe:
    case ArrayMode::kReadOnly: {
      for (std::size_t j = 0; j < n; ++j) {
        T* slot = slab + locals[j];
        T next;
        if constexpr (kNativeAtomicCapable<T>) {
          std::atomic_ref<T> ref(*slot);
          next = fold(j, ref.load(std::memory_order_relaxed));
          if (mutates) ref.store(next, std::memory_order_relaxed);
        } else {
          next = fold(j, *slot);
          if (mutates) *slot = next;
        }
        if (results != nullptr) results[j] = next;
      }
      return;
    }
    case ArrayMode::kAtomicNative: {
      if constexpr (kNativeAtomicCapable<T>) {
        if (stages.size() == 1) {
          // One stage has nothing to fold: the dedicated native RMW
          // (fetch_add &c. in apply_one) beats the load+CAS round trip the
          // general chain loop pays.
          const FusedStage s = stages[0];
          for (std::size_t j = 0; j < n; ++j) {
            const T operand = s.per_elem != 0 ? ops[j] : ops[0];
            const T prev = apply_one<T>(st, locals[j], s.op, operand);
            if (results != nullptr) results[j] = combine(s.op, prev, operand);
          }
          return;
        }
        for (std::size_t j = 0; j < n; ++j) {
          std::atomic_ref<T> ref(slab[locals[j]]);
          T cur = ref.load(std::memory_order_acquire);
          T next = fold(j, cur);
          if (mutates) {
            while (!ref.compare_exchange_weak(cur, next,
                                              std::memory_order_acq_rel)) {
              next = fold(j, cur);
            }
          }
          if (results != nullptr) results[j] = next;
        }
        return;
      }
      throw Error("native atomic mode on incompatible element type");
    }
    case ArrayMode::kAtomicGeneric: {
      for (std::size_t j = 0; j < n; ++j) {
        ByteLockGuard guard(st.elem_locks[locals[j]]);
        T* slot = slab + locals[j];
        const T next = fold(j, *slot);
        if (mutates) *slot = next;
        if (results != nullptr) results[j] = next;
      }
      return;
    }
    case ArrayMode::kLocalLock: {
      std::shared_lock<std::shared_mutex> read;
      std::unique_lock<std::shared_mutex> write;
      if (mutates) {
        write = std::unique_lock(*st.local_lock);
      } else {
        read = std::shared_lock(*st.local_lock);
      }
      for (std::size_t j = 0; j < n; ++j) {
        T* slot = slab + locals[j];
        const T next = fold(j, *slot);
        if (mutates) *slot = next;
        if (results != nullptr) results[j] = next;
      }
      return;
    }
  }
  throw Error("unknown array mode");
}

}  // namespace array_detail

}  // namespace lamellar
