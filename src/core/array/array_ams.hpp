// Internal active messages implementing LamellarArray remote operations.
//
// Safe array types "utilize AMs to emulate the behavior of direct RDMA
// operations, so all access to a remote PE's data is actually managed on
// that PE" (paper Sec. III-F2).  Each AM carries the array's Darc (so the
// state is guaranteed alive), pre-translated local indices, and the operands;
// the owner applies the batch under its type's safety regime and replies
// with fetch results.
//
// Wire discipline (DESIGN.md §9): index and operand payloads are span-based.
// The send side writes them with Serializer::put_elems / put_elems_gather
// straight into the active aggregation lane (operand gathers — strided
// slices, caller-position permutations — happen during that single write),
// and exec() borrows them back out of the inbox buffer with get_elems.  The
// AM types declare kBorrowsPayload, so the engine keeps the inbox buffer
// alive across deferred execution and wraps exec + reply in an ArenaFrame;
// fetch results are staged in the scratch arena and serialized as ValSpan.
//
// AMs are templates over the element type; LAMELLAR_REGISTER_ARRAY_ELEMENT
// instantiates and registers the full set for one element type (the standard
// numeric types are pre-registered in array_base.cpp).
#pragma once

#include <cstring>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/scratch_arena.hpp"
#include "core/am/am_engine.hpp"
#include "core/array/array_state.hpp"

namespace lamellar {

/// Reply carrier for batched fetch results: a span over arena- or
/// slab-backed elements on the owner, a borrowed inbox view (or arena
/// fallback) on the requester.  Consumers must scatter the view before the
/// enclosing frame/buffer is released.
template <typename U>
struct ValSpan {
  std::span<const U> view;

  template <class Ar>
  void serialize(Ar& ar) {
    if constexpr (Ar::is_writing) {
      ar.put_elems(view);
    } else {
      view = ar.template get_elems<U>();
    }
  }
};

template <typename T>
struct ArrayOpAm {
  static constexpr bool kBorrowsPayload = true;

  Darc<ArrayState<T>> state;
  OpCode op = OpCode::kAdd;
  std::uint8_t fetch = 0;
  PairMode pair = PairMode::kOneToOne;
  std::span<const std::uint64_t> locals;
  std::span<const T> vals;

  // Send-side only (not wire state): when set, the operand slice is the
  // permutation vals_base[gather_pos[j]], written element-wise into the
  // lane instead of being staged contiguously first.
  const T* vals_base = nullptr;
  std::span<const std::size_t> gather_pos;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, op, fetch, pair);
    if constexpr (Ar::is_writing) {
      ar.put_elems(locals);
      if (vals_base != nullptr) {
        ar.template put_elems_gather<T>(
            gather_pos.size(),
            [this](std::size_t j) { return vals_base[gather_pos[j]]; });
      } else {
        ar.put_elems(vals);
      }
    } else {
      locals = ar.template get_elems<std::uint64_t>();
      vals = ar.template get_elems<T>();
    }
  }

  ValSpan<T> exec(AmContext&) {
    const std::size_t n =
        pair == PairMode::kOneIdxManyVals ? vals.size() : locals.size();
    std::span<T> out;
    if (fetch != 0) out = ScratchArena::local().alloc_span<T>(n);
    array_detail::apply_batch_sink<T>(*state, op, fetch != 0, pair, locals,
                                      vals, out.data());
    return {out};
  }
};

template <typename T>
struct ArrayCexAm {
  static constexpr bool kBorrowsPayload = true;

  Darc<ArrayState<T>> state;
  T expected{};
  std::span<const std::uint64_t> locals;
  std::span<const T> desired;  ///< one per index, or a single shared value

  // Send-side only: per-index desired values gathered by caller position.
  const T* desired_base = nullptr;
  std::span<const std::size_t> gather_pos;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, expected);
    if constexpr (Ar::is_writing) {
      ar.put_elems(locals);
      if (desired_base != nullptr) {
        ar.template put_elems_gather<T>(
            gather_pos.size(),
            [this](std::size_t j) { return desired_base[gather_pos[j]]; });
      } else {
        ar.put_elems(desired);
      }
    } else {
      locals = ar.template get_elems<std::uint64_t>();
      desired = ar.template get_elems<T>();
    }
  }

  ValSpan<CexResult<T>> exec(AmContext&) {
    auto out = ScratchArena::local().alloc_span<CexResult<T>>(locals.size());
    // Zero the slots so struct padding never carries uninitialized bytes
    // onto the wire.
    if (!out.empty()) {
      std::memset(static_cast<void*>(out.data()), 0, out.size_bytes());
    }
    for (std::size_t j = 0; j < locals.size(); ++j) {
      const T want = desired.size() == 1 ? desired[0] : desired[j];
      out[j] = array_detail::apply_cex<T>(*state, locals[j], expected, want);
    }
    return {out};
  }
};

/// A fused lazy-chain group bound for one destination PE (DESIGN.md §11):
/// the per-chunk local slots, the chain's stage table, and ONE concatenated
/// operand region — per-element stages contribute locals.size() values
/// (gathered by caller position straight into the lane), shared stages one.
/// exec() borrows everything from the inbox and applies the composed kernel
/// in a single pass; with `fetch` the reply carries post-chain values.
template <typename T>
struct ArrayFusedAm {
  static constexpr bool kBorrowsPayload = true;

  Darc<ArrayState<T>> state;
  std::uint8_t fetch = 0;
  std::span<const std::uint64_t> locals;
  std::span<const FusedStage> stages;
  std::span<const T> ops;  ///< exec-side concatenated operand region

  // Send-side only: the recorded stages (operand sources) and the chunk's
  // caller positions; the operand region is written with put_elems_gather,
  // permuting per-element operands into chunk order on the fly.
  const FusedStageRec<T>* recs = nullptr;
  std::span<const std::size_t> gather_pos;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, fetch);
    if constexpr (Ar::is_writing) {
      ar.put_elems(locals);
      ar.put_elems(stages);
      const std::size_t n = locals.size();
      std::size_t total = 0;
      for (const FusedStage& s : stages) total += s.per_elem != 0 ? n : 1;
      // Sequential gather over the concatenated layout: advance the stage
      // cursor when j crosses a region boundary (put_elems_gather calls
      // strictly in order, so the walk is O(total)).
      std::size_t si = 0;
      std::size_t sbase = 0;
      ar.template put_elems_gather<T>(total, [&](std::size_t j) {
        while (j - sbase >= (stages[si].per_elem != 0 ? n : 1)) {
          sbase += stages[si].per_elem != 0 ? n : 1;
          ++si;
        }
        const FusedStageRec<T>& rec = recs[si];
        if (!rec.per_elem) return rec.scalar;
        return rec.vals[gather_pos[j - sbase]];
      });
    } else {
      locals = ar.template get_elems<std::uint64_t>();
      stages = ar.template get_elems<FusedStage>();
      ops = ar.template get_elems<T>();
    }
  }

  ValSpan<T> exec(AmContext&) {
    std::span<T> out;
    if (fetch != 0) out = ScratchArena::local().alloc_span<T>(locals.size());
    array_detail::apply_fused_sink<T>(*state, stages, ops, locals,
                                      fetch != 0 ? out.data() : nullptr);
    return {out};
  }
};

/// RDMA-like put of a contiguous local range, applied under the owner's
/// safety regime (paper Fig. 2 discussion: UnsafeArray memcopies,
/// LocalLockArray locks then memcopies, AtomicArray stores element-wise).
template <typename T>
struct ArrayPutAm {
  static constexpr bool kBorrowsPayload = true;

  Darc<ArrayState<T>> state;
  std::uint64_t local_start = 0;
  std::span<const T> data;  ///< exec-side borrowed view

  // Send-side only: source elements src[j * src_stride] for j < count,
  // written straight from the caller's buffer (stride > 1 serves cyclic
  // strided runs without staging a contiguous copy).
  const T* src = nullptr;
  std::uint64_t count = 0;
  std::uint64_t src_stride = 1;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, local_start);
    if constexpr (Ar::is_writing) {
      if (src_stride > 1) {
        ar.template put_elems_gather<T>(
            count, [this](std::size_t j) { return src[j * src_stride]; });
      } else {
        ar.put_elems(std::span<const T>{src, count});
      }
    } else {
      data = ar.template get_elems<T>();
    }
  }

  void exec(AmContext&) {
    ArrayState<T>& st = *state;
    auto slab = st.local_slab();
    auto& params = st.world->lamellae().params();
    switch (st.mode) {
      case ArrayMode::kReadOnly:
        throw Error("put on ReadOnlyArray");
      case ArrayMode::kUnsafe:
        st.world->lamellae().charge(params.memcpy_ns(data.size() * sizeof(T)));
        std::copy(data.begin(), data.end(), slab.begin() + local_start);
        break;
      case ArrayMode::kLocalLock: {
        std::unique_lock lock(*st.local_lock);
        st.world->lamellae().charge(params.rwlock_acquire_ns +
                                    params.memcpy_ns(data.size() * sizeof(T)));
        std::copy(data.begin(), data.end(), slab.begin() + local_start);
        break;
      }
      case ArrayMode::kAtomicNative:
      case ArrayMode::kAtomicGeneric:
        st.world->lamellae().charge(
            (st.mode == ArrayMode::kAtomicNative ? params.atomic_store_ns
                                                 : params.generic_mutex_ns) *
            static_cast<double>(data.size()));
        for (std::size_t j = 0; j < data.size(); ++j) {
          array_detail::apply_one<T>(st, local_start + j, OpCode::kStore,
                                     data[j]);
        }
        break;
    }
  }
};

/// RDMA-like get of a contiguous local range.  The reply serializes
/// directly from the owner's slab where the mode permits (Unsafe/ReadOnly);
/// modes that need a guarded read stage into the scratch arena.
template <typename T>
struct ArrayGetAm {
  static constexpr bool kBorrowsPayload = true;

  Darc<ArrayState<T>> state;
  std::uint64_t local_start = 0;
  std::uint64_t len = 0;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, local_start, len);
  }

  ValSpan<T> exec(AmContext&) {
    ArrayState<T>& st = *state;
    auto slab = st.local_slab();
    if (st.mode == ArrayMode::kLocalLock) {
      auto out = ScratchArena::local().alloc_span<T>(len);
      std::shared_lock lock(*st.local_lock);
      std::copy(slab.begin() + local_start, slab.begin() + local_start + len,
                out.begin());
      return {out};
    }
    if (st.mode == ArrayMode::kAtomicNative ||
        st.mode == ArrayMode::kAtomicGeneric) {
      auto out = ScratchArena::local().alloc_span<T>(len);
      for (std::uint64_t j = 0; j < len; ++j) {
        out[j] = array_detail::apply_one<T>(st, local_start + j, OpCode::kLoad,
                                            T{});
      }
      return {out};
    }
    // Unsafe / ReadOnly: the reply is serialized straight out of the slab
    // (the Darc in this AM keeps the state alive until the reply is on the
    // wire).
    return {std::span<const T>{slab.data() + local_start, len}};
  }
};

template <typename T>
T reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return T{};
    case ReduceOp::kProd:
      return T{1};
    case ReduceOp::kMin:
      return std::numeric_limits<T>::max();
    case ReduceOp::kMax:
      return std::numeric_limits<T>::lowest();
  }
  return T{};
}

template <typename T>
T reduce_fold(ReduceOp op, T a, T b) {
  switch (op) {
    case ReduceOp::kSum:
      return a + b;
    case ReduceOp::kProd:
      return a * b;
    case ReduceOp::kMin:
      return std::min(a, b);
    case ReduceOp::kMax:
      return std::max(a, b);
  }
  return a;
}

/// Children of `rel_rank` in a binomial tree of the given subtree width:
/// rel_rank + 1, 2, 4, ... below `width`, skipping relative ranks at or
/// beyond the team size (holes in the rounded-up power-of-two span; h
/// grows, so the first hole ends the enumeration).
inline std::size_t reduce_child_count(std::uint32_t rel_rank,
                                      std::uint32_t width, std::size_t size) {
  std::size_t n = 0;
  for (std::uint32_t h = 1; h < width; h <<= 1) {
    if (rel_rank + h >= size) break;
    ++n;
  }
  return n;
}

template <typename T>
struct ReducePartialAm;
template <typename T>
struct ReduceResultAm;

namespace array_detail {

/// Fold one contribution (a child subtree's partial or the node's own
/// local partial) into the node for `id`.  Contributions may arrive before
/// the node's own start AM (the root fans every start out directly), so
/// the first value seeds `acc` and `remaining` runs negative until
/// reduce_node_init adds the expected count.  The final contribution
/// removes the node and either completes the root promise or forwards the
/// folded value one level up the tree — no task ever blocks on a child.
template <typename T>
void reduce_finish(const Darc<ArrayState<T>>& state, std::uint64_t id,
                   typename ArrayState<T>::ReduceNode&& done) {
  if (done.root) {
    if (done.bcast) {
      // Collective root: fan the combined value back down to every other
      // team member before completing locally (the receivers' promises are
      // parked in pending_results under the same id).
      ArrayState<T>& st = *state;
      const std::size_t size = st.team.size();
      for (std::uint32_t r = 1; r < size; ++r) {
        ReduceResultAm<T> out;
        out.state = state;
        out.id = id;
        out.value = done.acc;
        st.world->engine().send_forget(st.team.world_pe(r), std::move(out));
      }
    }
    done.promise.set_value(std::move(done.acc));
    return;
  }
  ArrayState<T>& st = *state;
  ReducePartialAm<T> up;
  up.state = state;
  up.id = id;
  up.op = done.op;
  up.value = done.acc;
  st.world->engine().send_forget(st.team.world_pe(done.parent_rank),
                                 std::move(up));
}

template <typename T>
void reduce_contribute(const Darc<ArrayState<T>>& state, std::uint64_t id,
                       ReduceOp op, T value) {
  ArrayState<T>& st = *state;
  typename ArrayState<T>::ReduceNode done;
  {
    std::lock_guard lock(st.reduce_coord->mu);
    auto& node = st.reduce_coord->nodes[id];
    node.op = op;
    node.acc = node.touched ? reduce_fold<T>(op, node.acc, value) : value;
    node.touched = true;
    if (--node.remaining != 0 || !node.init) return;
    done = std::move(node);
    st.reduce_coord->nodes.erase(id);
  }
  reduce_finish<T>(state, id, std::move(done));
}

/// Arm the node for `id` with its tree position: `count` expected
/// contributions (children + the local partial) and where the folded value
/// goes.  Completes the node if every contribution already arrived.
template <typename T>
void reduce_node_init(const Darc<ArrayState<T>>& state, std::uint64_t id,
                      std::int64_t count, std::uint32_t parent_rank,
                      bool root, Promise<T> promise, bool bcast = false) {
  ArrayState<T>& st = *state;
  typename ArrayState<T>::ReduceNode done;
  {
    std::lock_guard lock(st.reduce_coord->mu);
    auto& node = st.reduce_coord->nodes[id];
    node.remaining += count;
    node.parent_rank = parent_rank;
    node.root = root;
    node.bcast = bcast;
    node.promise = std::move(promise);
    node.init = true;
    if (node.remaining != 0) return;
    done = std::move(node);
    st.reduce_coord->nodes.erase(id);
  }
  reduce_finish<T>(state, id, std::move(done));
}

/// Serial owner-side reduction scan over local slots [lo, hi) — the
/// per-element cost *is* the reduction, so mode and op dispatch are hoisted
/// out of the loop.  Atomic modes read through relaxed atomic_refs
/// (tear-free; a reduction racing with updates promises only a value-level
/// snapshot, never ordering).  LocalLock holds the PE-wide shared lock for
/// the whole scan (elements are then read directly — apply_one would
/// re-acquire the same lock and self-deadlock); the remaining modes read
/// the slab directly, which vectorizes.  Shared by the one-sided tree
/// reduce (ReduceStartAm) and the distributed-iterator reduce terminal.
template <typename T>
T local_reduce_scan(ArrayState<T>& st, ReduceOp op, std::size_t lo,
                    std::size_t hi) {
  T acc = reduce_identity<T>(op);
  std::optional<std::shared_lock<std::shared_mutex>> lock;
  if (st.mode == ArrayMode::kLocalLock) lock.emplace(*st.local_lock);
  auto slab = st.local_slab();
  auto scan = [&](auto read) {
    switch (op) {
      case ReduceOp::kSum:
        for (std::size_t i = lo; i < hi; ++i) acc = acc + read(i);
        break;
      case ReduceOp::kProd:
        for (std::size_t i = lo; i < hi; ++i) acc = acc * read(i);
        break;
      case ReduceOp::kMin:
        for (std::size_t i = lo; i < hi; ++i) acc = std::min(acc, read(i));
        break;
      case ReduceOp::kMax:
        for (std::size_t i = lo; i < hi; ++i) acc = std::max(acc, read(i));
        break;
    }
  };
  if (st.mode == ArrayMode::kAtomicNative ||
      st.mode == ArrayMode::kAtomicGeneric) {
    if constexpr (kNativeAtomicCapable<T>) {
      scan([&](std::size_t i) {
        return std::atomic_ref<T>(slab[i]).load(std::memory_order_relaxed);
      });
    } else {
      // Generic-atomic over a type whose plain loads could tear: take the
      // per-element byte lock.
      scan([&](std::size_t i) {
        return apply_one<T>(st, i, OpCode::kLoad, T{});
      });
    }
  } else {
    scan([&](std::size_t i) { return slab[i]; });
  }
  return acc;
}

}  // namespace array_detail

/// One node of an asynchronous binomial combining tree over the team
/// (root = the caller's rank).  The root fans a start AM out to every PE
/// at once — a node's position is implied by its relative rank (subtree
/// width = lowest set bit, parent = rel_rank minus that bit) — so all
/// owner-side scans enqueue in one wave instead of cascading down the
/// tree.  Each node arms its fold state, computes the local partial over
/// its view slots, and *returns*; partials flow up as ReducePartialAm and
/// the last contribution forwards the combined value.  Nothing blocks, so
/// the tree costs one task per PE instead of size-1 spinning waits.
template <typename T>
struct ReduceStartAm {
  Darc<ArrayState<T>> state;
  ReduceOp op = ReduceOp::kSum;
  std::uint64_t view_start = 0;
  std::uint64_t view_len = 0;
  std::uint32_t rel_rank = 0;   ///< rank relative to the tree root
  std::uint32_t width = 1;      ///< subtree width (power of two)
  std::uint32_t root_rank = 0;  ///< team rank of the tree root
  std::uint64_t id = 0;         ///< tree id in the root's sequence space

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, op, view_start, view_len, rel_rank, width, root_rank, id);
  }

  void exec(AmContext&) {
    ArrayState<T>& st = *state;
    const std::size_t size = st.team.size();

    // Arm the fold state before the scan (the root's node, carrying the
    // caller's promise, was armed by reduce() itself).
    if (rel_rank != 0) {
      const auto nkids = static_cast<std::int64_t>(
          reduce_child_count(rel_rank, width, size));
      const std::uint32_t parent_rel = rel_rank - (rel_rank & (~rel_rank + 1));
      const auto parent =
          static_cast<std::uint32_t>((root_rank + parent_rel) % size);
      array_detail::reduce_node_init<T>(state, id, nkids + 1, parent, false,
                                        Promise<T>{});
    }

    const auto [lo, hi] = st.local_view_range(view_start, view_len);
    const T acc = array_detail::local_reduce_scan<T>(st, op, lo, hi);
    array_detail::reduce_contribute<T>(state, id, op, acc);
  }
};

/// A subtree's folded partial travelling one level up the combining tree.
/// Executes inline during inbox dispatch (kRuntimeInternal): the fold is a
/// short critical section + at most one forwarded record, and skipping the
/// task round-trip keeps the up-tree tail latency at one hop per level.
template <typename T>
struct ReducePartialAm {
  static constexpr bool kRuntimeInternal = true;

  Darc<ArrayState<T>> state;
  std::uint64_t id = 0;
  ReduceOp op = ReduceOp::kSum;
  T value{};

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, id, op, value);
  }

  void exec(AmContext&) {
    array_detail::reduce_contribute<T>(state, id, op, value);
  }
};

/// The root's combined value of a *collective* reduction travelling back
/// down to one team member: pops the promise this PE parked under the
/// collective id and completes it.  Inline (kRuntimeInternal) — a map
/// erase and a promise fulfilment.
template <typename T>
struct ReduceResultAm {
  static constexpr bool kRuntimeInternal = true;

  Darc<ArrayState<T>> state;
  std::uint64_t id = 0;
  T value{};

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, id, value);
  }

  void exec(AmContext&) {
    ArrayState<T>& st = *state;
    Promise<T> promise;
    {
      std::lock_guard lock(st.reduce_coord->mu);
      auto it = st.reduce_coord->pending_results.find(id);
      if (it == st.reduce_coord->pending_results.end()) {
        throw Error("collective reduce result with no parked promise");
      }
      promise = std::move(it->second);
      st.reduce_coord->pending_results.erase(it);
    }
    promise.set_value(std::move(value));
  }
};

namespace array_detail {

/// Launch an asynchronous binomial-combining-tree reduction over the view,
/// rooted at the calling PE, completing `promise` with the combined value.
/// The root arms its own fold node, then fans a start AM out to every PE in
/// one wave (each node's tree position is implied by its relative rank);
/// owner-side partials fold up the tree as ReducePartialAm messages, so no
/// task ever blocks on a child and no single hot root absorbs size-1
/// partials under a mutex.  Shared by ArrayBase::reduce and the lazy
/// chain's reduce terminal (the tree starts from whatever context observes
/// the chain's last chunk completion).
template <typename T>
void start_tree_reduce(const Darc<ArrayState<T>>& state,
                       std::size_t view_start, std::size_t view_len,
                       ReduceOp op, Promise<T> promise) {
  ArrayState<T>& st = *state;
  const std::size_t size = st.team.size();
  std::uint32_t width = 1;
  while (width < size) width <<= 1;
  const auto root = static_cast<std::uint32_t>(st.my_rank());

  std::uint64_t id;
  {
    std::lock_guard lock(st.reduce_coord->mu);
    id = (static_cast<std::uint64_t>(root) << 40) |
         st.reduce_coord->next_seq++;
  }
  const auto nkids =
      static_cast<std::int64_t>(reduce_child_count(0, width, size));
  reduce_node_init<T>(state, id, nkids + 1, root, true, std::move(promise));

  for (std::uint32_t r = 0; r < size; ++r) {
    ReduceStartAm<T> am;
    am.state = state;
    am.op = op;
    am.view_start = view_start;
    am.view_len = view_len;
    am.rel_rank = r;
    am.width = r == 0 ? width : r & (~r + 1);
    am.root_rank = root;
    am.id = id;
    const std::size_t abs = (root + r) % size;
    st.world->engine().send_forget(st.team.world_pe(abs), std::move(am));
  }
}

/// Collective combine of per-PE partials (the distributed-iterator reduce
/// terminal): every team member calls with its local partial, and every
/// member's future resolves to the team-wide combined value.  The tree is
/// rooted at team rank 0; ids come from a per-state collective counter
/// (same on every PE because collectives execute in team order, the same
/// ordering contract as barriers), so no start fan-out is needed at all —
/// each PE knows its position and contributes directly, and the root
/// broadcasts the result back down as ReduceResultAm.
template <typename T>
Future<T> collective_combine(const Darc<ArrayState<T>>& state, ReduceOp op,
                             T partial) {
  ArrayState<T>& st = *state;
  const std::size_t size = st.team.size();
  const auto rel = static_cast<std::uint32_t>(st.my_rank());
  std::uint32_t width = 1;
  while (width < size) width <<= 1;
  const std::uint32_t my_width = rel == 0 ? width : rel & (~rel + 1);

  Promise<T> promise;
  auto fut = promise.future();
  std::uint64_t id;
  {
    std::lock_guard lock(st.reduce_coord->mu);
    id = kCollectiveReduceId | st.reduce_coord->next_collective++;
    // Park the result promise before contributing: the root's broadcast
    // can only fire after this PE's partial reached it, but registering
    // first keeps the ordering obvious.
    if (rel != 0) st.reduce_coord->pending_results.emplace(id, promise);
  }
  const auto nkids =
      static_cast<std::int64_t>(reduce_child_count(rel, my_width, size));
  if (rel == 0) {
    reduce_node_init<T>(state, id, nkids + 1, 0, /*root=*/true,
                        std::move(promise), /*bcast=*/true);
  } else {
    reduce_node_init<T>(state, id, nkids + 1, rel - my_width, /*root=*/false,
                        Promise<T>{});
  }
  reduce_contribute<T>(state, id, op, std::move(partial));
  return fut;
}

}  // namespace array_detail

/// Collective fill helper.
template <typename T>
struct ArrayFillAm {
  Darc<ArrayState<T>> state;
  T value{};

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, value);
  }

  void exec(AmContext&) {
    ArrayState<T>& st = *state;
    const std::size_t n = st.map.local_len(st.my_rank());
    // Direct writes under the PE-wide lock (apply_one would re-lock it).
    std::optional<std::unique_lock<std::shared_mutex>> lock;
    if (st.mode == ArrayMode::kLocalLock) lock.emplace(*st.local_lock);
    for (std::size_t i = 0; i < n; ++i) {
      if (st.mode == ArrayMode::kAtomicNative ||
          st.mode == ArrayMode::kAtomicGeneric) {
        array_detail::apply_one<T>(st, i, OpCode::kStore, value);
      } else {
        st.local_slab()[i] = value;
      }
    }
  }
};

}  // namespace lamellar

/// Instantiate + register the array AM family for one element type.
#define LAMELLAR_REGISTER_ARRAY_ELEMENT(T)              \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayOpAm<T>);       \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayCexAm<T>);      \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayFusedAm<T>);    \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayPutAm<T>);      \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayGetAm<T>);      \
  LAMELLAR_REGISTER_AM(::lamellar::ReduceStartAm<T>);   \
  LAMELLAR_REGISTER_AM(::lamellar::ReducePartialAm<T>); \
  LAMELLAR_REGISTER_AM(::lamellar::ReduceResultAm<T>);  \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayFillAm<T>)
