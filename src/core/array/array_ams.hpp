// Internal active messages implementing LamellarArray remote operations.
//
// Safe array types "utilize AMs to emulate the behavior of direct RDMA
// operations, so all access to a remote PE's data is actually managed on
// that PE" (paper Sec. III-F2).  Each AM carries the array's Darc (so the
// state is guaranteed alive), pre-translated local indices, and the operands;
// the owner applies the batch under its type's safety regime and replies
// with fetch results.
//
// AMs are templates over the element type; LAMELLAR_REGISTER_ARRAY_ELEMENT
// instantiates and registers the full set for one element type (the standard
// numeric types are pre-registered in array_base.cpp).
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "core/am/am_engine.hpp"
#include "core/array/array_state.hpp"

namespace lamellar {

template <typename T>
struct ArrayOpAm {
  Darc<ArrayState<T>> state;
  OpCode op = OpCode::kAdd;
  std::uint8_t fetch = 0;
  PairMode pair = PairMode::kOneToOne;
  std::vector<std::uint64_t> locals;
  std::vector<T> vals;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, op, fetch, pair, locals, vals);
  }

  std::vector<T> exec(AmContext&) {
    return array_detail::apply_batch<T>(*state, op, fetch != 0, pair, locals,
                                        vals);
  }
};

template <typename T>
struct ArrayCexAm {
  Darc<ArrayState<T>> state;
  std::vector<std::uint64_t> locals;
  T expected{};
  std::vector<T> desired;  ///< one per index, or a single shared value

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, locals, expected, desired);
  }

  std::vector<CexResult<T>> exec(AmContext&) {
    std::vector<CexResult<T>> out;
    out.reserve(locals.size());
    for (std::size_t j = 0; j < locals.size(); ++j) {
      const T want = desired.size() == 1 ? desired[0] : desired[j];
      out.push_back(array_detail::apply_cex<T>(*state, locals[j], expected,
                                               want));
    }
    return out;
  }
};

/// RDMA-like put of a contiguous local range, applied under the owner's
/// safety regime (paper Fig. 2 discussion: UnsafeArray memcopies,
/// LocalLockArray locks then memcopies, AtomicArray stores element-wise).
template <typename T>
struct ArrayPutAm {
  Darc<ArrayState<T>> state;
  std::uint64_t local_start = 0;
  std::vector<T> data;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, local_start, data);
  }

  void exec(AmContext&) {
    ArrayState<T>& st = *state;
    auto slab = st.local_slab();
    auto& params = st.world->lamellae().params();
    switch (st.mode) {
      case ArrayMode::kReadOnly:
        throw Error("put on ReadOnlyArray");
      case ArrayMode::kUnsafe:
        st.world->lamellae().charge(params.memcpy_ns(data.size() * sizeof(T)));
        std::copy(data.begin(), data.end(), slab.begin() + local_start);
        break;
      case ArrayMode::kLocalLock: {
        std::unique_lock lock(*st.local_lock);
        st.world->lamellae().charge(params.rwlock_acquire_ns +
                                    params.memcpy_ns(data.size() * sizeof(T)));
        std::copy(data.begin(), data.end(), slab.begin() + local_start);
        break;
      }
      case ArrayMode::kAtomicNative:
      case ArrayMode::kAtomicGeneric:
        st.world->lamellae().charge(
            (st.mode == ArrayMode::kAtomicNative ? params.atomic_store_ns
                                                 : params.generic_mutex_ns) *
            static_cast<double>(data.size()));
        for (std::size_t j = 0; j < data.size(); ++j) {
          array_detail::apply_one<T>(st, local_start + j, OpCode::kStore,
                                     data[j]);
        }
        break;
    }
  }
};

/// RDMA-like get of a contiguous local range.
template <typename T>
struct ArrayGetAm {
  Darc<ArrayState<T>> state;
  std::uint64_t local_start = 0;
  std::uint64_t len = 0;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, local_start, len);
  }

  std::vector<T> exec(AmContext&) {
    ArrayState<T>& st = *state;
    auto slab = st.local_slab();
    std::vector<T> out;
    out.reserve(len);
    if (st.mode == ArrayMode::kLocalLock) {
      std::shared_lock lock(*st.local_lock);
      out.assign(slab.begin() + local_start,
                 slab.begin() + local_start + len);
      return out;
    }
    if (st.mode == ArrayMode::kAtomicNative ||
        st.mode == ArrayMode::kAtomicGeneric) {
      for (std::uint64_t j = 0; j < len; ++j) {
        out.push_back(array_detail::apply_one<T>(st, local_start + j,
                                                 OpCode::kLoad, T{}));
      }
      return out;
    }
    out.assign(slab.begin() + local_start, slab.begin() + local_start + len);
    return out;
  }
};

enum class ReduceOp : std::uint8_t { kSum, kProd, kMin, kMax };

/// Owner-side partial reduction over the view's local slots.
template <typename T>
struct ArrayReduceAm {
  Darc<ArrayState<T>> state;
  ReduceOp op = ReduceOp::kSum;
  std::uint64_t view_start = 0;
  std::uint64_t view_len = 0;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, op, view_start, view_len);
  }

  T exec(AmContext&) {
    ArrayState<T>& st = *state;
    const auto [lo, hi] = st.local_view_range(view_start, view_len);
    // With the PE-wide lock held (LocalLock mode), elements are read
    // directly: apply_one would re-acquire the same lock and self-deadlock.
    std::optional<std::shared_lock<std::shared_mutex>> lock;
    if (st.mode == ArrayMode::kLocalLock) lock.emplace(*st.local_lock);
    auto read = [&](std::size_t i) {
      if (st.mode == ArrayMode::kAtomicNative ||
          st.mode == ArrayMode::kAtomicGeneric) {
        return array_detail::apply_one<T>(st, i, OpCode::kLoad, T{});
      }
      return st.local_slab()[i];
    };
    if (hi == lo) {
      switch (op) {
        case ReduceOp::kSum:
          return T{};
        case ReduceOp::kProd:
          return T{1};
        case ReduceOp::kMin:
          return std::numeric_limits<T>::max();
        case ReduceOp::kMax:
          return std::numeric_limits<T>::lowest();
      }
      return T{};
    }
    T acc = read(lo);
    for (std::size_t i = lo + 1; i < hi; ++i) {
      const T v = read(i);
      switch (op) {
        case ReduceOp::kSum:
          acc = acc + v;
          break;
        case ReduceOp::kProd:
          acc = acc * v;
          break;
        case ReduceOp::kMin:
          acc = std::min(acc, v);
          break;
        case ReduceOp::kMax:
          acc = std::max(acc, v);
          break;
      }
    }
    return acc;
  }
};

/// Collective fill helper.
template <typename T>
struct ArrayFillAm {
  Darc<ArrayState<T>> state;
  T value{};

  template <class Ar>
  void serialize(Ar& ar) {
    ar(state, value);
  }

  void exec(AmContext&) {
    ArrayState<T>& st = *state;
    const std::size_t n = st.map.local_len(st.my_rank());
    // Direct writes under the PE-wide lock (apply_one would re-lock it).
    std::optional<std::unique_lock<std::shared_mutex>> lock;
    if (st.mode == ArrayMode::kLocalLock) lock.emplace(*st.local_lock);
    for (std::size_t i = 0; i < n; ++i) {
      if (st.mode == ArrayMode::kAtomicNative ||
          st.mode == ArrayMode::kAtomicGeneric) {
        array_detail::apply_one<T>(st, i, OpCode::kStore, value);
      } else {
        st.local_slab()[i] = value;
      }
    }
  }
};

}  // namespace lamellar

/// Instantiate + register the array AM family for one element type.
#define LAMELLAR_REGISTER_ARRAY_ELEMENT(T)              \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayOpAm<T>);       \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayCexAm<T>);      \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayPutAm<T>);      \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayGetAm<T>);      \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayReduceAm<T>);   \
  LAMELLAR_REGISTER_AM(::lamellar::ArrayFillAm<T>)
