// Data distributions for LamellarArrays (paper Sec. III-F): Block or Cyclic
// layouts over the PEs of a team, with 0-based global indexing and
// runtime-computed owner/offset math (unlike raw memory regions, which make
// the user compute PE-specific offsets).
#pragma once

#include <algorithm>

#include "common/error.hpp"
#include "common/types.hpp"

namespace lamellar {

enum class Distribution : std::uint8_t {
  kBlock,   ///< contiguous chunks of ceil(len/npes) elements per PE
  kCyclic,  ///< element i lives on PE (i % npes)
};

struct Placement {
  std::size_t rank;         ///< owning team rank
  std::size_t local_index;  ///< index within the owner's slab
};

class DistributionMap {
 public:
  DistributionMap() = default;
  DistributionMap(Distribution dist, global_index global_len,
                  std::size_t num_ranks)
      : dist_(dist),
        global_len_(global_len),
        num_ranks_(num_ranks),
        per_rank_(num_ranks == 0 ? 0 : ceil_div(global_len, num_ranks)) {}

  [[nodiscard]] Distribution dist() const { return dist_; }
  [[nodiscard]] global_index global_len() const { return global_len_; }
  [[nodiscard]] std::size_t num_ranks() const { return num_ranks_; }

  /// Slab capacity allocated on every rank (the last block rank may use
  /// fewer elements).
  [[nodiscard]] std::size_t per_rank_capacity() const { return per_rank_; }

  /// Number of elements actually resident on `rank`.
  [[nodiscard]] std::size_t local_len(std::size_t rank) const {
    if (global_len_ == 0) return 0;
    if (dist_ == Distribution::kBlock) {
      const global_index start = rank * per_rank_;
      if (start >= global_len_) return 0;
      return std::min(per_rank_, global_len_ - start);
    }
    // Cyclic: ranks < (len % n) get one extra.
    const std::size_t base = global_len_ / num_ranks_;
    const std::size_t extra = rank < (global_len_ % num_ranks_) ? 1 : 0;
    return base + extra;
  }

  /// Owner rank and local slot of global index `i`.
  [[nodiscard]] Placement place(global_index i) const {
    if (i >= global_len_) throw_bounds("array index", i, global_len_);
    if (dist_ == Distribution::kBlock) {
      return {static_cast<std::size_t>(i / per_rank_), i % per_rank_};
    }
    return {static_cast<std::size_t>(i % num_ranks_), i / num_ranks_};
  }

  /// Global index of (rank, local slot) — the inverse of place().
  [[nodiscard]] global_index global_of(std::size_t rank,
                                       std::size_t local) const {
    if (dist_ == Distribution::kBlock) {
      return rank * per_rank_ + local;
    }
    return local * num_ranks_ + rank;
  }

 private:
  Distribution dist_ = Distribution::kBlock;
  global_index global_len_ = 0;
  std::size_t num_ranks_ = 1;
  std::size_t per_rank_ = 0;
};

}  // namespace lamellar
