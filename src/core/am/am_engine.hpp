// The per-PE active-message engine (paper Sec. III-C).
//
// Responsibilities:
//  * typed, asynchronous AM launches (`exec_am_pe` / `exec_am_all` surface
//    on World delegates here), returning futures;
//  * serialization of AM payloads and aggregation of small records into
//    per-destination buffers (OutgoingQueues, the double-buffered command
//    queue of Sec. III-A1);
//  * receive-side dispatch: buffers are parsed and each AM record becomes an
//    asynchronous task on the PE's work-stealing pool;
//  * request/reply tracking so every launch can be awaited, and the
//    launched/completed counters behind wait_all();
//  * local bypass: AMs addressed to the local PE skip serialization
//    entirely (the behaviour the paper attributes to the SMP lamellae and
//    to local execution in exec_am_*).
#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/serialize.hpp"
#include "common/unique_function.hpp"
#include "core/am/am_context.hpp"
#include "core/am/am_registry.hpp"
#include "core/am/wire.hpp"
#include "core/control/controller.hpp"
#include "core/scheduler/future.hpp"
#include "core/scheduler/thread_pool.hpp"
#include "fabric/topology.hpp"
#include "lamellae/cmd_queue.hpp"
#include "lamellae/lamellae.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lamellar {

namespace detail {

template <typename Am>
using am_exec_result_t =
    decltype(std::declval<Am&>().exec(std::declval<AmContext&>()));

}  // namespace detail

/// The result type of awaiting an AM of type `Am`: its exec() return type,
/// or Unit when exec() returns void.
template <typename Am>
using am_return_t =
    std::conditional_t<std::is_void_v<detail::am_exec_result_t<Am>>, Unit,
                       detail::am_exec_result_t<Am>>;

/// Requirements on user AM types: serializable, default-constructible (for
/// deserialization), with an exec(AmContext&) member.  The analogue of the
/// paper's `#[AmData]` trait bounds (serde + Send + Sync).
template <typename T>
concept ActiveMessageType =
    Serializable<T> && std::is_default_constructible_v<T> &&
    requires(T t, AmContext& ctx) { t.exec(ctx); };

/// Marker: AM types declaring `static constexpr bool kBorrowsPayload =
/// true` deserialize members as borrowed spans of the inbox buffer and/or
/// return arena-backed span results.  For such types the runtime (a) keeps
/// the inbox buffer alive (InboxHold) until the deferred execution task has
/// run, and (b) wraps exec + reply serialization in an ArenaFrame so
/// arena-staged results are reclaimed once the reply is on the wire.
template <typename T>
concept BorrowingAm = requires { T::kBorrowsPayload; };

/// Marker: AM types declaring `static constexpr bool kRuntimeInternal =
/// true` execute inline during inbox dispatch instead of as pool tasks.
/// The Darc lifetime protocol requires per-channel FIFO processing of its
/// control messages (drop/revive/ack/check); inline execution preserves the
/// fabric's per-inbox ordering, whereas independent tasks could reorder.
/// For the same reason such AMs (and their replies) are never 2-hop
/// relayed: relaying would interleave two paths to the same destination.
template <typename T>
concept InlineAm = requires { T::kRuntimeInternal; };

class AmEngine {
 public:
  AmEngine(Lamellae& lamellae, ThreadPool& pool, const RuntimeConfig& cfg,
           obs::TraceCollector* tracer = nullptr);

  void bind_world(World* w) { world_ = w; }
  [[nodiscard]] World* world() const { return world_; }

  [[nodiscard]] pe_id my_pe() const { return lamellae_.my_pe(); }
  [[nodiscard]] std::size_t num_pes() const { return lamellae_.num_pes(); }

  // ---- typed sends ----

  /// Launch `am` on `dst`; the future completes with exec()'s result.
  template <ActiveMessageType Am>
  Future<am_return_t<Am>> send(pe_id dst, Am am) {
    using R = am_return_t<Am>;
    Promise<R> promise;
    send_cb(dst, std::move(am),
            [promise](R r) mutable { promise.set_value(std::move(r)); });
    return promise.future();
  }

  /// Launch a copy of `am` on every PE in id order; the future completes
  /// with all results indexed by PE.
  template <ActiveMessageType Am>
  Future<std::vector<am_return_t<Am>>> send_all(const Am& am) {
    using R = am_return_t<Am>;
    struct Gather {
      std::mutex mu;
      std::vector<R> results;
      std::size_t remaining;
      Promise<std::vector<R>> promise;
    };
    auto g = std::make_shared<Gather>();
    g->results.resize(num_pes());
    g->remaining = num_pes();
    for (pe_id pe = 0; pe < num_pes(); ++pe) {
      send_cb(pe, Am(am), [g, pe](R r) {
        std::unique_lock lock(g->mu);
        g->results[pe] = std::move(r);
        if (--g->remaining == 0) {
          auto out = std::move(g->results);
          lock.unlock();
          g->promise.set_value(std::move(out));
        }
      });
    }
    return g->promise.future();
  }

  /// Core send: invoke `on_result` with exec()'s result once the AM has
  /// completed (possibly remotely).  `on_result` runs on a runtime thread.
  ///
  /// Counter increments are relaxed: only the values matter (outstanding()
  /// pairs its acquire loads with the release operations of the futures /
  /// fabric that publish the results themselves).
  template <ActiveMessageType Am, typename Fn>
  void send_cb(pe_id dst, Am am, Fn on_result) {
    using R = am_return_t<Am>;
    admit();
    launched_.fetch_add(1, std::memory_order_relaxed);
    if (dst == my_pe()) {
      // Local bypass: execute as a pool task without serialization.
      am_sent_local_->inc();
      lamellae_.charge(lamellae_.params().task_spawn_ns);
      pool_.spawn([this, am = std::move(am), cb = std::move(on_result),
                   src = my_pe()]() mutable {
        ScopedWorld scope(world_);
        AmContext ctx(*world_, src);
        if constexpr (BorrowingAm<Am>) {
          // The result may point into the thread's scratch arena; the
          // callback must consume it before this frame rewinds.  (Span
          // *payloads* cannot take this path — there was no buffer to
          // borrow from — so dispatchers apply local chunks directly.)
          ArenaFrame frame;
          cb(invoke_exec<Am>(am, ctx));
        } else {
          cb(invoke_exec<Am>(am, ctx));
        }
        am_executed_->inc();
        completed_.fetch_add(1, std::memory_order_relaxed);
      });
      return;
    }

    const request_id rid =
        next_request_id_.fetch_add(1, std::memory_order_relaxed);
    am_sent_remote_->inc();
    const sim_nanos sent_at = lamellae_.clock().now();
    // Causal trace sampling: one in every trace_sample_ request ids carries
    // a 16-byte wire extension and opens a span that the reply closes
    // (spans_opened == spans_closed at quiesce).  Only replied-to sends are
    // sampled — a fire-and-forget span would never close.
    std::uint64_t span = 0;
    if (trace_sample_ != 0 && rid % trace_sample_ == 0) {
      span = make_trace_span(my_pe(), rid);
      spans_opened_->inc();
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->record({"am_send", "am", my_pe(), sent_at, 0, 's', rid, span});
      }
    }
    register_completer(
        rid, [this, sent_at, cb = std::move(on_result)](Deserializer& de) mutable {
          const sim_nanos now = lamellae_.clock().now();
          reply_latency_ns_->record(now >= sent_at ? now - sent_at : 0);
          R r{};
          de.get(r);
          cb(std::move(r));
          completed_.fetch_add(1, std::memory_order_relaxed);
        });
    write_record_inplace(dst, AmTypeId<Am>::id, kWantsReply, rid, am, span,
                         /*allow_relay=*/!InlineAm<Am>);
  }

  /// Fire-and-forget: launch `am` on `dst` with no reply record, no
  /// completer, and no entry in this PE's launched/completed accounting —
  /// wait_all() does not cover it.  For runtime protocols (e.g. the reduce
  /// combining tree) whose own completion message proves every prior hop
  /// has landed.  Local sends fall back to send_cb (the bypass never
  /// replies anyway, and the spawned task should count as local work).
  template <ActiveMessageType Am>
  void send_forget(pe_id dst, Am am) {
    if (dst == my_pe()) {
      send_cb(dst, std::move(am), [](am_return_t<Am>) {});
      return;
    }
    am_sent_remote_->inc();
    const request_id rid =
        next_request_id_.fetch_add(1, std::memory_order_relaxed);
    write_record_inplace(dst, AmTypeId<Am>::id, 0, rid, am, 0,
                         /*allow_relay=*/!InlineAm<Am>);
  }

  /// Send a reply for request `rid` back to `dst` (used by executors).
  /// A non-zero `trace_span` (propagated from a sampled request's envelope)
  /// marks the reply traced; its wire ts is the reply-inject time, from
  /// which the origin computes the reply->complete stage.  Replies to
  /// runtime-internal (FIFO-ordered) AMs pass `allow_relay = false`.
  template <typename R>
  void send_reply(pe_id dst, request_id rid, const R& value,
                  std::uint64_t trace_span = 0, bool allow_relay = true) {
    replies_sent_->inc();
    write_record_inplace(dst, kReplyType, 0, rid, value, trace_span,
                         allow_relay);
  }

  // ---- progress / waiting ----

  /// Drain the fabric inbox, dispatching AM records and completing replies.
  /// Returns true if any message was processed.
  bool poll_inbox();

  /// Idle progress: poll, and flush residual aggregation buffers when the
  /// pool has no runnable work.
  void progress();

  /// Flush all partially filled aggregation buffers.
  void flush();

  /// Block (helping) until every AM launched by this PE has completed.
  void wait_all();

  /// Block (helping) until `f` is ready; returns its value.
  template <typename T>
  T block_on(Future<T> f) {
    flush();
    while (!f.ready()) {
      if (!pool_.try_run_one()) {
        const bool polled = poll_inbox();
        // Tasks executed while helping (nested AMs, replies) stage records
        // below the flush threshold; the pool looks busy while this task is
        // blocked, so the idle-flush path cannot fire — flush here.
        if (outgoing_.has_pending()) flush();
        // Oversubscribed hosts (thousands of PE threads on few cores) need
        // idle waiters off the core so the PEs with work can run.
        if (!polled) std::this_thread::yield();
      }
    }
    return f.get();
  }

  [[nodiscard]] std::uint64_t outstanding() const {
    return launched_.load(std::memory_order_acquire) -
           completed_.load(std::memory_order_acquire);
  }

  Lamellae& lamellae() { return lamellae_; }
  ThreadPool& pool() { return pool_; }
  OutgoingQueues& outgoing() { return outgoing_; }
  [[nodiscard]] const RuntimeConfig& config() const { return cfg_; }
  obs::TraceCollector* tracer() { return tracer_; }

  /// The adaptive control loop, or null when LAMELLAR_ADAPT=off.
  [[nodiscard]] control::ControlLoop* control_loop() { return ctl_.get(); }

  /// Effective admission window (0 = admission disabled).
  [[nodiscard]] std::uint64_t admit_window() const { return admit_window_; }

  /// Called by AmExecutor when a remotely launched AM finishes exec().
  void note_am_executed() { am_executed_->inc(); }

  /// Called by AmExecutor around exec() of a trace-sampled AM: records the
  /// exec-stage latency histogram and emits the exec slice + flow step.
  void note_traced_exec(std::uint64_t span, sim_nanos start, sim_nanos end) {
    const sim_nanos dur = end >= start ? end - start : 0;
    stage_exec_ns_->record(static_cast<std::uint64_t>(dur));
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->record({"am_exec", "am", my_pe(), start, dur, 'X',
                       static_cast<std::uint64_t>(dur)});
      tracer_->record({"am_exec", "am", my_pe(), end, 0, 't',
                       static_cast<std::uint64_t>(dur), span});
    }
  }

  /// Invoke exec() mapping void to Unit.
  template <typename Am>
  static am_return_t<Am> invoke_exec(Am& am, AmContext& ctx) {
    if constexpr (std::is_void_v<detail::am_exec_result_t<Am>>) {
      am.exec(ctx);
      return Unit{};
    } else {
      return am.exec(ctx);
    }
  }

 private:
  using Completer = UniqueFunction<void(Deserializer&)>;

  /// Serialize one record (header + payload) directly into the destination
  /// lane's active aggregation buffer under the lane lock — the single byte
  /// copy a steady-state remote AM performs.  The payload length is patched
  /// into the header after serialization; records at or above the
  /// aggregation threshold leave immediately (large-record bypass).
  ///
  /// A non-zero `trace_span` adds the 16-byte wire trace extension.  For
  /// requests the ts field is registered with the lane so it is patched
  /// with the buffer's departure time; replies keep their inject time (the
  /// value written here), per the wire.hpp contract.
  ///
  /// Under 2-hop routing (DESIGN.md §12) a small record whose RouteGrid
  /// relay differs from `dst` is serialized inside a kForwardType wrapper
  /// addressed to the relay instead; `allow_relay = false` (FIFO-ordered
  /// runtime-internal traffic) forces the direct path.  Records at or above
  /// `route_cutoff_` escape back to the direct lane after serialization —
  /// relaying them would double large payloads on the wire for no
  /// aggregation benefit.
  template <typename T>
  void write_record_inplace(pe_id dst, am_type_id type, std::uint32_t flags,
                            request_id rid, const T& value,
                            std::uint64_t trace_span = 0,
                            bool allow_relay = true) {
    // Controller tick gate on the send path: under saturation the workers
    // never go idle, so the idle-progress hook alone would starve the
    // control loop.  Must run before any lane lock is taken (the tick's
    // age flush acquires lane locks).  The gate itself is one relaxed
    // fetch_add; mono_now is read one send in 512.
    if (ctl_ != nullptr &&
        (tick_gate_.fetch_add(1, std::memory_order_relaxed) & 511u) == 0) {
      ctl_->maybe_tick();
    }
    const auto progress = [this] { poll_inbox(); };
    if (trace_span != 0) flags |= kTraced;
    const pe_id hop =
        (route_2hop_ && allow_relay) ? grid_.relay(my_pe(), dst) : dst;
    if (hop == dst) {
      auto w = outgoing_.begin_record(dst);
      ByteBuffer& rec = w.buffer();
      const std::size_t start = w.record_start();
      rec.write_pod<std::uint32_t>(type);
      rec.write_pod<std::uint32_t>(flags);
      rec.write_pod<std::uint64_t>(rid);
      rec.write_pod<std::uint64_t>(0);  // payload length, patched below
      std::size_t ext_bytes = 0;
      if (trace_span != 0) {
        rec.write_pod<std::uint64_t>(trace_span);
        rec.write_pod<std::uint64_t>(
            static_cast<std::uint64_t>(lamellae_.clock().now()));
        ext_bytes = kTraceExtBytes;
        if (type != kReplyType) {
          w.note_trace(trace_span,
                       start + kRecordHeaderBytes + sizeof(std::uint64_t));
        }
      }
      {
        Serializer ser(rec);
        ScopedWorld scope(world_);
        ser.put(value);
      }
      const std::size_t record_bytes = rec.size() - start;
      rec.patch_pod<std::uint64_t>(
          start + kRecordHeaderBytes - sizeof(std::uint64_t),
          record_bytes - kRecordHeaderBytes - ext_bytes);
      bytes_copied_->inc(record_bytes);
      charge_serialize(record_bytes);
      outgoing_.commit_record(w, progress);
      return;
    }
    // Routed: serialize a complete inner record inside a forward wrapper on
    // the relay's lane.  The cutoff decision needs the serialized size, so
    // the record is built optimistically in place and pulled back out on the
    // rare large-record escape.
    auto w = outgoing_.begin_record(hop);
    ByteBuffer& rec = w.buffer();
    const std::size_t start = w.record_start();
    rec.write_pod<std::uint32_t>(kForwardType);
    rec.write_pod<std::uint32_t>(0);
    rec.write_pod<std::uint64_t>(0);
    rec.write_pod<std::uint64_t>(0);  // wrapper payload len, patched below
    rec.write_pod<std::uint32_t>(static_cast<std::uint32_t>(dst));
    rec.write_pod<std::uint32_t>(static_cast<std::uint32_t>(my_pe()));
    const std::size_t inner_start = rec.size();
    rec.write_pod<std::uint32_t>(type);
    rec.write_pod<std::uint32_t>(flags);
    rec.write_pod<std::uint64_t>(rid);
    rec.write_pod<std::uint64_t>(0);  // inner payload len, patched below
    std::size_t ext_bytes = 0;
    if (trace_span != 0) {
      rec.write_pod<std::uint64_t>(trace_span);
      rec.write_pod<std::uint64_t>(
          static_cast<std::uint64_t>(lamellae_.clock().now()));
      ext_bytes = kTraceExtBytes;
    }
    {
      Serializer ser(rec);
      ScopedWorld scope(world_);
      ser.put(value);
    }
    const std::size_t inner_bytes = rec.size() - inner_start;
    rec.patch_pod<std::uint64_t>(
        inner_start + kRecordHeaderBytes - sizeof(std::uint64_t),
        inner_bytes - kRecordHeaderBytes - ext_bytes);
    if (inner_bytes >= route_cutoff_) {
      // Escape hatch: move the finished inner record onto the direct lane.
      std::vector<std::byte> tmp(inner_bytes);
      std::memcpy(tmp.data(), rec.as_span().data() + inner_start, inner_bytes);
      rec.truncate(start);
      outgoing_.commit_record(w, progress);  // zero-byte; may release storage
      auto w2 = outgoing_.begin_record(dst);
      const std::size_t start2 = w2.record_start();
      w2.buffer().write(tmp.data(), tmp.size());
      if (trace_span != 0 && type != kReplyType) {
        w2.note_trace(trace_span,
                      start2 + kRecordHeaderBytes + sizeof(std::uint64_t));
      }
      bytes_copied_->inc(tmp.size());
      charge_serialize(tmp.size());
      outgoing_.commit_record(w2, progress);
      return;
    }
    rec.patch_pod<std::uint64_t>(
        start + kRecordHeaderBytes - sizeof(std::uint64_t),
        rec.size() - start - kRecordHeaderBytes);
    if (trace_span != 0 && type != kReplyType) {
      w.note_trace(trace_span,
                   inner_start + kRecordHeaderBytes + sizeof(std::uint64_t));
    }
    const std::size_t record_bytes = rec.size() - start;
    bytes_copied_->inc(record_bytes);
    charge_serialize(record_bytes);
    sent_routed_->inc();
    outgoing_.commit_record(w, progress);
  }

  static constexpr std::size_t kPendingShards = 16;
  struct alignas(kCacheLine) PendingShard {
    std::mutex mu;
    std::unordered_map<request_id, Completer> map;
  };

  void register_completer(request_id rid, Completer completer);
  Completer take_completer(request_id rid);
  void charge_serialize(std::size_t bytes);
  void dispatch_buffer(ByteBuffer buffer, pe_id src);

  /// Admission control (DESIGN.md §14): when the pending-AM window
  /// (launched - completed) is full, cooperatively run scheduler work,
  /// drain the inbox, and flush our own staged requests until the window
  /// reopens, instead of ballooning the queues.  No-op when the window is
  /// disabled, and skipped (via a thread-local guard) for sends issued by
  /// tasks that are already executing inside a gated sender's yield loop —
  /// gating those would nest gate loops without bound.
  void admit();

  /// Dispatch one non-forward record (reply completion or AM execution).
  /// `src` is the PE that *originated* the record — for 2-hop traffic this
  /// is the origin carried in the wrapper, not the relay the fabric message
  /// physically came from.
  void dispatch_record(const AmEnvelope& env, std::span<const std::byte> payload,
                       pe_id src, AmDispatchBatch& batch);

  /// Handle a kForwardType wrapper: unwrap and dispatch when this PE is the
  /// final destination, otherwise re-aggregate the wrapper verbatim into our
  /// own lane toward the destination (the relay hop).
  void handle_forward(std::span<const std::byte> payload,
                      AmDispatchBatch& batch);

  Lamellae& lamellae_;
  ThreadPool& pool_;
  RuntimeConfig cfg_;
  OutgoingQueues outgoing_;
  World* world_ = nullptr;
  obs::TraceCollector* tracer_ = nullptr;

  // Adaptive control & backpressure (DESIGN.md §14).
  std::unique_ptr<control::ControlLoop> ctl_;
  std::uint64_t admit_window_ = 0;
  std::atomic<std::uint64_t> tick_gate_{0};
  obs::Counter* backpressure_stalls_;  // ctl.backpressure_stalls

  // AM-engine metrics ("am.*"), resolved once from the PE registry.
  obs::Counter* am_sent_remote_;
  obs::Counter* am_sent_local_;
  obs::Counter* am_executed_;
  obs::Counter* replies_sent_;
  obs::Counter* replies_received_;
  obs::Counter* bytes_serialized_;
  obs::Counter* bytes_copied_;
  obs::Counter* idle_flushes_;
  obs::Histogram* reply_latency_ns_;

  // 2-hop routing (ISSUE 8): the grid, the mode/cutoff resolved from config,
  // and the origin/relay-side counters.
  RouteGrid grid_;
  bool route_2hop_ = false;
  std::size_t route_cutoff_ = 0;
  obs::Counter* sent_routed_;       // am.sent_routed (origin side)
  obs::Counter* relayed_records_;   // am.relayed_records (relay side)
  obs::Counter* relay_bytes_;       // am.relay_bytes (relay side)

  // Causal-trace sampling (tentpole, ISSUE 6): per-stage latency histograms
  // and the open/close span accounting checked at quiesce.
  std::uint64_t trace_sample_ = 0;
  obs::Histogram* stage_flight_ns_;
  obs::Histogram* stage_exec_ns_;
  obs::Histogram* stage_reply_complete_ns_;
  obs::Counter* spans_opened_;
  obs::Counter* spans_closed_;

  // Reply completers, sharded by request id so completion bookkeeping on
  // one record does not serialize against registration of the next.
  std::array<PendingShard, kPendingShards> pending_;
  std::atomic<request_id> next_request_id_{1};

  std::atomic<std::uint64_t> launched_{0};
  std::atomic<std::uint64_t> completed_{0};
};

/// Type-erased execution shim instantiated per AM type by the registration
/// macro: deserialize straight from the borrowed inbox view (no
/// intermediate copy), collect the execution task into the dispatch batch
/// (or run inline for runtime-internal control messages), and send the
/// reply.
template <typename Am>
struct AmExecutor {
  static void execute(AmEngine& engine, pe_id src, const AmEnvelope& env,
                      std::span<const std::byte> payload,
                      AmDispatchBatch& batch) {
    const request_id rid = env.req_id;
    const std::uint32_t flags = env.flags;
    // Copied out of the envelope (which only lives for this call) so the
    // deferred task can time its exec stage and tag the reply.
    const std::uint64_t span = env.traced() ? env.trace_span : 0;
    Am am{};
    {
      Deserializer de(payload);
      ScopedWorld scope(engine.world());
      de.get(am);
    }
    engine.lamellae().charge(engine.lamellae().params().am_dispatch_ns);
    if constexpr (InlineAm<Am>) {
      ScopedWorld scope(engine.world());
      AmContext ctx(*engine.world(), src);
      const sim_nanos t0 = engine.lamellae().clock().now();
      auto result = AmEngine::invoke_exec<Am>(am, ctx);
      if (span != 0) {
        engine.note_traced_exec(span, t0, engine.lamellae().clock().now());
      }
      engine.note_am_executed();
      if ((flags & kWantsReply) != 0) {
        engine.send_reply(src, rid, result, span, /*allow_relay=*/false);
      }
      return;
    } else if constexpr (BorrowingAm<Am>) {
      // The deserialized AM holds spans into the inbox buffer; keep the
      // buffer alive until this task has executed and replied.  The arena
      // frame reclaims any result staging once the reply is serialized.
      batch.tasks.emplace_back([&engine, am = std::move(am), src, rid, flags,
                                span, hold = batch.require_hold()]() mutable {
        ScopedWorld scope(engine.world());
        AmContext ctx(*engine.world(), src);
        ArenaFrame frame;
        const sim_nanos t0 = engine.lamellae().clock().now();
        auto result = AmEngine::invoke_exec<Am>(am, ctx);
        if (span != 0) {
          engine.note_traced_exec(span, t0, engine.lamellae().clock().now());
        }
        engine.note_am_executed();
        if ((flags & kWantsReply) != 0) {
          engine.send_reply(src, rid, result, span);
        }
        hold.reset();
      });
    } else {
      batch.tasks.emplace_back([&engine, am = std::move(am), src, rid, flags,
                                span]() mutable {
        ScopedWorld scope(engine.world());
        AmContext ctx(*engine.world(), src);
        const sim_nanos t0 = engine.lamellae().clock().now();
        auto result = AmEngine::invoke_exec<Am>(am, ctx);
        if (span != 0) {
          engine.note_traced_exec(span, t0, engine.lamellae().clock().now());
        }
        engine.note_am_executed();
        if ((flags & kWantsReply) != 0) {
          engine.send_reply(src, rid, result, span);
        }
      });
    }
  }
};

}  // namespace lamellar

/// Register an AM type with the runtime lookup table.  Must appear at
/// namespace scope in exactly one translation unit per AM type — the C++
/// stand-in for the paper's #[am] procedural macro.
#define LAMELLAR_REGISTER_AM(T)                                       \
  template <>                                                         \
  const ::lamellar::am_type_id ::lamellar::AmTypeId<T>::id =          \
      ::lamellar::AmRegistry::instance().register_handler(            \
          #T, &::lamellar::AmExecutor<T>::execute)
