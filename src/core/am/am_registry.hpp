// Registration of active-message types.
//
// The paper's `#[am]` procedural macro assigns each AM a unique identifier
// "registered in a runtime lookup table, enabling AMs to properly
// deserialize and execute on remote PEs" (Sec. III-C).  Here the same table
// is populated at static-initialization time by the LAMELLAR_REGISTER_AM
// macro; because all PEs share the process, ids are trivially consistent
// across PEs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/am/wire.hpp"
#include "core/scheduler/task.hpp"

namespace lamellar {

class AmEngine;
class OutgoingQueues;

/// Keeps one aggregated inbox buffer alive while deferred tasks execute AMs
/// that borrow views of its payload (kBorrowsPayload types).  The
/// dispatcher parks the drained buffer here after the record walk; the last
/// task to release its reference recycles the buffer back to the pool.
/// (Moving the ByteBuffer moves a std::vector, so the heap storage — and
/// every span into it — stays put.)
struct InboxHold {
  ByteBuffer buffer;
  OutgoingQueues* recycler = nullptr;
  ~InboxHold();
};

/// Execution tasks collected while one aggregated buffer is parsed, then
/// injected into the thread pool as a single batch (one pending-count
/// update, one wake) instead of per-record spawns.
struct AmDispatchBatch {
  std::vector<Task> tasks;
  /// Created on demand by executors of payload-borrowing AM types; empty
  /// when every record either completed synchronously or was copied out.
  std::shared_ptr<InboxHold> hold;

  std::shared_ptr<InboxHold>& require_hold() {
    if (!hold) hold = std::make_shared<InboxHold>();
    return hold;
  }
};

/// Type-erased executor: deserializes an AM of its type straight from the
/// borrowed `payload` view (valid only for the duration of the call),
/// appends the execution task to `batch` (or runs inline for runtime-
/// internal AMs), and arranges the reply.  `env` is the parsed record
/// envelope (request id, flags, and — for sampled requests — the trace
/// span to propagate onto the reply); it is only valid for the duration of
/// the call, so deferred tasks must copy what they need.
using AmExecuteFn = void (*)(AmEngine& engine, pe_id src,
                             const AmEnvelope& env,
                             std::span<const std::byte> payload,
                             AmDispatchBatch& batch);

class AmRegistry {
 public:
  static AmRegistry& instance();

  am_type_id register_handler(std::string name, AmExecuteFn fn);

  [[nodiscard]] AmExecuteFn handler(am_type_id id) const;
  [[nodiscard]] const std::string& name(am_type_id id) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    AmExecuteFn fn;
  };
  std::vector<Entry> entries_;
};

/// Compile-time hook holding the runtime id of a registered AM type.
/// Specialized (defined) by LAMELLAR_REGISTER_AM.
template <typename Am>
struct AmTypeId {
  static const am_type_id id;
};

}  // namespace lamellar
