// Wire format for active-message records inside aggregation buffers.
//
// A transferred buffer is a concatenation of records:
//   [u32 am_type][u32 flags][u64 req_id][u64 payload_len][payload bytes]
// Replies reuse the same framing with type = kReplyType and the request id
// of the originating AM; the payload is the serialized return value.
//
// Records carrying the kTraced flag insert a 16-byte trace extension
// between the header and the payload:
//   [u64 span_id][u64 ts]
// `span_id` identifies one sampled request end-to-end (origin PE in the
// high 16 bits, origin request id below), so per-PE trace rings stitch into
// one causal timeline.  `ts` is a virtual-clock nanosecond stamp whose
// meaning depends on direction: requests carry the origin's *flush* time
// (patched when the aggregation buffer departs, so the receiver can compute
// flight latency), replies carry the executing PE's reply-inject time (so
// the origin can compute reply→complete latency).  Untraced records are
// byte-for-byte identical to the pre-tracing format.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace lamellar {

inline constexpr am_type_id kReplyType = 0xFFFFFFFFu;

/// Relay-forwarded wrapper record (2-hop routing, DESIGN.md §12).  The
/// wrapper's own header carries type = kForwardType, flags = 0, req_id = 0;
/// its payload is
///   [u32 final_dst][u32 origin][one complete inner record]
/// where the inner record uses the standard framing above (header, optional
/// trace extension, payload).  A relay whose PE id != final_dst copies the
/// wrapper verbatim into its own aggregation lane toward final_dst
/// (re-aggregation); the final destination unwraps and dispatches the inner
/// record as if it had arrived directly from `origin` — replies must route
/// to the origin, not to the relay the fabric message came from.
inline constexpr am_type_id kForwardType = 0xFFFFFFFEu;
inline constexpr std::size_t kForwardPrefixBytes = sizeof(std::uint32_t) * 2;

enum AmFlags : std::uint32_t {
  kWantsReply = 1u << 0,
  kTraced = 1u << 1,
};

struct AmEnvelope {
  am_type_id type = 0;
  std::uint32_t flags = 0;
  request_id req_id = 0;
  // Trace extension (valid only when flags & kTraced).
  std::uint64_t trace_span = 0;
  std::uint64_t trace_ts = 0;

  [[nodiscard]] bool traced() const { return (flags & kTraced) != 0; }
};

inline constexpr std::size_t kRecordHeaderBytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) * 2;
inline constexpr std::size_t kTraceExtBytes = sizeof(std::uint64_t) * 2;

/// Globally unique span id for a sampled request: origin PE in the top 16
/// bits over that PE's monotone request id.
inline std::uint64_t make_trace_span(pe_id origin, request_id rid) {
  return (static_cast<std::uint64_t>(origin) << 48) |
         (rid & ((1ULL << 48) - 1));
}
inline pe_id trace_span_origin(std::uint64_t span) {
  return static_cast<pe_id>(span >> 48);
}

inline void write_record(ByteBuffer& out, const AmEnvelope& env,
                         std::span<const std::byte> payload) {
  out.write_pod<std::uint32_t>(env.type);
  out.write_pod<std::uint32_t>(env.flags);
  out.write_pod<std::uint64_t>(env.req_id);
  out.write_pod<std::uint64_t>(payload.size());
  if (env.traced()) {
    out.write_pod<std::uint64_t>(env.trace_span);
    out.write_pod<std::uint64_t>(env.trace_ts);
  }
  out.write(payload.data(), payload.size());
}

/// Read the next record from the front of `in`, shrinking `in` past it.
/// Returns false when `in` is empty.  The payload view aliases the original
/// buffer and is valid as long as that buffer's storage is.
inline bool read_record(std::span<const std::byte>& in, AmEnvelope& env,
                        std::span<const std::byte>& payload) {
  if (in.empty()) return false;
  if (in.size() < kRecordHeaderBytes) {
    throw DeserializeError("read_record: truncated record header");
  }
  std::uint64_t len = 0;
  std::memcpy(&env.type, in.data(), sizeof(env.type));
  std::memcpy(&env.flags, in.data() + 4, sizeof(env.flags));
  std::memcpy(&env.req_id, in.data() + 8, sizeof(env.req_id));
  std::memcpy(&len, in.data() + 16, sizeof(len));
  std::size_t off = kRecordHeaderBytes;
  if (env.traced()) {
    if (in.size() - off < kTraceExtBytes) {
      throw DeserializeError("read_record: truncated trace extension");
    }
    std::memcpy(&env.trace_span, in.data() + off, sizeof(env.trace_span));
    std::memcpy(&env.trace_ts, in.data() + off + 8, sizeof(env.trace_ts));
    off += kTraceExtBytes;
  } else {
    env.trace_span = 0;
    env.trace_ts = 0;
  }
  if (in.size() - off < len) {
    throw DeserializeError("read_record: truncated record payload");
  }
  payload = in.subspan(off, static_cast<std::size_t>(len));
  in = in.subspan(off + static_cast<std::size_t>(len));
  return true;
}

/// ByteBuffer convenience: reads at the buffer's cursor, advancing it.
inline bool read_record(ByteBuffer& in, AmEnvelope& env,
                        std::span<const std::byte>& payload) {
  if (in.remaining() == 0) return false;
  env.type = in.read_pod<std::uint32_t>();
  env.flags = in.read_pod<std::uint32_t>();
  env.req_id = in.read_pod<std::uint64_t>();
  const auto len = in.read_pod<std::uint64_t>();
  if (env.traced()) {
    env.trace_span = in.read_pod<std::uint64_t>();
    env.trace_ts = in.read_pod<std::uint64_t>();
  } else {
    env.trace_span = 0;
    env.trace_ts = 0;
  }
  payload = in.read_view(static_cast<std::size_t>(len));
  return true;
}

}  // namespace lamellar
