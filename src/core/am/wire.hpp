// Wire format for active-message records inside aggregation buffers.
//
// A transferred buffer is a concatenation of records:
//   [u32 am_type][u32 flags][u64 req_id][u64 payload_len][payload bytes]
// Replies reuse the same framing with type = kReplyType and the request id
// of the originating AM; the payload is the serialized return value.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace lamellar {

inline constexpr am_type_id kReplyType = 0xFFFFFFFFu;

enum AmFlags : std::uint32_t {
  kWantsReply = 1u << 0,
};

struct AmEnvelope {
  am_type_id type = 0;
  std::uint32_t flags = 0;
  request_id req_id = 0;
};

inline constexpr std::size_t kRecordHeaderBytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) * 2;

inline void write_record(ByteBuffer& out, const AmEnvelope& env,
                         std::span<const std::byte> payload) {
  out.write_pod<std::uint32_t>(env.type);
  out.write_pod<std::uint32_t>(env.flags);
  out.write_pod<std::uint64_t>(env.req_id);
  out.write_pod<std::uint64_t>(payload.size());
  out.write(payload.data(), payload.size());
}

/// Read the next record from the front of `in`, shrinking `in` past it.
/// Returns false when `in` is empty.  The payload view aliases the original
/// buffer and is valid as long as that buffer's storage is.
inline bool read_record(std::span<const std::byte>& in, AmEnvelope& env,
                        std::span<const std::byte>& payload) {
  if (in.empty()) return false;
  if (in.size() < kRecordHeaderBytes) {
    throw DeserializeError("read_record: truncated record header");
  }
  std::uint64_t len = 0;
  std::memcpy(&env.type, in.data(), sizeof(env.type));
  std::memcpy(&env.flags, in.data() + 4, sizeof(env.flags));
  std::memcpy(&env.req_id, in.data() + 8, sizeof(env.req_id));
  std::memcpy(&len, in.data() + 16, sizeof(len));
  if (in.size() - kRecordHeaderBytes < len) {
    throw DeserializeError("read_record: truncated record payload");
  }
  payload = in.subspan(kRecordHeaderBytes, static_cast<std::size_t>(len));
  in = in.subspan(kRecordHeaderBytes + static_cast<std::size_t>(len));
  return true;
}

/// ByteBuffer convenience: reads at the buffer's cursor, advancing it.
inline bool read_record(ByteBuffer& in, AmEnvelope& env,
                        std::span<const std::byte>& payload) {
  if (in.remaining() == 0) return false;
  env.type = in.read_pod<std::uint32_t>();
  env.flags = in.read_pod<std::uint32_t>();
  env.req_id = in.read_pod<std::uint64_t>();
  const auto len = in.read_pod<std::uint64_t>();
  payload = in.read_view(static_cast<std::size_t>(len));
  return true;
}

}  // namespace lamellar
