#include "core/am/am_registry.hpp"

#include "common/error.hpp"
#include "core/am/wire.hpp"
#include "lamellae/cmd_queue.hpp"

namespace lamellar {

InboxHold::~InboxHold() {
  if (recycler != nullptr) recycler->recycle(std::move(buffer));
}

AmRegistry& AmRegistry::instance() {
  static AmRegistry registry;
  return registry;
}

am_type_id AmRegistry::register_handler(std::string name, AmExecuteFn fn) {
  const auto id = static_cast<am_type_id>(entries_.size());
  if (id == kReplyType) throw Error("AmRegistry: id space exhausted");
  entries_.push_back(Entry{std::move(name), fn});
  return id;
}

AmExecuteFn AmRegistry::handler(am_type_id id) const {
  if (id >= entries_.size()) {
    throw Error("AmRegistry: unknown AM type id " + std::to_string(id));
  }
  return entries_[id].fn;
}

const std::string& AmRegistry::name(am_type_id id) const {
  if (id >= entries_.size()) {
    throw Error("AmRegistry: unknown AM type id " + std::to_string(id));
  }
  return entries_[id].name;
}

}  // namespace lamellar
