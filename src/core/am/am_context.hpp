// Execution context passed to every active message, plus the thread-local
// world context used while (de)serializing runtime-aware types (Darcs,
// memory-region handles) — the C++ analogue of the serde context the Rust
// runtime threads through its proc-macro generated code.
#pragma once

#include "common/types.hpp"

namespace lamellar {

class World;

/// Context available inside ActiveMessage::exec — the analogue of the
/// lamellar::current_pe / lamellar::world accessors in Listing 1.
class AmContext {
 public:
  AmContext(World& world, pe_id src_pe) : world_(world), src_pe_(src_pe) {}

  /// The world this AM executes in; use it to launch nested AMs.
  [[nodiscard]] World& world() const { return world_; }

  /// The PE on which this AM is currently executing.
  [[nodiscard]] pe_id current_pe() const;

  [[nodiscard]] std::size_t num_pes() const;

  /// The PE that launched this AM.
  [[nodiscard]] pe_id src_pe() const { return src_pe_; }

 private:
  World& world_;
  pe_id src_pe_;
};

/// The world bound to the current thread during AM (de)serialization and
/// execution; null outside runtime contexts.
World* current_world();

/// RAII binder for the thread-local world context.
class ScopedWorld {
 public:
  explicit ScopedWorld(World* w);
  ~ScopedWorld();
  ScopedWorld(const ScopedWorld&) = delete;
  ScopedWorld& operator=(const ScopedWorld&) = delete;

 private:
  World* prev_;
};

/// The PE that sent the message currently being deserialized on this thread
/// (used by Darc / region handles to ack reference transfers).
pe_id current_am_src();

/// RAII binder for the thread-local message-source context.
class ScopedAmSrc {
 public:
  explicit ScopedAmSrc(pe_id src);
  ~ScopedAmSrc();
  ScopedAmSrc(const ScopedAmSrc&) = delete;
  ScopedAmSrc& operator=(const ScopedAmSrc&) = delete;

 private:
  pe_id prev_;
};

}  // namespace lamellar
