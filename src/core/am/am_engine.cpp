#include "core/am/am_engine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lamellar {

namespace {
thread_local World* tl_current_world = nullptr;
thread_local pe_id tl_am_src = 0;
// Set while a thread is inside admit()'s yield loop: sends issued by the
// tasks it runs (nested AMs, replies, Darc control traffic) must not gate
// again, or gate loops would nest without bound.
thread_local bool tl_in_admit = false;

struct AdmitScope {
  AdmitScope() { tl_in_admit = true; }
  ~AdmitScope() { tl_in_admit = false; }
};
}  // namespace

World* current_world() { return tl_current_world; }

ScopedWorld::ScopedWorld(World* w) : prev_(tl_current_world) {
  tl_current_world = w;
}

ScopedWorld::~ScopedWorld() { tl_current_world = prev_; }

pe_id current_am_src() { return tl_am_src; }

ScopedAmSrc::ScopedAmSrc(pe_id src) : prev_(tl_am_src) { tl_am_src = src; }

ScopedAmSrc::~ScopedAmSrc() { tl_am_src = prev_; }

AmEngine::AmEngine(Lamellae& lamellae, ThreadPool& pool,
                   const RuntimeConfig& cfg, obs::TraceCollector* tracer)
    : lamellae_(lamellae),
      pool_(pool),
      cfg_(cfg),
      outgoing_(lamellae, cfg.agg_threshold_bytes, tracer),
      tracer_(tracer),
      trace_sample_(cfg.trace_sample) {
  route_2hop_ = cfg.route == RouteMode::k2Hop;
  grid_ = RouteGrid::make(
      lamellae.num_pes(),
      PeMapping{std::max<std::size_t>(1, lamellae.pes_per_node())});
  route_cutoff_ = cfg.route_direct_cutoff_bytes != 0
                      ? cfg.route_direct_cutoff_bytes
                      : std::max<std::size_t>(1, cfg.agg_threshold_bytes / 8);
  obs::MetricsRegistry& reg = lamellae.metrics();
  am_sent_remote_ = &reg.counter("am.sent_remote");
  am_sent_local_ = &reg.counter("am.sent_local");
  am_executed_ = &reg.counter("am.executed");
  replies_sent_ = &reg.counter("am.replies_sent");
  replies_received_ = &reg.counter("am.replies_received");
  bytes_serialized_ = &reg.counter("am.bytes_serialized");
  bytes_copied_ = &reg.counter("am.bytes_copied");
  idle_flushes_ = &reg.counter("am.idle_flushes");
  reply_latency_ns_ = &reg.histogram("am.reply_latency_ns");
  stage_flight_ns_ = &reg.histogram("am.stage_flight_ns");
  stage_exec_ns_ = &reg.histogram("am.stage_exec_ns");
  stage_reply_complete_ns_ = &reg.histogram("am.stage_reply_complete_ns");
  spans_opened_ = &reg.counter("trace.spans_opened");
  spans_closed_ = &reg.counter("trace.spans_closed");
  sent_routed_ = &reg.counter("am.sent_routed");
  relayed_records_ = &reg.counter("am.relayed_records");
  relay_bytes_ = &reg.counter("am.relay_bytes");
  backpressure_stalls_ = &reg.counter("ctl.backpressure_stalls");
  if (cfg.adapt != AdaptMode::kOff) {
    ctl_ = std::make_unique<control::ControlLoop>(
        outgoing_, lamellae, cfg, [this] { poll_inbox(); });
  }
  // An explicit LAMELLAR_ADMIT_WINDOW enables admission in any mode; the
  // auto default only arms it for adapt=full.
  admit_window_ = cfg.admit_window != 0
                      ? cfg.admit_window
                      : (cfg.adapt == AdaptMode::kFull ? 8192 : 0);
}

void AmEngine::admit() {
  if (admit_window_ == 0 || tl_in_admit) return;
  if (outstanding() < admit_window_) return;
  AdmitScope scope;
  backpressure_stalls_->inc();
  // Progress argument (DESIGN.md §14): every iteration either executes a
  // pool task (which can produce completions), polls the inbox (which
  // delivers replies), or flushes our own staged requests (so the sends the
  // window is waiting on actually depart).  Completions therefore keep
  // flowing and outstanding() is strictly decreasing over the work the
  // window covers — the loop cannot deadlock.
  while (outstanding() >= admit_window_) {
    if (!pool_.cooperative_yield()) {
      // No runnable task; the yield already polled via the progress hook.
      if (outgoing_.has_pending()) flush();
    }
    if (ctl_ != nullptr) ctl_->maybe_tick();
  }
}

void AmEngine::register_completer(request_id rid, Completer completer) {
  PendingShard& shard = pending_[rid % kPendingShards];
  std::lock_guard lock(shard.mu);
  shard.map.emplace(rid, std::move(completer));
}

AmEngine::Completer AmEngine::take_completer(request_id rid) {
  PendingShard& shard = pending_[rid % kPendingShards];
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(rid);
  if (it == shard.map.end()) {
    throw Error("AmEngine: reply for unknown request " + std::to_string(rid));
  }
  Completer completer = std::move(it->second);
  shard.map.erase(it);
  return completer;
}

void AmEngine::charge_serialize(std::size_t bytes) {
  bytes_serialized_->inc(bytes);
  lamellae_.charge(lamellae_.params().serialize_ns(bytes));
}

bool AmEngine::poll_inbox() {
  bool any = false;
  FabricMessage msg;
  while (lamellae_.poll(msg)) {
    any = true;
    dispatch_buffer(std::move(msg.payload), msg.src);
  }
  return any;
}

void AmEngine::dispatch_record(const AmEnvelope& env,
                               std::span<const std::byte> payload, pe_id src,
                               AmDispatchBatch& batch) {
  if (env.type == kReplyType) {
    replies_received_->inc();
    if (env.traced()) {
      // The reply's wire ts is the executing PE's reply-inject time; the
      // difference to our arrival clock is the reply->complete stage.
      // Clamped at zero: per-PE virtual clocks are not globally ordered.
      const sim_nanos now = lamellae_.clock().now();
      const auto sent = static_cast<sim_nanos>(env.trace_ts);
      const sim_nanos dur = now >= sent ? now - sent : 0;
      stage_reply_complete_ns_->record(static_cast<std::uint64_t>(dur));
      spans_closed_->inc();
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->record({"am_complete", "am", my_pe(), now, 0, 'f',
                         static_cast<std::uint64_t>(dur), env.trace_span});
      }
    }
    Completer completer = take_completer(env.req_id);
    // Deserialize the return value straight from the inbox buffer; the
    // borrowed view only needs to outlive this synchronous call.  Span
    // replies may stage a misaligned-fallback copy in the arena; the
    // frame reclaims it once the completer has scattered the results.
    ArenaFrame frame;
    Deserializer de(payload);
    completer(de);
    return;
  }
  if (env.traced()) {
    // The request's wire ts was patched with the origin's flush time when
    // its aggregation buffer departed; arrival minus that is the flight
    // stage (clamped: per-PE virtual clocks are not globally ordered).
    // For 2-hop traffic the stage spans origin flush -> final arrival,
    // including relay residency — the true end-to-end flight.
    const sim_nanos now = lamellae_.clock().now();
    const auto flushed = static_cast<sim_nanos>(env.trace_ts);
    const sim_nanos dur = now >= flushed ? now - flushed : 0;
    stage_flight_ns_->record(static_cast<std::uint64_t>(dur));
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->record({"am_recv", "am", my_pe(), now, 0, 't',
                       static_cast<std::uint64_t>(dur), env.trace_span});
    }
  }
  AmRegistry::instance().handler(env.type)(*this, src, env, payload, batch);
}

void AmEngine::handle_forward(std::span<const std::byte> payload,
                              AmDispatchBatch& batch) {
  if (payload.size() < kForwardPrefixBytes) {
    throw DeserializeError("forward record: truncated routing prefix");
  }
  std::uint32_t fdst32 = 0;
  std::uint32_t origin32 = 0;
  std::memcpy(&fdst32, payload.data(), sizeof(fdst32));
  std::memcpy(&origin32, payload.data() + sizeof(fdst32), sizeof(origin32));
  const auto fdst = static_cast<pe_id>(fdst32);
  const auto origin = static_cast<pe_id>(origin32);
  if (fdst >= num_pes() || origin >= num_pes()) {
    throw DeserializeError("forward record: PE id out of range");
  }
  std::span<const std::byte> inner = payload.subspan(kForwardPrefixBytes);
  if (fdst == my_pe()) {
    AmEnvelope ienv;
    std::span<const std::byte> ipayload;
    if (!read_record(inner, ienv, ipayload)) {
      throw DeserializeError("forward record: empty inner record");
    }
    // Dispatch as if the record had arrived directly from the origin: the
    // deserializer and any reply must see the origin, not the relay the
    // fabric message physically came from.
    ScopedAmSrc src_scope(origin);
    dispatch_record(ienv, ipayload, origin, batch);
    return;
  }
  // Relay hop: copy the wrapper verbatim into our own lane toward the final
  // destination (we sit in its column, so relay(my_pe, fdst) == fdst) — the
  // re-aggregation that turns O(P) origin lanes into O(sqrt P).  Relay
  // traffic is deliberately excluded from bytes_copied/bytes_serialized
  // (those count origin-side serialization once per record); the copy cost
  // is still charged to the modeled clock.
  relayed_records_->inc();
  relay_bytes_->inc(payload.size());
  lamellae_.charge(lamellae_.params().serialize_ns(payload.size()));
  const auto progress = [this] { poll_inbox(); };
  auto w = outgoing_.begin_record(fdst);
  ByteBuffer& rec = w.buffer();
  rec.write_pod<std::uint32_t>(kForwardType);
  rec.write_pod<std::uint32_t>(0);
  rec.write_pod<std::uint64_t>(0);
  rec.write_pod<std::uint64_t>(payload.size());
  rec.write(payload.data(), payload.size());
  outgoing_.commit_record(w, progress);
}

void AmEngine::dispatch_buffer(ByteBuffer buffer, pe_id src) {
  ScopedWorld scope(world_);
  ScopedAmSrc src_scope(src);
  obs::TraceSpan span(tracer_, "dispatch_buffer", "am", my_pe(),
                      lamellae_.clock().now());
  std::uint64_t records = 0;
  AmEnvelope env;
  std::span<const std::byte> cursor = buffer.as_span();
  std::span<const std::byte> payload;
  AmDispatchBatch batch;
  while (read_record(cursor, env, payload)) {
    ++records;
    if (env.type == kForwardType) {
      handle_forward(payload, batch);
      continue;
    }
    dispatch_record(env, payload, src, batch);
  }
  if (batch.hold) {
    // Some deferred task borrows payload views: park the buffer in the
    // hold (vector move — the storage the spans point at stays put) and
    // let the last task's release recycle it.
    batch.hold->buffer = std::move(buffer);
    batch.hold->recycler = &outgoing_;
    batch.hold.reset();
  } else {
    // Every payload view has been consumed: hand the drained buffer to the
    // pool so a later send reuses its storage, then inject every AM task of
    // this aggregated buffer at once (one pending update, one wake).
    outgoing_.recycle(std::move(buffer));
  }
  pool_.spawn_batch(std::move(batch.tasks));
  span.finish(lamellae_.clock().now(), records);
}

void AmEngine::progress() {
  const bool polled = poll_inbox();
  if (!polled && pool_.pending() == 0 && outgoing_.has_pending()) {
    // Idle: push residual aggregation buffers out so fire-and-forget AMs
    // are not stranded below the flush threshold.
    idle_flushes_->inc();
    flush();
  }
  if (ctl_ != nullptr) ctl_->maybe_tick();
}

void AmEngine::flush() {
  outgoing_.flush_all([this] { poll_inbox(); });
}

void AmEngine::wait_all() {
  flush();
  while (outstanding() > 0) {
    if (!pool_.try_run_one()) {
      const bool polled = poll_inbox();
      // Replies produced by remote PEs may still be sitting in *their*
      // aggregation buffers; their idle workers flush them.  Meanwhile our
      // own residuals must also leave.
      if (outgoing_.has_pending()) flush();
      // At paper-scale PE counts thousands of PE threads share few cores;
      // spinning here starves the PEs that actually hold our replies.
      if (!polled) std::this_thread::yield();
    }
  }
}

}  // namespace lamellar
