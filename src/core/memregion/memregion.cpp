#include "core/memregion/onesided_region.hpp"
#include "core/memregion/shared_region.hpp"

namespace lamellar::detail {

OneSidedProxy::~OneSidedProxy() {
  if (world == nullptr || weight == 0) return;
  if (world->my_pe() == origin) {
    world->onesided_registry().return_weight(key, weight, world->lamellae());
  } else {
    world->exec_am_pe(origin, OneSidedReleaseAm{key, weight});
  }
}

void OneSidedReleaseAm::exec(AmContext& ctx) {
  ctx.world().onesided_registry().return_weight(key, weight,
                                                ctx.world().lamellae());
}

}  // namespace lamellar::detail

LAMELLAR_REGISTER_AM(lamellar::detail::OneSidedReleaseAm);
