// OneSidedMemoryRegion (paper Sec. III-D2).
//
// Allocated by a single PE from its internal RDMA heap — no collective call.
// put/get always target the constructing (origin) PE.  Handles can travel in
// AMs; lifetime uses *weighted reference counting* managed at the origin:
// the origin's registry holds the total weight, every proxy holds a share,
// serialization splits the sender's share in half for the message, and a
// dying proxy returns its weight (an AM when remote).  Weighted counting
// makes reference transfer commutative, so no increment/decrement ordering
// hazards exist even with aggregated, out-of-order message delivery.
#pragma once

#include <memory>
#include <mutex>
#include <span>

#include "common/error.hpp"
#include "core/am/am_engine.hpp"
#include "core/scheduler/future.hpp"
#include "core/world/world.hpp"

namespace lamellar {

namespace detail {

inline constexpr std::uint64_t kOneSidedInitialWeight = 1ULL << 48;

/// One per-PE proxy per adopted handle lineage; local copies share it.
struct OneSidedProxy {
  World* world = nullptr;
  pe_id origin = 0;
  std::uint64_t key = 0;
  std::size_t offset = 0;
  std::size_t len_bytes = 0;
  std::mutex weight_mu;
  std::uint64_t weight = 0;

  ~OneSidedProxy();

  /// Split half of this proxy's weight off for a serialized handle.
  std::uint64_t split_weight() {
    std::lock_guard lock(weight_mu);
    if (weight < 2) {
      throw Error(
          "OneSidedMemoryRegion: reference weight exhausted (too many "
          "serialization generations)");
    }
    const std::uint64_t half = weight / 2;
    weight -= half;
    return half;
  }
};

/// Internal AM returning weight to the origin's registry.
struct OneSidedReleaseAm {
  static constexpr bool kRuntimeInternal = true;
  std::uint64_t key = 0;
  std::uint64_t weight = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(key, weight);
  }
  void exec(AmContext& ctx);
};

}  // namespace detail

template <typename T>
class OneSidedMemoryRegion {
  static_assert(std::is_trivially_copyable_v<T>,
                "memory regions hold raw bitstream data");

 public:
  OneSidedMemoryRegion() = default;

  /// One-sided allocation on the calling PE (no coordination).
  static OneSidedMemoryRegion create(World& world, std::size_t len) {
    const std::size_t bytes = len * sizeof(T);
    const std::size_t offset = world.lamellae().alloc_onesided(
        bytes == 0 ? 1 : bytes, alignof(std::max_align_t));
    const std::uint64_t key = world.onesided_registry().install_weighted(
        offset, detail::kOneSidedInitialWeight);
    auto proxy = std::make_shared<detail::OneSidedProxy>();
    proxy->world = &world;
    proxy->origin = world.my_pe();
    proxy->key = key;
    proxy->offset = offset;
    proxy->len_bytes = bytes;
    proxy->weight = detail::kOneSidedInitialWeight;
    OneSidedMemoryRegion region;
    region.proxy_ = std::move(proxy);
    return region;
  }

  [[nodiscard]] bool valid() const { return proxy_ != nullptr; }
  [[nodiscard]] std::size_t len() const {
    return proxy_->len_bytes / sizeof(T);
  }
  [[nodiscard]] pe_id origin() const { return proxy_->origin; }

  /// Write `src` into the origin PE's region at element `index`.  UNSAFE.
  void unsafe_put(std::size_t index, std::span<const T> src) {
    check(index, src.size());
    proxy_->world->lamellae().put(proxy_->origin,
                                  proxy_->offset + index * sizeof(T),
                                  std::as_bytes(src));
  }

  Future<Unit> unsafe_put_nb(std::size_t index, std::span<const T> src) {
    unsafe_put(index, src);
    return ready_future(Unit{});
  }

  /// Read from the origin PE's region at `index` into `dst`.  UNSAFE.
  void unsafe_get(std::size_t index, std::span<T> dst) {
    check(index, dst.size());
    proxy_->world->lamellae().get(proxy_->origin,
                                  proxy_->offset + index * sizeof(T),
                                  std::as_writable_bytes(dst));
  }

  Future<Unit> unsafe_get_nb(std::size_t index, std::span<T> dst) {
    unsafe_get(index, dst);
    return ready_future(Unit{});
  }

  /// Local slice — valid only on the origin PE.  UNSAFE.
  [[nodiscard]] std::span<T> unsafe_local_slice() {
    if (proxy_->world->my_pe() != proxy_->origin) {
      throw Error("OneSidedMemoryRegion: local slice on non-origin PE");
    }
    return {
        reinterpret_cast<T*>(proxy_->world->lamellae().base() +
                             proxy_->offset),
        len()};
  }

  [[nodiscard]] std::size_t arena_offset() const { return proxy_->offset; }

  /// Serialize: carry half the proxy's weight with the message; the
  /// receiver's proxy adopts it.
  template <class Archive>
  void serialize(Archive& ar) {
    if constexpr (Archive::is_writing) {
      if (proxy_ == nullptr) {
        throw Error("OneSidedMemoryRegion: serializing empty handle");
      }
      std::uint64_t carried = proxy_->split_weight();
      std::uint64_t len_bytes = proxy_->len_bytes;
      std::uint64_t offset = proxy_->offset;
      std::uint64_t origin = proxy_->origin;
      ar(origin, proxy_->key, offset, len_bytes, carried);
    } else {
      std::uint64_t origin = 0, key = 0, offset = 0, len_bytes = 0,
                    carried = 0;
      ar(origin, key, offset, len_bytes, carried);
      World* w = current_world();
      if (w == nullptr) {
        throw Error("OneSidedMemoryRegion deserialized outside runtime");
      }
      auto proxy = std::make_shared<detail::OneSidedProxy>();
      proxy->world = w;
      proxy->origin = static_cast<pe_id>(origin);
      proxy->key = key;
      proxy->offset = static_cast<std::size_t>(offset);
      proxy->len_bytes = static_cast<std::size_t>(len_bytes);
      proxy->weight = carried;
      proxy_ = std::move(proxy);
    }
  }

 private:
  void check(std::size_t index, std::size_t n) const {
    if (proxy_ == nullptr) throw Error("OneSidedMemoryRegion: empty handle");
    if ((index + n) * sizeof(T) > proxy_->len_bytes) {
      throw_bounds("OneSidedMemoryRegion access", index + n,
                   proxy_->len_bytes / sizeof(T));
    }
  }

  std::shared_ptr<detail::OneSidedProxy> proxy_;
};

}  // namespace lamellar
