// SharedMemoryRegion — the low-level collective RDMA region
// (paper Sec. III-D1).
//
// A thin wrapper around an RDMA memory region collectively allocated on
// every PE of a team: the same number of elements on each PE, addressed by
// (pe, index).  This is the *unsafe tier*: there is no access control —
// remote PEs can write while you read — so data accessors are spelled
// `unsafe_*` (the C++ rendering of the Rust `unsafe` fences the paper
// requires for these APIs).  SharedMemoryRegions are specialized Darcs: they
// can travel inside AMs and stay alive until every PE drops its reference.
#pragma once

#include <span>

#include "common/error.hpp"
#include "core/darc/darc.hpp"
#include "core/scheduler/future.hpp"
#include "core/world/world.hpp"

namespace lamellar {

namespace detail {

/// Per-PE state behind the Darc.  Destruction (run on every PE by the Darc
/// destroy protocol) releases this PE's share of the collective allocation.
struct SharedRegionState {
  World* world = nullptr;
  Team team;
  std::size_t offset = 0;
  std::size_t bytes = 0;
  std::size_t len = 0;  ///< elements per PE

  SharedRegionState() = default;
  SharedRegionState(World* w, Team t, std::size_t off, std::size_t nbytes,
                    std::size_t n)
      : world(w), team(std::move(t)), offset(off), bytes(nbytes), len(n) {}
  SharedRegionState(const SharedRegionState&) = delete;
  SharedRegionState& operator=(const SharedRegionState&) = delete;
  SharedRegionState(SharedRegionState&& o) noexcept
      : world(o.world),
        team(std::move(o.team)),
        offset(o.offset),
        bytes(o.bytes),
        len(o.len) {
    o.world = nullptr;
  }
  SharedRegionState& operator=(SharedRegionState&&) = delete;
  ~SharedRegionState() {
    if (world != nullptr) {
      world->lamellae().free_symmetric_group(offset, team.size());
    }
  }

  template <class Archive>
  void serialize(Archive&) {
    throw Error("SharedRegionState is transferred via its Darc id only");
  }
};

}  // namespace detail

template <typename T>
class SharedMemoryRegion {
  static_assert(std::is_trivially_copyable_v<T>,
                "memory regions hold raw bitstream data");

 public:
  SharedMemoryRegion() = default;

  /// Collective on the world: allocate `len` elements on every PE.
  /// Blocks only the calling thread (other tasks keep running).
  static SharedMemoryRegion create(World& world, std::size_t len) {
    return create_on(world, world.team(), len);
  }

  /// Collective on `team` (member PEs only).
  static SharedMemoryRegion create_on(World& world, const Team& team,
                                      std::size_t len) {
    const std::size_t bytes = len * sizeof(T);
    const std::uint64_t key = team.next_object_id(world.my_pe());
    const std::size_t offset = world.lamellae().alloc_symmetric_group(
        key, team.size(), bytes == 0 ? 1 : bytes, alignof(std::max_align_t));
    SharedMemoryRegion region;
    region.state_ = world.new_darc_on(
        team,
        detail::SharedRegionState(&world, team, offset, bytes, len));
    return region;
  }

  [[nodiscard]] bool valid() const { return state_.valid(); }
  [[nodiscard]] std::size_t len() const { return state_->len; }
  [[nodiscard]] const Team& team() const { return state_->team; }

  // ---- unsafe data plane -------------------------------------------------

  /// Write `src` into `dst_rank`'s copy starting at element `index`.
  /// UNSAFE: no coordination with readers/writers on the target.
  void unsafe_put(std::size_t dst_rank, std::size_t index,
                  std::span<const T> src) {
    check(index, src.size());
    state_->world->lamellae().put(
        state_->team.world_pe(dst_rank), state_->offset + index * sizeof(T),
        std::as_bytes(src));
  }

  /// Non-blocking put; the future is complete when the transfer is done
  /// (our fabric completes transfers eagerly, matching ROFI's synchronous
  /// shared-memory behaviour, but callers must still treat this as async).
  Future<Unit> unsafe_put_nb(std::size_t dst_rank, std::size_t index,
                             std::span<const T> src) {
    unsafe_put(dst_rank, index, src);
    return ready_future(Unit{});
  }

  /// Read from `src_rank`'s copy starting at `index` into `dst`.  UNSAFE.
  void unsafe_get(std::size_t src_rank, std::size_t index, std::span<T> dst) {
    check(index, dst.size());
    state_->world->lamellae().get(
        state_->team.world_pe(src_rank), state_->offset + index * sizeof(T),
        std::as_writable_bytes(dst));
  }

  Future<Unit> unsafe_get_nb(std::size_t src_rank, std::size_t index,
                             std::span<T> dst) {
    unsafe_get(src_rank, index, dst);
    return ready_future(Unit{});
  }

  /// Direct access to this PE's local data.  UNSAFE: remote PEs may write
  /// concurrently through unsafe_put.
  [[nodiscard]] std::span<T> unsafe_local_slice() {
    return {reinterpret_cast<T*>(state_->world->lamellae().base() +
                                 state_->offset),
            state_->len};
  }

  [[nodiscard]] std::span<const T> unsafe_local_slice() const {
    return {reinterpret_cast<const T*>(state_->world->lamellae().base() +
                                       state_->offset),
            state_->len};
  }

  /// Byte offset of this region within the PE arenas (runtime internal).
  [[nodiscard]] std::size_t arena_offset() const { return state_->offset; }

  /// Regions are Darcs: serializing one inside an AM transfers a tracked
  /// reference.
  template <class Archive>
  void serialize(Archive& ar) {
    ar(state_);
  }

 private:
  void check(std::size_t index, std::size_t n) const {
    if (!state_.valid()) throw Error("SharedMemoryRegion: empty handle");
    if (index + n > state_->len) {
      throw_bounds("SharedMemoryRegion access", index + n, state_->len);
    }
  }

  Darc<detail::SharedRegionState> state_;
};

}  // namespace lamellar
