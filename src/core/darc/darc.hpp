// Darc — Distributed Atomically Reference Counted pointers (paper Sec. III-E).
//
// A Darc<T> is created collectively: every PE of the team supplies its own
// instance of T, and the runtime guarantees each instance stays alive until
// *every* PE agrees no references remain.  Reference movements:
//   * clone/drop of handles adjust the local count;
//   * serializing a handle into an AM takes an in-flight reference on the
//     sender; deserializing on the receiver adopts a fresh local reference
//     and sends a (batched) transfer-ack releasing the sender's in-flight
//     reference — the paper's "serialization and deserialization is used to
//     track the transfer of Darcs";
//   * a PE whose count reaches zero reports a drop to the root PE; a count
//     reviving from zero (a handle arriving after the report) reports a
//     revive;
//   * when the root has collected drops from every PE it runs a two-phase
//     confirmation (check/ack with an epoch that revives invalidate) and
//     then broadcasts the destroy AM that deallocates on every PE —
//    "Destruction of a Darc is asynchronous and occurs once every PE agrees
//     that no further references to the object exist".
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"
#include "core/am/am_context.hpp"

namespace lamellar {

class AmEngine;

/// Per-PE manager of Darc instances and the distributed lifetime protocol.
class DarcManager {
 public:
  explicit DarcManager(AmEngine& engine) : engine_(engine) {}

  // ---- installation (called from collective creation) ----

  /// Register this PE's instance with one initial handle reference.
  void install(darc_id id, std::shared_ptr<void> instance, pe_id root_pe);

  /// Register root-side tracking state (root PE only).
  void install_root(darc_id id, std::vector<pe_id> member_pes);

  // ---- handle reference movement ----
  void add_ref(darc_id id);
  void release_ref(darc_id id);

  /// Serialization hooks: sender takes an in-flight ref; receiver adopts a
  /// ref and acks the sender.
  void transfer_out(darc_id id);
  void transfer_in(darc_id id, pe_id from);

  /// Raw access to the local instance (the handle caches the typed pointer).
  [[nodiscard]] std::shared_ptr<void> instance(darc_id id);

  // ---- protocol message entry points (invoked by internal AMs) ----
  void on_drop(darc_id id);
  void on_revive(darc_id id);
  void on_check(darc_id id, std::uint64_t epoch, pe_id root);
  void on_check_reply(darc_id id, std::uint64_t epoch, bool ok);
  void on_destroy(darc_id id);
  void on_transfer_ack(darc_id id);

  // ---- introspection (tests / world teardown) ----
  [[nodiscard]] std::size_t live_entries() const;
  [[nodiscard]] std::uint64_t local_refs(darc_id id) const;
  [[nodiscard]] bool has(darc_id id) const;

  AmEngine& engine() { return engine_; }

 private:
  struct LocalEntry {
    std::shared_ptr<void> instance;
    std::uint64_t handle_count = 0;
    bool reported_dropped = false;
    pe_id root_pe = 0;
  };

  struct RootEntry {
    std::vector<pe_id> members;
    // Signed: drop/revive AMs from one PE may be reordered by task
    // scheduling at the root, so the count can transiently go negative;
    // only the two-phase check authorizes destruction.
    std::int64_t live_pes = 0;
    std::uint64_t epoch = 0;
    bool checking = false;
    std::size_t check_replies = 0;
    bool check_ok = true;
    std::uint64_t check_epoch = 0;
  };

  // Deferred sends are performed after the lock is released.
  enum class Act { kDrop, kRevive, kCheckBroadcast, kDestroyBroadcast, kAck };
  struct Action {
    Act kind;
    darc_id id;
    pe_id target = 0;
    std::uint64_t epoch = 0;
    std::vector<pe_id> targets;
  };

  void perform(const Action& action);
  void maybe_start_check(darc_id id, RootEntry& root,
                         std::vector<Action>& actions);

  AmEngine& engine_;
  mutable std::mutex mu_;
  std::unordered_map<darc_id, LocalEntry> entries_;
  std::unordered_map<darc_id, RootEntry> roots_;
};

/// The user-facing distributed smart pointer.  Inner mutability is the
/// user's responsibility exactly as in the paper: wrap the pointee's mutable
/// state in std::mutex / std::atomic members (the analogue of Mutex/RwLock/
/// atomics behind an Arc in Rust).
template <typename T>
class Darc {
 public:
  Darc() = default;

  /// Used by World::new_darc after collective installation.
  Darc(DarcManager* mgr, darc_id id, T* ptr)
      : mgr_(mgr), id_(id), ptr_(ptr) {}

  Darc(const Darc& other)
      : mgr_(other.mgr_), id_(other.id_), ptr_(other.ptr_) {
    if (mgr_ != nullptr) mgr_->add_ref(id_);
  }

  Darc& operator=(const Darc& other) {
    if (this != &other) {
      reset();
      mgr_ = other.mgr_;
      id_ = other.id_;
      ptr_ = other.ptr_;
      if (mgr_ != nullptr) mgr_->add_ref(id_);
    }
    return *this;
  }

  Darc(Darc&& other) noexcept
      : mgr_(other.mgr_), id_(other.id_), ptr_(other.ptr_) {
    other.mgr_ = nullptr;
    other.ptr_ = nullptr;
  }

  Darc& operator=(Darc&& other) noexcept {
    if (this != &other) {
      reset();
      mgr_ = other.mgr_;
      id_ = other.id_;
      ptr_ = other.ptr_;
      other.mgr_ = nullptr;
      other.ptr_ = nullptr;
    }
    return *this;
  }

  ~Darc() { reset(); }

  [[nodiscard]] bool valid() const { return mgr_ != nullptr; }
  [[nodiscard]] darc_id id() const { return id_; }

  T* get() const { return ptr_; }
  T& operator*() const { return *ptr_; }
  T* operator->() const { return ptr_; }

  /// Symmetric serialization: writing takes an in-flight reference on the
  /// sending PE; reading adopts a reference on the receiving PE (possibly
  /// reviving it) and acks the sender.  Requires a bound world context.
  template <class Archive>
  void serialize(Archive& ar) {
    if constexpr (Archive::is_writing) {
      if (mgr_ == nullptr) throw Error("Darc: serializing an empty handle");
      mgr_->transfer_out(id_);
      ar(id_);
    } else {
      ar(id_);
      adopt_from_context();
    }
  }

 private:
  void reset() {
    if (mgr_ != nullptr) {
      mgr_->release_ref(id_);
      mgr_ = nullptr;
      ptr_ = nullptr;
    }
  }

  void adopt_from_context();

  DarcManager* mgr_ = nullptr;
  darc_id id_ = 0;
  T* ptr_ = nullptr;
};

/// Internal: resolve the deserialization context (defined in world.hpp to
/// break the include cycle).
DarcManager& current_darc_manager();
pe_id current_am_src();

template <typename T>
void Darc<T>::adopt_from_context() {
  mgr_ = &current_darc_manager();
  mgr_->transfer_in(id_, current_am_src());
  ptr_ = static_cast<T*>(mgr_->instance(id_).get());
}

}  // namespace lamellar
