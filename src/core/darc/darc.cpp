#include "core/darc/darc.hpp"

#include "core/am/am_engine.hpp"
#include "core/world/world.hpp"

namespace lamellar {

// ---- internal protocol AMs ------------------------------------------------

namespace darc_protocol {

struct DropAm {
  static constexpr bool kRuntimeInternal = true;
  darc_id id = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(id);
  }
  void exec(AmContext& ctx) { ctx.world().darc_manager().on_drop(id); }
};

struct ReviveAm {
  static constexpr bool kRuntimeInternal = true;
  darc_id id = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(id);
  }
  void exec(AmContext& ctx) { ctx.world().darc_manager().on_revive(id); }
};

struct CheckAm {
  static constexpr bool kRuntimeInternal = true;
  darc_id id = 0;
  std::uint64_t epoch = 0;
  pe_id root = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(id, epoch, root);
  }
  void exec(AmContext& ctx) {
    ctx.world().darc_manager().on_check(id, epoch, root);
  }
};

struct CheckReplyAm {
  static constexpr bool kRuntimeInternal = true;
  darc_id id = 0;
  std::uint64_t epoch = 0;
  bool ok = false;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(id, epoch, ok);
  }
  void exec(AmContext& ctx) {
    ctx.world().darc_manager().on_check_reply(id, epoch, ok);
  }
};

struct DestroyAm {
  static constexpr bool kRuntimeInternal = true;
  darc_id id = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(id);
  }
  void exec(AmContext& ctx) { ctx.world().darc_manager().on_destroy(id); }
};

struct TransferAckAm {
  static constexpr bool kRuntimeInternal = true;
  darc_id id = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(id);
  }
  void exec(AmContext& ctx) { ctx.world().darc_manager().on_transfer_ack(id); }
};

}  // namespace darc_protocol

}  // namespace lamellar

LAMELLAR_REGISTER_AM(lamellar::darc_protocol::DropAm);
LAMELLAR_REGISTER_AM(lamellar::darc_protocol::ReviveAm);
LAMELLAR_REGISTER_AM(lamellar::darc_protocol::CheckAm);
LAMELLAR_REGISTER_AM(lamellar::darc_protocol::CheckReplyAm);
LAMELLAR_REGISTER_AM(lamellar::darc_protocol::DestroyAm);
LAMELLAR_REGISTER_AM(lamellar::darc_protocol::TransferAckAm);

namespace lamellar {

// ---- DarcManager -----------------------------------------------------------

void DarcManager::install(darc_id id, std::shared_ptr<void> instance,
                          pe_id root_pe) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = entries_.try_emplace(id);
  if (!inserted) throw Error("DarcManager: duplicate install");
  it->second.instance = std::move(instance);
  it->second.handle_count = 1;
  it->second.root_pe = root_pe;
}

void DarcManager::install_root(darc_id id, std::vector<pe_id> member_pes) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = roots_.try_emplace(id);
  if (!inserted) throw Error("DarcManager: duplicate root install");
  it->second.live_pes = static_cast<std::int64_t>(member_pes.size());
  it->second.members = std::move(member_pes);
}

std::shared_ptr<void> DarcManager::instance(darc_id id) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw Error("DarcManager: unknown darc " + std::to_string(id) +
                " (sent to a PE outside its team, or already destroyed?)");
  }
  return it->second.instance;
}

void DarcManager::add_ref(darc_id id) {
  std::vector<Action> actions;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) throw Error("DarcManager: add_ref unknown darc");
    LocalEntry& e = it->second;
    if (e.handle_count++ == 0 && e.reported_dropped) {
      e.reported_dropped = false;
      actions.push_back(Action{Act::kRevive, id, e.root_pe, 0, {}});
    }
  }
  for (const auto& a : actions) perform(a);
}

void DarcManager::release_ref(darc_id id) {
  std::vector<Action> actions;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      throw Error("DarcManager: release_ref unknown darc");
    }
    LocalEntry& e = it->second;
    if (e.handle_count == 0) throw Error("DarcManager: ref underflow");
    if (--e.handle_count == 0 && !e.reported_dropped) {
      e.reported_dropped = true;
      actions.push_back(Action{Act::kDrop, id, e.root_pe, 0, {}});
    }
  }
  for (const auto& a : actions) perform(a);
}

void DarcManager::transfer_out(darc_id id) {
  // The serialized handle exists, so handle_count >= 1: a plain increment.
  add_ref(id);
}

void DarcManager::transfer_in(darc_id id, pe_id from) {
  add_ref(id);
  perform(Action{Act::kAck, id, from, 0, {}});
}

void DarcManager::on_drop(darc_id id) {
  std::vector<Action> actions;
  {
    std::lock_guard lock(mu_);
    auto it = roots_.find(id);
    if (it == roots_.end()) throw Error("DarcManager: drop at non-root");
    RootEntry& root = it->second;
    --root.live_pes;
    maybe_start_check(id, root, actions);
  }
  for (const auto& a : actions) perform(a);
}

void DarcManager::on_revive(darc_id id) {
  std::lock_guard lock(mu_);
  auto it = roots_.find(id);
  if (it == roots_.end()) throw Error("DarcManager: revive at non-root");
  RootEntry& root = it->second;
  ++root.live_pes;
  ++root.epoch;  // invalidates any in-flight check
}

void DarcManager::on_check(darc_id id, std::uint64_t epoch, pe_id root) {
  bool ok = false;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(id);
    ok = it != entries_.end() && it->second.handle_count == 0;
  }
  auto& world = *engine_.world();
  world.exec_am_pe(root, darc_protocol::CheckReplyAm{id, epoch, ok});
}

void DarcManager::on_check_reply(darc_id id, std::uint64_t epoch, bool ok) {
  std::vector<Action> actions;
  {
    std::lock_guard lock(mu_);
    auto it = roots_.find(id);
    if (it == roots_.end()) throw Error("DarcManager: check reply at non-root");
    RootEntry& root = it->second;
    if (!root.checking || epoch != root.check_epoch) return;  // stale
    root.check_ok = root.check_ok && ok;
    if (++root.check_replies == root.members.size()) {
      root.checking = false;
      if (root.check_ok && root.live_pes == 0 && root.epoch == epoch) {
        actions.push_back(
            Action{Act::kDestroyBroadcast, id, 0, 0, root.members});
        roots_.erase(it);
      }
      // On failure a revive is in flight (the only way a member can hold a
      // reference while live_pes == 0): the revive will raise live_pes, and
      // the next drop restarts the check.  No retry here.
    }
  }
  for (const auto& a : actions) perform(a);
}

void DarcManager::on_destroy(darc_id id) {
  std::shared_ptr<void> doomed;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) throw Error("DarcManager: destroy unknown darc");
    if (it->second.handle_count != 0) {
      throw Error("DarcManager: destroy with live local references");
    }
    doomed = std::move(it->second.instance);
    entries_.erase(it);
  }
  // `doomed` runs the pointee destructor here, outside the lock.
}

void DarcManager::on_transfer_ack(darc_id id) { release_ref(id); }

void DarcManager::maybe_start_check(darc_id id, RootEntry& root,
                                    std::vector<Action>& actions) {
  if (root.live_pes != 0 || root.checking) return;
  root.checking = true;
  root.check_replies = 0;
  root.check_ok = true;
  root.check_epoch = root.epoch;
  actions.push_back(
      Action{Act::kCheckBroadcast, id, 0, root.epoch, root.members});
}

void DarcManager::perform(const Action& action) {
  World& world = *engine_.world();
  const pe_id me = world.my_pe();
  switch (action.kind) {
    case Act::kDrop:
      world.exec_am_pe(action.target, darc_protocol::DropAm{action.id});
      break;
    case Act::kRevive:
      world.exec_am_pe(action.target, darc_protocol::ReviveAm{action.id});
      break;
    case Act::kAck:
      world.exec_am_pe(action.target,
                       darc_protocol::TransferAckAm{action.id});
      break;
    case Act::kCheckBroadcast:
      for (pe_id pe : action.targets) {
        world.exec_am_pe(pe,
                         darc_protocol::CheckAm{action.id, action.epoch, me});
      }
      break;
    case Act::kDestroyBroadcast:
      for (pe_id pe : action.targets) {
        world.exec_am_pe(pe, darc_protocol::DestroyAm{action.id});
      }
      break;
  }
}

std::size_t DarcManager::live_entries() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

std::uint64_t DarcManager::local_refs(darc_id id) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(id);
  return it == entries_.end() ? 0 : it->second.handle_count;
}

bool DarcManager::has(darc_id id) const {
  std::lock_guard lock(mu_);
  return entries_.contains(id);
}

}  // namespace lamellar
