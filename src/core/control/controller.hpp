// Adaptive aggregation control (DESIGN.md §14).
//
// Closes the loop from the observability layer back into the hot path: a
// lightweight periodic tick reads the command queue's flush-cause counters
// and lane-age histogram and online-tunes the aggregation flush threshold,
// while lanes whose oldest staged record has exceeded the age budget are
// partially flushed so trickle traffic never waits for a full buffer.
//
// Split in two so the control law is testable without a runtime:
//  * AdaptiveController — the pure decision function.  Fed per-interval
//    sensor deltas (ControlSignals), it hill-climbs the threshold within
//    [min,max] by multiplicative steps, with a hysteresis dead band around
//    the latency budget so the two pressures (throughput wants big buffers,
//    latency wants small ones) cannot make it oscillate.
//  * ControlLoop — the runtime harness: samples the real cmdq.* metrics,
//    derives interval deltas, actuates OutgoingQueues::set_flush_threshold
//    and flush_aged(), and publishes its own ctl.* metrics.  maybe_tick()
//    is safe to call from any runtime thread at any rate; it self-gates on
//    the tick interval and on a single-ticker flag.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"
#include "lamellae/cmd_queue.hpp"
#include "lamellae/lamellae.hpp"
#include "obs/metrics.hpp"

namespace lamellar::control {

/// Per-interval sensor deltas the control law consumes.  All counts are
/// deltas over one tick interval, not cumulative totals.
struct ControlSignals {
  std::uint64_t flush_threshold = 0;  ///< buffers that departed full
  std::uint64_t flush_age = 0;        ///< age-triggered partial flushes
  std::uint64_t flush_other = 0;      ///< explicit flushes + large bypass
  std::uint64_t lane_age_p99_ns = 0;  ///< interval p99 lane residency
};

struct ControlBounds {
  std::size_t min_bytes = 4 * 1024;
  std::size_t max_bytes = std::size_t{1024} * 1024;
  std::uint64_t age_budget_ns = 2'000'000;
  /// Dead-band fraction around the age budget: the controller only reacts
  /// to p99 lane age outside [budget*(1-h), budget*(1+h)].
  double hysteresis = 0.25;
};

/// The pure control law: bounded multiplicative hill-climbing with a
/// hysteresis dead band.
///
/// Signals and their meaning:
///  * a high share of age-triggered flushes, or interval p99 lane age above
///    the budget's upper band, means the threshold is too large for the
///    offered load — buffers are not filling inside the latency budget, so
///    records pay lane residency for nothing.  Step down (halve).
///  * a high share of threshold-caused departures *with* p99 lane age below
///    the budget's lower band means buffers fill quickly and there is
///    latency headroom — larger buffers would amortize more per-buffer cost.
///    Step up (double).
///  * anything else (mixed causes, in-band latency, or an idle interval
///    with no departures at all) holds.
///
/// Stability: the step is bounded (one doubling/halving per tick), the dead
/// band keeps the two triggers from firing on the same observation, and the
/// sensor is monotone in the threshold (a larger threshold can only raise
/// lane ages and the age-flush share), so the walk converges to the
/// equilibrium threshold ~ fill_rate * age_budget and then holds.
class AdaptiveController {
 public:
  enum class Decision { kHold, kUp, kDown };

  AdaptiveController(std::size_t initial, ControlBounds bounds);

  /// Feed one interval's sensor deltas; returns the decision taken and
  /// updates threshold() accordingly.
  Decision tick(const ControlSignals& s);

  [[nodiscard]] std::size_t threshold() const { return threshold_; }
  [[nodiscard]] const ControlBounds& bounds() const { return bounds_; }

 private:
  ControlBounds bounds_;
  std::size_t threshold_;
};

/// Metrics-backed runtime harness around AdaptiveController, one per PE
/// (owned by the AmEngine).  Not copyable; handles are resolved once.
class ControlLoop {
 public:
  /// `progress` must drain the owner's inbox (it is passed through to
  /// flush_aged's transmit retry loop).
  ControlLoop(OutgoingQueues& outgoing, Lamellae& lamellae,
              const RuntimeConfig& cfg, OutgoingQueues::ProgressFn progress);

  ControlLoop(const ControlLoop&) = delete;
  ControlLoop& operator=(const ControlLoop&) = delete;

  /// Cheap gate, callable from any thread on both the send path and the
  /// idle path: returns immediately unless the tick interval has elapsed
  /// and no other thread is mid-tick.
  void maybe_tick();

  [[nodiscard]] std::size_t threshold() const {
    return outgoing_.flush_threshold();
  }

 private:
  void tick(sim_nanos now);

  /// Interval p99 of cmdq.lane_age_ns: snapshot the histogram's buckets,
  /// subtract the previous tick's copy, interpolate.
  std::uint64_t interval_age_p99();

  OutgoingQueues& outgoing_;
  Lamellae& lamellae_;
  OutgoingQueues::ProgressFn progress_;
  AdaptiveController ctl_;
  sim_nanos interval_ns_;
  sim_nanos age_budget_ns_;
  /// False under LAMELLAR_METRICS=off, where every metric name resolves to
  /// a shared inert slot: the tick then only age-flushes and never tunes.
  bool sensors_live_;

  // Sensors (the cmd queue's own instruments).
  obs::Counter* flush_threshold_;
  obs::Counter* flush_explicit_;
  obs::Counter* flush_age_;
  obs::Counter* bypass_large_;
  obs::Histogram* lane_age_;

  // Outputs.
  obs::Gauge* threshold_gauge_;   // ctl.threshold
  obs::Counter* adjustments_;     // ctl.adjustments
  obs::Counter* ticks_;           // ctl.ticks

  // Previous-tick sensor state for interval deltas.
  std::uint64_t prev_flush_threshold_ = 0;
  std::uint64_t prev_flush_explicit_ = 0;
  std::uint64_t prev_flush_age_ = 0;
  std::uint64_t prev_bypass_large_ = 0;
  std::array<std::uint64_t, obs::Histogram::kBuckets> prev_age_buckets_{};
  std::uint64_t prev_age_count_ = 0;
  std::uint64_t prev_age_sum_ = 0;

  std::atomic<sim_nanos> next_tick_{0};
  std::atomic<bool> ticking_{false};
};

}  // namespace lamellar::control
