#include "core/control/controller.hpp"

#include <algorithm>

namespace lamellar::control {

AdaptiveController::AdaptiveController(std::size_t initial,
                                       ControlBounds bounds)
    : bounds_(bounds),
      threshold_(std::clamp(initial, bounds.min_bytes, bounds.max_bytes)) {}

AdaptiveController::Decision AdaptiveController::tick(
    const ControlSignals& s) {
  const std::uint64_t departures =
      s.flush_threshold + s.flush_age + s.flush_other;
  // An idle interval carries no information about the threshold; holding
  // (rather than decaying) keeps bursty workloads from re-learning from
  // scratch after every gap.
  if (departures == 0) return Decision::kHold;

  const double budget = static_cast<double>(bounds_.age_budget_ns);
  const double age_hi = budget * (1.0 + bounds_.hysteresis);
  const double age_lo = budget * (1.0 - bounds_.hysteresis);
  const auto p99 = static_cast<double>(s.lane_age_p99_ns);
  const double age_share =
      static_cast<double>(s.flush_age) / static_cast<double>(departures);
  const double full_share = static_cast<double>(s.flush_threshold) /
                            static_cast<double>(departures);

  std::size_t next = threshold_;
  Decision d = Decision::kHold;
  if (p99 > age_hi || age_share > 0.5) {
    // Latency pressure: buffers are not filling inside the budget.
    next = std::max(bounds_.min_bytes, threshold_ / 2);
    d = Decision::kDown;
  } else if (full_share > 0.5 && p99 < age_lo && 2.0 * p99 < age_hi) {
    // Occupancy pressure with latency headroom: amortize more per buffer.
    // Fill time scales ~linearly with the threshold, so doubling projects
    // p99 -> 2*p99; stepping only when that projection stays inside the
    // band keeps the walk from overshooting into an immediate step-down
    // (a 64k<->128k limit cycle around a ~100k equilibrium otherwise).
    next = std::min(bounds_.max_bytes, threshold_ * 2);
    d = Decision::kUp;
  }
  if (next == threshold_) return Decision::kHold;
  threshold_ = next;
  return d;
}

ControlLoop::ControlLoop(OutgoingQueues& outgoing, Lamellae& lamellae,
                         const RuntimeConfig& cfg,
                         OutgoingQueues::ProgressFn progress)
    : outgoing_(outgoing),
      lamellae_(lamellae),
      progress_(std::move(progress)),
      ctl_(outgoing.flush_threshold(),
           ControlBounds{cfg.adapt_min_bytes, cfg.adapt_max_bytes,
                         cfg.adapt_age_budget_us * 1000, 0.25}),
      interval_ns_(cfg.adapt_interval_us * 1000),
      age_budget_ns_(cfg.adapt_age_budget_us * 1000),
      sensors_live_(lamellae.metrics().enabled()) {
  obs::MetricsRegistry& reg = lamellae.metrics();
  flush_threshold_ = &reg.counter("cmdq.flush_threshold");
  flush_explicit_ = &reg.counter("cmdq.flush_explicit");
  flush_age_ = &reg.counter("cmdq.flush_age");
  bypass_large_ = &reg.counter("cmdq.bypass_large");
  lane_age_ = &reg.histogram("cmdq.lane_age_ns");
  threshold_gauge_ = &reg.gauge("ctl.threshold");
  adjustments_ = &reg.counter("ctl.adjustments");
  ticks_ = &reg.counter("ctl.ticks");
  // The controller's clamped start may differ from the configured
  // threshold; make the queue and the gauge agree with it from t=0.
  outgoing_.set_flush_threshold(ctl_.threshold());
  threshold_gauge_->set(static_cast<std::int64_t>(ctl_.threshold()));
}

void ControlLoop::maybe_tick() {
  const sim_nanos now = lamellae_.mono_now();
  if (now < next_tick_.load(std::memory_order_relaxed)) return;
  // Single ticker: whoever wins the flag runs the tick, everyone else
  // returns to useful work immediately.
  if (ticking_.exchange(true, std::memory_order_acquire)) return;
  if (now >= next_tick_.load(std::memory_order_relaxed)) {
    tick(now);
    next_tick_.store(now + interval_ns_, std::memory_order_relaxed);
  }
  ticking_.store(false, std::memory_order_release);
}

std::uint64_t ControlLoop::interval_age_p99() {
  obs::HistogramSnapshot delta;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    const std::uint64_t cur =
        lane_age_->buckets[i].load(std::memory_order_relaxed);
    delta.buckets[i] = cur - prev_age_buckets_[i];
    prev_age_buckets_[i] = cur;
  }
  const std::uint64_t cur_count =
      lane_age_->count.load(std::memory_order_relaxed);
  const std::uint64_t cur_sum = lane_age_->sum.load(std::memory_order_relaxed);
  count = cur_count - prev_age_count_;
  sum = cur_sum - prev_age_sum_;
  prev_age_count_ = cur_count;
  prev_age_sum_ = cur_sum;
  if (count == 0) return 0;
  delta.count = count;
  delta.sum = sum;
  // The cumulative max is the only max available; it can only overestimate
  // the interval max, and percentile() merely clamps against it, so the
  // interval p99 stays within its log2 bucket either way.
  delta.max = lane_age_->max_value.load(std::memory_order_relaxed);
  return delta.percentile(0.99);
}

void ControlLoop::tick(sim_nanos now) {
  ticks_->inc();
  // Actuate the age deadline first so this interval's trickle lanes depart
  // (and show up as flush_age signal for the *next* decision).
  outgoing_.flush_aged(now, age_budget_ns_, progress_);

  // LAMELLAR_METRICS=off resolves every name to one shared inert slot, so
  // the "sensors" would alias each other and read garbage.  Age flushing
  // above is functional either way; only the threshold tuning needs real
  // instruments.
  if (!sensors_live_) return;

  ControlSignals s;
  const std::uint64_t ft = flush_threshold_->get();
  const std::uint64_t fe = flush_explicit_->get();
  const std::uint64_t fa = flush_age_->get();
  const std::uint64_t bl = bypass_large_->get();
  s.flush_threshold = ft - prev_flush_threshold_;
  s.flush_age = fa - prev_flush_age_;
  s.flush_other = (fe - prev_flush_explicit_) + (bl - prev_bypass_large_);
  prev_flush_threshold_ = ft;
  prev_flush_explicit_ = fe;
  prev_flush_age_ = fa;
  prev_bypass_large_ = bl;
  s.lane_age_p99_ns = interval_age_p99();

  if (ctl_.tick(s) != AdaptiveController::Decision::kHold) {
    outgoing_.set_flush_threshold(ctl_.threshold());
    threshold_gauge_->set(static_cast<std::int64_t>(ctl_.threshold()));
    adjustments_->inc();
  }
}

}  // namespace lamellar::control
