// Umbrella header: the lamellar public API.
//
// The C++ analogue of the Rust crate's prelude modules:
//   use lamellar::active_messaging::prelude::*;
//   use lamellar::array::prelude::*;
#pragma once

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/am/am_engine.hpp"
#include "core/array/arrays.hpp"
#include "core/darc/darc.hpp"
#include "core/memregion/onesided_region.hpp"
#include "core/memregion/shared_region.hpp"
#include "core/world/world.hpp"
