#!/usr/bin/env python3
"""Summarize serving runs from lamellar telemetry / bench output.

Two input kinds, freely mixed on stdin or in the given files (one JSON
object per line, non-JSON lines ignored):

* telemetry JSONL — the time series written by
  LAMELLAR_METRICS_INTERVAL_MS / LAMELLAR_METRICS_FILE (lines tagged
  "telemetry": "lamellar").  Reported as a per-tick control-plane view:
  AM send rate, flush-cause mix, the adaptive controller's threshold
  trajectory (ctl.threshold gauge), adjustments, and backpressure stalls.

* bench_serving rows — the one-line JSON rows bench_serving prints (lines
  tagged "bench": "serving", the same rows committed as BENCH_pr10.json).
  Reported as an A/B table per shape, with the adaptive configs compared
  against the best and worst static threshold.

Usage:
    tools/serving_report.py [telemetry.jsonl ...]      # files or stdin
    tools/serving_report.py --check BENCH_pr10.json    # CI validation mode

--check validates the committed serving artifact: every row verified, all
requests completed, and on every shape adapt-full within 10% of the best
static config's achieved throughput while beating the worst static config's
service p99 (the properties CI enforces).
"""

import json
import sys
from collections import defaultdict


def load_lines(paths):
    rows = []
    streams = [open(p) for p in paths] if paths else [sys.stdin]
    for stream in streams:
        for line in stream:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    for stream in streams:
        if stream is not sys.stdin:
            stream.close()
    return rows


# ---- telemetry time series -------------------------------------------------


def report_telemetry(lines):
    by_tick = defaultdict(list)
    for ln in lines:
        by_tick[ln.get("tick", 0)].append(ln)
    if not by_tick:
        return
    print("# control-plane time series "
          f"({len(by_tick)} ticks, {len(lines)} pe-samples)")
    hdr = (f"{'tick':>5} {'ms':>8} {'sent/tick':>10} {'thresh-fl':>10} "
           f"{'age-fl':>7} {'expl-fl':>8} {'ctl.thresh':>11} {'adj':>4} "
           f"{'stalls':>7} {'coop_yld':>9}")
    print(hdr)
    for tick in sorted(by_tick):
        pes = by_tick[tick]
        ms = max(p.get("elapsed_ms", 0) for p in pes)

        def csum(name):
            return sum(p.get("counters", {}).get(name, 0) for p in pes)

        def gmax(name):
            # Gauge values are exported as [level, high-water] pairs.
            def level(g):
                return g[0] if isinstance(g, list) else g
            return max(
                (level(p.get("gauges", {}).get(name, [0, 0])) for p in pes),
                default=0)

        sent = csum("am.sent_remote") + csum("am.sent_local")
        print(f"{tick:>5} {ms:>8} {sent:>10} "
              f"{csum('cmdq.flush_threshold'):>10} "
              f"{csum('cmdq.flush_age'):>7} "
              f"{csum('cmdq.flush_explicit'):>8} "
              f"{gmax('ctl.threshold'):>11} "
              f"{csum('ctl.adjustments'):>4} "
              f"{csum('ctl.backpressure_stalls'):>7} "
              f"{csum('sched.coop_yields'):>9}")
    print()


# ---- bench_serving A/B rows ------------------------------------------------


def static_rows(rows):
    return [r for r in rows if r["config"].startswith("static-")]


def report_serving(rows):
    by_shape = defaultdict(list)
    for r in rows:
        by_shape[r["shape"]].append(r)
    for shape in sorted(by_shape):
        shaped = by_shape[shape]
        print(f"# shape: {shape}  (offered {shaped[0]['offered_rps']:.0f}"
              " req/s)")
        print(f"{'config':<14} {'achieved/s':>11} {'svc_p99us':>10} "
              f"{'arr_p99us':>10} {'adj':>5} {'stalls':>7} {'ok':>3}")
        for r in shaped:
            print(f"{r['config']:<14} {r['achieved_rps']:>11.0f} "
                  f"{r['service_us']['p99']:>10.1f} "
                  f"{r['arrival_us']['p99']:>10.1f} "
                  f"{r['ctl_adjustments']:>5} "
                  f"{r['backpressure_stalls']:>7} "
                  f"{'yes' if r['verified'] else 'NO':>3}")
        statics = static_rows(shaped)
        adaptive = [r for r in shaped if r["config"].startswith("adapt-")]
        if statics and adaptive:
            best = max(statics, key=lambda r: r["achieved_rps"])
            worst_p99 = max(r["service_us"]["p99"] for r in statics)
            for r in adaptive:
                ratio = r["achieved_rps"] / max(1.0, best["achieved_rps"])
                p99_gain = worst_p99 / max(0.1, r["service_us"]["p99"])
                print(f"  {r['config']}: {ratio:.2f}x best-static "
                      f"({best['config']}) throughput, "
                      f"{p99_gain:.1f}x lower svc p99 than worst static")
        print()


def check_serving(rows):
    """CI validation of the committed BENCH_pr10.json properties."""
    failures = []
    by_shape = defaultdict(list)
    for r in rows:
        if not r.get("verified", False):
            failures.append(f"{r['shape']}/{r['config']}: not verified")
        if r.get("completed") != r.get("requests"):
            failures.append(f"{r['shape']}/{r['config']}: "
                            f"{r['completed']}/{r['requests']} completed")
        by_shape[r["shape"]].append(r)
    for shape, shaped in sorted(by_shape.items()):
        statics = static_rows(shaped)
        full = [r for r in shaped if r["config"] == "adapt-full"]
        if not statics or not full:
            failures.append(f"{shape}: missing static or adapt-full rows")
            continue
        best = max(r["achieved_rps"] for r in statics)
        worst_p99 = max(r["service_us"]["p99"] for r in statics)
        f = full[0]
        if f["achieved_rps"] < 0.9 * best:
            failures.append(
                f"{shape}: adapt-full {f['achieved_rps']:.0f} req/s < "
                f"0.9x best static {best:.0f}")
        if f["service_us"]["p99"] > worst_p99:
            failures.append(
                f"{shape}: adapt-full svc p99 {f['service_us']['p99']:.1f}us "
                f"worse than worst static {worst_p99:.1f}us")
        if f["ctl_adjustments"] == 0:
            failures.append(f"{shape}: adapt-full made no adjustments")
    for msg in failures:
        print(f"CHECK FAIL: {msg}", file=sys.stderr)
    return not failures


def main(argv):
    check = "--check" in argv
    paths = [a for a in argv[1:] if not a.startswith("--")]
    lines = load_lines(paths)
    serving = [r for r in lines if r.get("bench") == "serving"]
    telemetry = [r for r in lines if r.get("telemetry") == "lamellar"]
    if check:
        if not serving:
            print("CHECK FAIL: no serving rows found", file=sys.stderr)
            return 1
        return 0 if check_serving(serving) else 1
    if not serving and not telemetry:
        print("no telemetry or serving rows found", file=sys.stderr)
        return 1
    report_telemetry(telemetry)
    report_serving(serving)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
