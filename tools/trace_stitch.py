#!/usr/bin/env python3
"""Merge per-PE Chrome trace files and verify causal AM flow chains.

The runtime (LAMELLAR_TRACE_PER_PE=1) writes one Chrome trace_event JSON
file per PE.  Each trace-sampled active message emits a flow chain whose id
is the span id (origin PE in the top 16 bits over the origin request id):

    am_send ('s', origin PE)      span opened at injection
    am_flush ('t', origin PE)     aggregation buffer departed the lane
    am_recv ('t', executing PE)   record arrived; args.v = flight ns
    am_exec ('t', executing PE)   exec() finished; args.v = exec ns
    am_complete ('f', origin PE)  reply consumed; args.v = reply->complete ns

This tool merges the files into one Perfetto-loadable timeline, verifies
every chain is complete and causally ordered (timestamps are only compared
within a single PE: per-PE virtual clocks are not globally ordered), and
prints a per-stage latency breakdown (count / mean / p50 / p90 / p99) from
the stage latencies carried in the flow events' args.

Exit status: 0 when --verify passes (or is not requested), 1 on any orphan
or out-of-order chain, 2 on usage/input errors.
"""

import argparse
import json
import sys

# Flow-event name -> (expected phase, human-readable stage).
STAGES = {
    "am_send": ("s", "send (span open)"),
    "am_flush": ("t", "inject->flush"),
    "am_recv": ("t", "flight"),
    "am_exec": ("t", "exec"),
    "am_complete": ("f", "reply->complete"),
}
CHAIN_ORDER = ["am_send", "am_flush", "am_recv", "am_exec", "am_complete"]

# Stages whose args.v is a latency worth tabulating (am_send carries the
# request id, not a latency).
LATENCY_STAGES = ["am_flush", "am_recv", "am_exec", "am_complete"]


def load_events(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"trace_stitch: cannot read {path}: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        sys.exit(f"trace_stitch: {path} has no traceEvents array")
    return events


def span_origin(span_id):
    return span_id >> 48


def percentile(sorted_vals, p):
    """Nearest-rank percentile of a non-empty sorted list."""
    rank = max(1, int(p * len(sorted_vals) + 0.999999))
    return sorted_vals[min(rank, len(sorted_vals)) - 1]


def verify_chains(flow_events):
    """Group flow events by id and check completeness + causal order.

    Returns (num_chains, errors) where errors is a list of strings.
    """
    chains = {}
    for e in flow_events:
        chains.setdefault(e["id"], []).append(e)

    errors = []
    for span_id, events in sorted(chains.items()):
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)

        for name in CHAIN_ORDER:
            got = len(by_name.get(name, []))
            if got != 1:
                errors.append(
                    f"span {span_id:#x}: expected 1 {name} event, got {got}"
                )
        if any(n not in STAGES for n in by_name):
            extra = [n for n in by_name if n not in STAGES]
            errors.append(f"span {span_id:#x}: unknown flow events {extra}")
        if any(len(by_name.get(n, [])) != 1 for n in CHAIN_ORDER):
            continue  # structural errors already recorded; skip ordering

        send = by_name["am_send"][0]
        flush = by_name["am_flush"][0]
        recv = by_name["am_recv"][0]
        execd = by_name["am_exec"][0]
        comp = by_name["am_complete"][0]

        for e, ph in ((send, "s"), (comp, "f")):
            if e["ph"] != ph:
                errors.append(
                    f"span {span_id:#x}: {e['name']} has phase {e['ph']!r},"
                    f" expected {ph!r}"
                )

        origin = span_origin(span_id)
        # Origin-side events must be stamped with the origin PE; the
        # executing PE is whatever recv/exec agree on.
        for e in (send, flush, comp):
            if e["pid"] != origin:
                errors.append(
                    f"span {span_id:#x}: {e['name']} on PE {e['pid']},"
                    f" expected origin PE {origin}"
                )
        if recv["pid"] != execd["pid"]:
            errors.append(
                f"span {span_id:#x}: am_recv on PE {recv['pid']} but"
                f" am_exec on PE {execd['pid']}"
            )

        # Causal order, compared only within one PE's clock domain.
        if send["ts"] > flush["ts"]:
            errors.append(
                f"span {span_id:#x}: am_send at {send['ts']} after"
                f" am_flush at {flush['ts']} (origin PE)"
            )
        if recv["ts"] > execd["ts"]:
            errors.append(
                f"span {span_id:#x}: am_recv at {recv['ts']} after"
                f" am_exec at {execd['ts']} (executing PE)"
            )
        if flush["ts"] > comp["ts"]:
            errors.append(
                f"span {span_id:#x}: am_flush at {flush['ts']} after"
                f" am_complete at {comp['ts']} (origin PE)"
            )
    return len(chains), errors


def latency_table(flow_events):
    rows = []
    for name in LATENCY_STAGES:
        vals = sorted(
            e.get("args", {}).get("v", 0)
            for e in flow_events
            if e["name"] == name
        )
        if not vals:
            continue
        rows.append(
            (
                STAGES[name][1],
                len(vals),
                sum(vals) / len(vals),
                percentile(vals, 0.50),
                percentile(vals, 0.90),
                percentile(vals, 0.99),
            )
        )
    return rows


def print_table(rows, out=sys.stdout):
    hdr = f"{'stage':<18}{'count':>8}{'mean_ns':>12}{'p50_ns':>10}" \
          f"{'p90_ns':>10}{'p99_ns':>10}"
    print(hdr, file=out)
    print("-" * len(hdr), file=out)
    for stage, count, mean, p50, p90, p99 in rows:
        print(
            f"{stage:<18}{count:>8}{mean:>12.1f}{p50:>10}{p90:>10}{p99:>10}",
            file=out,
        )


def main():
    ap = argparse.ArgumentParser(
        description="Merge per-PE Lamellar trace files; verify AM flow chains."
    )
    ap.add_argument("files", nargs="+", help="per-PE Chrome trace JSON files")
    ap.add_argument("-o", "--out", help="write the merged trace here")
    ap.add_argument(
        "--verify",
        action="store_true",
        help="fail (exit 1) on incomplete or out-of-order flow chains",
    )
    args = ap.parse_args()

    merged = []
    for path in args.files:
        merged.extend(load_events(path))

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump({"displayTimeUnit": "ns", "traceEvents": merged}, f)
        print(
            f"trace_stitch: wrote {len(merged)} events from "
            f"{len(args.files)} file(s) to {args.out}"
        )

    flow = [e for e in merged if e.get("ph") in ("s", "t", "f") and "id" in e]
    num_chains, errors = verify_chains(flow)
    print(f"trace_stitch: {num_chains} flow chain(s), {len(errors)} error(s)")

    rows = latency_table(flow)
    if rows:
        print_table(rows)

    if args.verify:
        if errors:
            for msg in errors[:50]:
                print(f"trace_stitch: ERROR: {msg}", file=sys.stderr)
            if len(errors) > 50:
                print(
                    f"trace_stitch: ... {len(errors) - 50} more",
                    file=sys.stderr,
                )
            return 1
        if num_chains == 0:
            print(
                "trace_stitch: ERROR: --verify found no flow chains "
                "(was LAMELLAR_TRACE_SAMPLE set?)",
                file=sys.stderr,
            )
            return 1
        print("trace_stitch: verification passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
