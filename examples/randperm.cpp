// Randperm via dart throwing with batch_compare_exchange (paper
// Sec. IV-B3, "Array Darts"): each PE throws its values at random slots of
// a 2N AtomicArray target until they all stick, then the sticks are
// collected into the final permutation.
#include <cstdio>

#include "bale/randperm.hpp"
#include "lamellar.hpp"

using namespace lamellar;

int main() {
  run_world(4, [](World& world) {
    bale::RandpermParams p;
    p.perm_per_pe = 25'000;
    auto r = bale::randperm_kernel(world, bale::RandpermImpl::kArrayDarts, p);
    if (world.my_pe() == 0) {
      std::printf("randperm of %zu elements: %.3f ms (virtual), %s\n",
                  p.perm_per_pe * world.num_pes(),
                  static_cast<double>(r.elapsed_ns) / 1e6,
                  r.verified ? "valid permutation" : "INVALID");
    }
    world.barrier();
  });
  return 0;
}
