// IndexGather with a ReadOnlyArray (paper Sec. IV-B2): build the table as
// an UnsafeArray, convert it to ReadOnly (collective, requires the unique
// reference), then gather random elements with batch_load.
#include <cstdio>

#include "lamellar.hpp"

using namespace lamellar;

int main() {
  run_world(4, [](World& world) {
    constexpr std::size_t kTableLen = 40'000;
    constexpr std::size_t kRequests = 100'000;

    auto tmp = UnsafeArray<std::uint64_t>::create(world, kTableLen,
                                                  Distribution::kBlock);
    // Initialize table[i] = i*i locally, then freeze it.
    {
      auto local = tmp.unsafe_local_slice();
      for (std::size_t k = 0; k < local.size(); ++k) {
        const auto gi = world.my_pe() * (kTableLen / 4) + k;
        local[k] = static_cast<std::uint64_t>(gi) * gi;
      }
    }
    world.barrier();
    auto table = std::move(tmp).into_read_only();

    auto rng = pe_rng(7, world.my_pe());
    std::vector<global_index> rnd_idxs(kRequests);
    for (auto& i : rnd_idxs) i = rng.uniform(kTableLen);

    world.barrier();
    const auto t0 = world.time_ns();
    auto target = world.block_on(table.batch_load(rnd_idxs));
    world.barrier();
    const auto t1 = world.time_ns();

    std::size_t bad = 0;
    for (std::size_t k = 0; k < rnd_idxs.size(); ++k) {
      if (target[k] != rnd_idxs[k] * rnd_idxs[k]) ++bad;
    }
    std::printf("PE%zu: gathered %zu values, %zu mismatches, %.3f ms\n",
                world.my_pe(), target.size(), bad,
                static_cast<double>(t1 - t0) / 1e6);
    world.barrier();
  });
  return 0;
}
