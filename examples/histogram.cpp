// Histogram with an AtomicArray — the paper's Listing 2, line for line.
//
// Each PE generates random indices into a block-distributed table and
// applies batch_add; the runtime splits the batch by owner PE and applies
// the increments atomically owner-side.  The sum reduction verifies that no
// update was lost.
#include <cstdio>

#include "lamellar.hpp"

using namespace lamellar;

constexpr std::size_t kTableLen = 100'000;   // global length
constexpr std::size_t kUpdatesPerPe = 200'000;

int main() {
  run_world(4, [](World& world) {
    auto table = AtomicArray<std::uint64_t>::create(world, kTableLen,
                                                    Distribution::kBlock);
    table.fill(0);

    auto rng = pe_rng(/*seed=*/1, world.my_pe());
    std::vector<global_index> rnd_i(kUpdatesPerPe);
    for (auto& i : rnd_i) i = rng.uniform(kTableLen);

    world.barrier();
    const auto t0 = world.time_ns();
    world.block_on(table.batch_add(rnd_i, 1));  // the histogram kernel
    world.barrier();
    const auto t1 = world.time_ns();

    const auto sum = world.block_on(table.sum());
    if (world.my_pe() == 0) {
      std::printf("elapsed (virtual): %.3f ms\n",
                  static_cast<double>(t1 - t0) / 1e6);
      std::printf("sum=%llu expected=%llu -> %s\n",
                  static_cast<unsigned long long>(sum),
                  static_cast<unsigned long long>(kUpdatesPerPe *
                                                  world.num_pes()),
                  sum == kUpdatesPerPe * world.num_pes() ? "ok" : "MISMATCH");
    }
    world.barrier();
  });
  return 0;
}
