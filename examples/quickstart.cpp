// Quickstart — the paper's Listing 1 "Hello World", in this library's C++.
//
//   * define an active message type (the #[AmData]/#[am] macros become a
//     serialize() member + LAMELLAR_REGISTER_AM);
//   * launch it on every PE (exec_am_all) and on one PE (exec_am_pe);
//   * await with block_on (blocks only the local PE), drain with
//     wait_all(), synchronize with barrier();
//   * finalization is implicit: each PE keeps serving AMs until all PEs
//     are ready to shut down (run_world handles it).
#include <cstdio>

#include "lamellar.hpp"

using namespace lamellar;

struct HelloWorldAm {
  std::string name;

  template <class Archive>
  void serialize(Archive& ar) {
    ar(name);
  }

  void exec(AmContext& ctx) {
    std::printf("PE%zu: hello %s!\n", ctx.current_pe(), name.c_str());
  }
};

LAMELLAR_REGISTER_AM(HelloWorldAm);

int main() {
  // Listing 1's WorldBuilder::new().build() + slurm launch collapse into
  // run_world: one SPMD body per PE inside this process.
  run_world(4, [](World& world) {
    HelloWorldAm am{"World"};
    auto request = world.exec_am_all(am);  // all PEs
    world.block_on(std::move(request));    // only blocks the local PE
    world.barrier();                       // global sync

    if (world.my_pe() != 0) {
      world.exec_am_pe(0, HelloWorldAm{"World2"});  // send to PE0
      world.wait_all();  // only blocks the local PE
    }
    world.barrier();
  });
  return 0;
}
