// 1-D heat diffusion with halo exchange over SharedMemoryRegions — the
// low-level (unsafe-tier) PGAS style the paper's memory regions support:
// each PE owns a strip plus two ghost cells; neighbours push boundary
// values with RDMA puts; barriers separate the phases.
#include <cmath>
#include <cstdio>

#include "bale/common.hpp"
#include "lamellar.hpp"

using namespace lamellar;

int main() {
  constexpr std::size_t kLocal = 1'000;  // cells per PE (plus 2 ghosts)
  constexpr int kSteps = 200;
  constexpr double kAlpha = 0.25;

  run_world(4, [](World& world) {
    const std::size_t n = world.num_pes();
    const pe_id me = world.my_pe();
    auto strip = SharedMemoryRegion<double>::create(world, kLocal + 2);
    auto cur = strip.unsafe_local_slice();
    std::vector<double> next(kLocal + 2, 0.0);

    // Initial condition: a hot spike in the middle of PE 0.
    std::fill(cur.begin(), cur.end(), 0.0);
    if (me == 0) cur[kLocal / 2] = 1000.0;
    world.barrier();

    for (int step = 0; step < kSteps; ++step) {
      // Halo exchange: my first/last interior cells become the neighbours'
      // ghost cells (RDMA put into their regions).
      if (me > 0) {
        const double v = cur[1];
        strip.unsafe_put(me - 1, kLocal + 1,
                         std::span<const double>(&v, 1));
      }
      if (me + 1 < n) {
        const double v = cur[kLocal];
        strip.unsafe_put(me + 1, 0, std::span<const double>(&v, 1));
      }
      world.barrier();  // halos visible

      for (std::size_t i = 1; i <= kLocal; ++i) {
        next[i] = cur[i] + kAlpha * (cur[i - 1] - 2 * cur[i] + cur[i + 1]);
      }
      std::copy(next.begin() + 1, next.begin() + 1 + kLocal,
                cur.begin() + 1);
      world.barrier();  // everyone finished the step
    }

    // Conservation check: total heat must be preserved.
    double local_heat = 0;
    for (std::size_t i = 1; i <= kLocal; ++i) local_heat += cur[i];
    const auto total =
        lamellar::bale::global_sum_u64(world,
                                       static_cast<std::uint64_t>(
                                           std::llround(local_heat * 1e6)));
    if (me == 0) {
      std::printf("total heat after %d steps: %.6f (expected 1000)\n",
                  kSteps, static_cast<double>(total) / 1e6);
    }
    world.barrier();
  });
  return 0;
}
