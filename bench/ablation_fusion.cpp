// Ablation — lazy expression fusion (DESIGN.md §11).
//
// Sweeps chain length k ∈ {1,2,4,8}: a chain of k elementwise adds over the
// same random index set, lowered either eagerly (k awaited batch_add passes,
// each paying its own plan pass and per-lane AM) or as one fused LazyChain
// (one plan pass, one AM per destination lane carrying the whole stage
// table).  Eager and fused trials alternate within one world so both see
// identical process state; wall-clock is real time, not the virtual clock.
// Expected shape: parity at k=1 (same wire traffic, small recorder
// overhead), widening fused advantage as k grows — the fused curve pays
// ~1/k of the eager AM count.
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "lamellar.hpp"
#include "obs/report.hpp"

using namespace lamellar;

namespace {

using u64 = std::uint64_t;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  const RuntimeConfig cfg = bench::bench_config();
  const std::size_t ops = env_size("LAMELLAR_FUSION_OPS", 4096);
  const std::size_t iters = env_size("LAMELLAR_FUSION_ITERS", 24);
  constexpr std::size_t kArrLen = 1 << 16;

  std::printf(
      "# Ablation: fused lazy chains vs eager batch passes "
      "(4 PEs, %zu ops/PE/pass, %zu iters, wall time)\n",
      ops, iters);
  std::printf("%6s %14s %14s %10s\n", "k", "eager ms", "fused ms", "speedup");

  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{8}}) {
    double eager_ms = 0;
    double fused_ms = 0;
    obs::MetricsSnapshot snap;
    run_world(
        4,
        [&](World& world) {
          auto arr =
              AtomicArray<u64>::create(world, kArrLen, Distribution::kBlock);
          arr.fill(0);
          std::vector<global_index> idxs(ops);
          std::mt19937_64 rng(17 + world.my_pe());
          for (auto& i : idxs) i = rng() % kArrLen;

          auto run_eager = [&] {
            for (std::size_t s = 0; s < k; ++s) {
              world.block_on(arr.batch_add(idxs, 1));
            }
          };
          auto run_fused = [&] {
            auto chain = arr.lazy();
            for (std::size_t s = 0; s < k; ++s) chain.add(idxs, 1);
            world.block_on(chain.materialize());
          };

          // Warm both paths (arena growth, lane buffers, darc registry).
          run_eager();
          run_fused();
          world.barrier();

          // Alternate eager/fused per round so neither impl benefits from
          // cache or allocator drift; barriers bracket each timed region so
          // every PE's stream is inside the measurement.
          double local_eager = 0;
          double local_fused = 0;
          for (std::size_t it = 0; it < iters; ++it) {
            world.barrier();
            auto t0 = Clock::now();
            run_eager();
            world.barrier();
            local_eager += ms_since(t0);

            world.barrier();
            t0 = Clock::now();
            run_fused();
            world.barrier();
            local_fused += ms_since(t0);
          }
          if (world.my_pe() == 0) {
            eager_ms = local_eager;
            fused_ms = local_fused;
            snap = world.metrics_snapshot();
          }
          world.barrier();
        },
        cfg);

    std::printf("%6zu %14.2f %14.2f %9.2fx\n", k, eager_ms, fused_ms,
                eager_ms / fused_ms);
    if (cfg.metrics_mode == MetricsMode::kJson) {
      const std::string eager_name = "eager k=" + std::to_string(k);
      const std::string fused_name = "fused k=" + std::to_string(k);
      if (bench::impl_selected(eager_name.c_str())) {
        std::printf("%s\n", obs::bench_json_line("ablation_fusion", eager_name,
                                                 snap)
                                .c_str());
      }
      if (bench::impl_selected(fused_name.c_str())) {
        std::printf("%s\n", obs::bench_json_line("ablation_fusion", fused_name,
                                                 snap)
                                .c_str());
      }
    }
  }
  return 0;
}
