// Sustained-traffic serving harness (ISSUE 10): a sharded histogram/KV
// service driven by an open-loop Poisson request stream at configurable
// offered load, reporting sustained throughput plus p50/p99/p999 request
// latency per (shape, config) row.
//
// Open-loop means arrivals are scheduled by the clock, not by completions:
// latency is measured from each request's *scheduled arrival* (so a server
// that falls behind accrues queueing backlog in its tail, exactly like a
// production load generator) and, separately, from its issue time (service
// latency — bounded under overload when admission control paces issuance).
//
// Rows sweep LAMELLAR_ADAPT=off (at three static thresholds) against agg
// and full so the adaptive controller's A/B is one committed artifact
// (BENCH_pr10.json).  Runs in real time (virtual_time=false): the paper's
// virtual-time model cannot express wall-clock arrival pacing.
//
// Env knobs: LAMELLAR_SERVE_PES (default 4), LAMELLAR_SERVE_SECONDS
// (offered-load duration per row, default 1.0), LAMELLAR_SERVE_SHAPES
// (substring filter over shape names).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "lamellar.hpp"

using namespace lamellar;

namespace {

std::uint64_t real_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::size_t kMaxPes = 64;
constexpr std::size_t kTableSlots = 1 << 14;  // per-PE shard slots

// Cross-PE aggregation state for one row (PEs are threads in one process;
// bench_util pins the shmem backend).  Reset by PE 0 before each row.
struct Shard {
  std::vector<std::atomic<std::uint64_t>> slots;
  Shard() : slots(kTableSlots) {}
};
Shard* g_shards[kMaxPes];
std::uint64_t g_sent_sum[kMaxPes];
std::uint64_t g_completed[kMaxPes];
std::uint64_t g_span_ns[kMaxPes];
std::vector<std::uint64_t> g_arrival_lat[kMaxPes];
std::vector<std::uint64_t> g_service_lat[kMaxPes];
obs::MetricsSnapshot g_snap[kMaxPes];

struct ServeAm {
  std::uint64_t slot = 0;
  std::uint64_t val = 0;
  std::vector<std::uint8_t> pad;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(slot, val, pad);
  }
  std::uint64_t exec(AmContext& ctx) {
    Shard* shard = g_shards[ctx.current_pe()];
    return shard->slots[slot % kTableSlots].fetch_add(
               val, std::memory_order_relaxed) +
           val;
  }
};

struct Shape {
  const char* name;
  double load_factor;    // offered rate as a fraction of calibrated capacity
  double min_rps;        // floor on the offered rate
  std::size_t pad_bytes; // request padding (record size knob)
  double duration_scale; // fraction of LAMELLAR_SERVE_SECONDS
};

struct BenchConfig {
  const char* name;
  std::size_t agg_threshold;
  AdaptMode adapt;
};

struct Row {
  std::string shape;
  std::string config;
  double offered_rps = 0;
  double achieved_rps = 0;
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  // Microseconds; arrival_* measured from scheduled arrival (queueing
  // backlog included), service_* from issue time.
  double arrival_p50 = 0, arrival_p99 = 0, arrival_p999 = 0;
  double service_p50 = 0, service_p99 = 0, service_p999 = 0;
  std::uint64_t ctl_adjustments = 0;
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t flush_age = 0;
  std::int64_t final_threshold = 0;
  bool verified = false;
};

double pct(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return static_cast<double>(sorted[idx]) / 1000.0;  // ns -> us
}

/// One serving run: every PE is both client (open-loop Poisson generator)
/// and server (shard owner).  Returns the aggregated row.
Row run_row(const char* shape, const char* config, const RuntimeConfig& cfg,
            std::size_t npes, double offered_rps, std::size_t pad_bytes,
            double duration_s) {
  const auto n_per_pe = static_cast<std::size_t>(
      std::max(1.0, offered_rps * duration_s / static_cast<double>(npes)));
  for (std::size_t pe = 0; pe < npes; ++pe) {
    g_sent_sum[pe] = g_completed[pe] = g_span_ns[pe] = 0;
    g_arrival_lat[pe].assign(n_per_pe, 0);
    g_service_lat[pe].assign(n_per_pe, 0);
    g_snap[pe] = obs::MetricsSnapshot{};
  }
  Row row;
  row.shape = shape;
  row.config = config;
  row.offered_rps = offered_rps;
  row.requests = n_per_pe * npes;

  run_world(
      npes,
      [&](World& world) {
        const pe_id me = world.my_pe();
        Shard shard;
        g_shards[me] = &shard;
        world.barrier();

        Xoshiro256 rng = pe_rng(world.config().seed + 7, me);
        const double rate_pe =
            offered_rps / static_cast<double>(world.num_pes());
        std::atomic<std::uint64_t>* completed =
            new std::atomic<std::uint64_t>(0);
        std::uint64_t* arrival = g_arrival_lat[me].data();
        std::uint64_t* service = g_service_lat[me].data();
        std::uint64_t sent_sum = 0;

        const std::uint64_t t0 = real_ns();
        double next_arrival = 0;  // ns offset from t0
        for (std::size_t i = 0; i < n_per_pe; ++i) {
          // Pace to the schedule, helping the runtime while early.  When
          // the system has fallen behind, next_arrival is already in the
          // past and the request is issued immediately — the open-loop
          // backlog then shows up in arrival latency.
          while (static_cast<double>(real_ns() - t0) < next_arrival) {
            world.pool().try_run_one();
          }
          const auto sched = static_cast<std::uint64_t>(next_arrival);
          const std::uint64_t val = 1 + rng.uniform(16);
          sent_sum += val;
          ServeAm am;
          am.slot = rng.next();
          am.val = val;
          am.pad.assign(pad_bytes, static_cast<std::uint8_t>(i));
          const auto dst = static_cast<pe_id>(rng.uniform(world.num_pes()));
          const std::uint64_t issued = real_ns() - t0;
          world.engine().send_cb(
              dst, std::move(am),
              [=](std::uint64_t) {
                const std::uint64_t done = real_ns() - t0;
                arrival[i] = done >= sched ? done - sched : 0;
                service[i] = done >= issued ? done - issued : 0;
                completed->fetch_add(1, std::memory_order_relaxed);
              });
          // Exponential inter-arrival gap (Poisson stream).
          next_arrival +=
              -std::log1p(-rng.uniform_double()) / rate_pe * 1e9;
        }
        world.wait_all();
        g_span_ns[me] = real_ns() - t0;
        g_completed[me] = completed->load(std::memory_order_relaxed);
        g_sent_sum[me] = sent_sum;
        world.barrier();
        delete completed;

        // Conservation check: every update landed exactly once.
        std::uint64_t shard_sum = 0;
        for (const auto& s : shard.slots) {
          shard_sum += s.load(std::memory_order_relaxed);
        }
        static std::atomic<std::uint64_t> g_shard_total{0};
        if (me == 0) g_shard_total.store(0, std::memory_order_relaxed);
        world.barrier();
        g_shard_total.fetch_add(shard_sum, std::memory_order_relaxed);
        world.barrier();
        if (me == 0) {
          std::uint64_t want = 0;
          for (std::size_t pe = 0; pe < world.num_pes(); ++pe) {
            want += g_sent_sum[pe];
          }
          row.verified =
              g_shard_total.load(std::memory_order_relaxed) == want;
        }
        g_snap[me] = world.metrics_snapshot();
        world.barrier();
        g_shards[me] = nullptr;
      },
      cfg, paper_perf_params(), PeMapping{1}, /*virtual_time=*/false);

  // Aggregate (outside the world: all PE threads have exited the body).
  std::vector<std::uint64_t> all_arrival, all_service;
  std::uint64_t completed = 0, span_max = 0;
  for (std::size_t pe = 0; pe < npes; ++pe) {
    completed += g_completed[pe];
    span_max = std::max(span_max, g_span_ns[pe]);
    all_arrival.insert(all_arrival.end(), g_arrival_lat[pe].begin(),
                       g_arrival_lat[pe].end());
    all_service.insert(all_service.end(), g_service_lat[pe].begin(),
                       g_service_lat[pe].end());
    row.ctl_adjustments += g_snap[pe].counter("ctl.adjustments");
    row.backpressure_stalls += g_snap[pe].counter("ctl.backpressure_stalls");
    row.flush_age += g_snap[pe].counter("cmdq.flush_age");
    for (const auto& [name, lv] : g_snap[pe].gauges) {
      if (name == "ctl.threshold") {
        row.final_threshold = std::max(row.final_threshold, lv.first);
      }
    }
  }
  row.completed = completed;
  row.achieved_rps = span_max == 0 ? 0
                                   : static_cast<double>(completed) /
                                         (static_cast<double>(span_max) / 1e9);
  std::sort(all_arrival.begin(), all_arrival.end());
  std::sort(all_service.begin(), all_service.end());
  row.arrival_p50 = pct(all_arrival, 0.50);
  row.arrival_p99 = pct(all_arrival, 0.99);
  row.arrival_p999 = pct(all_arrival, 0.999);
  row.service_p50 = pct(all_service, 0.50);
  row.service_p99 = pct(all_service, 0.99);
  row.service_p999 = pct(all_service, 0.999);
  return row;
}

bool shape_selected(const char* name) {
  const char* want = std::getenv("LAMELLAR_SERVE_SHAPES");
  if (want == nullptr || *want == '\0') return true;
  return std::strstr(want, name) != nullptr;
}

void print_row(const Row& r) {
  std::printf("%-8s %-12s %10.0f %10.0f %8zu %9.0f %9.0f %10.0f %9.0f %6zu "
              "%8zu %9zu %10zu %s\n",
              r.shape.c_str(), r.config.c_str(), r.offered_rps,
              r.achieved_rps, static_cast<std::size_t>(r.completed),
              r.arrival_p50, r.arrival_p99, r.arrival_p999, r.service_p99,
              static_cast<std::size_t>(r.ctl_adjustments),
              static_cast<std::size_t>(r.backpressure_stalls),
              static_cast<std::size_t>(r.flush_age),
              static_cast<std::size_t>(r.final_threshold),
              r.verified ? "yes" : "NO");
  std::fflush(stdout);
}

void print_json(const Row& r, std::size_t npes) {
  std::printf(
      "{\"bench\":\"serving\",\"shape\":\"%s\",\"config\":\"%s\","
      "\"pes\":%zu,\"offered_rps\":%.0f,\"achieved_rps\":%.0f,"
      "\"requests\":%zu,\"completed\":%zu,"
      "\"arrival_us\":{\"p50\":%.1f,\"p99\":%.1f,\"p999\":%.1f},"
      "\"service_us\":{\"p50\":%.1f,\"p99\":%.1f,\"p999\":%.1f},"
      "\"ctl_adjustments\":%zu,\"backpressure_stalls\":%zu,"
      "\"flush_age\":%zu,\"final_threshold\":%zu,\"verified\":%s}\n",
      r.shape.c_str(), r.config.c_str(), npes, r.offered_rps,
      r.achieved_rps, static_cast<std::size_t>(r.requests),
      static_cast<std::size_t>(r.completed), r.arrival_p50, r.arrival_p99,
      r.arrival_p999, r.service_p50, r.service_p99, r.service_p999,
      static_cast<std::size_t>(r.ctl_adjustments),
      static_cast<std::size_t>(r.backpressure_stalls),
      static_cast<std::size_t>(r.flush_age),
      static_cast<std::size_t>(r.final_threshold),
      r.verified ? "true" : "false");
  std::fflush(stdout);
}

}  // namespace

LAMELLAR_REGISTER_AM(ServeAm);

int main() {
  const RuntimeConfig base = bench::bench_config();
  const std::size_t npes =
      std::min<std::size_t>(kMaxPes, env_size("LAMELLAR_SERVE_PES", 4));
  const double duration =
      static_cast<double>(env_u64("LAMELLAR_SERVE_SECONDS", 1));

  // Calibrate capacity with a short closed-loop blast at the default static
  // threshold, so shape rates track the host instead of hard-coding a
  // single machine's numbers.  The same absolute rates are then reused for
  // every config of a shape — a fair A/B.
  RuntimeConfig cal_cfg = base;
  cal_cfg.adapt = AdaptMode::kOff;
  cal_cfg.agg_threshold_bytes = 100 * 1024;
  std::printf("# serving: calibrating capacity (%zu PEs)...\n", npes);
  Row cal = run_row("cal", "static-100k", cal_cfg, npes,
                    /*offered_rps=*/400'000.0, /*pad_bytes=*/48,
                    /*duration_s=*/0.5);
  const double capacity = std::max(5'000.0, cal.achieved_rps);
  std::printf("# serving: calibrated capacity ~%.0f req/s\n", capacity);

  const Shape shapes[] = {
      // Moderate sustained load: headroom everywhere — the parity shape.
      {"steady", 0.55, 20'000.0, 48, 1.0},
      // Near saturation: workers rarely idle, so the idle-flush rescue
      // stops papering over oversized static buffers — the latency shape.
      {"busy", 0.90, 30'000.0, 48, 1.0},
      // Low-rate trickle: age-triggered flushes carry the latency story.
      {"trickle", 0.04, 2'000.0, 16, 1.0},
      // 2x saturation: graceful-degradation row — bounded service p99 and
      // no queue blowup under admission control.
      {"burst2x", 2.0, 40'000.0, 48, 0.5},
  };
  const BenchConfig configs[] = {
      {"static-4k", 4 * 1024, AdaptMode::kOff},
      {"static-100k", 100 * 1024, AdaptMode::kOff},
      {"static-1m", 1024 * 1024, AdaptMode::kOff},
      {"adapt-agg", 100 * 1024, AdaptMode::kAgg},
      {"adapt-full", 100 * 1024, AdaptMode::kFull},
  };

  std::printf("\n%-8s %-12s %10s %10s %8s %9s %9s %10s %9s %6s %8s %9s "
              "%10s %s\n",
              "shape", "config", "offered/s", "achieved/s", "done",
              "arr_p50us", "arr_p99us", "arr_p999us", "svc_p99us", "adj",
              "stalls", "flushage", "threshold", "ok");
  std::vector<Row> rows;
  const bool json = base.metrics_mode == MetricsMode::kJson;
  for (const Shape& shape : shapes) {
    if (!shape_selected(shape.name)) continue;
    const double rate =
        std::max(shape.min_rps, capacity * shape.load_factor);
    for (const BenchConfig& bc : configs) {
      RuntimeConfig cfg = base;
      cfg.agg_threshold_bytes = bc.agg_threshold;
      cfg.adapt = bc.adapt;
      Row row = run_row(shape.name, bc.name, cfg, npes, rate,
                        shape.pad_bytes, duration * shape.duration_scale);
      print_row(row);
      if (json) print_json(row, npes);
      rows.push_back(std::move(row));
    }
  }

  for (const Row& r : rows) {
    if (!r.verified || r.completed != r.requests) {
      std::fprintf(stderr, "serving: row %s/%s failed verification\n",
                   r.shape.c_str(), r.config.c_str());
      return 1;
    }
  }
  return 0;
}
