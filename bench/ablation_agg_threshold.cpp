// Ablation D1 — the aggregation threshold (paper Sec. IV-A: 100 KB default;
// "this test indicating 512KB - 1MB are more appropriate for our system").
// Sweeps the threshold and reports AM-path bandwidth at a mid-size message
// plus live histogram rate, both in virtual time.
//
// The whole sweep runs inside ONE world: every PE retunes its live command
// queues between points via World::set_agg_threshold (the same knob the
// adaptive controller actuates), instead of paying a full world
// start/teardown per threshold.
#include <cstdio>

#include "bale/histogram.hpp"
#include "lamellar.hpp"

using namespace lamellar;
using namespace lamellar::bale;

namespace {

struct PayloadAm {
  std::vector<std::uint8_t> data;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(data);
  }
  void exec(AmContext&) {}
};

struct Point {
  std::size_t threshold;
  double mbs;
  double mups;
};

}  // namespace

LAMELLAR_REGISTER_AM(PayloadAm);

int main() {
  const std::size_t thresholds[] = {16 * 1024,  64 * 1024,  100 * 1024,
                                    256 * 1024, 512 * 1024, 1024 * 1024};
  std::vector<Point> points;
  RuntimeConfig cfg;
  run_world(
      2,
      [&](World& world) {
        for (std::size_t threshold : thresholds) {
          // Quiesced between points (barriers + wait_all below), so the
          // retune never races staged records from the previous point.
          world.set_agg_threshold(threshold);
          const std::size_t kSize = 4096, kN = 512;
          std::vector<std::uint8_t> payload(kSize, 1);
          world.barrier();
          const sim_nanos t0 = world.time_ns();
          if (world.my_pe() == 0) {
            for (std::size_t i = 0; i < kN; ++i) {
              world.exec_am_pe(1, PayloadAm{payload});
            }
            world.wait_all();
          }
          world.barrier();
          const sim_nanos t1 = world.time_ns();
          HistogramParams p;
          p.updates_per_pe = 10'000;
          auto r = histogram_kernel(world, Backend::kLamellarAm, p);
          if (world.my_pe() == 0) {
            points.push_back(
                {threshold,
                 static_cast<double>(kSize) * kN /
                     static_cast<double>(t1 - t0) * 1000.0,
                 static_cast<double>(r.ops) * 2 /
                     static_cast<double>(r.elapsed_ns) * 1000.0});
          }
          world.barrier();
        }
      },
      cfg, paper_perf_params(), PeMapping{1});
  std::printf("# Ablation D1: aggregation threshold sweep (virtual time, "
              "one world, runtime retune)\n");
  std::printf("%12s %16s %16s\n", "threshold", "AM 4KB MB/s", "histo MUPS");
  for (const Point& pt : points) {
    std::printf("%12zu %16.1f %16.1f\n", pt.threshold, pt.mbs, pt.mups);
  }
  return 0;
}
