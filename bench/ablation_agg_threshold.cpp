// Ablation D1 — the aggregation threshold (paper Sec. IV-A: 100 KB default;
// "this test indicating 512KB - 1MB are more appropriate for our system").
// Sweeps the threshold and reports AM-path bandwidth at a mid-size message
// plus live histogram rate, both in virtual time.
#include <cstdio>

#include "bale/histogram.hpp"
#include "lamellar.hpp"

using namespace lamellar;
using namespace lamellar::bale;

namespace {

struct PayloadAm {
  std::vector<std::uint8_t> data;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(data);
  }
  void exec(AmContext&) {}
};

}  // namespace

LAMELLAR_REGISTER_AM(PayloadAm);

int main() {
  std::printf("# Ablation D1: aggregation threshold sweep (virtual time)\n");
  std::printf("%12s %16s %16s\n", "threshold", "AM 4KB MB/s", "histo MUPS");
  for (std::size_t threshold : {16ULL * 1024, 64ULL * 1024, 100ULL * 1024,
                                256ULL * 1024, 512ULL * 1024,
                                1024ULL * 1024}) {
    RuntimeConfig cfg;
    cfg.agg_threshold_bytes = threshold;
    double mbs = 0;
    double mups = 0;
    run_world(
        2,
        [&](World& world) {
          const std::size_t kSize = 4096, kN = 512;
          std::vector<std::uint8_t> payload(kSize, 1);
          world.barrier();
          const sim_nanos t0 = world.time_ns();
          if (world.my_pe() == 0) {
            for (std::size_t i = 0; i < kN; ++i) {
              world.exec_am_pe(1, PayloadAm{payload});
            }
            world.wait_all();
          }
          world.barrier();
          const sim_nanos t1 = world.time_ns();
          HistogramParams p;
          p.updates_per_pe = 10'000;
          auto r = histogram_kernel(world, Backend::kLamellarAm, p);
          if (world.my_pe() == 0) {
            mbs = static_cast<double>(kSize) * kN /
                  static_cast<double>(t1 - t0) * 1000.0;
            mups = static_cast<double>(r.ops) * 2 /
                   static_cast<double>(r.elapsed_ns) * 1000.0;
          }
          world.barrier();
        },
        cfg, paper_perf_params(), PeMapping{1});
    std::printf("%12zu %16.1f %16.1f\n", threshold, mbs, mups);
  }
  return 0;
}
