// Shared helpers for the figure benchmark drivers.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.hpp"

namespace lamellar::bench {

/// Env config for a figure bench.  The drivers collect results (rates,
/// verification, snapshots) by writing captured locals from the SPMD body,
/// which only works when PEs share the launching process — under
/// LAMELLAR_BACKEND=mmap those writes would die with the forked children
/// and every row would read 0.0/NO.  Pin the bench worlds to the in-process
/// backend and say so, rather than reporting nonsense.
inline RuntimeConfig bench_config() {
  RuntimeConfig cfg = RuntimeConfig::from_env();
  if (cfg.backend == BackendKind::kMmap) {
    std::fprintf(stderr,
                 "bench: LAMELLAR_BACKEND=mmap is not supported by the "
                 "figure drivers (results are collected in-process); "
                 "running shmem.  Use ctest -L mp or the examples/ binaries "
                 "to exercise the mmap backend.\n");
    cfg.backend = BackendKind::kShmem;
  }
  return cfg;
}

/// Backend/impl filter: LAMELLAR_FIG_IMPL unset or empty selects every
/// impl; otherwise an impl runs only when the variable is a
/// case-insensitive substring of its display name (e.g. "lamellar am",
/// "am dart opt").  Lets CI trace one backend without the later backends
/// of the sweep overwriting the trace files.
inline bool impl_selected(const char* name) {
  const char* want = std::getenv("LAMELLAR_FIG_IMPL");
  if (want == nullptr || *want == '\0') return true;
  auto lower = [](const char* s) {
    std::string out;
    for (; *s != '\0'; ++s) {
      out += static_cast<char>(
          std::tolower(static_cast<unsigned char>(*s)));
    }
    return out;
  };
  return lower(name).find(lower(want)) != std::string::npos;
}

}  // namespace lamellar::bench
