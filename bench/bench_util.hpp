// Shared helpers for the figure benchmark drivers.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>

namespace lamellar::bench {

/// Backend/impl filter: LAMELLAR_FIG_IMPL unset or empty selects every
/// impl; otherwise an impl runs only when the variable is a
/// case-insensitive substring of its display name (e.g. "lamellar am",
/// "am dart opt").  Lets CI trace one backend without the later backends
/// of the sweep overwriting the trace files.
inline bool impl_selected(const char* name) {
  const char* want = std::getenv("LAMELLAR_FIG_IMPL");
  if (want == nullptr || *want == '\0') return true;
  auto lower = [](const char* s) {
    std::string out;
    for (; *s != '\0'; ++s) {
      out += static_cast<char>(
          std::tolower(static_cast<unsigned char>(*s)));
    }
    return out;
  };
  return lower(name).find(lower(want)) != std::string::npos;
}

}  // namespace lamellar::bench
