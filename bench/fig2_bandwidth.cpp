// Fig. 2 — put-like bandwidth curves (higher is better).
//
// Reproduces the paper's Sec. IV-A experiment: two PEs on different nodes;
// for each transfer size, N back-to-back put-like transfers from PE0 into
// PE1 through every Lamellar communication abstraction, plus the raw
// Rofi(libfabric) path as the upper bound.  Bandwidth is computed from the
// *virtual* clock, which the fabric charges with the calibrated InfiniBand
// model, so the curves reflect the paper's HDR-100 network, not this
// machine's memory system.
//
// Paper parameters: 262143 transfers for sizes <= 4 KB, 1 GiB / size above;
// by default the transfer counts are scaled down 64x for runtime (set
// LAMELLAR_FIG2_FULL=1 for the paper's counts — virtual time results are
// identical because the per-transfer cost is deterministic).
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "lamellar.hpp"
#include "obs/report.hpp"

namespace {

using namespace lamellar;

struct BwAm {
  std::vector<std::uint8_t> data;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(data);
  }
  void exec(AmContext&) {}  // paper: "the exec function returns immediately"
};

}  // namespace

LAMELLAR_REGISTER_AM(BwAm);

namespace {

constexpr std::size_t kMaxSize = 16ULL * 1024 * 1024;  // largest point

std::size_t transfers_for(std::size_t size, bool full) {
  if (full) {
    if (size <= 4096) return 262143;
    const std::size_t n = (1ULL << 30) / size;
    return n == 0 ? 1 : n;
  }
  // Scaled-down defaults: virtual-time bandwidth is per-message
  // deterministic, so fewer transfers give the same curve.
  if (size <= 4096) return 512;
  const std::size_t n = (1ULL << 30) / size / 16;
  return n < 8 ? 8 : n;
}

}  // namespace

int main() {
  const bool full = env_u64("LAMELLAR_FIG2_FULL", 0) != 0;
  std::vector<std::size_t> sizes;
  for (std::size_t s = 1; s <= kMaxSize; s *= 2) sizes.push_back(s);

  struct Row {
    std::size_t size;
    double rofi, memregion, unchecked, unsafe_arr, locallock, atomic, am;
  };
  std::vector<Row> rows;

  RuntimeConfig cfg = bench::bench_config();
  cfg.threads_per_pe = 1;
  cfg.symmetric_heap_bytes = 256ULL * 1024 * 1024;
  obs::MetricsSnapshot snap;
  // Per-abstraction metric attribution (PE0): each impl's sections are
  // interleaved across transfer sizes, so boundary snapshots are deltaed
  // per section and accumulated per impl.
  constexpr std::size_t kImpls = 7;
  const char* impl_names[kImpls] = {"rofi",      "memregion", "unchecked",
                                    "unsafe_arr", "locallock", "atomic",
                                    "am"};
  obs::MetricsSnapshot per_impl[kImpls];
  obs::MetricsSnapshot boundary;
  run_world(
      2,
      [&](World& world) {
        const auto theoretical =
            world.lamellae().params().link_bytes_per_ns * 1000.0;
        const auto attribute = [&](std::size_t k) {
          if (world.my_pe() != 0) return;
          obs::MetricsSnapshot cur = world.metrics_snapshot();
          obs::snapshot_accumulate(per_impl[k],
                                   obs::snapshot_delta(boundary, cur));
          boundary = std::move(cur);
        };
        if (world.my_pe() == 0) boundary = world.metrics_snapshot();
        for (auto size : sizes) {
          const std::size_t n = transfers_for(size, full);
          Row row{};
          row.size = size;

          // Rofi(libfabric): raw fabric put into a registered region.
          auto region = SharedMemoryRegion<std::uint8_t>::create(world, size);
          {
            std::vector<std::uint8_t> payload(size, 1);
            world.barrier();
            const sim_nanos t0 = world.time_ns();
            if (world.my_pe() == 0) {
              // Pipelined posts: charge the no-latency cost per message as
              // the NIC would under back-to-back posting.
              const double per_msg =
                  world.lamellae().params().pipelined_cost_ns(size);
              for (std::size_t i = 0; i < n; ++i) {
                world.lamellae().charge(per_msg);
              }
              // One real transfer keeps the data path honest.
              region.unsafe_put(1, 0, payload);
            }
            world.barrier();
            const sim_nanos t1 = world.time_ns();
            row.rofi = static_cast<double>(size) * static_cast<double>(n) /
                       static_cast<double>(t1 - t0) * 1000.0;
            attribute(0);
          }

          // MemRegion: light wrapper over the fabric call (adds the runtime
          // bounds/offset handling).
          {
            std::vector<std::uint8_t> payload(size, 2);
            world.barrier();
            const sim_nanos t0 = world.time_ns();
            if (world.my_pe() == 0) {
              const double per_msg =
                  world.lamellae().params().pipelined_cost_ns(size) + 40.0;
              for (std::size_t i = 0; i < n; ++i) {
                world.lamellae().charge(per_msg);
              }
              region.unsafe_put(1, 0, payload);
            }
            world.barrier();
            const sim_nanos t1 = world.time_ns();
            row.memregion = static_cast<double>(size) *
                            static_cast<double>(n) /
                            static_cast<double>(t1 - t0) * 1000.0;
            attribute(1);
          }

          // Array paths: data lands in PE1's slab (block distribution).
          // u64 elements, as in the paper's array bandwidth tests.
          const std::size_t elems = std::max<std::size_t>(1, size / 8);
          auto mk_indices = [&](auto& arr) {
            return arr.len() / 2;  // start of PE1's half
          };

          {
            auto arr = UnsafeArray<std::uint64_t>::create(
                world, elems * 2, Distribution::kBlock);
            std::vector<std::uint64_t> payload(elems, 3);
            const auto start = mk_indices(arr);
            world.barrier();
            sim_nanos t0 = world.time_ns();
            if (world.my_pe() == 0) {
              const double per_msg =
                  world.lamellae().params().pipelined_cost_ns(size) + 120.0;
              for (std::size_t i = 0; i + 1 < n; ++i) {
                world.lamellae().charge(per_msg);
              }
              arr.unsafe_put_direct(start, payload);  // "unchecked"
            }
            world.barrier();
            sim_nanos t1 = world.time_ns();
            row.unchecked = static_cast<double>(size) *
                            static_cast<double>(n) /
                            static_cast<double>(t1 - t0) * 1000.0;
            attribute(2);

            world.barrier();
            t0 = world.time_ns();
            if (world.my_pe() == 0) {
              for (std::size_t i = 0; i < n; ++i) {
                world.block_on(arr.put(start, payload));
              }
            }
            world.barrier();
            t1 = world.time_ns();
            row.unsafe_arr = static_cast<double>(size) *
                             static_cast<double>(n) /
                             static_cast<double>(t1 - t0) * 1000.0;
            attribute(3);
          }
          {
            auto arr = LocalLockArray<std::uint64_t>::create(
                world, elems * 2, Distribution::kBlock);
            std::vector<std::uint64_t> payload(elems, 4);
            const auto start = mk_indices(arr);
            world.barrier();
            const sim_nanos t0 = world.time_ns();
            if (world.my_pe() == 0) {
              for (std::size_t i = 0; i < n; ++i) {
                world.block_on(arr.put(start, payload));
              }
            }
            world.barrier();
            const sim_nanos t1 = world.time_ns();
            row.locallock = static_cast<double>(size) *
                            static_cast<double>(n) /
                            static_cast<double>(t1 - t0) * 1000.0;
            attribute(4);
          }
          {
            auto arr = AtomicArray<std::uint64_t>::create(
                world, elems * 2, Distribution::kBlock);
            std::vector<std::uint64_t> payload(elems, 5);
            const auto start = mk_indices(arr);
            world.barrier();
            const sim_nanos t0 = world.time_ns();
            if (world.my_pe() == 0) {
              for (std::size_t i = 0; i < n; ++i) {
                world.block_on(arr.put(start, payload));
              }
            }
            world.barrier();
            const sim_nanos t1 = world.time_ns();
            row.atomic = static_cast<double>(size) * static_cast<double>(n) /
                         static_cast<double>(t1 - t0) * 1000.0;
            attribute(5);
          }
          {
            std::vector<std::uint8_t> payload(size, 6);
            world.barrier();
            const sim_nanos t0 = world.time_ns();
            if (world.my_pe() == 0) {
              for (std::size_t i = 0; i < n; ++i) {
                world.exec_am_pe(1, BwAm{payload});
              }
              world.wait_all();
            }
            world.barrier();
            const sim_nanos t1 = world.time_ns();
            row.am = static_cast<double>(size) * static_cast<double>(n) /
                     static_cast<double>(t1 - t0) * 1000.0;
            attribute(6);
          }

          if (world.my_pe() == 0) rows.push_back(row);
        }
        if (world.my_pe() == 0) {
          std::printf(
              "# Fig.2: put-like bandwidth curves (MB/s, virtual time; "
              "theoretical peak %.0f MB/s)\n",
              theoretical);
          std::printf("%10s %12s %12s %12s %12s %12s %12s %12s\n", "size",
                      "Rofi", "MemRegion", "Unchecked", "UnsafeArr",
                      "LocalLock", "Atomic", "AM");
          for (const auto& r : rows) {
            std::printf(
                "%10zu %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f\n",
                r.size, r.rofi, r.memregion, r.unchecked, r.unsafe_arr,
                r.locallock, r.atomic, r.am);
          }
          snap = world.metrics_snapshot();
        }
      },
      cfg, paper_perf_params(), PeMapping{1});
  if (cfg.metrics_mode == MetricsMode::kJson) {
    // One line per abstraction path (fig3/4/5-style), plus the whole-run
    // line downstream tooling already consumes.
    for (std::size_t k = 0; k < kImpls; ++k) {
      std::printf(
          "%s\n",
          obs::bench_json_line("fig2_bandwidth", impl_names[k], per_impl[k])
              .c_str());
    }
    std::printf("%s\n",
                obs::bench_json_line("fig2_bandwidth", "all", snap).c_str());
  }
  return 0;
}
