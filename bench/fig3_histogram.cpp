// Fig. 3 — Histogram kernel performance (MUPS, higher is better).
//
// Two sections: (1) live in-process runs of every backend's *real*
// implementation (scaled parameters, virtual-time rates); (2) the cluster
// model at the paper's 64-2048 core scales (paper parameters: 1000 table
// elements and 10M updates per core, 10k-op buffers).
#include <cstdio>

#include "bale/histogram.hpp"
#include "bench_util.hpp"
#include "lamellar.hpp"
#include "obs/report.hpp"
#include "sim/sim_kernels.hpp"

using namespace lamellar;
using namespace lamellar::bale;

int main() {
  const auto backends = {Backend::kLamellarAm, Backend::kLamellarArray,
                         Backend::kExstack,    Backend::kExstack2,
                         Backend::kConveyor,   Backend::kSelector,
                         Backend::kChapel};

  const RuntimeConfig cfg = bench::bench_config();
  std::printf("# Fig.3 (a): live in-process histogram, 4 PEs, virtual time\n");
  std::printf("%-16s %12s %10s\n", "impl", "MUPS", "verified");
  for (auto backend : backends) {
    if (!bench::impl_selected(backend_name(backend))) continue;
    double mups = 0;
    bool ok = false;
    obs::MetricsSnapshot snap;
    run_world(
        4,
        [&](World& world) {
          HistogramParams p;
          p.table_per_pe = 1'000;  // paper value
          p.updates_per_pe = env_size("LAMELLAR_FIG3_UPDATES", 20'000);
          p.agg_limit = 10'000;  // paper value
          auto r = histogram_kernel(world, backend, p);
          if (world.my_pe() == 0) {
            mups = static_cast<double>(r.ops) * world.num_pes() /
                   static_cast<double>(r.elapsed_ns) * 1000.0;
            ok = r.verified;
            snap = world.metrics_snapshot();
          }
          world.barrier();
        },
        cfg);
    std::printf("%-16s %12.1f %10s\n", backend_name(backend), mups,
                ok ? "yes" : "NO");
    if (cfg.metrics_mode == MetricsMode::kJson) {
      std::printf("%s\n",
                  obs::bench_json_line("fig3_histogram",
                                       backend_name(backend), snap)
                      .c_str());
    }
  }

  std::printf(
      "\n# Fig.3 (b): modeled scaling on the paper cluster "
      "(10M updates/core, MUPS)\n");
  std::printf("%-16s", "impl");
  for (auto c : sim::paper_core_counts()) std::printf(" %10zu", c);
  std::printf("\n");
  for (auto backend : backends) {
    auto series = sim::model_histogram(backend, sim::paper_core_counts());
    std::printf("%-16s", backend_name(backend));
    for (const auto& pt : series) std::printf(" %10.0f", pt.value);
    std::printf("\n");
  }
  return 0;
}
