#!/usr/bin/env sh
# Record a bench baseline: run the fig3/fig4/fig5 drivers at small scale in
# json-metrics mode and collect the per-implementation metric lines plus
# wall-clock timings into one JSON document on stdout.
#
# Usage: bench/record_baseline.sh <build-dir> [ops-per-pe]
# Example: bench/record_baseline.sh build 20000 > BENCH_pr2.json
set -eu

build=${1:?usage: record_baseline.sh <build-dir> [ops-per-pe]}
ops=${2:-20000}

run_fig() {
  bin=$1
  var=$2
  start=$(date +%s%N)
  env "$var=$ops" LAMELLAR_METRICS=json "$build/bench/$bin" >"/tmp/$bin.baseline.out"
  end=$(date +%s%N)
  wall_ms=$(((end - start) / 1000000))
  printf '    "%s": {\n      "wall_ms": %s,\n      "impls": [\n' "$bin" "$wall_ms"
  grep '^{"bench"' "/tmp/$bin.baseline.out" | sed 's/^/        /; $!s/$/,/'
  printf '      ]\n    }'
}

printf '{\n  "ops_per_pe": %s,\n  "benches": {\n' "$ops"
run_fig fig3_histogram LAMELLAR_FIG3_UPDATES
printf ',\n'
run_fig fig4_indexgather LAMELLAR_FIG4_REQUESTS
printf ',\n'
run_fig fig5_randperm LAMELLAR_FIG5_PERM
printf '\n  }\n}\n'
