// Paper-scale PE counts (ISSUE 8): fig3/4/5-style AM storms at
// P in {64, 256, 1024, 2048} virtual PEs, 1-hop (direct) vs 2-hop routing
// ablation.  Each row reports wall/model time, fabric buffers and bytes on
// the wire, relay activity, and the per-PE live-lane high-water mark — the
// evidence for the DESIGN.md §12 scale discipline: 2-hop re-aggregation
// sends fewer, fuller buffers, and memory-lean lanes keep per-PE lane
// storage O(sqrt P).
//
// The whole sweep runs in-process with deliberately tiny heaps and one
// worker thread per PE, so 2048 PEs fit a single host.  Output: progress on
// stderr, one complete JSON document on stdout (redirect to
// BENCH_scale.json).
//
// Knobs: LAMELLAR_SCALE_PES (default "64,256,1024,2048"),
// LAMELLAR_SCALE_ROUTES ("direct,2hop"), LAMELLAR_SCALE_KERNELS
// ("fig3,fig4,fig5"), LAMELLAR_SCALE_OPS (ops per PE, default 512),
// LAMELLAR_SCALE_AGG (aggregation threshold, default 2048),
// LAMELLAR_SCALE_PARK_US (idle-worker park timeout, default 20000).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "lamellar.hpp"

using namespace lamellar;

namespace scalebench {

namespace {

std::uint64_t* table_cell(AmContext& ctx, std::uint64_t offset,
                          std::uint64_t slot) {
  return reinterpret_cast<std::uint64_t*>(ctx.world().lamellae().base() +
                                          offset) +
         slot;
}

}  // namespace

/// fig3-style histogram update: atomically increment a slot of the target's
/// symmetric table.
struct HistAm {
  std::uint64_t table_offset = 0;
  std::uint64_t slot = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(table_offset, slot);
  }
  void exec(AmContext& ctx) {
    std::atomic_ref<std::uint64_t> ref(*table_cell(ctx, table_offset, slot));
    ref.fetch_add(1, std::memory_order_relaxed);
  }
};

/// fig4-style indexgather: read a slot of the target's table (reply-heavy).
struct GatherAm {
  std::uint64_t table_offset = 0;
  std::uint64_t slot = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(table_offset, slot);
  }
  std::uint64_t exec(AmContext& ctx) {
    std::atomic_ref<std::uint64_t> ref(*table_cell(ctx, table_offset, slot));
    return ref.load(std::memory_order_relaxed);
  }
};

/// fig5-style dart throw: CAS-claim a free slot; the origin retries misses.
struct DartAm {
  std::uint64_t table_offset = 0;
  std::uint64_t slot = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(table_offset, slot);
  }
  std::uint64_t exec(AmContext& ctx) {
    std::atomic_ref<std::uint64_t> ref(*table_cell(ctx, table_offset, slot));
    std::uint64_t expected = 0;
    return ref.compare_exchange_strong(expected, 1,
                                       std::memory_order_relaxed)
               ? 1
               : 0;
  }
};

}  // namespace scalebench

LAMELLAR_REGISTER_AM(scalebench::HistAm);
LAMELLAR_REGISTER_AM(scalebench::GatherAm);
LAMELLAR_REGISTER_AM(scalebench::DartAm);

namespace scalebench {
namespace {

/// All-PE sum via fabric atomics on one symmetric word (Darc-free so the
/// verification path itself stays O(1) memory per PE at 2048 PEs).
std::uint64_t global_sum(World& world, std::uint64_t local) {
  Lamellae& lam = world.lamellae();
  const std::size_t off = lam.alloc_symmetric(sizeof(std::uint64_t), 8);
  if (world.my_pe() == 0) {
    *reinterpret_cast<std::uint64_t*>(lam.base() + off) = 0;
  }
  world.barrier();
  lam.atomic_fetch_add_u64(0, off, local);
  world.barrier();
  const std::uint64_t total = lam.atomic_load_u64(0, off);
  world.barrier();
  lam.free_symmetric(off);
  return total;
}

std::uint64_t* local_table(World& world, std::size_t offset) {
  return reinterpret_cast<std::uint64_t*>(world.lamellae().base() + offset);
}

bool kern_fig3(World& world, std::size_t ops, std::uint64_t seed) {
  constexpr std::size_t kSlots = 64;
  const std::size_t off =
      world.lamellae().alloc_symmetric(kSlots * sizeof(std::uint64_t), 8);
  std::uint64_t* table = local_table(world, off);
  for (std::size_t s = 0; s < kSlots; ++s) table[s] = 0;
  world.barrier();
  auto rng = pe_rng(seed, world.my_pe());
  for (std::size_t i = 0; i < ops; ++i) {
    const auto dst = static_cast<pe_id>(rng.uniform(world.num_pes()));
    world.engine().send_cb(dst, HistAm{off, rng.uniform(kSlots)}, [](Unit) {});
  }
  world.engine().wait_all();
  world.barrier();
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kSlots; ++s) sum += table[s];
  const std::uint64_t total = global_sum(world, sum);
  world.lamellae().free_symmetric(off);
  return total == static_cast<std::uint64_t>(ops) * world.num_pes();
}

bool kern_fig4(World& world, std::size_t ops, std::uint64_t seed) {
  constexpr std::size_t kSlots = 64;
  const std::size_t off =
      world.lamellae().alloc_symmetric(kSlots * sizeof(std::uint64_t), 8);
  std::uint64_t* table = local_table(world, off);
  for (std::size_t s = 0; s < kSlots; ++s) {
    table[s] = static_cast<std::uint64_t>(world.my_pe()) * kSlots + s;
  }
  world.barrier();
  auto rng = pe_rng(seed + 1, world.my_pe());
  auto errors = std::make_shared<std::atomic<std::uint64_t>>(0);
  for (std::size_t i = 0; i < ops; ++i) {
    const auto dst = static_cast<pe_id>(rng.uniform(world.num_pes()));
    const std::uint64_t slot = rng.uniform(kSlots);
    const std::uint64_t want = static_cast<std::uint64_t>(dst) * kSlots + slot;
    world.engine().send_cb(dst, GatherAm{off, slot},
                           [errors, want](std::uint64_t got) {
                             if (got != want) {
                               errors->fetch_add(1, std::memory_order_relaxed);
                             }
                           });
  }
  world.engine().wait_all();
  world.barrier();
  const std::uint64_t bad =
      global_sum(world, errors->load(std::memory_order_relaxed));
  world.lamellae().free_symmetric(off);
  return bad == 0;
}

bool kern_fig5(World& world, std::size_t ops, std::uint64_t seed) {
  const std::size_t slots = 2 * ops;
  const std::size_t off =
      world.lamellae().alloc_symmetric(slots * sizeof(std::uint64_t), 8);
  std::uint64_t* table = local_table(world, off);
  for (std::size_t s = 0; s < slots; ++s) table[s] = 0;
  world.barrier();
  auto rng = pe_rng(seed + 2, world.my_pe());
  auto misses = std::make_shared<std::atomic<std::uint64_t>>(0);
  std::uint64_t pending = ops;
  while (pending > 0) {
    misses->store(0, std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < pending; ++i) {
      const auto dst = static_cast<pe_id>(rng.uniform(world.num_pes()));
      world.engine().send_cb(dst, DartAm{off, rng.uniform(slots)},
                             [misses](std::uint64_t claimed) {
                               if (claimed == 0) {
                                 misses->fetch_add(1,
                                                   std::memory_order_relaxed);
                               }
                             });
    }
    world.engine().wait_all();
    pending = misses->load(std::memory_order_relaxed);
  }
  world.barrier();
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < slots; ++s) sum += table[s];
  const std::uint64_t total = global_sum(world, sum);
  world.lamellae().free_symmetric(off);
  return total == static_cast<std::uint64_t>(ops) * world.num_pes();
}

struct RowStats {
  double wall_ms = 0;
  double model_ms = 0;
  std::uint64_t buffers_sent = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t relayed_records = 0;
  std::uint64_t sent_routed = 0;
  std::int64_t live_lanes_hw = 0;  // max over PEs
  bool verified = false;
};

RowStats run_one(const std::string& kernel, std::size_t pes, RouteMode route,
                 std::size_t ops) {
  RuntimeConfig cfg;
  cfg.threads_per_pe = 1;
  cfg.agg_threshold_bytes = env_size("LAMELLAR_SCALE_AGG", 2048);
  cfg.internal_heap_bytes = 64 * 1024;
  cfg.symmetric_heap_bytes = 256 * 1024;
  cfg.onesided_heap_bytes = 64 * 1024;
  cfg.metrics_mode = MetricsMode::kQuiet;
  cfg.park_timeout_us = env_u64("LAMELLAR_SCALE_PARK_US", 20'000);
  cfg.route = route;
  // symmetric heap cap: fig5 table = 2 * ops u64 words + slack
  if ((2 * ops + 1024) * sizeof(std::uint64_t) > cfg.symmetric_heap_bytes) {
    cfg.symmetric_heap_bytes = (2 * ops + 1024) * sizeof(std::uint64_t);
  }

  RowStats stats;
  std::vector<obs::MetricsSnapshot> snaps(pes);
  std::atomic<bool> ok{true};
  std::atomic<std::int64_t> model_ns{0};
  const auto t0 = std::chrono::steady_clock::now();
  run_world(
      pes,
      [&](World& world) {
        bool v = false;
        if (kernel == "fig3") {
          v = kern_fig3(world, ops, 0xC0FFEE);
        } else if (kernel == "fig4") {
          v = kern_fig4(world, ops, 0xC0FFEE);
        } else if (kernel == "fig5") {
          v = kern_fig5(world, ops, 0xC0FFEE);
        }
        if (!v) ok.store(false, std::memory_order_relaxed);
        snaps[world.my_pe()] = world.metrics_snapshot();
        if (world.my_pe() == 0) {
          model_ns.store(static_cast<std::int64_t>(world.time_ns()),
                         std::memory_order_relaxed);
        }
      },
      cfg, paper_perf_params(), PeMapping{64});
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  stats.model_ms =
      static_cast<double>(model_ns.load(std::memory_order_relaxed)) / 1e6;
  stats.verified = ok.load(std::memory_order_relaxed);
  for (const auto& snap : snaps) {
    stats.buffers_sent += snap.counter("cmdq.buffers_sent");
    stats.bytes_on_wire += snap.counter("cmdq.bytes_sent");
    stats.relayed_records += snap.counter("am.relayed_records");
    stats.sent_routed += snap.counter("am.sent_routed");
    for (const auto& [name, vals] : snap.gauges) {
      if (name == "cmdq.live_lanes" && vals.second > stats.live_lanes_hw) {
        stats.live_lanes_hw = vals.second;
      }
    }
  }
  return stats;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace
}  // namespace scalebench

int main() {
  using namespace scalebench;
  const auto pes_list = split_csv(env_str("LAMELLAR_SCALE_PES",
                                          "64,256,1024,2048"));
  const auto routes = split_csv(env_str("LAMELLAR_SCALE_ROUTES",
                                        "direct,2hop"));
  const auto kernels = split_csv(env_str("LAMELLAR_SCALE_KERNELS",
                                         "fig3,fig4,fig5"));
  const std::size_t ops = env_size("LAMELLAR_SCALE_OPS", 512);

  bool all_ok = true;
  std::vector<std::string> rows;
  for (const auto& pes_str : pes_list) {
    const auto pes = static_cast<std::size_t>(std::stoull(pes_str));
    for (const auto& kernel : kernels) {
      for (const auto& route_str : routes) {
        const RouteMode route = parse_route_mode(route_str);
        const RowStats s = run_one(kernel, pes, route, ops);
        all_ok = all_ok && s.verified;
        char line[512];
        std::snprintf(
            line, sizeof(line),
            "  {\"kernel\": \"%s\", \"pes\": %zu, \"route\": \"%s\", "
            "\"ops_per_pe\": %zu, \"wall_ms\": %.1f, \"model_ms\": %.3f, "
            "\"buffers_sent\": %llu, \"bytes_on_wire\": %llu, "
            "\"relayed_records\": %llu, \"sent_routed\": %llu, "
            "\"live_lanes_hw\": %lld, \"verified\": %s}",
            kernel.c_str(), pes, route_str.c_str(), ops, s.wall_ms,
            s.model_ms,
            static_cast<unsigned long long>(s.buffers_sent),
            static_cast<unsigned long long>(s.bytes_on_wire),
            static_cast<unsigned long long>(s.relayed_records),
            static_cast<unsigned long long>(s.sent_routed),
            static_cast<long long>(s.live_lanes_hw),
            s.verified ? "true" : "false");
        rows.emplace_back(line);
        std::fprintf(stderr,
                     "%-5s P=%-5zu %-6s wall=%8.1fms buffers=%9llu "
                     "bytes=%12llu relayed=%9llu lanes_hw=%4lld %s\n",
                     kernel.c_str(), pes, route_str.c_str(), s.wall_ms,
                     static_cast<unsigned long long>(s.buffers_sent),
                     static_cast<unsigned long long>(s.bytes_on_wire),
                     static_cast<unsigned long long>(s.relayed_records),
                     static_cast<long long>(s.live_lanes_hw),
                     s.verified ? "ok" : "VERIFY-FAIL");
      }
    }
  }

  std::printf("{\n \"bench\": \"bench_scale\",\n \"ops_per_pe\": %zu,\n"
              " \"rows\": [\n",
              ops);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%s%s\n", rows[i].c_str(),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf(" ]\n}\n");
  return all_ok ? 0 : 1;
}
