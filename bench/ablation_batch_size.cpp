// Ablation D2 — the batch-op sub-batch limit (paper experiments use 10,000
// operations per buffer).  Sweeps the limit for the AtomicArray histogram.
#include <cstdio>

#include "bale/histogram.hpp"
#include "lamellar.hpp"

using namespace lamellar;
using namespace lamellar::bale;

int main() {
  std::printf("# Ablation D2: batch-op sub-batch limit (virtual time)\n");
  std::printf("%12s %20s\n", "limit", "AtomicArray MUPS");
  for (std::size_t limit : {100, 1'000, 5'000, 10'000, 50'000}) {
    RuntimeConfig cfg;
    cfg.batch_op_limit = limit;
    double mups = 0;
    run_world(
        4,
        [&](World& world) {
          HistogramParams p;
          p.updates_per_pe = 10'000;
          p.agg_limit = limit;
          auto r = histogram_kernel(world, Backend::kLamellarArray, p);
          if (world.my_pe() == 0) {
            mups = static_cast<double>(r.ops) * world.num_pes() /
                   static_cast<double>(r.elapsed_ns) * 1000.0;
          }
          world.barrier();
        },
        cfg);
    std::printf("%12zu %20.1f\n", limit, mups);
  }
  return 0;
}
