// Fig. 5 — Randperm running time (seconds, lower is better; ideally flat
// with growing core counts since the work per core is constant).
//
// Live in-process runs of the four Lamellar variants plus the Exstack
// baseline, then the modeled paper scales (1M permutation elements per
// core, 2x target array).
#include <cstdio>

#include "bale/randperm.hpp"
#include "bench_util.hpp"
#include "lamellar.hpp"
#include "obs/report.hpp"
#include "sim/sim_kernels.hpp"

using namespace lamellar;
using namespace lamellar::bale;

int main() {
  const auto impls = {RandpermImpl::kArrayDarts, RandpermImpl::kAmDart,
                      RandpermImpl::kAmDartOpt, RandpermImpl::kAmPush,
                      RandpermImpl::kExstack};

  const RuntimeConfig cfg = bench::bench_config();
  std::printf("# Fig.5 (a): live in-process randperm, 4 PEs, virtual time\n");
  std::printf("%-16s %14s %10s\n", "impl", "time (ms)", "verified");
  for (auto impl : impls) {
    if (!bench::impl_selected(randperm_impl_name(impl))) continue;
    double ms = 0;
    bool ok = false;
    obs::MetricsSnapshot snap;
    run_world(
        4,
        [&](World& world) {
          RandpermParams p;
          p.perm_per_pe = env_size("LAMELLAR_FIG5_PERM", 20'000);
          p.agg_limit = 10'000;
          auto r = randperm_kernel(world, impl, p);
          if (world.my_pe() == 0) {
            ms = static_cast<double>(r.elapsed_ns) / 1e6;
            ok = r.verified;
            snap = world.metrics_snapshot();
          }
          world.barrier();
        },
        cfg);
    std::printf("%-16s %14.2f %10s\n", randperm_impl_name(impl), ms,
                ok ? "yes" : "NO");
    if (cfg.metrics_mode == MetricsMode::kJson) {
      std::printf("%s\n",
                  obs::bench_json_line("fig5_randperm",
                                       randperm_impl_name(impl), snap)
                      .c_str());
    }
  }

  std::printf(
      "\n# Fig.5 (b): modeled scaling on the paper cluster "
      "(1M elements/core, seconds)\n");
  std::printf("%-16s", "impl");
  for (auto c : sim::paper_core_counts()) std::printf(" %10zu", c);
  std::printf("\n");
  for (auto impl : impls) {
    auto series = sim::model_randperm(impl, sim::paper_core_counts());
    std::printf("%-16s", randperm_impl_name(impl));
    for (const auto& pt : series) std::printf(" %10.3f", pt.value);
    std::printf("\n");
  }
  return 0;
}
