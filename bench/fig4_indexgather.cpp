// Fig. 4 — IndexGather kernel performance (MUPS, higher is better).
//
// Same structure as Fig. 3: live in-process runs plus the modeled paper
// scales.  Expected shape: rates below Histogram (a second message returns
// every value), Chapel's CopyAggregator on top at scale, and the Lamellar
// curves *reversed* relative to Fig. 3 (ReadOnlyArray above the manual AM
// variant at scale).
#include <cstdio>

#include "bale/indexgather.hpp"
#include "bench_util.hpp"
#include "lamellar.hpp"
#include "obs/report.hpp"
#include "sim/sim_kernels.hpp"

using namespace lamellar;
using namespace lamellar::bale;

int main() {
  const auto backends = {Backend::kLamellarAm, Backend::kLamellarArray,
                         Backend::kExstack,    Backend::kExstack2,
                         Backend::kConveyor,   Backend::kSelector,
                         Backend::kChapel};

  const RuntimeConfig cfg = bench::bench_config();
  std::printf(
      "# Fig.4 (a): live in-process indexgather, 4 PEs, virtual time\n");
  std::printf("%-16s %12s %10s\n", "impl", "MUPS", "verified");
  for (auto backend : backends) {
    if (!bench::impl_selected(backend_name(backend))) continue;
    double mups = 0;
    bool ok = false;
    obs::MetricsSnapshot snap;
    run_world(
        4,
        [&](World& world) {
          IndexGatherParams p;
          p.table_per_pe = 1'000;
          p.requests_per_pe = env_size("LAMELLAR_FIG4_REQUESTS", 20'000);
          p.agg_limit = 10'000;
          auto r = indexgather_kernel(world, backend, p);
          if (world.my_pe() == 0) {
            mups = static_cast<double>(r.ops) * world.num_pes() /
                   static_cast<double>(r.elapsed_ns) * 1000.0;
            ok = r.verified;
            snap = world.metrics_snapshot();
          }
          world.barrier();
        },
        cfg);
    std::printf("%-16s %12.1f %10s\n", backend_name(backend), mups,
                ok ? "yes" : "NO");
    if (cfg.metrics_mode == MetricsMode::kJson) {
      std::printf("%s\n",
                  obs::bench_json_line("fig4_indexgather",
                                       backend_name(backend), snap)
                      .c_str());
    }
  }

  std::printf(
      "\n# Fig.4 (b): modeled scaling on the paper cluster "
      "(10M requests/core, MUPS)\n");
  std::printf("%-16s", "impl");
  for (auto c : sim::paper_core_counts()) std::printf(" %10zu", c);
  std::printf("\n");
  for (auto backend : backends) {
    auto series = sim::model_indexgather(backend, sim::paper_core_counts());
    std::printf("%-16s", backend_name(backend));
    for (const auto& pt : series) std::printf(" %10.0f", pt.value);
    std::printf("\n");
  }
  return 0;
}
