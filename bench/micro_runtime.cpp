// Micro-benchmarks of the runtime building blocks (google-benchmark).
// Not a paper figure; used to keep internal regressions visible and to
// support the D4/D5 design discussions in DESIGN.md.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/unique_function.hpp"
#include "core/scheduler/deque.hpp"
#include "lamellae/heap.hpp"

namespace {

using namespace lamellar;

void BM_SerializeVecU64(benchmark::State& state) {
  std::vector<std::uint64_t> v(state.range(0));
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  for (auto _ : state) {
    auto buf = serialize_to_buffer(v);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_SerializeVecU64)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DeserializeVecU64(benchmark::State& state) {
  std::vector<std::uint64_t> v(state.range(0), 7);
  auto buf = serialize_to_buffer(v);
  for (auto _ : state) {
    buf.seek(0);
    auto out = deserialize_from_buffer<std::vector<std::uint64_t>>(buf);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_DeserializeVecU64)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DequePushPop(benchmark::State& state) {
  WorkStealingDeque<int> dq;
  int item = 1;
  for (auto _ : state) {
    dq.push(&item);  // note: pop below returns it before deletion matters
    benchmark::DoNotOptimize(dq.pop());
  }
}
BENCHMARK(BM_DequePushPop);

void BM_HeapAllocFree(benchmark::State& state) {
  OffsetHeap heap(0, 64 * 1024 * 1024);
  for (auto _ : state) {
    auto a = heap.alloc(256);
    auto b = heap.alloc(1024);
    heap.free(a);
    heap.free(b);
  }
}
BENCHMARK(BM_HeapAllocFree);

void BM_UniqueFunctionInvoke(benchmark::State& state) {
  std::uint64_t acc = 0;
  UniqueFunction<void()> f([&acc] { ++acc; });
  for (auto _ : state) {
    f();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_UniqueFunctionInvoke);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc ^= rng.uniform(1'000'000);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Xoshiro);

}  // namespace

BENCHMARK_MAIN();
