file(REMOVE_RECURSE
  "CMakeFiles/test_array_props.dir/test_array_props.cpp.o"
  "CMakeFiles/test_array_props.dir/test_array_props.cpp.o.d"
  "test_array_props"
  "test_array_props.pdb"
  "test_array_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
