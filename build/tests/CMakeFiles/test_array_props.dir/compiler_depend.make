# Empty compiler generated dependencies file for test_array_props.
# This may be replaced when dependencies are built.
