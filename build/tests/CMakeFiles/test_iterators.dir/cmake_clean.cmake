file(REMOVE_RECURSE
  "CMakeFiles/test_iterators.dir/test_iterators.cpp.o"
  "CMakeFiles/test_iterators.dir/test_iterators.cpp.o.d"
  "test_iterators"
  "test_iterators.pdb"
  "test_iterators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iterators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
