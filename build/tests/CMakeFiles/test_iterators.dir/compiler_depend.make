# Empty compiler generated dependencies file for test_iterators.
# This may be replaced when dependencies are built.
