# Empty compiler generated dependencies file for test_bale.
# This may be replaced when dependencies are built.
