file(REMOVE_RECURSE
  "CMakeFiles/test_bale.dir/test_bale.cpp.o"
  "CMakeFiles/test_bale.dir/test_bale.cpp.o.d"
  "test_bale"
  "test_bale.pdb"
  "test_bale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
