# Empty dependencies file for test_darc.
# This may be replaced when dependencies are built.
