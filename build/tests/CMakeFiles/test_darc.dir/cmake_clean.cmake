file(REMOVE_RECURSE
  "CMakeFiles/test_darc.dir/test_darc.cpp.o"
  "CMakeFiles/test_darc.dir/test_darc.cpp.o.d"
  "test_darc"
  "test_darc.pdb"
  "test_darc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_darc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
