file(REMOVE_RECURSE
  "CMakeFiles/test_am_advanced.dir/test_am_advanced.cpp.o"
  "CMakeFiles/test_am_advanced.dir/test_am_advanced.cpp.o.d"
  "test_am_advanced"
  "test_am_advanced.pdb"
  "test_am_advanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_am_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
