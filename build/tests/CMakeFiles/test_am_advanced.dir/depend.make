# Empty dependencies file for test_am_advanced.
# This may be replaced when dependencies are built.
