# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_array[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_darc[1]_include.cmake")
include("/root/repo/build/tests/test_iterators[1]_include.cmake")
include("/root/repo/build/tests/test_bale[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_array_props[1]_include.cmake")
include("/root/repo/build/tests/test_am_advanced[1]_include.cmake")
