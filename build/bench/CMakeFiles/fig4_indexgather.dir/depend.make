# Empty dependencies file for fig4_indexgather.
# This may be replaced when dependencies are built.
