file(REMOVE_RECURSE
  "CMakeFiles/fig4_indexgather.dir/fig4_indexgather.cpp.o"
  "CMakeFiles/fig4_indexgather.dir/fig4_indexgather.cpp.o.d"
  "fig4_indexgather"
  "fig4_indexgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_indexgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
