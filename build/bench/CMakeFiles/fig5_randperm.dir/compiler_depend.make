# Empty compiler generated dependencies file for fig5_randperm.
# This may be replaced when dependencies are built.
