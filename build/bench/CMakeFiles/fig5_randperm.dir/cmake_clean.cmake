file(REMOVE_RECURSE
  "CMakeFiles/fig5_randperm.dir/fig5_randperm.cpp.o"
  "CMakeFiles/fig5_randperm.dir/fig5_randperm.cpp.o.d"
  "fig5_randperm"
  "fig5_randperm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_randperm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
