file(REMOVE_RECURSE
  "CMakeFiles/ablation_agg_threshold.dir/ablation_agg_threshold.cpp.o"
  "CMakeFiles/ablation_agg_threshold.dir/ablation_agg_threshold.cpp.o.d"
  "ablation_agg_threshold"
  "ablation_agg_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_agg_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
