# Empty dependencies file for ablation_agg_threshold.
# This may be replaced when dependencies are built.
