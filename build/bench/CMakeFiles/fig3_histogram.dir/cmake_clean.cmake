file(REMOVE_RECURSE
  "CMakeFiles/fig3_histogram.dir/fig3_histogram.cpp.o"
  "CMakeFiles/fig3_histogram.dir/fig3_histogram.cpp.o.d"
  "fig3_histogram"
  "fig3_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
