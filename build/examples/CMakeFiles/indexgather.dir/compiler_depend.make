# Empty compiler generated dependencies file for indexgather.
# This may be replaced when dependencies are built.
