file(REMOVE_RECURSE
  "CMakeFiles/indexgather.dir/indexgather.cpp.o"
  "CMakeFiles/indexgather.dir/indexgather.cpp.o.d"
  "indexgather"
  "indexgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
