# Empty dependencies file for indexgather.
# This may be replaced when dependencies are built.
