file(REMOVE_RECURSE
  "CMakeFiles/randperm.dir/randperm.cpp.o"
  "CMakeFiles/randperm.dir/randperm.cpp.o.d"
  "randperm"
  "randperm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randperm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
