# Empty dependencies file for randperm.
# This may be replaced when dependencies are built.
