file(REMOVE_RECURSE
  "liblamellar.a"
)
