
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bale/histogram.cpp" "src/CMakeFiles/lamellar.dir/bale/histogram.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/bale/histogram.cpp.o.d"
  "/root/repo/src/bale/indexgather.cpp" "src/CMakeFiles/lamellar.dir/bale/indexgather.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/bale/indexgather.cpp.o.d"
  "/root/repo/src/bale/randperm.cpp" "src/CMakeFiles/lamellar.dir/bale/randperm.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/bale/randperm.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/lamellar.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/lamellar.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/common/config.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/lamellar.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/common/error.cpp.o.d"
  "/root/repo/src/core/am/am_engine.cpp" "src/CMakeFiles/lamellar.dir/core/am/am_engine.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/core/am/am_engine.cpp.o.d"
  "/root/repo/src/core/am/am_registry.cpp" "src/CMakeFiles/lamellar.dir/core/am/am_registry.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/core/am/am_registry.cpp.o.d"
  "/root/repo/src/core/array/array_base.cpp" "src/CMakeFiles/lamellar.dir/core/array/array_base.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/core/array/array_base.cpp.o.d"
  "/root/repo/src/core/darc/darc.cpp" "src/CMakeFiles/lamellar.dir/core/darc/darc.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/core/darc/darc.cpp.o.d"
  "/root/repo/src/core/memregion/memregion.cpp" "src/CMakeFiles/lamellar.dir/core/memregion/memregion.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/core/memregion/memregion.cpp.o.d"
  "/root/repo/src/core/scheduler/future.cpp" "src/CMakeFiles/lamellar.dir/core/scheduler/future.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/core/scheduler/future.cpp.o.d"
  "/root/repo/src/core/scheduler/thread_pool.cpp" "src/CMakeFiles/lamellar.dir/core/scheduler/thread_pool.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/core/scheduler/thread_pool.cpp.o.d"
  "/root/repo/src/core/world/world.cpp" "src/CMakeFiles/lamellar.dir/core/world/world.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/core/world/world.cpp.o.d"
  "/root/repo/src/fabric/perf_model.cpp" "src/CMakeFiles/lamellar.dir/fabric/perf_model.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/fabric/perf_model.cpp.o.d"
  "/root/repo/src/fabric/shmem_fabric.cpp" "src/CMakeFiles/lamellar.dir/fabric/shmem_fabric.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/fabric/shmem_fabric.cpp.o.d"
  "/root/repo/src/fabric/topology.cpp" "src/CMakeFiles/lamellar.dir/fabric/topology.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/fabric/topology.cpp.o.d"
  "/root/repo/src/lamellae/cmd_queue.cpp" "src/CMakeFiles/lamellar.dir/lamellae/cmd_queue.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/lamellae/cmd_queue.cpp.o.d"
  "/root/repo/src/lamellae/heap.cpp" "src/CMakeFiles/lamellar.dir/lamellae/heap.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/lamellae/heap.cpp.o.d"
  "/root/repo/src/lamellae/lamellae.cpp" "src/CMakeFiles/lamellar.dir/lamellae/lamellae.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/lamellae/lamellae.cpp.o.d"
  "/root/repo/src/lamellae/shmem_lamellae.cpp" "src/CMakeFiles/lamellar.dir/lamellae/shmem_lamellae.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/lamellae/shmem_lamellae.cpp.o.d"
  "/root/repo/src/lamellae/smp_lamellae.cpp" "src/CMakeFiles/lamellar.dir/lamellae/smp_lamellae.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/lamellae/smp_lamellae.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/lamellar.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/netmodel.cpp" "src/CMakeFiles/lamellar.dir/sim/netmodel.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/sim/netmodel.cpp.o.d"
  "/root/repo/src/sim/sim_kernels.cpp" "src/CMakeFiles/lamellar.dir/sim/sim_kernels.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/sim/sim_kernels.cpp.o.d"
  "/root/repo/src/sim/strategies.cpp" "src/CMakeFiles/lamellar.dir/sim/strategies.cpp.o" "gcc" "src/CMakeFiles/lamellar.dir/sim/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
