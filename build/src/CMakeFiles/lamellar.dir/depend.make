# Empty dependencies file for lamellar.
# This may be replaced when dependencies are built.
