// LamellarArray tests: creation, element ops, batch ops, put/get, fill,
// reductions, conversions, sub-arrays — across array types and
// distributions (parameterized property sweeps live in test_array_props).
#include <gtest/gtest.h>

#include <numeric>

#include "lamellar.hpp"

namespace {

using namespace lamellar;

TEST(Array, CreateAndFill) {
  run_world(4, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 100, Distribution::kBlock);
    EXPECT_EQ(arr.len(), 100u);
    arr.fill(7);
    EXPECT_EQ(world.block_on(arr.sum()), 700u);
    world.barrier();
  });
}

TEST(Array, BlockDistributionMath) {
  DistributionMap map(Distribution::kBlock, 10, 4);
  EXPECT_EQ(map.per_rank_capacity(), 3u);
  EXPECT_EQ(map.local_len(0), 3u);
  EXPECT_EQ(map.local_len(3), 1u);
  auto p = map.place(7);
  EXPECT_EQ(p.rank, 2u);
  EXPECT_EQ(p.local_index, 1u);
  EXPECT_EQ(map.global_of(2, 1), 7u);
}

TEST(Array, CyclicDistributionMath) {
  DistributionMap map(Distribution::kCyclic, 10, 4);
  EXPECT_EQ(map.local_len(0), 3u);
  EXPECT_EQ(map.local_len(2), 2u);
  auto p = map.place(7);
  EXPECT_EQ(p.rank, 3u);
  EXPECT_EQ(p.local_index, 1u);
  EXPECT_EQ(map.global_of(3, 1), 7u);
}

TEST(Array, SingleElementOpsRemote) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 8, Distribution::kBlock);
    arr.fill(10);
    if (world.my_pe() == 0) {
      // Index 7 lives on PE 1.
      world.block_on(arr.add(7, 5));
      EXPECT_EQ(world.block_on(arr.load(7)), 15u);
      EXPECT_EQ(world.block_on(arr.fetch_add(7, 1)), 15u);
      EXPECT_EQ(world.block_on(arr.fetch_sub(7, 6)), 16u);
      EXPECT_EQ(world.block_on(arr.fetch_swap(7, 99)), 10u);
      EXPECT_EQ(world.block_on(arr.load(7)), 99u);
      world.block_on(arr.mul(0, 3));
      EXPECT_EQ(world.block_on(arr.load(0)), 30u);
    }
    world.barrier();
  });
}

TEST(Array, CompareExchange) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 4, Distribution::kBlock);
    arr.fill(0);
    if (world.my_pe() == 0) {
      auto r1 = world.block_on(arr.compare_exchange(3, 0, 42));
      EXPECT_TRUE(r1.success);
      auto r2 = world.block_on(arr.compare_exchange(3, 0, 43));
      EXPECT_FALSE(r2.success);
      EXPECT_EQ(r2.current, 42u);
    }
    world.barrier();
  });
}

TEST(Array, BatchAddManyIdxOneVal) {
  run_world(4, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 64, Distribution::kBlock);
    arr.fill(0);
    // Every PE adds 1 to every index.
    std::vector<global_index> idxs(64);
    std::iota(idxs.begin(), idxs.end(), 0);
    world.block_on(arr.batch_add(idxs, 1));
    world.barrier();
    EXPECT_EQ(world.block_on(arr.sum()), 64u * 4);
    world.barrier();
  });
}

TEST(Array, BatchOneToOneAndFetch) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 10, Distribution::kCyclic);
    arr.fill(100);
    if (world.my_pe() == 0) {
      std::vector<global_index> idxs{1, 3, 5, 7, 9};
      std::vector<std::uint64_t> vals{1, 3, 5, 7, 9};
      auto fetched = world.block_on(arr.batch_fetch_add(idxs, vals));
      ASSERT_EQ(fetched.size(), 5u);
      for (auto v : fetched) EXPECT_EQ(v, 100u);
      auto loaded = world.block_on(arr.batch_load(idxs));
      for (std::size_t i = 0; i < idxs.size(); ++i) {
        EXPECT_EQ(loaded[i], 100 + vals[i]);
      }
    }
    world.barrier();
  });
}

TEST(Array, BatchOneIdxManyVals) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 8, Distribution::kBlock);
    arr.fill(1);
    if (world.my_pe() == 0) {
      // Paper example: array.batch_mul(20, [2, 10]) multiplies sequentially.
      std::vector<std::uint64_t> vals{2, 10};
      world.block_on(arr.batch_mul(7, vals));
      EXPECT_EQ(world.block_on(arr.load(7)), 20u);
    }
    world.barrier();
  });
}

TEST(Array, BitwiseOps) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 4, Distribution::kBlock);
    arr.fill(0b1100);
    if (world.my_pe() == 0) {
      world.block_on(arr.bit_or(3, 0b0011));
      EXPECT_EQ(world.block_on(arr.load(3)), 0b1111u);
      world.block_on(arr.bit_and(3, 0b1010));
      EXPECT_EQ(world.block_on(arr.load(3)), 0b1010u);
      world.block_on(arr.bit_xor(3, 0b1111));
      EXPECT_EQ(world.block_on(arr.load(3)), 0b0101u);
      world.block_on(arr.shl(3, 2));
      EXPECT_EQ(world.block_on(arr.load(3)), 0b010100u);
      world.block_on(arr.shr(3, 1));
      EXPECT_EQ(world.block_on(arr.load(3)), 0b01010u);
    }
    world.barrier();
  });
}

TEST(Array, PutGetAcrossPes) {
  run_world(4, [](World& world) {
    auto arr =
        LocalLockArray<std::uint32_t>::create(world, 40, Distribution::kBlock);
    arr.fill(0);
    if (world.my_pe() == 0) {
      std::vector<std::uint32_t> data(25);
      std::iota(data.begin(), data.end(), 100);
      // Spans PEs 0,1,2 (10 elements each).
      world.block_on(arr.put(5, data));
      auto back = world.block_on(arr.get(5, 25));
      EXPECT_EQ(back, data);
      // Border reads.
      auto edge = world.block_on(arr.get(9, 2));
      EXPECT_EQ(edge[0], 104u);
      EXPECT_EQ(edge[1], 105u);
    }
    world.barrier();
  });
}

TEST(Array, UnsafeDirectRdma) {
  run_world(2, [](World& world) {
    auto arr =
        UnsafeArray<std::uint64_t>::create(world, 16, Distribution::kBlock);
    arr.fill(0);
    if (world.my_pe() == 0) {
      std::vector<std::uint64_t> data{11, 22, 33, 44};
      arr.unsafe_put_direct(10, data);  // lands on PE 1
      auto back = arr.unsafe_get_direct(10, 4);
      EXPECT_EQ(back, data);
    }
    world.barrier();
  });
}

TEST(Array, ReadOnlyLoadAndDirectGet) {
  run_world(2, [](World& world) {
    auto tmp =
        UnsafeArray<std::uint64_t>::create(world, 8, Distribution::kBlock);
    auto local = tmp.unsafe_local_slice();
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = world.my_pe() * 100 + i;
    }
    world.barrier();
    auto ro = std::move(tmp).into_read_only();
    EXPECT_EQ(world.block_on(ro.load(5)), 101u);
    auto direct = ro.get_direct(2, 4);  // spans both PEs
    EXPECT_EQ(direct[0], 2u);
    EXPECT_EQ(direct[1], 3u);
    EXPECT_EQ(direct[2], 100u);
    EXPECT_EQ(direct[3], 101u);
    world.barrier();
  });
}

TEST(Array, ConversionRoundTrip) {
  run_world(2, [](World& world) {
    auto arr =
        UnsafeArray<std::uint64_t>::create(world, 8, Distribution::kBlock);
    arr.fill(3);
    auto atomic = std::move(arr).into_atomic();
    EXPECT_EQ(world.block_on(atomic.sum()), 24u);
    auto locked = std::move(atomic).into_local_lock();
    EXPECT_EQ(world.block_on(locked.sum()), 24u);
    auto ro = std::move(locked).into_read_only();
    EXPECT_EQ(world.block_on(ro.sum()), 24u);
    world.barrier();
  });
}

TEST(Array, ConversionFailsWithExtraReference) {
  run_world(2, [](World& world) {
    auto arr =
        UnsafeArray<std::uint64_t>::create(world, 8, Distribution::kBlock);
    auto extra = arr.sub_array(0, 4);  // holds a second Darc reference
    EXPECT_THROW(std::move(arr).into_atomic(), ConversionError);
    world.barrier();
  });
}

TEST(Array, SubArrayViews) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 16, Distribution::kBlock);
    arr.fill(1);
    auto view = arr.sub_array(4, 8);
    EXPECT_EQ(view.len(), 8u);
    EXPECT_EQ(world.block_on(view.sum()), 8u);
    if (world.my_pe() == 0) {
      world.block_on(view.add(0, 10));  // global index 4
      EXPECT_EQ(world.block_on(arr.load(4)), 11u);
    }
    world.barrier();
    // Sub-array of sub-array.
    auto inner = view.sub_array(2, 2);
    EXPECT_EQ(world.block_on(inner.sum()), 2u);
    world.barrier();
  });
}

TEST(Array, Reductions) {
  run_world(4, [](World& world) {
    auto arr =
        UnsafeArray<std::int64_t>::create(world, 12, Distribution::kBlock);
    if (world.my_pe() == 0) {
      std::vector<std::int64_t> vals{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, -7};
      world.block_on(arr.put(0, vals));
    }
    world.barrier();
    EXPECT_EQ(world.block_on(arr.sum()), 37);
    EXPECT_EQ(world.block_on(arr.min()), -7);
    EXPECT_EQ(world.block_on(arr.max()), 9);
    world.barrier();
  });
}

TEST(Array, DoubleElements) {
  run_world(2, [](World& world) {
    auto arr = AtomicArray<double>::create(world, 8, Distribution::kBlock);
    EXPECT_FALSE(arr.is_native());  // doubles use the 1-byte-mutex regime
    arr.fill(0.5);
    if (world.my_pe() == 0) {
      world.block_on(arr.add(7, 0.25));
      EXPECT_DOUBLE_EQ(world.block_on(arr.load(7)), 0.75);
    }
    world.barrier();
    EXPECT_DOUBLE_EQ(world.block_on(arr.sum()), 4.25);
    world.barrier();
  });
}

TEST(Array, ConcurrentAtomicAddsFromAllPes) {
  run_world(4, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 4, Distribution::kBlock);
    arr.fill(0);
    // All PEs hammer index 0 concurrently.
    std::vector<global_index> idxs(100, 0);
    world.block_on(arr.batch_add(idxs, 1));
    world.barrier();
    EXPECT_EQ(world.block_on(arr.load(0)), 400u);
    world.barrier();
  });
}

TEST(Array, LocalLockGuards) {
  run_world(2, [](World& world) {
    auto arr =
        LocalLockArray<std::uint64_t>::create(world, 8, Distribution::kBlock);
    {
      auto guard = arr.write_local_data();
      for (auto& v : guard.data()) v = world.my_pe() + 1;
    }
    world.barrier();
    {
      auto guard = arr.read_local_data();
      for (auto v : guard.data()) EXPECT_EQ(v, world.my_pe() + 1);
    }
    EXPECT_EQ(world.block_on(arr.sum()), 4u + 8u);
    world.barrier();
  });
}

TEST(Array, TeamScopedArray) {
  run_world(4, [](World& world) {
    Team team = world.split_block(2);
    auto arr = AtomicArray<std::uint64_t>::create(world, 10,
                                                  Distribution::kBlock, &team);
    EXPECT_EQ(arr.team().size(), 2u);
    arr.fill(world.my_pe() / 2 + 1);  // both members of a team agree
    // Sum within the team: 10 elements x (team index + 1).
    const std::uint64_t expected = 10u * (world.my_pe() / 2 + 1);
    EXPECT_EQ(world.block_on(arr.sum()), expected);
    world.barrier();
  });
}

TEST(Array, EmptyAndSingleElement) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 1, Distribution::kBlock);
    arr.fill(5);
    EXPECT_EQ(world.block_on(arr.sum()), 5u);
    EXPECT_EQ(arr.local_len(), world.my_pe() == 0 ? 1u : 0u);
    world.barrier();
  });
}

TEST(Array, OutOfBoundsThrows) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 8, Distribution::kBlock);
    EXPECT_THROW(world.block_on(arr.load(8)), BoundsError);
    EXPECT_THROW(arr.sub_array(4, 5), BoundsError);
    world.barrier();
  });
}

}  // namespace
