// Simulator tests: the event engine, the node pipeline model, and the
// paper-shape properties of the modeled Figs. 3-5 series.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/netmodel.hpp"
#include "sim/sim_kernels.hpp"

namespace {

using namespace lamellar;
using namespace lamellar::sim;
namespace lb = lamellar::bale;

TEST(SimEngine, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 30.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEngine, TiesRunInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(5, [&] { order.push_back(1); });
  s.at(5, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimEngine, NestedScheduling) {
  Simulator s;
  double fired_at = 0;
  s.at(1, [&] { s.after(4, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(SimEngine, PastSchedulingThrows) {
  Simulator s;
  s.at(10, [&] { EXPECT_THROW(s.at(5, [] {}), Error); });
  s.run();
}

TEST(SimEngine, ResourceSerializes) {
  Resource r;
  EXPECT_EQ(r.serve(0, 10), 10.0);
  EXPECT_EQ(r.serve(5, 10), 20.0);   // queued behind the first
  EXPECT_EQ(r.serve(50, 10), 60.0);  // idle gap
  EXPECT_EQ(r.busy_time(), 30.0);
}

TEST(NetModel, CrossRackFraction) {
  const auto cluster = paper_cluster();
  EXPECT_EQ(cross_rack_fraction(cluster, 1), 0.0);
  EXPECT_EQ(cross_rack_fraction(cluster, 12), 0.0);
  EXPECT_GT(cross_rack_fraction(cluster, 13), 0.0);
  EXPECT_GT(cross_rack_fraction(cluster, 32),
            cross_rack_fraction(cluster, 13));
}

TEST(NetModel, MoreOpsTakeLonger) {
  const auto cluster = paper_cluster();
  NodeTraffic t;
  t.ops_per_node = 1'000'000;
  const double a = simulate_node(cluster, 4, t).makespan_ns;
  t.ops_per_node = 2'000'000;
  const double b = simulate_node(cluster, 4, t).makespan_ns;
  EXPECT_GT(b, a * 1.5);
}

TEST(NetModel, SmallerBuffersAreSlower) {
  const auto cluster = paper_cluster();
  NodeTraffic t;
  t.ops_per_node = 1'000'000;
  t.buffer_ops = 10'000;
  const double big = simulate_node(cluster, 4, t).makespan_ns;
  t.buffer_ops = 100;
  const double small = simulate_node(cluster, 4, t).makespan_ns;
  EXPECT_GT(small, big);
}

// ---- paper-shape properties (the EXPERIMENTS.md claims, as tests) ----

TEST(PaperShapes, Fig3LamellarAmWinsAtScale) {
  const auto cores = paper_core_counts();
  auto am = model_histogram(lb::Backend::kLamellarAm, cores);
  for (auto backend :
       {lb::Backend::kLamellarArray, lb::Backend::kExstack,
        lb::Backend::kExstack2, lb::Backend::kConveyor,
        lb::Backend::kSelector, lb::Backend::kChapel}) {
    auto other = model_histogram(backend, cores);
    EXPECT_GT(am.back().value, other.back().value)
        << lb::backend_name(backend);
  }
}

TEST(PaperShapes, Fig3AllBackendsScale) {
  const auto cores = paper_core_counts();
  for (auto backend :
       {lb::Backend::kLamellarAm, lb::Backend::kLamellarArray,
        lb::Backend::kExstack, lb::Backend::kConveyor,
        lb::Backend::kChapel}) {
    auto series = model_histogram(backend, cores);
    EXPECT_GT(series.back().value, series.front().value * 4)
        << lb::backend_name(backend);
  }
}

TEST(PaperShapes, Fig4ChapelWinsAtScale) {
  const auto cores = paper_core_counts();
  auto chapel = model_indexgather(lb::Backend::kChapel, cores);
  for (auto backend :
       {lb::Backend::kLamellarAm, lb::Backend::kLamellarArray,
        lb::Backend::kExstack, lb::Backend::kExstack2,
        lb::Backend::kConveyor, lb::Backend::kSelector}) {
    auto other = model_indexgather(backend, cores);
    EXPECT_GT(chapel.back().value, other.back().value)
        << lb::backend_name(backend);
  }
}

TEST(PaperShapes, Fig4LamellarReversal) {
  const auto cores = paper_core_counts();
  auto am = model_indexgather(lb::Backend::kLamellarAm, cores);
  auto arr = model_indexgather(lb::Backend::kLamellarArray, cores);
  // Small scale: manual AM aggregation ahead; large scale: the runtime
  // array path overtakes (paper Sec. IV-B2).
  EXPECT_GT(am.front().value, arr.front().value);
  EXPECT_GT(arr.back().value, am.back().value);
}

TEST(PaperShapes, Fig4SlowerThanFig3) {
  const auto cores = paper_core_counts();
  for (auto backend :
       {lb::Backend::kLamellarAm, lb::Backend::kLamellarArray,
        lb::Backend::kExstack}) {
    auto h = model_histogram(backend, cores);
    auto ig = model_indexgather(backend, cores);
    EXPECT_LT(ig.back().value, h.back().value) << lb::backend_name(backend);
  }
}

TEST(PaperShapes, Fig5CommunicationMinimizersWin) {
  const auto cores = paper_core_counts();
  auto push = model_randperm(lb::RandpermImpl::kAmPush, cores);
  auto opt = model_randperm(lb::RandpermImpl::kAmDartOpt, cores);
  auto dart = model_randperm(lb::RandpermImpl::kAmDart, cores);
  auto darts = model_randperm(lb::RandpermImpl::kArrayDarts, cores);
  EXPECT_LT(push.back().value, opt.back().value);
  EXPECT_LT(opt.back().value, dart.back().value);
  EXPECT_LE(dart.back().value, darts.back().value);
}

TEST(PaperShapes, Fig5ShmemPenaltyAtFourRacks) {
  const auto cores = paper_core_counts();
  auto ex = model_randperm(lb::RandpermImpl::kExstack, cores);
  auto dart = model_randperm(lb::RandpermImpl::kAmDart, cores);
  // Exstack: reasonable at one node, noticeable penalty at 2048 cores
  // (paper Sec. IV-B3); Lamellar stays comparatively flat.
  const double ex_growth = ex.back().value / ex.front().value;
  const double dart_growth = dart.back().value / dart.front().value;
  EXPECT_GT(ex_growth, 2.0);
  EXPECT_LT(dart_growth, 2.0);
}

TEST(PaperShapes, Fig5LamellarFlat) {
  const auto cores = paper_core_counts();
  for (auto impl :
       {lb::RandpermImpl::kArrayDarts, lb::RandpermImpl::kAmDart,
        lb::RandpermImpl::kAmDartOpt, lb::RandpermImpl::kAmPush}) {
    auto series = model_randperm(impl, cores);
    // Multi-node points stay within 2x of each other.
    double lo = series[1].value, hi = series[1].value;
    for (std::size_t i = 1; i < series.size(); ++i) {
      lo = std::min(lo, series[i].value);
      hi = std::max(hi, series[i].value);
    }
    EXPECT_LT(hi / lo, 2.0) << lb::randperm_impl_name(impl);
  }
}

TEST(PaperShapes, Fig2ThresholdsInPerfModel) {
  // The bandwidth-curve structure asserted directly on the model (the
  // fig2_bandwidth bench exercises the real code paths end to end).
  const auto p = paper_perf_params();
  EXPECT_GT(bandwidth_mb_s(128, p.pipelined_cost_ns(128)),
            bandwidth_mb_s(256, p.pipelined_cost_ns(256)));
  EXPECT_GT(bandwidth_mb_s(1 << 20, p.pipelined_cost_ns(1 << 20)), 11'000.0);
}

}  // namespace
