// Advanced Active Message behaviours from paper Sec. III-C: nested AM
// launches ("AM dependency chains and recursive design patterns"), rich
// return payloads, stress under aggregation, SMP-style single-PE worlds,
// and the implicit-finalization guarantee that PEs stay responsive until
// everyone is ready to deinitialize.
#include <gtest/gtest.h>

#include <atomic>

#include "lamellar.hpp"

namespace {

using namespace lamellar;

std::atomic<int> g_chain_hits{0};

/// Forwards itself around the ring `hops` times — nested launches from
/// inside exec() via ctx.world().
struct RingAm {
  std::uint32_t hops = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(hops);
  }
  void exec(AmContext& ctx) {
    g_chain_hits.fetch_add(1);
    if (hops > 0) {
      const pe_id next = (ctx.current_pe() + 1) % ctx.num_pes();
      ctx.world().exec_am_pe(next, RingAm{hops - 1});
    }
  }
};

/// Recursive divide-and-conquer sum of [lo, hi): each level splits across
/// two PEs — the "recursive design patterns" the paper highlights.
struct TreeSumAm {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(lo, hi);
  }
  std::uint64_t exec(AmContext& ctx) {
    if (hi - lo <= 4) {
      std::uint64_t s = 0;
      for (auto v = lo; v < hi; ++v) s += v;
      return s;
    }
    const std::uint64_t mid = lo + (hi - lo) / 2;
    auto left = ctx.world().exec_am_pe(
        (ctx.current_pe() + 1) % ctx.num_pes(), TreeSumAm{lo, mid});
    auto right = ctx.world().exec_am_pe(
        (ctx.current_pe() + 2) % ctx.num_pes(), TreeSumAm{mid, hi});
    return ctx.world().block_on(std::move(left)) +
           ctx.world().block_on(std::move(right));
  }
};

/// Returns a non-trivial payload (the paper: anything serializable).
struct EchoStructAm {
  std::vector<std::string> names;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(names);
  }
  std::pair<std::uint64_t, std::vector<std::string>> exec(AmContext& ctx) {
    auto out = names;
    out.push_back("visited-" + std::to_string(ctx.current_pe()));
    return {ctx.current_pe(), std::move(out)};
  }
};

struct SlowAm {
  std::uint32_t spin = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(spin);
  }
  std::uint64_t exec(AmContext&) {
    std::uint64_t acc = 0;
    for (std::uint32_t i = 0; i < spin; ++i) acc += i * i;
    return acc;
  }
};

}  // namespace

LAMELLAR_REGISTER_AM(RingAm);
LAMELLAR_REGISTER_AM(TreeSumAm);
LAMELLAR_REGISTER_AM(EchoStructAm);
LAMELLAR_REGISTER_AM(SlowAm);

namespace {

TEST(AmAdvanced, NestedRingChain) {
  g_chain_hits.store(0);
  run_world(4, [](World& world) {
    if (world.my_pe() == 0) {
      world.exec_am_pe(1, RingAm{11});
    }
    // Implicit finalization drains the whole chain, including hops that
    // were launched by remote executions (the Listing 1 discussion: PEs
    // stay alive serving AMs until everyone is ready to exit).
  });
  EXPECT_EQ(g_chain_hits.load(), 12);
}

TEST(AmAdvanced, RecursiveTreeSum) {
  run_world(3, [](World& world) {
    if (world.my_pe() == 0) {
      const std::uint64_t n = 64;
      auto total = world.block_on(world.exec_am_pe(1, TreeSumAm{0, n}));
      EXPECT_EQ(total, n * (n - 1) / 2);
    }
    world.barrier();
  });
}

TEST(AmAdvanced, RichReturnPayload) {
  run_world(2, [](World& world) {
    if (world.my_pe() == 0) {
      auto [pe, names] = world.block_on(
          world.exec_am_pe(1, EchoStructAm{{"alpha", "beta"}}));
      EXPECT_EQ(pe, 1u);
      ASSERT_EQ(names.size(), 3u);
      EXPECT_EQ(names[2], "visited-1");
    }
    world.barrier();
  });
}

TEST(AmAdvanced, ManySmallAmsAggregate) {
  run_world(3, [](World& world) {
    std::vector<Future<std::uint64_t>> futs;
    const int kEach = 500;
    for (int i = 0; i < kEach; ++i) {
      futs.push_back(
          world.exec_am_pe((world.my_pe() + 1) % 3, SlowAm{10}));
    }
    for (auto& f : futs) {
      EXPECT_EQ(world.block_on(std::move(f)), 285u);
    }
    // Aggregation actually happened: far fewer fabric buffers than AMs.
    EXPECT_LT(world.metrics_snapshot().counter("cmdq.buffers_sent"),
              static_cast<std::uint64_t>(kEach));
    world.barrier();
  });
}

TEST(AmAdvanced, SinglePeWorldLocalBypass) {
  // SMP-style world: one PE, everything executes via the local bypass.
  run_world(1, [](World& world) {
    EXPECT_EQ(world.num_pes(), 1u);
    auto v = world.block_on(world.exec_am_pe(0, SlowAm{100}));
    EXPECT_EQ(v, 328350u);
    auto all = world.block_on(world.exec_am_all(SlowAm{10}));
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0], 285u);
    EXPECT_EQ(world.metrics_snapshot().counter("cmdq.buffers_sent"),
              0u);  // no wire
    world.barrier();
  });
}

TEST(AmAdvanced, MixedTrafficStress) {
  run_world(4, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 64, Distribution::kCyclic);
    arr.fill(0);
    auto rng = pe_rng(11, world.my_pe());
    // Interleave array batches, direct AMs, and nested rings.
    for (int round = 0; round < 5; ++round) {
      std::vector<global_index> idxs(200);
      for (auto& i : idxs) i = rng.uniform(64);
      auto batch = arr.batch_add(idxs, 1);
      world.exec_am_pe(rng.uniform(4), RingAm{3});
      world.exec_am_pe(rng.uniform(4), SlowAm{50});
      world.block_on(std::move(batch));
    }
    world.wait_all();
    world.barrier();
    EXPECT_EQ(world.block_on(arr.sum()), 4u * 5 * 200);
    world.barrier();
  });
}

TEST(AmAdvanced, ThreadsPerPeTwo) {
  RuntimeConfig cfg;
  cfg.threads_per_pe = 2;
  run_world(
      2,
      [](World& world) {
        auto arr = AtomicArray<std::uint64_t>::create(world, 32,
                                                      Distribution::kBlock);
        arr.fill(0);
        std::vector<global_index> idxs(1000);
        auto rng = pe_rng(13, world.my_pe());
        for (auto& i : idxs) i = rng.uniform(32);
        world.block_on(arr.batch_add(idxs, 1));
        world.barrier();
        EXPECT_EQ(world.block_on(arr.sum()), 2000u);
        world.barrier();
      },
      cfg);
}

}  // namespace
