// Unit tests for the common substrate: byte buffers, serialization, RNG,
// configuration parsing, move-only functions, queues.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/mpmc_queue.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"
#include "common/unique_function.hpp"

namespace {

using namespace lamellar;

TEST(Bytes, WriteReadRoundTrip) {
  ByteBuffer buf;
  buf.write_pod<std::uint32_t>(0xdeadbeef);
  buf.write_pod<double>(3.25);
  EXPECT_EQ(buf.size(), 12u);
  EXPECT_EQ(buf.read_pod<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(buf.read_pod<double>(), 3.25);
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(Bytes, ReadPastEndThrows) {
  ByteBuffer buf;
  buf.write_pod<std::uint8_t>(1);
  buf.read_pod<std::uint8_t>();
  EXPECT_THROW(buf.read_pod<std::uint8_t>(), DeserializeError);
}

TEST(Bytes, SeekAndViews) {
  ByteBuffer buf;
  for (std::uint8_t i = 0; i < 10; ++i) buf.write_pod(i);
  auto v = buf.read_view(4);
  EXPECT_EQ(static_cast<std::uint8_t>(v[3]), 3);
  buf.seek(8);
  EXPECT_EQ(buf.read_pod<std::uint8_t>(), 8);
  EXPECT_THROW(buf.seek(11), DeserializeError);
}

struct Inner {
  std::uint32_t a = 0;
  std::string s;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(a, s);
  }
  bool operator==(const Inner&) const = default;
};

struct Outer {
  Inner inner;
  std::vector<std::uint64_t> nums;
  std::vector<Inner> inners;
  std::optional<double> opt;
  std::pair<int, int> pr{0, 0};
  template <class Ar>
  void serialize(Ar& ar) {
    ar(inner, nums, inners, opt, pr);
  }
  bool operator==(const Outer&) const = default;
};

TEST(Serialize, NestedStructures) {
  Outer o;
  o.inner = {42, "hello"};
  o.nums = {1, 2, 3, 1ULL << 60};
  o.inners = {{1, "a"}, {2, "bb"}};
  o.opt = 2.5;
  o.pr = {-3, 9};
  auto buf = serialize_to_buffer(o);
  auto back = deserialize_from_buffer<Outer>(buf);
  EXPECT_EQ(back, o);
}

TEST(Serialize, EmptyContainersAndNullopt) {
  Outer o;
  auto buf = serialize_to_buffer(o);
  auto back = deserialize_from_buffer<Outer>(buf);
  EXPECT_EQ(back, o);
}

TEST(Serialize, EnumsAndTuples) {
  enum class Color : std::uint8_t { kRed = 1, kBlue = 7 };
  std::tuple<Color, std::uint16_t, std::string> t{Color::kBlue, 512, "x"};
  auto buf = serialize_to_buffer(t);
  auto back =
      deserialize_from_buffer<std::tuple<Color, std::uint16_t, std::string>>(
          buf);
  EXPECT_EQ(back, t);
}

TEST(Serialize, TrivialVectorFastPath) {
  std::vector<std::uint32_t> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i * 3;
  auto buf = serialize_to_buffer(v);
  EXPECT_EQ(buf.size(), 8 + 4000u);
  auto back = deserialize_from_buffer<std::vector<std::uint32_t>>(buf);
  EXPECT_EQ(back, v);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Xoshiro256 a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformBounds) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(13);
    ASSERT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);  // all buckets hit
}

TEST(Rng, UniformIsRoughlyUniform) {
  Xoshiro256 rng(99);
  std::map<std::uint64_t, int> counts;
  const int kTrials = 64000;
  for (int i = 0; i < kTrials; ++i) counts[rng.uniform(8)]++;
  for (auto& [k, c] : counts) {
    EXPECT_NEAR(c, kTrials / 8, kTrials / 80);  // within 10%
  }
}

TEST(Rng, PerPeStreamsDiffer) {
  auto r0 = pe_rng(42, 0);
  auto r1 = pe_rng(42, 1);
  EXPECT_NE(r0.next(), r1.next());
}

TEST(Config, EnvParsing) {
  setenv("LAMELLAR_TEST_SIZE", "4K", 1);
  EXPECT_EQ(env_size("LAMELLAR_TEST_SIZE", 0), 4096u);
  setenv("LAMELLAR_TEST_SIZE", "2M", 1);
  EXPECT_EQ(env_size("LAMELLAR_TEST_SIZE", 0), 2u * 1024 * 1024);
  setenv("LAMELLAR_TEST_SIZE", "1G", 1);
  EXPECT_EQ(env_size("LAMELLAR_TEST_SIZE", 0), 1024u * 1024 * 1024);
  setenv("LAMELLAR_TEST_SIZE", "123", 1);
  EXPECT_EQ(env_size("LAMELLAR_TEST_SIZE", 0), 123u);
  unsetenv("LAMELLAR_TEST_SIZE");
  EXPECT_EQ(env_size("LAMELLAR_TEST_SIZE", 77), 77u);
}

TEST(Config, Defaults) {
  const RuntimeConfig cfg;
  EXPECT_EQ(cfg.agg_threshold_bytes, 100u * 1024);  // paper default
  EXPECT_EQ(cfg.batch_op_limit, 10'000u);           // paper experiments
}

TEST(UniqueFunction, MoveOnlyCapture) {
  auto p = std::make_unique<int>(41);
  UniqueFunction<int()> f([p = std::move(p)] { return *p + 1; });
  EXPECT_EQ(f(), 42);
}

TEST(UniqueFunction, LargeCaptureHeapPath) {
  std::array<char, 200> big{};
  big[0] = 'x';
  UniqueFunction<char()> f([big] { return big[0]; });
  UniqueFunction<char()> g(std::move(f));
  EXPECT_EQ(g(), 'x');
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
}

TEST(UniqueFunction, Reassignment) {
  UniqueFunction<int()> f([] { return 1; });
  f = [] { return 2; };
  EXPECT_EQ(f(), 2);
  f.reset();
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(MpmcQueue, FifoOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, DrainInto) {
  MpmcQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  std::vector<int> out;
  EXPECT_EQ(q.drain_into(out), 5u);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_TRUE(q.empty());
}

TEST(Types, Helpers) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(align_up(13, 8), 16u);
  EXPECT_EQ(align_up(16, 8), 16u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

}  // namespace
