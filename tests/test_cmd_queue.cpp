// Zero-copy command-queue hot path (ISSUE 2): in-place record commit under
// concurrency, large-record bypass ordering, buffer-pool recycle
// correctness, reply deserialization from borrowed spans, and the
// steady-state copy/allocation budget (zero buffer allocations, exactly one
// byte copy per serialized byte).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/serialize.hpp"
#include "core/am/wire.hpp"
#include "lamellae/cmd_queue.hpp"
#include "lamellae/shmem_lamellae.hpp"
#include "lamellar.hpp"

namespace {

using namespace lamellar;

const OutgoingQueues::ProgressFn kNoProgress = [] {};

/// Drain every queued fabric message for `l` into one flat byte stream.
std::vector<std::byte> drain_stream(Lamellae& l, std::size_t* buffers = nullptr) {
  std::vector<std::byte> stream;
  FabricMessage msg;
  std::size_t n = 0;
  while (l.poll(msg)) {
    ++n;
    auto s = msg.payload.as_span();
    stream.insert(stream.end(), s.begin(), s.end());
  }
  if (buffers != nullptr) *buffers = n;
  return stream;
}

// ---- in-place record commit under concurrency ----

TEST(CmdQueue, InPlaceCommitFromMultipleThreads) {
  ShmemLamellaeGroup group(2, {});
  auto l0 = group.endpoint(0);
  auto l1 = group.endpoint(1);
  OutgoingQueues q(*l0, 1024);

  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kPerThread = 200;
  std::vector<std::thread> ts;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    ts.emplace_back([&q, tid] {
      for (std::uint32_t seq = 0; seq < kPerThread; ++seq) {
        auto w = q.begin_record(1);
        ByteBuffer& buf = w.buffer();
        buf.write_pod<std::uint32_t>(tid);
        buf.write_pod<std::uint32_t>(seq);
        const std::uint32_t len = 8 + (seq % 17);
        buf.write_pod<std::uint32_t>(len);
        for (std::uint32_t i = 0; i < len; ++i) {
          buf.write_pod<std::uint8_t>(
              static_cast<std::uint8_t>(tid * 31 + seq + i));
        }
        q.commit_record(w, kNoProgress);
      }
    });
  }
  for (auto& t : ts) t.join();
  q.flush_all(kNoProgress);
  EXPECT_FALSE(q.has_pending());

  // Records must arrive whole — a torn record (bytes from two writers
  // interleaved) would fail the pattern check below.
  std::vector<std::byte> stream = drain_stream(*l1);
  std::size_t pos = 0;
  std::map<std::uint32_t, std::uint32_t> seen;  // tid -> count
  auto read_u32 = [&stream, &pos] {
    std::uint32_t v = 0;
    std::memcpy(&v, stream.data() + pos, 4);
    pos += 4;
    return v;
  };
  while (pos < stream.size()) {
    ASSERT_LE(pos + 12, stream.size());
    const std::uint32_t tid = read_u32();
    const std::uint32_t seq = read_u32();
    const std::uint32_t len = read_u32();
    ASSERT_LT(tid, kThreads);
    ASSERT_LT(seq, kPerThread);
    ASSERT_LE(pos + len, stream.size());
    for (std::uint32_t i = 0; i < len; ++i) {
      ASSERT_EQ(static_cast<std::uint8_t>(stream[pos + i]),
                static_cast<std::uint8_t>(tid * 31 + seq + i));
    }
    pos += len;
    seen[tid]++;
  }
  ASSERT_EQ(seen.size(), kThreads);
  for (const auto& [tid, count] : seen) EXPECT_EQ(count, kPerThread);
}

// ---- large-record bypass ----

TEST(CmdQueue, LargeRecordLeavesImmediatelyAfterStagedRecords) {
  ShmemLamellaeGroup group(2, {});
  auto l0 = group.endpoint(0);
  auto l1 = group.endpoint(1);
  constexpr std::size_t kThreshold = 256;
  OutgoingQueues q(*l0, kThreshold);

  // Three small records stay staged below the threshold.
  for (std::uint8_t i = 0; i < 3; ++i) {
    auto w = q.begin_record(1);
    w.buffer().write_pod<std::uint8_t>(i);
    q.commit_record(w, kNoProgress);
  }
  EXPECT_TRUE(q.has_pending());

  // A record at/above the threshold departs at commit — no flush needed —
  // and the staged records leave ahead of it (per-destination ordering).
  {
    auto w = q.begin_record(1);
    for (std::size_t i = 0; i < kThreshold; ++i) {
      w.buffer().write_pod<std::uint8_t>(0xAB);
    }
    q.commit_record(w, kNoProgress);
  }
  EXPECT_FALSE(q.has_pending());
  EXPECT_EQ(l0->metrics().snapshot().counter("cmdq.bypass_large"), 1u);

  std::size_t buffers = 0;
  std::vector<std::byte> stream = drain_stream(*l1, &buffers);
  ASSERT_EQ(stream.size(), 3 + kThreshold);
  for (std::uint8_t i = 0; i < 3; ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(stream[i]), i);
  }
  for (std::size_t i = 3; i < stream.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(stream[i]), 0xAB);
  }
}

TEST(CmdQueue, SendNowFlushesStagedFirst) {
  ShmemLamellaeGroup group(2, {});
  auto l0 = group.endpoint(0);
  auto l1 = group.endpoint(1);
  OutgoingQueues q(*l0, 1024);

  auto w = q.begin_record(1);
  w.buffer().write_pod<std::uint32_t>(0x11111111u);
  q.commit_record(w, kNoProgress);

  ByteBuffer big;
  for (int i = 0; i < 64; ++i) big.write_pod<std::uint32_t>(0x22222222u);
  q.send_now(1, std::move(big), kNoProgress);

  std::size_t buffers = 0;
  std::vector<std::byte> stream = drain_stream(*l1, &buffers);
  EXPECT_EQ(buffers, 2u);  // staged buffer, then the direct one
  std::uint32_t first = 0;
  std::memcpy(&first, stream.data(), 4);
  EXPECT_EQ(first, 0x11111111u);
}

// ---- aborted records roll back ----

TEST(CmdQueue, UncommittedRecordIsRolledBack) {
  ShmemLamellaeGroup group(2, {});
  auto l0 = group.endpoint(0);
  auto l1 = group.endpoint(1);
  OutgoingQueues q(*l0, 1024);

  {
    auto w = q.begin_record(1);
    w.buffer().write_pod<std::uint32_t>(0xAAAAAAAAu);
    q.commit_record(w, kNoProgress);
  }
  {
    // Simulates serialization throwing mid-record: writer destroyed without
    // commit must erase the partial bytes.
    auto w = q.begin_record(1);
    w.buffer().write_pod<std::uint32_t>(0xDEADBEEFu);
  }
  {
    auto w = q.begin_record(1);
    w.buffer().write_pod<std::uint32_t>(0xBBBBBBBBu);
    q.commit_record(w, kNoProgress);
  }
  q.flush_all(kNoProgress);

  std::vector<std::byte> stream = drain_stream(*l1);
  ASSERT_EQ(stream.size(), 8u);
  std::uint32_t a = 0, b = 0;
  std::memcpy(&a, stream.data(), 4);
  std::memcpy(&b, stream.data() + 4, 4);
  EXPECT_EQ(a, 0xAAAAAAAAu);
  EXPECT_EQ(b, 0xBBBBBBBBu);
}

// ---- buffer pool ----

TEST(BufferPool, AcquireReusesReleasedCapacity) {
  BufferPool pool(2);
  bool hit = true;
  ByteBuffer a = pool.acquire(1024, &hit);
  EXPECT_FALSE(hit);
  a.write_pod<std::uint64_t>(7);
  const std::size_t grown = a.capacity();
  EXPECT_TRUE(pool.release(std::move(a)));
  EXPECT_EQ(pool.size(), 1u);

  ByteBuffer b = pool.acquire(0, &hit);
  EXPECT_TRUE(hit);
  EXPECT_TRUE(b.empty());           // reset-and-reuse: contents dropped...
  EXPECT_EQ(b.capacity(), grown);   // ...allocation kept.

  // The bound drops overflow instead of growing without limit.
  EXPECT_TRUE(pool.release(ByteBuffer{16}));
  EXPECT_TRUE(pool.release(ByteBuffer{16}));
  EXPECT_FALSE(pool.release(ByteBuffer{16}));
  EXPECT_EQ(pool.size(), 2u);
}

TEST(CmdQueue, RecycledBuffersFeedTheLanes) {
  ShmemLamellaeGroup group(2, {});
  auto l0 = group.endpoint(0);
  auto l1 = group.endpoint(1);
  OutgoingQueues q(*l0, 128);

  auto counter = [&l0](const char* name) {
    return l0->metrics().snapshot().counter(name);
  };

  // First buffer is a pool miss.
  {
    auto w = q.begin_record(1);
    w.buffer().write_pod<std::uint64_t>(1);
    q.commit_record(w, kNoProgress);
  }
  q.flush_all(kNoProgress);
  EXPECT_EQ(counter("cmdq.buffers_allocated"), 1u);

  // Hand the drained inbox buffer back; the next lane fill must reuse it.
  FabricMessage msg;
  ASSERT_TRUE(l1->poll(msg));
  q.recycle(std::move(msg.payload));
  EXPECT_EQ(counter("cmdq.buffers_recycled"), 1u);

  {
    auto w = q.begin_record(1);
    w.buffer().write_pod<std::uint64_t>(2);
    q.commit_record(w, kNoProgress);
  }
  q.flush_all(kNoProgress);
  EXPECT_EQ(counter("cmdq.buffers_allocated"), 1u);  // no new allocation
  ASSERT_TRUE(l1->poll(msg));
}

// ---- has_pending is lock-free over lanes ----

TEST(CmdQueue, HasPendingTracksLaneOccupancy) {
  ShmemLamellaeGroup group(4, {});
  auto l0 = group.endpoint(0);
  OutgoingQueues q(*l0, 1024);
  EXPECT_FALSE(q.has_pending());
  for (pe_id dst = 1; dst < 4; ++dst) {
    auto w = q.begin_record(dst);
    w.buffer().write_pod<std::uint32_t>(42);
    q.commit_record(w, kNoProgress);
  }
  EXPECT_TRUE(q.has_pending());
  q.flush(1, kNoProgress);
  EXPECT_TRUE(q.has_pending());
  q.flush_all(kNoProgress);
  EXPECT_FALSE(q.has_pending());
}

// ---- reply deserialization from borrowed spans ----

struct Mixed {
  std::uint32_t a = 0;
  std::string s;
  std::vector<std::uint16_t> v;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(a, s, v);
  }
};

TEST(Serialize, DeserializerReadsBorrowedSpan) {
  Mixed m;
  m.a = 77;
  m.s = "zero copy";
  m.v = {1, 2, 3, 500};
  ByteBuffer buf;
  Serializer ser(buf);
  ser.put(m);

  // Copy the serialized image into storage the ByteBuffer does not own, to
  // prove deserialization needs only the borrowed view.
  std::vector<std::byte> raw(buf.as_span().begin(), buf.as_span().end());
  Deserializer de{std::span<const std::byte>(raw)};
  Mixed back;
  de.get(back);
  EXPECT_EQ(back.a, m.a);
  EXPECT_EQ(back.s, m.s);
  EXPECT_EQ(back.v, m.v);
  EXPECT_EQ(de.remaining(), 0u);

  // Truncated input throws instead of reading past the span.
  Deserializer short_de(std::span<const std::byte>(raw.data(), raw.size() - 1));
  Mixed bad;
  EXPECT_THROW(short_de.get(bad), DeserializeError);
}

TEST(Wire, SpanReadRecordWalksAggregatedBuffer) {
  ByteBuffer buf;
  const std::vector<std::byte> p1 = {std::byte{1}, std::byte{2}};
  const std::vector<std::byte> p2 = {std::byte{9}};
  write_record(buf, {.type = 3, .flags = kWantsReply, .req_id = 11}, p1);
  write_record(buf, {.type = kReplyType, .flags = 0, .req_id = 12}, p2);

  std::span<const std::byte> cursor = buf.as_span();
  AmEnvelope env;
  std::span<const std::byte> payload;
  ASSERT_TRUE(read_record(cursor, env, payload));
  EXPECT_EQ(env.type, 3u);
  EXPECT_EQ(env.req_id, 11u);
  ASSERT_EQ(payload.size(), 2u);
  EXPECT_EQ(payload.data(), buf.data() + kRecordHeaderBytes);  // borrowed
  ASSERT_TRUE(read_record(cursor, env, payload));
  EXPECT_EQ(env.type, kReplyType);
  ASSERT_EQ(payload.size(), 1u);
  EXPECT_FALSE(read_record(cursor, env, payload));
}

}  // namespace

// ---- steady-state copy/allocation budget through a live world ----

namespace {

struct EchoAm {
  std::uint64_t v = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(v);
  }
  std::uint64_t exec(AmContext&) { return v * 2; }
};

}  // namespace

LAMELLAR_REGISTER_AM(EchoAm);

namespace {

TEST(CmdQueueWorld, SteadyStateZeroBufferAllocsAndOneCopy) {
  RuntimeConfig cfg;
  cfg.agg_threshold_bytes = 2048;
  run_world(
      2,
      [](World& world) {
        const pe_id other = 1 - world.my_pe();
        auto rounds = [&](std::uint64_t n) {
          for (std::uint64_t i = 0; i < n; ++i) {
            auto f = world.exec_am_pe(other, EchoAm{i});
            ASSERT_EQ(world.block_on(std::move(f)), 2 * i);
          }
        };
        rounds(300);  // warm-up: lanes primed, pools stocked
        world.barrier();
        const auto warm = world.metrics_snapshot();
        rounds(300);
        world.barrier();
        const auto done = world.metrics_snapshot();

        // Steady state recycles instead of allocating.  Thread-timing races
        // (a prime landing just before the dispatcher's recycle) may grow
        // the circulating stock by a constant — more often under sanitizer
        // slowdowns — so assert the structural property: allocations do not
        // scale with traffic.  Allow the greater of 1% of buffers moved or
        // a small constant (stock growth is capped by pool retention, so it
        // is O(1) regardless of round count).
        const std::uint64_t new_allocs =
            done.counter("cmdq.buffers_allocated") -
            warm.counter("cmdq.buffers_allocated");
        const std::uint64_t moved = done.counter("cmdq.buffers_sent") -
                                    warm.counter("cmdq.buffers_sent");
        EXPECT_GT(moved, 100u);
        EXPECT_LE(new_allocs, std::max<std::uint64_t>(moved / 100, 16));
        EXPECT_GT(done.counter("cmdq.buffers_recycled"),
                  warm.counter("cmdq.buffers_recycled"));

        // Exactly one byte copy per remote AM byte: serialization into the
        // lane is the only copy (send temp buffers and receive-side copies
        // are gone), so the copied-byte count equals the serialized-byte
        // count.
        EXPECT_EQ(done.counter("am.bytes_copied"),
                  done.counter("am.bytes_serialized"));
        EXPECT_GT(done.counter("am.bytes_copied"), 0u);
      },
      cfg);
}

}  // namespace
