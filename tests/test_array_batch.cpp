// Batched array-op pipeline tests (DESIGN.md §9): scratch-arena planning
// stays allocation-free in steady state, fetch results land in caller order
// even when chunks complete concurrently, cyclic spans coalesce into
// strided runs, and the binomial reduction tree matches a serial fold on
// non-power-of-two teams.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "common/scratch_arena.hpp"
#include "lamellar.hpp"

namespace {

using namespace lamellar;

// ---------------------------------------------------------------------------
// ScratchArena mechanics
// ---------------------------------------------------------------------------

TEST(ScratchArena, RewindReusesStorageWithoutGrowing) {
  ScratchArena arena;
  const auto mark = arena.mark();
  (void)arena.alloc_span<std::uint64_t>(512);
  arena.rewind(mark);
  const std::uint64_t grown = arena.grow_events();
  const std::size_t cap = arena.capacity_bytes();
  for (int iter = 0; iter < 100; ++iter) {
    const auto m = arena.mark();
    auto a = arena.alloc_span<std::uint64_t>(512);
    auto b = arena.alloc_span<std::uint32_t>(64);
    a[0] = 1;
    b[0] = 2;
    arena.rewind(m);
  }
  EXPECT_EQ(arena.grow_events(), grown);
  EXPECT_EQ(arena.capacity_bytes(), cap);
}

TEST(ScratchArena, NestedFramesRewindInOrder) {
  ScratchArena arena;
  {
    ArenaFrame outer(arena);
    auto a = arena.alloc_span<int>(8);
    a[7] = 42;
    {
      ArenaFrame inner(arena);
      auto b = arena.alloc_span<int>(1024);
      b[0] = 7;
    }
    // Inner frame rewound; outer allocation still intact.
    EXPECT_EQ(a[7], 42);
  }
}

TEST(ScratchArena, ZeroLengthAllocIsEmpty) {
  ScratchArena arena;
  auto s = arena.alloc_span<double>(0);
  EXPECT_TRUE(s.empty());
}

// ---------------------------------------------------------------------------
// Steady-state allocation budget (array.plan_allocs)
// ---------------------------------------------------------------------------

TEST(ArrayBatch, PlanAllocsFlatInSteadyStateLoop) {
  run_world(4, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 4096, Distribution::kBlock);
    arr.fill(0);

    std::vector<global_index> idxs(2048);
    std::mt19937_64 rng(7 + world.my_pe());
    for (auto& i : idxs) i = rng() % arr.len();

    // Warm-up: let the thread-local arena grow to the loop's working set.
    for (int w = 0; w < 3; ++w) world.block_on(arr.batch_add(idxs, 1));
    world.barrier();

    const std::uint64_t before =
        world.metrics().counter("array.plan_allocs").get();
    for (int iter = 0; iter < 50; ++iter) {
      world.block_on(arr.batch_add(idxs, 1));
    }
    const std::uint64_t after =
        world.metrics().counter("array.plan_allocs").get();
    // Non-fetch steady state performs zero planner allocations.
    EXPECT_EQ(after, before);

    const std::uint64_t batched =
        world.metrics().counter("array.ops_batched").get();
    EXPECT_GE(batched, 53u * idxs.size());
    world.barrier();
  });
}

TEST(ArrayBatch, PlanAllocsBoundedForFetchLoop) {
  run_world(4, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 4096, Distribution::kCyclic);
    arr.fill(1);

    std::vector<global_index> idxs(1024);
    std::mt19937_64 rng(11 + world.my_pe());
    for (auto& i : idxs) i = rng() % arr.len();

    for (int w = 0; w < 3; ++w) world.block_on(arr.batch_fetch_add(idxs, 1));
    world.barrier();

    const std::uint64_t before =
        world.metrics().counter("array.plan_allocs").get();
    for (int iter = 0; iter < 50; ++iter) {
      world.block_on(arr.batch_fetch_add(idxs, 1));
    }
    const std::uint64_t after =
        world.metrics().counter("array.plan_allocs").get();
    // Fetch loops may stage reply fallbacks in the arena, but growth must
    // stop after warm-up: allow a tiny residual, not per-iteration growth.
    EXPECT_LE(after - before, 2u);
    world.barrier();
  });
}

// ---------------------------------------------------------------------------
// Caller-order fetch scatter under concurrent multi-chunk completion
// ---------------------------------------------------------------------------

TEST(ArrayBatch, FetchResultsInCallerOrderAcrossChunks) {
  RuntimeConfig cfg;
  cfg.batch_op_limit = 16;  // force many chunks per destination
  run_world(
      4,
      [](World& world) {
        auto arr = AtomicArray<std::uint64_t>::create(world, 1024,
                                                      Distribution::kBlock);
        arr.fill(0);
        // Each PE touches only its own residue class i % npes == my_pe.
        // Under block distribution those slots spread across every rank,
        // so all PEs drive concurrent multi-chunk rounds into every owner
        // while each PE's per-slot accounting stays exact.
        const std::size_t npes = world.num_pes();
        const std::uint64_t stamp = world.my_pe() + 1;
        std::vector<global_index> mine;
        for (global_index i = world.my_pe(); i < arr.len(); i += npes) {
          mine.push_back(i);
        }
        std::mt19937_64 rng(23 * (world.my_pe() + 1));
        world.barrier();

        std::vector<std::uint64_t> shadow(arr.len(), 0);
        std::uint64_t my_adds = 0;
        for (int round = 0; round < 8; ++round) {
          // Distinct indices per round (a shuffled random half of our
          // slots) so each fetched value is fully determined by *prior*
          // rounds: any mis-scattered result would surface as a mismatch
          // because shadows diverge across slots round by round.
          std::shuffle(mine.begin(), mine.end(), rng);
          std::span<const global_index> idxs(mine.data(), mine.size() / 2);
          auto got = world.block_on(arr.batch_fetch_add(idxs, stamp));
          ASSERT_EQ(got.size(), idxs.size());
          for (std::size_t j = 0; j < idxs.size(); ++j) {
            EXPECT_EQ(got[j], shadow[idxs[j]]) << "caller position " << j;
          }
          for (const auto slot : idxs) shadow[slot] += stamp;
          my_adds += idxs.size();
        }
        world.barrier();

        // Global total must balance exactly across all PEs' streams.
        std::uint64_t expect_total = 0;
        for (pe_id p = 0; p < world.num_pes(); ++p) {
          expect_total += my_adds * (p + 1);  // every PE ran my_adds ops
        }
        EXPECT_EQ(world.block_on(arr.sum()), expect_total);
        world.barrier();
      },
      cfg);
}

TEST(ArrayBatch, FetchSwapOneToOneCallerOrder) {
  RuntimeConfig cfg;
  cfg.batch_op_limit = 32;
  run_world(
      3,
      [](World& world) {
        auto arr = AtomicArray<std::uint64_t>::create(world, 300,
                                                      Distribution::kBlock);
        arr.fill(0);
        if (world.my_pe() == 0) {
          // Distinct indices, shuffled: one-to-one operand gather must pair
          // vals[j] with idxs[j] even though chunks regroup by owner.
          std::vector<global_index> idxs(arr.len());
          std::iota(idxs.begin(), idxs.end(), 0);
          std::mt19937_64 rng(99);
          std::shuffle(idxs.begin(), idxs.end(), rng);
          std::vector<std::uint64_t> vals(idxs.size());
          for (std::size_t j = 0; j < vals.size(); ++j) {
            vals[j] = 1000 + idxs[j];
          }
          auto prev = world.block_on(arr.batch_fetch_swap(idxs, vals));
          ASSERT_EQ(prev.size(), idxs.size());
          for (auto v : prev) EXPECT_EQ(v, 0u);
          // Second sweep reads back what the first stored, in caller order.
          auto prev2 = world.block_on(arr.batch_fetch_swap(idxs, vals));
          for (std::size_t j = 0; j < prev2.size(); ++j) {
            EXPECT_EQ(prev2[j], 1000 + idxs[j]);
          }
        }
        world.barrier();
      },
      cfg);
}

// ---------------------------------------------------------------------------
// Cyclic strided-run coalescing
// ---------------------------------------------------------------------------

TEST(ArrayBatch, CyclicRangesCoalesceToStridedRuns) {
  run_world(4, [](World& world) {
    auto arr =
        UnsafeArray<std::uint64_t>::create(world, 1000, Distribution::kCyclic);
    const auto& st = *arr.state_darc();
    // A long span coalesces into exactly min(num_ranks, len) runs, not
    // one range per element.
    auto runs = array_detail::plan_ranges<std::uint64_t>(st, 3, 617);
    EXPECT_EQ(runs.size(), 4u);
    std::size_t covered = 0;
    for (const auto& r : runs) {
      EXPECT_EQ(r.caller_stride, 4u);
      covered += r.len;
    }
    EXPECT_EQ(covered, 617u);

    auto tiny = array_detail::plan_ranges<std::uint64_t>(st, 5, 2);
    EXPECT_EQ(tiny.size(), 2u);
    EXPECT_TRUE(
        array_detail::plan_ranges<std::uint64_t>(st, 0, 0).empty());
    world.barrier();
  });
}

TEST(ArrayBatch, CyclicPutGetRoundTripsAtOffsets) {
  run_world(4, [](World& world) {
    auto arr =
        UnsafeArray<std::uint64_t>::create(world, 997, Distribution::kCyclic);
    arr.fill(0);
    if (world.my_pe() == 1) {
      const global_index start = 13;
      std::vector<std::uint64_t> data(700);
      std::iota(data.begin(), data.end(), 100000);
      world.block_on(arr.put(start, data));
      auto back = world.block_on(arr.get(start, data.size()));
      ASSERT_EQ(back.size(), data.size());
      EXPECT_EQ(back, data);
      // Elements outside the span stayed zero.
      EXPECT_EQ(world.block_on(arr.load(start - 1)), 0u);
      EXPECT_EQ(world.block_on(arr.load(start + data.size())), 0u);
    }
    world.barrier();
  });
}

// ---------------------------------------------------------------------------
// Binomial-tree reduction vs serial reference
// ---------------------------------------------------------------------------

template <typename Arr>
void check_all_reductions(World& world, Arr& arr,
                          const std::vector<std::uint64_t>& ref) {
  const std::uint64_t want_sum =
      std::accumulate(ref.begin(), ref.end(), std::uint64_t{0});
  std::uint64_t want_prod = 1;
  for (auto v : ref) want_prod *= v;
  const std::uint64_t want_min = *std::min_element(ref.begin(), ref.end());
  const std::uint64_t want_max = *std::max_element(ref.begin(), ref.end());
  EXPECT_EQ(world.block_on(arr.sum()), want_sum);
  EXPECT_EQ(world.block_on(arr.prod()), want_prod);
  EXPECT_EQ(world.block_on(arr.min()), want_min);
  EXPECT_EQ(world.block_on(arr.max()), want_max);
}

void reduce_tree_matches_serial(std::size_t npes) {
  run_world(npes, [](World& world) {
    // 41 elements on a non-power-of-two team: the rounded-up binomial tree
    // has holes that must be skipped, and the last rank is short.
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 41, Distribution::kBlock);
    std::vector<std::uint64_t> ref(arr.len());
    // Small factors keep prod inside u64: values in {1, 2, 3}.
    for (std::size_t i = 0; i < ref.size(); ++i) ref[i] = 1 + (i * 7) % 3;
    if (world.my_pe() == 0) {
      std::vector<global_index> idxs(ref.size());
      std::iota(idxs.begin(), idxs.end(), 0);
      world.block_on(arr.batch_store(idxs, ref));
    }
    world.barrier();
    // Every PE roots its own tree at its own rank.
    check_all_reductions(world, arr, ref);
    world.barrier();
  });
}

TEST(ArrayReduce, BinomialTreeMatchesSerialThreePes) {
  reduce_tree_matches_serial(3);
}

TEST(ArrayReduce, BinomialTreeMatchesSerialFivePes) {
  reduce_tree_matches_serial(5);
}

TEST(ArrayReduce, SinglePeAndLocalLockModes) {
  run_world(1, [](World& world) {
    auto arr =
        LocalLockArray<std::uint64_t>::create(world, 7, Distribution::kBlock);
    std::vector<std::uint64_t> ref = {3, 1, 2, 3, 2, 1, 2};
    std::vector<global_index> idxs(ref.size());
    std::iota(idxs.begin(), idxs.end(), 0);
    world.block_on(arr.batch_store(idxs, ref));
    check_all_reductions(world, arr, ref);
  });
}

// ---------------------------------------------------------------------------
// Edge cases: empty, one-element, all-local
// ---------------------------------------------------------------------------

TEST(ArrayBatch, EmptyBatchResolvesEmpty) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 16, Distribution::kBlock);
    arr.fill(5);
    std::span<const global_index> none;
    EXPECT_TRUE(world.block_on(arr.batch_add(none, 1)).empty());
    EXPECT_TRUE(world.block_on(arr.batch_fetch_add(none, 1)).empty());
    EXPECT_TRUE(world.block_on(arr.batch_load(none)).empty());
    std::span<const std::uint64_t> no_vals;
    EXPECT_TRUE(
        world.block_on(arr.batch_add(global_index{3}, no_vals)).empty());
    EXPECT_TRUE(
        world.block_on(arr.batch_compare_exchange(none, 5, 9)).empty());
    EXPECT_EQ(world.block_on(arr.sum()), 80u);
    world.barrier();
  });
}

TEST(ArrayBatch, OneElementBatch) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 16, Distribution::kBlock);
    arr.fill(10);
    if (world.my_pe() == 0) {
      // One remote index (owned by PE 1) and one local.
      const global_index remote[1] = {15};
      const global_index local[1] = {0};
      auto r = world.block_on(arr.batch_fetch_add(remote, 7));
      ASSERT_EQ(r.size(), 1u);
      EXPECT_EQ(r[0], 10u);
      auto l = world.block_on(arr.batch_fetch_add(local, 1));
      ASSERT_EQ(l.size(), 1u);
      EXPECT_EQ(l[0], 10u);
      EXPECT_EQ(world.block_on(arr.load(15)), 17u);
      EXPECT_EQ(world.block_on(arr.load(0)), 11u);
    }
    world.barrier();
  });
}

TEST(ArrayBatch, AllLocalBatchSingleChunkFastPath) {
  run_world(4, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 400, Distribution::kBlock);
    arr.fill(0);
    world.barrier();
    // Indices entirely inside this PE's block: one local chunk, identity
    // scatter, no wire traffic for the payload.
    const auto& st = *arr.state_darc();
    const std::size_t lo = 100 * world.my_pe();
    std::vector<global_index> idxs;
    for (std::size_t k = 0; k < 100; ++k) idxs.push_back(lo + k);
    std::vector<std::uint64_t> vals(idxs.size());
    for (std::size_t k = 0; k < vals.size(); ++k) vals[k] = k + 1;
    auto prev = world.block_on(arr.batch_fetch_add(idxs, vals));
    ASSERT_EQ(prev.size(), idxs.size());
    for (auto v : prev) EXPECT_EQ(v, 0u);
    auto now = world.block_on(arr.batch_load(idxs));
    for (std::size_t k = 0; k < now.size(); ++k) EXPECT_EQ(now[k], k + 1);
    EXPECT_EQ(st.my_rank(), world.my_pe());
    world.barrier();
  });
}

TEST(ArrayBatch, CompareExchangeBatchAcrossChunks) {
  RuntimeConfig cfg;
  cfg.batch_op_limit = 16;
  run_world(
      3,
      [](World& world) {
        auto arr = AtomicArray<std::uint64_t>::create(world, 90,
                                                      Distribution::kCyclic);
        arr.fill(1);
        if (world.my_pe() == 2) {
          std::vector<global_index> idxs(arr.len());
          std::iota(idxs.begin(), idxs.end(), 0);
          std::mt19937_64 rng(5);
          std::shuffle(idxs.begin(), idxs.end(), rng);
          std::vector<std::uint64_t> desired(idxs.size());
          for (std::size_t j = 0; j < desired.size(); ++j) {
            desired[j] = 100 + idxs[j];
          }
          auto res = world.block_on(arr.batch_compare_exchange(
              idxs, std::uint64_t{1}, desired));
          ASSERT_EQ(res.size(), idxs.size());
          for (const auto& r : res) EXPECT_TRUE(r.success);
          // Retry must fail everywhere, reporting the value stored above
          // for the matching caller position.
          auto res2 = world.block_on(arr.batch_compare_exchange(
              idxs, std::uint64_t{1}, desired));
          for (std::size_t j = 0; j < res2.size(); ++j) {
            EXPECT_FALSE(res2[j].success);
            EXPECT_EQ(res2[j].current, 100 + idxs[j]);
          }
        }
        world.barrier();
      },
      cfg);
}

}  // namespace
