// Observability layer: metrics registry correctness under concurrency,
// end-to-end snapshot consistency through a multi-PE world, trace-ring
// wraparound semantics, Chrome JSON export, and the metrics-off path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "lamellar.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace {

using namespace lamellar;

struct PingAm {
  std::uint64_t v = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(v);
  }
  std::uint64_t exec(AmContext& ctx) { return v + ctx.current_pe() + 1; }
};

}  // namespace

LAMELLAR_REGISTER_AM(PingAm);

namespace {

// ---- Registry primitives ----

TEST(ObsMetrics, CounterConcurrentIncrements) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kEach = 50'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kEach; ++i) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.get(), kThreads * kEach);
  EXPECT_EQ(reg.snapshot().counter("test.hits"), kThreads * kEach);
}

TEST(ObsMetrics, RegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("same.name");
  obs::Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(reg.snapshot().counter("same.name"), 7u);
  // Registration from many threads also converges on one slot.
  std::vector<std::thread> ts;
  std::vector<obs::Counter*> slots(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&reg, &slots, t] {
      slots[t] = &reg.counter("racy.name");
    });
  }
  for (auto& t : ts) t.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(slots[t], slots[0]);
}

TEST(ObsMetrics, GaugeHighWaterMark) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("test.depth");
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.get(), 3);
  EXPECT_EQ(g.max(), 12);
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second.first, 3);
  EXPECT_EQ(snap.gauges[0].second.second, 12);
}

TEST(ObsMetrics, HistogramBucketsAndStats) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("test.lat");
  // bucket_of: 0 -> 0, 1 -> 1, [2,4) -> 2, [4,8) -> 3, ...
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(~0ULL), 64u - 0u);

  constexpr int kThreads = 4;
  constexpr std::uint64_t kEach = 10'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kEach; ++i) h.record(i % 100);
    });
  }
  for (auto& t : ts) t.join();

  auto snap = reg.snapshot();
  const auto* hs = snap.histogram("test.lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, kThreads * kEach);
  EXPECT_EQ(hs->max, 99u);
  // sum = threads * sum(0..99) * (kEach/100)
  EXPECT_EQ(hs->sum, kThreads * 4950ULL * (kEach / 100));
  EXPECT_NEAR(hs->mean(), 49.5, 0.01);
  std::uint64_t bucket_total = 0;
  for (auto b : hs->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hs->count);
  EXPECT_GE(hs->quantile_bound(0.99), 63u);  // p99 of 0..99 is in [64,128)
}

TEST(ObsMetrics, DisabledRegistryHasZeroEntries) {
  obs::MetricsRegistry reg(false);
  EXPECT_FALSE(reg.enabled());
  reg.counter("a").inc();
  reg.gauge("b").set(7);
  reg.histogram("c").record(42);
  auto snap = reg.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.counter("a"), 0u);
  // Disabled lookups share the inert slots; no per-name allocation.
  EXPECT_EQ(&reg.counter("x"), &reg.counter("y"));
}

TEST(ObsMetrics, SnapshotJsonShape) {
  obs::MetricsRegistry reg;
  reg.counter("n.c").inc(5);
  reg.gauge("n.g").set(2);
  reg.histogram("n.h").record(10);
  auto json = reg.snapshot(3).to_json();
  EXPECT_NE(json.find("\"pe\":3"), std::string::npos);
  EXPECT_NE(json.find("\"n.c\":5"), std::string::npos);
  EXPECT_NE(json.find("\"n.g\""), std::string::npos);
  EXPECT_NE(json.find("\"n.h\""), std::string::npos);
  auto line = obs::bench_json_line("bench_x", "impl_y", reg.snapshot(3));
  EXPECT_NE(line.find("\"bench\":\"bench_x\""), std::string::npos);
  EXPECT_NE(line.find("\"impl\":\"impl_y\""), std::string::npos);
}

// ---- Config knobs ----

TEST(ObsConfig, ParseMetricsMode) {
  EXPECT_EQ(parse_metrics_mode("off"), MetricsMode::kOff);
  EXPECT_EQ(parse_metrics_mode("quiet"), MetricsMode::kQuiet);
  EXPECT_EQ(parse_metrics_mode("summary"), MetricsMode::kSummary);
  EXPECT_EQ(parse_metrics_mode("json"), MetricsMode::kJson);
  EXPECT_THROW(parse_metrics_mode("bogus"), std::invalid_argument);
}

// ---- Through the runtime ----

TEST(ObsWorld, SnapshotConsistencyAcrossPes) {
  constexpr std::size_t kPes = 3;
  constexpr int kEach = 200;
  std::vector<obs::MetricsSnapshot> snaps(kPes);
  run_world(kPes, [&](World& world) {
    std::vector<Future<std::uint64_t>> futs;
    for (int i = 0; i < kEach; ++i) {
      futs.push_back(world.exec_am_pe((world.my_pe() + 1) % kPes,
                                      PingAm{static_cast<std::uint64_t>(i)}));
    }
    for (auto& f : futs) {
      EXPECT_GT(world.block_on(std::move(f)), 0u);
    }
    world.barrier();
    snaps[world.my_pe()] = world.metrics_snapshot();
    world.barrier();
  });

  std::uint64_t sent = 0, executed = 0, replies_sent = 0, replies_rcvd = 0;
  for (const auto& s : snaps) {
    EXPECT_FALSE(s.empty());
    sent += s.counter("am.sent_remote") + s.counter("am.sent_local");
    executed += s.counter("am.executed");
    replies_sent += s.counter("am.replies_sent");
    replies_rcvd += s.counter("am.replies_received");
  }
  // Every AM sent anywhere was executed somewhere; every reply sent was
  // received (counters from different PEs must agree globally).
  EXPECT_GE(sent, kPes * static_cast<std::uint64_t>(kEach));
  EXPECT_EQ(executed, sent);
  EXPECT_EQ(replies_sent, replies_rcvd);
  EXPECT_GE(replies_rcvd, kPes * static_cast<std::uint64_t>(kEach));
  // Each PE's reply-latency histogram saw its futures complete.
  for (const auto& s : snaps) {
    const auto* h = s.histogram("am.reply_latency_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, s.counter("am.replies_received"));
  }
  // Aggregation produced fabric traffic that the cmd queue accounted for.
  for (const auto& s : snaps) {
    EXPECT_GT(s.counter("cmdq.buffers_sent"), 0u);
    EXPECT_GT(s.counter("cmdq.bytes_sent"), 0u);
    EXPECT_GT(s.counter("fabric.barriers"), 0u);
  }
}

TEST(ObsWorld, MetricsOffYieldsEmptySnapshots) {
  RuntimeConfig cfg;
  cfg.metrics_mode = MetricsMode::kOff;
  run_world(
      2,
      [](World& world) {
        world.block_on(world.exec_am_pe((world.my_pe() + 1) % 2, PingAm{7}));
        world.barrier();
        EXPECT_TRUE(world.metrics_snapshot().empty());
        EXPECT_FALSE(world.metrics().enabled());
      },
      cfg);
}

// ---- Trace ring ----

TEST(ObsTrace, RingWraparoundKeepsNewest) {
  obs::TraceRing ring(8, 0);
  EXPECT_EQ(ring.capacity(), 8u);  // already a power of two
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.record({"e", "t", 0, static_cast<sim_nanos>(i), 0, 'i', i});
  }
  EXPECT_EQ(ring.recorded(), 20u);
  auto events = ring.drain_ordered();
  ASSERT_EQ(events.size(), 8u);  // oldest 12 overwritten
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 12 + i);  // newest 8, oldest first
  }
}

TEST(ObsTrace, RingCapacityRoundsUpToPow2) {
  obs::TraceRing ring(10, 1);
  EXPECT_EQ(ring.capacity(), 16u);
}

TEST(ObsTrace, CollectorPerThreadRingsAndJson) {
  obs::TraceCollector collector(true, 16);
  constexpr int kThreads = 4;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&collector, t] {
      for (int i = 0; i < 5; ++i) {
        collector.record({"span", "test", static_cast<pe_id>(t),
                          static_cast<sim_nanos>(i * 100), 50, 'X',
                          static_cast<std::uint64_t>(i)});
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(collector.num_rings(), static_cast<std::size_t>(kThreads));
  auto json = collector.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"span\""), std::string::npos);
  // 4 threads x 5 events, each emitted once.
  std::size_t n = 0;
  for (std::size_t pos = 0; (pos = json.find("\"span\"", pos)) !=
                            std::string::npos;
       ++n, ++pos) {
  }
  EXPECT_EQ(n, static_cast<std::size_t>(kThreads) * 5);
}

TEST(ObsTrace, DisabledCollectorRecordsNothing) {
  obs::TraceCollector collector(false);
  collector.record({"e", "t", 0, 0, 0, 'i', 0});
  {
    obs::TraceSpan span(&collector, "s", "t", 0, 0);
    span.finish(100);
  }
  EXPECT_EQ(collector.num_rings(), 0u);
}

TEST(ObsTrace, WorldRunWritesChromeTraceFile) {
  const std::string path = ::testing::TempDir() + "lamellar_trace_test.json";
  std::remove(path.c_str());
  RuntimeConfig cfg;
  cfg.trace_file = path;
  run_world(
      2,
      [](World& world) {
        world.block_on(world.exec_am_pe((world.my_pe() + 1) % 2, PingAm{1}));
        world.barrier();
      },
      cfg);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("dispatch_buffer"), std::string::npos);
  EXPECT_NE(json.find("\"barrier\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
