// Observability layer: metrics registry correctness under concurrency,
// end-to-end snapshot consistency through a multi-PE world, trace-ring
// wraparound semantics, Chrome JSON export, and the metrics-off path.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "core/am/wire.hpp"
#include "lamellar.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace lamellar;

struct PingAm {
  std::uint64_t v = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(v);
  }
  std::uint64_t exec(AmContext& ctx) { return v + ctx.current_pe() + 1; }
};

}  // namespace

LAMELLAR_REGISTER_AM(PingAm);

namespace {

// ---- Registry primitives ----

TEST(ObsMetrics, CounterConcurrentIncrements) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kEach = 50'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kEach; ++i) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.get(), kThreads * kEach);
  EXPECT_EQ(reg.snapshot().counter("test.hits"), kThreads * kEach);
}

TEST(ObsMetrics, RegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("same.name");
  obs::Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(reg.snapshot().counter("same.name"), 7u);
  // Registration from many threads also converges on one slot.
  std::vector<std::thread> ts;
  std::vector<obs::Counter*> slots(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&reg, &slots, t] {
      slots[t] = &reg.counter("racy.name");
    });
  }
  for (auto& t : ts) t.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(slots[t], slots[0]);
}

TEST(ObsMetrics, GaugeHighWaterMark) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("test.depth");
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.get(), 3);
  EXPECT_EQ(g.max(), 12);
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second.first, 3);
  EXPECT_EQ(snap.gauges[0].second.second, 12);
}

TEST(ObsMetrics, HistogramBucketsAndStats) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("test.lat");
  // bucket_of: 0 -> 0, 1 -> 1, [2,4) -> 2, [4,8) -> 3, ...
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(~0ULL), 64u - 0u);

  constexpr int kThreads = 4;
  constexpr std::uint64_t kEach = 10'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kEach; ++i) h.record(i % 100);
    });
  }
  for (auto& t : ts) t.join();

  auto snap = reg.snapshot();
  const auto* hs = snap.histogram("test.lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, kThreads * kEach);
  EXPECT_EQ(hs->max, 99u);
  // sum = threads * sum(0..99) * (kEach/100)
  EXPECT_EQ(hs->sum, kThreads * 4950ULL * (kEach / 100));
  EXPECT_NEAR(hs->mean(), 49.5, 0.01);
  std::uint64_t bucket_total = 0;
  for (auto b : hs->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hs->count);
  EXPECT_GE(hs->quantile_bound(0.99), 63u);  // p99 of 0..99 is in [64,128)
}

TEST(ObsMetrics, DisabledRegistryHasZeroEntries) {
  obs::MetricsRegistry reg(false);
  EXPECT_FALSE(reg.enabled());
  reg.counter("a").inc();
  reg.gauge("b").set(7);
  reg.histogram("c").record(42);
  auto snap = reg.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.counter("a"), 0u);
  // Disabled lookups share the inert slots; no per-name allocation.
  EXPECT_EQ(&reg.counter("x"), &reg.counter("y"));
}

TEST(ObsMetrics, SnapshotJsonShape) {
  obs::MetricsRegistry reg;
  reg.counter("n.c").inc(5);
  reg.gauge("n.g").set(2);
  reg.histogram("n.h").record(10);
  auto json = reg.snapshot(3).to_json();
  EXPECT_NE(json.find("\"pe\":3"), std::string::npos);
  EXPECT_NE(json.find("\"n.c\":5"), std::string::npos);
  EXPECT_NE(json.find("\"n.g\""), std::string::npos);
  EXPECT_NE(json.find("\"n.h\""), std::string::npos);
  auto line = obs::bench_json_line("bench_x", "impl_y", reg.snapshot(3));
  EXPECT_NE(line.find("\"bench\":\"bench_x\""), std::string::npos);
  EXPECT_NE(line.find("\"impl\":\"impl_y\""), std::string::npos);
}

// ---- Percentile edge cases ----

TEST(ObsMetrics, PercentileEmptyHistogramIsZero) {
  obs::HistogramSnapshot hs;
  EXPECT_EQ(hs.percentile(0.0), 0u);
  EXPECT_EQ(hs.percentile(0.5), 0u);
  EXPECT_EQ(hs.percentile(1.0), 0u);
  const auto p = hs.percentiles();
  EXPECT_EQ(p.p50, 0u);
  EXPECT_EQ(p.p90, 0u);
  EXPECT_EQ(p.p99, 0u);
}

TEST(ObsMetrics, PercentileSingleSampleIsExact) {
  obs::MetricsRegistry reg;
  reg.histogram("h").record(777);
  const auto snap = reg.snapshot();
  const auto* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  // Clamping to the observed max makes every quantile the sample itself,
  // even though 777's log2 bucket spans [512, 1024).
  EXPECT_EQ(hs->percentile(0.01), 777u);
  EXPECT_EQ(hs->percentile(0.50), 777u);
  EXPECT_EQ(hs->percentile(0.99), 777u);
}

TEST(ObsMetrics, PercentileAllInOneBucket) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h");
  for (int i = 0; i < 1000; ++i) h.record(1000);  // all in [512, 1024)
  const auto snap = reg.snapshot();
  const auto* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  const auto p = hs->percentiles();
  // Every rank interpolates inside one bucket; all are clamped to max and
  // ordered.
  EXPECT_GE(p.p50, 512u);
  EXPECT_LE(p.p50, 1000u);
  EXPECT_LE(p.p50, p.p90);
  EXPECT_LE(p.p90, p.p99);
  EXPECT_EQ(p.p99, 1000u);
}

TEST(ObsMetrics, PercentileMaxBucketOverflow) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h");
  // bucket_of(~0) == 64, clamped into the last bucket (63) by record().
  h.record(~0ULL);
  h.record(~0ULL);
  h.record(1);
  const auto snap = reg.snapshot();
  const auto* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->buckets[obs::Histogram::kBuckets - 1], 2u);
  EXPECT_EQ(hs->max, ~0ULL);
  // The open-ended top bucket must clamp to the observed max (no wraparound
  // computing 2^64 as its upper bound).
  EXPECT_EQ(hs->percentile(0.99), ~0ULL);
  EXPECT_EQ(hs->percentile(1.0), ~0ULL);
}

TEST(ObsMetrics, PercentileMonotoneOverUniformData) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h");
  for (std::uint64_t v = 0; v < 1024; ++v) h.record(v);
  const auto snap = reg.snapshot();
  const auto* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  std::uint64_t prev = 0;
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::uint64_t q = hs->percentile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    EXPECT_LE(q, hs->max);
    prev = q;
  }
  // p50 of 0..1023 lies in the [512,1024) bucket.
  EXPECT_GE(hs->percentile(0.5), 256u);
  EXPECT_LE(hs->percentile(0.5), 1023u);
}

// ---- Gauge delta semantics ----

TEST(ObsMetrics, GaugeAddSubAndHighWater) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("g");
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.get(), 3);
  EXPECT_EQ(g.max(), 5);
  g.sub(10);  // negative levels are representable; no high-water change
  EXPECT_EQ(g.get(), -7);
  EXPECT_EQ(g.max(), 5);
}

TEST(ObsMetrics, GaugeConcurrentDeltasNeverLoseUpdates) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("g");
  constexpr int kThreads = 8;
  constexpr int kEach = 20'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&g] {
      for (int i = 0; i < kEach; ++i) {
        g.add(1);
        g.sub(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  // The old set(get()+1) idiom would routinely end nonzero here.
  EXPECT_EQ(g.get(), 0);
  EXPECT_GE(g.max(), 1);
  EXPECT_LE(g.max(), kThreads);
}

// ---- Snapshot accumulation (interleaved bench attribution) ----

TEST(ObsMetrics, SnapshotAccumulateSumsIntervals) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Histogram& h = reg.histogram("h");
  obs::Gauge& g = reg.gauge("g");

  auto s0 = reg.snapshot(2);
  c.inc(10);
  h.record(100);
  g.set(4);
  auto s1 = reg.snapshot(2);
  c.inc(5);
  h.record(3000);
  g.set(1);
  auto s2 = reg.snapshot(2);

  obs::MetricsSnapshot acc;
  obs::snapshot_accumulate(acc, obs::snapshot_delta(s0, s1));
  obs::snapshot_accumulate(acc, obs::snapshot_delta(s1, s2));
  EXPECT_EQ(acc.pe, 2);
  EXPECT_EQ(acc.counter("c"), 15u);
  const auto* hs = acc.histogram("h");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 2u);
  EXPECT_EQ(hs->sum, 3100u);
  EXPECT_EQ(hs->max, 3000u);
  // Gauges are levels, not rates: latest interval wins.
  ASSERT_FALSE(acc.gauges.empty());
  EXPECT_EQ(acc.counter("c"), 15u);
  for (const auto& [name, vals] : acc.gauges) {
    if (name == "g") {
      EXPECT_EQ(vals.first, 1);
    }
  }
}

// ---- Wire-format trace extension ----

TEST(ObsWire, UntracedRecordIsByteForByteLegacy) {
  const std::array<std::byte, 3> payload{std::byte{0xAA}, std::byte{0xBB},
                                         std::byte{0xCC}};
  AmEnvelope env;
  env.type = 7;
  env.flags = kWantsReply;  // no kTraced
  env.req_id = 42;
  ByteBuffer buf;
  write_record(buf, env, payload);

  // Hand-build the pre-tracing layout and compare bytes.
  ByteBuffer legacy;
  legacy.write_pod<std::uint32_t>(7);
  legacy.write_pod<std::uint32_t>(kWantsReply);
  legacy.write_pod<std::uint64_t>(42);
  legacy.write_pod<std::uint64_t>(payload.size());
  legacy.write(payload.data(), payload.size());
  ASSERT_EQ(buf.size(), legacy.size());
  EXPECT_EQ(buf.size(), kRecordHeaderBytes + payload.size());
  EXPECT_EQ(std::memcmp(buf.data(), legacy.data(), buf.size()), 0);

  // Round-trip resets the (absent) trace fields.
  AmEnvelope out;
  out.trace_span = 0xDEAD;
  out.trace_ts = 0xBEEF;
  std::span<const std::byte> view{buf.data(), buf.size()};
  std::span<const std::byte> body;
  ASSERT_TRUE(read_record(view, out, body));
  EXPECT_FALSE(out.traced());
  EXPECT_EQ(out.trace_span, 0u);
  EXPECT_EQ(out.trace_ts, 0u);
  EXPECT_EQ(body.size(), payload.size());
  EXPECT_TRUE(view.empty());
}

TEST(ObsWire, TracedRecordRoundTripsSpanAndTs) {
  const std::array<std::byte, 5> payload{std::byte{1}, std::byte{2},
                                         std::byte{3}, std::byte{4},
                                         std::byte{5}};
  AmEnvelope env;
  env.type = 3;
  env.flags = kWantsReply | kTraced;
  env.req_id = 99;
  env.trace_span = make_trace_span(11, 99);
  env.trace_ts = 123'456'789;
  ByteBuffer buf;
  write_record(buf, env, payload);
  EXPECT_EQ(buf.size(), kRecordHeaderBytes + kTraceExtBytes + payload.size());

  // Span-view overload.
  {
    AmEnvelope out;
    std::span<const std::byte> view{buf.data(), buf.size()};
    std::span<const std::byte> body;
    ASSERT_TRUE(read_record(view, out, body));
    EXPECT_TRUE(out.traced());
    EXPECT_EQ(out.type, 3u);
    EXPECT_EQ(out.req_id, 99u);
    EXPECT_EQ(out.trace_span, env.trace_span);
    EXPECT_EQ(out.trace_ts, 123'456'789u);
    ASSERT_EQ(body.size(), payload.size());
    EXPECT_EQ(std::memcmp(body.data(), payload.data(), payload.size()), 0);
    EXPECT_TRUE(view.empty());
  }
  // ByteBuffer-cursor overload.
  {
    AmEnvelope out;
    std::span<const std::byte> body;
    ASSERT_TRUE(read_record(buf, out, body));
    EXPECT_EQ(out.trace_span, env.trace_span);
    EXPECT_EQ(out.trace_ts, 123'456'789u);
    ASSERT_EQ(body.size(), payload.size());
  }
}

TEST(ObsWire, SpanIdEncodesOriginPe) {
  const std::uint64_t span = make_trace_span(513, 0xABCDEF);
  EXPECT_EQ(trace_span_origin(span), 513);
  EXPECT_EQ(span & ((1ULL << 48) - 1), 0xABCDEFu);
  // Request ids beyond 48 bits wrap within the span id but keep the origin.
  EXPECT_EQ(trace_span_origin(make_trace_span(2, ~0ULL)), 2);
}

// ---- Telemetry sampler ----

TEST(ObsTelemetry, FormatLineEmitsDeltasAndGauges) {
  obs::MetricsSnapshot prev;
  prev.pe = 1;
  prev.counters = {{"am.sent", 10}, {"am.flushed", 4}};
  obs::MetricsSnapshot cur;
  cur.pe = 1;
  cur.counters = {{"am.sent", 25}, {"am.flushed", 4}};
  cur.gauges = {{"q.depth", {3, 9}}};
  const std::string line =
      obs::TelemetrySampler::format_line(7, 350, cur, &prev);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"telemetry\":\"lamellar\""), std::string::npos);
  EXPECT_NE(line.find("\"tick\":7"), std::string::npos);
  EXPECT_NE(line.find("\"elapsed_ms\":350"), std::string::npos);
  EXPECT_NE(line.find("\"pe\":1"), std::string::npos);
  EXPECT_NE(line.find("\"am.sent\":15"), std::string::npos);  // delta
  // Zero deltas are omitted to keep steady-state lines small.
  EXPECT_EQ(line.find("am.flushed"), std::string::npos);
  EXPECT_NE(line.find("\"q.depth\":[3,9]"), std::string::npos);
  // First tick (no prev): deltas equal the raw values.
  const std::string first =
      obs::TelemetrySampler::format_line(0, 0, cur, nullptr);
  EXPECT_NE(first.find("\"am.sent\":25"), std::string::npos);
}

TEST(ObsTelemetry, SamplerAppendsJsonlAndFinalTick) {
  const std::string path = ::testing::TempDir() + "lamellar_telemetry.jsonl";
  std::remove(path.c_str());
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("t.ops");
  {
    obs::TelemetrySampler sampler(5, path, [&reg] {
      std::vector<obs::MetricsSnapshot> v;
      v.push_back(reg.snapshot(0));
      return v;
    });
    sampler.start();
    for (int i = 0; i < 20; ++i) {
      c.inc(10);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    sampler.stop();  // emits the final tick
    EXPECT_GE(sampler.ticks(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  std::uint64_t total_delta = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"telemetry\":\"lamellar\""), std::string::npos);
    const auto pos = line.find("\"t.ops\":");
    if (pos != std::string::npos) {
      total_delta += std::strtoull(line.c_str() + pos + 8, nullptr, 10);
    }
    ++lines;
  }
  EXPECT_GE(lines, 1u);
  // Deltas across all ticks telescope to the final counter value.
  EXPECT_EQ(total_delta, c.get());
  std::remove(path.c_str());
}

// ---- Config knobs ----

TEST(ObsConfig, ParseTraceAndTelemetryKnobs) {
  RuntimeConfig cfg;  // defaults: everything off
  EXPECT_EQ(cfg.trace_sample, 0u);
  EXPECT_FALSE(cfg.trace_per_pe);
  EXPECT_EQ(cfg.metrics_interval_ms, 0u);
  EXPECT_TRUE(cfg.metrics_file.empty());
}

TEST(ObsConfig, ParseMetricsMode) {
  EXPECT_EQ(parse_metrics_mode("off"), MetricsMode::kOff);
  EXPECT_EQ(parse_metrics_mode("quiet"), MetricsMode::kQuiet);
  EXPECT_EQ(parse_metrics_mode("summary"), MetricsMode::kSummary);
  EXPECT_EQ(parse_metrics_mode("json"), MetricsMode::kJson);
  EXPECT_THROW(parse_metrics_mode("bogus"), std::invalid_argument);
}

// ---- Through the runtime ----

TEST(ObsWorld, SnapshotConsistencyAcrossPes) {
  constexpr std::size_t kPes = 3;
  constexpr int kEach = 200;
  std::vector<obs::MetricsSnapshot> snaps(kPes);
  run_world(kPes, [&](World& world) {
    std::vector<Future<std::uint64_t>> futs;
    for (int i = 0; i < kEach; ++i) {
      futs.push_back(world.exec_am_pe((world.my_pe() + 1) % kPes,
                                      PingAm{static_cast<std::uint64_t>(i)}));
    }
    for (auto& f : futs) {
      EXPECT_GT(world.block_on(std::move(f)), 0u);
    }
    world.barrier();
    snaps[world.my_pe()] = world.metrics_snapshot();
    world.barrier();
  });

  std::uint64_t sent = 0, executed = 0, replies_sent = 0, replies_rcvd = 0;
  for (const auto& s : snaps) {
    EXPECT_FALSE(s.empty());
    sent += s.counter("am.sent_remote") + s.counter("am.sent_local");
    executed += s.counter("am.executed");
    replies_sent += s.counter("am.replies_sent");
    replies_rcvd += s.counter("am.replies_received");
  }
  // Every AM sent anywhere was executed somewhere; every reply sent was
  // received (counters from different PEs must agree globally).
  EXPECT_GE(sent, kPes * static_cast<std::uint64_t>(kEach));
  EXPECT_EQ(executed, sent);
  EXPECT_EQ(replies_sent, replies_rcvd);
  EXPECT_GE(replies_rcvd, kPes * static_cast<std::uint64_t>(kEach));
  // Each PE's reply-latency histogram saw its futures complete.
  for (const auto& s : snaps) {
    const auto* h = s.histogram("am.reply_latency_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, s.counter("am.replies_received"));
  }
  // Aggregation produced fabric traffic that the cmd queue accounted for.
  for (const auto& s : snaps) {
    EXPECT_GT(s.counter("cmdq.buffers_sent"), 0u);
    EXPECT_GT(s.counter("cmdq.bytes_sent"), 0u);
    EXPECT_GT(s.counter("fabric.barriers"), 0u);
  }
}

TEST(ObsWorld, MetricsOffYieldsEmptySnapshots) {
  RuntimeConfig cfg;
  cfg.metrics_mode = MetricsMode::kOff;
  run_world(
      2,
      [](World& world) {
        world.block_on(world.exec_am_pe((world.my_pe() + 1) % 2, PingAm{7}));
        world.barrier();
        EXPECT_TRUE(world.metrics_snapshot().empty());
        EXPECT_FALSE(world.metrics().enabled());
      },
      cfg);
}

// ---- Trace ring ----

TEST(ObsTrace, RingWraparoundKeepsNewest) {
  obs::TraceRing ring(8, 0);
  EXPECT_EQ(ring.capacity(), 8u);  // already a power of two
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.record({"e", "t", 0, static_cast<sim_nanos>(i), 0, 'i', i});
  }
  EXPECT_EQ(ring.recorded(), 20u);
  auto events = ring.drain_ordered();
  ASSERT_EQ(events.size(), 8u);  // oldest 12 overwritten
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 12 + i);  // newest 8, oldest first
  }
}

TEST(ObsTrace, RingCapacityRoundsUpToPow2) {
  obs::TraceRing ring(10, 1);
  EXPECT_EQ(ring.capacity(), 16u);
}

TEST(ObsTrace, CollectorPerThreadRingsAndJson) {
  obs::TraceCollector collector(true, 16);
  constexpr int kThreads = 4;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&collector, t] {
      for (int i = 0; i < 5; ++i) {
        collector.record({"span", "test", static_cast<pe_id>(t),
                          static_cast<sim_nanos>(i * 100), 50, 'X',
                          static_cast<std::uint64_t>(i)});
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(collector.num_rings(), static_cast<std::size_t>(kThreads));
  auto json = collector.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"span\""), std::string::npos);
  // 4 threads x 5 events, each emitted once.
  std::size_t n = 0;
  for (std::size_t pos = 0; (pos = json.find("\"span\"", pos)) !=
                            std::string::npos;
       ++n, ++pos) {
  }
  EXPECT_EQ(n, static_cast<std::size_t>(kThreads) * 5);
}

TEST(ObsTrace, DisabledCollectorRecordsNothing) {
  obs::TraceCollector collector(false);
  collector.record({"e", "t", 0, 0, 0, 'i', 0});
  {
    obs::TraceSpan span(&collector, "s", "t", 0, 0);
    span.finish(100);
  }
  EXPECT_EQ(collector.num_rings(), 0u);
}

TEST(ObsTrace, WorldRunWritesChromeTraceFile) {
  const std::string path = ::testing::TempDir() + "lamellar_trace_test.json";
  std::remove(path.c_str());
  RuntimeConfig cfg;
  cfg.trace_file = path;
  run_world(
      2,
      [](World& world) {
        world.block_on(world.exec_am_pe((world.my_pe() + 1) % 2, PingAm{1}));
        world.barrier();
      },
      cfg);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("dispatch_buffer"), std::string::npos);
  EXPECT_NE(json.find("\"barrier\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- Causal tracing (ISSUE 6) ----

TEST(ObsTrace, FlowEventsCarryIdAndBindingPoint) {
  obs::TraceCollector collector(true, 16);
  collector.record({"am_send", "am", 0, 100, 0, 's', 42, 0x7001});
  collector.record({"am_recv", "am", 1, 250, 0, 't', 150, 0x7001});
  collector.record({"am_complete", "am", 0, 400, 0, 'f', 90, 0x7001});
  const auto json = collector.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Flow id + enclosing-slice binding, required for Perfetto stitching.
  EXPECT_NE(json.find("\"id\":28673"), std::string::npos);  // 0x7001
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(ObsTrace, PeFilterSelectsOnePe) {
  obs::TraceCollector collector(true, 16);
  collector.record({"on_pe0", "t", 0, 10, 0, 'i', 0});
  collector.record({"on_pe1", "t", 1, 20, 0, 'i', 0});
  const auto only1 = collector.to_chrome_json(1);
  EXPECT_EQ(only1.find("on_pe0"), std::string::npos);
  EXPECT_NE(only1.find("on_pe1"), std::string::npos);
  const auto all = collector.to_chrome_json();
  EXPECT_NE(all.find("on_pe0"), std::string::npos);
  EXPECT_NE(all.find("on_pe1"), std::string::npos);
}

TEST(ObsWorld, SampledSpansBalanceAndStageHistogramsFill) {
  constexpr std::size_t kPes = 3;
  constexpr int kEach = 64;
  RuntimeConfig cfg;
  cfg.trace_sample = 1;  // trace every replied-to request
  std::vector<obs::MetricsSnapshot> snaps(kPes);
  run_world(
      kPes,
      [&](World& world) {
        std::vector<Future<std::uint64_t>> futs;
        for (int i = 0; i < kEach; ++i) {
          futs.push_back(world.exec_am_pe(
              (world.my_pe() + 1) % kPes,
              PingAm{static_cast<std::uint64_t>(i)}));
        }
        for (auto& f : futs) world.block_on(std::move(f));
        world.barrier();
        snaps[world.my_pe()] = world.metrics_snapshot();
        world.barrier();
      },
      cfg);

  std::uint64_t opened = 0, closed = 0;
  for (const auto& s : snaps) {
    opened += s.counter("trace.spans_opened");
    closed += s.counter("trace.spans_closed");
    // A span opens and closes on its origin PE, so they also balance
    // per PE at quiescence.
    EXPECT_EQ(s.counter("trace.spans_opened"),
              s.counter("trace.spans_closed"));
  }
  EXPECT_EQ(opened, closed);
  EXPECT_GE(opened, kPes * static_cast<std::uint64_t>(kEach));

  // Every stage histogram saw traffic, and origin-side stages saw exactly
  // one sample per span.
  for (const auto& s : snaps) {
    const std::uint64_t pe_spans = s.counter("trace.spans_opened");
    const auto* inject = s.histogram("am.stage_inject_flush_ns");
    const auto* flight = s.histogram("am.stage_flight_ns");
    const auto* exec = s.histogram("am.stage_exec_ns");
    const auto* reply = s.histogram("am.stage_reply_complete_ns");
    ASSERT_NE(inject, nullptr);
    ASSERT_NE(flight, nullptr);
    ASSERT_NE(exec, nullptr);
    ASSERT_NE(reply, nullptr);
    EXPECT_EQ(inject->count, pe_spans);
    EXPECT_EQ(reply->count, pe_spans);
    // Flight/exec are recorded on the *executing* PE; with a ring topology
    // each PE executes its predecessor's spans.
    EXPECT_GT(flight->count, 0u);
    EXPECT_GT(exec->count, 0u);
    // Percentiles are well-formed on real data.
    const auto p = exec->percentiles();
    EXPECT_LE(p.p50, p.p99);
    EXPECT_LE(p.p99, exec->max);
  }
}

TEST(ObsWorld, UnsampledRunOpensNoSpans) {
  RuntimeConfig cfg;  // trace_sample defaults to 0 (off)
  run_world(
      2,
      [](World& world) {
        world.block_on(world.exec_am_pe((world.my_pe() + 1) % 2, PingAm{5}));
        world.barrier();
        EXPECT_EQ(world.metrics_snapshot().counter("trace.spans_opened"), 0u);
      },
      cfg);
}

TEST(ObsWorld, PerPeTraceExportWritesOneFilePerPe) {
  const std::string base = ::testing::TempDir() + "lamellar_pp_trace.json";
  const std::string pe0 = ::testing::TempDir() + "lamellar_pp_trace.pe0.json";
  const std::string pe1 = ::testing::TempDir() + "lamellar_pp_trace.pe1.json";
  for (const auto& p : {base, pe0, pe1}) std::remove(p.c_str());
  RuntimeConfig cfg;
  cfg.trace_file = base;
  cfg.trace_per_pe = true;
  cfg.trace_sample = 1;
  run_world(
      2,
      [](World& world) {
        world.block_on(world.exec_am_pe((world.my_pe() + 1) % 2, PingAm{9}));
        world.barrier();
      },
      cfg);
  // The base path is replaced by per-PE siblings.
  EXPECT_FALSE(std::ifstream(base).good());
  for (const auto& p : {pe0, pe1}) {
    std::ifstream in(p);
    ASSERT_TRUE(in.good()) << p;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  }
  // The sampled flow chain is present across the pair of files.
  std::stringstream both;
  for (const auto& p : {pe0, pe1}) {
    std::ifstream in(p);
    both << in.rdbuf();
  }
  const std::string merged = both.str();
  EXPECT_NE(merged.find("\"am_send\""), std::string::npos);
  EXPECT_NE(merged.find("\"am_recv\""), std::string::npos);
  EXPECT_NE(merged.find("\"am_complete\""), std::string::npos);
  EXPECT_NE(merged.find("\"bp\":\"e\""), std::string::npos);
  for (const auto& p : {pe0, pe1}) std::remove(p.c_str());
}

}  // namespace
