// Iterator tests: local/distributed parallel iteration with adapters, and
// the serial one-sided iterator (paper Sec. III-F4).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "lamellar.hpp"

namespace {

using namespace lamellar;

// Fill arr[i] = i via put from PE 0.
template <typename A>
void fill_iota(World& world, A& arr) {
  if (world.my_pe() == 0) {
    std::vector<std::uint64_t> vals(arr.len());
    std::iota(vals.begin(), vals.end(), 0);
    world.block_on(arr.put(0, vals));
  }
  world.barrier();
}

TEST(Iter, LocalForEachCoversLocalElements) {
  run_world(4, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 64, Distribution::kBlock);
    fill_iota(world, arr);
    std::atomic<std::uint64_t> local_sum{0};
    auto fut = arr.local_iter().for_each(
        [&](std::uint64_t v) { local_sum.fetch_add(v); });
    world.block_on(std::move(fut));
    // Block layout: PE p owns [16p, 16p+16).
    const std::uint64_t base = world.my_pe() * 16;
    const std::uint64_t expect = 16 * base + (15 * 16) / 2;
    EXPECT_EQ(local_sum.load(), expect);
    world.barrier();
  });
}

TEST(Iter, DistForEachCoversAllElementsOnce) {
  run_world(4, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 40, Distribution::kCyclic);
    fill_iota(world, arr);
    auto marks =
        AtomicArray<std::uint64_t>::create(world, 40, Distribution::kBlock);
    marks.fill(0);
    auto fut = arr.dist_iter().enumerate().for_each(
        [&](std::pair<global_index, std::uint64_t> e) {
          EXPECT_EQ(e.first, e.second);  // value equals global index
          marks.add(e.first, 1);
        });
    world.block_on(std::move(fut));
    world.wait_all();
    world.barrier();
    EXPECT_EQ(world.block_on(marks.sum()), 40u);
    EXPECT_EQ(world.block_on(marks.max()), 1u);  // each exactly once
    world.barrier();
  });
}

TEST(Iter, MapFilterChain) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 16, Distribution::kBlock);
    fill_iota(world, arr);
    auto evens_doubled = arr.local_iter()
                             .filter([](std::uint64_t v) { return v % 2 == 0; })
                             .map([](std::uint64_t v) { return v * 2; })
                             .collect_vec_local();
    // PE0 locals 0..7 -> evens {0,2,4,6} doubled {0,4,8,12}.
    const std::uint64_t base = world.my_pe() * 8;
    std::vector<std::uint64_t> expect;
    for (std::uint64_t v = base; v < base + 8; ++v) {
      if (v % 2 == 0) expect.push_back(v * 2);
    }
    EXPECT_EQ(evens_doubled, expect);
    world.barrier();
  });
}

TEST(Iter, PositionSelectors) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 16, Distribution::kBlock);
    fill_iota(world, arr);
    auto picked =
        arr.local_iter().skip(1).step_by(3).collect_vec_local();
    const std::uint64_t base = world.my_pe() * 8;
    EXPECT_EQ(picked,
              (std::vector<std::uint64_t>{base + 1, base + 4, base + 7}));
    auto limited = arr.local_iter().take(2).collect_vec_local();
    EXPECT_EQ(limited, (std::vector<std::uint64_t>{base, base + 1}));
    world.barrier();
  });
}

TEST(Iter, SelectorAfterMapThrows) {
  run_world(1, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 8, Distribution::kBlock);
    EXPECT_THROW(
        arr.local_iter().map([](std::uint64_t v) { return v; }).take(2),
        Error);
  });
}

// Regression: the diagnosis fires at composition time and names the FIRST
// adapter that consumed the index space, even through later adapters.
TEST(Iter, SelectorOrderingDiagnosisNamesOffendingAdapter) {
  run_world(1, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 8, Distribution::kBlock);
    try {
      arr.local_iter()
          .filter([](std::uint64_t v) { return v % 2 == 0; })
          .map([](std::uint64_t v) { return v + 1; })
          .skip(1);
      FAIL() << "skip after filter/map should throw at composition time";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("skip"), std::string::npos) << msg;
      // filter came first — the message must blame it, not map.
      EXPECT_NE(msg.find("filter"), std::string::npos) << msg;
      EXPECT_EQ(msg.find("map("), std::string::npos) << msg;
    }
    try {
      arr.local_iter().enumerate().step_by(2);
      FAIL() << "step_by after enumerate should throw at composition time";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("enumerate"), std::string::npos)
          << e.what();
    }
  });
}

TEST(Iter, FoldLocal) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 10, Distribution::kBlock);
    fill_iota(world, arr);
    auto total = arr.local_iter().fold_local<std::uint64_t>(
        0, [](std::uint64_t acc, std::uint64_t v) { return acc + v; });
    std::uint64_t expect = 0;
    auto [lo, hi] = world.my_pe() == 0 ? std::pair<std::uint64_t, std::uint64_t>{0, 5}
                                       : std::pair<std::uint64_t, std::uint64_t>{5, 10};
    for (auto v = lo; v < hi; ++v) expect += v;
    EXPECT_EQ(total, expect);
    world.barrier();
  });
}

TEST(Iter, OneSidedSerialWholeArray) {
  run_world(4, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 37, Distribution::kBlock);
    fill_iota(world, arr);
    if (world.my_pe() == 2) {
      auto iter = arr.onesided_iter(8);  // small buffer: many refills
      std::uint64_t expect = 0;
      while (auto v = iter.next()) {
        EXPECT_EQ(*v, expect);
        ++expect;
      }
      EXPECT_EQ(expect, 37u);
    }
    world.barrier();
  });
}

TEST(Iter, OneSidedChunksAndStep) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 20, Distribution::kCyclic);
    fill_iota(world, arr);
    if (world.my_pe() == 0) {
      auto iter = arr.onesided_iter(4);
      iter.step_by(5);
      auto vals = iter.collect_vec();
      EXPECT_EQ(vals, (std::vector<std::uint64_t>{0, 5, 10, 15}));

      auto iter2 = arr.onesided_iter(64);
      iter2.skip(17);
      auto chunk = iter2.next_chunk(10);
      EXPECT_EQ(chunk, (std::vector<std::uint64_t>{17, 18, 19}));
    }
    world.barrier();
  });
}

TEST(Iter, SubArrayIteratesOnlyView) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 20, Distribution::kBlock);
    fill_iota(world, arr);
    auto view = arr.sub_array(5, 10);
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    world.block_on(view.local_iter().for_each([&](std::uint64_t v) {
      count.fetch_add(1);
      sum.fetch_add(v);
    }));
    world.barrier();
    // PE0 owns globals 0..9 -> view covers 5..9; PE1 owns 10..19 -> 10..14.
    if (world.my_pe() == 0) {
      EXPECT_EQ(count.load(), 5u);
      EXPECT_EQ(sum.load(), 5u + 6 + 7 + 8 + 9);
    } else {
      EXPECT_EQ(count.load(), 5u);
      EXPECT_EQ(sum.load(), 10u + 11 + 12 + 13 + 14);
    }
    world.barrier();
  });
}

TEST(Iter, OneSidedOnSubArray) {
  run_world(2, [](World& world) {
    auto arr =
        AtomicArray<std::uint64_t>::create(world, 20, Distribution::kBlock);
    fill_iota(world, arr);
    if (world.my_pe() == 1) {
      auto view = arr.sub_array(8, 6);
      auto vals = view.onesided_iter(2).collect_vec();
      EXPECT_EQ(vals, (std::vector<std::uint64_t>{8, 9, 10, 11, 12, 13}));
    }
    world.barrier();
  });
}

}  // namespace
