// Adaptive aggregation control (ISSUE 10, DESIGN.md §14): the pure control
// law under deterministic synthetic signals (convergence up and down,
// hysteresis dead band, bound clamping, idle hold), the age-triggered
// partial flush at the command-queue level, runtime threshold retuning, and
// the live controller + admission window wired into a world.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/control/controller.hpp"
#include "lamellae/cmd_queue.hpp"
#include "lamellae/shmem_lamellae.hpp"
#include "lamellar.hpp"

namespace {

using namespace lamellar;
using control::AdaptiveController;
using control::ControlBounds;
using control::ControlSignals;
using Decision = AdaptiveController::Decision;

const OutgoingQueues::ProgressFn kNoProgress = [] {};

constexpr std::uint64_t kBudgetNs = 2'000'000;  // 2 ms age budget

ControlBounds bounds() {
  ControlBounds b;
  b.min_bytes = 4 * 1024;
  b.max_bytes = 1024 * 1024;
  b.age_budget_ns = kBudgetNs;
  b.hysteresis = 0.25;
  return b;
}

/// Interval dominated by full-buffer departures with latency headroom.
ControlSignals full_and_fast() {
  ControlSignals s;
  s.flush_threshold = 90;
  s.flush_other = 10;
  s.lane_age_p99_ns = kBudgetNs / 10;  // far below the lower band
  return s;
}

/// Interval dominated by age-triggered flushes (trickle traffic).
ControlSignals trickle() {
  ControlSignals s;
  s.flush_age = 9;
  s.flush_other = 1;
  s.lane_age_p99_ns = kBudgetNs * 2;  // above the upper band too
  return s;
}

// ---- pure control law ----

TEST(AdaptiveController, StepsUpOnFullBuffersWithLatencyHeadroom) {
  AdaptiveController ctl(64 * 1024, bounds());
  EXPECT_EQ(ctl.tick(full_and_fast()), Decision::kUp);
  EXPECT_EQ(ctl.threshold(), 128 * 1024u);
}

TEST(AdaptiveController, StepsDownOnAgeDominatedFlushes) {
  AdaptiveController ctl(64 * 1024, bounds());
  EXPECT_EQ(ctl.tick(trickle()), Decision::kDown);
  EXPECT_EQ(ctl.threshold(), 32 * 1024u);
}

TEST(AdaptiveController, StepsDownOnHighLaneAgeAlone) {
  // Departures are all threshold-caused, but the p99 lane age blew the
  // budget: latency pressure wins even against occupancy pressure.
  AdaptiveController ctl(64 * 1024, bounds());
  ControlSignals s;
  s.flush_threshold = 100;
  s.lane_age_p99_ns = kBudgetNs * 3;
  EXPECT_EQ(ctl.tick(s), Decision::kDown);
}

TEST(AdaptiveController, HoldsInsideDeadBand) {
  AdaptiveController ctl(64 * 1024, bounds());
  // Full buffers but p99 inside the hysteresis band: no step, so the two
  // pressures cannot ping-pong around the budget.
  ControlSignals s;
  s.flush_threshold = 100;
  s.lane_age_p99_ns = kBudgetNs;  // exactly at budget: inside the band
  EXPECT_EQ(ctl.tick(s), Decision::kHold);
  EXPECT_EQ(ctl.threshold(), 64 * 1024u);

  // Mixed causes with in-band latency also hold.
  ControlSignals mixed;
  mixed.flush_threshold = 40;
  mixed.flush_age = 30;
  mixed.flush_other = 30;
  mixed.lane_age_p99_ns = kBudgetNs;
  EXPECT_EQ(ctl.tick(mixed), Decision::kHold);
}

TEST(AdaptiveController, IdleIntervalHoldsWithoutDecay) {
  AdaptiveController ctl(256 * 1024, bounds());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ctl.tick(ControlSignals{}), Decision::kHold);
  }
  // Bursty workloads keep their learned threshold across gaps.
  EXPECT_EQ(ctl.threshold(), 256 * 1024u);
}

TEST(AdaptiveController, ClampsAtBoundsAndHolds) {
  AdaptiveController up(512 * 1024, bounds());
  EXPECT_EQ(up.tick(full_and_fast()), Decision::kUp);
  EXPECT_EQ(up.threshold(), bounds().max_bytes);
  // Saturated at the cap: further occupancy pressure is a hold, not an
  // endless stream of no-op "adjustments".
  EXPECT_EQ(up.tick(full_and_fast()), Decision::kHold);

  AdaptiveController down(8 * 1024, bounds());
  EXPECT_EQ(down.tick(trickle()), Decision::kDown);
  EXPECT_EQ(down.threshold(), bounds().min_bytes);
  EXPECT_EQ(down.tick(trickle()), Decision::kHold);
}

TEST(AdaptiveController, InitialThresholdClampedToBounds) {
  EXPECT_EQ(AdaptiveController(1, bounds()).threshold(), bounds().min_bytes);
  EXPECT_EQ(AdaptiveController(64 * 1024 * 1024, bounds()).threshold(),
            bounds().max_bytes);
}

/// Synthetic plant: a steady stream filling lanes at `fill_rate` bytes/ns.
/// A buffer of `threshold` bytes fills in threshold/fill_rate ns; if that
/// beats the age budget the departure is threshold-caused with p99 = fill
/// time, otherwise the lane goes out on the age deadline.  The walk must
/// converge to the equilibrium threshold ~ fill_rate * budget and stop.
TEST(AdaptiveController, ConvergesOnSyntheticPlantAndStaysConverged) {
  const double fill_rate = 0.05;  // bytes/ns -> 50 MB/s
  AdaptiveController ctl(bounds().min_bytes, bounds());
  int steps_after_converged = 0;
  bool converged = false;
  for (int i = 0; i < 64; ++i) {
    const double fill_ns =
        static_cast<double>(ctl.threshold()) / fill_rate;
    ControlSignals s;
    if (fill_ns < static_cast<double>(kBudgetNs)) {
      s.flush_threshold = 100;
      s.lane_age_p99_ns = static_cast<std::uint64_t>(fill_ns);
    } else {
      s.flush_age = 100;
      s.lane_age_p99_ns = kBudgetNs + kBudgetNs / 2;
    }
    const Decision d = ctl.tick(s);
    if (converged) {
      EXPECT_EQ(d, Decision::kHold) << "oscillated after converging";
      ++steps_after_converged;
    } else if (d == Decision::kHold) {
      converged = true;
    }
  }
  ASSERT_TRUE(converged);
  EXPECT_GE(steps_after_converged, 40);
  // Equilibrium within one multiplicative step of fill_rate * budget.
  const double eq = fill_rate * static_cast<double>(kBudgetNs);
  EXPECT_GE(static_cast<double>(ctl.threshold()), eq / 2.0);
  EXPECT_LE(static_cast<double>(ctl.threshold()), eq * 2.0);
}

// ---- command-queue level: age flush + runtime retune ----

TEST(ControlCmdQueue, FlushAgedFlushesOnlyLanesOverBudget) {
  ShmemLamellaeGroup group(2, {});
  auto l0 = group.endpoint(0);
  auto l1 = group.endpoint(1);
  OutgoingQueues q(*l0, 1 << 20);

  auto stage_byte = [&q] {
    auto w = q.begin_record(1);
    w.buffer().write_pod<std::uint8_t>(0x5a);
    q.commit_record(w, kNoProgress);
  };
  stage_byte();
  ASSERT_TRUE(q.has_pending());
  const sim_nanos staged_at = l0->mono_now();

  // Younger than the budget: stays staged.
  q.flush_aged(staged_at, /*max_age=*/1'000'000, kNoProgress);
  EXPECT_TRUE(q.has_pending());

  // Older than the budget: departs.
  q.flush_aged(staged_at + 2'000'000, /*max_age=*/1'000'000, kNoProgress);
  EXPECT_FALSE(q.has_pending());
  FabricMessage msg;
  ASSERT_TRUE(l1->poll(msg));
  EXPECT_EQ(msg.payload.size(), 1u);

  // The age stamp resets on the next empty->nonempty transition: a fresh
  // record staged later is young again.
  stage_byte();
  q.flush_aged(l0->mono_now(), /*max_age=*/1'000'000, kNoProgress);
  EXPECT_TRUE(q.has_pending());
  q.flush_all(kNoProgress);
}

TEST(ControlCmdQueue, SetFlushThresholdTakesEffectOnNextCommit) {
  ShmemLamellaeGroup group(2, {});
  auto l0 = group.endpoint(0);
  auto l1 = group.endpoint(1);
  OutgoingQueues q(*l0, 1 << 20);

  auto stage_bytes = [&q](std::size_t n) {
    auto w = q.begin_record(1);
    for (std::size_t i = 0; i < n; ++i) {
      w.buffer().write_pod<std::uint8_t>(static_cast<std::uint8_t>(i));
    }
    q.commit_record(w, kNoProgress);
  };

  stage_bytes(512);
  EXPECT_TRUE(q.has_pending());  // far under the 1 MB threshold

  // Retune down at runtime: the very next commit observes the new value
  // and swaps the (now over-threshold) buffer out.
  q.set_flush_threshold(64);
  EXPECT_EQ(q.flush_threshold(), 64u);
  stage_bytes(1);
  EXPECT_FALSE(q.has_pending());
  FabricMessage msg;
  ASSERT_TRUE(l1->poll(msg));
  EXPECT_EQ(msg.payload.size(), 513u);

  // Clamped to >= 1 so every nonempty commit can still depart.
  q.set_flush_threshold(0);
  EXPECT_EQ(q.flush_threshold(), 1u);
}

// ---- world-level integration ----

struct TinyAm {
  std::uint64_t x = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(x);
  }
  std::uint64_t exec(AmContext&) { return x + 1; }
};

RuntimeConfig quiet_config() {
  RuntimeConfig cfg;  // defaults, not env: deterministic under any runner
  cfg.threads_per_pe = 2;
  return cfg;
}

TEST(ControlWorld, SetAggThresholdRetunesLiveWorld) {
  std::uint64_t threshold_flushes = 0;
  run_world(
      2,
      [&](World& world) {
        // Retune to the 1-byte floor.  Under the default 100 KB threshold
        // these 64 tiny blocking round-trips depart as *explicit* flushes
        // only; at threshold 1 every commit crosses the bar (counted as
        // bypass_large since one record alone fills the "buffer"), so any
        // threshold-crossing departure proves the live queues observed
        // the new value.
        world.set_agg_threshold(1);
        if (world.my_pe() == 0) {
          for (int i = 0; i < 64; ++i) {
            world.block_on(world.exec_am_pe(1, TinyAm{std::uint64_t(i)}));
          }
        }
        world.barrier();
        if (world.my_pe() == 0) {
          const auto snap = world.metrics_snapshot();
          threshold_flushes = snap.counter("cmdq.flush_threshold") +
                              snap.counter("cmdq.bypass_large");
        }
      },
      quiet_config());
  EXPECT_GT(threshold_flushes, 0u);
}

TEST(ControlWorld, LiveControllerAdjustsDownUnderTrickle) {
  RuntimeConfig cfg = quiet_config();
  cfg.adapt = AdaptMode::kAgg;
  cfg.agg_threshold_bytes = 1 << 20;  // deliberately static-worst for trickle
  cfg.adapt_interval_us = 1;
  cfg.adapt_age_budget_us = 1;
  std::uint64_t ticks = 0, adjustments = 0, age_flushes = 0;
  std::size_t final_threshold = 0;
  run_world(
      2,
      [&](World& world) {
        if (world.my_pe() == 0) {
          // Sustained stream of tiny AMs: lanes never reach 1 MB, so every
          // departure the controller causes is age-triggered -> it should
          // walk the threshold down.
          for (int i = 0; i < 20'000; ++i) {
            world.engine().send_cb(1, TinyAm{std::uint64_t(i)},
                                   [](std::uint64_t) {});
          }
          world.wait_all();
          auto snap = world.metrics_snapshot();
          ticks = snap.counter("ctl.ticks");
          adjustments = snap.counter("ctl.adjustments");
          age_flushes = snap.counter("cmdq.flush_age");
          final_threshold = world.engine().outgoing().flush_threshold();
          ASSERT_NE(world.engine().control_loop(), nullptr);
        }
        world.barrier();
      },
      cfg);
  EXPECT_GT(ticks, 0u);
  EXPECT_GT(age_flushes, 0u);
  EXPECT_GT(adjustments, 0u);
  EXPECT_LT(final_threshold, std::size_t{1} << 20);
  EXPECT_GE(final_threshold, quiet_config().adapt_min_bytes);
}

TEST(ControlWorld, LiveControllerAdjustsUpWithLatencyHeadroom) {
  RuntimeConfig cfg = quiet_config();
  cfg.adapt = AdaptMode::kAgg;
  cfg.agg_threshold_bytes = 4 * 1024;  // start at the floor
  cfg.adapt_interval_us = 1;
  cfg.adapt_age_budget_us = 1'000'000;  // 1 s of virtual headroom
  std::size_t final_threshold = 0;
  run_world(
      2,
      [&](World& world) {
        if (world.my_pe() == 0) {
          // Buffers fill in a few hundred records: threshold-caused
          // departures with a huge latency budget -> walk up.
          for (int i = 0; i < 20'000; ++i) {
            world.engine().send_cb(1, TinyAm{std::uint64_t(i)},
                                   [](std::uint64_t) {});
          }
          world.wait_all();
          final_threshold = world.engine().outgoing().flush_threshold();
        }
        world.barrier();
      },
      cfg);
  EXPECT_GT(final_threshold, std::size_t{4} * 1024);
  EXPECT_LE(final_threshold, quiet_config().adapt_max_bytes);
}

TEST(ControlWorld, AdmissionWindowBoundsOutstandingAndCompletes) {
  RuntimeConfig cfg = quiet_config();
  cfg.admit_window = 8;  // explicit window works even with adapt off
  std::uint64_t stalls = 0;
  std::atomic<std::uint64_t> sum{0};
  run_world(
      2,
      [&](World& world) {
        if (world.my_pe() == 0) {
          EXPECT_EQ(world.engine().admit_window(), 8u);
          for (int i = 0; i < 500; ++i) {
            world.engine().send_cb(1, TinyAm{std::uint64_t(i)},
                                   [&sum](std::uint64_t r) {
                                     sum.fetch_add(r,
                                                   std::memory_order_relaxed);
                                   });
            EXPECT_LE(world.engine().outstanding(), 8u + 1);
          }
          world.wait_all();
          stalls =
              world.metrics_snapshot().counter("ctl.backpressure_stalls");
        }
        world.barrier();
      },
      cfg);
  // 500 AMs each replying i+1; completing them all through an 8-deep
  // window proves the gate cannot deadlock the reply path.
  EXPECT_EQ(sum.load(), 500u * 501u / 2);
  EXPECT_GT(stalls, 0u);
}

TEST(ControlWorld, AutoWindowOnlyUnderFullAdapt) {
  RuntimeConfig agg = quiet_config();
  agg.adapt = AdaptMode::kAgg;
  run_world(
      1, [&](World& world) { EXPECT_EQ(world.engine().admit_window(), 0u); },
      agg);
  RuntimeConfig full = quiet_config();
  full.adapt = AdaptMode::kFull;
  run_world(
      1,
      [&](World& world) { EXPECT_EQ(world.engine().admit_window(), 8192u); },
      full);
}

// ---- config surface ----

TEST(ControlConfig, ParseAdaptMode) {
  EXPECT_EQ(parse_adapt_mode("off"), AdaptMode::kOff);
  EXPECT_EQ(parse_adapt_mode("agg"), AdaptMode::kAgg);
  EXPECT_EQ(parse_adapt_mode("full"), AdaptMode::kFull);
  EXPECT_THROW(parse_adapt_mode("bogus"), std::invalid_argument);
}

TEST(ControlConfig, UnknownEnvVarsFlagged) {
  ::setenv("LAMELLAR_DEFINITELY_NOT_A_KNOB", "1", 1);
  ::setenv("LAMELLAR_ADAPT", "off", 1);  // known: must not be flagged
  auto unknown = unknown_lamellar_env_vars();
  bool saw_bogus = false;
  for (const auto& name : unknown) {
    EXPECT_NE(name, "LAMELLAR_ADAPT");
    if (name == "LAMELLAR_DEFINITELY_NOT_A_KNOB") saw_bogus = true;
  }
  EXPECT_TRUE(saw_bogus);
  ::unsetenv("LAMELLAR_DEFINITELY_NOT_A_KNOB");
  ::unsetenv("LAMELLAR_ADAPT");
}

}  // namespace

LAMELLAR_REGISTER_AM(TinyAm);
