// Multi-process backend tests (ctest label: mp).  Every MP_TEST body runs
// SPMD across forked OS processes over a /dev/shm segment — the same
// runtime surface the in-process tests exercise, now with genuine address
// space separation.  Includes crash injection (a PE _exit()s or is
// SIGKILLed mid-run and the survivors must name it), a randomized
// cross-process fabric-atomic conservation check, fig3-shaped checksum
// parity between the shmem and mmap backends, and the two-view MAP_FIXED
// regression for OffsetHeap's base-relative bookkeeping.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <random>
#include <vector>

#include "core/memregion/onesided_region.hpp"
#include "core/memregion/shared_region.hpp"
#include "lamellae/heap.hpp"
#include "lamellar.hpp"
#include "mp/mp_harness.hpp"

namespace {

using namespace lamellar;

// Per-PROCESS counter: under the mmap backend each forked PE has its own
// copy, so it counts AMs executed on this PE only.
std::atomic<std::uint64_t> g_received{0};

struct MpHelloAm {
  std::uint32_t tag = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(tag);
  }
  void exec(AmContext&) { g_received.fetch_add(1); }
};

struct MpAddAm {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(a, b);
  }
  std::uint64_t exec(AmContext&) { return a + b; }
};

struct MpWhoAmIAm {
  template <class Ar>
  void serialize(Ar&) {}
  std::uint64_t exec(AmContext& ctx) { return ctx.current_pe(); }
};

struct MpCounterBox {
  std::atomic<std::uint64_t> hits{0};
  MpCounterBox() = default;
  MpCounterBox(MpCounterBox&& o) noexcept : hits(o.hits.load()) {}
};

struct MpBumpDarcAm {
  Darc<MpCounterBox> box;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(box);
  }
  void exec(AmContext&) { box->hits.fetch_add(1); }
};

struct MpFillOneSidedAm {
  OneSidedMemoryRegion<std::uint32_t> region;
  std::uint32_t value = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(region, value);
  }
  void exec(AmContext&) {
    std::vector<std::uint32_t> vals(region.len(), value);
    region.unsafe_put(0, vals);
  }
};

}  // namespace

LAMELLAR_REGISTER_AM(MpHelloAm);
LAMELLAR_REGISTER_AM(MpAddAm);
LAMELLAR_REGISTER_AM(MpWhoAmIAm);
LAMELLAR_REGISTER_AM(MpBumpDarcAm);
LAMELLAR_REGISTER_AM(MpFillOneSidedAm);

namespace {

class MpSmoke : public mptest::MpTest {};
class MpArray : public mptest::MpTest {};
class MpProps : public mptest::MpTest {};
class MpCrash : public mptest::MpTest {};

// ---- world bring-up at 2 / 4 / 8 processes ----

MP_TEST(MpSmoke, Bringup2, 2) {
  MP_CHECK_EQ(world.num_pes(), 2u);
  MP_CHECK(world.my_pe() < 2);
  world.barrier();
}

MP_TEST(MpSmoke, Bringup4, 4) {
  MP_CHECK_EQ(world.num_pes(), 4u);
  world.barrier();
  world.barrier();  // back-to-back generations
}

MP_TEST(MpSmoke, Bringup8, 8) {
  MP_CHECK_EQ(world.num_pes(), 8u);
  for (int i = 0; i < 4; ++i) world.barrier();
}

// ---- AM slices ported from test_smoke ----

MP_TEST(MpSmoke, AmWithReturn, 2) {
  auto fut = world.exec_am_pe(1 - world.my_pe(), MpAddAm{20, 22});
  MP_CHECK_EQ(world.block_on(std::move(fut)), 42u);
  world.barrier();
}

MP_TEST(MpSmoke, ExecAmAllReturnsPerPeResults, 4) {
  auto fut = world.exec_am_all(MpWhoAmIAm{});
  auto results = world.block_on(std::move(fut));
  MP_CHECK_EQ(results.size(), 4u);
  for (pe_id pe = 0; pe < 4; ++pe) MP_CHECK_EQ(results[pe], pe);
  world.barrier();
}

MP_TEST(MpSmoke, WaitAllDrainsFireAndForget, 3) {
  // Reset before the barrier: peers only send after the barrier releases,
  // which is after every reset, so no increment can be lost.
  g_received.store(0);
  world.barrier();
  for (int i = 0; i < 10; ++i) {
    world.exec_am_pe((world.my_pe() + 1) % 3, MpHelloAm{});
  }
  world.wait_all();
  world.barrier();
  // This process received exactly its predecessor's batch.
  MP_CHECK_EQ(g_received.load(), 10u);
}

MP_TEST(MpSmoke, EightPeAmStorm, 8) {
  g_received.store(0);
  world.barrier();
  constexpr std::uint64_t kRounds = 25;
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (pe_id p = 0; p < world.num_pes(); ++p) {
      world.exec_am_pe(p, MpHelloAm{static_cast<std::uint32_t>(r)});
    }
  }
  world.wait_all();
  world.barrier();
  MP_CHECK_EQ(g_received.load(), kRounds * 8);
}

// ---- Darc across address spaces ----

MP_TEST(MpSmoke, DarcTravelsInAms, 4) {
  auto box = world.new_darc(MpCounterBox{});
  if (world.my_pe() == 0) {
    for (pe_id pe = 0; pe < 4; ++pe) {
      world.exec_am_pe(pe, MpBumpDarcAm{box});
    }
    world.wait_all();
  }
  world.barrier();
  // Each process's replica got exactly one bump from PE0's broadcast.
  MP_CHECK_EQ(box->hits.load(), 1u);
  world.barrier();
}

// ---- memory regions ----

MP_TEST(MpSmoke, SharedRegionPutGet, 4) {
  auto region = SharedMemoryRegion<std::uint64_t>::create(world, 16);
  auto local = region.unsafe_local_slice();
  std::fill(local.begin(), local.end(), world.my_pe());
  world.barrier();

  const std::uint64_t v = 1000 + world.my_pe();
  region.unsafe_put(0, world.my_pe(), std::span<const std::uint64_t>(&v, 1));
  world.barrier();

  if (world.my_pe() == 0) {
    for (std::size_t i = 0; i < 4; ++i) MP_CHECK_EQ(local[i], 1000 + i);
  }
  std::uint64_t got = 0;
  region.unsafe_get(3, 5, std::span<std::uint64_t>(&got, 1));
  if (world.my_pe() != 3) MP_CHECK_EQ(got, 3u);
  world.barrier();
}

MP_TEST(MpSmoke, OneSidedRegionThroughAm, 2) {
  if (world.my_pe() == 0) {
    auto region = OneSidedMemoryRegion<std::uint32_t>::create(world, 8);
    auto fut = world.exec_am_pe(1, MpFillOneSidedAm{region, 7});
    world.block_on(std::move(fut));
    for (auto v : region.unsafe_local_slice()) MP_CHECK_EQ(v, 7u);
  }
  world.barrier();
}

// ---- teams: full-world works, sub-world rejected ----

MP_TEST(MpSmoke, FullWorldTeamWorksSubTeamRejected, 4) {
  std::vector<pe_id> all(world.num_pes());
  std::iota(all.begin(), all.end(), pe_id{0});
  Team team = world.create_team(all);
  MP_CHECK(team.valid());
  MP_CHECK_EQ(team.size(), world.num_pes());
  MP_CHECK_EQ(team.my_rank(), world.my_pe());
  team.barrier();

  // Sub-world teams would need team state in the shared segment; the mp
  // rendezvous rejects them at creation, on every member, before any
  // barrier — so all PEs throw and stay in lockstep.
  bool threw = false;
  try {
    world.split_block(2);
  } catch (const Error&) {
    threw = true;
  }
  MP_CHECK(threw);
  world.barrier();
}

// ---- LamellarArray over the mmap fabric ----

MP_TEST(MpArray, CreateFillSum, 4) {
  auto arr =
      AtomicArray<std::uint64_t>::create(world, 100, Distribution::kBlock);
  MP_CHECK_EQ(arr.len(), 100u);
  arr.fill(7);
  MP_CHECK_EQ(world.block_on(arr.sum()), 700u);
  world.barrier();
}

MP_TEST(MpArray, RemoteElementOps, 2) {
  auto arr = AtomicArray<std::uint64_t>::create(world, 8, Distribution::kBlock);
  arr.fill(10);
  if (world.my_pe() == 0) {
    // Index 7 lives on PE 1.
    world.block_on(arr.add(7, 5));
    MP_CHECK_EQ(world.block_on(arr.load(7)), 15u);
    MP_CHECK_EQ(world.block_on(arr.fetch_add(7, 1)), 15u);
    auto r1 = world.block_on(arr.compare_exchange(7, 16, 42));
    MP_CHECK(r1.success);
    auto r2 = world.block_on(arr.compare_exchange(7, 16, 43));
    MP_CHECK(!r2.success);
    MP_CHECK_EQ(r2.current, 42u);
  }
  world.barrier();
}

// ---- randomized cross-process fabric-atomic conservation ----

MP_TEST(MpProps, FabricAtomicConservation, 4) {
  auto& fab = world.lamellae();
  // One counter word in every PE's arena plus an accumulator on PE 0 —
  // symmetric allocs, so every process computes the same offsets.
  const std::size_t counter_off = fab.alloc_symmetric(8, 64);
  const std::size_t total_off = fab.alloc_symmetric(8, 64);
  fab.atomic_store_u64(world.my_pe(), counter_off, 0);
  fab.atomic_store_u64(world.my_pe(), total_off, 0);
  world.barrier();

  std::mt19937_64 rng(0x51ab5eedull + world.my_pe());
  std::uint64_t applied = 0;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t r = rng();
    const pe_id target = r % world.num_pes();
    const std::uint64_t delta = ((r >> 8) % 100) + 1;
    if ((r >> 32) & 1) {
      fab.atomic_fetch_add_u64(target, counter_off, delta);
    } else {
      // CAS loop: expected is refreshed on failure, so each retry proposes
      // current + delta until one lands.
      std::uint64_t cur = fab.atomic_load_u64(target, counter_off);
      while (!fab.atomic_cas_u64(target, counter_off, cur, cur + delta)) {
      }
    }
    applied += delta;
  }
  fab.atomic_fetch_add_u64(0, total_off, applied);
  world.barrier();

  // Conservation at quiesce: the counters hold exactly what was applied.
  std::uint64_t counted = 0;
  for (pe_id p = 0; p < world.num_pes(); ++p) {
    counted += fab.atomic_load_u64(p, counter_off);
  }
  MP_CHECK_EQ(counted, fab.atomic_load_u64(0, total_off));
  world.barrier();
  fab.free_symmetric(total_off);
  fab.free_symmetric(counter_off);
}

// ---- fig3-shaped checksum parity: shmem vs mmap ----

// Seeded GUPS-style histogram straight on the fabric-atomic layer.  The
// final table is order-independent (each slot holds the count of updates
// that targeted it), so the checksum is deterministic per (seed, updates,
// num_pes) and must be identical under both backends.  Returns the combined
// checksum on PE 0 (0 elsewhere).
std::uint64_t fig3_histogram(World& world, std::size_t updates) {
  auto& fab = world.lamellae();
  constexpr std::size_t kSlots = 512;
  const std::size_t table = fab.alloc_symmetric(kSlots * 8, 64);
  const std::size_t hash_slot = fab.alloc_symmetric(8, 64);
  const std::size_t count_slot = fab.alloc_symmetric(8, 64);
  for (std::size_t s = 0; s < kSlots; ++s) {
    fab.atomic_store_u64(world.my_pe(), table + 8 * s, 0);
  }
  fab.atomic_store_u64(world.my_pe(), hash_slot, 0);
  fab.atomic_store_u64(world.my_pe(), count_slot, 0);
  world.barrier();

  std::mt19937_64 rng(42ull * 1000003 + world.my_pe());
  for (std::size_t i = 0; i < updates; ++i) {
    const std::uint64_t r = rng();
    const pe_id dst = r % world.num_pes();
    const std::size_t slot = (r >> 16) % kSlots;
    fab.atomic_fetch_add_u64(dst, table + 8 * slot, 1);
  }
  world.barrier();

  // Per-PE FNV over the local slice; wrapping-sum the hashes on PE 0 so the
  // combine is order-independent too.
  std::uint64_t h = 1469598103934665603ull;
  std::uint64_t local_total = 0;
  for (std::size_t s = 0; s < kSlots; ++s) {
    const std::uint64_t v = fab.atomic_load_u64(world.my_pe(), table + 8 * s);
    h = (h ^ v) * 1099511628211ull;
    local_total += v;
  }
  fab.atomic_fetch_add_u64(0, hash_slot, h);
  fab.atomic_fetch_add_u64(0, count_slot, local_total);
  world.barrier();

  std::uint64_t checksum = 0;
  if (world.my_pe() == 0) {
    checksum = fab.atomic_load_u64(0, hash_slot);
    // Conservation: every issued update landed exactly once.
    MP_CHECK_EQ(fab.atomic_load_u64(0, count_slot),
                updates * world.num_pes());
  }
  world.barrier();
  fab.free_symmetric(count_slot);
  fab.free_symmetric(hash_slot);
  fab.free_symmetric(table);
  return checksum;
}

std::size_t fig3_updates() {
  if (const char* env = std::getenv("LAMELLAR_TEST_FIG3_UPDATES")) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 20'000;
}

TEST_F(MpProps, Fig3ChecksumParityShmemVsMmap) {
  const std::size_t updates = fig3_updates();

  // In-process run: the body shares this address space, so a captured
  // local receives PE 0's checksum directly.
  std::uint64_t shmem_checksum = 0;
  RuntimeConfig shmem_cfg = mptest::small_config();
  shmem_cfg.backend = BackendKind::kShmem;
  run_world(
      4,
      [&](World& world) {
        const std::uint64_t c = fig3_histogram(world, updates);
        if (world.my_pe() == 0) shmem_checksum = c;
      },
      shmem_cfg);

  // Process-separated run: fork means child writes don't reach the parent's
  // memory, so PE 0 reports its checksum through a temp file.
  const std::string path = std::string(::testing::TempDir()) +
                           "lamellar_fig3_checksum." +
                           std::to_string(::getpid());
  mptest::run_mp(4, [updates, path](World& world) {
    const std::uint64_t c = fig3_histogram(world, updates);
    if (world.my_pe() == 0) {
      std::ofstream out(path);
      out << c << "\n";
      if (!out) throw std::runtime_error("fig3: cannot write " + path);
    }
  });

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "mmap PE 0 never wrote its checksum to " << path;
  std::uint64_t mmap_checksum = 0;
  in >> mmap_checksum;
  ::unlink(path.c_str());
  EXPECT_EQ(mmap_checksum, shmem_checksum)
      << "fig3 histogram diverged between backends (" << updates
      << " updates/PE)";
}

// ---- crash injection ----

TEST_F(MpCrash, ExitingPeIsNamedAndRunUnwinds) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    run_world(
        4,
        [](World& world) {
          world.barrier();
          if (world.my_pe() == 2) ::_exit(1);  // silent casualty, no signal
          world.barrier();
        },
        mptest::small_config());
    FAIL() << "expected run_world to throw for the dead PE";
  } catch (const std::exception& e) {
    // Survivors abort their barrier naming the casualty; the run's error
    // carries that diagnostic.
    EXPECT_NE(std::string(e.what()).find("PE 2"), std::string::npos)
        << e.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Liveness detection, not barrier timeout: well under the 8s budget.
  EXPECT_LT(elapsed, std::chrono::seconds(30));
  // Fixture TearDown asserts the segment was unlinked despite the crash.
}

TEST_F(MpCrash, SigkilledPeIsNamedAndRunUnwinds) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    run_world(
        4,
        [](World& world) {
          world.barrier();
          if (world.my_pe() == 1) ::raise(SIGKILL);  // dies mid-run
          world.barrier();
        },
        mptest::small_config());
    FAIL() << "expected run_world to throw for the killed PE";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PE 1"), std::string::npos) << what;
    EXPECT_NE(what.find("signal 9"), std::string::npos) << what;
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

// ---- OffsetHeap base-relative bookkeeping: two-view MAP_FIXED regression --

// The same shm object mapped at two different addresses.  If heap state
// encoded absolute positions, offsets handed out while "thinking" in one
// view would corrupt the other; with base-relative bookkeeping they are
// plain numbers valid through any view.
TEST(OffsetHeapViews, OffsetsValidAcrossTwoMappings) {
  const std::size_t bytes = std::size_t{1} << 20;
  const std::string name =
      "/lamellar_test_heapview." + std::to_string(::getpid());
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0) << std::strerror(errno);
  ::shm_unlink(name.c_str());  // anonymous from here on
  ASSERT_EQ(::ftruncate(fd, static_cast<off_t>(bytes)), 0);

  void* map_a =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ASSERT_NE(map_a, MAP_FAILED);
  // Reserve address space, then force the second view there with MAP_FIXED.
  void* reserve = ::mmap(nullptr, bytes, PROT_NONE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(reserve, MAP_FAILED);
  void* map_b = ::mmap(reserve, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_FIXED, fd, 0);
  ASSERT_EQ(map_b, reserve);
  ASSERT_NE(map_a, map_b);
  auto* view_a = static_cast<std::byte*>(map_a);
  auto* view_b = static_cast<std::byte*>(map_b);

  // Heap base 4096 — the arena-absolute offsets the runtime trades in.
  const std::size_t base = 4096;
  OffsetHeap heap(base, bytes - base);
  const std::size_t o1 = heap.alloc(256, 64);
  const std::size_t o2 = heap.alloc(1000, 16);
  const std::size_t o3 = heap.alloc(64, 64);
  EXPECT_GE(o1, base);
  EXPECT_EQ(o1 % 64, 0u);
  EXPECT_EQ(o3 % 64, 0u);

  // Write through view A at an offset, read it back through view B.
  std::memset(view_a + o1, 0xAB, 256);
  std::memset(view_a + o2, 0xCD, 1000);
  EXPECT_EQ(std::to_integer<int>(view_b[o1]), 0xAB);
  EXPECT_EQ(std::to_integer<int>(view_b[o1 + 255]), 0xAB);
  EXPECT_EQ(std::to_integer<int>(view_b[o2 + 999]), 0xCD);
  // ...and the reverse direction.
  view_b[o3] = std::byte{0x5A};
  EXPECT_EQ(std::to_integer<int>(view_a[o3]), 0x5A);

  // Free/realloc churn keeps invariants regardless of which view is live.
  heap.free(o2);
  heap.debug_validate();
  const std::size_t o4 = heap.alloc(512, 32);
  EXPECT_GE(o4, base);
  std::memset(view_b + o4, 0xEE, 512);
  EXPECT_EQ(std::to_integer<int>(view_a[o4 + 511]), 0xEE);
  heap.free(o4);
  heap.free(o3);
  heap.free(o1);
  heap.debug_validate();
  EXPECT_EQ(heap.bytes_used(), 0u);
  EXPECT_EQ(heap.live_allocations(), 0u);

  ASSERT_EQ(::munmap(view_b, bytes), 0);
  ASSERT_EQ(::munmap(view_a, bytes), 0);
  ::close(fd);
}

// Startup sweep: a segment whose creator pid is dead gets unlinked by the
// next run's orphan collection.
TEST_F(MpCrash, OrphanedSegmentIsSweptAtStartup) {
  // Forge an orphan: a correctly-prefixed segment naming a pid that cannot
  // be alive (pid 1 is init — use a reaped child's pid instead).
  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) ::_exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);  // pid now definitely dead
  const std::string orphan =
      "/lamellar_mp." + std::to_string(child) + ".0.424242";
  int fd = ::shm_open(orphan.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0) << std::strerror(errno);
  ::close(fd);

  // Any mmap run sweeps orphans during segment creation.
  mptest::run_mp(2, [](World& world) { world.barrier(); });

  fd = ::shm_open(orphan.c_str(), O_RDWR, 0600);
  EXPECT_LT(fd, 0) << "orphaned segment survived the startup sweep";
  if (fd >= 0) {
    ::close(fd);
    ::shm_unlink(orphan.c_str());
  }
}

}  // namespace
