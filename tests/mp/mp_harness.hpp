// Fork-based multi-process test fixture for the process-separated backend.
//
// run_world(LAMELLAR_BACKEND=mmap) already forks one OS process per PE,
// joins with crash detection, and rethrows the first failure with the
// casualty's stderr — this header adapts that machinery to gtest:
//
//   MP_TEST(Suite, Name, n_pes) { /* SPMD body, `world` in scope */ }
//
// gtest's EXPECT/ASSERT macros record failures in process-local state, so a
// failed expectation inside a forked child would be INVISIBLE to the parent
// test binary.  Child bodies therefore use MP_CHECK / MP_CHECK_EQ, which
// throw on violation: the harness turns that into a nonzero child exit plus
// the message on the child's captured stderr, and the parent surfaces it as
// the test failure.
//
// The fixture's teardown scans /dev/shm for segments created by this
// process and fails the test if any leaked — every run, including the
// crash-injection ones, must unlink its segment.
#pragma once

#include <gtest/gtest.h>
#include <sys/mman.h>
#include <unistd.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "core/world/mp_runtime.hpp"
#include "core/world/world.hpp"
#include "lamellae/mmap_lamellae.hpp"

namespace lamellar::mptest {

/// Config for multi-process tests: mmap backend with heaps shrunk so an
/// 8-process world costs ~100 MB of /dev/shm instead of ~800 MB, and
/// timeouts short enough that a genuine hang fails fast in CI.
inline RuntimeConfig small_config() {
  RuntimeConfig cfg = RuntimeConfig::from_env();
  cfg.backend = BackendKind::kMmap;
  cfg.internal_heap_bytes = std::size_t{1} << 20;
  cfg.symmetric_heap_bytes = std::size_t{8} << 20;
  cfg.onesided_heap_bytes = std::size_t{4} << 20;
  cfg.agg_threshold_bytes = 64 * 1024;
  cfg.mp_ring_bytes = std::size_t{256} << 10;
  cfg.mp_barrier_timeout_ms = 8'000;
  cfg.mp_wait_timeout_ms = 90'000;
  return cfg;
}

/// Run `body` SPMD over `n_pes` forked processes; report the first failing
/// PE's outcome (exit/signal + stderr) as a gtest failure in the parent.
inline void run_mp(std::size_t n_pes,
                   const std::function<void(World&)>& body,
                   RuntimeConfig cfg = small_config()) {
  cfg.backend = BackendKind::kMmap;
  try {
    run_world(n_pes, body, cfg);
  } catch (const std::exception& e) {
    ADD_FAILURE() << e.what();
  }
}

/// Leak-checking fixture: no /dev/shm segment created by this (parent)
/// process may survive a test, crash-injection included.
class MpTest : public ::testing::Test {
 protected:
  void TearDown() override {
    const auto leaked = MmapSegment::segments_of(getpid());
    for (const auto& name : leaked) {
      ADD_FAILURE() << "leaked /dev/shm segment: " << name;
      ::shm_unlink(name.c_str());  // don't poison the next test in this binary
    }
  }
};

}  // namespace lamellar::mptest

/// Child-side checks: throw (→ child exits 1 with the message on stderr)
/// instead of recording into gtest state the parent never sees.
#define MP_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      throw std::runtime_error(std::string("MP_CHECK failed at ") +      \
                               __FILE__ + ":" + std::to_string(__LINE__) \
                               + ": " #cond);                            \
    }                                                                    \
  } while (0)

#define MP_CHECK_EQ(a, b)                                                  \
  do {                                                                     \
    const auto mp_va = (a);                                                \
    const auto mp_vb = (b);                                                \
    if (!(mp_va == mp_vb)) {                                               \
      std::ostringstream mp_os;                                            \
      mp_os << "MP_CHECK_EQ failed at " << __FILE__ << ":" << __LINE__    \
            << ": " #a " (" << mp_va << ") != " #b " (" << mp_vb << ")";  \
      throw std::runtime_error(mp_os.str());                               \
    }                                                                      \
  } while (0)

/// Declare a gtest case whose body runs SPMD on `n_pes` forked processes.
/// The body receives `lamellar::World& world`; use MP_CHECK inside.
#define MP_TEST(suite, name, n_pes)                                   \
  struct MpBody_##suite##_##name {                                    \
    static void run(lamellar::World& world);                          \
  };                                                                  \
  TEST_F(suite, name) {                                               \
    lamellar::mptest::run_mp((n_pes), &MpBody_##suite##_##name::run); \
  }                                                                   \
  void MpBody_##suite##_##name::run(lamellar::World& world)
