// Darc lifetime-protocol tests: collective creation, clone/drop counting,
// transfer tracking across AMs, revive-after-drop, destruction exactly once.
#include <gtest/gtest.h>

#include <atomic>

#include "lamellar.hpp"

namespace {

using namespace lamellar;

std::atomic<int> g_live_payloads{0};

struct TrackedPayload {
  int tag = 0;
  TrackedPayload() { g_live_payloads.fetch_add(1); }
  explicit TrackedPayload(int t) : tag(t) { g_live_payloads.fetch_add(1); }
  TrackedPayload(TrackedPayload&& o) noexcept : tag(o.tag) {
    g_live_payloads.fetch_add(1);
  }
  ~TrackedPayload() { g_live_payloads.fetch_sub(1); }
};

struct HoldDarcAm {
  Darc<TrackedPayload> darc;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(darc);
  }
  std::uint64_t exec(AmContext&) { return darc->tag; }
};

}  // namespace

LAMELLAR_REGISTER_AM(HoldDarcAm);

namespace {

TEST(Darc, CreateAccessDestroy) {
  g_live_payloads.store(0);
  run_world(4, [](World& world) {
    {
      auto d = world.new_darc(TrackedPayload(int(world.my_pe()) + 10));
      EXPECT_EQ(d->tag, int(world.my_pe()) + 10);
      EXPECT_EQ(world.darc_manager().local_refs(d.id()), 1u);
      world.barrier();
    }
    // Handles dropped; the distributed protocol must destroy all instances
    // before the world finalizes.
  });
  EXPECT_EQ(g_live_payloads.load(), 0);
}

TEST(Darc, CloneCounts) {
  run_world(2, [](World& world) {
    auto d = world.new_darc(TrackedPayload(1));
    {
      auto d2 = d;       // NOLINT(performance-unnecessary-copy-initialization)
      auto d3 = d2;      // NOLINT
      EXPECT_EQ(world.darc_manager().local_refs(d.id()), 3u);
    }
    EXPECT_EQ(world.darc_manager().local_refs(d.id()), 1u);
    world.barrier();
  });
}

TEST(Darc, AccessesRemoteInstanceThroughAm) {
  run_world(3, [](World& world) {
    auto d = world.new_darc(TrackedPayload(int(world.my_pe()) * 100));
    if (world.my_pe() == 0) {
      // Each PE's instance is independent: exec on PE 2 sees its tag.
      auto v = world.block_on(world.exec_am_pe(2, HoldDarcAm{d}));
      EXPECT_EQ(v, 200u);
    }
    world.barrier();
  });
}

TEST(Darc, SurvivesWhileRemoteHoldsOnlyReference) {
  g_live_payloads.store(0);
  run_world(2, [](World& world) {
    if (world.my_pe() == 0) {
      auto fut = [&] {
        auto d = world.new_darc(TrackedPayload(7));
        return world.exec_am_pe(1, HoldDarcAm{d});
        // d dropped here while the AM (holding a transferred ref) is in
        // flight; the protocol must keep the object alive until the remote
        // execution finishes.
      }();
      EXPECT_EQ(world.block_on(std::move(fut)), 7u);
    } else {
      auto d = world.new_darc(TrackedPayload(7));
      // PE1 drops immediately.
    }
  });
  EXPECT_EQ(g_live_payloads.load(), 0);
}

TEST(Darc, ManyDarcsAllReclaimed) {
  g_live_payloads.store(0);
  run_world(2, [](World& world) {
    for (int i = 0; i < 20; ++i) {
      auto d = world.new_darc(TrackedPayload(i));
      if (world.my_pe() == 0 && i % 3 == 0) {
        world.exec_am_pe(1, HoldDarcAm{d});
      }
    }
    world.wait_all();
    world.barrier();
  });
  EXPECT_EQ(g_live_payloads.load(), 0);
}

TEST(OneSided, WeightedTransferReclaims) {
  run_world(2, [](World& world) {
    std::size_t live_before = world.onesided_registry().live();
    {
      auto region = OneSidedMemoryRegion<std::uint64_t>::create(world, 4);
      EXPECT_EQ(world.onesided_registry().live(), live_before + 1);
    }
    EXPECT_EQ(world.onesided_registry().live(), live_before);
    world.barrier();
  });
}

struct EchoRegionAm {
  OneSidedMemoryRegion<std::uint32_t> region;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(region);
  }
  std::uint64_t exec(AmContext&) { return region.len(); }
};

}  // namespace

LAMELLAR_REGISTER_AM(EchoRegionAm);

namespace {

TEST(OneSided, RegionFreedAfterRemoteHandleDies) {
  run_world(2, [](World& world) {
    if (world.my_pe() == 0) {
      std::size_t live_before = world.onesided_registry().live();
      {
        auto region = OneSidedMemoryRegion<std::uint32_t>::create(world, 16);
        auto v = world.block_on(world.exec_am_pe(1, EchoRegionAm{region}));
        EXPECT_EQ(v, 16u);
      }
      // Local handle gone; the remote proxy's weight return may still be in
      // flight.  Help the runtime until it lands (bounded).
      for (int spin = 0;
           world.onesided_registry().live() != live_before && spin < 2'000'000;
           ++spin) {
        if (!world.pool().try_run_one()) world.engine().poll_inbox();
      }
      EXPECT_EQ(world.onesided_registry().live(), live_before);
      world.barrier();
    } else {
      world.barrier();
    }
  });
}

}  // namespace
