// Regression tests for the concurrency bugs fixed in the sanitizer PR
// (ISSUE 3): the ThreadPool park-path lost wakeup, unbounded retired-array
// growth in the Chase-Lev deque, plus invariant coverage for OffsetHeap,
// SenseBarrier (mixed clocked / clock-less participants) and MpmcQueue.
// All tests are sanitizer-clean by design; run them under
// -DLAMELLAR_SANITIZE=thread and =address,undefined (see CI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/mpmc_queue.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "core/scheduler/deque.hpp"
#include "core/scheduler/thread_pool.hpp"
#include "fabric/barrier.hpp"
#include "lamellae/heap.hpp"

namespace {

using namespace lamellar;
using namespace std::chrono_literals;

// ---- ThreadPool: lost-wakeup in the park path ------------------------------

// Pre-fix, the idle park was `wait_for` with *no predicate*: a spawn whose
// notify landed between a worker's last failed find_task() and its wait
// call was lost, and the task stalled for a full park timeout.  With the
// unclaimed_-count predicate, a queued task makes the wait return
// immediately no matter how the notify raced.  We make any regression
// unmissable by using a park timeout far larger than the asserted latency:
// a single lost wakeup turns into a multi-second stall and fails the bound.
TEST(ThreadPoolWakeup, SpawnWakesParkedWorkerImmediately) {
  ThreadPool pool(1, /*progress=*/{}, SchedulerObs{},
                  /*park_timeout=*/std::chrono::duration_cast<
                      std::chrono::microseconds>(10min));
  for (int trial = 0; trial < 100; ++trial) {
    // Give the worker time to run through its idle spins and park.
    if (trial % 10 == 0) std::this_thread::sleep_for(2ms);
    std::atomic<bool> done{false};
    const auto t0 = std::chrono::steady_clock::now();
    pool.spawn([&] { done.store(true, std::memory_order_release); });
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_LT(std::chrono::steady_clock::now() - t0, 10s)
          << "task stalled: park-path wakeup was lost (trial " << trial << ")";
      std::this_thread::yield();
    }
  }
  pool.shutdown();
}

TEST(ThreadPoolWakeup, SpawnBatchWakesParkedWorkers) {
  ThreadPool pool(2, /*progress=*/{}, SchedulerObs{},
                  /*park_timeout=*/std::chrono::duration_cast<
                      std::chrono::microseconds>(10min));
  for (int trial = 0; trial < 25; ++trial) {
    if (trial % 5 == 0) std::this_thread::sleep_for(2ms);
    std::atomic<int> done{0};
    std::vector<Task> batch;
    for (int i = 0; i < 8; ++i) {
      // release/acquire so the final increment happens-before the next
      // trial reusing this stack slot.
      batch.emplace_back([&] { done.fetch_add(1, std::memory_order_release); });
    }
    const auto t0 = std::chrono::steady_clock::now();
    pool.spawn_batch(std::move(batch));
    while (done.load(std::memory_order_acquire) != 8) {
      ASSERT_LT(std::chrono::steady_clock::now() - t0, 10s)
          << "batch stalled: park-path wakeup was lost (trial " << trial
          << ")";
      std::this_thread::yield();
    }
  }
  pool.shutdown();
}

// The park timeout exists so idle workers keep polling the progress hook
// (Lamellae inbox drain); the predicate must not turn the timed wait into
// an indefinite sleep.
TEST(ThreadPoolWakeup, IdleWorkerKeepsPollingProgress) {
  std::atomic<std::uint64_t> polls{0};
  ThreadPool pool(
      1, [&] { polls.fetch_add(1, std::memory_order_relaxed); },
      SchedulerObs{}, /*park_timeout=*/1000us);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (polls.load(std::memory_order_relaxed) < 10 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(polls.load(std::memory_order_relaxed), 10u)
      << "idle worker stopped polling the progress hook";
  pool.shutdown();
}

// ---- WorkStealingDeque: retired ring-array reclamation ---------------------

// Pre-fix, every grow() retired the old ring array until destruction:
// a long-lived worker with deep spikes leaked memory proportional to its
// peak depth for the rest of the run.  Retired arrays must now be freed at
// the owner's empty-deque quiesce point.
TEST(WorkStealingDeque, RetiredArraysReclaimedWhenEmpty) {
  WorkStealingDeque<int> dq(/*initial_capacity=*/4);
  for (int i = 0; i < 1000; ++i) dq.push(new int(i));
  EXPECT_GT(dq.retired_count(), 0u) << "growth did not retire any array";
  int* p = nullptr;
  while ((p = dq.pop()) != nullptr) delete p;
  // The empty pop above is the quiesce point: with no steals in flight,
  // every retired array must be gone.
  EXPECT_EQ(dq.retired_count(), 0u);
}

// Thieves racing grow() and reclamation: every item is claimed exactly once
// (conservation), and no thief touches a freed ring array (ASan/TSan verify
// the latter; the exactly-once bookkeeping verifies the algorithm).
TEST(WorkStealingDeque, StealDuringGrowConservesItems) {
  constexpr int kItems = 20000;
  WorkStealingDeque<int> dq(/*initial_capacity=*/8);
  std::vector<std::atomic<int>> claimed(kItems);
  for (auto& c : claimed) c.store(0, std::memory_order_relaxed);
  std::atomic<bool> stop{false};
  std::atomic<int> total{0};

  auto claim = [&](int* p) {
    claimed[*p].fetch_add(1, std::memory_order_relaxed);
    total.fetch_add(1, std::memory_order_relaxed);
    delete p;
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < 2; ++t) {
    thieves.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (int* p = dq.steal()) claim(p);
      }
    });
  }

  auto rng = Xoshiro256(7);
  int produced = 0;
  while (produced < kItems) {
    // Bursty pushes force repeated grows while thieves are mid-steal.
    const int burst = 1 + static_cast<int>(rng.uniform(100));
    for (int i = 0; i < burst && produced < kItems; ++i) {
      dq.push(new int(produced++));
    }
    const int pops = static_cast<int>(rng.uniform(40));
    for (int i = 0; i < pops; ++i) {
      if (int* p = dq.pop()) claim(p);
    }
  }
  while (total.load(std::memory_order_relaxed) < kItems) {
    if (int* p = dq.pop()) claim(p);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(claimed[i].load(std::memory_order_relaxed), 1)
        << "item " << i << " claimed wrong number of times";
  }
  // Thieves are gone and the deque is empty: the next owner pop must
  // reclaim everything retired by the grows above.
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.retired_count(), 0u);
}

// ---- OffsetHeap ------------------------------------------------------------

TEST(OffsetHeap, CoalescesWithBothNeighbors) {
  OffsetHeap heap(0, 4096);
  const std::size_t a = heap.alloc(96, 16);
  const std::size_t b = heap.alloc(96, 16);
  const std::size_t c = heap.alloc(96, 16);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 96u);
  EXPECT_EQ(c, 192u);
  heap.free(a);
  heap.free(c);                        // c coalesces with the tail block
  EXPECT_EQ(heap.debug_validate(), 2u);  // [a] and [c..end]
  heap.free(b);                        // b must merge with *both* neighbors
  EXPECT_EQ(heap.debug_validate(), 1u);
  EXPECT_EQ(heap.bytes_used(), 0u);
  EXPECT_EQ(heap.bytes_free(), 4096u);
}

TEST(OffsetHeap, AlignmentPaddingIsTrackedAndFreed) {
  OffsetHeap heap(0, 1024);
  const std::size_t a = heap.alloc(10, 16);
  const std::size_t b = heap.alloc(8, 64);  // free space starts at 10 -> pad
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_EQ(heap.debug_validate(), 1u);  // tail block only
  heap.free(b);  // must release the padding too, and coalesce
  heap.free(a);
  EXPECT_EQ(heap.debug_validate(), 1u);
  EXPECT_EQ(heap.bytes_used(), 0u);
}

TEST(OffsetHeap, FragmentedOomReportsFreeBytes) {
  OffsetHeap heap(0, 1024);
  const std::size_t a = heap.alloc(256, 16);
  const std::size_t b = heap.alloc(256, 16);
  const std::size_t c = heap.alloc(256, 16);
  const std::size_t d = heap.alloc(256, 16);
  (void)a;
  (void)c;
  heap.free(b);
  heap.free(d);
  // 512 bytes free but no contiguous 512-byte run.
  try {
    heap.alloc(512, 16);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("512"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fragmented"), std::string::npos) << msg;
  }
  EXPECT_EQ(heap.debug_validate(), 2u);
}

TEST(OffsetHeap, FreeOfUnknownOffsetThrows) {
  OffsetHeap heap(0, 1024);
  EXPECT_THROW(heap.free(64), Error);
  const std::size_t a = heap.alloc(32, 16);
  heap.free(a);
  EXPECT_THROW(heap.free(a), Error);  // double free
}

TEST(OffsetHeap, ConcurrentRandomizedAllocFreeKeepsInvariants) {
  OffsetHeap heap(0, std::size_t{1} << 20);
  constexpr int kThreads = 4;
  constexpr int kOps = 1500;
  std::atomic<bool> stop{false};

  // A validator thread hammers debug_validate() while mutators run: every
  // invariant must hold at every lock-grant, not just at the end.
  std::thread validator([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_NO_THROW(heap.debug_validate());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> mutators;
  std::vector<std::vector<std::size_t>> leftovers(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    mutators.emplace_back([&heap, &leftovers, t] {
      auto rng = pe_rng(/*seed=*/99, static_cast<std::size_t>(t));
      std::vector<std::size_t>& mine = leftovers[t];
      for (int op = 0; op < kOps; ++op) {
        if (mine.empty() || rng.uniform(3) != 0) {
          try {
            const std::size_t bytes = 8 + rng.uniform(512);
            const std::size_t align = std::size_t{1} << (3 + rng.uniform(4));
            mine.push_back(heap.alloc(bytes, align));
          } catch (const OutOfMemoryError&) {
            // Fine under contention; freed below.
          }
        } else {
          const std::size_t idx = rng.uniform(mine.size());
          heap.free(mine[idx]);
          mine[idx] = mine.back();
          mine.pop_back();
        }
      }
    });
  }
  for (auto& t : mutators) t.join();
  stop.store(true, std::memory_order_release);
  validator.join();

  for (auto& mine : leftovers) {
    for (std::size_t off : mine) heap.free(off);
  }
  EXPECT_EQ(heap.bytes_used(), 0u);
  EXPECT_EQ(heap.debug_validate(), 1u);  // fully coalesced again
}

// ---- SenseBarrier: mixed clocked / clock-less participants -----------------

TEST(SenseBarrier, MixedClockedAndClocklessRounds) {
  constexpr std::size_t kParticipants = 4;
  constexpr std::size_t kClocked = 2;
  constexpr int kRounds = 200;
  constexpr double kCostNs = 5.0;
  SenseBarrier barrier(kParticipants);
  std::vector<VirtualClock> clocks(kClocked);
  std::atomic<std::uint64_t> arrivals{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParticipants; ++t) {
    threads.emplace_back([&, t] {
      auto rng = pe_rng(/*seed=*/123, t);
      VirtualClock* clk = t < kClocked ? &clocks[t] : nullptr;
      for (int r = 0; r < kRounds; ++r) {
        if (clk != nullptr) clk->advance(static_cast<double>(rng.uniform(50)));
        arrivals.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait(clk, kCostNs);
        // Release implies every participant of this round arrived.
        ASSERT_GE(arrivals.load(std::memory_order_relaxed),
                  kParticipants * static_cast<std::uint64_t>(r + 1));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(arrivals.load(), kParticipants * static_cast<std::uint64_t>(kRounds));
  // All clocked participants end on the identical release time.
  EXPECT_EQ(clocks[0].now(), clocks[1].now());
  // kRounds releases, each adding at least the modeled cost.
  EXPECT_GE(clocks[0].now(),
            static_cast<sim_nanos>(kCostNs) * static_cast<sim_nanos>(kRounds));
}

// ---- MpmcQueue -------------------------------------------------------------

TEST(MpmcQueue, ConcurrentPushPopConservesItems) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 20000;
  MpmcQueue<int> q;
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (popped_count.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (auto v = q.try_pop()) {
          popped_sum.fetch_add(*v, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  const long long n = static_cast<long long>(kProducers) * kPerProducer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n - 1) / 2);
  EXPECT_TRUE(q.empty());
}

// Empty trivially-copyable vectors round-trip without invoking memcpy on a
// null data() pointer (UBSan flagged the unguarded zero-length copy; found
// by the sanitizer CI on AM payloads that happened to be empty).
TEST(Serialize, EmptyVectorPayloadRoundTrips) {
  const std::vector<std::uint64_t> empty;
  const std::vector<std::uint64_t> full = {1, 2, 3};
  ByteBuffer buf;
  Serializer ser(buf);
  ser.put(empty);
  ser.put(full);
  ser.put(empty);
  Deserializer des(buf);
  EXPECT_TRUE(des.take<std::vector<std::uint64_t>>().empty());
  EXPECT_EQ(des.take<std::vector<std::uint64_t>>(), full);
  EXPECT_TRUE(des.take<std::vector<std::uint64_t>>().empty());
}

TEST(MpmcQueue, DrainIntoMovesEverythingInOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  std::vector<int> out;
  EXPECT_EQ(q.drain_into(out), 10u);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

}  // namespace
