// Correctness tests for the BALE kernels over every backend, plus the
// baseline aggregation libraries themselves.
#include <gtest/gtest.h>

#include "bale/histogram.hpp"
#include "bale/indexgather.hpp"
#include "bale/randperm.hpp"
#include "baselines/conveyor/conveyor.hpp"
#include "baselines/exstack/exstack.hpp"
#include "baselines/exstack2/exstack2.hpp"
#include "baselines/selector/selector.hpp"
#include "lamellar.hpp"

namespace {

using namespace lamellar;
using namespace lamellar::bale;

class HistogramBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(HistogramBackends, VerifiesAndTimes) {
  const Backend backend = GetParam();
  run_world(4, [backend](World& world) {
    HistogramParams p;
    p.table_per_pe = 200;
    p.updates_per_pe = 3'000;
    p.agg_limit = 256;
    auto r = histogram_kernel(world, backend, p);
    EXPECT_TRUE(r.verified) << backend_name(backend);
    EXPECT_GT(r.elapsed_ns, 0u);
    world.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, HistogramBackends,
    ::testing::Values(Backend::kLamellarAm, Backend::kLamellarArray,
                      Backend::kExstack, Backend::kExstack2,
                      Backend::kConveyor, Backend::kSelector,
                      Backend::kChapel),
    [](const auto& info) {
      std::string name = backend_name(info.param);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

class IndexGatherBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(IndexGatherBackends, VerifiesAndTimes) {
  const Backend backend = GetParam();
  run_world(4, [backend](World& world) {
    IndexGatherParams p;
    p.table_per_pe = 200;
    p.requests_per_pe = 2'000;
    p.agg_limit = 128;
    auto r = indexgather_kernel(world, backend, p);
    EXPECT_TRUE(r.verified) << backend_name(backend);
    world.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, IndexGatherBackends,
    ::testing::Values(Backend::kLamellarAm, Backend::kLamellarArray,
                      Backend::kExstack, Backend::kExstack2,
                      Backend::kConveyor, Backend::kSelector,
                      Backend::kChapel),
    [](const auto& info) {
      std::string name = backend_name(info.param);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

class RandpermImpls : public ::testing::TestWithParam<RandpermImpl> {};

TEST_P(RandpermImpls, ProducesValidPermutation) {
  const RandpermImpl impl = GetParam();
  run_world(4, [impl](World& world) {
    RandpermParams p;
    p.perm_per_pe = 500;
    p.agg_limit = 64;
    auto r = randperm_kernel(world, impl, p);
    EXPECT_TRUE(r.verified) << randperm_impl_name(impl);
    world.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllImpls, RandpermImpls,
    ::testing::Values(RandpermImpl::kArrayDarts, RandpermImpl::kAmDart,
                      RandpermImpl::kAmDartOpt, RandpermImpl::kAmPush,
                      RandpermImpl::kExstack),
    [](const auto& info) {
      std::string name = randperm_impl_name(info.param);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---- the baseline libraries in isolation ----

TEST(Baselines, ExstackAllToAll) {
  run_world(3, [](World& world) {
    baselines::Exstack<std::uint64_t> ex(world, 8);
    std::uint64_t received = 0;
    std::size_t sent = 0;
    const std::size_t kPerPeer = 20;
    std::vector<std::pair<pe_id, std::uint64_t>> to_send;
    for (pe_id dst = 0; dst < 3; ++dst) {
      for (std::size_t k = 0; k < kPerPeer; ++k) {
        to_send.emplace_back(dst, world.my_pe() * 1000 + k);
      }
    }
    bool more = true;
    while (more) {
      while (sent < to_send.size() &&
             ex.push(to_send[sent].first, to_send[sent].second)) {
        ++sent;
      }
      more = ex.proceed(sent == to_send.size());
      while (auto item = ex.pop()) ++received;
    }
    EXPECT_EQ(received, 3 * kPerPeer);
    world.barrier();
  });
}

TEST(Baselines, Exstack2Async) {
  run_world(3, [](World& world) {
    baselines::Exstack2<std::uint64_t> ex(world, 4);
    std::uint64_t sum = 0;
    for (int k = 0; k < 50; ++k) {
      ex.push((world.my_pe() + 1 + k % 2) % 3, 1);
    }
    ex.done();
    while (ex.proceed()) {
      while (auto item = ex.pop()) sum += item->second;
    }
    while (auto item = ex.pop()) sum += item->second;
    EXPECT_EQ(sum, 50u);
    world.barrier();
  });
}

TEST(Baselines, ConveyorRoutesToFinalDestination) {
  run_world(4, [](World& world) {
    baselines::Conveyor<std::uint64_t> conv(world, 4);
    // Every PE sends each PE its own id 10 times.
    for (int k = 0; k < 10; ++k) {
      for (pe_id dst = 0; dst < 4; ++dst) {
        conv.push(dst, world.my_pe() * 100 + dst);
      }
    }
    conv.done();
    std::uint64_t count = 0;
    bool ok = true;
    auto drain = [&] {
      while (auto item = conv.pop()) {
        ++count;
        // Item encodes intended destination: must be us.
        ok = ok && (item->second % 100 == world.my_pe());
      }
    };
    while (conv.proceed()) drain();
    drain();
    EXPECT_TRUE(ok);
    EXPECT_EQ(count, 40u);
    world.barrier();
  });
}

TEST(Baselines, SelectorMailboxes) {
  run_world(2, [](World& world) {
    baselines::Selector<std::uint64_t, 2> sel(world, 4);
    std::uint64_t a = 0, b = 0;
    sel.on_message(0, [&a](std::uint64_t v, pe_id) { a += v; });
    sel.on_message(1, [&b](std::uint64_t v, pe_id) { b += v; });
    for (int k = 0; k < 10; ++k) {
      sel.send(0, 1 - world.my_pe(), 1);
      sel.send(1, 1 - world.my_pe(), 2);
    }
    sel.done();
    sel.run_to_completion();
    EXPECT_EQ(a, 10u);
    EXPECT_EQ(b, 20u);
    world.barrier();
  });
}

TEST(Baselines, ChannelBackpressure) {
  run_world(2, [](World& world) {
    baselines::ChannelGroup<std::uint64_t> ch(world, 2, /*slots=*/2);
    if (world.my_pe() == 0) {
      std::vector<std::uint64_t> buf{1, 2};
      ASSERT_TRUE(ch.try_send(1, buf));
      ASSERT_TRUE(ch.try_send(1, buf));
      EXPECT_FALSE(ch.try_send(1, buf));  // ring full
    }
    world.barrier();
    if (world.my_pe() == 1) {
      auto m1 = ch.try_recv();
      ASSERT_TRUE(m1.has_value());
      EXPECT_EQ(m1->second.size(), 2u);
    }
    world.barrier();
    if (world.my_pe() == 0) {
      std::vector<std::uint64_t> buf{3};
      EXPECT_TRUE(ch.try_send(1, buf));  // slot freed
    }
    world.barrier();
  });
}

}  // namespace
