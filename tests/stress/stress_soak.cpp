// Deterministic multi-PE soak harness (ISSUE 3 tentpole).
//
// Hammers every concurrent subsystem of the runtime at once — the
// work-stealing scheduler (spawn / steal / block_on helping), the zero-copy
// AM hot path (in-place commit vs. flush vs. large-record bypass, buffer
// pool recycling), the cmd-queue swap/recycle machinery, the Darc lifetime
// protocol (construction / transfer / revive / drop), fabric RDMA + atomics,
// and the one-sided symmetric-heap allocator — from many threads per PE
// simultaneously, then checks runtime invariants at every quiesce point.
//
// The op *stream* is deterministic: every PE's schedule for round R is drawn
// from pe_rng(seed, pe * kRoundSalt + R), so a failing (seed, pes, rounds)
// triple replays the same work. Thread interleavings of course still vary —
// that is the point; run under TSan/ASan to turn interleaving bugs into
// reports (see .github/workflows/ci.yml "sanitizers" job and DESIGN.md §8).
//
// Usage:
//   stress_soak [--seed S] [--pes N] [--threads T] [--rounds R]
//               [--ms M] [--ops K]
//
//   --rounds R   maximum rounds (0 = until the time budget is spent)
//   --ms M       wall-clock budget in milliseconds (0 = rounds only)
//   --ops K      ops per PE per round
//
// Exit status 0 iff every invariant held and every checksum matched.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "lamellar.hpp"

namespace {

using namespace lamellar;

std::atomic<std::uint64_t> g_failures{0};

void fail(const char* what, std::uint64_t got, std::uint64_t want, pe_id pe,
          std::size_t round) {
  g_failures.fetch_add(1);
  std::fprintf(stderr,
               "[stress_soak] FAIL pe=%zu round=%zu %s: got %llu want %llu\n",
               pe, round, what, static_cast<unsigned long long>(got),
               static_cast<unsigned long long>(want));
}

#define SOAK_CHECK(cond, what, got, want, pe, round) \
  do {                                               \
    if (!(cond)) fail(what, got, want, pe, round);   \
  } while (0)

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::vector<std::uint64_t>& v) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t w : v) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---- active messages -------------------------------------------------------

struct PingAm {
  std::uint64_t x = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(x);
  }
  std::uint64_t exec(AmContext&) { return mix64(x); }
};

struct PayloadAm {
  std::vector<std::uint64_t> data;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(data);
  }
  std::uint64_t exec(AmContext&) { return fnv1a(data); }
};

// Per-round Darc payload: an atomic hit counter per PE instance.
struct ShardState {
  std::atomic<std::uint64_t> hits{0};
  ShardState() = default;
  ShardState(ShardState&& o) noexcept : hits(o.hits.load()) {}
};

struct DarcTouchAm {
  Darc<ShardState> shard;
  std::uint64_t tag = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(shard);
    ar(tag);
  }
  std::uint64_t exec(AmContext&) {
    shard->hits.fetch_add(1, std::memory_order_relaxed);
    return mix64(tag);
  }
};

}  // namespace

LAMELLAR_REGISTER_AM(PingAm);
LAMELLAR_REGISTER_AM(PayloadAm);
LAMELLAR_REGISTER_AM(DarcTouchAm);

namespace {

struct Options {
  std::uint64_t seed = 42;
  std::size_t pes = 4;
  std::size_t threads = 3;
  std::size_t rounds = 0;    // 0 = until --ms budget spent
  std::size_t ms = 0;        // 0 = --rounds only
  std::size_t ops = 400;     // ops per PE per round
};

Options parse_args(int argc, char** argv) {
  Options o;
  auto num = [&](int& i) -> std::uint64_t {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return std::strtoull(argv[++i], nullptr, 10);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed") o.seed = num(i);
    else if (a == "--pes") o.pes = num(i);
    else if (a == "--threads") o.threads = num(i);
    else if (a == "--rounds") o.rounds = num(i);
    else if (a == "--ms") o.ms = num(i);
    else if (a == "--ops") o.ops = num(i);
    else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      std::exit(2);
    }
  }
  if (o.rounds == 0 && o.ms == 0) o.rounds = 2;
  return o;
}

// Round-end allocation registry: tasks record one-sided allocations here;
// whatever they did not free themselves is released by the main thread at
// the quiesce point.
struct RoundAllocs {
  std::mutex mu;
  std::vector<std::size_t> offs;
  std::size_t oom_hits = 0;

  void push(std::size_t off) {
    std::lock_guard lock(mu);
    offs.push_back(off);
  }
  // Pop one allocation to free, if any (stresses the concurrent free path).
  bool pop(std::size_t& off) {
    std::lock_guard lock(mu);
    if (offs.empty()) return false;
    off = offs.back();
    offs.pop_back();
    return true;
  }
};

constexpr std::uint64_t kRoundSalt = 0x100000001ULL;

constexpr std::size_t kSoakArrLen = 512;

// One deterministic soak round on one PE. `atoms_off` is a region of
// npes u64 words in every PE's arena (fabric atomics only); `scratch_off`
// is a region of npes 64-byte columns (PE p only ever puts/gets column p,
// so plain-memcpy RDMA never overlaps between writers); `arr_contrib_off`
// is one u64 slot per PE announcing this round's batched-array total.
// Returns the number of fabric-atomic increments this PE performed.
std::uint64_t soak_round(World& world, std::size_t round, const Options& opt,
                         std::size_t atoms_off, std::size_t scratch_off,
                         std::size_t arr_contrib_off) {
  const pe_id me = world.my_pe();
  const std::size_t npes = world.num_pes();
  auto rng = pe_rng(opt.seed, me * kRoundSalt + round);

  world.barrier();
  std::uint64_t atomic_adds = 0;
  {
    // Collective per-round Darc; dropped (and therefore globally destroyed)
    // before this round's quiesce check.  The per-round batched-op target
    // alternates distribution so both planner shapes (contiguous block
    // ranges, strided cyclic buckets) soak every round pairing.
    auto shard = world.new_darc(ShardState{});
    auto arr = AtomicArray<std::uint64_t>::create(
        world, kSoakArrLen,
        round % 2 == 0 ? Distribution::kBlock : Distribution::kCyclic);
    arr.fill(0);
    world.barrier();
    std::uint64_t array_adds = 0;
    RoundAllocs allocs;

    std::vector<std::pair<Future<std::uint64_t>, std::uint64_t>> checked;
    checked.reserve(64);
    auto drain_checked = [&] {
      for (auto& [fut, want] : checked) {
        const std::uint64_t got = world.block_on(std::move(fut));
        SOAK_CHECK(got == want, "am checksum", got, want, me, round);
      }
      checked.clear();
    };

    for (std::size_t op = 0; op < opt.ops; ++op) {
      const std::uint64_t r = rng.next();
      const pe_id dst = static_cast<pe_id>(rng.next() % npes);
      switch (r % 13) {
        case 0: {  // small checked ping (in-place aggregated record)
          const std::uint64_t x = rng.next();
          checked.emplace_back(world.exec_am_pe(dst, PingAm{x}), mix64(x));
          break;
        }
        case 1: {  // medium payload, checked (fills lanes -> flush path)
          std::vector<std::uint64_t> data(64 + rng.next() % 192);
          for (auto& w : data) w = rng.next();
          const std::uint64_t want = fnv1a(data);
          checked.emplace_back(
              world.exec_am_pe(dst, PayloadAm{std::move(data)}), want);
          break;
        }
        case 2: {  // large payload >= agg threshold (bypass path), checked
          std::vector<std::uint64_t> data(600 + rng.next() % 512);
          for (auto& w : data) w = rng.next();
          const std::uint64_t want = fnv1a(data);
          checked.emplace_back(
              world.exec_am_pe(dst, PayloadAm{std::move(data)}), want);
          break;
        }
        case 3: {  // Darc transfer, fire-and-forget (revive path when the
                   // receiver already dropped its handle)
          world.exec_am_pe(dst, DarcTouchAm{shard, rng.next()});
          break;
        }
        case 4: case 5: {  // task tree: scheduler spawn/steal + fabric
                           // atomics + one-sided alloc/free from workers
          const std::uint64_t leaf_seed = rng.next();
          atomic_adds += 3;  // the three leaves below each add exactly once
          world.pool().spawn([&world, &allocs, leaf_seed, atoms_off,
                              npes]() {
            auto lrng = Xoshiro256(leaf_seed);
            for (int leaf = 0; leaf < 3; ++leaf) {
              const pe_id apre = static_cast<pe_id>(lrng.next() % npes);
              const std::size_t word = lrng.next() % npes;
              world.lamellae().atomic_fetch_add_u64(
                  apre, atoms_off + 8 * word, 1);
              const std::uint64_t kind = lrng.next() % 3;
              if (kind == 0) {
                try {
                  const std::size_t bytes = 8 + lrng.next() % 2048;
                  const std::size_t align = std::size_t{1}
                                            << (3 + lrng.next() % 5);
                  allocs.push(world.lamellae().alloc_onesided(bytes, align));
                } catch (const OutOfMemoryError&) {
                  std::lock_guard lock(allocs.mu);
                  ++allocs.oom_hits;
                }
              } else if (kind == 1) {
                std::size_t off = 0;
                if (allocs.pop(off)) world.lamellae().free_onesided(off);
              }
            }
          });
          break;
        }
        case 6: {  // nested block_on from a worker task (helping path)
          const std::uint64_t x = rng.next();
          const pe_id tgt = dst;
          world.pool().spawn([&world, x, tgt]() {
            const std::uint64_t got =
                world.block_on(world.exec_am_pe(tgt, PingAm{x}));
            if (got != mix64(x)) {
              fail("nested block_on checksum", got, mix64(x), world.my_pe(),
                   0);
            }
          });
          break;
        }
        case 7: {  // RDMA put + get readback on this PE's private column
          std::uint64_t vals[8];
          for (auto& v : vals) v = rng.next();
          const std::size_t col = scratch_off + 64 * me;
          world.lamellae().put(
              dst, col,
              std::as_bytes(std::span<const std::uint64_t>(vals)));
          std::uint64_t back[8] = {};
          world.lamellae().get(
              dst, col, std::as_writable_bytes(std::span<std::uint64_t>(back)));
          SOAK_CHECK(std::memcmp(vals, back, sizeof vals) == 0,
                     "rdma readback", back[0], vals[0], me, round);
          break;
        }
        case 8: {  // self-send exercises the local no-serialize fast path
          const std::uint64_t x = rng.next();
          checked.emplace_back(world.exec_am_pe(me, PingAm{x}), mix64(x));
          break;
        }
        case 10: {  // batched element ops: arena planner + in-lane chunks
          const std::size_t n = 16 + rng.next() % 64;
          std::vector<global_index> idxs(n);
          for (auto& i : idxs) i = rng.next() % kSoakArrLen;
          const std::uint64_t v = 1 + rng.next() % 8;
          world.block_on(arr.batch_add(idxs, v));
          array_adds += n * v;
          break;
        }
        case 11: {  // fetching variant: lock-free multi-chunk gather
          const std::size_t n = 16 + rng.next() % 64;
          std::vector<global_index> idxs(n);
          for (auto& i : idxs) i = rng.next() % kSoakArrLen;
          const std::uint64_t v = 1 + rng.next() % 8;
          auto got = world.block_on(arr.batch_fetch_add(idxs, v));
          SOAK_CHECK(got.size() == n, "batch fetch size", got.size(), n, me,
                     round);
          array_adds += n * v;
          break;
        }
        case 12: {  // fused lazy chain: random-length recorder groups
                    // lower into one AM per destination lane; commutative
                    // adds keep the round's conservation total exact, and
                    // the terminal alternates materialize / checksum-sized
                    // gather so both completion paths soak.
          const std::size_t n = 16 + rng.next() % 48;
          std::vector<global_index> idxs(n);
          for (auto& i : idxs) i = rng.next() % kSoakArrLen;
          const std::size_t chain_len = 1 + rng.next() % 4;
          auto chain = arr.lazy();
          for (std::size_t s = 0; s < chain_len; ++s) {
            const std::uint64_t v = 1 + rng.next() % 8;
            chain.add(idxs, v);
            array_adds += n * v;
          }
          if (rng.next() % 2 == 0) {
            world.block_on(chain.materialize());
          } else {
            auto got = world.block_on(chain.gather(idxs));
            SOAK_CHECK(got.size() == n, "fused gather size", got.size(), n,
                       me, round);
          }
          break;
        }
        default: {  // periodic settle: bound outstanding work mid-round
          if (checked.size() > 32) drain_checked();
          if (r % 50 == 9) world.wait_all();
          break;
        }
      }
    }

    drain_checked();
    world.wait_all();
    // Drain plain pool tasks (wait_all only tracks AMs).
    while (world.pool().pending() > 0) std::this_thread::yield();

    // Batched-op conservation: the array's tree-reduced sum must equal the
    // announced total of every PE's batch_add/batch_fetch_add stream.
    world.lamellae().atomic_store_u64(0, arr_contrib_off + 8 * me, array_adds);
    world.barrier();
    std::uint64_t announced = 0;
    for (pe_id p = 0; p < npes; ++p) {
      announced += world.lamellae().atomic_load_u64(0, arr_contrib_off + 8 * p);
    }
    const std::uint64_t observed = world.block_on(arr.sum());
    SOAK_CHECK(observed == announced, "batched-op conservation", observed,
               announced, me, round);
    world.barrier();

    std::size_t off = 0;
    while (allocs.pop(off)) world.lamellae().free_onesided(off);
    // `shard` and `arr` handles drop here -> the Darc protocol must destroy
    // every instance before quiescence below.
  }
  return atomic_adds;
}

void check_quiesced_invariants(World& world, std::size_t round,
                               std::size_t heap_used_baseline,
                               std::size_t heap_free_blocks_baseline) {
  const pe_id me = world.my_pe();
  auto& eng = world.engine();
  SOAK_CHECK(eng.outstanding() == 0, "engine outstanding", eng.outstanding(),
             0, me, round);
  SOAK_CHECK(world.pool().pending() == 0, "pool pending",
             world.pool().pending(), 0, me, round);
  SOAK_CHECK(world.pool().unclaimed() == 0, "pool unclaimed",
             world.pool().unclaimed(), 0, me, round);
  SOAK_CHECK(world.darc_manager().live_entries() == 0, "darc live entries",
             world.darc_manager().live_entries(), 0, me, round);
  SOAK_CHECK(!eng.outgoing().has_pending(), "no staged bytes at quiesce",
             eng.outgoing().has_pending() ? 1 : 0, 0, me, round);

  // Adaptive control (ISSUE 10): whatever walk the controller took this
  // round, at quiescence the live threshold must sit inside its configured
  // bounds — a violation means a retune raced past a clamp.
  const RuntimeConfig& cfg = world.config();
  if (cfg.adapt != AdaptMode::kOff) {
    const std::size_t thr = eng.outgoing().flush_threshold();
    SOAK_CHECK(thr >= cfg.adapt_min_bytes, "threshold >= adapt_min", thr,
               cfg.adapt_min_bytes, me, round);
    SOAK_CHECK(thr <= cfg.adapt_max_bytes, "threshold <= adapt_max", thr,
               cfg.adapt_max_bytes, me, round);
  }

  // Zero-copy budget: every serialized byte crossed exactly one copy.
  const std::uint64_t copied = world.metrics().counter("am.bytes_copied").get();
  const std::uint64_t serialized =
      world.metrics().counter("am.bytes_serialized").get();
  SOAK_CHECK(copied == serialized, "copy budget", copied, serialized, me,
             round);

  // Causal-trace conservation: only replied-to sends are sampled, and a
  // span closes when its reply is consumed on this PE — so at quiescence
  // every opened span has closed.
  const std::uint64_t spans_opened =
      world.metrics().counter("trace.spans_opened").get();
  const std::uint64_t spans_closed =
      world.metrics().counter("trace.spans_closed").get();
  SOAK_CHECK(spans_opened == spans_closed, "trace span conservation",
             spans_opened, spans_closed, me, round);

  // Pool accounting: recycling never exceeds the retention bound.
  auto& pool = world.engine().outgoing().pool();
  SOAK_CHECK(pool.size() <= pool.max_buffers(), "buffer pool bound",
             pool.size(), pool.max_buffers(), me, round);

  // One-sided heap: structurally valid and fully reclaimed each round.
  auto* shmem = dynamic_cast<ShmemLamellae*>(&world.lamellae());
  if (shmem != nullptr) {
    try {
      const std::size_t blocks = shmem->onesided_heap().debug_validate();
      SOAK_CHECK(blocks == heap_free_blocks_baseline, "heap coalesced",
                 blocks, heap_free_blocks_baseline, me, round);
    } catch (const Error& e) {
      fail(e.what(), 1, 0, me, round);
    }
    SOAK_CHECK(shmem->onesided_heap().bytes_used() == heap_used_baseline,
               "heap bytes_used restored", shmem->onesided_heap().bytes_used(),
               heap_used_baseline, me, round);
  }
}

void soak_main(World& world, const Options& opt) {
  const pe_id me = world.my_pe();
  const std::size_t npes = world.num_pes();

  // Symmetric setup (collective): fabric-atomic words, RDMA scratch
  // columns, per-PE contribution slots, and the PE0-owned continue flag.
  const std::size_t atoms_off = world.lamellae().alloc_symmetric(8 * npes, 8);
  const std::size_t scratch_off =
      world.lamellae().alloc_symmetric(64 * npes, 64);
  const std::size_t contrib_off =
      world.lamellae().alloc_symmetric(8 * npes, 8);
  const std::size_t arr_contrib_off =
      world.lamellae().alloc_symmetric(8 * npes, 8);
  const std::size_t flag_off = world.lamellae().alloc_symmetric(8, 8);

  std::size_t heap_used_baseline = 0;
  std::size_t heap_blocks_baseline = 0;
  if (auto* shmem = dynamic_cast<ShmemLamellae*>(&world.lamellae())) {
    heap_used_baseline = shmem->onesided_heap().bytes_used();
    heap_blocks_baseline = shmem->onesided_heap().debug_validate();
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t my_total_adds = 0;
  std::uint64_t plan_allocs_warm = 0;
  ScratchArena::Mark arena_mark_warm;
  std::size_t round = 0;
  for (;;) {
    my_total_adds += soak_round(world, round, opt, atoms_off, scratch_off,
                                arr_contrib_off);
    ++round;

    // Global quiescence, then invariant checks on every PE.
    while (!world.group().quiesce_round(me)) {
    }
    check_quiesced_invariants(world, round, heap_used_baseline,
                              heap_blocks_baseline);

    // Steady-state allocation discipline: the batch planner's scratch arena
    // warms up during the first two rounds and must never grow again —
    // array.plan_allocs frozen from round 2 onward (DESIGN.md §9).  The
    // fused-chain stream (case 12) dispatches through the same arena, so
    // this freeze also proves fused lowering is allocation-free.
    const std::uint64_t plan_allocs =
        world.metrics().counter("array.plan_allocs").get();
    if (round == 2) {
      plan_allocs_warm = plan_allocs;
    } else if (round > 2) {
      SOAK_CHECK(plan_allocs == plan_allocs_warm, "plan_allocs steady state",
                 plan_allocs, plan_allocs_warm, me, round);
    }

    // Fused-chain arena frames fully reset: with no frame open at the
    // quiesce point, this thread's arena cursor must sit exactly where the
    // first quiesce left it — a leaked ArenaFrame (e.g. a fused dispatch
    // that grew the arena mid-frame and never rewound) moves it.
    const auto arena_mark = ScratchArena::local().mark();
    if (round == 1) {
      arena_mark_warm = arena_mark;
    } else {
      SOAK_CHECK(arena_mark.block == arena_mark_warm.block &&
                     arena_mark.offset == arena_mark_warm.offset,
                 "arena frames reset", arena_mark.offset,
                 arena_mark_warm.offset, me, round);
    }

    // Fabric-atomic conservation: the sum of all counter words across all
    // PEs must equal the sum of every PE's announced increments.
    world.lamellae().atomic_store_u64(0, contrib_off + 8 * me, my_total_adds);
    world.barrier();
    if (me == 0) {
      std::uint64_t announced = 0;
      for (pe_id p = 0; p < npes; ++p) {
        announced += world.lamellae().atomic_load_u64(0, contrib_off + 8 * p);
      }
      std::uint64_t observed = 0;
      for (pe_id p = 0; p < npes; ++p) {
        for (std::size_t w = 0; w < npes; ++w) {
          observed += world.lamellae().atomic_load_u64(p, atoms_off + 8 * w);
        }
      }
      SOAK_CHECK(observed == announced, "atomic conservation", observed,
                 announced, me, round);

      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0);
      const bool time_left =
          opt.ms != 0 && elapsed.count() < static_cast<long long>(opt.ms);
      const bool rounds_left = opt.rounds == 0 || round < opt.rounds;
      const bool go = g_failures.load() == 0 &&
                      (opt.ms != 0 ? (time_left && rounds_left) : rounds_left);
      world.lamellae().atomic_store_u64(0, flag_off, go ? 1 : 0);
    }
    world.barrier();
    if (world.lamellae().atomic_load_u64(0, flag_off) == 0) break;
  }

  world.barrier();
  if (me == 0) {
    std::fprintf(stderr, "[stress_soak] %zu round(s), %zu PE(s), seed %llu\n",
                 round, npes, static_cast<unsigned long long>(opt.seed));
  }
  world.lamellae().free_symmetric(flag_off);
  world.lamellae().free_symmetric(arr_contrib_off);
  world.lamellae().free_symmetric(contrib_off);
  world.lamellae().free_symmetric(scratch_off);
  world.lamellae().free_symmetric(atoms_off);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  RuntimeConfig cfg;  // defaults, NOT from_env: the harness is reproducible
  cfg.seed = opt.seed;
  cfg.threads_per_pe = opt.threads;
  // Small aggregation threshold so every hot-path branch fires: in-place
  // commits, threshold flushes + buffer swaps, and large-record bypass.
  cfg.agg_threshold_bytes = 4096;
  cfg.metrics_mode = MetricsMode::kQuiet;  // copy-budget check needs counters
  // Trace-sample aggressively (1 in 7 requests) so the wire trace
  // extension, lane ts-patching, and stage histograms soak under the
  // sanitizers alongside everything else; the span-conservation invariant
  // is checked at every quiesce point.
  cfg.trace_sample = 7;
  // Adaptive control (ISSUE 10): LAMELLAR_ADAPT is the one env knob honored
  // here, so the sanitizer jobs can soak the controller tick, age flush,
  // and admission window (`LAMELLAR_ADAPT=full stress_soak ...`) without
  // giving up the otherwise-fixed reproducible config.  Aggressive cadence:
  // tick every 50 us of virtual time, 200 us age budget, a window small
  // enough that the soak's AM bursts actually stall on it.
  if (const char* a = std::getenv("LAMELLAR_ADAPT")) {
    cfg.adapt = parse_adapt_mode(a);
    if (cfg.adapt != AdaptMode::kOff) {
      cfg.adapt_interval_us = 50;
      cfg.adapt_age_budget_us = 200;
    }
    if (cfg.adapt == AdaptMode::kFull) cfg.admit_window = 64;
  }

  run_world(opt.pes, [&](World& world) { soak_main(world, opt); }, cfg);

  const auto fails = g_failures.load();
  if (fails != 0) {
    std::fprintf(stderr, "[stress_soak] %llu failure(s)\n",
                 static_cast<unsigned long long>(fails));
    return 1;
  }
  std::fprintf(stderr, "[stress_soak] OK\n");
  return 0;
}
