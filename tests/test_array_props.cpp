// Parameterized property sweeps over the LamellarArray matrix:
// {array type} x {distribution} x {PE count} x {length}, checking the
// invariants every configuration must satisfy.
#include <gtest/gtest.h>

#include <numeric>

#include "bale/common.hpp"
#include "lamellar.hpp"

namespace {

using namespace lamellar;

enum class ArrKind { kUnsafe, kAtomic, kLocalLock };

const char* kind_name(ArrKind k) {
  switch (k) {
    case ArrKind::kUnsafe:
      return "Unsafe";
    case ArrKind::kAtomic:
      return "Atomic";
    case ArrKind::kLocalLock:
      return "LocalLock";
  }
  return "?";
}

struct Config {
  ArrKind kind;
  Distribution dist;
  std::size_t npes;
  std::size_t len;
};

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  const auto& c = info.param;
  return std::string(kind_name(c.kind)) +
         (c.dist == Distribution::kBlock ? "_Block_" : "_Cyclic_") +
         std::to_string(c.npes) + "pes_" + std::to_string(c.len);
}

class ArrayMatrix : public ::testing::TestWithParam<Config> {};

// Drive one scenario through a type-erased set of operations so every
// wrapper type exercises the same properties.
template <typename A>
void run_properties(World& world, A arr, const Config& cfg) {
  const std::uint64_t n = cfg.len;

  // P1: fill + sum.
  arr.fill(3);
  EXPECT_EQ(world.block_on(arr.sum()), 3 * n);

  // P2: local lengths partition the global length.
  const std::uint64_t local_total =
      lamellar::bale::global_sum_u64(world, arr.local_len());
  EXPECT_EQ(local_total, n);

  // P3: every PE adds 1 to every element; each element ends at
  // 3 + npes (atomicity / owner-side application).
  std::vector<global_index> all(n);
  std::iota(all.begin(), all.end(), 0);
  world.block_on(arr.batch_add(all, 1));
  world.barrier();
  EXPECT_EQ(world.block_on(arr.sum()), (3 + cfg.npes) * n);
  EXPECT_EQ(world.block_on(arr.min()), 3 + cfg.npes);
  EXPECT_EQ(world.block_on(arr.max()), 3 + cfg.npes);
  world.barrier();

  // P4: put/get round trip through an arbitrary window (PE 0 only).
  if (world.my_pe() == 0 && n >= 4) {
    const std::size_t start = n / 4;
    const std::size_t len = std::min<std::size_t>(n - start, n / 2 + 1);
    std::vector<std::uint64_t> data(len);
    std::iota(data.begin(), data.end(), 100);
    world.block_on(arr.put(start, data));
    auto back = world.block_on(arr.get(start, len));
    EXPECT_EQ(back, data);
  }
  world.barrier();

  // P5: batch_load returns exactly the stored values, in request order
  // (including duplicates and reversed order).
  if (world.my_pe() == std::min<std::size_t>(1, cfg.npes - 1) && n >= 4) {
    std::vector<global_index> idxs{n - 1, 0, n / 2, 0};
    auto vals = world.block_on(arr.batch_load(idxs));
    auto whole = world.block_on(arr.get(0, n));
    ASSERT_EQ(vals.size(), idxs.size());
    for (std::size_t k = 0; k < idxs.size(); ++k) {
      EXPECT_EQ(vals[k], whole[idxs[k]]);
    }
  }
  world.barrier();

  // P6: fetch ops return the pre-image: fetch_add then load sees +delta.
  if (world.my_pe() == 0) {
    const global_index i = n - 1;
    const auto before = world.block_on(arr.load(i));
    EXPECT_EQ(world.block_on(arr.fetch_add(i, 7)), before);
    EXPECT_EQ(world.block_on(arr.load(i)), before + 7);
  }
  world.barrier();

  // P7: iterators cover the view exactly once.
  std::atomic<std::uint64_t> count{0};
  world.block_on(
      arr.local_iter().for_each([&](std::uint64_t) { count.fetch_add(1); }));
  EXPECT_EQ(count.load(), arr.local_len());
  world.barrier();
}

TEST_P(ArrayMatrix, Invariants) {
  const Config cfg = GetParam();
  run_world(cfg.npes, [&cfg](World& world) {
    switch (cfg.kind) {
      case ArrKind::kUnsafe:
        run_properties(world,
                       UnsafeArray<std::uint64_t>::create(world, cfg.len,
                                                          cfg.dist),
                       cfg);
        break;
      case ArrKind::kAtomic:
        run_properties(world,
                       AtomicArray<std::uint64_t>::create(world, cfg.len,
                                                          cfg.dist),
                       cfg);
        break;
      case ArrKind::kLocalLock:
        run_properties(world,
                       LocalLockArray<std::uint64_t>::create(world, cfg.len,
                                                             cfg.dist),
                       cfg);
        break;
    }
    world.barrier();
  });
}

std::vector<Config> make_matrix() {
  std::vector<Config> out;
  for (auto kind : {ArrKind::kUnsafe, ArrKind::kAtomic, ArrKind::kLocalLock}) {
    for (auto dist : {Distribution::kBlock, Distribution::kCyclic}) {
      for (std::size_t npes : {1, 3, 4}) {
        for (std::size_t len : {1, 7, 64, 1000}) {
          if (len < npes) continue;  // degenerate: fewer elements than PEs
          out.push_back({kind, dist, npes, len});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ArrayMatrix,
                         ::testing::ValuesIn(make_matrix()), config_name);

// ---- sub-batch splitting property: results independent of the limit ----

class BatchLimit : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchLimit, ResultsIndependentOfSubBatchSize) {
  const std::size_t limit = GetParam();
  RuntimeConfig cfg;
  cfg.batch_op_limit = limit;
  run_world(
      3,
      [](World& world) {
        auto arr = AtomicArray<std::uint64_t>::create(world, 50,
                                                      Distribution::kCyclic);
        arr.fill(0);
        auto rng = pe_rng(5, world.my_pe());
        std::vector<global_index> idxs(777);
        for (auto& i : idxs) i = rng.uniform(50);
        auto fetched = world.block_on(arr.batch_fetch_add(idxs, 1));
        EXPECT_EQ(fetched.size(), idxs.size());
        world.barrier();
        EXPECT_EQ(world.block_on(arr.sum()), 777u * 3);
        world.barrier();
      },
      cfg);
}

INSTANTIATE_TEST_SUITE_P(Limits, BatchLimit,
                         ::testing::Values(1, 7, 100, 10'000));

// ---- aggregation threshold property: delivery independent of threshold ----

class AggThreshold : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AggThreshold, AmDeliveryIndependentOfThreshold) {
  RuntimeConfig cfg;
  cfg.agg_threshold_bytes = GetParam();
  run_world(
      3,
      [](World& world) {
        auto arr = AtomicArray<std::uint64_t>::create(world, 16,
                                                      Distribution::kBlock);
        arr.fill(0);
        std::vector<global_index> idxs(500, world.my_pe() * 5);
        world.block_on(arr.batch_add(idxs, 1));
        world.barrier();
        EXPECT_EQ(world.block_on(arr.sum()), 1500u);
        world.barrier();
      },
      cfg);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, AggThreshold,
                         ::testing::Values(64, 1024, 100 * 1024, 1 << 20));

}  // namespace
