// End-to-end smoke tests: world bring-up, AMs, Darcs, memory regions.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/memregion/onesided_region.hpp"
#include "core/memregion/shared_region.hpp"
#include "core/world/world.hpp"

namespace {

using namespace lamellar;

std::atomic<int> g_hello_count{0};

struct HelloAm {
  std::string name;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(name);
  }
  void exec(AmContext& ctx) {
    (void)ctx;
    g_hello_count.fetch_add(1);
  }
};

struct AddAm {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(a, b);
  }
  std::uint64_t exec(AmContext&) { return a + b; }
};

struct WhoAmIAm {
  template <class Ar>
  void serialize(Ar&) {}
  std::uint64_t exec(AmContext& ctx) { return ctx.current_pe(); }
};

}  // namespace

LAMELLAR_REGISTER_AM(HelloAm);
LAMELLAR_REGISTER_AM(AddAm);
LAMELLAR_REGISTER_AM(WhoAmIAm);

namespace {

TEST(Smoke, WorldBringup) {
  run_world(4, [](World& world) {
    EXPECT_EQ(world.num_pes(), 4u);
    world.barrier();
  });
}

TEST(Smoke, HelloWorldAllPes) {
  g_hello_count.store(0);
  run_world(4, [](World& world) {
    if (world.my_pe() == 0) {
      auto req = world.exec_am_all(HelloAm{"World"});
      world.block_on(std::move(req));
    }
    world.barrier();
  });
  EXPECT_EQ(g_hello_count.load(), 4);
}

TEST(Smoke, AmWithReturn) {
  run_world(2, [](World& world) {
    auto fut = world.exec_am_pe(1 - world.my_pe(), AddAm{20, 22});
    EXPECT_EQ(world.block_on(std::move(fut)), 42u);
  });
}

TEST(Smoke, ExecAmAllReturnsPerPeResults) {
  run_world(4, [](World& world) {
    auto fut = world.exec_am_all(WhoAmIAm{});
    auto results = world.block_on(std::move(fut));
    ASSERT_EQ(results.size(), 4u);
    for (pe_id pe = 0; pe < 4; ++pe) EXPECT_EQ(results[pe], pe);
  });
}

TEST(Smoke, WaitAllDrainsFireAndForget) {
  g_hello_count.store(0);
  run_world(3, [](World& world) {
    for (int i = 0; i < 10; ++i) {
      world.exec_am_pe((world.my_pe() + 1) % 3, HelloAm{"x"});
    }
    world.wait_all();
    world.barrier();
  });
  EXPECT_EQ(g_hello_count.load(), 30);
}

struct CounterBox {
  std::atomic<std::uint64_t> hits{0};
  CounterBox() = default;
  CounterBox(CounterBox&& o) noexcept : hits(o.hits.load()) {}
};

struct BumpDarcAm {
  Darc<CounterBox> box;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(box);
  }
  void exec(AmContext&) { box->hits.fetch_add(1); }
};

}  // namespace

LAMELLAR_REGISTER_AM(BumpDarcAm);

namespace {

TEST(Smoke, DarcTravelsInAms) {
  run_world(4, [](World& world) {
    auto box = world.new_darc(CounterBox{});
    if (world.my_pe() == 0) {
      for (pe_id pe = 0; pe < 4; ++pe) {
        world.exec_am_pe(pe, BumpDarcAm{box});
      }
      world.wait_all();
    }
    world.barrier();
    // Each PE's own instance got exactly one bump from PE0's broadcast.
    EXPECT_EQ(box->hits.load(), 1u);
    world.barrier();
  });
}

TEST(Smoke, SharedRegionPutGet) {
  run_world(4, [](World& world) {
    auto region = SharedMemoryRegion<std::uint64_t>::create(world, 16);
    auto local = region.unsafe_local_slice();
    std::fill(local.begin(), local.end(), world.my_pe());
    world.barrier();

    // Everyone writes its PE id into slot my_pe on PE 0.
    const std::uint64_t v = 1000 + world.my_pe();
    region.unsafe_put(0, world.my_pe(), std::span<const std::uint64_t>(&v, 1));
    world.barrier();

    if (world.my_pe() == 0) {
      for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(local[i], 1000 + i);
      }
    }
    // Read PE 3's slab remotely.
    std::uint64_t got = 0;
    region.unsafe_get(3, 5, std::span<std::uint64_t>(&got, 1));
    if (world.my_pe() != 3) EXPECT_EQ(got, 3u);
    world.barrier();
  });
}

struct FillOneSidedAm {
  OneSidedMemoryRegion<std::uint32_t> region;
  std::uint32_t value = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(region, value);
  }
  void exec(AmContext&) {
    // Remote PE writes into the origin's memory through the handle.
    std::vector<std::uint32_t> vals(region.len(), value);
    region.unsafe_put(0, vals);
  }
};

}  // namespace

LAMELLAR_REGISTER_AM(FillOneSidedAm);

namespace {

TEST(Smoke, OneSidedRegionThroughAm) {
  run_world(2, [](World& world) {
    if (world.my_pe() == 0) {
      auto region = OneSidedMemoryRegion<std::uint32_t>::create(world, 8);
      auto fut = world.exec_am_pe(1, FillOneSidedAm{region, 7});
      world.block_on(std::move(fut));
      for (auto v : region.unsafe_local_slice()) EXPECT_EQ(v, 7u);
    }
    world.barrier();
  });
}

TEST(Smoke, VirtualTimeAdvances) {
  run_world(2, [](World& world) {
    const auto before = world.time_ns();
    world.barrier();
    std::vector<std::uint64_t> payload(1024, 1);
    auto region = SharedMemoryRegion<std::uint64_t>::create(world, 1024);
    region.unsafe_put(1 - world.my_pe(), 0, payload);
    EXPECT_GT(world.time_ns(), before);
    world.barrier();
  });
}

TEST(Smoke, TeamsSplitAndBarrier) {
  run_world(4, [](World& world) {
    Team team = world.split_block(2);
    ASSERT_TRUE(team.valid());
    EXPECT_EQ(team.size(), 2u);
    EXPECT_EQ(team.my_rank(), world.my_pe() % 2);
    team.barrier();
    world.barrier();
  });
}

}  // namespace
