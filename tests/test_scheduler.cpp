// Tests for the work-stealing deque, thread pool, and futures.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/scheduler/deque.hpp"
#include "core/scheduler/future.hpp"
#include "core/scheduler/thread_pool.hpp"

namespace {

using namespace lamellar;

TEST(Deque, LifoOwnerPops) {
  WorkStealingDeque<int> dq;
  for (int i = 0; i < 5; ++i) dq.push(new int(i));
  for (int i = 4; i >= 0; --i) {
    int* v = dq.pop();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
    delete v;
  }
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(Deque, FifoSteals) {
  WorkStealingDeque<int> dq;
  for (int i = 0; i < 5; ++i) dq.push(new int(i));
  for (int i = 0; i < 5; ++i) {
    int* v = dq.steal();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
    delete v;
  }
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(Deque, GrowsPastInitialCapacity) {
  WorkStealingDeque<int> dq(4);
  for (int i = 0; i < 1000; ++i) dq.push(new int(i));
  EXPECT_EQ(dq.size_hint(), 1000u);
  int sum = 0;
  while (int* v = dq.pop()) {
    sum += *v;
    delete v;
  }
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST(Deque, ConcurrentOwnerAndThieves) {
  WorkStealingDeque<int> dq;
  constexpr int kItems = 20000;
  std::atomic<long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < 2; ++t) {
    thieves.emplace_back([&] {
      while (!done.load() || !dq.empty()) {
        if (int* v = dq.steal()) {
          consumed_sum.fetch_add(*v);
          consumed_count.fetch_add(1);
          delete v;
        }
      }
    });
  }
  long owner_sum = 0;
  int owner_count = 0;
  for (int i = 1; i <= kItems; ++i) {
    dq.push(new int(i));
    if (i % 3 == 0) {
      if (int* v = dq.pop()) {
        owner_sum += *v;
        ++owner_count;
        delete v;
      }
    }
  }
  while (int* v = dq.pop()) {
    owner_sum += *v;
    ++owner_count;
    delete v;
  }
  done.store(true);
  for (auto& t : thieves) t.join();
  EXPECT_EQ(owner_count + consumed_count.load(), kItems);
  EXPECT_EQ(owner_sum + consumed_sum.load(),
            static_cast<long>(kItems) * (kItems + 1) / 2);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.spawn([&count] { count.fetch_add(1); });
  }
  while (pool.pending() > 0) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
  pool.shutdown();
}

TEST(ThreadPool, NestedSpawns) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.spawn([&] {
    for (int i = 0; i < 10; ++i) {
      pool.spawn([&count] { count.fetch_add(1); });
    }
  });
  while (pool.pending() > 0) std::this_thread::yield();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, TryRunOneHelpsFromExternalThread) {
  ThreadPool pool(1);
  std::atomic<bool> block{true};
  std::atomic<bool> started{false};
  std::atomic<int> ran{0};
  // Occupy the single worker; wait until it actually picked the task up so
  // this thread cannot steal it below.
  pool.spawn([&] {
    started.store(true);
    while (block.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) pool.spawn([&ran] { ran.fetch_add(1); });
  // External thread helps while the worker is blocked.
  int helped = 0;
  while (ran.load() < 5) {
    if (pool.try_run_one()) ++helped;
  }
  EXPECT_GE(helped, 1);
  block.store(false);
  while (pool.pending() > 0) std::this_thread::yield();
}

TEST(ThreadPool, SpawnBatchRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<Task> batch;
  for (int i = 0; i < 128; ++i) {
    batch.emplace_back([&count] { count.fetch_add(1); });
  }
  pool.spawn_batch(std::move(batch));
  while (pool.pending() > 0) std::this_thread::yield();
  EXPECT_EQ(count.load(), 128);
  pool.spawn_batch({});  // empty batch is a no-op
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, SpawnBatchFromWorkerIsStealable) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  // A worker injecting a batch pushes to its own deque; siblings must be
  // woken and able to steal the records.
  pool.spawn([&] {
    std::vector<Task> batch;
    for (int i = 0; i < 64; ++i) {
      batch.emplace_back([&count] { count.fetch_add(1); });
    }
    pool.spawn_batch(std::move(batch));
  });
  while (pool.pending() > 0) std::this_thread::yield();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ProgressHookRunsWhenIdle) {
  std::atomic<int> hook_calls{0};
  ThreadPool pool(1, [&hook_calls] { hook_calls.fetch_add(1); });
  while (hook_calls.load() < 3) std::this_thread::yield();
  SUCCEED();
}

TEST(Future, SetThenGet) {
  Promise<int> p;
  auto f = p.future();
  EXPECT_FALSE(f.ready());
  p.set_value(5);
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.get(), 5);
}

TEST(Future, CrossThreadWait) {
  Promise<std::string> p;
  auto f = p.future();
  std::thread t([&p] { p.set_value("done"); });
  EXPECT_EQ(f.get(), "done");
  t.join();
}

TEST(Future, TryTake) {
  Promise<int> p;
  auto f = p.future();
  EXPECT_FALSE(f.try_take().has_value());
  p.set_value(9);
  auto v = f.try_take();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
  EXPECT_FALSE(f.try_take().has_value());  // one-shot
}

TEST(Future, DoubleSetThrows) {
  Promise<int> p;
  p.set_value(1);
  EXPECT_THROW(p.set_value(2), Error);
}

TEST(Future, ReadyFuture) {
  auto f = ready_future(17);
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.get(), 17);
}

}  // namespace
