// Paper-scale routing and memory-lean lane behaviour: the RouteGrid (2-hop
// Conveyors-style relay promoted into the aggregation layer), topology
// validation, the identity-based tree barrier, lazy lane allocation, and an
// all-to-all storm at 256 PEs asserting the O(sqrt P) live-lane bound the
// scaling work exists to provide.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fabric/barrier.hpp"
#include "fabric/topology.hpp"
#include "lamellar.hpp"

namespace {

using namespace lamellar;

// ---- RouteGrid geometry ----------------------------------------------------

TEST(RouteGrid, ShapesMatchTopologyRule) {
  // Node width unusable as a near-square grid -> ceil(sqrt(P)) columns.
  EXPECT_EQ(RouteGrid::make(64, PeMapping{64}).cols, 8u);
  EXPECT_EQ(RouteGrid::make(256, PeMapping{64}).cols, 16u);
  // Node width usable -> a row is one node and the first hop is intra-node.
  EXPECT_EQ(RouteGrid::make(1024, PeMapping{64}).cols, 64u);
  EXPECT_EQ(RouteGrid::make(1024, PeMapping{64}).rows(), 16u);
  EXPECT_EQ(RouteGrid::make(2048, PeMapping{64}).cols, 64u);
  EXPECT_EQ(RouteGrid::make(2048, PeMapping{64}).rows(), 32u);
  // Degenerate worlds collapse to a single column.
  EXPECT_EQ(RouteGrid::make(1, PeMapping{}).cols, 1u);
  EXPECT_EQ(RouteGrid::make(9, PeMapping{}).cols, 3u);
}

TEST(RouteGrid, RelayIsInSrcRowAndDstColumn) {
  for (const auto& grid :
       {RouteGrid::make(9, PeMapping{}), RouteGrid::make(64, PeMapping{64}),
        RouteGrid::make(1024, PeMapping{64})}) {
    const std::size_t step = grid.num_pes > 64 ? 37 : 1;
    for (pe_id src = 0; src < grid.num_pes; src += step) {
      for (pe_id dst = 0; dst < grid.num_pes; dst += step) {
        const pe_id r = grid.relay(src, dst);
        ASSERT_LT(r, grid.num_pes);
        if (r != dst) {
          // A real relay sits at (row of src, column of dst) ...
          EXPECT_EQ(grid.row_of(r), grid.row_of(src));
          EXPECT_EQ(grid.col_of(r), grid.col_of(dst));
          // ... and the second hop is always direct (no relay chains).
          EXPECT_EQ(grid.relay(r, dst), dst);
        }
      }
      EXPECT_EQ(grid.relay(src, src), src);
    }
  }
}

TEST(RouteGrid, RaggedLastRowFallsBackToDirect) {
  // 10 PEs on 4 columns: row 2 holds only PEs 8 and 9.  Routing from PE 8
  // to column 3 would target the nonexistent PE 11 -> direct.
  const RouteGrid grid = RouteGrid::make(10, PeMapping{});
  ASSERT_EQ(grid.cols, 4u);
  EXPECT_EQ(grid.relay(8, 3), 3u);
  EXPECT_EQ(grid.relay(9, 2), 2u);
  // A relay that does exist in the ragged row is still used.
  EXPECT_EQ(grid.relay(8, 1), 9u);
}

// ---- topology validation ---------------------------------------------------

TEST(Topology, PaperClusterValidatesAndBadSpecsThrow) {
  const ClusterSpec paper = paper_cluster();
  EXPECT_EQ(paper.nodes, 48u);
  EXPECT_EQ(paper.racks * paper.nodes_per_rack, paper.nodes);

  ClusterSpec broken;
  broken.racks = 5;  // 5 * 12 != 48
  EXPECT_THROW(broken.validate(), Error);
  ClusterSpec zero_rate;
  zero_rate.nic_bytes_per_ns = 0.0;
  EXPECT_THROW(zero_rate.validate(), Error);
}

TEST(Topology, PeMappingRejectsZeroPesPerNode) {
  EXPECT_THROW(PeMapping{0}, Error);
  EXPECT_EQ(PeMapping{3}.node_of_pe(7), 2u);
}

// ---- tree barrier ----------------------------------------------------------

TEST(ScaleBarrier, IdentityTreeManyRounds) {
  constexpr std::size_t kN = 20;  // multi-level tree (fan-in 8)
  constexpr std::size_t kRounds = 50;
  SenseBarrier barrier(kN);
  std::atomic<std::uint64_t> counter{0};
  std::vector<std::thread> threads;
  threads.reserve(kN);
  for (std::size_t who = 0; who < kN; ++who) {
    threads.emplace_back([&, who] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.arrive_and_wait(who);
        EXPECT_EQ(counter.load(), (round + 1) * kN);
        barrier.arrive_and_wait(who);  // hold the next round's increments
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(ScaleBarrier, RejectsBadParticipants) {
  SenseBarrier three(3);
  EXPECT_THROW(three.arrive_and_wait(3), Error);
  // Anonymous arrival is only meaningful on a single-level tree, where every
  // participant hits the same node; a multi-level tree requires identities.
  SenseBarrier big(20);
  EXPECT_THROW(big.arrive_and_wait(), Error);
}

// ---- runtime-level routing tests -------------------------------------------

constexpr std::size_t kSlots = 64;
std::array<std::atomic<std::uint64_t>, kSlots> g_hist{};
std::atomic<std::uint64_t> g_big_hits{0};
std::atomic<std::uint64_t> g_big_sum{0};

void reset_globals() {
  for (auto& h : g_hist) h.store(0);
  g_big_hits.store(0);
  g_big_sum.store(0);
}

struct StormAm {
  std::uint64_t slot = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(slot);
  }
  void exec(AmContext&) { g_hist[slot % kSlots].fetch_add(1); }
};

/// Echoes a function of its payload and the executing PE so the sender can
/// verify both delivery and reply routing.
struct EchoAm {
  std::uint64_t x = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(x);
  }
  std::uint64_t exec(AmContext& ctx) { return x * 1000 + ctx.current_pe(); }
};

/// Large-payload AM: above the 2-hop direct cutoff, so it must bypass the
/// relay even when routing is on.
struct BigAm {
  std::vector<std::uint64_t> payload;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(payload);
  }
  void exec(AmContext&) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : payload) sum += v;
    g_big_sum.fetch_add(sum);
    g_big_hits.fetch_add(1);
  }
};

RuntimeConfig small_cfg(RouteMode route) {
  RuntimeConfig cfg;
  cfg.threads_per_pe = 1;
  cfg.agg_threshold_bytes = 1024;  // small buffers -> frequent flushes
  cfg.internal_heap_bytes = 64 * 1024;
  cfg.symmetric_heap_bytes = 64 * 1024;
  cfg.onesided_heap_bytes = 64 * 1024;
  cfg.metrics_mode = MetricsMode::kQuiet;
  cfg.route = route;
  return cfg;
}

struct StormStats {
  std::uint64_t relayed = 0;
  std::uint64_t routed = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t bytes_serialized = 0;
  std::int64_t lanes_hw_max = 0;  // max over PEs of the live-lane high-water
};

/// All-to-all storm: every PE sends `ops` small AMs round-robin across every
/// other PE, then the test aggregates routing counters and the per-PE
/// live-lane high-water mark.
StormStats run_storm(std::size_t pes, RouteMode route, std::size_t ops,
                     std::size_t pes_per_node) {
  reset_globals();
  std::vector<obs::MetricsSnapshot> snaps(pes);
  run_world(
      pes,
      [&](World& w) {
        const std::size_t P = w.num_pes();
        const pe_id me = w.my_pe();
        for (std::size_t i = 0; i < ops; ++i) {
          const pe_id dst = (me + 1 + i % (P - 1)) % P;
          (void)w.exec_am_pe(dst, StormAm{me * ops + i});
        }
        w.wait_all();
        w.barrier();
        snaps[me] = w.metrics_snapshot();
      },
      small_cfg(route), paper_perf_params(), PeMapping{pes_per_node});
  StormStats stats;
  for (const auto& snap : snaps) {
    stats.relayed += snap.counter("am.relayed_records");
    stats.routed += snap.counter("am.sent_routed");
    stats.bytes_copied += snap.counter("am.bytes_copied");
    stats.bytes_serialized += snap.counter("am.bytes_serialized");
    for (const auto& [name, vals] : snap.gauges) {
      if (name == "cmdq.live_lanes") {
        stats.lanes_hw_max = std::max(stats.lanes_hw_max, vals.second);
      }
    }
  }
  return stats;
}

std::uint64_t hist_total() {
  std::uint64_t sum = 0;
  for (const auto& h : g_hist) sum += h.load();
  return sum;
}

TEST(TwoHopRoute, EquivalentToDirectAtSmallScale) {
  // 9 PEs -> 3x3 grid: plenty of genuinely relayed pairs.
  constexpr std::size_t kPes = 9;
  constexpr std::size_t kOps = 64;
  const StormStats direct = run_storm(kPes, RouteMode::kDirect, kOps, 1);
  std::array<std::uint64_t, kSlots> direct_hist{};
  for (std::size_t s = 0; s < kSlots; ++s) direct_hist[s] = g_hist[s].load();

  const StormStats routed = run_storm(kPes, RouteMode::k2Hop, kOps, 1);
  for (std::size_t s = 0; s < kSlots; ++s) {
    EXPECT_EQ(g_hist[s].load(), direct_hist[s]) << "slot " << s;
  }
  EXPECT_EQ(hist_total(), kPes * kOps);
  EXPECT_EQ(direct.relayed, 0u);
  EXPECT_EQ(direct.routed, 0u);
  EXPECT_GT(routed.relayed, 0u);
  EXPECT_GT(routed.routed, 0u);
  // Final-resting serialization is counted exactly once per record on both
  // paths (the CI invariant); relay forwarding must not double-count.
  EXPECT_EQ(direct.bytes_copied, direct.bytes_serialized);
  EXPECT_EQ(routed.bytes_copied, routed.bytes_serialized);
}

TEST(TwoHopRoute, StormAt256PesKeepsLanesAtTwiceSqrtP) {
  // The scaling claim itself: under an all-to-all storm at 256 PEs the
  // 16x16 grid keeps every PE's live-lane high-water at rows + cols =
  // 2 * sqrt(P) = 32, versus ~255 for direct per-destination lanes.
  constexpr std::size_t kPes = 256;
  constexpr std::size_t kOps = 260;  // > P-1: every PE pair exercised
  const StormStats stats = run_storm(kPes, RouteMode::k2Hop, kOps, 64);
  EXPECT_EQ(hist_total(), kPes * kOps);
  EXPECT_GT(stats.relayed, 0u);
  EXPECT_LE(stats.lanes_hw_max, 32);
  EXPECT_GE(stats.lanes_hw_max, 1);
  EXPECT_EQ(stats.bytes_copied, stats.bytes_serialized);
}

TEST(TwoHopRoute, RepliesSurviveRelaying) {
  constexpr std::size_t kPes = 9;
  RuntimeConfig cfg = small_cfg(RouteMode::k2Hop);
  run_world(
      kPes,
      [&](World& w) {
        const pe_id me = w.my_pe();
        for (pe_id dst = 0; dst < w.num_pes(); ++dst) {
          const std::uint64_t x = me * 10 + dst;
          const std::uint64_t got = w.block_on(w.exec_am_pe(dst, EchoAm{x}));
          EXPECT_EQ(got, x * 1000 + dst);
        }
        w.barrier();
      },
      cfg, paper_perf_params(), PeMapping{});
}

TEST(TwoHopRoute, CutoffSendsEverythingDirect) {
  // With the cutoff forced to 1 byte every record escapes the relay: the
  // 2-hop world must behave exactly like direct and never forward.
  constexpr std::size_t kPes = 9;
  constexpr std::size_t kOps = 32;
  reset_globals();
  RuntimeConfig cfg = small_cfg(RouteMode::k2Hop);
  cfg.route_direct_cutoff_bytes = 1;
  std::vector<obs::MetricsSnapshot> snaps(kPes);
  run_world(
      kPes,
      [&](World& w) {
        const pe_id me = w.my_pe();
        for (std::size_t i = 0; i < kOps; ++i) {
          const pe_id dst = (me + 1 + i % (w.num_pes() - 1)) % w.num_pes();
          (void)w.exec_am_pe(dst, StormAm{me * kOps + i});
        }
        w.wait_all();
        w.barrier();
        snaps[me] = w.metrics_snapshot();
      },
      cfg, paper_perf_params(), PeMapping{});
  EXPECT_EQ(hist_total(), kPes * kOps);
  std::uint64_t relayed = 0;
  std::uint64_t routed = 0;
  for (const auto& snap : snaps) {
    relayed += snap.counter("am.relayed_records");
    routed += snap.counter("am.sent_routed");
  }
  EXPECT_EQ(relayed, 0u);
  EXPECT_EQ(routed, 0u);
}

TEST(TwoHopRoute, LargeRecordsBypassTheRelay) {
  // Fire-and-forget AMs with a 1 KB payload exceed the auto cutoff
  // (agg_threshold / 8 = 128 bytes): with no replies in the mix, the routed
  // and relayed counters must stay at exactly zero even under 2-hop.
  constexpr std::size_t kPes = 9;
  constexpr std::size_t kBig = 4;
  reset_globals();
  std::vector<obs::MetricsSnapshot> snaps(kPes);
  run_world(
      kPes,
      [&](World& w) {
        const pe_id me = w.my_pe();
        std::vector<std::uint64_t> payload(128);
        for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i;
        for (std::size_t i = 0; i < kBig; ++i) {
          const pe_id dst = (me + 1 + i) % w.num_pes();
          w.engine().send_forget(dst, BigAm{payload});
        }
        const std::uint64_t want = kPes * kBig;
        while (g_big_hits.load() < want) std::this_thread::yield();
        w.barrier();
        snaps[me] = w.metrics_snapshot();
      },
      small_cfg(RouteMode::k2Hop), paper_perf_params(), PeMapping{});
  EXPECT_EQ(g_big_hits.load(), kPes * kBig);
  EXPECT_EQ(g_big_sum.load(), kPes * kBig * (127ull * 128 / 2));
  std::uint64_t relayed = 0;
  std::uint64_t routed = 0;
  for (const auto& snap : snaps) {
    relayed += snap.counter("am.relayed_records");
    routed += snap.counter("am.sent_routed");
  }
  EXPECT_EQ(relayed, 0u);
  EXPECT_EQ(routed, 0u);
}

TEST(LazyLanes, OnlyTouchedDestinationsAllocate) {
  // Each PE talks to exactly one neighbour; with lazy allocation the
  // live-lane high-water is at most 2 (request lane to pe+1, reply lane to
  // pe-1).  Eager priming or flush_all creating lanes would show num_pes-1.
  constexpr std::size_t kPes = 6;
  constexpr std::size_t kOps = 50;
  reset_globals();
  std::vector<obs::MetricsSnapshot> snaps(kPes);
  run_world(
      kPes,
      [&](World& w) {
        const pe_id me = w.my_pe();
        const pe_id dst = (me + 1) % w.num_pes();
        for (std::size_t i = 0; i < kOps; ++i) {
          (void)w.exec_am_pe(dst, StormAm{i});
        }
        w.wait_all();
        w.barrier();
        w.barrier();  // extra flush_all round: must not create lanes
        snaps[me] = w.metrics_snapshot();
      },
      small_cfg(RouteMode::kDirect), paper_perf_params(), PeMapping{});
  EXPECT_EQ(hist_total(), kPes * kOps);
  for (const auto& snap : snaps) {
    for (const auto& [name, vals] : snap.gauges) {
      if (name == "cmdq.live_lanes") {
        EXPECT_GE(vals.second, 1);
        EXPECT_LE(vals.second, 2);
      }
    }
  }
}

}  // namespace

LAMELLAR_REGISTER_AM(StormAm);
LAMELLAR_REGISTER_AM(EchoAm);
LAMELLAR_REGISTER_AM(BigAm);
