// Lazy expression fusion tests (DESIGN.md §11): a recorded chain of k
// element ops lowers into ONE plan pass and ONE AM per destination lane,
// stages fold in program order atomically per element, gather returns
// post-chain values in caller order, and the tree reduce terminates a
// fused chain without re-entering the eager path.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "lamellar.hpp"

namespace {

using namespace lamellar;

using u64 = std::uint64_t;

std::vector<global_index> all_indices(std::size_t len) {
  std::vector<global_index> idxs(len);
  std::iota(idxs.begin(), idxs.end(), 0);
  return idxs;
}

// ---------------------------------------------------------------------------
// The headline contract: one AM per destination lane, independent of k
// ---------------------------------------------------------------------------

TEST(Fused, OneAmPerDestinationLaneVsEagerK) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 64, Distribution::kBlock);
    arr.fill(0);
    const auto idxs = all_indices(arr.len());
    constexpr int kChain = 4;

    if (world.my_pe() == 0) {
      // Warm both paths once so darc/registry traffic settles.
      for (int s = 0; s < kChain; ++s) world.block_on(arr.batch_add(idxs, 1));
      world.block_on(
          arr.lazy().add(idxs, 1).add(idxs, 1).add(idxs, 1).add(idxs, 1)
              .materialize());

      auto& sent = world.metrics().counter("am.sent_remote");
      auto& saved = world.metrics().counter("array.fused_ams_saved");

      const u64 eager_before = sent.get();
      for (int s = 0; s < kChain; ++s) world.block_on(arr.batch_add(idxs, 1));
      const u64 eager_delta = sent.get() - eager_before;

      const u64 fused_before = sent.get();
      const u64 saved_before = saved.get();
      world.block_on(
          arr.lazy().add(idxs, 1).add(idxs, 1).add(idxs, 1).add(idxs, 1)
              .materialize());
      const u64 fused_delta = sent.get() - fused_before;

      // 3 remote lanes: eager pays kChain passes over them, fused pays one.
      EXPECT_EQ(fused_delta, 3u);
      EXPECT_EQ(eager_delta, static_cast<u64>(kChain) * 3u);
      EXPECT_EQ(saved.get() - saved_before, 3u * (kChain - 1));
    }
    world.barrier();
    world.wait_all();

    // 8 warmup + 4 eager + 8 fused increments of every element.
    EXPECT_EQ(world.block_on(arr.max()), 16u);
    EXPECT_EQ(world.block_on(arr.min()), 16u);
    world.barrier();
  });
}

// ---------------------------------------------------------------------------
// Chain semantics: program order within a group, post-chain gather
// ---------------------------------------------------------------------------

TEST(Fused, StagesFoldInProgramOrder) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 64, Distribution::kCyclic);
    arr.fill(0);
    if (world.my_pe() == 0) {
      const auto idxs = all_indices(arr.len());
      // ((0 store 5) + 3) * 2 = 16 — order-sensitive.
      auto vals = world.block_on(arr.lazy()
                                     .store(idxs, 5)
                                     .add(idxs, 3)
                                     .mul(idxs, 2)
                                     .gather(idxs));
      ASSERT_EQ(vals.size(), idxs.size());
      for (u64 v : vals) EXPECT_EQ(v, 16u);
    }
    world.barrier();
    EXPECT_EQ(world.block_on(arr.min()), 16u);
    world.barrier();
  });
}

TEST(Fused, GatherReturnsPostChainValuesInCallerOrder) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 128, Distribution::kBlock);
    arr.fill(0);
    if (world.my_pe() == 0) {
      std::vector<u64> base(arr.len());
      std::iota(base.begin(), base.end(), 0);
      world.block_on(arr.put(0, base));

      // Shuffled indices exercise the fetch scatter path.
      auto idxs = all_indices(arr.len());
      std::mt19937_64 rng(42);
      std::shuffle(idxs.begin(), idxs.end(), rng);

      auto vals =
          world.block_on(arr.lazy().mul(idxs, 3).add(idxs, 1).gather(idxs));
      ASSERT_EQ(vals.size(), idxs.size());
      for (std::size_t j = 0; j < idxs.size(); ++j) {
        EXPECT_EQ(vals[j], idxs[j] * 3 + 1);
      }
    }
    world.barrier();
  });
}

TEST(Fused, MultiChunkPerRankGatherScattersCorrectly) {
  RuntimeConfig cfg;
  cfg.batch_op_limit = 8;  // force several chunks per destination rank
  run_world(
      4,
      [](World& world) {
        auto arr = AtomicArray<u64>::create(world, 256, Distribution::kBlock);
        arr.fill(7);
        if (world.my_pe() == 0) {
          std::vector<global_index> idxs(200);
          std::mt19937_64 rng(9);
          for (auto& i : idxs) i = rng() % arr.len();
          auto vals =
              world.block_on(arr.lazy().add(idxs, 0).gather(idxs));
          ASSERT_EQ(vals.size(), idxs.size());
          for (u64 v : vals) EXPECT_EQ(v, 7u);
        }
        world.barrier();
      },
      cfg);
}

TEST(Fused, PureGatherIsFusedBatchLoad) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 64, Distribution::kCyclic);
    arr.fill(0);
    std::vector<u64> base(arr.len());
    if (world.my_pe() == 0) {
      std::iota(base.begin(), base.end(), 100);
      world.block_on(arr.put(0, base));
    }
    world.barrier();
    const auto idxs = all_indices(arr.len());
    auto vals = world.block_on(arr.lazy().gather(idxs));
    ASSERT_EQ(vals.size(), idxs.size());
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      EXPECT_EQ(vals[j], 100 + idxs[j]);
    }
    world.barrier();
  });
}

TEST(Fused, PerElementOperandsRideTheSameAm) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 96, Distribution::kBlock);
    arr.fill(1);
    if (world.my_pe() == 0) {
      const auto idxs = all_indices(arr.len());
      std::vector<u64> addends(idxs.size());
      std::vector<u64> factors(idxs.size());
      for (std::size_t j = 0; j < idxs.size(); ++j) {
        addends[j] = j;
        factors[j] = (j % 3) + 1;
      }
      auto vals = world.block_on(arr.lazy()
                                     .add(idxs, std::span<const u64>(addends))
                                     .mul(idxs, std::span<const u64>(factors))
                                     .gather(idxs));
      ASSERT_EQ(vals.size(), idxs.size());
      for (std::size_t j = 0; j < idxs.size(); ++j) {
        EXPECT_EQ(vals[j], (1 + addends[j]) * factors[j]);
      }
    }
    world.barrier();
  });
}

// ---------------------------------------------------------------------------
// Group management: index-span changes, capacity splits, terminals
// ---------------------------------------------------------------------------

TEST(Fused, IndexSpanChangeSplitsGroups) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 64, Distribution::kBlock);
    arr.fill(0);
    if (world.my_pe() == 0) {
      const auto all = all_indices(arr.len());
      std::vector<global_index> evens;
      for (global_index i = 0; i < arr.len(); i += 2) evens.push_back(i);
      // Two groups (commutative ops, so inter-group order is irrelevant).
      auto chain = arr.lazy();
      chain.add(all, 1).add(all, 2).add(evens, 10);
      EXPECT_EQ(chain.groups(), 2u);
      world.block_on(chain.materialize());
      auto vals = world.block_on(arr.lazy().gather(all));
      for (std::size_t j = 0; j < vals.size(); ++j) {
        EXPECT_EQ(vals[j], 3u + (j % 2 == 0 ? 10u : 0u));
      }
    }
    world.barrier();
  });
}

TEST(Fused, ChainsLongerThanStageCapacitySplitTransparently) {
  run_world(2, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 32, Distribution::kBlock);
    arr.fill(0);
    if (world.my_pe() == 0) {
      const auto idxs = all_indices(arr.len());
      auto chain = arr.lazy();
      const std::size_t n = LazyChain<u64>::kMaxStages + 5;
      for (std::size_t s = 0; s < n; ++s) chain.add(idxs, 1);
      EXPECT_EQ(chain.groups(), 2u);
      world.block_on(chain.materialize());
      EXPECT_EQ(world.block_on(arr.min()), n);
    }
    world.barrier();
  });
}

TEST(Fused, ReduceTerminatesAChain) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 64, Distribution::kCyclic);
    arr.fill(2);
    if (world.my_pe() == 0) {
      const auto idxs = all_indices(arr.len());
      // (2+1)*2 = 6 per element, then a tree-reduce over the view.
      EXPECT_EQ(world.block_on(arr.lazy().add(idxs, 1).mul(idxs, 2).sum()),
                6u * arr.len());
    }
    world.barrier();
    EXPECT_EQ(world.block_on(arr.max()), 6u);
    world.barrier();
  });
}

TEST(Fused, DestructorFlushesFireAndForget) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 64, Distribution::kBlock);
    arr.fill(0);
    if (world.my_pe() == 0) {
      const auto idxs = all_indices(arr.len());
      {
        auto chain = arr.lazy();
        chain.add(idxs, 3).add(idxs, 4);
        // No terminal: destruction dispatches the open group.
      }
    }
    world.wait_all();
    world.barrier();
    EXPECT_EQ(world.block_on(arr.min()), 7u);
    world.barrier();
  });
}

TEST(Fused, TerminalTwiceThrows) {
  run_world(2, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 16, Distribution::kBlock);
    arr.fill(0);
    if (world.my_pe() == 0) {
      const auto idxs = all_indices(arr.len());
      auto chain = arr.lazy();
      chain.add(idxs, 1);
      world.block_on(chain.materialize());
      EXPECT_THROW(chain.materialize(), Error);
      EXPECT_THROW(chain.add(idxs, 1), Error);
    }
    world.barrier();
  });
}

TEST(Fused, OutOfRangeIndexThrowsAtRecordTime) {
  run_world(2, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 16, Distribution::kBlock);
    if (world.my_pe() == 0) {
      const global_index bad[1] = {16};
      auto chain = arr.lazy();
      EXPECT_THROW(chain.add(std::span<const global_index>(bad, 1), 1), Error);
    }
    world.barrier();
  });
}

// ---------------------------------------------------------------------------
// Safety regimes
// ---------------------------------------------------------------------------

TEST(Fused, LocalLockAndUnsafeModesMatchAtomic) {
  run_world(4, [](World& world) {
    auto ll = LocalLockArray<u64>::create(world, 64, Distribution::kBlock);
    auto un = UnsafeArray<u64>::create(world, 64, Distribution::kCyclic);
    ll.fill(1);
    un.fill(1);
    if (world.my_pe() == 0) {
      const auto idxs = all_indices(64);
      auto lv = world.block_on(ll.lazy().add(idxs, 2).mul(idxs, 3).gather(idxs));
      auto uv = world.block_on(un.lazy().add(idxs, 2).mul(idxs, 3).gather(idxs));
      for (std::size_t j = 0; j < idxs.size(); ++j) {
        EXPECT_EQ(lv[j], 9u);
        EXPECT_EQ(uv[j], 9u);
      }
    }
    world.barrier();
  });
}

TEST(Fused, ReadOnlyGathersButRejectsMutatingStages) {
  run_world(4, [](World& world) {
    auto arr = UnsafeArray<u64>::create(world, 64, Distribution::kBlock);
    arr.fill(0);
    if (world.my_pe() == 0) {
      std::vector<u64> base(64);
      std::iota(base.begin(), base.end(), 0);
      world.block_on(arr.put(0, base));
    }
    world.barrier();
    auto ro = std::move(arr).into_read_only();
    const auto idxs = all_indices(64);
    auto vals = world.block_on(ro.lazy().gather(idxs));
    for (std::size_t j = 0; j < idxs.size(); ++j) EXPECT_EQ(vals[j], j);
    auto chain = ro.lazy();
    EXPECT_THROW(chain.add(idxs, 1), Error);
    world.barrier();
  });
}

TEST(Fused, ConcurrentChainsFromAllPEsAreElementAtomic) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 64, Distribution::kCyclic);
    arr.fill(0);
    const auto idxs = all_indices(arr.len());
    // Every PE fuses (x+1)+2: the per-element fold is atomic, so after all
    // 4 chains every element saw exactly 4*(1+2) added in some order.
    constexpr int kRounds = 8;
    for (int r = 0; r < kRounds; ++r) {
      world.block_on(arr.lazy().add(idxs, 1).add(idxs, 2).materialize());
    }
    world.barrier();
    EXPECT_EQ(world.block_on(arr.min()), 4u * kRounds * 3u);
    EXPECT_EQ(world.block_on(arr.max()), 4u * kRounds * 3u);
    world.barrier();
  });
}

// ---------------------------------------------------------------------------
// Budget: fused loops inherit the eager path's steady-state zero-alloc bound
// ---------------------------------------------------------------------------

TEST(Fused, PlanAllocsFlatInFusedSteadyState) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 4096, Distribution::kBlock);
    arr.fill(0);
    std::vector<global_index> idxs(1024);
    std::mt19937_64 rng(13 + world.my_pe());
    for (auto& i : idxs) i = rng() % arr.len();

    for (int w = 0; w < 3; ++w) {
      world.block_on(
          arr.lazy().add(idxs, 1).mul(idxs, 1).add(idxs, 1).materialize());
    }
    world.barrier();

    const u64 before = world.metrics().counter("array.plan_allocs").get();
    for (int iter = 0; iter < 50; ++iter) {
      world.block_on(
          arr.lazy().add(idxs, 1).mul(idxs, 1).add(idxs, 1).materialize());
    }
    const u64 after = world.metrics().counter("array.plan_allocs").get();
    EXPECT_EQ(after, before);
    world.barrier();
  });
}

// ---------------------------------------------------------------------------
// Iterator combinators on the collective reduce path
// ---------------------------------------------------------------------------

TEST(IterReduce, DistIterReduceMatchesArrayReduce) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 100, Distribution::kBlock);
    arr.fill(0);
    if (world.my_pe() == 0) {
      std::vector<u64> base(arr.len());
      std::iota(base.begin(), base.end(), 1);
      world.block_on(arr.put(0, base));
    }
    world.barrier();
    // Collective: all PEs call, all PEs receive the global result.
    const u64 total = world.block_on(arr.dist_iter().sum());
    EXPECT_EQ(total, 100u * 101u / 2u);
    const u64 hi = world.block_on(arr.dist_iter().max());
    EXPECT_EQ(hi, 100u);
    const u64 lo = world.block_on(arr.dist_iter().min());
    EXPECT_EQ(lo, 1u);
    world.barrier();
  });
}

TEST(IterReduce, NonPowerOfTwoTeamAndAdapters) {
  run_world(3, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 90, Distribution::kCyclic);
    arr.fill(0);
    if (world.my_pe() == 0) {
      std::vector<u64> base(arr.len());
      std::iota(base.begin(), base.end(), 0);
      world.block_on(arr.put(0, base));
    }
    world.barrier();
    // map and filter compose in front of the collective combine.
    const u64 doubled = world.block_on(
        arr.dist_iter().map([](u64 v) { return v * 2; }).sum());
    EXPECT_EQ(doubled, 2u * (89u * 90u / 2u));
    const u64 evens = world.block_on(
        arr.dist_iter().filter([](u64 v) { return v % 2 == 0; }).sum());
    u64 expect = 0;
    for (u64 v = 0; v < 90; v += 2) expect += v;
    EXPECT_EQ(evens, expect);
    world.barrier();
  });
}

TEST(IterReduce, SelectionComposesWithCollectiveReduce) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 64, Distribution::kBlock);
    arr.fill(3);
    // Every PE owns 16 elements; step_by(2) keeps 8 per PE.
    const u64 total = world.block_on(arr.dist_iter().step_by(2).sum());
    EXPECT_EQ(total, 4u * 8u * 3u);
    world.barrier();
  });
}

TEST(IterReduce, LocalIterReduceIsLocalOnly) {
  run_world(4, [](World& world) {
    auto arr = AtomicArray<u64>::create(world, 64, Distribution::kBlock);
    arr.fill(5);
    const u64 local = world.block_on(arr.local_iter().sum());
    EXPECT_EQ(local, 16u * 5u);  // this PE's 16 elements only
    world.barrier();
  });
}

}  // namespace
